GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race bench fuzz vet lint experiments ablations examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific determinism & correctness analyzers (internal/lint).
# See DESIGN.md "Static analysis" for the rule catalogue.
lint:
	$(GO) run ./cmd/colsimlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Run every fuzz target under internal/trace for a short burst each; the
# target list is discovered dynamically so new Fuzz* functions are picked
# up automatically.
fuzz:
	@set -e; \
	for t in $$($(GO) test -list '^Fuzz' ./internal/trace/ | grep '^Fuzz'); do \
		echo "==> $$t"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime=$(FUZZTIME) ./internal/trace/; \
	done

# Regenerate every paper figure (text tables + CSVs under results/).
experiments:
	$(GO) run ./cmd/experiments -fig all -runs 5 -out results

# Run the ablation studies.
ablations:
	$(GO) run ./cmd/experiments -fig ablations -runs 3 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/marketplace
	$(GO) run ./examples/filesharing
	$(GO) run ./examples/decentralized
	$(GO) run ./examples/groupcollusion

clean:
	rm -rf results test_output.txt bench_output.txt

GO ?= go

.PHONY: all build test race bench fuzz vet experiments ablations examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/trace/

# Regenerate every paper figure (text tables + CSVs under results/).
experiments:
	$(GO) run ./cmd/experiments -fig all -runs 5 -out results

# Run the ablation studies.
ablations:
	$(GO) run ./cmd/experiments -fig ablations -runs 3 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/marketplace
	$(GO) run ./examples/filesharing
	$(GO) run ./examples/decentralized
	$(GO) run ./examples/groupcollusion

clean:
	rm -rf results test_output.txt bench_output.txt

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race bench bench-save fuzz vet lint experiments ablations examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific determinism & correctness analyzers (internal/lint).
# See DESIGN.md "Static analysis" for the rule catalogue.
lint:
	$(GO) run ./cmd/colsimlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the checked-in detector benchmark baseline. Runs the detection
# hot-path benchmarks and stores name/ns_per_op/bytes_per_op/allocs_per_op
# as JSON so perf regressions show up in review diffs.
bench-save:
	$(GO) test -run '^$$' -bench 'Detect' -benchmem ./internal/core/ \
		| $(GO) run ./cmd/benchjson > BENCH_detect.json

# Run every fuzz target under internal/trace for a short burst each; the
# target list is discovered dynamically so new Fuzz* functions are picked
# up automatically.
fuzz:
	@set -e; \
	for t in $$($(GO) test -list '^Fuzz' ./internal/trace/ | grep '^Fuzz'); do \
		echo "==> $$t"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime=$(FUZZTIME) ./internal/trace/; \
	done

# Regenerate every paper figure (text tables + CSVs under results/).
experiments:
	$(GO) run ./cmd/experiments -fig all -runs 5 -out results

# Run the ablation studies.
ablations:
	$(GO) run ./cmd/experiments -fig ablations -runs 3 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/marketplace
	$(GO) run ./examples/filesharing
	$(GO) run ./examples/decentralized
	$(GO) run ./examples/groupcollusion

clean:
	rm -rf results test_output.txt bench_output.txt

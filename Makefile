GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race bench bench-save bench-compare cover fuzz vet lint experiments ablations examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific determinism & correctness analyzers (internal/lint),
# including the dataflow/call-graph rules: parreduce (index-ordered
# parallel reduction), hotalloc (//colsim:hotpath allocation freedom) and
# lockcheck (copied locks, mixed atomic access, pool retention). The ./...
# pattern covers every package, ./cmd/... included. See DESIGN.md
# "Static analysis" for the rule catalogue.
lint:
	$(GO) run ./cmd/colsimlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmarks that feed the checked-in baseline: the detection hot path,
# the ledger memory-footprint benchmark that pins the CSR storage, the
# streaming-ingest throughput benchmarks (sharded intake + window
# rollover), the sparse EigenTrust engine (matrix build, the
# per-iteration multiply kernel, and full Scores at n=100k and n=1M), and
# the resident service's snapshot plane (epoch publish cost and query
# latency under full ingest pressure).
BENCH_PATTERN = Detect|LedgerFootprint|ShardedIngest|WindowRollover|EigenTrust|SnapshotPublish|ServeQueryUnderIngest
BENCH_PKGS = ./internal/core/ ./internal/reputation/ ./internal/ingest/ ./internal/service/
# Repetitions per benchmark; benchjson collapses them to the per-metric
# minimum, so one noisy repetition cannot move a baseline or trip the gate.
BENCH_COUNT ?= 3

# Refresh the checked-in detector benchmark baseline. Runs the detection
# hot-path benchmarks and stores name/ns_per_op/bytes_per_op/allocs_per_op
# as JSON so perf regressions show up in review diffs.
bench-save:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson > BENCH_detect.json

# Gate the detection hot path against the checked-in baseline: fail on
# any benchmark more than 20% slower (ns/op) or more than 20% hungrier
# (bytes/op or allocs/op) than BENCH_detect.json.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson > bench_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_detect.json bench_new.json

# Coverage gate for the observability layer and the resident service: the
# canonical trace encoding, metric exporters, snapshot plane and request
# codec underpin byte-identical replays, so they must stay tested (>= 70%
# of statements).
cover:
	$(GO) test -coverprofile=cover_obs.out ./internal/obs/... ./internal/service/...
	@total=$$($(GO) tool cover -func=cover_obs.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	echo "internal/obs + internal/service coverage: $$total%"; \
	awk -v t="$$total" 'BEGIN { if (t + 0 < 70) { print "coverage below 70%"; exit 1 } }'

# Run every fuzz target in the fuzzed packages for a short burst each; the
# target list is discovered dynamically so new Fuzz* functions are picked
# up automatically.
FUZZ_PKGS = ./internal/trace/ ./internal/reputation/ ./internal/ingest/ ./internal/service/
fuzz:
	@set -e; \
	for pkg in $(FUZZ_PKGS); do \
		for t in $$($(GO) test -list '^Fuzz' $$pkg | grep '^Fuzz'); do \
			echo "==> $$pkg $$t"; \
			$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime=$(FUZZTIME) $$pkg; \
		done; \
	done

# Regenerate every paper figure (text tables + CSVs under results/).
experiments:
	$(GO) run ./cmd/experiments -fig all -runs 5 -out results

# Run the ablation studies.
ablations:
	$(GO) run ./cmd/experiments -fig ablations -runs 3 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/marketplace
	$(GO) run ./examples/filesharing
	$(GO) run ./examples/decentralized
	$(GO) run ./examples/groupcollusion

clean:
	rm -rf results test_output.txt bench_output.txt bench_new.json cover_obs.out

package collusion_test

// Benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation, each wrapping the corresponding internal/experiments driver.
// Benchmarks run the full workload-generation + analysis/simulation
// pipeline with a single averaged run (Runs=1); cmd/experiments regenerates
// the same artifacts with the paper's 5-run averaging.

import (
	"testing"

	"github.com/p2psim/collusion/internal/experiments"
)

// benchOpts keeps per-iteration cost bounded while exercising the complete
// pipeline of every figure.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Runs: 1, Scale: 0.5, ColluderCounts: []int{8, 28, 58}}
}

func benchFigure(b *testing.B, fn func(experiments.Options) (*experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := fn(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1aRatingVsReputation regenerates Figure 1(a): per-seller
// rating volumes vs reputation on the synthetic Amazon trace.
func BenchmarkFig1aRatingVsReputation(b *testing.B) { benchFigure(b, experiments.Fig1a) }

// BenchmarkFig1bSuspiciousSellerSeries regenerates Figure 1(b): rating
// time series on one suspicious seller.
func BenchmarkFig1bSuspiciousSellerSeries(b *testing.B) { benchFigure(b, experiments.Fig1b) }

// BenchmarkFig1cRaterFrequency regenerates Figure 1(c): per-rater rating
// frequency statistics for suspicious vs unsuspicious sellers.
func BenchmarkFig1cRaterFrequency(b *testing.B) { benchFigure(b, experiments.Fig1c) }

// BenchmarkFig1dInteractionGraph regenerates Figure 1(d): the Overstock
// interaction graph and its pairwise-structure classification.
func BenchmarkFig1dInteractionGraph(b *testing.B) { benchFigure(b, experiments.Fig1d) }

// BenchmarkFig4ReputationSurface regenerates Figure 4: the Formula (2)
// reputation-bound surface of suspected colluders.
func BenchmarkFig4ReputationSurface(b *testing.B) { benchFigure(b, experiments.Fig4) }

// BenchmarkFig5EigenTrustB06 regenerates Figure 5: bare EigenTrust
// reputation distribution with B=0.6.
func BenchmarkFig5EigenTrustB06(b *testing.B) { benchFigure(b, experiments.Fig5) }

// BenchmarkFig6EigenTrustB02 regenerates Figure 6: bare EigenTrust with
// B=0.2.
func BenchmarkFig6EigenTrustB02(b *testing.B) { benchFigure(b, experiments.Fig6) }

// BenchmarkFig7Compromised regenerates Figure 7: bare EigenTrust with
// compromised pretrusted nodes.
func BenchmarkFig7Compromised(b *testing.B) { benchFigure(b, experiments.Fig7) }

// BenchmarkFig8Detectors regenerates Figure 8: the standalone detectors on
// summation reputation.
func BenchmarkFig8Detectors(b *testing.B) { benchFigure(b, experiments.Fig8) }

// BenchmarkFig9CombinedB06 regenerates Figure 9: EigenTrust+Optimized with
// B=0.6.
func BenchmarkFig9CombinedB06(b *testing.B) { benchFigure(b, experiments.Fig9) }

// BenchmarkFig10CombinedB02 regenerates Figure 10: EigenTrust+Optimized
// with B=0.2.
func BenchmarkFig10CombinedB02(b *testing.B) { benchFigure(b, experiments.Fig10) }

// BenchmarkFig11CombinedCompromised regenerates Figure 11:
// EigenTrust+Optimized with compromised pretrusted nodes.
func BenchmarkFig11CombinedCompromised(b *testing.B) { benchFigure(b, experiments.Fig11) }

// BenchmarkFig12RequestsToColluders regenerates Figure 12: percent of
// requests served by colluders vs colluder count, for all three methods.
func BenchmarkFig12RequestsToColluders(b *testing.B) { benchFigure(b, experiments.Fig12) }

// BenchmarkFig13OperationCost regenerates Figure 13: operation cost vs
// colluder count for EigenTrust, Unoptimized and Optimized.
func BenchmarkFig13OperationCost(b *testing.B) { benchFigure(b, experiments.Fig13) }

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationThresholds sweeps T_a/T_b/T_N and scores detection
// quality (the paper's future-work question of threshold selection).
func BenchmarkAblationThresholds(b *testing.B) { benchFigure(b, experiments.AbThresholds) }

// BenchmarkAblationStrictReverse compares the default and literal reverse
// rules on the compromised-pretrust scenario.
func BenchmarkAblationStrictReverse(b *testing.B) { benchFigure(b, experiments.AbStrict) }

// BenchmarkAblationManagers measures decentralized detection cost across
// manager counts.
func BenchmarkAblationManagers(b *testing.B) { benchFigure(b, experiments.AbManagers) }

// BenchmarkAblationFalsePositives measures false detections on honest
// workloads.
func BenchmarkAblationFalsePositives(b *testing.B) { benchFigure(b, experiments.AbFalsePositives) }

// BenchmarkAblationGroup compares pairwise and group detection across
// collective sizes.
func BenchmarkAblationGroup(b *testing.B) { benchFigure(b, experiments.AbGroup) }

// BenchmarkAblationEngines compares reputation engines' collusion
// resistance.
func BenchmarkAblationEngines(b *testing.B) { benchFigure(b, experiments.AbEngines) }

// BenchmarkAblationSybil compares detector families against a one-way
// boosting swarm.
func BenchmarkAblationSybil(b *testing.B) { benchFigure(b, experiments.AbSybil) }

// BenchmarkAblationTimeline records per-cycle reputation dynamics with and
// without the detector.
func BenchmarkAblationTimeline(b *testing.B) { benchFigure(b, experiments.AbTimeline) }

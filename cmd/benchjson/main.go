// Command benchjson converts `go test -bench -benchmem` text output into a
// stable JSON document, so benchmark baselines can be checked in and
// diffed (see `make bench-save`, which writes BENCH_detect.json).
//
// Usage:
//
//	go test -bench 'Detect' -benchmem ./internal/core/ | benchjson > BENCH_detect.json
//
// The output is a JSON array sorted by benchmark name, one object per
// benchmark line:
//
//	[{"name": "BenchmarkBasicDetect200", "ns_per_op": 1234.5,
//	  "bytes_per_op": 8304, "allocs_per_op": 14}, ...]
//
// Non-benchmark lines (goos/pkg headers, PASS/ok trailers) are ignored, so
// the raw `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	benches, err := Parse(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(benches)
}

// Parse reads `go test -bench` text output and returns the benchmark
// results sorted by name. Lines that do not look like benchmark results
// are skipped; malformed numeric fields on a benchmark line are an error.
func Parse(in io.Reader) ([]Bench, error) {
	var benches []Bench
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Layout: Name  N  ns/op-value ns/op  [B/op-value B/op]  [allocs-value allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		b := Bench{Name: trimProcSuffix(fields[0])}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: ns/op: %w", line, err)
		}
		b.NsPerOp = ns
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: %s: %w", line, fields[i+1], err)
			}
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		benches = append(benches, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	return benches, nil
}

// trimProcSuffix drops the -N GOMAXPROCS suffix Go appends to benchmark
// names, so baselines compare across machines with different core counts.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

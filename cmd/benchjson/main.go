// Command benchjson converts `go test -bench -benchmem` text output into a
// stable JSON document, so benchmark baselines can be checked in and
// diffed (see `make bench-save`, which writes BENCH_detect.json).
//
// Usage:
//
//	go test -bench 'Detect' -benchmem ./internal/core/ | benchjson > BENCH_detect.json
//
// The output is a JSON array sorted by benchmark name, one object per
// benchmark line:
//
//	[{"name": "BenchmarkBasicDetect200", "ns_per_op": 1234.5,
//	  "bytes_per_op": 8304, "allocs_per_op": 14}, ...]
//
// Non-benchmark lines (goos/pkg headers, PASS/ok trailers) are ignored, so
// the raw `go test` stream can be piped in unfiltered. Repeated lines for
// the same benchmark (from `go test -count=N`) are collapsed to the
// per-metric minimum: the fastest repetition is the closest observable
// estimate of the code's true cost, so min-of-N on both the baseline and
// the candidate keeps scheduler noise out of the regression gate.
//
// Compare mode gates CI on regressions against a checked-in baseline:
//
//	benchjson -compare BENCH_detect.json new.json
//
// It exits non-zero when any benchmark present in both files regressed by
// more than 20% in ns/op, in bytes/op, or in allocs/op (the memory and
// allocation gates only apply when the baseline recorded a nonzero
// bytes_per_op or allocs_per_op respectively, so -benchmem-less baselines
// and genuinely allocation-free benchmarks stay comparable — colsimlint's
// hotalloc analyzer guards the zero-alloc paths the ratio gate cannot
// express). Benchmarks present in only one file are
// reported but do not fail the comparison (baselines are refreshed with
// `make bench-save` when benchmarks are added or removed).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	compare := flag.Bool("compare", false,
		"compare two benchmark JSON files (old new); exit non-zero on >20% ns/op, bytes/op or allocs/op regressions")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressed, err := runCompare(flag.Arg(0), flag.Arg(1), os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// RegressionThreshold is the growth factor beyond which -compare fails —
// applied to ns/op always, and to bytes/op and allocs/op when the baseline
// recorded a nonzero value: 1.20 tolerates CI-runner noise while catching
// real slowdowns and allocation regressions.
const RegressionThreshold = 1.20

// runCompare loads two benchmark JSON files and reports per-benchmark
// deltas to w. It returns true when any shared benchmark regressed beyond
// RegressionThreshold.
func runCompare(oldPath, newPath string, w io.Writer) (regressed bool, err error) {
	oldB, err := loadBenches(oldPath)
	if err != nil {
		return false, err
	}
	newB, err := loadBenches(newPath)
	if err != nil {
		return false, err
	}
	return Compare(oldB, newB, w), nil
}

// Compare writes a delta report for every benchmark in either slice and
// returns true when a benchmark present in both regressed by more than
// RegressionThreshold in ns/op, or in bytes/op or allocs/op for benchmarks
// whose baseline recorded a nonzero count (a zero baseline cannot express
// 20% growth; new allocations on a previously allocation-free path are
// hotalloc's job to catch at the source level).
func Compare(oldB, newB []Bench, w io.Writer) bool {
	oldByName := make(map[string]Bench, len(oldB))
	for _, b := range oldB {
		oldByName[b.Name] = b
	}
	newByName := make(map[string]Bench, len(newB))
	for _, b := range newB {
		newByName[b.Name] = b
	}
	regressed := false
	for _, nb := range newB { // newB is sorted by name
		ob, ok := oldByName[nb.Name]
		if !ok {
			fmt.Fprintf(w, "NEW   %-40s %12.0f ns/op\n", nb.Name, nb.NsPerOp)
			continue
		}
		ratio := 0.0
		if ob.NsPerOp > 0 {
			ratio = nb.NsPerOp / ob.NsPerOp
		}
		status := "OK   "
		if ratio > RegressionThreshold {
			status = "FAIL "
			regressed = true
		}
		fmt.Fprintf(w, "%s %-40s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			status, nb.Name, ob.NsPerOp, nb.NsPerOp, 100*(ratio-1))
		// Memory gate: only when the baseline measured bytes (a zero
		// baseline means -benchmem was off, or the benchmark genuinely
		// allocates nothing — neither can express a 20% growth).
		if ob.BytesPerOp > 0 {
			bratio := float64(nb.BytesPerOp) / float64(ob.BytesPerOp)
			if bratio > RegressionThreshold {
				regressed = true
				fmt.Fprintf(w, "FAIL  %-40s %12d -> %12d B/op (%+.1f%%)\n",
					nb.Name, ob.BytesPerOp, nb.BytesPerOp, 100*(bratio-1))
			}
		}
		// Allocation gate: same shape as the memory gate. Counts are
		// steadier than bytes across runners, so this catches per-op
		// allocation creep even when sizes shrink enough to pass B/op.
		if ob.AllocsPerOp > 0 {
			aratio := float64(nb.AllocsPerOp) / float64(ob.AllocsPerOp)
			if aratio > RegressionThreshold {
				regressed = true
				fmt.Fprintf(w, "FAIL  %-40s %12d -> %12d allocs/op (%+.1f%%)\n",
					nb.Name, ob.AllocsPerOp, nb.AllocsPerOp, 100*(aratio-1))
			}
		}
	}
	for _, ob := range oldB {
		if _, ok := newByName[ob.Name]; !ok {
			fmt.Fprintf(w, "GONE  %-40s %12.0f ns/op\n", ob.Name, ob.NsPerOp)
		}
	}
	return regressed
}

// loadBenches reads a benchmark JSON document written by this command.
func loadBenches(path string) ([]Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var benches []Bench
	if err := json.Unmarshal(data, &benches); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	return benches, nil
}

func run(in io.Reader, out io.Writer) error {
	benches, err := Parse(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(benches)
}

// Parse reads `go test -bench` text output and returns the benchmark
// results sorted by name, with `-count=N` repetitions of the same
// benchmark collapsed to the minimum of each metric. Lines that do not
// look like benchmark results are skipped; malformed numeric fields on a
// benchmark line are an error.
func Parse(in io.Reader) ([]Bench, error) {
	var benches []Bench
	byName := make(map[string]int)
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Layout: Name  N  ns/op-value ns/op  [B/op-value B/op]  [allocs-value allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		b := Bench{Name: trimProcSuffix(fields[0])}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: ns/op: %w", line, err)
		}
		b.NsPerOp = ns
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: %s: %w", line, fields[i+1], err)
			}
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			}
		}
		if i, ok := byName[b.Name]; ok {
			benches[i] = minBench(benches[i], b)
			continue
		}
		byName[b.Name] = len(benches)
		benches = append(benches, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(benches, func(i, j int) bool { return benches[i].Name < benches[j].Name })
	return benches, nil
}

// minBench folds two repetitions of the same benchmark into their
// per-metric minimum — the noise-floor estimate the gate compares.
func minBench(a, b Bench) Bench {
	if b.NsPerOp < a.NsPerOp {
		a.NsPerOp = b.NsPerOp
	}
	if b.BytesPerOp < a.BytesPerOp {
		a.BytesPerOp = b.BytesPerOp
	}
	if b.AllocsPerOp < a.AllocsPerOp {
		a.AllocsPerOp = b.AllocsPerOp
	}
	return a
}

// trimProcSuffix drops the -N GOMAXPROCS suffix Go appends to benchmark
// names, so baselines compare across machines with different core counts.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

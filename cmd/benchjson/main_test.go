package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/p2psim/collusion/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkOptimizedDetect200-8   	   10000	    104567 ns/op	    8304 B/op	      14 allocs/op
BenchmarkBasicDetect200-8       	     170	   6841234 ns/op	   45464 B/op	      12 allocs/op
BenchmarkNoMem-8                	    5000	      2000 ns/op
PASS
ok  	github.com/p2psim/collusion/internal/core	12.345s
`

func TestParse(t *testing.T) {
	benches, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(benches), benches)
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	if benches[0].Name != "BenchmarkBasicDetect200" {
		t.Fatalf("first bench = %q, want BenchmarkBasicDetect200", benches[0].Name)
	}
	if benches[0].NsPerOp != 6841234 || benches[0].BytesPerOp != 45464 || benches[0].AllocsPerOp != 12 {
		t.Fatalf("BasicDetect200 = %+v", benches[0])
	}
	if benches[1].NsPerOp != 2000 || benches[1].BytesPerOp != 0 || benches[1].AllocsPerOp != 0 {
		t.Fatalf("NoMem (no -benchmem fields) = %+v", benches[1])
	}
	if benches[2].Name != "BenchmarkOptimizedDetect200" || benches[2].AllocsPerOp != 14 {
		t.Fatalf("OptimizedDetect200 = %+v", benches[2])
	}
}

func TestParseMalformedNumber(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX-4  10  abc ns/op\n"))
	if err == nil {
		t.Fatal("malformed ns/op accepted")
	}
}

func TestParseEmptyInput(t *testing.T) {
	benches, err := Parse(strings.NewReader("PASS\nok x 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output", len(benches))
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`"name": "BenchmarkBasicDetect200"`, `"ns_per_op": 6841234`, `"allocs_per_op": 12`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkX-foo":      "BenchmarkX-foo",
		"BenchmarkSparse1000": "BenchmarkSparse1000",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

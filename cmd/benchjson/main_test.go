package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/p2psim/collusion/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkOptimizedDetect200-8   	   10000	    104567 ns/op	    8304 B/op	      14 allocs/op
BenchmarkBasicDetect200-8       	     170	   6841234 ns/op	   45464 B/op	      12 allocs/op
BenchmarkNoMem-8                	    5000	      2000 ns/op
PASS
ok  	github.com/p2psim/collusion/internal/core	12.345s
`

func TestParse(t *testing.T) {
	benches, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(benches), benches)
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	if benches[0].Name != "BenchmarkBasicDetect200" {
		t.Fatalf("first bench = %q, want BenchmarkBasicDetect200", benches[0].Name)
	}
	if benches[0].NsPerOp != 6841234 || benches[0].BytesPerOp != 45464 || benches[0].AllocsPerOp != 12 {
		t.Fatalf("BasicDetect200 = %+v", benches[0])
	}
	if benches[1].NsPerOp != 2000 || benches[1].BytesPerOp != 0 || benches[1].AllocsPerOp != 0 {
		t.Fatalf("NoMem (no -benchmem fields) = %+v", benches[1])
	}
	if benches[2].Name != "BenchmarkOptimizedDetect200" || benches[2].AllocsPerOp != 14 {
		t.Fatalf("OptimizedDetect200 = %+v", benches[2])
	}
}

// TestParseMinOfRepetitions pins the -count=N collapse: repeated lines
// for one benchmark reduce to the per-metric minimum, so a single noisy
// repetition cannot move the checked-in baseline or trip the gate.
func TestParseMinOfRepetitions(t *testing.T) {
	const repeated = `BenchmarkA-8  100  3000 ns/op  500 B/op  9 allocs/op
BenchmarkA-8  100  1000 ns/op  700 B/op  7 allocs/op
BenchmarkA-8  100  2000 ns/op  600 B/op  8 allocs/op
BenchmarkB-8  100  42 ns/op
`
	benches, err := Parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 after collapsing: %+v", len(benches), benches)
	}
	a := benches[0]
	if a.Name != "BenchmarkA" || a.NsPerOp != 1000 || a.BytesPerOp != 500 || a.AllocsPerOp != 7 {
		t.Fatalf("collapsed BenchmarkA = %+v, want per-metric minima {1000 500 7}", a)
	}
	if benches[1].NsPerOp != 42 {
		t.Fatalf("single-repetition BenchmarkB = %+v", benches[1])
	}
}

func TestParseMalformedNumber(t *testing.T) {
	_, err := Parse(strings.NewReader("BenchmarkX-4  10  abc ns/op\n"))
	if err == nil {
		t.Fatal("malformed ns/op accepted")
	}
}

func TestParseEmptyInput(t *testing.T) {
	benches, err := Parse(strings.NewReader("PASS\nok x 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output", len(benches))
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`"name": "BenchmarkBasicDetect200"`, `"ns_per_op": 6841234`, `"allocs_per_op": 12`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q:\n%s", want, s)
		}
	}
}

func TestCompareNoRegression(t *testing.T) {
	oldB := []Bench{{Name: "BenchmarkA", NsPerOp: 1000}, {Name: "BenchmarkB", NsPerOp: 500}}
	newB := []Bench{{Name: "BenchmarkA", NsPerOp: 1150}, {Name: "BenchmarkB", NsPerOp: 400}}
	var out bytes.Buffer
	if Compare(oldB, newB, &out) {
		t.Fatalf("15%% growth flagged as regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("report missing OK lines:\n%s", out.String())
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldB := []Bench{{Name: "BenchmarkA", NsPerOp: 1000}}
	newB := []Bench{{Name: "BenchmarkA", NsPerOp: 1300}}
	var out bytes.Buffer
	if !Compare(oldB, newB, &out) {
		t.Fatalf("30%% growth not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("report missing FAIL line:\n%s", out.String())
	}
}

// TestCompareFlagsBytesRegression pins the memory gate: a benchmark whose
// ns/op held steady but whose bytes/op grew beyond the threshold fails.
func TestCompareFlagsBytesRegression(t *testing.T) {
	oldB := []Bench{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 10000}}
	newB := []Bench{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 13000}}
	var out bytes.Buffer
	if !Compare(oldB, newB, &out) {
		t.Fatalf("30%% bytes/op growth not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "B/op") {
		t.Fatalf("report missing B/op FAIL line:\n%s", out.String())
	}
}

// TestCompareBytesWithinThreshold pins that sub-threshold byte growth and
// zero-byte baselines (no -benchmem, or genuinely allocation-free) pass.
func TestCompareBytesWithinThreshold(t *testing.T) {
	oldB := []Bench{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 10000},
		{Name: "BenchmarkNoMem", NsPerOp: 500}, // zero baseline: gate off
	}
	newB := []Bench{
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 11500},
		{Name: "BenchmarkNoMem", NsPerOp: 500, BytesPerOp: 4096},
	}
	var out bytes.Buffer
	if Compare(oldB, newB, &out) {
		t.Fatalf("15%% bytes growth or zero-baseline change flagged:\n%s", out.String())
	}
}

// TestCompareFlagsAllocsRegression pins the allocation gate: a benchmark
// whose ns/op and bytes/op held steady but whose allocs/op grew beyond the
// threshold fails.
func TestCompareFlagsAllocsRegression(t *testing.T) {
	oldB := []Bench{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 10000, AllocsPerOp: 10}}
	newB := []Bench{{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 10000, AllocsPerOp: 13}}
	var out bytes.Buffer
	if !Compare(oldB, newB, &out) {
		t.Fatalf("30%% allocs/op growth not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "allocs/op") {
		t.Fatalf("report missing allocs/op FAIL line:\n%s", out.String())
	}
}

// TestCompareAllocsWithinThreshold pins that sub-threshold allocation
// growth and zero-alloc baselines pass: a benchmark that was allocation-
// free cannot express 20% growth, so new allocations there are hotalloc's
// job, not the ratio gate's.
func TestCompareAllocsWithinThreshold(t *testing.T) {
	oldB := []Bench{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkZeroAlloc", NsPerOp: 500}, // zero baseline: gate off
	}
	newB := []Bench{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 11},
		{Name: "BenchmarkZeroAlloc", NsPerOp: 500, AllocsPerOp: 7},
	}
	var out bytes.Buffer
	if Compare(oldB, newB, &out) {
		t.Fatalf("10%% alloc growth or zero-baseline change flagged:\n%s", out.String())
	}
}

// TestCompareUnpairedBenchmarks pins that added/removed benchmarks are
// reported but never fail the gate — only shared-name regressions do.
func TestCompareUnpairedBenchmarks(t *testing.T) {
	oldB := []Bench{{Name: "BenchmarkGone", NsPerOp: 10}}
	newB := []Bench{{Name: "BenchmarkNew", NsPerOp: 999999}}
	var out bytes.Buffer
	if Compare(oldB, newB, &out) {
		t.Fatalf("unpaired benchmarks failed the comparison:\n%s", out.String())
	}
	s := out.String()
	if !strings.Contains(s, "NEW") || !strings.Contains(s, "GONE") {
		t.Fatalf("report missing NEW/GONE lines:\n%s", s)
	}
}

func TestRunCompareFiles(t *testing.T) {
	dir := t.TempDir()
	oldPath := dir + "/old.json"
	newPath := dir + "/new.json"
	if err := os.WriteFile(oldPath, []byte(`[{"name":"BenchmarkA","ns_per_op":100}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(`[{"name":"BenchmarkA","ns_per_op":300}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	regressed, err := runCompare(oldPath, newPath, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("3x slowdown not reported as regression:\n%s", out.String())
	}
	if _, err := runCompare(oldPath, dir+"/missing.json", &out); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(newPath, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCompare(oldPath, newPath, &out); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkX-foo":      "BenchmarkX-foo",
		"BenchmarkSparse1000": "BenchmarkSparse1000",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

// Command colsim runs one P2P file-sharing simulation (the Section V
// testbed) and reports the reputation distribution, the colluders'
// request share, detection results and operation costs. The EigenTrust
// engine stores trust sparsely (column-compressed from the ledger, see
// DESIGN.md section 17), so -nodes scales to the millions while scores
// and costs stay bit-identical to the dense formulation.
//
// Usage:
//
//	colsim [-nodes 200] [-colluders 8] [-b 0.6]
//	       [-engine eigentrust|summation|weighted|iterative|similarity]
//	       [-detector none|basic|optimized|group|sybil]
//	       [-compromised] [-ring 0] [-swarm 0] [-cycles 20] [-window 0]
//	       [-ingest-shards 0] [-full-detect] [-runs 1] [-seed 1]
//	       [-trace trace.jsonl] [-metrics metrics.json|metrics.prom]
//	       [-spans spans.jsonl] [-progress progress.jsonl]
//	       [-telemetry-addr :9090] [-telemetry-linger 30s]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	       [-serve] [-record-requests reqs.jsonl]
//	       [-replay-requests reqs.jsonl] [-replay-out out.jsonl]
//	       [-flagged flagged.json]
//
// Examples:
//
//	colsim -b 0.6                               # Figure 5 conditions
//	colsim -b 0.2 -detector optimized           # Figure 10 conditions
//	colsim -b 0.2 -compromised -detector optimized   # Figure 11 conditions
//	colsim -b 0.2 -detector optimized -trace trace.jsonl  # audit every decision
//	colsim -detector basic -metrics metrics.prom -cpuprofile cpu.pprof
//	colsim -detector optimized -window 4 -spans spans.jsonl  # phase timeline
//	colsim -telemetry-addr :9090 -metrics metrics.prom       # live scrape
//	colsim -serve -detector optimized -telemetry-addr :9090  # resident service (/v1/ API)
//	colsim -serve -detector optimized -record-requests reqs.jsonl -flagged served.json
//	colsim -replay-requests reqs.jsonl -detector optimized -replay-out out.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	collusion "github.com/p2psim/collusion"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/obs/prof"
	"github.com/p2psim/collusion/internal/obs/serve"
	"github.com/p2psim/collusion/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "colsim:", err)
		os.Exit(1)
	}
}

// run parses args, executes the simulation and writes the report to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("colsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes           = fs.Int("nodes", 200, "network size")
		colluders       = fs.Int("colluders", 8, "number of colluders (paired consecutively)")
		b               = fs.Float64("b", 0.6, "colluder good-behavior probability B")
		engine          = fs.String("engine", "eigentrust", "reputation engine: eigentrust, summation, weighted, iterative, similarity")
		detector        = fs.String("detector", "none", "collusion detector: none, basic, optimized, group, sybil")
		compromised     = fs.Bool("compromised", false, "compromise two pretrusted nodes (Figure 7/11 scenario)")
		ringSize        = fs.Int("ring", 0, "also plant one colluder ring of this size (>= 3)")
		swarmSize       = fs.Int("swarm", 0, "also plant one Sybil swarm with this many fake boosters (>= 2)")
		cycles          = fs.Int("cycles", 20, "simulation cycles")
		window          = fs.Int("window", 0, "sliding-window length in simulation cycles (0: cumulative)")
		shards          = fs.Int("ingest-shards", 0, "writer goroutines for sharded rating ingest (0: immediate single-writer records)")
		fullDetect      = fs.Bool("full-detect", false, "run every detection cycle from scratch instead of incrementally (identical output, higher cost)")
		runs            = fs.Int("runs", 1, "runs to average")
		seed            = fs.Uint64("seed", 1, "random seed")
		tracePath       = fs.String("trace", "", "write the deterministic JSONL run trace to this file")
		metricsPath     = fs.String("metrics", "", "export metrics to this file after the run (.prom: Prometheus text, otherwise JSON)")
		spansPath       = fs.String("spans", "", "write the deterministic span timeline (JSONL phase events) to this file")
		progressPath    = fs.String("progress", "", "write one per-cycle registry-delta JSONL line to this file")
		telemetryAddr   = fs.String("telemetry-addr", "", "serve live telemetry on this address while the run executes (/metrics, /metrics.json, /healthz, /spans, /debug/pprof)")
		telemetryLinger = fs.Duration("telemetry-linger", 0, "keep the telemetry server scrapeable this long after outputs are written")
		cpuprofile      = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile      = fs.String("memprofile", "", "write a pprof heap profile to this file")
		serveMode       = fs.Bool("serve", false, "run as a resident detection service fed by the seeded simulator (one simulation cycle per epoch); mounts /v1/ on -telemetry-addr")
		recordReqs      = fs.String("record-requests", "", "with -serve: write the applied batches as a JSONL request log (input for -replay-requests)")
		replayReqs      = fs.String("replay-requests", "", "replay this JSONL request log through a fresh service instead of simulating")
		replayOut       = fs.String("replay-out", "", "with -replay-requests: write response lines to this file instead of stdout")
		flaggedPath     = fs.String("flagged", "", "write the final flagged document (epoch, flagged nodes, evidence pairs, scores) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := collusion.DefaultSimConfig()
	cfg.Seed = *seed
	cfg.Overlay.Nodes = *nodes
	cfg.SimCycles = *cycles
	cfg.WindowCycles = *window
	cfg.IngestShards = *shards
	cfg.FullDetect = *fullDetect
	cfg.ColluderGoodProb = *b
	cfg.Colluders = make([]int, *colluders)
	for i := range cfg.Colluders {
		cfg.Colluders[i] = 3 + i
	}
	switch *engine {
	case "eigentrust":
		cfg.Engine = collusion.EngineEigenTrust
	case "summation":
		cfg.Engine = collusion.EngineSummation
	case "weighted":
		cfg.Engine = collusion.EngineWeightedSum
	case "iterative":
		cfg.Engine = collusion.EngineIterativeWeighted
	case "similarity":
		cfg.Engine = collusion.EngineSimilarity
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	switch *detector {
	case "none":
		cfg.Detector = collusion.DetectorNone
	case "basic":
		cfg.Detector = collusion.DetectorBasic
	case "optimized":
		cfg.Detector = collusion.DetectorOptimized
	case "group":
		cfg.Detector = collusion.DetectorGroup
	case "sybil":
		cfg.Detector = collusion.DetectorSybil
	default:
		return fmt.Errorf("unknown detector %q", *detector)
	}
	next := 3 + *colluders
	if *ringSize >= 3 {
		ring := make([]int, *ringSize)
		for i := range ring {
			ring[i] = next
			next++
		}
		cfg.ColluderRings = [][]int{ring}
	}
	if *swarmSize >= 2 {
		swarm := make([]int, *swarmSize+1)
		for i := range swarm {
			swarm[i] = next
			next++
		}
		cfg.SybilSwarms = [][]int{swarm}
	}
	if *compromised {
		if *colluders < 3 {
			return fmt.Errorf("-compromised needs at least 3 colluders")
		}
		cfg.CompromisedPairs = [][2]int{{0, 3}, {1, 5}}
	}

	var meter collusion.CostMeter
	cfg.Meter = &meter

	if *recordReqs != "" && !*serveMode {
		return fmt.Errorf("-record-requests requires -serve")
	}
	if *replayOut != "" && *replayReqs == "" {
		return fmt.Errorf("-replay-out requires -replay-requests")
	}
	if *serveMode || *replayReqs != "" {
		if *runs > 1 {
			return fmt.Errorf("-serve/-replay-requests do not support -runs > 1")
		}
		if *spansPath != "" || *progressPath != "" || *cpuprofile != "" || *memprofile != "" {
			return fmt.Errorf("-spans/-progress/-cpuprofile/-memprofile are not supported in service mode")
		}
		return runService(stdout, cfg, serviceOpts{
			metricsPath:     *metricsPath,
			telemetryAddr:   *telemetryAddr,
			telemetryLinger: *telemetryLinger,
			tracePath:       *tracePath,
			recordPath:      *recordReqs,
			replayPath:      *replayReqs,
			replayOut:       *replayOut,
			flaggedPath:     *flaggedPath,
			meter:           &meter,
		})
	}
	if *flaggedPath != "" && *runs > 1 {
		return fmt.Errorf("-flagged requires a single run")
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		sink, err := obs.NewFileSink(*tracePath)
		if err != nil {
			return err
		}
		tracer = obs.NewTracer(sink)
		cfg.Tracer = tracer
	}
	var reg *obs.Registry
	if *metricsPath != "" || *progressPath != "" || *telemetryAddr != "" {
		reg = obs.NewRegistry(&meter)
		cfg.Obs = reg
	}
	if *metricsPath != "" {
		// Wall-clock detection latency comes from the unseeded profiling
		// harness; it observes into a histogram and never feeds back. It is
		// tied to -metrics (not to the registry existing) so that a
		// -progress stream on its own stays free of wall-clock histograms
		// and therefore byte-deterministic.
		cfg.CycleTimer = prof.DetectTimer(reg.Histogram("detect.cycle_ns"))
	}
	// The span timeline rides its own tracer: one file sink, one telemetry
	// hub, or both behind a tee. Wall-clock span durations are attached
	// only when something wall-clock-aware consumes the registry (-metrics
	// or a live scrape), for the same determinism reason as CycleTimer.
	var hub *serve.Hub
	var spanSinks []obs.Sink
	if *spansPath != "" {
		sink, err := obs.NewFileSink(*spansPath)
		if err != nil {
			return err
		}
		spanSinks = append(spanSinks, sink)
	}
	if *telemetryAddr != "" {
		hub = serve.NewHub(reg, 0)
		spanSinks = append(spanSinks, hub)
	}
	if len(spanSinks) > 0 {
		spans := obs.NewSpanTracer(obs.Tee(spanSinks...), &meter)
		if *metricsPath != "" || *telemetryAddr != "" {
			spans.Observer = prof.NewSpanTimer(reg)
		}
		cfg.Spans = spans
	}
	if *progressPath != "" {
		sink, err := obs.NewFileSink(*progressPath)
		if err != nil {
			return err
		}
		cfg.Progress = obs.NewProgress(reg, sink)
	}
	var srv *serve.Server
	if *telemetryAddr != "" {
		var err error
		srv, err = serve.Start(serve.Options{
			Addr:     *telemetryAddr,
			Registry: reg,
			Hub:      hub,
			Version:  "colsim",
		})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		// Printed before the run so scripts (and the CI smoke job) can
		// discover the port resolved from ":0".
		fmt.Fprintf(stdout, "telemetry listening on %s\n", srv.Addr())
		prev := cfg.OnCycle
		cfg.OnCycle = func(cycle int, scores []float64) {
			srv.SetCycle(cycle)
			if prev != nil {
				prev(cycle, scores)
			}
		}
	}
	if *cpuprofile != "" {
		stop, err := prof.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
	}

	if *runs > 1 {
		avg, err := collusion.RunSimulationAveraged(cfg, *runs)
		if err != nil {
			return err
		}
		printAveraged(stdout, cfg, avg)
		// Gauges are set once, post-run: parallel averaged runs share the
		// registry and only record into order-independent histograms.
		reg.Gauge("run.percent_to_colluders").Set(avg.PercentToColluders)
		reg.Gauge("run.runs_averaged").Set(float64(avg.Runs))
	} else {
		res, err := collusion.RunSimulation(cfg)
		if err != nil {
			return err
		}
		printSingle(stdout, cfg, res)
		reg.Gauge("run.requests_total").Set(float64(res.RequestsTotal))
		reg.Gauge("run.requests_to_colluders").Set(float64(res.RequestsToColluders))
		reg.Gauge("run.ratings_recorded").Set(float64(res.RatingsRecorded))
		flagged := 0
		for _, f := range res.Flagged {
			if f {
				flagged++
			}
		}
		reg.Gauge("run.flagged_total").Set(float64(flagged))
		if cfg.WindowCycles > 0 {
			reg.Gauge("window.delta_rows").Set(float64(res.WindowDeltaRows))
		}
		if *flaggedPath != "" {
			// The same document a served run exports from its final
			// snapshot; the CI smoke job byte-compares the two.
			doc := service.AppendFlagged(nil, int64(cfg.SimCycles), res.Scores, res.Flagged,
				func(i int) int64 { return int64(res.DetectionCycle[i]) }, res.DetectedPairs)
			if err := os.WriteFile(*flaggedPath, doc, 0o644); err != nil {
				return fmt.Errorf("flagged: %w", err)
			}
			fmt.Fprintf(stdout, "flagged document written to %s\n", *flaggedPath)
		}
	}
	fmt.Fprintln(stdout, "operation costs:")
	snap := meter.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(stdout, "  %-24s %d\n", name, snap[name])
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(stdout, "trace written to %s\n", *tracePath)
	}
	if cfg.Spans != nil {
		// Closing the span tracer closes its sink chain: the file sink
		// flushes and the hub (if any) ends every live /spans stream.
		if err := cfg.Spans.Close(); err != nil {
			return fmt.Errorf("spans: %w", err)
		}
		if *spansPath != "" {
			fmt.Fprintf(stdout, "span timeline written to %s\n", *spansPath)
		}
	}
	if cfg.Progress != nil {
		if err := cfg.Progress.Close(); err != nil {
			return fmt.Errorf("progress: %w", err)
		}
		fmt.Fprintf(stdout, "progress written to %s\n", *progressPath)
	}
	if *metricsPath != "" {
		if err := reg.WriteFile(*metricsPath); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		fmt.Fprintf(stdout, "metrics written to %s\n", *metricsPath)
	}
	if *memprofile != "" {
		if err := prof.WriteHeapProfile(*memprofile); err != nil {
			return err
		}
	}
	if srv != nil {
		// Nothing mutates the registry past this point, so a /metrics
		// scrape during the linger is byte-identical to the -metrics file
		// written above — the CI smoke job compares exactly that.
		srv.Linger(*telemetryLinger)
	}
	return nil
}

func role(cfg collusion.SimConfig, i int) string {
	for _, cp := range cfg.CompromisedPairs {
		if cp[0] == i {
			return "compromised"
		}
	}
	for _, p := range cfg.Pretrusted {
		if p == i {
			return "pretrusted"
		}
	}
	for _, c := range cfg.Colluders {
		if c == i {
			return "colluder"
		}
	}
	for _, ring := range cfg.ColluderRings {
		for _, m := range ring {
			if m == i {
				return "ring"
			}
		}
	}
	for _, swarm := range cfg.SybilSwarms {
		if swarm[0] == i {
			return "beneficiary"
		}
		for _, m := range swarm[1:] {
			if m == i {
				return "sybil"
			}
		}
	}
	return "normal"
}

func printSingle(w io.Writer, cfg collusion.SimConfig, res *collusion.SimResult) {
	fmt.Fprintf(w, "requests: %d total, %d to colluders (%.2f%%)\n",
		res.RequestsTotal, res.RequestsToColluders, 100*res.PercentToColluders())
	fmt.Fprintf(w, "ratings recorded: %d\n", res.RatingsRecorded)
	if len(res.DetectedPairs) > 0 {
		fmt.Fprintln(w, "detected colluding pairs (1-based IDs):")
		for _, e := range res.DetectedPairs {
			fmt.Fprintf(w, "  (%d, %d)  N=%d/%d  a=%.2f/%.2f\n",
				e.I+1, e.J+1, e.NIJ, e.NJI, e.AIJ, e.AJI)
		}
	}
	fmt.Fprintln(w, "final reputations (first 20 nodes, 1-based IDs):")
	n := 20
	if n > len(res.Scores) {
		n = len(res.Scores)
	}
	for i := 0; i < n; i++ {
		flag := ""
		if res.Flagged[i] {
			flag = "  [flagged]"
		}
		fmt.Fprintf(w, "  node %-3d %-12s %.6f%s\n", i+1, role(cfg, i), res.Scores[i], flag)
	}
}

func printAveraged(w io.Writer, cfg collusion.SimConfig, avg *collusion.SimAveraged) {
	fmt.Fprintf(w, "averaged over %d runs; requests to colluders: %.2f%%\n",
		avg.Runs, 100*avg.PercentToColluders)
	fmt.Fprintln(w, "mean reputations (first 20 nodes, 1-based IDs):")
	n := 20
	if n > len(avg.Scores) {
		n = len(avg.Scores)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "  node %-3d %-12s %.6f  flag-rate %.2f\n",
			i+1, role(cfg, i), avg.Scores[i], avg.FlagRate[i])
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultScenario(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-nodes", "60", "-cycles", "5", "-colluders", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"requests:", "final reputations", "operation costs:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithDetector(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-nodes", "60", "-cycles", "6", "-colluders", "2",
		"-b", "0.2", "-detector", "optimized"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "[flagged]") {
		t.Fatalf("no flagged nodes in report:\n%s", stdout.String())
	}
}

func TestRunAveragedMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-nodes", "60", "-cycles", "4", "-colluders", "2", "-runs", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "averaged over 2 runs") {
		t.Fatalf("averaged report missing:\n%s", stdout.String())
	}
}

func TestRunRingAndSwarm(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-nodes", "80", "-cycles", "5", "-colluders", "2",
		"-ring", "3", "-swarm", "3", "-detector", "group"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "ring") || !strings.Contains(out, "sybil") {
		t.Fatalf("ring/swarm roles missing from report:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-engine", "magic"},
		{"-detector", "magic"},
		{"-compromised", "-colluders", "2"},
		{"-nodes", "1"},
		{"-unknownflag"},
	}
	for _, args := range cases {
		if err := run(args, &out, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// telemetryArgs is the base seeded scenario the telemetry-flag tests run.
func telemetryArgs(extra ...string) []string {
	base := []string{"-nodes", "60", "-cycles", "6", "-colluders", "8",
		"-b", "0.2", "-detector", "optimized", "-window", "3"}
	return append(base, extra...)
}

// TestRunSpansDeterministic pins the -spans flag end to end: the file is
// written, announced, and byte-identical across repeats and across
// -ingest-shards values.
func TestRunSpansDeterministic(t *testing.T) {
	timeline := func(shards string) []byte {
		t.Helper()
		path := filepath.Join(t.TempDir(), "spans.jsonl")
		var stdout, stderr bytes.Buffer
		err := run(telemetryArgs("-ingest-shards", shards, "-spans", path), &stdout, &stderr)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(stdout.String(), "span timeline written to "+path) {
			t.Fatalf("span output not announced:\n%s", stdout.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := timeline("1")
	if len(a) == 0 {
		t.Fatal("empty span timeline")
	}
	if !bytes.Equal(a, timeline("1")) {
		t.Fatal("repeated runs produced different span timelines")
	}
	if !bytes.Equal(a, timeline("8")) {
		t.Fatal("-ingest-shards changed the span timeline bytes")
	}
}

// TestRunProgressDeterministic pins the -progress flag: one line per
// cycle, byte-identical across repeats (no wall-clock histograms attach
// without -metrics or -telemetry-addr).
func TestRunProgressDeterministic(t *testing.T) {
	progress := func() []byte {
		t.Helper()
		path := filepath.Join(t.TempDir(), "progress.jsonl")
		var stdout, stderr bytes.Buffer
		if err := run(telemetryArgs("-progress", path), &stdout, &stderr); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := progress()
	if got := bytes.Count(a, []byte("\n")); got != 6 {
		t.Fatalf("progress has %d lines, want one per cycle (6):\n%s", got, a)
	}
	if !bytes.Equal(a, progress()) {
		t.Fatal("repeated runs produced different progress streams")
	}
}

// TestRunTelemetryServer pins the -telemetry-addr wiring: the resolved
// address is announced before the run and the server tears down cleanly
// with a zero linger.
func TestRunTelemetryServer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(telemetryArgs("-telemetry-addr", "127.0.0.1:0", "-telemetry-linger", "0s"),
		&stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "telemetry listening on 127.0.0.1:") {
		t.Fatalf("listen address not announced:\n%s", stdout.String())
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultScenario(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-nodes", "60", "-cycles", "5", "-colluders", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"requests:", "final reputations", "operation costs:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithDetector(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-nodes", "60", "-cycles", "6", "-colluders", "2",
		"-b", "0.2", "-detector", "optimized"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "[flagged]") {
		t.Fatalf("no flagged nodes in report:\n%s", stdout.String())
	}
}

func TestRunAveragedMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-nodes", "60", "-cycles", "4", "-colluders", "2", "-runs", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "averaged over 2 runs") {
		t.Fatalf("averaged report missing:\n%s", stdout.String())
	}
}

func TestRunRingAndSwarm(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-nodes", "80", "-cycles", "5", "-colluders", "2",
		"-ring", "3", "-swarm", "3", "-detector", "group"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "ring") || !strings.Contains(out, "sybil") {
		t.Fatalf("ring/swarm roles missing from report:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-engine", "magic"},
		{"-detector", "magic"},
		{"-compromised", "-colluders", "2"},
		{"-nodes", "1"},
		{"-unknownflag"},
	}
	for _, args := range cases {
		if err := run(args, &out, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

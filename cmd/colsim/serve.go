package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"time"

	collusion "github.com/p2psim/collusion"
	"github.com/p2psim/collusion/internal/ingest"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/obs/prof"
	"github.com/p2psim/collusion/internal/obs/serve"
	"github.com/p2psim/collusion/internal/service"
	"github.com/p2psim/collusion/internal/service/httpapi"
	"github.com/p2psim/collusion/internal/simulator"
)

// serviceOpts carries the service-mode flags out of run().
type serviceOpts struct {
	metricsPath     string
	telemetryAddr   string
	telemetryLinger time.Duration
	tracePath       string
	recordPath      string
	replayPath      string
	replayOut       string
	flaggedPath     string
	meter           *collusion.CostMeter
}

// newStore builds the resident detection service from the simulation
// configuration: engine, detector and thresholds come from the exact
// builders a batch run uses, so the service recomputes byte-identical
// state from the rating stream alone.
func newStore(cfg collusion.SimConfig, reg *obs.Registry, o serviceOpts) (*service.Store, *obs.Tracer, error) {
	built := cfg
	built.Obs = reg
	built.Meter = o.meter
	var tracer *obs.Tracer
	if o.tracePath != "" {
		sink, err := obs.NewFileSink(o.tracePath)
		if err != nil {
			return nil, nil, err
		}
		tracer = obs.NewTracer(sink)
		built.Tracer = tracer
	}
	svcCfg := service.Config{
		Nodes:        built.Overlay.Nodes,
		Engine:       simulator.BuildEngine(built),
		Detector:     simulator.BuildPairDetector(built),
		Thresholds:   built.DetectionThresholds(),
		IngestShards: built.IngestShards,
		WindowCycles: built.WindowCycles,
		FullDetect:   built.FullDetect,
		Obs:          reg,
		Tracer:       tracer,
	}
	if o.metricsPath != "" {
		// Same wall-clock gating as batch mode: the detection-latency
		// histogram only exists when a -metrics artifact asked for it.
		svcCfg.CycleTimer = prof.DetectTimer(reg.Histogram("detect.cycle_ns"))
	}
	st, err := service.New(svcCfg)
	if err != nil {
		return nil, nil, err
	}
	return st, tracer, nil
}

// writeFlagged writes the service's flagged document artifact from the
// store's current snapshot.
func writeFlagged(st *service.Store, path string) error {
	sn := st.Acquire()
	defer sn.Release()
	return os.WriteFile(path, service.AppendFlaggedSnapshot(nil, sn), 0o644)
}

// runService executes colsim's resident-service modes: -serve (seeded
// simulator as traffic source, one simulation cycle applied per epoch)
// and -replay-requests (deterministic JSONL request replay). Either way
// the service owns detection, scoring and telemetry; the final state is
// exportable as a flagged document byte-identical to the equivalent
// batch run's.
func runService(stdout io.Writer, cfg collusion.SimConfig, o serviceOpts) error {
	var reg *obs.Registry
	if o.metricsPath != "" || o.telemetryAddr != "" {
		reg = obs.NewRegistry(o.meter)
	}
	st, tracer, err := newStore(cfg, reg, o)
	if err != nil {
		return err
	}
	defer st.Close()

	var srv *serve.Server
	if o.telemetryAddr != "" {
		srv, err = serve.Start(serve.Options{
			Addr:     o.telemetryAddr,
			Registry: reg,
			Version:  "colsim-serve",
			API:      httpapi.New(st, reg),
		})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(stdout, "service listening on %s\n", srv.Addr())
	}

	if o.replayPath != "" {
		if err := replayRequests(stdout, st, o); err != nil {
			return err
		}
	} else {
		if err := serveSimulation(stdout, cfg, st, srv, o); err != nil {
			return err
		}
	}

	// The batch run observes the final pair-frequency distribution after
	// its last cycle; mirror it so a served -metrics artifact matches.
	if _, err := st.ObservePairFrequencies(); err != nil {
		return err
	}
	sn := st.Acquire()
	flaggedTotal := 0
	for _, f := range sn.Flagged() {
		if f {
			flaggedTotal++
		}
	}
	fmt.Fprintf(stdout, "final epoch %d: %d ratings, %d flagged, %d evidence pairs\n",
		sn.Epoch(), sn.Ratings(), flaggedTotal, len(sn.Pairs()))
	if reg != nil {
		reg.Gauge("run.ratings_recorded").Set(float64(sn.Ratings()))
		reg.Gauge("run.flagged_total").Set(float64(flaggedTotal))
	}
	sn.Release()

	if o.flaggedPath != "" {
		if err := writeFlagged(st, o.flaggedPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "flagged document written to %s\n", o.flaggedPath)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(stdout, "trace written to %s\n", o.tracePath)
	}
	if o.metricsPath != "" {
		if err := reg.WriteFile(o.metricsPath); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		fmt.Fprintf(stdout, "metrics written to %s\n", o.metricsPath)
	}
	if srv != nil {
		srv.Linger(o.telemetryLinger)
	}
	return nil
}

// serveSimulation runs the seeded simulator quiet — no registry, no
// meter, no detection artifacts of its own — as the service's traffic
// source: every simulation cycle's ratings are applied to the store as
// one epoch, so the served state at epoch E is byte-identical to a batch
// run stopped at cycle E. With -record-requests the applied batches are
// also written as a JSONL request log (with trailing epoch and flagged
// queries), the input to -replay-requests.
func serveSimulation(stdout io.Writer, cfg collusion.SimConfig, st *service.Store, srv *serve.Server, o serviceOpts) error {
	var rec *bufio.Writer
	var recFile *os.File
	if o.recordPath != "" {
		f, err := os.Create(o.recordPath)
		if err != nil {
			return err
		}
		recFile = f
		rec = bufio.NewWriter(f)
	}
	// The traffic-source sim carries none of the observability the
	// service owns; it just simulates peers and emits ratings.
	cfg.Obs = nil
	cfg.Meter = nil
	cfg.Tracer = nil
	cfg.Spans = nil
	cfg.Progress = nil
	cfg.CycleTimer = nil
	if srv != nil {
		cfg.OnCycle = func(cycle int, scores []float64) { srv.SetCycle(cycle) }
	}
	var line []byte
	tap := simulator.NewBatchTap(&cfg, func(cycle int, batch []ingest.Rating) error {
		if rec != nil {
			line = service.AppendRequestIngest(line[:0], batch)
			if _, err := rec.Write(line); err != nil {
				return err
			}
		}
		_, err := st.Apply(batch)
		return err
	})
	if _, err := collusion.RunSimulation(cfg); err != nil {
		return err
	}
	if err := tap.Err(); err != nil {
		return err
	}
	if rec != nil {
		line = service.AppendRequestQuery(line[:0], "epoch")
		line = service.AppendRequestQuery(line, "flagged")
		if _, err := rec.Write(line); err != nil {
			return err
		}
		if err := rec.Flush(); err != nil {
			return err
		}
		if err := recFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "request log written to %s\n", o.recordPath)
	}
	return nil
}

// replayRequests feeds a recorded JSONL request log through the store in
// order, writing each response line to -replay-out (stdout by default).
// Replaying the same log against the same configuration reproduces the
// original served run byte for byte.
func replayRequests(stdout io.Writer, st *service.Store, o serviceOpts) error {
	in, err := os.Open(o.replayPath)
	if err != nil {
		return err
	}
	defer func() { _ = in.Close() }()
	var out io.Writer = stdout
	if o.replayOut != "" {
		f, err := os.Create(o.replayOut)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		bw := bufio.NewWriter(f)
		defer func() { _ = bw.Flush() }()
		out = bw
	}
	if err := service.Replay(st, in, out); err != nil {
		return err
	}
	if o.replayOut != "" {
		fmt.Fprintf(stdout, "replay responses written to %s\n", o.replayOut)
	}
	return nil
}

// Command colsimlint runs the project's determinism and correctness
// analyzers (internal/lint) over package patterns and reports findings
// with file:line positions. It exits 0 when the tree is clean, 1 when
// there are findings, and 2 on usage or load errors.
//
// Usage:
//
//	colsimlint [-list] [-json] [pattern ...]
//
// A pattern ending in /... walks the directory tree (the default is
// ./...); any other pattern names one package directory. Findings can be
// suppressed with a //colsimlint:ignore <analyzer> <reason> comment on or
// directly above the offending line; see DESIGN.md "Static analysis".
//
// With -json the findings are emitted as one JSON array of
// {file, line, col, analyzer, message, suppressed} objects — including
// suppressed findings, so CI artifacts record what is being waived. The
// exit code still reflects only unsuppressed findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/p2psim/collusion/internal/lint"
)

// jsonFinding is the -json output record for one finding.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run executes the linter with the given arguments, resolving relative
// patterns against dir. It returns the process exit code.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("colsimlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzer catalogue and exit")
	jsonOut := fs.Bool("json", false, "emit findings (including suppressed ones) as a JSON array")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: colsimlint [-list] [-json] [pattern ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ldr, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := ldr.Load(dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	all := lint.RunAll(analyzers, pkgs)
	active := 0
	for _, f := range all {
		if !f.Suppressed {
			active++
		}
	}
	if *jsonOut {
		recs := make([]jsonFinding, 0, len(all))
		for _, f := range all {
			recs = append(recs, jsonFinding{
				File:       relFile(ldr.Root, f.Pos.Filename),
				Line:       f.Pos.Line,
				Col:        f.Pos.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
		out, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	} else {
		for _, f := range all {
			if !f.Suppressed {
				fmt.Fprintln(stdout, f)
			}
		}
	}
	if active > 0 {
		fmt.Fprintf(stderr, "colsimlint: %d finding(s) in %d package(s)\n", active, len(pkgs))
		return 1
	}
	return 0
}

// relFile renders a finding's file path relative to the module root (with
// forward slashes) so -json artifacts are stable across checkouts; paths
// outside the module are left absolute.
func relFile(root, file string) string {
	rel, err := filepath.Rel(root, file)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return file
	}
	return filepath.ToSlash(rel)
}

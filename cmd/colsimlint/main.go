// Command colsimlint runs the project's determinism and correctness
// analyzers (internal/lint) over package patterns and reports findings
// with file:line positions. It exits 0 when the tree is clean, 1 when
// there are findings, and 2 on usage or load errors.
//
// Usage:
//
//	colsimlint [-list] [pattern ...]
//
// A pattern ending in /... walks the directory tree (the default is
// ./...); any other pattern names one package directory. Findings can be
// suppressed with a //colsimlint:ignore <analyzer> <reason> comment on or
// directly above the offending line; see DESIGN.md "Static analysis".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/p2psim/collusion/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run executes the linter with the given arguments, resolving relative
// patterns against dir. It returns the process exit code.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("colsimlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzer catalogue and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: colsimlint [-list] [pattern ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ldr, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := ldr.Load(dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := lint.Run(analyzers, pkgs)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "colsimlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot locates the module root relative to this test's directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	return root
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, ".", &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{
		"determinism", "errdrop", "floateq", "hotalloc",
		"lockcheck", "maporder", "parreduce", "printlint",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// TestRepoIsClean is the acceptance gate: the linter must exit 0 with no
// findings on its own repository.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(nil, repoRoot(t), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("colsimlint ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run produced output:\n%s", stdout.String())
	}
}

// TestDirtyModuleFails proves the non-zero exit on violations end to end
// against a synthetic dirty module.
func TestDirtyModuleFails(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module example.com/dirty\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "dirty.go"), `package dirty

func fail() error { return nil }

// Use discards an error.
func Use() {
	fail()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, dir, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "errdrop") || !strings.Contains(stdout.String(), "dirty.go:7") {
		t.Fatalf("finding not reported with position:\n%s", stdout.String())
	}
}

// TestJSONDirtyModule checks the -json record shape on a module with one
// active and one suppressed finding: both appear, marked accordingly, the
// file path is module-relative, and the exit code counts only the active
// one.
func TestJSONDirtyModule(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module example.com/dirty\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "dirty.go"), `package dirty

func fail() error { return nil }

// Use discards two errors, one with a waiver.
func Use() {
	fail()
	fail() //colsimlint:ignore errdrop test fixture: intentional drop
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, dir, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	var recs []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &recs); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (active + suppressed):\n%s", len(recs), stdout.String())
	}
	for _, r := range recs {
		if r.File != "dirty.go" {
			t.Errorf("file = %q, want module-relative %q", r.File, "dirty.go")
		}
		if r.Analyzer != "errdrop" || r.Line == 0 || r.Col == 0 || r.Message == "" {
			t.Errorf("incomplete record: %+v", r)
		}
	}
	if recs[0].Suppressed || !recs[1].Suppressed {
		t.Errorf("suppression marks wrong: %+v", recs)
	}
}

// TestJSONCleanRepo runs -json over the repository itself: the exit code
// must stay 0 and the array must parse (it carries the suppressed-findings
// audit trail for the CI artifact).
func TestJSONCleanRepo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json"}, repoRoot(t), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("colsimlint -json ./... = exit %d\nstderr:\n%s", code, stderr.String())
	}
	var recs []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &recs); err != nil {
		t.Fatalf("-json output is not a JSON array: %v", err)
	}
	for _, r := range recs {
		if sup, _ := r["suppressed"].(bool); !sup {
			t.Errorf("clean repo emitted unsuppressed finding: %v", r)
		}
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no-such-dir"}, repoRoot(t), &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot locates the module root relative to this test's directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	return root
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, ".", &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"determinism", "errdrop", "floateq", "maporder", "printlint"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// TestRepoIsClean is the acceptance gate: the linter must exit 0 with no
// findings on its own repository.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(nil, repoRoot(t), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("colsimlint ./... = exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("clean run produced output:\n%s", stdout.String())
	}
}

// TestDirtyModuleFails proves the non-zero exit on violations end to end
// against a synthetic dirty module.
func TestDirtyModuleFails(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module example.com/dirty\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "dirty.go"), `package dirty

func fail() error { return nil }

// Use discards an error.
func Use() {
	fail()
}
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, dir, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "errdrop") || !strings.Contains(stdout.String(), "dirty.go:7") {
		t.Fatalf("finding not reported with position:\n%s", stdout.String())
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no-such-dir"}, repoRoot(t), &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Command experiments regenerates the paper's evaluation artifacts: every
// quantitative figure (1a-1d, 4, 5-13) and the ablation studies, as
// aligned text tables, optionally exporting CSVs for plotting. Figures
// that exercise the EigenTrust engine run on the sparse matrix engine;
// CSVs are byte-identical for every -workers value (CI compares them).
//
// Usage:
//
//	experiments [-fig all|ablations|fig1a|...|fig13|ab-*] [-runs 5] [-seed 1] [-scale 1.0] [-workers 0] [-full-detect] [-out dir]
//	            [-trace trace.jsonl] [-metrics metrics.json|metrics.prom]
//	            [-progress progress.jsonl] [-telemetry-addr :9090] [-telemetry-linger 30s]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Examples:
//
//	experiments -fig fig12                # one figure, 5-run averaging
//	experiments -fig all -out results/    # everything + CSVs
//	experiments -fig ablations -runs 3    # the ablation studies
//	experiments -fig fig13 -runs 1        # quick single-run pass
//	experiments -fig fig12 -workers 4     # parallel engine, identical output
//	experiments -fig fig8 -trace trace.jsonl -metrics metrics.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/p2psim/collusion/internal/experiments"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/obs/prof"
	"github.com/p2psim/collusion/internal/obs/serve"
	"github.com/p2psim/collusion/internal/parallel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run parses args, executes the selected drivers, and renders the tables
// to stdout (plus CSVs when -out is set).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig     = fs.String("fig", "all", "figure to regenerate (all, ablations, fig1a-fig1d, fig4-fig13, ab-*)")
		runs    = fs.Int("runs", 5, "simulation runs to average (the paper uses 5)")
		seed    = fs.Uint64("seed", 1, "root random seed")
		scale   = fs.Float64("scale", 1.0, "synthetic-trace volume scale")
		workers = fs.Int("workers", 0, "worker goroutines for the parallel engine (0: GOMAXPROCS; output is identical for every value)")
		shards  = fs.Int("ingest-shards", 0, "writer goroutines for sharded rating ingest inside each simulation (0: immediate single-writer records)")
		full    = fs.Bool("full-detect", false, "run every detection cycle from scratch instead of incrementally (identical output, higher cost)")
		out     = fs.String("out", "", "directory for CSV export (empty: no files)")

		tracePath       = fs.String("trace", "", "write the deterministic JSONL run trace to this file")
		metricsPath     = fs.String("metrics", "", "export metrics to this file after the run (.prom: Prometheus text, otherwise JSON)")
		progressPath    = fs.String("progress", "", "write per-cycle registry-delta JSONL lines to this file (live feed; cell-parallel figures interleave)")
		telemetryAddr   = fs.String("telemetry-addr", "", "serve live telemetry on this address while experiments run (/metrics, /metrics.json, /healthz, /debug/pprof)")
		telemetryLinger = fs.Duration("telemetry-linger", 0, "keep the telemetry server scrapeable this long after outputs are written")
		cpuprofile      = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile      = fs.String("memprofile", "", "write a pprof heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := *workers
	if w <= 0 {
		w = parallel.DefaultWorkers()
	}
	opts := experiments.Options{Seed: *seed, Runs: *runs, Scale: *scale, Workers: w, IngestShards: *shards, FullDetect: *full}
	var tracer *obs.Tracer
	if *tracePath != "" {
		sink, err := obs.NewFileSink(*tracePath)
		if err != nil {
			return err
		}
		tracer = obs.NewTracer(sink)
		opts.Tracer = tracer
	}
	var reg *obs.Registry
	if *metricsPath != "" || *progressPath != "" || *telemetryAddr != "" {
		reg = obs.NewRegistry(nil)
		opts.Obs = reg
	}
	if *progressPath != "" {
		sink, err := obs.NewFileSink(*progressPath)
		if err != nil {
			return err
		}
		opts.Progress = obs.NewProgress(reg, sink)
	}
	var srv *serve.Server
	if *telemetryAddr != "" {
		// No span hub here: experiments runs figure cells concurrently and
		// a span tracer's open-span stack describes one sequential loop, so
		// the sweep exposes metrics and pprof but not /spans (404).
		var err error
		srv, err = serve.Start(serve.Options{
			Addr:     *telemetryAddr,
			Registry: reg,
			Version:  "experiments",
		})
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(stdout, "telemetry listening on %s\n", srv.Addr())
	}
	if *cpuprofile != "" {
		stop, err := prof.StartCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer func() { _ = stop() }()
	}

	var tables []*experiments.Table
	switch *fig {
	case "all":
		all, err := experiments.All(opts)
		if err != nil {
			return err
		}
		tables = all
	case "ablations":
		all, err := experiments.Ablations(opts)
		if err != nil {
			return err
		}
		tables = all
	default:
		fn, err := experiments.ByName(*fig)
		if err != nil {
			return err
		}
		t, err := fn(opts)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}
	if err := experiments.SaveAll(stdout, *out, tables...); err != nil {
		return err
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if opts.Progress != nil {
		if err := opts.Progress.Close(); err != nil {
			return fmt.Errorf("progress: %w", err)
		}
	}
	if reg != nil {
		reg.Gauge("experiments.tables").Set(float64(len(tables)))
	}
	if *metricsPath != "" {
		if err := reg.WriteFile(*metricsPath); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	if *memprofile != "" {
		if err := prof.WriteHeapProfile(*memprofile); err != nil {
			return err
		}
	}
	if srv != nil {
		srv.Linger(*telemetryLinger)
	}
	return nil
}

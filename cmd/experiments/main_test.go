package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fig", "fig4", "-runs", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "fig4") {
		t.Fatalf("output missing figure header:\n%s", stdout.String()[:100])
	}
}

func TestRunWithCSVExport(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fig", "fig1d", "-runs", "1", "-scale", "0.2", "-out", dir}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1d.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "metric,value\n") {
		t.Fatalf("csv malformed: %q", data[:30])
	}
}

func TestRunAblation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fig", "ab-strict", "-runs", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "StrictReverse") {
		t.Fatalf("ablation output unexpected:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "fig99"}, &out, &out); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-nonsense"}, &out, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRunProgressAndTelemetry pins the experiments telemetry wiring: the
// -progress stream collects per-cycle lines from every simulation the
// driver runs, and -telemetry-addr announces its resolved address.
func TestRunProgressAndTelemetry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "progress.jsonl")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fig", "fig5", "-runs", "1",
		"-progress", path,
		"-telemetry-addr", "127.0.0.1:0", "-telemetry-linger", "0s"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "telemetry listening on 127.0.0.1:") {
		t.Fatalf("listen address not announced:\n%s", stdout.String()[:120])
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"type":"progress"`)) {
		t.Fatalf("progress stream empty or malformed: %q", data[:min(len(data), 120)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

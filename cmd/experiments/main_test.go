package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fig", "fig4", "-runs", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "fig4") {
		t.Fatalf("output missing figure header:\n%s", stdout.String()[:100])
	}
}

func TestRunWithCSVExport(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fig", "fig1d", "-runs", "1", "-scale", "0.2", "-out", dir}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1d.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "metric,value\n") {
		t.Fatalf("csv malformed: %q", data[:30])
	}
}

func TestRunAblation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fig", "ab-strict", "-runs", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "StrictReverse") {
		t.Fatalf("ablation output unexpected:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "fig99"}, &out, &out); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-nonsense"}, &out, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

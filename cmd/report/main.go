// Command report runs the complete evaluation — every paper figure and
// every ablation study — and emits a single self-contained Markdown
// report with one table per artifact, suitable for committing alongside
// EXPERIMENTS.md or attaching to a CI run.
//
// Usage:
//
//	report [-runs 5] [-seed 1] [-scale 1.0] [-skip-ablations] [-out report.md]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/p2psim/collusion/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

// run executes the evaluation and writes the Markdown report.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runs     = fs.Int("runs", 5, "simulation runs to average")
		seed     = fs.Uint64("seed", 1, "root random seed")
		scale    = fs.Float64("scale", 1.0, "synthetic-trace volume scale")
		skipAbl  = fs.Bool("skip-ablations", false, "emit only the paper figures")
		out      = fs.String("out", "", "output path (default stdout)")
		maxRows  = fs.Int("max-rows", 40, "truncate tables beyond this many rows")
		noHeader = fs.Bool("no-header", false, "omit the generated-at header")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiments.Options{Seed: *seed, Runs: *runs, Scale: *scale}
	tables, err := experiments.All(opts)
	if err != nil {
		return err
	}
	if !*skipAbl {
		abl, err := experiments.Ablations(opts)
		if err != nil {
			return err
		}
		tables = append(tables, abl...)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeMarkdown(w, tables, *maxRows, !*noHeader, opts)
}

// writeMarkdown renders every table as a Markdown section.
func writeMarkdown(w io.Writer, tables []*experiments.Table, maxRows int, header bool, opts experiments.Options) error {
	if header {
		fmt.Fprintf(w, "# Evaluation report\n\n")
		fmt.Fprintf(w, "Generated %s · seed %d · %d run(s) averaged · trace scale %.2g\n\n",
			time.Now().UTC().Format(time.RFC3339), opts.Seed, opts.Runs, opts.Scale)
	}
	for _, t := range tables {
		if _, err := fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title); err != nil {
			return err
		}
		writeRow := func(cells []string) {
			fmt.Fprint(w, "|")
			for _, c := range cells {
				fmt.Fprintf(w, " %s |", c)
			}
			fmt.Fprintln(w)
		}
		writeRow(t.Header)
		fmt.Fprint(w, "|")
		for range t.Header {
			fmt.Fprint(w, "---|")
		}
		fmt.Fprintln(w)
		for i, row := range t.Rows {
			if maxRows > 0 && i >= maxRows {
				fmt.Fprintf(w, "\n_... %d more rows (see `cmd/experiments -fig %s` for the full table)_\n",
					len(t.Rows)-i, t.ID)
				break
			}
			writeRow(row)
		}
		for _, note := range t.Notes {
			fmt.Fprintf(w, "\n> %s\n", note)
		}
		fmt.Fprintln(w)
	}
	return nil
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/experiments"
)

func TestWriteMarkdown(t *testing.T) {
	tab := &experiments.Table{
		ID:     "demo",
		Title:  "demo table",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	tab.AddRow(1, 2)
	tab.AddRow(3, 4)
	tab.AddRow(5, 6)

	var buf bytes.Buffer
	opts := experiments.Options{Seed: 1, Runs: 1, Scale: 1}
	if err := writeMarkdown(&buf, []*experiments.Table{tab}, 2, false, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## demo — demo table",
		"| a | b |",
		"|---|---|",
		"| 1 | 2 |",
		"_... 1 more rows",
		"> a note",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "| 5 | 6 |") {
		t.Fatal("truncation did not apply")
	}
}

func TestRunSmallReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-runs", "1", "-scale", "0.15", "-skip-ablations", "-out", path},
		&stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"# Evaluation report", "## fig5", "## fig13"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

// Command traceanalyze runs the Section III analyses over a rating-trace
// CSV (as produced by tracegen): the suspicious-pair frequency filter with
// its a/b statistics, and the interaction-graph structure study that
// establishes pairwise collusion (C5).
//
// Usage:
//
//	traceanalyze -in trace.csv [-threshold 20] [-mutual] [-dot graph.dot]
//
// The input format is inferred from the extension: .jsonl is read as JSON
// Lines, anything else as CSV.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	collusion "github.com/p2psim/collusion"
	"github.com/p2psim/collusion/internal/ingest"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
}

// run parses args and writes the analysis report to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traceanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "input trace CSV (required)")
		threshold = fs.Int("threshold", 20, "pair rating-count threshold (paper: 20/year)")
		mutual    = fs.Bool("mutual", false, "require mutual rating for graph edges")
		dot       = fs.String("dot", "", "write the interaction graph as Graphviz DOT to this path")
		shards    = fs.Int("ingest-shards", 0, "also replay the trace into a rating ledger through this many sharded ingest writers and run pairwise detection (0: skip)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *trace.Trace
	if strings.HasSuffix(*in, ".jsonl") {
		tr, err = trace.ReadJSONL(f)
	} else {
		tr, err = trace.ReadCSV(f)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trace: %d ratings, %d raters, %d targets\n",
		tr.Len(), len(tr.Raters()), len(tr.Targets()))

	res := collusion.SuspiciousPairs(tr, *threshold)
	fmt.Fprintf(stdout, "\nsuspicious pairs (>= %d ratings): %d pairs, %d sellers, %d raters\n",
		*threshold, len(res.Pairs), len(res.Sellers), len(res.Raters))
	fmt.Fprintf(stdout, "booster statistics: mean a = %.4f, mean b = %.4f\n", res.MeanA, res.MeanB)
	for i, p := range res.Pairs {
		if i >= 25 {
			fmt.Fprintf(stdout, "  ... %d more\n", len(res.Pairs)-i)
			break
		}
		fmt.Fprintf(stdout, "  rater %-6d -> target %-6d count=%-4d a=%.3f b=%.3f\n",
			p.Rater, p.Target, p.Count, p.A, p.B)
	}

	g := collusion.BuildInteractionGraph(tr, collusion.GraphOptions{
		EdgeThreshold: *threshold,
		RequireMutual: *mutual,
	})
	structure := g.ClassifyStructure()
	fmt.Fprintf(stdout, "\ninteraction graph (edge: >= %d combined ratings, mutual=%v):\n", *threshold, *mutual)
	fmt.Fprintf(stdout, "  nodes=%d edges=%d max_degree=%d\n", len(g.Nodes()), len(g.Edges()), g.MaxDegree())
	fmt.Fprintf(stdout, "  isolated_pairs=%d open_chains=%d closed_groups=%d triangles=%d\n",
		structure.IsolatedPairs, structure.ChainComponents, structure.ClosedGroups, g.Triangles())
	if structure.ClosedGroups == 0 {
		fmt.Fprintln(stdout, "  structure is pairwise (C5 holds: no closed collusion groups)")
	}
	if *dot != "" {
		df, err := os.Create(*dot)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(df); err != nil {
			_ = df.Close() // the write error is the one worth reporting
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote interaction graph to %s (render with: neato -Tsvg %s)\n", *dot, *dot)
	}
	if *shards >= 1 {
		if err := replayDetect(stdout, tr, *shards); err != nil {
			return err
		}
	}
	return nil
}

// replayDetect bulk-loads the trace into a ledger through the sharded
// ingest pipeline and runs the Formula (2) detector over the result. The
// ledger — and therefore the detection report — is byte-identical for
// every shard count; the flag only changes how many writer goroutines
// build it.
func replayDetect(stdout io.Writer, tr *trace.Trace, shards int) error {
	ledger := reputation.NewLedger(ingest.Population(tr))
	g := &ingest.Ingester{Shards: shards}
	if err := g.ReplayTrace(tr, ledger); err != nil {
		return err
	}
	res := collusion.NewOptimizedDetector(collusion.DefaultThresholds()).Detect(ledger)
	// The report deliberately omits the writer count: the output is a pure
	// function of the trace, so runs with different -ingest-shards values
	// can be diffed byte-for-byte.
	fmt.Fprintf(stdout, "\nsharded replay: ledger over %d nodes, %d detected pairs\n",
		ledger.Size(), len(res.Pairs))
	for i, e := range res.Pairs {
		if i >= 25 {
			fmt.Fprintf(stdout, "  ... %d more\n", len(res.Pairs)-i)
			break
		}
		fmt.Fprintf(stdout, "  (%d, %d)  N=%d/%d  a=%.3f/%.3f\n",
			e.I, e.J, e.NIJ, e.NJI, e.AIJ, e.AJI)
	}
	return nil
}

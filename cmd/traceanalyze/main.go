// Command traceanalyze runs the Section III analyses over a rating-trace
// CSV (as produced by tracegen): the suspicious-pair frequency filter with
// its a/b statistics, and the interaction-graph structure study that
// establishes pairwise collusion (C5).
//
// Usage:
//
//	traceanalyze -in trace.csv [-threshold 20] [-mutual] [-dot graph.dot]
//	traceanalyze spans -in spans.jsonl
//
// The `spans` subcommand instead folds a span timeline (as written by
// colsim -spans or streamed from /spans) into a per-phase cost table.
//
// The input format is inferred from the extension: .jsonl is read as JSON
// Lines, anything else as CSV.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	collusion "github.com/p2psim/collusion"
	"github.com/p2psim/collusion/internal/ingest"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
}

// run parses args and writes the analysis report to stdout.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 && args[0] == "spans" {
		return runSpans(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("traceanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "", "input trace CSV (required)")
		threshold = fs.Int("threshold", 20, "pair rating-count threshold (paper: 20/year)")
		mutual    = fs.Bool("mutual", false, "require mutual rating for graph edges")
		dot       = fs.String("dot", "", "write the interaction graph as Graphviz DOT to this path")
		shards    = fs.Int("ingest-shards", 0, "also replay the trace into a rating ledger through this many sharded ingest writers and run pairwise detection (0: skip)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr *trace.Trace
	if strings.HasSuffix(*in, ".jsonl") {
		tr, err = trace.ReadJSONL(f)
	} else {
		tr, err = trace.ReadCSV(f)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trace: %d ratings, %d raters, %d targets\n",
		tr.Len(), len(tr.Raters()), len(tr.Targets()))

	res := collusion.SuspiciousPairs(tr, *threshold)
	fmt.Fprintf(stdout, "\nsuspicious pairs (>= %d ratings): %d pairs, %d sellers, %d raters\n",
		*threshold, len(res.Pairs), len(res.Sellers), len(res.Raters))
	fmt.Fprintf(stdout, "booster statistics: mean a = %.4f, mean b = %.4f\n", res.MeanA, res.MeanB)
	for i, p := range res.Pairs {
		if i >= 25 {
			fmt.Fprintf(stdout, "  ... %d more\n", len(res.Pairs)-i)
			break
		}
		fmt.Fprintf(stdout, "  rater %-6d -> target %-6d count=%-4d a=%.3f b=%.3f\n",
			p.Rater, p.Target, p.Count, p.A, p.B)
	}

	g := collusion.BuildInteractionGraph(tr, collusion.GraphOptions{
		EdgeThreshold: *threshold,
		RequireMutual: *mutual,
	})
	structure := g.ClassifyStructure()
	fmt.Fprintf(stdout, "\ninteraction graph (edge: >= %d combined ratings, mutual=%v):\n", *threshold, *mutual)
	fmt.Fprintf(stdout, "  nodes=%d edges=%d max_degree=%d\n", len(g.Nodes()), len(g.Edges()), g.MaxDegree())
	fmt.Fprintf(stdout, "  isolated_pairs=%d open_chains=%d closed_groups=%d triangles=%d\n",
		structure.IsolatedPairs, structure.ChainComponents, structure.ClosedGroups, g.Triangles())
	if structure.ClosedGroups == 0 {
		fmt.Fprintln(stdout, "  structure is pairwise (C5 holds: no closed collusion groups)")
	}
	if *dot != "" {
		df, err := os.Create(*dot)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(df); err != nil {
			_ = df.Close() // the write error is the one worth reporting
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote interaction graph to %s (render with: neato -Tsvg %s)\n", *dot, *dot)
	}
	if *shards >= 1 {
		if err := replayDetect(stdout, tr, *shards); err != nil {
			return err
		}
	}
	return nil
}

// spanEvent is one span timeline line. Extra payload attributes (records,
// pairs, memo deltas, ...) land in Rest via the custom unmarshaller.
type spanEvent struct {
	Cycle  int64
	Type   string
	ID     int64
	Parent int64
	Name   string
	Cost   int64
	Rest   map[string]int64
}

// fixedSpanKeys are the envelope keys every span event carries; anything
// else numeric is a phase payload attribute worth summing.
var fixedSpanKeys = map[string]bool{
	"cycle": true, "type": true, "id": true, "parent": true,
	"name": true, "cost": true,
}

// parseSpanEvent decodes one JSONL line. Non-numeric extras (the run
// span's engine/detector labels) are skipped — the table sums quantities.
func parseSpanEvent(line []byte) (spanEvent, error) {
	var raw map[string]any
	if err := json.Unmarshal(line, &raw); err != nil {
		return spanEvent{}, err
	}
	ev := spanEvent{Rest: make(map[string]int64)}
	num := func(key string) int64 {
		f, _ := raw[key].(float64)
		return int64(f)
	}
	ev.Cycle = num("cycle")
	ev.ID = num("id")
	ev.Parent = num("parent")
	ev.Cost = num("cost")
	ev.Type, _ = raw["type"].(string)
	ev.Name, _ = raw["name"].(string)
	for k, v := range raw {
		if fixedSpanKeys[k] {
			continue
		}
		if f, ok := v.(float64); ok {
			ev.Rest[k] = int64(f)
		}
	}
	return ev, nil
}

// phaseStat accumulates one phase (span name) across the timeline.
type phaseStat struct {
	name  string
	count int
	cost  int64            // inclusive operation cost
	self  int64            // cost minus closed child spans
	attrs map[string]int64 // summed numeric span_end payload attributes
}

// runSpans implements the spans subcommand: fold a span timeline into a
// deterministic per-phase cost table — span counts, inclusive and self
// operation cost, and summed payload quantities.
func runSpans(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("traceanalyze spans", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input span timeline JSONL (required; colsim -spans output)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()

	stats := make(map[string]*phaseStat)
	parentOf := make(map[int64]int64) // open span id -> parent id
	childCost := make(map[int64]int64)
	var events, maxCycle int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := parseSpanEvent(line)
		if err != nil {
			return fmt.Errorf("%s: %w", *in, err)
		}
		events++
		if ev.Cycle > maxCycle {
			maxCycle = ev.Cycle
		}
		switch ev.Type {
		case "span_begin":
			parentOf[ev.ID] = ev.Parent
		case "span_end":
			st := stats[ev.Name]
			if st == nil {
				st = &phaseStat{name: ev.Name, attrs: make(map[string]int64)}
				stats[ev.Name] = st
			}
			st.count++
			st.cost += ev.Cost
			st.self += ev.Cost - childCost[ev.ID]
			for k, v := range ev.Rest {
				st.attrs[k] += v
			}
			if parent, ok := parentOf[ev.ID]; ok {
				childCost[parent] += ev.Cost
				delete(parentOf, ev.ID)
			}
			delete(childCost, ev.ID)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%s: %w", *in, err)
	}

	phases := make([]*phaseStat, 0, len(stats))
	for _, st := range stats {
		phases = append(phases, st)
	}
	// Self cost descending is the profile reading order; name breaks ties
	// so the table is deterministic.
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].self != phases[j].self {
			return phases[i].self > phases[j].self
		}
		return phases[i].name < phases[j].name
	})
	fmt.Fprintf(stdout, "span timeline: %d events, %d phases, %d cycles\n", events, len(phases), maxCycle)
	fmt.Fprintf(stdout, "%-18s %7s %12s %12s  %s\n", "phase", "count", "cost", "self", "attrs")
	for _, st := range phases {
		keys := make([]string, 0, len(st.attrs))
		for k := range st.attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var attrs []string
		for _, k := range keys {
			attrs = append(attrs, fmt.Sprintf("%s=%d", k, st.attrs[k]))
		}
		fmt.Fprintf(stdout, "%-18s %7d %12d %12d  %s\n",
			st.name, st.count, st.cost, st.self, strings.Join(attrs, " "))
	}
	if open := len(parentOf); open > 0 {
		fmt.Fprintf(stdout, "warning: %d spans never closed (truncated timeline?)\n", open)
	}
	return nil
}

// replayDetect bulk-loads the trace into a ledger through the sharded
// ingest pipeline and runs the Formula (2) detector over the result. The
// ledger — and therefore the detection report — is byte-identical for
// every shard count; the flag only changes how many writer goroutines
// build it.
func replayDetect(stdout io.Writer, tr *trace.Trace, shards int) error {
	ledger := reputation.NewLedger(ingest.Population(tr))
	g := &ingest.Ingester{Shards: shards}
	if err := g.ReplayTrace(tr, ledger); err != nil {
		return err
	}
	res := collusion.NewOptimizedDetector(collusion.DefaultThresholds()).Detect(ledger)
	// The report deliberately omits the writer count: the output is a pure
	// function of the trace, so runs with different -ingest-shards values
	// can be diffed byte-for-byte.
	fmt.Fprintf(stdout, "\nsharded replay: ledger over %d nodes, %d detected pairs\n",
		ledger.Size(), len(res.Pairs))
	for i, e := range res.Pairs {
		if i >= 25 {
			fmt.Fprintf(stdout, "  ... %d more\n", len(res.Pairs)-i)
			break
		}
		fmt.Fprintf(stdout, "  (%d, %d)  N=%d/%d  a=%.3f/%.3f\n",
			e.I, e.J, e.NIJ, e.NJI, e.AIJ, e.AJI)
	}
	return nil
}

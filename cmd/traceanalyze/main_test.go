package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	collusion "github.com/p2psim/collusion"
	"github.com/p2psim/collusion/internal/trace"
)

// writeTestTrace generates a small Overstock-style trace CSV.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	cfg := collusion.DefaultOverstockConfig()
	cfg.Users = 300
	cfg.OrganicTransactions = 1000
	cfg.ColludingPairs = 4
	cfg.ChainUsers = 1
	tr, err := collusion.GenerateOverstock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReport(t *testing.T) {
	path := writeTestTrace(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", path, "-mutual"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{
		"suspicious pairs",
		"interaction graph",
		"structure is pairwise (C5 holds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunDOTExport(t *testing.T) {
	path := writeTestTrace(t)
	dotPath := filepath.Join(t.TempDir(), "g.dot")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", path, "-mutual", "-dot", dotPath}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "graph interactions {") {
		t.Fatalf("DOT file malformed: %q", data[:30])
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent/file.csv"}, &out, &out); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}, &out, &out); err == nil {
		t.Error("malformed trace accepted")
	}
}

func TestRunJSONLInput(t *testing.T) {
	cfg := collusion.DefaultOverstockConfig()
	cfg.Users = 200
	cfg.OrganicTransactions = 500
	cfg.ColludingPairs = 3
	cfg.ChainUsers = 0
	tr, err := collusion.GenerateOverstock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", path, "-mutual"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "suspicious pairs") {
		t.Fatalf("report missing analysis:\n%s", stdout.String())
	}
}

// writeSpanTimeline writes a small hand-built span timeline with known
// inclusive/self cost structure: run(20) > cycle(20) > [ingest(5),
// detect(12)], so cycle self cost is 3 and run self cost is 0.
func writeSpanTimeline(t *testing.T) string {
	t.Helper()
	lines := []string{
		`{"cycle":0,"type":"span_begin","id":1,"parent":0,"name":"run","seed":1}`,
		`{"cycle":1,"type":"span_begin","id":2,"parent":1,"name":"cycle"}`,
		`{"cycle":1,"type":"span_begin","id":3,"parent":2,"name":"ingest"}`,
		`{"cycle":1,"type":"span_end","id":3,"name":"ingest","cost":5,"records":40}`,
		`{"cycle":1,"type":"span_begin","id":4,"parent":2,"name":"detect"}`,
		`{"cycle":1,"type":"span_end","id":4,"name":"detect","cost":12,"pairs":2}`,
		`{"cycle":1,"type":"span_end","id":2,"name":"cycle","cost":20}`,
		`{"cycle":1,"type":"span_end","id":1,"name":"run","cost":20}`,
	}
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSpansSubcommand pins the fold: per-phase counts, inclusive cost,
// self cost (children subtracted), and summed payload attributes.
func TestSpansSubcommand(t *testing.T) {
	path := writeSpanTimeline(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"spans", "-in", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "span timeline: 8 events, 4 phases, 1 cycles") {
		t.Fatalf("header wrong:\n%s", out)
	}
	for _, want := range []struct{ phase, cost, self, attrs string }{
		{"detect", "12", "12", "pairs=2"},
		{"ingest", "5", "5", "records=40"},
		{"cycle", "20", "3", ""},
		// The run span's seed attr rides span_begin; the table sums only
		// span_end payloads (quantities a phase produced), so run has none.
		{"run", "20", "0", ""},
	} {
		found := false
		for _, line := range strings.Split(out, "\n") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[0] == want.phase {
				found = true
				if f[1] != "1" || f[2] != want.cost || f[3] != want.self {
					t.Errorf("phase %s folded wrong: %q", want.phase, line)
				}
				if want.attrs != "" && !strings.Contains(line, want.attrs) {
					t.Errorf("phase %s missing attrs %q: %q", want.phase, want.attrs, line)
				}
			}
		}
		if !found {
			t.Errorf("phase %s missing from table:\n%s", want.phase, out)
		}
	}
	if strings.Contains(out, "never closed") {
		t.Fatalf("balanced timeline reported as truncated:\n%s", out)
	}
}

// TestSpansSubcommandTruncatedWarns pins the open-span warning on a
// timeline cut off mid-run.
func TestSpansSubcommandTruncatedWarns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	content := `{"cycle":0,"type":"span_begin","id":1,"parent":0,"name":"run"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"spans", "-in", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "warning: 1 spans never closed") {
		t.Fatalf("truncated timeline not flagged:\n%s", stdout.String())
	}
}

// TestSpansSubcommandErrors pins argument and input validation.
func TestSpansSubcommandErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"spans"}, &stdout, &stderr); err == nil {
		t.Error("spans without -in accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"spans", "-in", bad}, &stdout, &stderr); err == nil {
		t.Error("malformed timeline accepted")
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	collusion "github.com/p2psim/collusion"
	"github.com/p2psim/collusion/internal/trace"
)

// writeTestTrace generates a small Overstock-style trace CSV.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	cfg := collusion.DefaultOverstockConfig()
	cfg.Users = 300
	cfg.OrganicTransactions = 1000
	cfg.ColludingPairs = 4
	cfg.ChainUsers = 1
	tr, err := collusion.GenerateOverstock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReport(t *testing.T) {
	path := writeTestTrace(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", path, "-mutual"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{
		"suspicious pairs",
		"interaction graph",
		"structure is pairwise (C5 holds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunDOTExport(t *testing.T) {
	path := writeTestTrace(t)
	dotPath := filepath.Join(t.TempDir(), "g.dot")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", path, "-mutual", "-dot", dotPath}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "graph interactions {") {
		t.Fatalf("DOT file malformed: %q", data[:30])
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent/file.csv"}, &out, &out); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}, &out, &out); err == nil {
		t.Error("malformed trace accepted")
	}
}

func TestRunJSONLInput(t *testing.T) {
	cfg := collusion.DefaultOverstockConfig()
	cfg.Users = 200
	cfg.OrganicTransactions = 500
	cfg.ColludingPairs = 3
	cfg.ChainUsers = 0
	tr, err := collusion.GenerateOverstock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteJSONL(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", path, "-mutual"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "suspicious pairs") {
		t.Fatalf("report missing analysis:\n%s", stdout.String())
	}
}

// Command tracegen emits a synthetic marketplace rating trace as CSV,
// shaped like the Amazon or Overstock crawls analysed in Section III of
// the paper. The planted ground truth (colluding pairs, boosters, rivals)
// is printed to stderr; the CSV itself carries no labels, as a real crawl
// would not.
//
// Usage:
//
//	tracegen -kind amazon|overstock [-format csv|jsonl] [-seed 1] [-scale 1.0] [-out trace.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	collusion "github.com/p2psim/collusion"
	"github.com/p2psim/collusion/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run parses args and executes the command, writing the CSV to stdout (or
// the -out path) and the ground-truth summary to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind   = fs.String("kind", "amazon", "trace kind: amazon or overstock")
		seed   = fs.Uint64("seed", 1, "random seed")
		scale  = fs.Float64("scale", 1.0, "volume scale factor")
		out    = fs.String("out", "", "output path (default stdout)")
		format = fs.String("format", "csv", "output format: csv or jsonl")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *collusion.Trace
	switch *kind {
	case "amazon":
		cfg := collusion.DefaultAmazonConfig()
		cfg.Seed = *seed
		for i := range cfg.Bands {
			cfg.Bands[i].MeanDailyRatings *= *scale
		}
		at, err := collusion.GenerateAmazon(cfg)
		if err != nil {
			return err
		}
		tr = &at.Trace
		describeAmazon(stderr, at)
	case "overstock":
		cfg := collusion.DefaultOverstockConfig()
		cfg.Seed = *seed
		cfg.OrganicTransactions = int(float64(cfg.OrganicTransactions) * *scale)
		t, err := collusion.GenerateOverstock(cfg)
		if err != nil {
			return err
		}
		tr = t
		describeOverstock(stderr, t)
	default:
		return fmt.Errorf("unknown kind %q (want amazon or overstock)", *kind)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		if err := trace.WriteCSV(w, tr); err != nil {
			return err
		}
	case "jsonl":
		if err := trace.WriteJSONL(w, tr); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want csv or jsonl)", *format)
	}
	fmt.Fprintf(stderr, "wrote %d ratings\n", tr.Len())
	return nil
}

func describeAmazon(w io.Writer, at *collusion.AmazonTrace) {
	sellers := make([]collusion.NodeID, 0, len(at.Truth.Boosters))
	for s := range at.Truth.Boosters {
		sellers = append(sellers, s)
	}
	sort.Slice(sellers, func(i, j int) bool { return sellers[i] < sellers[j] })
	fmt.Fprintf(w, "ground truth: %d suspicious sellers with planted boosters\n", len(sellers))
	for _, s := range sellers {
		fmt.Fprintf(w, "  seller %d: boosters %v rivals %v\n",
			s, at.Truth.Boosters[s], at.Truth.Rivals[s])
	}
}

func describeOverstock(w io.Writer, t *collusion.Trace) {
	fmt.Fprintf(w, "ground truth: %d planted colluding pairs\n", len(t.Truth.ColludingPairs))
	for _, p := range t.Truth.ColludingPairs {
		fmt.Fprintf(w, "  pair %d-%d\n", p[0], p[1])
	}
}

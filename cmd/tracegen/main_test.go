package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/trace"
)

func TestRunAmazonToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-kind", "amazon", "-scale", "0.05"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "day,rater,target,score\n") {
		t.Fatalf("stdout does not start with CSV header: %q", stdout.String()[:40])
	}
	if !strings.Contains(stderr.String(), "suspicious sellers") {
		t.Fatalf("stderr missing ground truth: %q", stderr.String())
	}
	// The emitted CSV must parse back.
	tr, err := trace.ReadCSV(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
}

func TestRunOverstockToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "os.csv")
	var stdout, stderr bytes.Buffer
	err := run([]string{"-kind", "overstock", "-scale", "0.2", "-out", path}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Fatal("CSV leaked to stdout despite -out")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace file")
	}
	if !strings.Contains(stderr.String(), "planted colluding pairs") {
		t.Fatalf("stderr missing ground truth: %q", stderr.String())
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "ebay"}, &out, &out); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run([]string{"-badflag"}, &out, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunDeterministicOutput(t *testing.T) {
	var a, b, discard bytes.Buffer
	if err := run([]string{"-kind", "overstock", "-scale", "0.1", "-seed", "7"}, &a, &discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "overstock", "-scale", "0.1", "-seed", "7"}, &b, &discard); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different CSVs")
	}
}

func TestRunJSONLFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-kind", "overstock", "-scale", "0.1", "-format", "jsonl"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadJSONL(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty JSONL trace")
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-format", "xml"}, &out, &out); err == nil {
		t.Error("unknown format accepted")
	}
}

package collusion

import (
	"github.com/p2psim/collusion/internal/analysis"
	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/simulator"
	"github.com/p2psim/collusion/internal/trace"
)

// Detection API (the paper's contribution, Section IV).
type (
	// Thresholds holds the detection parameters T_R, T_N, T_a, T_b.
	Thresholds = core.Thresholds
	// Detector is a collusion detection method over a period ledger.
	Detector = core.Detector
	// IncrementalDetector is a Detector that can replay memoized per-pair
	// screens across detection passes over the same evolving ledger.
	IncrementalDetector = core.IncrementalDetector
	// Result is a detection outcome: flagged pairs with evidence.
	Result = core.Result
	// Evidence describes one detected pair.
	Evidence = core.Evidence
	// ManagerRing distributes detection across DHT reputation managers.
	ManagerRing = core.ManagerRing
	// DetectionKind selects the method a ManagerRing runs.
	DetectionKind = core.Kind
	// Group is one detected collusion collective of two or more nodes.
	Group = core.Group
	// GroupResult is the outcome of group detection.
	GroupResult = core.GroupResult
	// GroupDetector finds collusion collectives (the paper's future-work
	// extension beyond pairs).
	GroupDetector = core.GroupDetector
	// SybilFinding is one detected one-way boosting swarm.
	SybilFinding = core.SybilFinding
	// SybilResult is the outcome of Sybil detection.
	SybilResult = core.SybilResult
	// SybilDetector finds one-way boosting swarms (the paper's future-work
	// Sybil case).
	SybilDetector = core.SybilDetector
)

// Detection method kinds for ManagerRing.Detect.
const (
	KindBasic     = core.KindBasic
	KindOptimized = core.KindOptimized
)

// DefaultThresholds returns trace-calibrated detection parameters
// (T_N = 20/period, T_a = 0.8, T_b = 0.2).
func DefaultThresholds() Thresholds { return core.DefaultThresholds() }

// SimThresholds returns thresholds calibrated to the Section V simulation
// (T_a = 0.95, T_b = 0.7).
func SimThresholds() Thresholds { return simulator.SimThresholds() }

// NewBasicDetector returns the unoptimized O(mn²) detection method.
func NewBasicDetector(t Thresholds) *core.Basic { return core.NewBasic(t) }

// NewOptimizedDetector returns the Formula (2) O(mn) detection method.
func NewOptimizedDetector(t Thresholds) *core.Optimized { return core.NewOptimized(t) }

// NewGroupDetector returns the group detector, which generalizes the
// pairwise collusion model to strongly connected flooding collectives.
func NewGroupDetector(t Thresholds) *GroupDetector { return core.NewGroupDetector(t) }

// NewSybilDetector returns the Sybil detector, which finds high-reputed
// beneficiaries propped up by swarms of concentrated one-way boosters.
func NewSybilDetector(t Thresholds) *SybilDetector { return core.NewSybilDetector(t) }

// NewManagerRing builds numManagers decentralized reputation managers on a
// Chord DHT covering a rated population.
func NewManagerRing(numManagers, population int, t Thresholds, meter *CostMeter) (*ManagerRing, error) {
	return core.NewManagerRing(numManagers, population, t, meter)
}

// Reputation substrate (Section IV-A).
type (
	// Ledger accumulates one period's ratings for a fixed population.
	Ledger = reputation.Ledger
	// PairCounts is one target's aligned sparse row view: its active
	// raters (ascending) with the total/positive/negative rating counts.
	PairCounts = reputation.PairCounts
	// Engine computes global reputation scores from a ledger.
	Engine = reputation.Engine
	// EigenTrust is the damped power-iteration engine of reference [9].
	EigenTrust = reputation.EigenTrust
	// Summation is the eBay-style sum-of-ratings engine.
	Summation = reputation.Summation
	// WeightedSum is the Section V weighted engine (w1=0.2, w2=0.5).
	WeightedSum = reputation.WeightedSum
	// IterativeWeighted is the Section V weighted engine with
	// reputation-dependent rater weights updated each cycle.
	IterativeWeighted = reputation.IterativeWeighted
	// SimilarityWeighted is the PeerTrust-style feedback-similarity
	// credibility engine.
	SimilarityWeighted = reputation.SimilarityWeighted
)

// NewLedger creates an empty rating ledger for n nodes.
func NewLedger(n int) *Ledger { return reputation.NewLedger(n) }

// NewEigenTrust returns an EigenTrust engine with the given pretrusted
// peers and default damping.
func NewEigenTrust(pretrusted []int) *EigenTrust { return reputation.NewEigenTrust(pretrusted) }

// NewWeightedSum returns the Section V weighted-sum engine with the
// paper's parameters (w1 = 0.2, w2 = 0.5).
func NewWeightedSum(pretrusted []int) *WeightedSum { return reputation.NewWeightedSum(pretrusted) }

// NewIterativeWeighted returns the Section V weighted engine whose rater
// weights follow each rater's current reputation.
func NewIterativeWeighted(pretrusted []int) *IterativeWeighted {
	return reputation.NewIterativeWeighted(pretrusted)
}

// NewSimilarityWeighted returns the feedback-similarity credibility engine.
func NewSimilarityWeighted() *SimilarityWeighted { return reputation.NewSimilarityWeighted() }

// NormalizeScores scales scores so non-negative mass sums to one.
func NormalizeScores(scores []float64) []float64 { return reputation.Normalize(scores) }

// Metrics.
type (
	// CostMeter accumulates named operation counters.
	CostMeter = metrics.CostMeter
)

// Well-known cost counter names.
const (
	CostMatrixScan     = metrics.CostMatrixScan
	CostBoundCheck     = metrics.CostBoundCheck
	CostPairCheck      = metrics.CostPairCheck
	CostEigenMulAdd    = metrics.CostEigenMulAdd
	CostDHTMessage     = metrics.CostDHTMessage
	CostManagerMessage = metrics.CostManagerMessage
)

// Trace substrate and analyses (Section III).
type (
	// Trace is a collection of marketplace ratings.
	Trace = trace.Trace
	// TraceRating is one feedback event.
	TraceRating = trace.Rating
	// NodeID identifies a trace participant.
	NodeID = trace.NodeID
	// AmazonConfig parameterizes the synthetic Amazon-style generator.
	AmazonConfig = trace.AmazonConfig
	// AmazonTrace is a generated Amazon-style trace with seller metadata.
	AmazonTrace = trace.AmazonTrace
	// OverstockConfig parameterizes the synthetic Overstock-style
	// generator.
	OverstockConfig = trace.OverstockConfig
	// SuspiciousPairsResult is the outcome of the frequency filter.
	SuspiciousPairsResult = analysis.SuspiciousPairsResult
	// InteractionGraph is the Figure 1(d) rating-interaction graph.
	InteractionGraph = analysis.InteractionGraph
	// GraphOptions controls interaction-graph construction.
	GraphOptions = analysis.GraphOptions
)

// DefaultAmazonConfig mirrors the paper's Amazon crawl at laptop scale.
func DefaultAmazonConfig() AmazonConfig { return trace.DefaultAmazonConfig() }

// DefaultOverstockConfig mirrors the paper's Overstock crawl at laptop
// scale.
func DefaultOverstockConfig() OverstockConfig { return trace.DefaultOverstockConfig() }

// GenerateAmazon builds a synthetic Amazon-style rating trace.
func GenerateAmazon(cfg AmazonConfig) (*AmazonTrace, error) { return trace.GenerateAmazon(cfg) }

// GenerateOverstock builds a synthetic Overstock-style mutual-rating trace.
func GenerateOverstock(cfg OverstockConfig) (*Trace, error) { return trace.GenerateOverstock(cfg) }

// SuspiciousPairs applies the Section III frequency filter: directed pairs
// with at least minRatings ratings, with their a and b statistics.
func SuspiciousPairs(t *Trace, minRatings int) SuspiciousPairsResult {
	return analysis.SuspiciousPairs(t, minRatings)
}

// BuildInteractionGraph constructs the Figure 1(d) interaction graph.
func BuildInteractionGraph(t *Trace, opts GraphOptions) *InteractionGraph {
	return analysis.BuildInteractionGraph(t, opts)
}

// Simulation (Section V).
type (
	// SimConfig parameterizes one evaluation simulation.
	SimConfig = simulator.Config
	// SimResult captures one simulation run.
	SimResult = simulator.Result
	// SimAveraged aggregates several runs.
	SimAveraged = simulator.AveragedResult
	// EngineKind selects the simulation's reputation engine.
	EngineKind = simulator.EngineKind
	// DetectorKind selects the simulation's collusion detector.
	DetectorKind = simulator.DetectorKind
)

// Simulation engine and detector kinds.
const (
	EngineEigenTrust        = simulator.EngineEigenTrust
	EngineSummation         = simulator.EngineSummation
	EngineWeightedSum       = simulator.EngineWeightedSum
	EngineIterativeWeighted = simulator.EngineIterativeWeighted
	EngineSimilarity        = simulator.EngineSimilarity

	DetectorNone      = simulator.DetectorNone
	DetectorBasic     = simulator.DetectorBasic
	DetectorOptimized = simulator.DetectorOptimized
	DetectorGroup     = simulator.DetectorGroup
	DetectorSybil     = simulator.DetectorSybil
)

// DefaultSimConfig returns the paper's Figure 5 simulation setup.
func DefaultSimConfig() SimConfig { return simulator.DefaultConfig() }

// RunSimulation executes one deterministic simulation run.
func RunSimulation(cfg SimConfig) (*SimResult, error) { return simulator.Run(cfg) }

// RunSimulationAveraged executes several runs with perturbed seeds and
// averages per-node reputations, as the paper averages over five runs.
func RunSimulationAveraged(cfg SimConfig, runs int) (*SimAveraged, error) {
	return simulator.RunAveraged(cfg, runs)
}

package collusion_test

import (
	"testing"

	collusion "github.com/p2psim/collusion"
)

// TestFacadeEndToEnd exercises the public API the way a downstream user
// would: record ratings, run both detectors, check agreement.
func TestFacadeEndToEnd(t *testing.T) {
	l := collusion.NewLedger(16)
	for k := 0; k < 25; k++ {
		l.Record(1, 2, 1)
		l.Record(2, 1, 1)
	}
	for k := 0; k < 8; k++ {
		l.Record(4+k%6, 1, -1)
		l.Record(4+k%6, 2, -1)
	}
	for k := 0; k < 30; k++ {
		l.Record(4+k%8, 3, 1)
	}

	th := collusion.DefaultThresholds()
	basic := collusion.NewBasicDetector(th).Detect(l)
	opt := collusion.NewOptimizedDetector(th).Detect(l)
	for _, res := range []collusion.Result{basic, opt} {
		if len(res.Pairs) != 1 || !res.HasPair(1, 2) {
			t.Fatalf("detected pairs = %+v, want {1,2}", res.Pairs)
		}
	}
}

func TestFacadeEngines(t *testing.T) {
	l := collusion.NewLedger(8)
	l.Record(0, 1, 1)
	l.Record(2, 1, 1)
	for _, e := range []collusion.Engine{
		collusion.Summation{},
		collusion.NewWeightedSum([]int{0}),
		collusion.NewEigenTrust([]int{0}),
	} {
		scores := e.Scores(l)
		if len(scores) != 8 {
			t.Fatalf("engine %q returned %d scores", e.Name(), len(scores))
		}
	}
	norm := collusion.NormalizeScores([]float64{1, 3})
	if norm[0] != 0.25 || norm[1] != 0.75 {
		t.Fatalf("NormalizeScores = %v", norm)
	}
}

func TestFacadeTracePipeline(t *testing.T) {
	cfg := collusion.DefaultOverstockConfig()
	cfg.Users = 300
	cfg.OrganicTransactions = 1000
	cfg.ColludingPairs = 4
	cfg.ChainUsers = 1
	tr, err := collusion.GenerateOverstock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := collusion.BuildInteractionGraph(tr, collusion.GraphOptions{EdgeThreshold: 20, RequireMutual: true})
	if g.Triangles() != 0 {
		t.Fatalf("triangles = %d", g.Triangles())
	}
	res := collusion.SuspiciousPairs(tr, 20)
	if len(res.Pairs) == 0 {
		t.Fatal("no suspicious pairs found")
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := collusion.DefaultSimConfig()
	cfg.Overlay.Nodes = 60
	cfg.SimCycles = 5
	cfg.QueryCycles = 8
	cfg.ColluderGoodProb = 0.2
	cfg.Detector = collusion.DetectorOptimized
	res, err := collusion.RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestsTotal == 0 {
		t.Fatal("no requests served")
	}
	avg, err := collusion.RunSimulationAveraged(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Runs != 2 {
		t.Fatalf("Runs = %d", avg.Runs)
	}
}

func TestFacadeManagerRing(t *testing.T) {
	var meter collusion.CostMeter
	mr, err := collusion.NewManagerRing(4, 20, collusion.DefaultThresholds(), &meter)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 25; k++ {
		if err := mr.Record(1, 2, 1); err != nil {
			t.Fatal(err)
		}
		if err := mr.Record(2, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 8; k++ {
		if err := mr.Record(4+k%6, 1, -1); err != nil {
			t.Fatal(err)
		}
		if err := mr.Record(4+k%6, 2, -1); err != nil {
			t.Fatal(err)
		}
	}
	res := mr.Detect(collusion.KindOptimized)
	if !res.HasPair(1, 2) {
		t.Fatalf("pair not detected: %+v", res.Pairs)
	}
	if meter.Get(collusion.CostDHTMessage) == 0 {
		t.Fatal("no DHT messages counted")
	}
}

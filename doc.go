// Package collusion is a library for detecting collusion in reputation
// systems for peer-to-peer networks. It reproduces the system described in
// Li, Shen and Sapra, "Collusion Detection in Reputation Systems for
// Peer-to-Peer Networks" (ICPP 2012).
//
// # Overview
//
// Reputation systems let peers in open P2P networks pick trustworthy
// partners, but they are vulnerable to collusion: pairs of nodes that
// flood each other with positive ratings to manufacture high reputations
// while offering poor service to everyone else. This library provides:
//
//   - a rating Ledger and reputation engines (Summation, WeightedSum and
//     EigenTrust with pretrust damping);
//   - two collusion detectors: the Basic method, which re-scans a node's
//     rating-matrix row per suspect rater (O(mn²)), and the Optimized
//     method, which replaces the re-scan with closed-form reputation
//     bounds derived from the summation identity (O(mn));
//   - a decentralized deployment (ManagerRing) that distributes detection
//     across reputation managers organized in a Chord DHT;
//   - synthetic Amazon- and Overstock-style trace generators and the
//     Section III trace analyses (suspicious-pair filtering, interaction
//     graphs);
//   - the Section V file-sharing simulator used to regenerate every
//     figure of the paper's evaluation.
//
// # Quick start
//
// Record ratings in a Ledger and run a detector:
//
//	l := collusion.NewLedger(100)
//	l.Record(rater, target, +1)
//	det := collusion.NewOptimizedDetector(collusion.DefaultThresholds())
//	result := det.Detect(l)
//	for _, pair := range result.Pairs {
//	    fmt.Println(pair.I, pair.J)
//	}
//
// See examples/ for complete programs and internal/experiments for the
// harness that regenerates the paper's figures.
package collusion

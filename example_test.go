package collusion_test

import (
	"fmt"

	collusion "github.com/p2psim/collusion"
)

// ExampleNewOptimizedDetector demonstrates the paper's O(mn) detection
// method on a hand-built ledger with one colluding pair.
func ExampleNewOptimizedDetector() {
	ledger := collusion.NewLedger(12)
	// Colluders 1 and 2 flood each other with positive ratings (C3, C4)...
	for k := 0; k < 25; k++ {
		ledger.Record(1, 2, +1)
		ledger.Record(2, 1, +1)
	}
	// ...while everyone else rates their poor service down (C2).
	for k := 0; k < 8; k++ {
		ledger.Record(4+k%6, 1, -1)
		ledger.Record(4+k%6, 2, -1)
	}

	detector := collusion.NewOptimizedDetector(collusion.DefaultThresholds())
	for _, pair := range detector.Detect(ledger).Pairs {
		fmt.Printf("pair (%d, %d): %d/%d mutual ratings\n",
			pair.I, pair.J, pair.NIJ, pair.NJI)
	}
	// Output:
	// pair (1, 2): 25/25 mutual ratings
}

// ExampleNewBasicDetector shows that the unoptimized method reports the
// same pairs as the optimized one — at O(mn²) instead of O(mn).
func ExampleNewBasicDetector() {
	ledger := collusion.NewLedger(12)
	for k := 0; k < 25; k++ {
		ledger.Record(1, 2, +1)
		ledger.Record(2, 1, +1)
	}
	for k := 0; k < 8; k++ {
		ledger.Record(4+k%6, 1, -1)
		ledger.Record(4+k%6, 2, -1)
	}

	basic := collusion.NewBasicDetector(collusion.DefaultThresholds()).Detect(ledger)
	optimized := collusion.NewOptimizedDetector(collusion.DefaultThresholds()).Detect(ledger)
	fmt.Println("basic finds:", len(basic.Pairs), "pair(s)")
	fmt.Println("optimized finds:", len(optimized.Pairs), "pair(s)")
	fmt.Println("same pair:", basic.Pairs[0].I == optimized.Pairs[0].I &&
		basic.Pairs[0].J == optimized.Pairs[0].J)
	// Output:
	// basic finds: 1 pair(s)
	// optimized finds: 1 pair(s)
	// same pair: true
}

// ExampleThresholds_BoundsHold evaluates Formula (2) directly: given a
// node's total ratings and one rater's share of them, the reputation of a
// propped-up node must fall inside a closed-form interval.
func ExampleThresholds_BoundsHold() {
	th := collusion.DefaultThresholds() // Ta=0.8, Tb=0.2
	lo, hi := th.ReputationBounds(100, 40)
	fmt.Printf("bounds for N=100, Nij=40: [%.0f, %.0f]\n", lo, hi)
	fmt.Println("R=0 consistent with collusion:", th.BoundsHold(0, 100, 40))
	fmt.Println("R=50 consistent with collusion:", th.BoundsHold(50, 100, 40))
	// Output:
	// bounds for N=100, Nij=40: [-36, 4]
	// R=0 consistent with collusion: true
	// R=50 consistent with collusion: false
}

// ExampleNewGroupDetector detects a three-node collusion ring — a
// structure the pairwise methods cannot see because no two members rate
// each other mutually.
func ExampleNewGroupDetector() {
	ledger := collusion.NewLedger(16)
	ring := []int{1, 2, 3}
	for i, m := range ring {
		next := ring[(i+1)%len(ring)]
		for k := 0; k < 30; k++ {
			ledger.Record(m, next, +1)
		}
	}
	for k := 0; k < 6; k++ {
		ledger.Record(8+k%4, 1, -1)
		ledger.Record(8+k%4, 2, -1)
		ledger.Record(8+k%4, 3, -1)
	}

	pairs := collusion.NewOptimizedDetector(collusion.DefaultThresholds()).Detect(ledger)
	groups := collusion.NewGroupDetector(collusion.DefaultThresholds()).Detect(ledger)
	fmt.Println("pairwise detections:", len(pairs.Pairs))
	fmt.Println("group detections:", len(groups.Groups))
	fmt.Println("ring members:", groups.Groups[0].Members)
	// Output:
	// pairwise detections: 0
	// group detections: 1
	// ring members: [1 2 3]
}

// ExampleNewSybilDetector detects a one-way boosting swarm: fake
// identities that exist solely to flood one beneficiary with positives.
func ExampleNewSybilDetector() {
	ledger := collusion.NewLedger(16)
	for _, fake := range []int{10, 11, 12, 13} {
		for k := 0; k < 25; k++ {
			ledger.Record(fake, 1, +1)
		}
	}
	for k := 0; k < 6; k++ {
		ledger.Record(5+k%3, 1, -1)
	}

	res := collusion.NewSybilDetector(collusion.DefaultThresholds()).Detect(ledger)
	fmt.Println("beneficiary:", res.Findings[0].Target)
	fmt.Println("boosters:", res.Findings[0].Boosters)
	// Output:
	// beneficiary: 1
	// boosters: [10 11 12 13]
}

// ExampleNewManagerRing runs the decentralized detection protocol: ratings
// are routed through a Chord DHT to each node's reputation manager, and
// managers exchange messages for cross-manager suspicion checks.
func ExampleNewManagerRing() {
	ring, err := collusion.NewManagerRing(4, 32, collusion.DefaultThresholds(), nil)
	if err != nil {
		panic(err)
	}
	for k := 0; k < 25; k++ {
		ring.Record(1, 2, +1)
		ring.Record(2, 1, +1)
	}
	for k := 0; k < 8; k++ {
		ring.Record(10+k%4, 1, -1)
		ring.Record(10+k%4, 2, -1)
	}
	res := ring.Detect(collusion.KindOptimized)
	fmt.Println("detected:", res.HasPair(1, 2))
	// Output:
	// detected: true
}

// ExampleNewEigenTrust computes global trust with the damped power
// iteration: scores form a probability distribution over nodes.
func ExampleNewEigenTrust() {
	ledger := collusion.NewLedger(4)
	ledger.Record(0, 1, +1) // the pretrusted node vouches for node 1
	ledger.Record(1, 2, +1) // which vouches for node 2

	scores := collusion.NewEigenTrust([]int{0}).Scores(ledger)
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	fmt.Printf("sum of scores: %.2f\n", sum)
	fmt.Println("node 1 outranks node 3:", scores[1] > scores[3])
	// Output:
	// sum of scores: 1.00
	// node 1 outranks node 3: true
}

// ExampleGenerateOverstock generates a synthetic Overstock-style trace and
// re-derives the paper's C5 finding: collusion is pairwise, never closed
// groups.
func ExampleGenerateOverstock() {
	cfg := collusion.DefaultOverstockConfig()
	cfg.Users = 400
	cfg.OrganicTransactions = 1500
	cfg.ColludingPairs = 6
	cfg.ChainUsers = 1
	tr, err := collusion.GenerateOverstock(cfg)
	if err != nil {
		panic(err)
	}
	g := collusion.BuildInteractionGraph(tr, collusion.GraphOptions{
		EdgeThreshold: 20,
		RequireMutual: true,
	})
	fmt.Println("triangles:", g.Triangles())
	fmt.Println("closed groups:", g.ClassifyStructure().ClosedGroups)
	// Output:
	// triangles: 0
	// closed groups: 0
}

// Decentralized: collusion detection without a central reputation
// manager, as in Sections IV-A/B of the paper.
//
// A set of reputation managers forms a Chord DHT; each rated node's
// ratings are routed to the DHT owner of its hashed ID, so every manager
// holds only its responsible nodes' matrix rows. When a manager's local
// evidence implicates a node managed elsewhere, it contacts that node's
// manager through the DHT (the paper's Insert(j, msg) step) for the
// symmetric check. The program reports the detected pairs together with
// the DHT routing hops and manager-to-manager messages the protocol cost.
//
// Run with:
//
//	go run ./examples/decentralized
package main

import (
	"fmt"

	collusion "github.com/p2psim/collusion"
)

func main() {
	const (
		managers   = 8
		population = 64
	)
	var meter collusion.CostMeter
	ring, err := collusion.NewManagerRing(managers, population, collusion.DefaultThresholds(), &meter)
	if err != nil {
		panic(err)
	}
	fmt.Printf("DHT: %d reputation managers over a population of %d rated nodes\n", managers, population)
	for _, node := range []int{1, 2, 10, 42} {
		name, err := ring.ManagerOf(node)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  node %-3d is managed by %s\n", node, name)
	}

	// Workload: two colluding pairs plus organic traffic, reported rating
	// by rating through the DHT.
	record := func(rater, target, polarity int) {
		if err := ring.Record(rater, target, polarity); err != nil {
			panic(err)
		}
	}
	for _, pair := range [][2]int{{1, 2}, {20, 21}} {
		for k := 0; k < 25; k++ {
			record(pair[0], pair[1], +1)
			record(pair[1], pair[0], +1)
		}
		for k := 0; k < 8; k++ {
			record(30+k%5, pair[0], -1)
			record(30+k%5, pair[1], -1)
		}
	}
	for i := 0; i < population; i++ {
		for k := 0; k < 6; k++ {
			target := (i*7 + k*11 + 1) % population
			if target == i || target <= 2 || (target >= 20 && target <= 21) {
				continue
			}
			record(i, target, +1)
		}
	}
	ratingHops := meter.Get(collusion.CostDHTMessage)
	fmt.Printf("\nrating reports routed; %d DHT hops so far\n", ratingHops)

	// Distributed detection with both methods.
	for _, kind := range []collusion.DetectionKind{collusion.KindBasic, collusion.KindOptimized} {
		before := meter.Snapshot()
		result := ring.Detect(kind)
		after := meter.Snapshot()
		fmt.Printf("\n%s detection found %d pair(s):\n", kind, len(result.Pairs))
		for _, e := range result.Pairs {
			fmt.Printf("  nodes %d and %d (mutual ratings %d/%d)\n", e.I, e.J, e.NIJ, e.NJI)
		}
		fmt.Printf("  manager messages: %d, DHT hops: %d\n",
			after[collusion.CostManagerMessage]-before[collusion.CostManagerMessage],
			after[collusion.CostDHTMessage]-before[collusion.CostDHTMessage])
	}
}

// Filesharing: the Section V evaluation in miniature — a P2P file-sharing
// network where colluding pairs manufacture reputation under EigenTrust,
// compared with the same network running EigenTrust plus the optimized
// collusion detector.
//
// The program reproduces the paper's headline comparison: under bare
// EigenTrust with B=0.6 the colluders end up the highest-reputed nodes in
// the system; with the detector attached they are identified from their
// rating pattern and pinned to reputation zero, and the requests they
// would have captured flow back to honest nodes.
//
// Run with:
//
//	go run ./examples/filesharing
package main

import (
	"fmt"

	collusion "github.com/p2psim/collusion"
)

func run(detector collusion.DetectorKind) *collusion.SimResult {
	cfg := collusion.DefaultSimConfig()
	cfg.Seed = 3
	cfg.ColluderGoodProb = 0.6 // colluders serve well 60% of the time (Figure 5/9)
	cfg.Detector = detector
	res, err := collusion.RunSimulation(cfg)
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	cfg := collusion.DefaultSimConfig()
	fmt.Printf("network: %d nodes, %d interest clusters, %d sim cycles x %d query cycles\n",
		cfg.Overlay.Nodes, cfg.Overlay.InterestCategories, cfg.SimCycles, cfg.QueryCycles)
	fmt.Printf("pretrusted: nodes 1-3; colluders: nodes 4-11 in pairs, B=0.6\n\n")

	bare := run(collusion.DetectorNone)
	guarded := run(collusion.DetectorOptimized)

	fmt.Println("final reputations (first 12 nodes, 1-based IDs):")
	fmt.Println("node  role        eigentrust  +optimized")
	for i := 0; i < 12; i++ {
		role := "normal"
		switch {
		case i < 3:
			role = "pretrusted"
		case i < 11:
			role = "colluder"
		}
		marker := ""
		if guarded.Flagged[i] {
			marker = "  [detected]"
		}
		fmt.Printf("%4d  %-10s  %10.5f  %10.5f%s\n", i+1, role, bare.Scores[i], guarded.Scores[i], marker)
	}

	fmt.Printf("\nrequests captured by colluders: %.2f%% (bare) vs %.2f%% (detector)\n",
		100*bare.PercentToColluders(), 100*guarded.PercentToColluders())

	fmt.Println("\ndetected pairs with evidence:")
	for _, e := range guarded.DetectedPairs {
		fmt.Printf("  (%d, %d): %d and %d mutual ratings, positive shares %.2f and %.2f\n",
			e.I+1, e.J+1, e.NIJ, e.NJI, e.AIJ, e.AJI)
	}
}

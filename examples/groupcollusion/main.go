// Groupcollusion: detecting collusion collectives of more than two nodes —
// the extension the paper names as future work.
//
// Three colluders rating in a directed ring (1→2→3→1) manufacture exactly
// the same reputation inflation as a mutual pair, but never form a mutual
// pair themselves, so the paper's pairwise detectors are structurally
// blind to them. Cliques of four or more evade pairwise detection too:
// each member's remaining partners flood it with positives, so the
// outside-share test never fires for any single pair. The group detector
// generalizes the collusion model to strongly connected flooding
// collectives — excluding the whole collective when computing the outside
// share — and catches rings and cliques of any size, with pairs as the
// 2-cycle special case.
//
// Run with:
//
//	go run ./examples/groupcollusion
package main

import (
	"fmt"

	collusion "github.com/p2psim/collusion"
)

func main() {
	const nodes = 24
	ledger := collusion.NewLedger(nodes)

	// A directed 3-ring: each member floods the next with positives.
	ring := []int{1, 2, 3}
	for i, m := range ring {
		next := ring[(i+1)%len(ring)]
		for k := 0; k < 30; k++ {
			ledger.Record(m, next, +1)
		}
	}
	// A 4-clique: everyone floods everyone.
	clique := []int{10, 11, 12, 13}
	for _, a := range clique {
		for _, b := range clique {
			if a == b {
				continue
			}
			for k := 0; k < 25; k++ {
				ledger.Record(a, b, +1)
			}
		}
	}
	// The rest of the network rates all colluders down (poor service).
	for _, bad := range append(append([]int{}, ring...), clique...) {
		for k := 0; k < 6; k++ {
			ledger.Record(16+k%4, bad, -1)
		}
	}
	// Honest popular node for contrast.
	for k := 0; k < 40; k++ {
		ledger.Record(16+k%8, 5, +1)
	}

	th := collusion.DefaultThresholds()

	pairRes := collusion.NewOptimizedDetector(th).Detect(ledger)
	fmt.Printf("pairwise optimized detector: %d pair(s) found\n", len(pairRes.Pairs))
	for _, e := range pairRes.Pairs {
		fmt.Printf("  pair (%d, %d)\n", e.I, e.J)
	}
	fmt.Println("  -> the 3-ring has no mutual pair at all, and even the")
	fmt.Println("     clique evades pairwise detection: each member's other")
	fmt.Println("     partners flood it with positives, so no single pair's")
	fmt.Println("     outside ratings look bad enough (C2 fails pairwise)")

	groupRes := collusion.NewGroupDetector(th).Detect(ledger)
	fmt.Printf("\ngroup detector: %d collective(s) found\n", len(groupRes.Groups))
	for _, g := range groupRes.Groups {
		fmt.Printf("  members %v: %d internal ratings, outside positive share %.2f\n",
			g.Members, g.InsideRatings, g.OutsidePositiveShare)
	}

	if !groupRes.HasGroup(1, 2, 3) {
		panic("expected the 3-ring to be detected")
	}
	if !groupRes.HasGroup(10, 11, 12, 13) {
		panic("expected the 4-clique to be detected")
	}
	if groupRes.Flagged[5] {
		panic("honest node flagged")
	}
	fmt.Println("\nboth collectives detected; the honest node stays clean")
}

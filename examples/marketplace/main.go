// Marketplace: the Section III pipeline end-to-end on a synthetic
// Amazon-style platform.
//
// The program generates a year of seller ratings with planted booster
// pairs and rivals (the paper's suspicious-behavior archetypes), then —
// without looking at the ground truth — re-derives the paper's findings:
// the frequency filter isolates the suspicious seller/rater pairs, their
// a/b statistics separate cleanly, and detection quality is finally scored
// against the planted truth.
//
// Run with:
//
//	go run ./examples/marketplace
package main

import (
	"fmt"

	collusion "github.com/p2psim/collusion"
)

func main() {
	cfg := collusion.DefaultAmazonConfig()
	cfg.Seed = 7
	// A quarter of the default volume keeps the example snappy.
	for i := range cfg.Bands {
		cfg.Bands[i].MeanDailyRatings /= 4
	}
	at, err := collusion.GenerateAmazon(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("generated %d ratings for %d sellers over %d days\n\n",
		at.Len(), len(at.Sellers), cfg.Days)

	// Step 1: the frequency filter of Section III. The paper's threshold
	// is 20 ratings/year from one buyer (the platform average is ~1).
	const threshold = 20
	res := collusion.SuspiciousPairs(&at.Trace, threshold)
	fmt.Printf("frequency filter (>= %d ratings/pair): %d pairs across %d sellers, %d raters\n",
		threshold, len(res.Pairs), len(res.Sellers), len(res.Raters))
	// The paper reports a = 98.37% / b = 1.63% for its suspects, where its
	// Section III "b" is the complementary in-pair negative share.
	fmt.Printf("booster statistics: mean in-pair positive share a = %.4f (paper: 0.9837)\n", res.MeanA)
	fmt.Printf("                    mean in-pair negative share   = %.4f (paper: 0.0163)\n\n", 1-res.MeanA)

	// Step 2: split the flagged pairs into boosters (a high) and rivals
	// (a low), as Figure 1(b) does by rating pattern.
	var boosters, rivals int
	for _, p := range res.Pairs {
		if p.A > 0.5 {
			boosters++
		} else {
			rivals++
		}
	}
	fmt.Printf("archetypes among flagged pairs: %d boosters, %d rivals\n\n", boosters, rivals)

	// Step 3: score against the planted ground truth.
	planted := 0
	for _, bs := range at.Truth.Boosters {
		planted += len(bs)
	}
	recovered, falsePositives := 0, 0
	for _, p := range res.Pairs {
		if p.A <= 0.5 {
			continue // rivals are a separate archetype
		}
		if at.Truth.IsBooster(p.Target, p.Rater) {
			recovered++
		} else {
			falsePositives++
		}
	}
	fmt.Printf("booster detection vs ground truth: %d/%d recovered (recall %.0f%%), %d false positives\n",
		recovered, planted, 100*float64(recovered)/float64(planted), falsePositives)

	// Step 4: per-seller frequency signature (Figure 1(c)): suspicious
	// sellers show far larger per-rater maxima than honest ones.
	var suspiciousSellers, honestSellers []collusion.NodeID
	for _, s := range at.Sellers {
		if s.Suspicious && len(suspiciousSellers) < 3 {
			suspiciousSellers = append(suspiciousSellers, s.ID)
		}
		if !s.Suspicious && s.Band >= 0.9 && len(honestSellers) < 3 {
			honestSellers = append(honestSellers, s.ID)
		}
	}
	fmt.Println("\nper-rater rating maxima (suspicious vs honest sellers):")
	for _, group := range []struct {
		label   string
		sellers []collusion.NodeID
	}{{"suspicious", suspiciousSellers}, {"honest", honestSellers}} {
		for _, s := range group.sellers {
			max := 0
			for p, c := range at.CountPairs() {
				if p.Target == s && c.Total > max {
					max = c.Total
				}
			}
			fmt.Printf("  %-10s seller %-3d max ratings from one buyer: %d\n", group.label, s, max)
		}
	}
}

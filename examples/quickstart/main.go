// Quickstart: record ratings in a ledger, run both collusion detectors,
// and inspect the evidence.
//
// The scenario plants one colluding pair — nodes 1 and 2 flood each other
// with positive ratings while the rest of the network rates them down —
// alongside an honestly popular node 3, then shows that the basic
// (O(mn²)) and optimized (O(mn)) methods flag exactly the planted pair.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	collusion "github.com/p2psim/collusion"
)

func main() {
	const nodes = 16
	ledger := collusion.NewLedger(nodes)

	// The colluding pair: 25 mutual positive ratings each way (far above
	// the frequency threshold T_N = 20 per period).
	for k := 0; k < 25; k++ {
		ledger.Record(1, 2, +1)
		ledger.Record(2, 1, +1)
	}
	// The rest of the network experiences their poor service.
	for k := 0; k < 8; k++ {
		ledger.Record(4+k%6, 1, -1)
		ledger.Record(4+k%6, 2, -1)
	}
	// Node 3 is honestly popular: positives from many distinct raters.
	for k := 0; k < 30; k++ {
		ledger.Record(4+k%8, 3, +1)
	}
	// Node 4 is a loyal repeat customer of node 3 — frequent and positive,
	// but NOT collusion: everyone else also likes node 3, and node 3 does
	// not rate node 4 back.
	for k := 0; k < 25; k++ {
		ledger.Record(4, 3, +1)
	}

	thresholds := collusion.DefaultThresholds()
	fmt.Printf("thresholds: T_R=%.0f T_N=%d T_a=%.2f T_b=%.2f\n\n",
		thresholds.TR, thresholds.TN, thresholds.Ta, thresholds.Tb)

	for _, detector := range []collusion.Detector{
		collusion.NewBasicDetector(thresholds),
		collusion.NewOptimizedDetector(thresholds),
	} {
		result := detector.Detect(ledger)
		fmt.Printf("%s detector found %d pair(s):\n", detector.Name(), len(result.Pairs))
		for _, e := range result.Pairs {
			fmt.Printf("  nodes %d and %d: %d/%d mutual ratings, positive shares %.2f/%.2f\n",
				e.I, e.J, e.NIJ, e.NJI, e.AIJ, e.AJI)
		}
		fmt.Println()
	}

	// Reputation engines over the same ledger. Node 0 is pretrusted and
	// vouches for a couple of honest peers so EigenTrust has somewhere to
	// route its trust mass.
	ledger.Record(0, 3, +1)
	ledger.Record(0, 4, +1)
	summation := collusion.Summation{}.Scores(ledger)
	eigen := collusion.NewEigenTrust([]int{0}).Scores(ledger)
	fmt.Println("node  summation  eigentrust")
	for i := 0; i < 6; i++ {
		fmt.Printf("%4d  %9.0f  %10.4f\n", i, summation[i], eigen[i])
	}
}

module github.com/p2psim/collusion

go 1.22

// Package analysis implements the trace analyses of Section III of the
// paper: the rating-volume/reputation relationship (Figure 1a), rating
// time series on individual sellers (Figure 1b), per-rater rating-frequency
// statistics (Figure 1c), and the rater interaction graph whose structure
// establishes that collusion is pairwise (Figure 1d, characteristic C5).
//
// The analyses take only a trace as input — never the generator's ground
// truth — so running them against synthetic traces genuinely re-derives
// the paper's observations rather than echoing planted labels.
package analysis

import (
	"sort"

	"github.com/p2psim/collusion/internal/stats"
	"github.com/p2psim/collusion/internal/trace"
)

// SellerVolume is one bar of Figure 1(a): a seller's reputation with its
// positive and negative rating volumes.
type SellerVolume struct {
	Seller     trace.NodeID
	Reputation float64
	Positive   int
	Negative   int
	Neutral    int
}

// Total returns the seller's total rating count.
func (v SellerVolume) Total() int { return v.Positive + v.Negative + v.Neutral }

// RatingVsReputation computes, for every seller in the trace, the received
// positive/negative volumes and the Amazon-formula reputation, sorted by
// descending reputation (the x-axis ordering of Figure 1a).
func RatingVsReputation(t *trace.Trace) []SellerVolume {
	agg := map[trace.NodeID]*SellerVolume{}
	for _, r := range t.Ratings {
		v := agg[r.Target]
		if v == nil {
			v = &SellerVolume{Seller: r.Target}
			agg[r.Target] = v
		}
		switch r.Score.Polarity() {
		case 1:
			v.Positive++
		case -1:
			v.Negative++
		default:
			v.Neutral++
		}
	}
	out := make([]SellerVolume, 0, len(agg))
	for _, v := range agg {
		if total := v.Total(); total > 0 {
			v.Reputation = float64(v.Positive) / float64(total)
		}
		out = append(out, *v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Reputation > out[j].Reputation {
			return true
		}
		if out[i].Reputation < out[j].Reputation {
			return false
		}
		return out[i].Seller < out[j].Seller
	})
	return out
}

// PairStat describes one directed rater→target relationship flagged by the
// frequency filter, with the paper's a and b statistics attached:
// a is the positive share of the rater's own ratings for the target, and
// b is the positive share of everyone else's ratings for the target.
type PairStat struct {
	Rater, Target trace.NodeID
	Count         int     // N_(i,j): ratings from rater for target
	A             float64 // N+_(i,j) / N_(i,j)
	B             float64 // N+_(i,-j) / N_(i,-j)
}

// SuspiciousPairsResult is the outcome of the Section III frequency filter.
type SuspiciousPairsResult struct {
	Pairs   []PairStat
	Sellers []trace.NodeID // distinct targets appearing in Pairs
	Raters  []trace.NodeID // distinct raters appearing in Pairs
	// MeanA averages the in-pair positive share a over booster-like pairs
	// (those with a > 0.5). The paper reports average a ≈ 98.37% for the
	// suspects found with the 20/year threshold; the "average b = 1.63%"
	// it quotes alongside is the complementary in-pair negative share
	// (the two sum to 100%), i.e. 1 − MeanA here.
	MeanA float64
	// MeanB averages the Section IV b statistic — the positive share of
	// everyone else's ratings for the same target — over the same
	// booster-like pairs. On high-volume marketplaces this stays high
	// (honest traffic dominates a popular seller's feedback), which is
	// why the frequency filter, not the b test, drives the Section III
	// analysis.
	MeanB float64
}

// SuspiciousPairs applies the paper's filter: directed pairs with at least
// minRatings ratings in the window. For each it computes a and b. Pairs are
// sorted by descending count.
func SuspiciousPairs(t *trace.Trace, minRatings int) SuspiciousPairsResult {
	pairCounts := t.CountPairs()

	// Per-target totals to derive the "everyone else" statistic b.
	type tot struct{ pos, all int }
	targetTotals := map[trace.NodeID]tot{}
	for p, c := range pairCounts {
		tt := targetTotals[p.Target]
		tt.pos += c.Positive
		tt.all += c.Total
		targetTotals[p.Target] = tt
	}

	var res SuspiciousPairsResult
	sellerSet := map[trace.NodeID]bool{}
	raterSet := map[trace.NodeID]bool{}
	var sumA, sumB float64
	nBooster := 0
	for p, c := range pairCounts {
		if c.Total < minRatings {
			continue
		}
		tt := targetTotals[p.Target]
		restAll := tt.all - c.Total
		restPos := tt.pos - c.Positive
		ps := PairStat{
			Rater:  p.Rater,
			Target: p.Target,
			Count:  c.Total,
			A:      float64(c.Positive) / float64(c.Total),
		}
		if restAll > 0 {
			ps.B = float64(restPos) / float64(restAll)
		}
		res.Pairs = append(res.Pairs, ps)
		sellerSet[p.Target] = true
		raterSet[p.Rater] = true
		if ps.A > 0.5 {
			sumA += ps.A
			sumB += ps.B
			nBooster++
		}
	}
	if nBooster > 0 {
		res.MeanA = sumA / float64(nBooster)
		res.MeanB = sumB / float64(nBooster)
	}
	sort.Slice(res.Pairs, func(i, j int) bool {
		if res.Pairs[i].Count != res.Pairs[j].Count {
			return res.Pairs[i].Count > res.Pairs[j].Count
		}
		if res.Pairs[i].Target != res.Pairs[j].Target {
			return res.Pairs[i].Target < res.Pairs[j].Target
		}
		return res.Pairs[i].Rater < res.Pairs[j].Rater
	})
	res.Sellers = sortedKeys(sellerSet)
	res.Raters = sortedKeys(raterSet)
	return res
}

func sortedKeys(set map[trace.NodeID]bool) []trace.NodeID {
	out := make([]trace.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RaterPoint is one observation in a Figure 1(b) series.
type RaterPoint struct {
	Day   int
	Score trace.Score
}

// RaterSeries returns, for each rater that rated seller at least minRatings
// times, the chronological series of that rater's scores — the raw material
// of Figure 1(b). Raters are returned in descending series length.
type RaterSeries struct {
	Rater  trace.NodeID
	Points []RaterPoint
}

// SellerRaterSeries extracts per-rater score series on one seller.
func SellerRaterSeries(t *trace.Trace, seller trace.NodeID, minRatings int) []RaterSeries {
	byRater := map[trace.NodeID][]RaterPoint{}
	for _, r := range t.Ratings {
		if r.Target != seller {
			continue
		}
		byRater[r.Rater] = append(byRater[r.Rater], RaterPoint{Day: r.Day, Score: r.Score})
	}
	var out []RaterSeries
	for rater, pts := range byRater {
		if len(pts) < minRatings {
			continue
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Day < pts[j].Day })
		out = append(out, RaterSeries{Rater: rater, Points: pts})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Points) != len(out[j].Points) {
			return len(out[i].Points) > len(out[j].Points)
		}
		return out[i].Rater < out[j].Rater
	})
	return out
}

// RaterFrequency is one seller's entry in Figure 1(c): across the seller's
// raters, the average number of ratings per rater per day, and the maximum
// and minimum total ratings any single rater gave in the window.
type RaterFrequency struct {
	Seller       trace.NodeID
	Reputation   float64
	AvgPerDay    float64 // mean over raters of (ratings by rater / window days)
	MaxPerRater  int     // largest per-rater total
	MinPerRater  int     // smallest per-rater total
	RaterCount   int
	VariancePerR float64 // variance of per-rater totals (the paper notes
	// suspicious sellers exhibit much larger rating variance)
}

// SellerRaterFrequencies computes Figure 1(c) statistics for the given
// sellers over a window of the given number of days.
func SellerRaterFrequencies(t *trace.Trace, sellers []trace.NodeID, days int) []RaterFrequency {
	perSellerRater := map[trace.NodeID]map[trace.NodeID]int{}
	for _, r := range t.Ratings {
		m := perSellerRater[r.Target]
		if m == nil {
			m = map[trace.NodeID]int{}
			perSellerRater[r.Target] = m
		}
		m[r.Rater]++
	}
	out := make([]RaterFrequency, 0, len(sellers))
	for _, s := range sellers {
		counts := perSellerRater[s]
		rf := RaterFrequency{Seller: s}
		if rep, ok := t.Reputation(s); ok {
			rf.Reputation = rep
		}
		if len(counts) == 0 {
			out = append(out, rf)
			continue
		}
		var sum stats.Summary
		first := true
		for _, c := range counts {
			sum.Add(float64(c))
			if first {
				rf.MaxPerRater, rf.MinPerRater = c, c
				first = false
				continue
			}
			if c > rf.MaxPerRater {
				rf.MaxPerRater = c
			}
			if c < rf.MinPerRater {
				rf.MinPerRater = c
			}
		}
		rf.RaterCount = sum.N()
		if days > 0 {
			rf.AvgPerDay = sum.Mean() / float64(days)
		}
		rf.VariancePerR = sum.Variance()
		out = append(out, rf)
	}
	return out
}

package analysis

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/trace"
)

func mkRating(day int, rater, target trace.NodeID, score trace.Score) trace.Rating {
	return trace.Rating{Day: day, Rater: rater, Target: target, Score: score}
}

func TestRatingVsReputation(t *testing.T) {
	tr := &trace.Trace{Ratings: []trace.Rating{
		mkRating(0, 10, 1, 5),
		mkRating(1, 11, 1, 4),
		mkRating(2, 12, 1, 1),
		mkRating(3, 13, 2, 5),
		mkRating(4, 14, 2, 3),
	}}
	vols := RatingVsReputation(tr)
	if len(vols) != 2 {
		t.Fatalf("got %d sellers, want 2", len(vols))
	}
	// Seller 1: 2 positive, 1 negative => reputation 2/3.
	// Seller 2: 1 positive, 1 neutral => reputation 1/2.
	if vols[0].Seller != 1 || math.Abs(vols[0].Reputation-2.0/3.0) > 1e-12 {
		t.Fatalf("first seller = %+v", vols[0])
	}
	if vols[0].Positive != 2 || vols[0].Negative != 1 || vols[0].Neutral != 0 {
		t.Fatalf("seller 1 volumes = %+v", vols[0])
	}
	if vols[1].Seller != 2 || vols[1].Neutral != 1 {
		t.Fatalf("second seller = %+v", vols[1])
	}
	if vols[0].Reputation < vols[1].Reputation {
		t.Fatal("not sorted by descending reputation")
	}
}

func TestSuspiciousPairsManual(t *testing.T) {
	tr := &trace.Trace{}
	// Booster 100 rates seller 1 thirty times with 5s.
	for d := 0; d < 30; d++ {
		tr.Ratings = append(tr.Ratings, mkRating(d, 100, 1, 5))
	}
	// Everyone else gives seller 1 mostly negatives: 10 ratings, 1 positive.
	for d := 0; d < 10; d++ {
		score := trace.Score(1)
		if d == 0 {
			score = 5
		}
		tr.Ratings = append(tr.Ratings, mkRating(d, trace.NodeID(200+d), 1, score))
	}
	// A normal low-frequency pair that must not be flagged.
	tr.Ratings = append(tr.Ratings, mkRating(3, 300, 2, 4))

	res := SuspiciousPairs(tr, 20)
	if len(res.Pairs) != 1 {
		t.Fatalf("flagged %d pairs, want 1: %+v", len(res.Pairs), res.Pairs)
	}
	p := res.Pairs[0]
	if p.Rater != 100 || p.Target != 1 || p.Count != 30 {
		t.Fatalf("flagged pair = %+v", p)
	}
	if p.A != 1.0 {
		t.Fatalf("a = %v, want 1.0", p.A)
	}
	if want := 0.1; math.Abs(p.B-want) > 1e-12 {
		t.Fatalf("b = %v, want %v", p.B, want)
	}
	if len(res.Sellers) != 1 || res.Sellers[0] != 1 {
		t.Fatalf("suspicious sellers = %v", res.Sellers)
	}
	if len(res.Raters) != 1 || res.Raters[0] != 100 {
		t.Fatalf("suspicious raters = %v", res.Raters)
	}
	if res.MeanA != 1.0 || math.Abs(res.MeanB-0.1) > 1e-12 {
		t.Fatalf("MeanA/MeanB = %v/%v", res.MeanA, res.MeanB)
	}
}

func TestSuspiciousPairsRivalIncluded(t *testing.T) {
	tr := &trace.Trace{}
	for d := 0; d < 25; d++ {
		tr.Ratings = append(tr.Ratings, mkRating(d, 100, 1, 1)) // rival: all 1s
	}
	for d := 0; d < 5; d++ {
		tr.Ratings = append(tr.Ratings, mkRating(d, trace.NodeID(200+d), 1, 5))
	}
	res := SuspiciousPairs(tr, 20)
	if len(res.Pairs) != 1 {
		t.Fatalf("flagged %d pairs, want 1", len(res.Pairs))
	}
	if res.Pairs[0].A != 0 {
		t.Fatalf("rival a = %v, want 0", res.Pairs[0].A)
	}
	// Rival pairs (a <= 0.5) must not contaminate the booster means.
	if res.MeanA != 0 || res.MeanB != 0 {
		t.Fatalf("means should be zero with no boosters: %v/%v", res.MeanA, res.MeanB)
	}
}

func TestSellerRaterSeries(t *testing.T) {
	tr := &trace.Trace{Ratings: []trace.Rating{
		mkRating(5, 100, 1, 5),
		mkRating(1, 100, 1, 5),
		mkRating(3, 100, 1, 4),
		mkRating(2, 101, 1, 1),
		mkRating(0, 102, 2, 5),
	}}
	series := SellerRaterSeries(tr, 1, 2)
	if len(series) != 1 {
		t.Fatalf("got %d series, want 1", len(series))
	}
	s := series[0]
	if s.Rater != 100 || len(s.Points) != 3 {
		t.Fatalf("series = %+v", s)
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i-1].Day > s.Points[i].Day {
			t.Fatal("series not chronological")
		}
	}
}

func TestSellerRaterFrequencies(t *testing.T) {
	tr := &trace.Trace{}
	// Seller 1: rater 100 gives 10 ratings, rater 101 gives 2.
	for d := 0; d < 10; d++ {
		tr.Ratings = append(tr.Ratings, mkRating(d, 100, 1, 5))
	}
	tr.Ratings = append(tr.Ratings, mkRating(0, 101, 1, 4), mkRating(1, 101, 1, 4))
	freqs := SellerRaterFrequencies(tr, []trace.NodeID{1, 99}, 10)
	if len(freqs) != 2 {
		t.Fatalf("got %d entries, want 2", len(freqs))
	}
	f := freqs[0]
	if f.Seller != 1 || f.RaterCount != 2 || f.MaxPerRater != 10 || f.MinPerRater != 2 {
		t.Fatalf("frequency = %+v", f)
	}
	if want := (10.0 + 2.0) / 2.0 / 10.0; math.Abs(f.AvgPerDay-want) > 1e-12 {
		t.Fatalf("AvgPerDay = %v, want %v", f.AvgPerDay, want)
	}
	if f.VariancePerR <= 0 {
		t.Fatal("variance should be positive for unequal rater counts")
	}
	if freqs[1].RaterCount != 0 {
		t.Fatalf("unknown seller should have zero raters: %+v", freqs[1])
	}
}

func TestInteractionGraphBasics(t *testing.T) {
	tr := &trace.Trace{}
	addMutual := func(a, b trace.NodeID, n int) {
		for d := 0; d < n; d++ {
			tr.Ratings = append(tr.Ratings, mkRating(d, a, b, 5), mkRating(d, b, a, 5))
		}
	}
	addMutual(1, 2, 15) // 30 combined: edge
	addMutual(3, 4, 5)  // 10 combined: no edge at threshold 20
	for d := 0; d < 25; d++ {
		tr.Ratings = append(tr.Ratings, mkRating(d, 5, 6, 5)) // one-way 25
	}

	g := BuildInteractionGraph(tr, GraphOptions{EdgeThreshold: 20})
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("missing mutual high-frequency edge")
	}
	if g.HasEdge(3, 4) {
		t.Fatal("edge below threshold present")
	}
	if !g.HasEdge(5, 6) {
		t.Fatal("one-way edge should exist without RequireMutual")
	}

	gm := BuildInteractionGraph(tr, GraphOptions{EdgeThreshold: 20, RequireMutual: true})
	if gm.HasEdge(5, 6) {
		t.Fatal("one-way edge should be dropped with RequireMutual")
	}
	if !gm.HasEdge(1, 2) {
		t.Fatal("mutual edge dropped with RequireMutual")
	}
}

func TestGraphComponentsAndTriangles(t *testing.T) {
	tr := &trace.Trace{}
	plant := func(a, b trace.NodeID) {
		for d := 0; d < 25; d++ {
			tr.Ratings = append(tr.Ratings, mkRating(d, a, b, 5))
		}
	}
	plant(1, 2) // pair
	plant(3, 4) // chain 3-4-5
	plant(4, 5) //
	plant(6, 7) // triangle 6-7-8
	plant(7, 8) //
	plant(8, 6) //
	g := BuildInteractionGraph(tr, GraphOptions{EdgeThreshold: 20})

	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3", comps)
	}
	if g.Triangles() != 1 {
		t.Fatalf("triangles = %d, want 1", g.Triangles())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("max degree = %d, want 2", g.MaxDegree())
	}

	structure := g.ClassifyStructure()
	if structure.IsolatedPairs != 1 || structure.ChainComponents != 1 || structure.ClosedGroups != 1 {
		t.Fatalf("structure = %+v", structure)
	}
}

func TestGraphEmptyTrace(t *testing.T) {
	g := BuildInteractionGraph(&trace.Trace{}, GraphOptions{EdgeThreshold: 20})
	if len(g.Nodes()) != 0 || len(g.Edges()) != 0 || g.Triangles() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty trace produced non-empty graph")
	}
	if got := g.ClassifyStructure(); got != (PureParity{}) {
		t.Fatalf("structure of empty graph = %+v", got)
	}
}

func TestGraphEdgesSortedAndSymmetric(t *testing.T) {
	tr := &trace.Trace{}
	for d := 0; d < 25; d++ {
		tr.Ratings = append(tr.Ratings, mkRating(d, 9, 2, 5))
		tr.Ratings = append(tr.Ratings, mkRating(d, 5, 1, 5))
	}
	g := BuildInteractionGraph(tr, GraphOptions{EdgeThreshold: 20})
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge endpoints not ordered: %v", e)
		}
		if !g.HasEdge(e[1], e[0]) {
			t.Fatalf("edge %v not symmetric", e)
		}
	}
	if edges[0][0] > edges[1][0] {
		t.Fatalf("edges not sorted: %v", edges)
	}
}

// End-to-end: the Section III pipeline re-derives the planted structure of
// a synthetic Amazon trace without seeing the ground truth.
func TestAmazonPipelineRecoversPlantedBoosters(t *testing.T) {
	cfg := trace.DefaultAmazonConfig()
	// Shrink volumes to keep the test fast while preserving structure.
	for i := range cfg.Bands {
		cfg.Bands[i].MeanDailyRatings /= 4
	}
	at, err := trace.GenerateAmazon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := SuspiciousPairs(&at.Trace, 20)

	// Every flagged booster-like pair (a > 0.5) must be a planted booster,
	// and most planted boosters must be recovered.
	planted := 0
	for _, boosters := range at.Truth.Boosters {
		planted += len(boosters)
	}
	recovered := 0
	falsePositives := 0
	for _, p := range res.Pairs {
		if p.A > 0.5 {
			if at.Truth.IsBooster(p.Target, p.Rater) {
				recovered++
			} else {
				falsePositives++
			}
		}
	}
	if planted == 0 {
		t.Fatal("generator planted no boosters")
	}
	if recall := float64(recovered) / float64(planted); recall < 0.9 {
		t.Fatalf("booster recall = %v (%d/%d)", recall, recovered, planted)
	}
	if falsePositives > planted/10 {
		t.Fatalf("too many false positives: %d", falsePositives)
	}
	// The paper's headline statistics: boosters' own positive share is very
	// high while the rest of the ratings skew much lower.
	if res.MeanA < 0.9 {
		t.Fatalf("MeanA = %v, want > 0.9", res.MeanA)
	}
	if res.MeanB > res.MeanA-0.05 {
		t.Fatalf("MeanB = %v not separated from MeanA = %v", res.MeanB, res.MeanA)
	}
}

// End-to-end: Figure 1(d) — planted Overstock pairs appear as edges, the
// structure is pairwise (zero triangles), and chains exist but stay open.
func TestOverstockPipelineStructure(t *testing.T) {
	cfg := trace.DefaultOverstockConfig()
	cfg.Users = 500
	cfg.OrganicTransactions = 3000
	tr, err := trace.GenerateOverstock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := BuildInteractionGraph(tr, GraphOptions{EdgeThreshold: 20, RequireMutual: true})

	for _, p := range tr.Truth.ColludingPairs {
		if !g.HasEdge(p[0], p[1]) {
			t.Fatalf("planted pair %v not recovered as an edge", p)
		}
	}
	if g.Triangles() != 0 {
		t.Fatalf("triangles = %d, want 0 (C5)", g.Triangles())
	}
	structure := g.ClassifyStructure()
	if structure.ClosedGroups != 0 {
		t.Fatalf("closed groups = %d, want 0", structure.ClosedGroups)
	}
	if structure.IsolatedPairs < cfg.ColludingPairs {
		t.Fatalf("isolated pairs = %d, want >= %d", structure.IsolatedPairs, cfg.ColludingPairs)
	}
	if structure.ChainComponents < cfg.ChainUsers {
		t.Fatalf("chain components = %d, want >= %d", structure.ChainComponents, cfg.ChainUsers)
	}
}

func BenchmarkSuspiciousPairs(b *testing.B) {
	cfg := trace.DefaultAmazonConfig()
	for i := range cfg.Bands {
		cfg.Bands[i].MeanDailyRatings /= 8
	}
	at, err := trace.GenerateAmazon(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SuspiciousPairs(&at.Trace, 20)
	}
}

func BenchmarkBuildInteractionGraph(b *testing.B) {
	cfg := trace.DefaultOverstockConfig()
	cfg.Users = 500
	cfg.OrganicTransactions = 3000
	tr, err := trace.GenerateOverstock(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildInteractionGraph(tr, GraphOptions{EdgeThreshold: 20, RequireMutual: true})
	}
}

func TestWriteDOT(t *testing.T) {
	tr := &trace.Trace{}
	for d := 0; d < 25; d++ {
		tr.Ratings = append(tr.Ratings, mkRating(d, 1, 2, 5))
		tr.Ratings = append(tr.Ratings, mkRating(d, 3, 4, 5))
	}
	g := BuildInteractionGraph(tr, GraphOptions{EdgeThreshold: 20})
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph interactions {", "n1 -- n2;", "n3 -- n4;", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

package analysis

import (
	"fmt"
	"io"
	"sort"

	"github.com/p2psim/collusion/internal/trace"
)

// InteractionGraph is the undirected rating-interaction graph of
// Figure 1(d): nodes are users, and an edge connects i and j when their
// combined rating traffic crosses a threshold. Its structure exposes
// collusion groups — the paper's key structural finding (C5) is that
// components are paths and stars, never triangles or larger cliques.
type InteractionGraph struct {
	adj map[trace.NodeID]map[trace.NodeID]bool
}

// GraphOptions controls interaction-graph construction.
type GraphOptions struct {
	// EdgeThreshold is the minimum combined (both directions) rating count
	// for an edge; the paper uses 20.
	EdgeThreshold int
	// RequireMutual additionally demands at least one rating in each
	// direction, isolating genuinely reciprocal relationships.
	RequireMutual bool
}

// BuildInteractionGraph constructs the interaction graph of a trace.
func BuildInteractionGraph(t *trace.Trace, opts GraphOptions) *InteractionGraph {
	if opts.EdgeThreshold < 1 {
		opts.EdgeThreshold = 1
	}
	directed := t.CountPairs()
	g := &InteractionGraph{adj: map[trace.NodeID]map[trace.NodeID]bool{}}
	seen := map[[2]trace.NodeID]bool{}
	for p := range directed {
		a, b := p.Rater, p.Target
		if a > b {
			a, b = b, a
		}
		key := [2]trace.NodeID{a, b}
		if seen[key] {
			continue
		}
		seen[key] = true
		fwd := directed[trace.Pair{Rater: a, Target: b}].Total
		rev := directed[trace.Pair{Rater: b, Target: a}].Total
		if fwd+rev < opts.EdgeThreshold {
			continue
		}
		if opts.RequireMutual && (fwd == 0 || rev == 0) {
			continue
		}
		g.addEdge(a, b)
	}
	return g
}

func (g *InteractionGraph) addEdge(a, b trace.NodeID) {
	if g.adj[a] == nil {
		g.adj[a] = map[trace.NodeID]bool{}
	}
	if g.adj[b] == nil {
		g.adj[b] = map[trace.NodeID]bool{}
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
}

// Nodes returns all nodes with at least one edge, ascending.
func (g *InteractionGraph) Nodes() []trace.NodeID {
	out := make([]trace.NodeID, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all undirected edges with endpoints ordered ascending,
// sorted lexicographically.
func (g *InteractionGraph) Edges() [][2]trace.NodeID {
	var out [][2]trace.NodeID
	for a, nbrs := range g.adj {
		for b := range nbrs {
			if a < b {
				out = append(out, [2]trace.NodeID{a, b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Degree returns a node's edge count.
func (g *InteractionGraph) Degree(n trace.NodeID) int { return len(g.adj[n]) }

// HasEdge reports whether a and b are connected.
func (g *InteractionGraph) HasEdge(a, b trace.NodeID) bool { return g.adj[a][b] }

// Components returns connected components, each sorted ascending, ordered
// by their smallest member.
func (g *InteractionGraph) Components() [][]trace.NodeID {
	visited := map[trace.NodeID]bool{}
	var comps [][]trace.NodeID
	for _, start := range g.Nodes() {
		if visited[start] {
			continue
		}
		var comp []trace.NodeID
		stack := []trace.NodeID{start}
		visited[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			//colsimlint:ignore maporder comp and comps are both sorted below, so traversal order cannot be observed
			for nbr := range g.adj[n] {
				if !visited[nbr] {
					visited[nbr] = true
					stack = append(stack, nbr)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// Triangles counts distinct 3-cliques. The paper's C5 analysis rests on
// this being zero for the suspected-colluder subgraph: colluders pair up
// but never form closed groups.
func (g *InteractionGraph) Triangles() int {
	count := 0
	for a, nbrs := range g.adj {
		for b := range nbrs {
			if b <= a {
				continue
			}
			for c := range g.adj[b] {
				if c <= b {
					continue
				}
				if g.adj[a][c] {
					count++
				}
			}
		}
	}
	return count
}

// MaxDegree returns the largest degree in the graph (0 when empty).
func (g *InteractionGraph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// PureParity classifies the structure for the Figure 1(d) narrative.
type PureParity struct {
	// IsolatedPairs counts components that are exactly two nodes — the
	// dominant collusion shape.
	IsolatedPairs int
	// ChainComponents counts components of three or more nodes that are
	// still triangle-free (connected "in a pair-wise manner").
	ChainComponents int
	// ClosedGroups counts components containing at least one triangle —
	// true group collusion, which the paper found to be absent.
	ClosedGroups int
}

// ClassifyStructure buckets every component of the graph.
func (g *InteractionGraph) ClassifyStructure() PureParity {
	var out PureParity
	for _, comp := range g.Components() {
		switch {
		case len(comp) == 2:
			out.IsolatedPairs++
		case g.componentHasTriangle(comp):
			out.ClosedGroups++
		default:
			out.ChainComponents++
		}
	}
	return out
}

func (g *InteractionGraph) componentHasTriangle(comp []trace.NodeID) bool {
	inComp := map[trace.NodeID]bool{}
	for _, n := range comp {
		inComp[n] = true
	}
	for _, a := range comp {
		for b := range g.adj[a] {
			if b <= a || !inComp[b] {
				continue
			}
			for c := range g.adj[b] {
				if c <= b || !inComp[c] {
					continue
				}
				if g.adj[a][c] {
					return true
				}
			}
		}
	}
	return false
}

// WriteDOT renders the interaction graph in Graphviz DOT format, with
// suspected colluders (nodes whose every edge is mutual high-frequency
// rating) drawn filled — the presentation of the paper's Figure 1(d).
// Nodes in pairs or chains can be plotted directly with
// `dot -Tsvg` / `neato -Tsvg`.
func (g *InteractionGraph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "graph interactions {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  node [shape=circle, style=filled, fillcolor=gray25, fontcolor=white];"); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  n%d -- n%d;\n", e[0], e[1]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

package core

import (
	"fmt"
	"sort"

	"github.com/p2psim/collusion/internal/dht"
	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
)

// Kind selects which detection method a manager ring runs.
type Kind int

// Detection method kinds.
const (
	KindBasic Kind = iota
	KindOptimized
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindBasic {
		return "unoptimized"
	}
	return "optimized"
}

// ManagerRing distributes the centralized reputation manager's role over a
// set of reputation managers organized in a Chord DHT, as in Sections
// IV-A/B of the paper. The manager of rated node i is the DHT owner of
// hash(i); it holds i's matrix row (all ratings received by i). During
// detection, when a suspicion involves a node managed elsewhere, the
// manager contacts that node's manager through the DHT (the paper's
// Insert(j, msg) step) for the symmetric check; those request/response
// exchanges are charged to metrics.CostManagerMessage and the underlying
// routing hops to metrics.CostDHTMessage.
type ManagerRing struct {
	ring       *dht.Ring
	managers   map[dht.ID]*manager
	population int
	keys       []dht.ID   // DHT key per rated node
	ownerOf    []*manager // manager per rated node
	th         Thresholds
	meter      *metrics.CostMeter

	// Trace, if enabled, receives one manager_audit event per initiated
	// suspicion (the request/response exchange of the distributed
	// protocol), recording the initiating manager, whether the exchange
	// crossed managers, and the outcome.
	Trace *obs.Tracer
	// Spans, if enabled, brackets every Detect pass in a
	// "manager.exchange" span carrying the detected-pair count and the
	// manager-message delta the protocol exchanged — deterministic
	// functions of the recorded ratings.
	Spans *obs.SpanTracer
}

// Observe wires the registry's dht.lookup_hops histogram into the ring so
// every routed lookup records its hop count. A nil registry is a no-op.
func (mr *ManagerRing) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	mr.ring.SetHopObserver(reg.Histogram("dht.lookup_hops"))
}

// manager is one reputation manager: a DHT node plus the matrix rows of
// the rated nodes it is responsible for, and replica rows mirrored from
// its predecessor manager for failover.
type manager struct {
	node        *dht.Node
	responsible []int
	rows        map[int]*row
	replicas    map[int]*row
}

// row is one rated node's matrix row: per-rater counts plus receive totals.
type row struct {
	total, pos, neg             map[int]int
	recvTotal, recvPos, recvNeg int
}

func newRow() *row {
	return &row{total: map[int]int{}, pos: map[int]int{}, neg: map[int]int{}}
}

// clone deep-copies a row.
func (r *row) clone() *row {
	c := newRow()
	for k, v := range r.total {
		c.total[k] = v
	}
	for k, v := range r.pos {
		c.pos[k] = v
	}
	for k, v := range r.neg {
		c.neg[k] = v
	}
	c.recvTotal, c.recvPos, c.recvNeg = r.recvTotal, r.recvPos, r.recvNeg
	return c
}

func (r *row) summation() int { return r.recvPos - r.recvNeg }

// NewManagerRing builds a ring of numManagers reputation managers over a
// rated population of the given size. The meter, if non-nil, receives DHT
// and manager message counts.
func NewManagerRing(numManagers, population int, th Thresholds, meter *metrics.CostMeter) (*ManagerRing, error) {
	if numManagers < 1 {
		return nil, fmt.Errorf("core: numManagers = %d, want >= 1", numManagers)
	}
	if population < 1 {
		return nil, fmt.Errorf("core: population = %d, want >= 1", population)
	}
	if err := th.Validate(); err != nil {
		return nil, err
	}
	ring, err := dht.NewRing(32, meter)
	if err != nil {
		return nil, err
	}
	mr := &ManagerRing{
		ring:       ring,
		managers:   map[dht.ID]*manager{},
		population: population,
		keys:       make([]dht.ID, population),
		ownerOf:    make([]*manager, population),
		th:         th,
		meter:      meter,
	}
	for k := 0; k < numManagers; k++ {
		name := fmt.Sprintf("manager-%d", k)
		node, err := ring.AddNode(name)
		if err != nil {
			// Hash collisions are vanishingly rare in a 32-bit space; retry
			// with a salted name rather than failing setup.
			node, err = ring.AddNode(name + "-salt")
			if err != nil {
				return nil, err
			}
		}
		mr.managers[node.ID()] = &manager{node: node, rows: map[int]*row{}, replicas: map[int]*row{}}
	}
	space := ring.Space()
	for i := 0; i < population; i++ {
		mr.keys[i] = space.HashInt(i)
		owner, err := ring.Owner(mr.keys[i])
		if err != nil {
			return nil, err
		}
		m := mr.managers[owner.ID()]
		m.responsible = append(m.responsible, i)
		mr.ownerOf[i] = m
	}
	for _, m := range mr.managers {
		sort.Ints(m.responsible)
	}
	return mr, nil
}

// Managers returns the number of reputation managers on the ring.
func (mr *ManagerRing) Managers() int { return len(mr.managers) }

// ManagerOf returns the name of the manager responsible for rated node i.
func (mr *ManagerRing) ManagerOf(i int) (string, error) {
	if i < 0 || i >= mr.population {
		return "", fmt.Errorf("core: node %d outside population [0,%d)", i, mr.population)
	}
	return mr.ownerOf[i].node.Name(), nil
}

// Record reports one rating: it is routed through the DHT to the target's
// reputation manager, which updates the target's matrix row. Routing hops
// are charged to the meter by the underlying ring.
func (mr *ManagerRing) Record(rater, target, polarity int) error {
	if rater < 0 || rater >= mr.population || target < 0 || target >= mr.population {
		return fmt.Errorf("core: Record(%d, %d) outside population [0,%d)", rater, target, mr.population)
	}
	if rater == target {
		return fmt.Errorf("core: node %d rated itself", rater)
	}
	if polarity < -1 || polarity > 1 {
		return fmt.Errorf("core: polarity %d, want -1, 0 or 1", polarity)
	}
	// Route the rating to the manager (the paper's Insert(ID_i, r_i)).
	owner, _, err := mr.ring.FindSuccessor(nil, mr.keys[target])
	if err != nil {
		return err
	}
	m := mr.managers[owner.ID()]
	applyRating(rowFor(m.rows, target), rater, polarity)
	// Mirror the update onto the successor manager so the row survives a
	// manager crash (single-manager rings have nobody to mirror to).
	if backup := mr.successorManager(m); backup != nil {
		applyRating(rowFor(backup.replicas, target), rater, polarity)
	}
	return nil
}

// rowFor fetches or creates the row for target in the given row map.
func rowFor(rows map[int]*row, target int) *row {
	r := rows[target]
	if r == nil {
		r = newRow()
		rows[target] = r
	}
	return r
}

// applyRating folds one rating into a row.
func applyRating(r *row, rater, polarity int) {
	r.total[rater]++
	r.recvTotal++
	switch polarity {
	case 1:
		r.pos[rater]++
		r.recvPos++
	case -1:
		r.neg[rater]++
		r.recvNeg++
	}
}

// successorManager returns the manager following m on the ring, or nil
// when m is the only manager.
func (mr *ManagerRing) successorManager(m *manager) *manager {
	succ := m.node.Successor()
	if succ == nil || succ == m.node {
		return nil
	}
	return mr.managers[succ.ID()]
}

// FailManager crashes the named reputation manager: its DHT node fails,
// responsibility moves to the surviving owners, and the failed manager's
// rows are recovered from the replicas its successor held. It returns an
// error for unknown managers or when it would leave the ring empty.
func (mr *ManagerRing) FailManager(name string) error {
	var victim *manager
	for _, m := range mr.managers {
		if m.node.Name() == name {
			victim = m
			break
		}
	}
	if victim == nil {
		return fmt.Errorf("core: no manager named %q", name)
	}
	if len(mr.managers) == 1 {
		return fmt.Errorf("core: cannot fail the last manager")
	}
	// The successor holds the victim's replicas; capture them before the
	// topology changes.
	backup := mr.successorManager(victim)
	if err := mr.ring.Fail(victim.node.ID()); err != nil {
		return err
	}
	delete(mr.managers, victim.node.ID())

	// Recompute responsibility for the whole population.
	for _, m := range mr.managers {
		m.responsible = m.responsible[:0]
	}
	for i := 0; i < mr.population; i++ {
		owner, err := mr.ring.Owner(mr.keys[i])
		if err != nil {
			return err
		}
		m := mr.managers[owner.ID()]
		m.responsible = append(m.responsible, i)
		mr.ownerOf[i] = m
	}
	for _, m := range mr.managers {
		sort.Ints(m.responsible)
	}
	// Promote the victim's replicated rows at their new owners.
	if backup != nil {
		for target, r := range backup.replicas {
			newOwner := mr.ownerOf[target]
			if newOwner.rows[target] == nil {
				newOwner.rows[target] = r
			}
		}
	}
	// Rebuild every replica set for the new topology.
	for _, m := range mr.managers {
		m.replicas = map[int]*row{}
	}
	for _, m := range mr.managers {
		backup := mr.successorManager(m)
		if backup == nil {
			continue
		}
		for target, r := range m.rows {
			backup.replicas[target] = r.clone()
		}
	}
	return nil
}

// RecordLedger bulk-loads a full ledger into the managers, charging no
// routing cost; experiments use it to compare centralized and
// decentralized detection on identical data.
func (mr *ManagerRing) RecordLedger(l *reputation.Ledger) error {
	if l.Size() != mr.population {
		return fmt.Errorf("core: ledger size %d != population %d", l.Size(), mr.population)
	}
	for target := 0; target < mr.population; target++ {
		pc := l.PairCountsOf(target)
		if len(pc.Raters) == 0 {
			continue
		}
		m := mr.ownerOf[target]
		r := rowFor(m.rows, target)
		var br *row
		if backup := mr.successorManager(m); backup != nil {
			br = rowFor(backup.replicas, target)
		}
		for k, r32 := range pc.Raters {
			total, pos, neg := int(pc.Total[k]), int(pc.Pos[k]), int(pc.Neg[k])
			addCounts(r, int(r32), total, pos, neg)
			if br != nil {
				addCounts(br, int(r32), total, pos, neg)
			}
		}
	}
	return nil
}

// addCounts folds aggregate counts into a row.
func addCounts(r *row, rater, total, pos, neg int) {
	r.total[rater] += total
	r.pos[rater] += pos
	r.neg[rater] += neg
	r.recvTotal += total
	r.recvPos += pos
	r.recvNeg += neg
}

// ResetPeriod clears all manager rows for a new period T.
func (mr *ManagerRing) ResetPeriod() {
	for _, m := range mr.managers {
		m.rows = map[int]*row{}
		m.replicas = map[int]*row{}
	}
}

// Detect runs the distributed detection protocol with the selected method
// and aggregates every manager's findings.
func (mr *ManagerRing) Detect(kind Kind) Result {
	if !mr.Spans.Enabled() {
		return mr.detect(kind)
	}
	before := mr.managerMessages()
	mr.Spans.Begin("manager.exchange")
	res := mr.detect(kind)
	mr.Spans.End("manager.exchange",
		obs.Int("pairs", len(res.Pairs)),
		obs.I64("messages", mr.managerMessages()-before))
	return res
}

// managerMessages reads the meter's manager-message count (0 without a
// meter), so the manager.exchange span can carry the protocol's exact
// request/response volume.
func (mr *ManagerRing) managerMessages() int64 {
	if mr.meter == nil {
		return 0
	}
	return mr.meter.Get(metrics.CostManagerMessage)
}

// detect is the span-free protocol pass shared by both entry paths.
func (mr *ManagerRing) detect(kind Kind) Result {
	res := Result{Flagged: make([]bool, mr.population)}
	// Deterministic manager order.
	ids := make([]dht.ID, 0, len(mr.managers))
	for id := range mr.managers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		m := mr.managers[id]
		for _, target := range m.responsible {
			r := m.rows[target]
			if r == nil {
				continue
			}
			if float64(r.summation()) < mr.th.TR {
				continue
			}
			mr.scanTarget(kind, m, target, r, &res)
		}
	}
	mr.associationSweep(&res)
	res.sortPairs()
	return res
}

// associationSweep is the distributed counterpart of the centralized
// sweep: detected colluder identities are published to the managers (their
// reputations are zeroed anyway), and each colluder's manager checks the
// colluder's frequent almost-always-positive raters for reciprocation,
// contacting the rater's manager when it lives elsewhere.
func (mr *ManagerRing) associationSweep(res *Result) {
	if mr.th.StrictReverse {
		return
	}
	queue := res.FlaggedNodes()
	inQueue := make(map[int]bool, len(queue))
	for _, c := range queue {
		inQueue[c] = true
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		m := mr.ownerOf[c]
		r := m.rows[c]
		if r == nil {
			continue
		}
		raters := make([]int, 0, len(r.total))
		for rater := range r.total {
			raters = append(raters, rater)
		}
		sort.Ints(raters)
		for _, x := range raters {
			if x == c || res.HasPair(c, x) {
				continue
			}
			mr.charge(metrics.CostPairCheck, 1)
			ncx := r.total[x]
			if ncx < mr.th.TN || float64(r.pos[x])/float64(ncx) < mr.th.Ta {
				continue
			}
			other := mr.ownerOf[x]
			if other != m {
				mr.routeMessage(m, x)
				mr.charge(metrics.CostManagerMessage, 1)
			}
			or := other.rows[x]
			reciprocates := false
			if or != nil {
				nxc := or.total[c]
				reciprocates = nxc >= mr.th.TN && float64(or.pos[c])/float64(nxc) >= mr.th.Ta
			}
			if other != m {
				mr.routeMessage(other, c)
				mr.charge(metrics.CostManagerMessage, 1)
			}
			if reciprocates {
				mr.addPair(res, c, x, r, or)
				if !inQueue[x] {
					inQueue[x] = true
					queue = append(queue, x)
				}
			}
		}
	}
}

// scanTarget examines every rater of one responsible high-reputed node and
// initiates the symmetric check — local or via a manager-to-manager
// exchange — whenever its own side of the collusion model holds.
func (mr *ManagerRing) scanTarget(kind Kind, m *manager, target int, r *row, res *Result) {
	raters := make([]int, 0, len(r.total))
	for rater := range r.total {
		raters = append(raters, rater)
	}
	sort.Ints(raters)
	for _, rater := range raters {
		mr.charge(metrics.CostPairCheck, 1)
		if !mr.initiates(kind, r, rater) {
			continue
		}
		// Symmetric check: local if this manager also owns the rater,
		// otherwise a request/response exchange with the rater's manager.
		other := mr.ownerOf[rater]
		if other != m {
			mr.routeMessage(m, rater) // request
			mr.charge(metrics.CostManagerMessage, 1)
		}
		or := other.rows[rater]
		positive := or != nil && float64(or.summation()) >= mr.th.TR &&
			mr.confirms(kind, or, target)
		if other != m {
			mr.routeMessage(other, target) // response
			mr.charge(metrics.CostManagerMessage, 1)
		}
		if mr.Trace.Enabled() {
			gate := obs.GateFlagged
			if !positive {
				gate = "not_confirmed"
			}
			mr.Trace.Emit("manager_audit",
				obs.Str("manager", m.node.Name()),
				obs.Int("target", target),
				obs.Int("rater", rater),
				obs.Bool("cross_manager", other != m),
				obs.Str("gate", gate))
		}
		if positive {
			mr.addPair(res, target, rater, r, or)
		}
	}
}

// initiates reports whether the initiating side of the protocol holds:
// the rater is frequent and the manager's own side of the collusion model
// is satisfied.
func (mr *ManagerRing) initiates(kind Kind, r *row, rater int) bool {
	nij := r.total[rater]
	if nij < mr.th.TN {
		return false
	}
	recip := float64(r.pos[rater])/float64(nij) >= mr.th.Ta
	if kind == KindBasic {
		// The unoptimized method computes the outside share for every
		// frequent rater (the cost Formula (2) eliminates), so the row
		// scan is unconditional.
		outLow := mr.outsideLow(r, rater)
		return recip && outLow
	}
	if !mr.th.StrictReverse && !recip {
		return false
	}
	mr.charge(metrics.CostBoundCheck, 1)
	return mr.th.BoundsHold(float64(r.summation()), r.recvTotal, nij)
}

// confirms reports whether the responding manager validates the reverse
// direction of a suspicion about one of its responsible nodes. Under the
// strict (literal) rule it repeats the full one-sided test; under the
// default rule it verifies only frequent, almost-always-positive
// reciprocation.
func (mr *ManagerRing) confirms(kind Kind, r *row, rater int) bool {
	nji := r.total[rater]
	if nji < mr.th.TN {
		return false
	}
	recip := float64(r.pos[rater])/float64(nji) >= mr.th.Ta
	if kind == KindBasic {
		if !recip {
			return false
		}
		if mr.th.StrictReverse {
			return mr.outsideLow(r, rater)
		}
		return true
	}
	if mr.th.StrictReverse {
		mr.charge(metrics.CostBoundCheck, 1)
		return mr.th.BoundsHold(float64(r.summation()), r.recvTotal, nji)
	}
	return recip
}

// outsideLow computes b over a manager row excluding the suspect rater and
// reports whether it falls below Tb.
func (mr *ManagerRing) outsideLow(r *row, rater int) bool {
	othersTotal, othersPos := 0, 0
	for k, c := range r.total {
		if k == rater {
			continue
		}
		othersTotal += c
		othersPos += r.pos[k]
	}
	mr.charge(metrics.CostMatrixScan, int64(len(r.total)))
	if othersTotal == 0 {
		return true
	}
	return float64(othersPos)/float64(othersTotal) < mr.th.Tb
}

// routeMessage routes a manager-to-manager message through the DHT so the
// hop cost is realistic.
func (mr *ManagerRing) routeMessage(from *manager, aboutNode int) {
	if aboutNode < 0 || aboutNode >= mr.population {
		return
	}
	_, _, _ = mr.ring.FindSuccessor(from.node, mr.keys[aboutNode])
}

func (mr *ManagerRing) addPair(res *Result, target, rater int, rt, rr *row) {
	i, j := target, rater
	ri, rj := rt, rr
	if i > j {
		i, j = j, i
		ri, rj = rr, rt
	}
	e := Evidence{I: i, J: j}
	if ri != nil {
		e.NIJ = ri.total[j]
		if e.NIJ > 0 {
			e.AIJ = float64(ri.pos[j]) / float64(e.NIJ)
		}
	}
	if rj != nil {
		e.NJI = rj.total[i]
		if e.NJI > 0 {
			e.AJI = float64(rj.pos[i]) / float64(e.NJI)
		}
	}
	res.insertPair(e)
}

func (mr *ManagerRing) charge(name string, n int64) {
	if mr.meter != nil {
		mr.meter.Add(name, n)
	}
}

package core

import (
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
)

// crossManagerPair returns the first node pair owned by two different
// managers, so detection must exchange request/response messages.
func crossManagerPair(t *testing.T, mr *ManagerRing, n int) (int, int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mi, err := mr.ManagerOf(i)
			if err != nil {
				t.Fatal(err)
			}
			mj, err := mr.ManagerOf(j)
			if err != nil {
				t.Fatal(err)
			}
			if mi != mj {
				return i, j
			}
		}
	}
	t.Fatal("no cross-manager pair in topology")
	return -1, -1
}

// sameManagerPair returns the first node pair owned by one manager.
func sameManagerPair(t *testing.T, mr *ManagerRing, n int) (int, int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mi, err := mr.ManagerOf(i)
			if err != nil {
				t.Fatal(err)
			}
			mj, err := mr.ManagerOf(j)
			if err != nil {
				t.Fatal(err)
			}
			if mi == mj {
				return i, j
			}
		}
	}
	t.Fatal("no same-manager pair in topology")
	return -1, -1
}

// floodMutual plants a detectable colluding pair: enough mutual positives
// to pass TN, Ta, and the Formula (2) bound (a purely mutual row has
// summation 2*nij-ni = nij, inside [2*Ta*nij-nij, nij]).
func floodMutual(t *testing.T, mr *ManagerRing, i, j int) {
	t.Helper()
	for k := 0; k < 25; k++ {
		if err := mr.Record(i, j, 1); err != nil {
			t.Fatal(err)
		}
		if err := mr.Record(j, i, 1); err != nil {
			t.Fatal(err)
		}
	}
}

// TestManagerMessageChargesPinned pins the exact message accounting of
// the distributed protocol on a minimal cross-manager topology: one
// colluding pair owned by two different managers. Each suspicion
// exchange charges metrics.CostManagerMessage exactly once for the
// request and once for the response — two scanned targets make exactly
// 4 — and a second identical Detect doubles both the manager-message
// and detection-phase DHT-hop totals exactly (no hidden or duplicated
// charges).
func TestManagerMessageChargesPinned(t *testing.T) {
	var meter metrics.CostMeter
	const n = 16
	mr, err := NewManagerRing(4, n, DefaultThresholds(), &meter)
	if err != nil {
		t.Fatal(err)
	}
	ci, cj := crossManagerPair(t, mr, n)
	floodMutual(t, mr, ci, cj)

	// Loading routes each rating to its target's manager but never
	// triggers a manager-to-manager exchange.
	loadHops := meter.Get(metrics.CostDHTMessage)
	if loadHops == 0 {
		t.Fatal("loading ratings routed no DHT messages")
	}
	if got := meter.Get(metrics.CostManagerMessage); got != 0 {
		t.Fatalf("loading charged %d manager messages, want 0", got)
	}

	res := mr.Detect(KindOptimized)
	if !res.HasPair(ci, cj) {
		t.Fatalf("planted pair (%d,%d) not flagged: %v", ci, cj, res.Pairs)
	}
	mgr := meter.Get(metrics.CostManagerMessage)
	if mgr != 4 {
		t.Fatalf("Detect charged %d manager messages, want 4 (2 targets x request+response)", mgr)
	}
	detectHops := meter.Get(metrics.CostDHTMessage) - loadHops
	if detectHops == 0 {
		t.Fatal("cross-manager exchanges routed no DHT hops")
	}

	// Detect is read-only: a second pass repeats the identical exchanges.
	mr.Detect(KindOptimized)
	if got := meter.Get(metrics.CostManagerMessage); got != 2*mgr {
		t.Fatalf("second Detect: %d manager messages total, want exactly %d", got, 2*mgr)
	}
	if got := meter.Get(metrics.CostDHTMessage) - loadHops; got != 2*detectHops {
		t.Fatalf("second Detect: %d detection DHT hops total, want exactly %d", got, 2*detectHops)
	}
}

// TestSameManagerExchangeIsLocal is the control for the pinning test: a
// colluding pair owned by one manager is confirmed locally, charging no
// manager messages and routing no detection-phase DHT traffic.
func TestSameManagerExchangeIsLocal(t *testing.T) {
	var meter metrics.CostMeter
	const n = 16
	mr, err := NewManagerRing(4, n, DefaultThresholds(), &meter)
	if err != nil {
		t.Fatal(err)
	}
	ci, cj := sameManagerPair(t, mr, n)
	floodMutual(t, mr, ci, cj)

	loadHops := meter.Get(metrics.CostDHTMessage)
	res := mr.Detect(KindOptimized)
	if !res.HasPair(ci, cj) {
		t.Fatalf("planted pair (%d,%d) not flagged: %v", ci, cj, res.Pairs)
	}
	if got := meter.Get(metrics.CostManagerMessage); got != 0 {
		t.Fatalf("local confirmation charged %d manager messages, want 0", got)
	}
	if got := meter.Get(metrics.CostDHTMessage); got != loadHops {
		t.Fatalf("local confirmation routed %d DHT hops, want 0", got-loadHops)
	}
}

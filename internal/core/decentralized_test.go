package core

import (
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

func TestNewManagerRingValidation(t *testing.T) {
	th := DefaultThresholds()
	if _, err := NewManagerRing(0, 10, th, nil); err == nil {
		t.Error("zero managers accepted")
	}
	if _, err := NewManagerRing(3, 0, th, nil); err == nil {
		t.Error("zero population accepted")
	}
	if _, err := NewManagerRing(3, 10, Thresholds{TN: 0, Ta: 0.8, Tb: 0.2}, nil); err == nil {
		t.Error("invalid thresholds accepted")
	}
}

func TestManagerResponsibilityPartition(t *testing.T) {
	mr, err := NewManagerRing(5, 100, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Managers() != 5 {
		t.Fatalf("managers = %d, want 5", mr.Managers())
	}
	// Every rated node has exactly one manager.
	seen := map[int]string{}
	for i := 0; i < 100; i++ {
		name, err := mr.ManagerOf(i)
		if err != nil {
			t.Fatal(err)
		}
		seen[i] = name
	}
	if len(seen) != 100 {
		t.Fatalf("only %d nodes assigned", len(seen))
	}
	if _, err := mr.ManagerOf(-1); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := mr.ManagerOf(100); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestRecordValidation(t *testing.T) {
	mr, err := NewManagerRing(3, 10, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.Record(0, 0, 1); err == nil {
		t.Error("self-rating accepted")
	}
	if err := mr.Record(-1, 2, 1); err == nil {
		t.Error("negative rater accepted")
	}
	if err := mr.Record(0, 99, 1); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := mr.Record(0, 1, 5); err == nil {
		t.Error("bad polarity accepted")
	}
	if err := mr.Record(0, 1, 1); err != nil {
		t.Errorf("valid rating rejected: %v", err)
	}
}

// collusionWorkload builds a ±1 workload with planted pairs on both a
// central ledger and a manager ring, identically.
func collusionWorkload(t *testing.T, mr *ManagerRing, n int) *reputation.Ledger {
	t.Helper()
	l := reputation.NewLedger(n)
	record := func(rater, target, pol int) {
		l.Record(rater, target, pol)
		if err := mr.Record(rater, target, pol); err != nil {
			t.Fatal(err)
		}
	}
	// Planted colluders: (1,2) and (5,6).
	for _, p := range [][2]int{{1, 2}, {5, 6}} {
		for k := 0; k < 25; k++ {
			record(p[0], p[1], 1)
			record(p[1], p[0], 1)
		}
		for k := 0; k < 8; k++ {
			record(10+k%4, p[0], -1)
			record(10+k%4, p[1], -1)
		}
	}
	// Organic positives for everyone else.
	r := rng.New(11)
	for k := 0; k < n*20; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j || j == 1 || j == 2 || j == 5 || j == 6 {
			continue
		}
		record(i, j, 1)
	}
	return l
}

func TestDecentralizedMatchesCentralized(t *testing.T) {
	const n = 24
	for _, kind := range []Kind{KindBasic, KindOptimized} {
		mr, err := NewManagerRing(4, n, DefaultThresholds(), nil)
		if err != nil {
			t.Fatal(err)
		}
		l := collusionWorkload(t, mr, n)

		var central Result
		if kind == KindBasic {
			central = NewBasic(DefaultThresholds()).Detect(l)
		} else {
			central = NewOptimized(DefaultThresholds()).Detect(l)
		}
		distributed := mr.Detect(kind)

		if len(central.Pairs) != len(distributed.Pairs) {
			t.Fatalf("%v: central %d pairs, distributed %d",
				kind, len(central.Pairs), len(distributed.Pairs))
		}
		for i := range central.Pairs {
			c, d := central.Pairs[i], distributed.Pairs[i]
			if c.I != d.I || c.J != d.J {
				t.Fatalf("%v: pair %d differs: %+v vs %+v", kind, i, c, d)
			}
		}
		if !distributed.HasPair(1, 2) || !distributed.HasPair(5, 6) {
			t.Fatalf("%v: planted pairs missed: %+v", kind, distributed.Pairs)
		}
	}
}

func TestDecentralizedSingleManagerDegeneratesToCentral(t *testing.T) {
	const n = 16
	mr, err := NewManagerRing(1, n, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	l := collusionWorkload(t, mr, n)
	central := NewOptimized(DefaultThresholds()).Detect(l)
	distributed := mr.Detect(KindOptimized)
	if len(central.Pairs) != len(distributed.Pairs) {
		t.Fatalf("single-manager mismatch: %d vs %d", len(central.Pairs), len(distributed.Pairs))
	}
}

func TestRecordLedgerEquivalentToRecord(t *testing.T) {
	const n = 16
	mrA, err := NewManagerRing(3, n, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	l := collusionWorkload(t, mrA, n)

	mrB, err := NewManagerRing(3, n, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mrB.RecordLedger(l); err != nil {
		t.Fatal(err)
	}
	ra := mrA.Detect(KindOptimized)
	rb := mrB.Detect(KindOptimized)
	if len(ra.Pairs) != len(rb.Pairs) {
		t.Fatalf("bulk load diverged: %d vs %d pairs", len(ra.Pairs), len(rb.Pairs))
	}
	for i := range ra.Pairs {
		if ra.Pairs[i] != rb.Pairs[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, ra.Pairs[i], rb.Pairs[i])
		}
	}
	if err := mrB.RecordLedger(reputation.NewLedger(5)); err == nil {
		t.Error("size-mismatched ledger accepted")
	}
}

func TestCrossManagerMessagesCounted(t *testing.T) {
	// With many managers, the two colluders almost surely live on
	// different managers; detection must then exchange messages.
	var meter metrics.CostMeter
	const n = 24
	mr, err := NewManagerRing(8, n, DefaultThresholds(), &meter)
	if err != nil {
		t.Fatal(err)
	}
	collusionWorkload(t, mr, n)
	meter.Reset() // ignore rating-routing hops
	res := mr.Detect(KindOptimized)
	if len(res.Pairs) == 0 {
		t.Fatal("no pairs detected")
	}
	m1, _ := mr.ManagerOf(1)
	m2, _ := mr.ManagerOf(2)
	if m1 != m2 && meter.Get(metrics.CostManagerMessage) == 0 {
		t.Fatal("cross-manager detection exchanged no messages")
	}
}

func TestResetPeriodClearsState(t *testing.T) {
	const n = 16
	mr, err := NewManagerRing(3, n, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	collusionWorkload(t, mr, n)
	mr.ResetPeriod()
	if res := mr.Detect(KindOptimized); len(res.Pairs) != 0 {
		t.Fatalf("detection after reset found %d pairs", len(res.Pairs))
	}
}

func TestKindString(t *testing.T) {
	if KindBasic.String() != "unoptimized" || KindOptimized.String() != "optimized" {
		t.Fatal("Kind strings wrong")
	}
}

func BenchmarkDecentralizedDetect(b *testing.B) {
	const n = 100
	mr, err := NewManagerRing(8, n, DefaultThresholds(), nil)
	if err != nil {
		b.Fatal(err)
	}
	l := benchLedger(n)
	if err := mr.RecordLedger(l); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr.Detect(KindOptimized)
	}
}

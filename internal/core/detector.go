package core

import (
	"sort"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
)

// Evidence describes one detected colluding pair with the statistics that
// triggered the detection. I < J always.
type Evidence struct {
	I, J int
	// NIJ is N_(I,J): ratings I received from J; NJI the reverse.
	NIJ, NJI int
	// AIJ is the positive share of J's ratings for I; AJI the reverse.
	AIJ, AJI float64
}

// Result is a detection outcome over one ledger period.
type Result struct {
	// Pairs lists detected colluding pairs sorted by (I, J).
	Pairs []Evidence
	// Flagged[i] reports whether node i appears in any detected pair.
	Flagged []bool

	// pairSet indexes Pairs by normalized {I, J} so membership tests and
	// dedup are O(1); the association sweep probes it inside its inner
	// loop, which kept the old slice re-scan quadratic in the pair count.
	// Lazily built, so zero-value and literal-constructed Results work.
	pairSet map[[2]int]struct{}
}

// FlaggedNodes returns the indices of all flagged nodes, ascending.
func (r Result) FlaggedNodes() []int {
	var out []int
	for i, f := range r.Flagged {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// HasPair reports whether {a, b} was detected (in either order).
func (r Result) HasPair(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	if r.pairSet != nil {
		_, ok := r.pairSet[[2]int{a, b}]
		return ok
	}
	for _, e := range r.Pairs {
		if e.I == a && e.J == b {
			return true
		}
	}
	return false
}

// insertPair appends e (already normalized to I < J) unless the pair is
// already present, updating the pair index and flags. It reports whether
// the pair was new.
func (r *Result) insertPair(e Evidence) bool {
	if r.pairSet == nil {
		r.pairSet = make(map[[2]int]struct{}, len(r.Pairs)+1)
		for _, p := range r.Pairs {
			r.pairSet[[2]int{p.I, p.J}] = struct{}{}
		}
	}
	key := [2]int{e.I, e.J}
	if _, ok := r.pairSet[key]; ok {
		return false
	}
	r.pairSet[key] = struct{}{}
	r.Pairs = append(r.Pairs, e)
	r.Flagged[e.I] = true
	r.Flagged[e.J] = true
	return true
}

// Detector is a collusion detection method operating on a period ledger.
type Detector interface {
	// Detect derives high-reputed candidates from the ledger's summation
	// scores (R >= TR) and searches them for colluding pairs.
	Detect(l *reputation.Ledger) Result
	// DetectAmong searches only the given candidate nodes, for hosts that
	// determine trustworthiness with their own engine (e.g. EigenTrust
	// with a normalized threshold).
	DetectAmong(l *reputation.Ledger, candidates []int) Result
	// Name identifies the method in experiment output.
	Name() string
}

// Basic is the unoptimized detection method of Section IV-B. For each
// high-reputed node it walks the node's matrix row; for each frequent,
// highly positive rater it re-scans the row to compute the outside
// positive share, then performs the symmetric examination of the rater's
// own row. Work is charged to the meter per matrix element visited,
// making the O(mn²) complexity of Proposition 4.1 measurable.
type Basic struct {
	Thresholds Thresholds
	// Meter, if non-nil, accumulates metrics.CostMatrixScan and
	// metrics.CostPairCheck.
	Meter *metrics.CostMeter
	// Trace, if enabled, receives a pair_audit event per examined high
	// pair recording which threshold gate it stopped at. Disabled tracing
	// adds no work and no allocations to the hot path.
	Trace *obs.Tracer
}

// NewBasic returns a basic detector with the given thresholds.
func NewBasic(t Thresholds) *Basic { return &Basic{Thresholds: t} }

// Name implements Detector.
func (b *Basic) Name() string { return "unoptimized" }

// Detect implements Detector.
func (b *Basic) Detect(l *reputation.Ledger) Result {
	auditCandidates(b.Trace, b.Name(), l, b.Thresholds.TR)
	return b.DetectAmong(l, summationCandidates(l, b.Thresholds.TR))
}

// DetectAmong implements Detector.
//
// The paper's method scans every element of each high-reputed node's
// matrix row. Two facts let the implementation skip the dense walk while
// charging the meter the paper's exact element-visit counts (so Figure 13
// is unchanged and the dense-reference property test stays exact):
//
//   - Non-high elements are screened out with no further work, so their
//     visits can be charged arithmetically: at row i, the dense scan
//     touches the n-1 other columns minus the high pairs {j, i} with
//     j < i already marked checked from row j.
//   - Only unordered high pairs are examined, and each exactly once, so
//     iterating high partners j > i in ascending order replaces both the
//     column walk and the n×n checked bitset.
func (b *Basic) DetectAmong(l *reputation.Ledger, candidates []int) Result {
	n := l.Size()
	res := Result{Flagged: make([]bool, n)}
	highList := highCandidates(n, candidates)

	// Scan high rows top-down, examining each unordered high pair at its
	// first (lower-indexed) row, as the dense left-to-right scan does.
	for idx, i := range highList {
		// Dense row-scan accounting: every element a_ij except the idx
		// already-checked high pairs from earlier rows.
		visited := int64(n - 1 - idx)
		b.charge(metrics.CostPairCheck, visited)
		b.charge(metrics.CostMatrixScan, visited)
		for _, j := range highList[idx+1:] {
			// C2 on n_i: the outside positive share. The unoptimized
			// method pays an O(n) row re-scan here for every examined
			// rater — the cost Proposition 4.1 counts and Formula (2)
			// later eliminates; we walk only n_i's active raters but
			// charge the full dense re-scan.
			outI := b.outsideLow(l, i, j)
			gate := b.screenPair(l, i, j, outI, &res)
			if b.Trace.Enabled() {
				b.Trace.PairAudit(pairAuditFor(l, b.Name(), i, j, gate))
			}
		}
	}
	associationSweep(l, b.Thresholds, &res,
		func(n int64) { b.charge(metrics.CostPairCheck, n) }, b.Trace, b.Name())
	res.sortPairs()
	return res
}

// screenPair runs the §IV-B threshold cascade on one high pair (outI
// precomputed by the caller's unconditional outside scan), records a
// detection, and returns the audit gate label. The charge sequence is
// identical to the pre-audit implementation: one CostMatrixScan for the
// reverse matrix element once the forward screen passes, and outside
// re-scans exactly where the dense method pays them.
func (b *Basic) screenPair(l *reputation.Ledger, i, j int, outI bool, res *Result) string {
	// C4 + C3 forward screen: j rates i frequently and almost always
	// positively.
	nij := l.PairTotal(i, j)
	if nij < b.Thresholds.TN {
		return obs.GateTNForward
	}
	if float64(l.PairPositive(i, j))/float64(nij) < b.Thresholds.Ta {
		return obs.GateTAForward
	}
	if b.Thresholds.StrictReverse && !outI {
		return obs.GateTBForward
	}
	// Symmetric screen on n_j's element a_ji.
	nji := l.PairTotal(j, i)
	b.charge(metrics.CostMatrixScan, 1)
	if nji < b.Thresholds.TN {
		return obs.GateTNReverse
	}
	if float64(l.PairPositive(j, i))/float64(nji) < b.Thresholds.Ta {
		return obs.GateTAReverse
	}
	// The strict (literal Section IV) rule demands the outside test of
	// both sides; the default demands it of at least one.
	if b.Thresholds.StrictReverse {
		if b.outsideLow(l, j, i) {
			res.addPair(l, i, j)
			return obs.GateFlagged
		}
		return obs.GateTBReverse
	}
	if outI || b.outsideLow(l, j, i) {
		res.addPair(l, i, j)
		return obs.GateFlagged
	}
	return obs.GateTBOutside
}

// outsideLow computes b, the positive share of every rating the target
// received except the suspect rater's, and reports whether it falls below
// Tb. The paper's method re-scans the whole matrix row here — the step the
// optimized method eliminates — and the meter is charged for that full
// O(n) scan; the implementation only walks the target's active raters,
// since zero columns contribute nothing to either sum.
func (b *Basic) outsideLow(l *reputation.Ledger, target, rater int) bool {
	othersTotal, othersPos := 0, 0
	for _, k := range l.RatersOf(target) {
		if int(k) == rater {
			continue
		}
		othersTotal += l.PairTotal(target, int(k))
		othersPos += l.PairPositive(target, int(k))
	}
	b.charge(metrics.CostMatrixScan, int64(l.Size()))
	if othersTotal == 0 {
		// All of the target's reputation comes from the single rater —
		// the most extreme form of the pattern.
		return true
	}
	return float64(othersPos)/float64(othersTotal) < b.Thresholds.Tb
}

func (b *Basic) charge(name string, n int64) {
	if b.Meter != nil {
		b.Meter.Add(name, n)
	}
}

// Optimized is the detection method of Section IV-C: instead of re-scanning
// a row to compute the outside share b, it checks whether the node's
// summation reputation lies inside the Formula (2) interval, which needs
// only R_i, N_i and N_(i,j). Work is charged per bound evaluation, making
// the O(mn) complexity of Proposition 4.2 measurable.
type Optimized struct {
	Thresholds Thresholds
	// Meter, if non-nil, accumulates metrics.CostBoundCheck and
	// metrics.CostPairCheck.
	Meter *metrics.CostMeter
	// Trace, if enabled, receives a pair_audit event per examined high
	// pair, including the Formula (2) interval each side was checked
	// against. Disabled tracing adds no work and no allocations.
	Trace *obs.Tracer
}

// NewOptimized returns an optimized detector with the given thresholds.
func NewOptimized(t Thresholds) *Optimized { return &Optimized{Thresholds: t} }

// Name implements Detector.
func (o *Optimized) Name() string { return "optimized" }

// Detect implements Detector.
func (o *Optimized) Detect(l *reputation.Ledger) Result {
	auditCandidates(o.Trace, o.Name(), l, o.Thresholds.TR)
	return o.DetectAmong(l, summationCandidates(l, o.Thresholds.TR))
}

// DetectAmong implements Detector.
//
// Same dense-scan accounting scheme as Basic.DetectAmong: non-high column
// visits are charged arithmetically and only unordered high pairs are
// examined, each once, in ascending row order.
func (o *Optimized) DetectAmong(l *reputation.Ledger, candidates []int) Result {
	n := l.Size()
	res := Result{Flagged: make([]bool, n)}
	highList := highCandidates(n, candidates)

	enabled := o.Trace.Enabled()
	for idx, i := range highList {
		ri := float64(l.SummationScore(i))
		ni := l.TotalFor(i)
		o.charge(metrics.CostPairCheck, int64(n-1-idx))
		for _, j := range highList[idx+1:] {
			// The frequency gate rejects almost every pair, so it stays
			// inline; the full cascade runs out of line only for pairs
			// that survive it (or when the audit trail needs the label).
			nij, nji := l.PairTotal(i, j), l.PairTotal(j, i)
			if nij < o.Thresholds.TN || nji < o.Thresholds.TN {
				if enabled {
					o.auditPair(l, i, j, obs.GateTN)
				}
				continue
			}
			gate := o.screenPair(l, i, j, ri, ni, nij, nji, &res)
			if enabled {
				o.auditPair(l, i, j, gate)
			}
		}
	}
	associationSweep(l, o.Thresholds, &res,
		func(n int64) { o.charge(metrics.CostPairCheck, n) }, o.Trace, o.Name())
	res.sortPairs()
	return res
}

// auditPair emits one pair_audit event with the Formula (2) intervals
// both sides were (or would have been) checked against.
func (o *Optimized) auditPair(l *reputation.Ledger, i, j int, gate string) {
	a := pairAuditFor(l, o.Name(), i, j, gate)
	a.LoI, a.HiI = o.Thresholds.ReputationBounds(a.NI, a.NIJ)
	a.LoJ, a.HiJ = o.Thresholds.ReputationBounds(a.NJ, a.NJI)
	o.Trace.PairAudit(a)
}

// screenPair runs the §IV-C cascade on one high pair that already passed
// the caller's inline frequency gate (nij, nji >= TN), records a
// detection, and returns the audit gate label. Bound checks are charged
// exactly where the pre-audit implementation charged them: always the
// first, and the second only when the rule needs it.
func (o *Optimized) screenPair(l *reputation.Ledger, i, j int, ri float64, ni, nij, nji int, res *Result) string {
	rj := float64(l.SummationScore(j))
	nj := l.TotalFor(j)
	if o.Thresholds.StrictReverse {
		// Literal Section IV-C: Formula (2) must hold on both sides.
		// Each evaluation needs only R, N and N_(i,j).
		o.charge(metrics.CostBoundCheck, 1)
		if !o.Thresholds.BoundsHold(ri, ni, nij) {
			return obs.GateBoundForward
		}
		o.charge(metrics.CostBoundCheck, 1)
		if !o.Thresholds.BoundsHold(rj, nj, nji) {
			return obs.GateBoundReverse
		}
		res.addPair(l, i, j)
		return obs.GateFlagged
	}
	// Default rule: mutual frequent almost-always-positive rating (read
	// off the two matrix elements, no row scan) plus Formula (2) on at
	// least one side.
	if float64(l.PairPositive(i, j))/float64(nij) < o.Thresholds.Ta ||
		float64(l.PairPositive(j, i))/float64(nji) < o.Thresholds.Ta {
		return obs.GateTA
	}
	o.charge(metrics.CostBoundCheck, 1)
	holdI := o.Thresholds.BoundsHold(ri, ni, nij)
	if !holdI {
		o.charge(metrics.CostBoundCheck, 1)
		if !o.Thresholds.BoundsHold(rj, nj, nji) {
			return obs.GateBound
		}
	}
	res.addPair(l, i, j)
	return obs.GateFlagged
}

// associationSweep closes the detected set under colluding partnership:
// any node in a frequent, mutually almost-always-positive rating
// relationship with an already-detected colluder is flagged with it. This
// pass (part of the default, figure-faithful rule; disabled by
// StrictReverse) is what catches compromised pretrusted nodes in the
// Figure 11 scenario — their outside reputation is honestly earned, so no
// reputation test can implicate them, but reciprocating a colluder's
// rating flood can.
// The sweep conceptually examines every unpaired column of each flagged
// node's row, but a partner must satisfy n_(c,x) >= TN >= 1 (Thresholds.
// Validate rejects smaller TN), so only c's active raters can qualify: the
// loop walks the adjacency list and the remaining column visits are
// charged in bulk. Detected pairs always have both directions >= TN, so
// every already-paired partner is in the adjacency list and the bulk
// charge (n-1 minus c's current pair count) matches the dense scan's
// exactly.
func associationSweep(l *reputation.Ledger, th Thresholds, res *Result, charge func(int64), tr *obs.Tracer, det string) {
	if th.StrictReverse {
		return
	}
	n := l.Size()
	queue := res.FlaggedNodes()
	inQueue := make([]bool, n)
	for _, c := range queue {
		inQueue[c] = true
	}
	pairCount := make([]int, n)
	for _, e := range res.Pairs {
		pairCount[e.I]++
		pairCount[e.J]++
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		charge(int64(n - 1 - pairCount[c]))
		for _, x32 := range l.RatersOf(c) {
			x := int(x32)
			if res.HasPair(c, x) {
				continue
			}
			gate := sweepPartner(l, th, res, c, x)
			if gate == obs.GateFlagged {
				pairCount[c]++
				pairCount[x]++
				if !inQueue[x] {
					inQueue[x] = true
					queue = append(queue, x)
				}
			}
			if tr.Enabled() {
				tr.PairAudit(pairAuditFor(l, det, min2(c, x), max2(c, x), gate))
			}
		}
	}
}

// sweepPartner applies the association screen to one candidate partner of
// a flagged colluder, records a detection, and returns the gate label.
func sweepPartner(l *reputation.Ledger, th Thresholds, res *Result, c, x int) string {
	ncx, nxc := l.PairTotal(c, x), l.PairTotal(x, c)
	if ncx < th.TN || nxc < th.TN {
		return obs.GateTN
	}
	if float64(l.PairPositive(c, x))/float64(ncx) < th.Ta ||
		float64(l.PairPositive(x, c))/float64(nxc) < th.Ta {
		return obs.GateTA
	}
	res.addPair(l, c, x)
	return obs.GateFlagged
}

// pairAuditFor assembles a decision record for (i, j) from O(1) ledger
// reads — uncharged, so auditing never perturbs the cost accounting the
// Figure 13 equivalence tests pin.
func pairAuditFor(l *reputation.Ledger, det string, i, j int, gate string) obs.PairAudit {
	a := obs.PairAudit{
		Detector: det, I: i, J: j, Gate: gate,
		NIJ: l.PairTotal(i, j), NJI: l.PairTotal(j, i),
		NI: l.TotalFor(i), NJ: l.TotalFor(j),
		RI: float64(l.SummationScore(i)), RJ: float64(l.SummationScore(j)),
		OutPosI: l.OthersPositive(i, j), OutTotI: l.OthersTotal(i, j),
		OutPosJ: l.OthersPositive(j, i), OutTotJ: l.OthersTotal(j, i),
	}
	if a.NIJ > 0 {
		a.AIJ = float64(l.PairPositive(i, j)) / float64(a.NIJ)
	}
	if a.NJI > 0 {
		a.AJI = float64(l.PairPositive(j, i)) / float64(a.NJI)
	}
	return a
}

// auditCandidates emits one candidate_audit event per node recording the
// T_R screen that selects high-reputed detection candidates, so the trace
// also explains pairs that never reached pair examination.
func auditCandidates(t *obs.Tracer, det string, l *reputation.Ledger, tr float64) {
	if !t.Enabled() {
		return
	}
	for i := 0; i < l.Size(); i++ {
		r := float64(l.SummationScore(i))
		t.Emit("candidate_audit",
			obs.Str("detector", det),
			obs.Int("node", i),
			obs.Float("r", r),
			obs.Float("t_r", tr),
			obs.Bool("high", r >= tr))
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (o *Optimized) charge(name string, n int64) {
	if o.Meter != nil {
		o.Meter.Add(name, n)
	}
}

// summationCandidates returns nodes whose summation reputation reaches tr.
func summationCandidates(l *reputation.Ledger, tr float64) []int {
	var out []int
	for i := 0; i < l.Size(); i++ {
		if float64(l.SummationScore(i)) >= tr {
			out = append(out, i)
		}
	}
	return out
}

// highCandidates normalizes a candidate list into ascending, deduplicated,
// in-range node indices — the order the dense scan examines high rows in.
func highCandidates(n int, candidates []int) []int {
	high := make([]bool, n)
	for _, c := range candidates {
		if c >= 0 && c < n {
			high[c] = true
		}
	}
	out := make([]int, 0, len(candidates))
	for i := 0; i < n; i++ {
		if high[i] {
			out = append(out, i)
		}
	}
	return out
}

// pairIndex maps the unordered pair {a, b} to its flat upper-triangular
// slot a*n+b (after normalizing a < b) in an n*n bitset.
func pairIndex(a, b, n int) int {
	if a > b {
		a, b = b, a
	}
	return a*n + b
}

func (r *Result) addPair(l *reputation.Ledger, i, j int) {
	if i > j {
		i, j = j, i
	}
	e := Evidence{I: i, J: j, NIJ: l.PairTotal(i, j), NJI: l.PairTotal(j, i)}
	if e.NIJ > 0 {
		e.AIJ = float64(l.PairPositive(i, j)) / float64(e.NIJ)
	}
	if e.NJI > 0 {
		e.AJI = float64(l.PairPositive(j, i)) / float64(e.NJI)
	}
	r.insertPair(e)
}

func (r *Result) sortPairs() {
	sort.Slice(r.Pairs, func(a, b int) bool {
		if r.Pairs[a].I != r.Pairs[b].I {
			return r.Pairs[a].I < r.Pairs[b].I
		}
		return r.Pairs[a].J < r.Pairs[b].J
	})
}

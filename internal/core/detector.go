package core

import (
	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
)

// Evidence describes one detected colluding pair with the statistics that
// triggered the detection. I < J always.
type Evidence struct {
	I, J int
	// NIJ is N_(I,J): ratings I received from J; NJI the reverse.
	NIJ, NJI int
	// AIJ is the positive share of J's ratings for I; AJI the reverse.
	AIJ, AJI float64
}

// Result is a detection outcome over one ledger period.
type Result struct {
	// Pairs lists detected colluding pairs sorted by (I, J).
	Pairs []Evidence
	// Flagged[i] reports whether node i appears in any detected pair.
	Flagged []bool

	// pairSet indexes Pairs by normalized {I, J} so membership tests and
	// dedup are O(1); the association sweep probes it inside its inner
	// loop, which kept the old slice re-scan quadratic in the pair count.
	// Lazily built, so zero-value and literal-constructed Results work.
	pairSet map[[2]int]struct{}
}

// FlaggedNodes returns the indices of all flagged nodes, ascending.
func (r Result) FlaggedNodes() []int {
	var out []int
	for i, f := range r.Flagged {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// HasPair reports whether {a, b} was detected (in either order).
func (r Result) HasPair(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	if r.pairSet != nil {
		_, ok := r.pairSet[[2]int{a, b}]
		return ok
	}
	for _, e := range r.Pairs {
		if e.I == a && e.J == b {
			return true
		}
	}
	return false
}

// insertPair appends e (already normalized to I < J) unless the pair is
// already present, updating the pair index and flags. It reports whether
// the pair was new.
func (r *Result) insertPair(e Evidence) bool {
	if r.pairSet == nil {
		r.pairSet = make(map[[2]int]struct{}, len(r.Pairs)+1) //colsimlint:ignore hotalloc lazy once per Result; incremental runs inherit the index from st.buf and clear it in place
		for _, p := range r.Pairs {
			r.pairSet[[2]int{p.I, p.J}] = struct{}{}
		}
	}
	key := [2]int{e.I, e.J}
	if _, ok := r.pairSet[key]; ok {
		return false
	}
	r.pairSet[key] = struct{}{}
	r.Pairs = append(r.Pairs, e) //colsimlint:ignore hotalloc pair list grows to the high-water detection count; endRun hands the storage back for the next cycle
	r.Flagged[e.I] = true
	r.Flagged[e.J] = true
	return true
}

// Detector is a collusion detection method operating on a period ledger.
type Detector interface {
	// Detect derives high-reputed candidates from the ledger's summation
	// scores (R >= TR) and searches them for colluding pairs.
	Detect(l *reputation.Ledger) Result
	// DetectAmong searches only the given candidate nodes, for hosts that
	// determine trustworthiness with their own engine (e.g. EigenTrust
	// with a normalized threshold).
	DetectAmong(l *reputation.Ledger, candidates []int) Result
	// Name identifies the method in experiment output.
	Name() string
}

// IncrementalDetector is a Detector that can additionally reuse per-pair
// screening work across consecutive detection passes over the same
// evolving ledger. Both pairwise detectors implement it.
type IncrementalDetector interface {
	Detector
	// DetectIncremental behaves exactly like Detect — identical pairs,
	// identical meter charges, identical audit events — but memoizes each
	// examined pair's screen outcome and replays it while neither node's
	// received-rating row has changed. Memo validity is keyed on the
	// ledger's per-target row generations (Ledger.RowGen), so the ledger
	// may mutate in place between calls — a windowed merge, a Subtract of
	// an expiring period — without resetting the detector's state. dirty
	// must list every target whose row mutated since the previous
	// DetectIncremental call on this detector (Ledger.DirtyTargets, or
	// ingest.WindowLedger.Roll's return, provides it); it drives the
	// maintenance of the high-reputation candidate set, so a superset is
	// safe, a subset is not. The detector's thresholds must not change
	// between calls. The returned Result shares the detector's internal
	// buffers and is valid only until the next DetectIncremental call.
	DetectIncremental(l *reputation.Ledger, dirty []int) Result
}

// pairCharges is the metered cost one pair examination accrues beyond the
// caller's bulk row accounting. Captured explicitly so the incremental
// cache can replay the exact charges without re-screening.
type pairCharges struct {
	scan  int64 // metrics.CostMatrixScan (Basic's outside re-scans + element reads)
	bound int64 // metrics.CostBoundCheck (Optimized's Formula (2) evaluations)
}

// pairEntry memoizes one examined pair's screen: valid while both rows'
// ledger generations (Ledger.RowGen) still match the values captured at
// screen time, since every statistic the screen reads (the pair counts,
// receive totals and summation scores of i and j) is a function of the
// two rows alone. The ledger advances a row's generation on every
// mutation, so validity survives in-place Merge/Subtract cycles.
type pairEntry struct {
	genI, genJ uint64
	charges    pairCharges
	flagged    bool
}

// runBuffers is the per-detection scratch an incremental detector reuses
// across cycles, so steady-state passes allocate nothing.
type runBuffers struct {
	candidates []int
	high       []bool
	highList   []int
	flagged    []bool
	pairs      []Evidence
	pairSet    map[[2]int]struct{}
	queue      []int
	inQueue    []bool
	pairCount  []int
}

// incrementalState is one detector's memoization across DetectIncremental
// calls: the maintained high-reputation candidate bitmap, the pair screen
// cache (validated against the ledger's row generations), the telemetry
// counters, and the reusable scratch buffers.
type incrementalState struct {
	ledger *reputation.Ledger
	n      int
	cache  map[[2]int32]pairEntry
	buf    runBuffers

	// cand[i] memoizes the T_R candidate screen: SummationScore(i) >= TR.
	// The score is a function of i's row alone, so only dirty rows need
	// rescreening each cycle — candidate maintenance is O(dirty), not a
	// recomputation over all n score totals. seeded marks the bitmap
	// initialized by a first full pass.
	cand   []bool
	seeded bool

	// hits/misses are the detect.incremental_hits / _misses registry
	// counters (nil without a registry): one hit per memoized pair screen
	// replayed, one miss per pair screened fresh and cached. Resolved once
	// per attach, cached here to keep the per-pair path map-free.
	hits, misses *obs.Counter
}

// ensureIncremental returns the detector's state, resetting it whenever
// the ledger identity or population changed (a new run, a cloned ledger)
// so stale screens can never leak across ledgers. In-place mutation of
// the same ledger does NOT reset the state: the pair cache revalidates
// against the ledger's row generations instead.
//
//colsim:coldpath allocates a fresh state only when the ledger identity or population changes; steady-state calls return the cached pointer
func ensureIncremental(slot **incrementalState, l *reputation.Ledger, reg *obs.Registry) *incrementalState {
	st := *slot
	if st == nil || st.ledger != l || st.n != l.Size() {
		st = &incrementalState{
			ledger: l,
			n:      l.Size(),
			cache:  make(map[[2]int32]pairEntry),
			hits:   reg.Counter("detect.incremental_hits"),
			misses: reg.Counter("detect.incremental_misses"),
		}
		*slot = st
	}
	return st
}

// refreshCandidates maintains the T_R candidate bitmap — a full screen on
// the first call, dirty rows only afterwards — and rebuilds the ascending
// candidate list into the reusable scratch.
func (st *incrementalState) refreshCandidates(l *reputation.Ledger, tr float64, dirty []int) []int {
	if !st.seeded {
		st.cand = resizeBools(st.cand, st.n)
		for i := 0; i < st.n; i++ {
			st.cand[i] = float64(l.SummationScore(i)) >= tr
		}
		st.seeded = true
	} else {
		for _, d := range dirty {
			if d >= 0 && d < st.n {
				st.cand[d] = float64(l.SummationScore(d)) >= tr
			}
		}
	}
	out := st.buf.candidates[:0]
	for i, c := range st.cand {
		if c {
			out = append(out, i) //colsimlint:ignore hotalloc grows to the high-water candidate count and is resliced to zero every cycle
		}
	}
	st.buf.candidates = out
	return out
}

// beginRun normalizes the candidate list into the ascending high list and
// bitmap and readies an empty Result. With a nil state it allocates fresh
// storage (the pure Detect/DetectAmong contract); with a state it reuses
// the scratch buffers.
func beginRun(st *incrementalState, n int, candidates []int) (res Result, highList []int, high []bool) {
	if st == nil {
		//colsimlint:ignore hotalloc the pure Detect/DetectAmong contract returns caller-owned fresh storage; the incremental path below reuses st.buf
		high = make([]bool, n)
		highList = make([]int, 0, len(candidates)) //colsimlint:ignore hotalloc fresh storage for the pure contract, as above
		res = Result{Flagged: make([]bool, n)}     //colsimlint:ignore hotalloc fresh storage for the pure contract, as above
	} else {
		st.buf.high = resizeBools(st.buf.high, n)
		clear(st.buf.high)
		st.buf.flagged = resizeBools(st.buf.flagged, n)
		clear(st.buf.flagged)
		if st.buf.pairSet == nil {
			st.buf.pairSet = make(map[[2]int]struct{}) //colsimlint:ignore hotalloc lazy once per incremental state; every later cycle clears it in place
		} else {
			clear(st.buf.pairSet)
		}
		high = st.buf.high
		highList = st.buf.highList[:0]
		res = Result{Flagged: st.buf.flagged, Pairs: st.buf.pairs[:0], pairSet: st.buf.pairSet}
	}
	for _, c := range candidates {
		if c >= 0 && c < n {
			high[c] = true
		}
	}
	for i := 0; i < n; i++ {
		if high[i] {
			highList = append(highList, i)
		}
	}
	if st != nil {
		st.buf.highList = highList
	}
	return res, highList, high
}

// endRun hands grown storage back to the scratch for the next cycle.
func endRun(st *incrementalState, res *Result) {
	if st != nil {
		st.buf.pairs = res.Pairs
	}
}

func resizeBools(xs []bool, n int) []bool {
	if cap(xs) < n {
		return make([]bool, n) //colsimlint:ignore hotalloc grows only when the population grows; steady-state cycles reslice the retained capacity
	}
	return xs[:n]
}

func resizeInts(xs []int, n int) []int {
	if cap(xs) < n {
		return make([]int, n) //colsimlint:ignore hotalloc grows only when the population grows; steady-state cycles reslice the retained capacity
	}
	return xs[:n]
}

// Basic is the unoptimized detection method of Section IV-B. For each
// high-reputed node it walks the node's matrix row; for each frequent,
// highly positive rater it re-scans the row to compute the outside
// positive share, then performs the symmetric examination of the rater's
// own row. Work is charged to the meter per matrix element visited,
// making the O(mn²) complexity of Proposition 4.1 measurable.
type Basic struct {
	Thresholds Thresholds
	// Meter, if non-nil, accumulates metrics.CostMatrixScan and
	// metrics.CostPairCheck.
	Meter *metrics.CostMeter
	// Trace, if enabled, receives a pair_audit event per examined high
	// pair recording which threshold gate it stopped at. Disabled tracing
	// adds no work and no allocations to the hot path.
	Trace *obs.Tracer
	// Obs, if non-nil, receives the detect.incremental_hits/_misses
	// counter pair: how many memoized pair screens DetectIncremental
	// replayed versus re-ran. Telemetry only — never part of the metered
	// operation costs the equivalence tests compare.
	Obs *obs.Registry
	// Spans, if enabled, brackets every detection pass in a "detect" span
	// carrying the dirty-row count, detected-pair count and memo hit/miss
	// deltas — all deterministic, worker- and shard-count-invariant
	// quantities. Spans ride their own tracer, separate from Trace, so
	// span collection never flips the detector onto the memo-bypassing
	// audit path. Disabled spans add no work and no allocations (pinned
	// by TestTelemetryOffAddsNoAllocs).
	Spans *obs.SpanTracer

	inc *incrementalState
}

// NewBasic returns a basic detector with the given thresholds.
func NewBasic(t Thresholds) *Basic { return &Basic{Thresholds: t} }

// Name implements Detector.
func (b *Basic) Name() string { return "unoptimized" }

// Detect implements Detector.
func (b *Basic) Detect(l *reputation.Ledger) Result {
	auditCandidates(b.Trace, b.Name(), l, b.Thresholds.TR)
	if !b.Spans.Enabled() {
		return b.detectAmong(l, summationCandidates(l, b.Thresholds.TR), nil)
	}
	b.Spans.Begin("detect")
	res := b.detectAmong(l, summationCandidates(l, b.Thresholds.TR), nil)
	b.Spans.End("detect",
		obs.Str("detector", b.Name()),
		obs.Int("pairs", len(res.Pairs)))
	return res
}

// DetectAmong implements Detector.
func (b *Basic) DetectAmong(l *reputation.Ledger, candidates []int) Result {
	return b.detectAmong(l, candidates, nil)
}

// DetectIncremental implements IncrementalDetector.
//
//colsim:hotpath
func (b *Basic) DetectIncremental(l *reputation.Ledger, dirty []int) Result {
	st := ensureIncremental(&b.inc, l, b.Obs)
	auditCandidates(b.Trace, b.Name(), l, b.Thresholds.TR)
	if b.Spans.Enabled() {
		return b.detectSpanned(l, dirty, st)
	}
	return b.detectAmong(l, st.refreshCandidates(l, b.Thresholds.TR, dirty), st)
}

// detectSpanned brackets one incremental pass in a "detect" span. The
// memo hit/miss deltas come from the registry counters (zero without a
// registry, and zero when audit tracing bypasses the memo).
//
//colsim:coldpath span bracketing runs only when a span tracer is attached
func (b *Basic) detectSpanned(l *reputation.Ledger, dirty []int, st *incrementalState) Result {
	h0, m0 := st.hits.Value(), st.misses.Value()
	b.Spans.Begin("detect")
	res := b.detectAmong(l, st.refreshCandidates(l, b.Thresholds.TR, dirty), st)
	b.Spans.End("detect",
		obs.Str("detector", b.Name()),
		obs.Int("dirty", len(dirty)),
		obs.Int("pairs", len(res.Pairs)),
		obs.I64("memo_hits", st.hits.Value()-h0),
		obs.I64("memo_misses", st.misses.Value()-m0))
	return res
}

// detectAmong is the shared detection pass.
//
// The paper's method scans every element of each high-reputed node's
// matrix row. Two facts let the implementation skip the dense walk while
// charging the meter the paper's exact element-visit counts (so Figure 13
// is unchanged and the dense-reference property test stays exact):
//
//   - Non-high elements are screened out with no further work, so their
//     visits can be charged arithmetically: at row i, the dense scan
//     touches the n-1 other columns minus the high pairs {j, i} with
//     j < i already marked checked from row j.
//   - Only unordered high pairs are examined, and each exactly once, so
//     iterating high partners j > i in ascending order replaces both the
//     column walk and the n×n checked bitset. High partners with
//     N_(i,j) = 0 stop at the frequency gate after the unconditional
//     outside re-scan, so only partners on i's adjacency need real work;
//     the rest are charged one O(n) re-scan each, in bulk.
//
// A non-nil st replays memoized screens for pairs whose rows are both
// unchanged: the cached gate implies the cached charges and detection
// outcome, and re-adding a cached flagged pair recomputes the identical
// Evidence because it reads only the two unchanged rows. When tracing is
// enabled the cache is bypassed (read and write) so every high pair is
// re-examined and audited in the exact order of a full pass.
//
//colsim:hotpath
func (b *Basic) detectAmong(l *reputation.Ledger, candidates []int, st *incrementalState) Result {
	n := l.Size()
	res, highList, high := beginRun(st, n, candidates)
	tracing := b.Trace.Enabled()

	for idx, i := range highList {
		// Dense row-scan accounting: every element a_ij except the idx
		// already-checked high pairs from earlier rows.
		visited := int64(n - 1 - idx)
		b.charge(metrics.CostPairCheck, visited)
		b.charge(metrics.CostMatrixScan, visited)
		pc := l.PairCountsOf(i)

		if tracing {
			// Audit path: every high partner j > i is screened and audited
			// in ascending order, reading N_(i,j) by merging i's adjacency
			// along the high list.
			k := 0
			for _, j := range highList[idx+1:] {
				for k < len(pc.Raters) && int(pc.Raters[k]) < j {
					k++
				}
				nij, posij := 0, 0
				if k < len(pc.Raters) && int(pc.Raters[k]) == j {
					nij, posij = int(pc.Total[k]), int(pc.Pos[k])
				}
				gate, ch := b.examinePair(l, i, j, nij, posij, &res)
				b.charge(metrics.CostMatrixScan, ch.scan)
				b.Trace.PairAudit(pairAuditFor(l, b.Name(), i, j, gate))
			}
			continue
		}

		// Fast path: only high partners on i's adjacency can get past the
		// frequency gate; each zero pair still pays the unconditional O(n)
		// outside re-scan, charged in bulk below.
		highAfter := len(highList) - idx - 1
		examined := 0
		var genI uint64
		if st != nil {
			genI = l.RowGen(i)
		}
		for k, x32 := range pc.Raters {
			x := int(x32)
			if x <= i || !high[x] {
				continue
			}
			examined++
			if st != nil {
				key := [2]int32{int32(i), x32}
				if e, ok := st.cache[key]; ok && e.genI == genI && e.genJ == l.RowGen(x) {
					st.hits.Add(1)
					b.charge(metrics.CostMatrixScan, e.charges.scan)
					if e.flagged {
						res.addPair(l, i, x)
					}
					continue
				}
				st.misses.Add(1)
				gate, ch := b.examinePair(l, i, x, int(pc.Total[k]), int(pc.Pos[k]), &res)
				b.charge(metrics.CostMatrixScan, ch.scan)
				st.cache[key] = pairEntry{
					genI: genI, genJ: l.RowGen(x),
					charges: ch, flagged: gate == obs.GateFlagged,
				}
				continue
			}
			_, ch := b.examinePair(l, i, x, int(pc.Total[k]), int(pc.Pos[k]), &res)
			b.charge(metrics.CostMatrixScan, ch.scan)
		}
		b.charge(metrics.CostMatrixScan, int64(highAfter-examined)*int64(n))
	}

	associationSweep(l, b.Thresholds, &res, b.Meter, metrics.CostPairCheck, b.Trace, b.Name(), st)
	res.sortPairs()
	endRun(st, &res)
	return res
}

// examinePair runs the §IV-B threshold cascade on one high pair, with
// N_(i,j) and N+_(i,j) read off i's adjacency by the caller. It performs
// no meter charges itself: the dense-scan costs it accrues — the
// unconditional outside re-scan, the reverse matrix element, and the
// conditional outside re-scans — are returned for the caller to apply,
// fresh or replayed from the incremental cache. The charge sequence is
// identical to the dense reference implementation.
func (b *Basic) examinePair(l *reputation.Ledger, i, j, nij, posij int, res *Result) (string, pairCharges) {
	var ch pairCharges
	n := int64(l.Size())
	// C2 on n_i: the outside positive share. The unoptimized method pays
	// an O(n) row re-scan here for every examined rater — the cost
	// Proposition 4.1 counts and Formula (2) later eliminates. The receive
	// totals minus the pair counts give the same integers in O(1)
	// (self-ratings cannot exist, so nothing else needs excluding), but
	// the full dense re-scan is still charged.
	ch.scan += n
	outI := outsideLow(b.Thresholds.Tb, l.TotalFor(i)-nij, l.PositiveFor(i)-posij)
	// C4 + C3 forward screen: j rates i frequently and almost always
	// positively.
	if nij < b.Thresholds.TN {
		return obs.GateTNForward, ch
	}
	if float64(posij)/float64(nij) < b.Thresholds.Ta {
		return obs.GateTAForward, ch
	}
	if b.Thresholds.StrictReverse && !outI {
		return obs.GateTBForward, ch
	}
	// Symmetric screen on n_j's element a_ji.
	nji := l.PairTotal(j, i)
	ch.scan++
	if nji < b.Thresholds.TN {
		return obs.GateTNReverse, ch
	}
	posji := l.PairPositive(j, i)
	if float64(posji)/float64(nji) < b.Thresholds.Ta {
		return obs.GateTAReverse, ch
	}
	// The strict (literal Section IV) rule demands the outside test of
	// both sides; the default demands it of at least one.
	if b.Thresholds.StrictReverse {
		ch.scan += n
		if outsideLow(b.Thresholds.Tb, l.TotalFor(j)-nji, l.PositiveFor(j)-posji) {
			res.addPair(l, i, j)
			return obs.GateFlagged, ch
		}
		return obs.GateTBReverse, ch
	}
	if outI {
		res.addPair(l, i, j)
		return obs.GateFlagged, ch
	}
	ch.scan += n
	if outsideLow(b.Thresholds.Tb, l.TotalFor(j)-nji, l.PositiveFor(j)-posji) {
		res.addPair(l, i, j)
		return obs.GateFlagged, ch
	}
	return obs.GateTBOutside, ch
}

// outsideLow reports whether b — the positive share of every rating the
// target received except the suspect rater's — falls below Tb. The inputs
// are the exact integers N_(i,-j) and N+_(i,-j); the dense method
// recomputed them with a full O(n) row re-scan, whose cost the caller
// still charges arithmetically.
func outsideLow(tb float64, othersTotal, othersPos int) bool {
	if othersTotal == 0 {
		// All of the target's reputation comes from the single rater —
		// the most extreme form of the pattern.
		return true
	}
	return float64(othersPos)/float64(othersTotal) < tb
}

func (b *Basic) charge(name string, n int64) {
	if b.Meter != nil {
		b.Meter.Add(name, n)
	}
}

// Optimized is the detection method of Section IV-C: instead of re-scanning
// a row to compute the outside share b, it checks whether the node's
// summation reputation lies inside the Formula (2) interval, which needs
// only R_i, N_i and N_(i,j). Work is charged per bound evaluation, making
// the O(mn) complexity of Proposition 4.2 measurable.
type Optimized struct {
	Thresholds Thresholds
	// Meter, if non-nil, accumulates metrics.CostBoundCheck and
	// metrics.CostPairCheck.
	Meter *metrics.CostMeter
	// Trace, if enabled, receives a pair_audit event per examined high
	// pair, including the Formula (2) interval each side was checked
	// against. Disabled tracing adds no work and no allocations.
	Trace *obs.Tracer
	// Obs, if non-nil, receives the detect.incremental_hits/_misses
	// counter pair, exactly as on Basic.
	Obs *obs.Registry
	// Spans, if enabled, brackets every detection pass in a "detect" span,
	// exactly as on Basic.
	Spans *obs.SpanTracer

	inc *incrementalState
}

// NewOptimized returns an optimized detector with the given thresholds.
func NewOptimized(t Thresholds) *Optimized { return &Optimized{Thresholds: t} }

// Name implements Detector.
func (o *Optimized) Name() string { return "optimized" }

// Detect implements Detector.
func (o *Optimized) Detect(l *reputation.Ledger) Result {
	auditCandidates(o.Trace, o.Name(), l, o.Thresholds.TR)
	if !o.Spans.Enabled() {
		return o.detectAmong(l, summationCandidates(l, o.Thresholds.TR), nil)
	}
	o.Spans.Begin("detect")
	res := o.detectAmong(l, summationCandidates(l, o.Thresholds.TR), nil)
	o.Spans.End("detect",
		obs.Str("detector", o.Name()),
		obs.Int("pairs", len(res.Pairs)))
	return res
}

// DetectAmong implements Detector.
func (o *Optimized) DetectAmong(l *reputation.Ledger, candidates []int) Result {
	return o.detectAmong(l, candidates, nil)
}

// DetectIncremental implements IncrementalDetector.
//
//colsim:hotpath
func (o *Optimized) DetectIncremental(l *reputation.Ledger, dirty []int) Result {
	st := ensureIncremental(&o.inc, l, o.Obs)
	auditCandidates(o.Trace, o.Name(), l, o.Thresholds.TR)
	if o.Spans.Enabled() {
		return o.detectSpanned(l, dirty, st)
	}
	return o.detectAmong(l, st.refreshCandidates(l, o.Thresholds.TR, dirty), st)
}

// detectSpanned brackets one incremental pass in a "detect" span, exactly
// as on Basic.
//
//colsim:coldpath span bracketing runs only when a span tracer is attached
func (o *Optimized) detectSpanned(l *reputation.Ledger, dirty []int, st *incrementalState) Result {
	h0, m0 := st.hits.Value(), st.misses.Value()
	o.Spans.Begin("detect")
	res := o.detectAmong(l, st.refreshCandidates(l, o.Thresholds.TR, dirty), st)
	o.Spans.End("detect",
		obs.Str("detector", o.Name()),
		obs.Int("dirty", len(dirty)),
		obs.Int("pairs", len(res.Pairs)),
		obs.I64("memo_hits", st.hits.Value()-h0),
		obs.I64("memo_misses", st.misses.Value()-m0))
	return res
}

// detectAmong is the shared detection pass, with the same dense-scan
// accounting scheme as Basic.detectAmong: non-high column visits are
// charged arithmetically and only unordered high pairs are examined, each
// once, in ascending row order. Pairs failing the frequency gate charge
// nothing, so the fast path walks only i's adjacency; memoization and the
// tracing bypass follow the same rules as Basic.
//
//colsim:hotpath
func (o *Optimized) detectAmong(l *reputation.Ledger, candidates []int, st *incrementalState) Result {
	n := l.Size()
	res, highList, high := beginRun(st, n, candidates)
	tracing := o.Trace.Enabled()

	for idx, i := range highList {
		ri := float64(l.SummationScore(i))
		ni := l.TotalFor(i)
		o.charge(metrics.CostPairCheck, int64(n-1-idx))
		pc := l.PairCountsOf(i)

		if tracing {
			k := 0
			for _, j := range highList[idx+1:] {
				for k < len(pc.Raters) && int(pc.Raters[k]) < j {
					k++
				}
				nij, posij := 0, 0
				if k < len(pc.Raters) && int(pc.Raters[k]) == j {
					nij, posij = int(pc.Total[k]), int(pc.Pos[k])
				}
				// The frequency gate rejects almost every pair, so it stays
				// inline; the full cascade runs out of line only for pairs
				// that survive it.
				nji := l.PairTotal(j, i)
				if nij < o.Thresholds.TN || nji < o.Thresholds.TN {
					o.auditPair(l, i, j, obs.GateTN)
					continue
				}
				gate, ch := o.examinePair(l, i, j, ri, ni, nij, posij, nji, &res)
				o.charge(metrics.CostBoundCheck, ch.bound)
				o.auditPair(l, i, j, gate)
			}
			continue
		}

		// Fast path: a pair with N_(i,j) = 0 fails the frequency gate with
		// no charge and no audit, so only i's adjacency needs visiting.
		var genI uint64
		if st != nil {
			genI = l.RowGen(i)
		}
		for k, x32 := range pc.Raters {
			x := int(x32)
			if x <= i || !high[x] {
				continue
			}
			nij := int(pc.Total[k])
			if nij < o.Thresholds.TN {
				continue
			}
			if st != nil {
				key := [2]int32{int32(i), x32}
				if e, ok := st.cache[key]; ok && e.genI == genI && e.genJ == l.RowGen(x) {
					st.hits.Add(1)
					o.charge(metrics.CostBoundCheck, e.charges.bound)
					if e.flagged {
						res.addPair(l, i, x)
					}
					continue
				}
				st.misses.Add(1)
				gate, ch := o.screenReverse(l, i, x, ri, ni, nij, int(pc.Pos[k]), &res)
				o.charge(metrics.CostBoundCheck, ch.bound)
				st.cache[key] = pairEntry{
					genI: genI, genJ: l.RowGen(x),
					charges: ch, flagged: gate == obs.GateFlagged,
				}
				continue
			}
			_, ch := o.screenReverse(l, i, x, ri, ni, nij, int(pc.Pos[k]), &res)
			o.charge(metrics.CostBoundCheck, ch.bound)
		}
	}

	associationSweep(l, o.Thresholds, &res, o.Meter, metrics.CostPairCheck, o.Trace, o.Name(), st)
	res.sortPairs()
	endRun(st, &res)
	return res
}

// screenReverse reads the reverse matrix element and finishes the
// frequency gate before running the full cascade; split out so the fast
// path and the cache share one call shape.
func (o *Optimized) screenReverse(l *reputation.Ledger, i, j int, ri float64, ni, nij, posij int, res *Result) (string, pairCharges) {
	nji := l.PairTotal(j, i)
	if nji < o.Thresholds.TN {
		return obs.GateTN, pairCharges{}
	}
	return o.examinePair(l, i, j, ri, ni, nij, posij, nji, res)
}

// auditPair emits one pair_audit event with the Formula (2) intervals
// both sides were (or would have been) checked against.
//
//colsim:coldpath reached only from the tracing branch, which disabled tracing never enters
func (o *Optimized) auditPair(l *reputation.Ledger, i, j int, gate string) {
	a := pairAuditFor(l, o.Name(), i, j, gate)
	a.LoI, a.HiI = o.Thresholds.ReputationBounds(a.NI, a.NIJ)
	a.LoJ, a.HiJ = o.Thresholds.ReputationBounds(a.NJ, a.NJI)
	o.Trace.PairAudit(a)
}

// examinePair runs the §IV-C cascade on one high pair that already passed
// the frequency gate (nij, nji >= TN), records a detection, and returns
// the audit gate label. It performs no meter charges itself; bound
// evaluations are counted exactly where the dense reference charged them
// — always the first, the second only when the rule needs it — and
// returned for the caller to apply or replay.
func (o *Optimized) examinePair(l *reputation.Ledger, i, j int, ri float64, ni, nij, posij, nji int, res *Result) (string, pairCharges) {
	var ch pairCharges
	rj := float64(l.SummationScore(j))
	nj := l.TotalFor(j)
	if o.Thresholds.StrictReverse {
		// Literal Section IV-C: Formula (2) must hold on both sides.
		// Each evaluation needs only R, N and N_(i,j).
		ch.bound++
		if !o.Thresholds.BoundsHold(ri, ni, nij) {
			return obs.GateBoundForward, ch
		}
		ch.bound++
		if !o.Thresholds.BoundsHold(rj, nj, nji) {
			return obs.GateBoundReverse, ch
		}
		res.addPair(l, i, j)
		return obs.GateFlagged, ch
	}
	// Default rule: mutual frequent almost-always-positive rating (read
	// off the two matrix elements, no row scan) plus Formula (2) on at
	// least one side.
	if float64(posij)/float64(nij) < o.Thresholds.Ta ||
		float64(l.PairPositive(j, i))/float64(nji) < o.Thresholds.Ta {
		return obs.GateTA, ch
	}
	ch.bound++
	holdI := o.Thresholds.BoundsHold(ri, ni, nij)
	if !holdI {
		ch.bound++
		if !o.Thresholds.BoundsHold(rj, nj, nji) {
			return obs.GateBound, ch
		}
	}
	res.addPair(l, i, j)
	return obs.GateFlagged, ch
}

func (o *Optimized) charge(name string, n int64) {
	if o.Meter != nil {
		o.Meter.Add(name, n)
	}
}

// associationSweep closes the detected set under colluding partnership:
// any node in a frequent, mutually almost-always-positive rating
// relationship with an already-detected colluder is flagged with it. This
// pass (part of the default, figure-faithful rule; disabled by
// StrictReverse) is what catches compromised pretrusted nodes in the
// Figure 11 scenario — their outside reputation is honestly earned, so no
// reputation test can implicate them, but reciprocating a colluder's
// rating flood can.
// The sweep conceptually examines every unpaired column of each flagged
// node's row, but a partner must satisfy n_(c,x) >= TN >= 1 (Thresholds.
// Validate rejects smaller TN), so only c's active raters can qualify: the
// loop walks the adjacency with its aligned counts and the remaining
// column visits are charged in bulk. Detected pairs always have both
// directions >= TN, so every already-paired partner is in the adjacency
// list and the bulk charge (n-1 minus c's current pair count) matches the
// dense scan's exactly.
// The sweep always runs in full — flags propagate transitively, so one
// dirty row can extend chains through unchanged ones — but its inputs at
// equal flag sets are identical, which keeps the incremental path's
// charges and audits byte-identical to a full pass.
func associationSweep(l *reputation.Ledger, th Thresholds, res *Result, meter *metrics.CostMeter, cost string, tr *obs.Tracer, det string, st *incrementalState) {
	if th.StrictReverse {
		return
	}
	n := l.Size()
	var queue []int
	var inQueue []bool
	var pairCount []int
	if st != nil {
		queue = st.buf.queue[:0]
		st.buf.inQueue = resizeBools(st.buf.inQueue, n)
		clear(st.buf.inQueue)
		inQueue = st.buf.inQueue
		st.buf.pairCount = resizeInts(st.buf.pairCount, n)
		clear(st.buf.pairCount)
		pairCount = st.buf.pairCount
	} else {
		//colsimlint:ignore hotalloc fresh scratch for the pure Detect/DetectAmong contract; the incremental branch above reuses st.buf
		inQueue = make([]bool, n)
		pairCount = make([]int, n) //colsimlint:ignore hotalloc fresh scratch for the pure contract, as above
	}
	for i, f := range res.Flagged {
		if f {
			queue = append(queue, i)
			inQueue[i] = true
		}
	}
	for _, e := range res.Pairs {
		pairCount[e.I]++
		pairCount[e.J]++
	}
	for head := 0; head < len(queue); head++ {
		c := queue[head]
		if meter != nil {
			meter.Add(cost, int64(n-1-pairCount[c]))
		}
		pc := l.PairCountsOf(c)
		for k, x32 := range pc.Raters {
			x := int(x32)
			if res.HasPair(c, x) {
				continue
			}
			gate := sweepPartner(l, th, res, c, x, int(pc.Total[k]), int(pc.Pos[k]))
			if gate == obs.GateFlagged {
				pairCount[c]++
				pairCount[x]++
				if !inQueue[x] {
					inQueue[x] = true
					queue = append(queue, x)
				}
			}
			if tr.Enabled() {
				tr.PairAudit(pairAuditFor(l, det, min2(c, x), max2(c, x), gate))
			}
		}
	}
	if st != nil {
		st.buf.queue = queue
	}
}

// sweepPartner applies the association screen to one candidate partner of
// a flagged colluder (ncx and poscx read off c's adjacency), records a
// detection, and returns the gate label.
func sweepPartner(l *reputation.Ledger, th Thresholds, res *Result, c, x, ncx, poscx int) string {
	nxc := l.PairTotal(x, c)
	if ncx < th.TN || nxc < th.TN {
		return obs.GateTN
	}
	if float64(poscx)/float64(ncx) < th.Ta ||
		float64(l.PairPositive(x, c))/float64(nxc) < th.Ta {
		return obs.GateTA
	}
	res.addPair(l, c, x)
	return obs.GateFlagged
}

// pairAuditFor assembles a decision record for (i, j) from O(1) ledger
// reads — uncharged, so auditing never perturbs the cost accounting the
// Figure 13 equivalence tests pin.
func pairAuditFor(l *reputation.Ledger, det string, i, j int, gate string) obs.PairAudit {
	a := obs.PairAudit{
		Detector: det, I: i, J: j, Gate: gate,
		NIJ: l.PairTotal(i, j), NJI: l.PairTotal(j, i),
		NI: l.TotalFor(i), NJ: l.TotalFor(j),
		RI: float64(l.SummationScore(i)), RJ: float64(l.SummationScore(j)),
		OutPosI: l.OthersPositive(i, j), OutTotI: l.OthersTotal(i, j),
		OutPosJ: l.OthersPositive(j, i), OutTotJ: l.OthersTotal(j, i),
	}
	if a.NIJ > 0 {
		a.AIJ = float64(l.PairPositive(i, j)) / float64(a.NIJ)
	}
	if a.NJI > 0 {
		a.AJI = float64(l.PairPositive(j, i)) / float64(a.NJI)
	}
	return a
}

// auditCandidates emits one candidate_audit event per node recording the
// T_R screen that selects high-reputed detection candidates, so the trace
// also explains pairs that never reached pair examination.
//
//colsim:coldpath returns immediately unless tracing is enabled; audited runs trade allocation freedom for the decision record
func auditCandidates(t *obs.Tracer, det string, l *reputation.Ledger, tr float64) {
	if !t.Enabled() {
		return
	}
	for i := 0; i < l.Size(); i++ {
		r := float64(l.SummationScore(i))
		t.Emit("candidate_audit",
			obs.Str("detector", det),
			obs.Int("node", i),
			obs.Float("r", r),
			obs.Float("t_r", tr),
			obs.Bool("high", r >= tr))
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// summationCandidates returns nodes whose summation reputation reaches tr
// — the full T_R screen the pure Detect contract runs every call. The
// incremental path maintains the same set through
// incrementalState.refreshCandidates instead, rescreening dirty rows only.
func summationCandidates(l *reputation.Ledger, tr float64) []int {
	var out []int
	for i := 0; i < l.Size(); i++ {
		if float64(l.SummationScore(i)) >= tr {
			out = append(out, i)
		}
	}
	return out
}

// pairIndex maps the unordered pair {a, b} to its flat upper-triangular
// slot a*n+b (after normalizing a < b) in an n*n bitset.
func pairIndex(a, b, n int) int {
	if a > b {
		a, b = b, a
	}
	return a*n + b
}

func (r *Result) addPair(l *reputation.Ledger, i, j int) {
	if i > j {
		i, j = j, i
	}
	e := Evidence{I: i, J: j, NIJ: l.PairTotal(i, j), NJI: l.PairTotal(j, i)}
	if e.NIJ > 0 {
		e.AIJ = float64(l.PairPositive(i, j)) / float64(e.NIJ)
	}
	if e.NJI > 0 {
		e.AJI = float64(l.PairPositive(j, i)) / float64(e.NJI)
	}
	r.insertPair(e)
}

// sortPairs orders Pairs by (I, J). Insertion sort: pair lists are short,
// nearly sorted (rows are scanned ascending), and the in-place pass
// allocates nothing, which keeps steady-state incremental detection
// allocation-free.
func (r *Result) sortPairs() {
	ps := r.Pairs
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && (ps[j].I < ps[j-1].I ||
			(ps[j].I == ps[j-1].I && ps[j].J < ps[j-1].J)); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

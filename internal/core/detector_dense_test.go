package core

// This file preserves the pre-adjacency dense-scan detectors verbatim as a
// reference implementation. The production detectors now iterate the
// ledger's active-rater adjacency lists and charge the dense element-visit
// counts arithmetically; the property tests below require that, on
// randomized ledgers, the sparse-aware detectors report the same pairs AND
// the same per-counter metered cost as these dense references — which is
// what keeps Figure 13 unchanged while the wall clock drops.

import (
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

type denseCharger struct {
	meter *metrics.CostMeter
}

func (d denseCharger) charge(name string, n int64) {
	if d.meter != nil {
		d.meter.Add(name, n)
	}
}

// denseOutsideLow is the original O(n) row re-scan.
func denseOutsideLow(ch denseCharger, th Thresholds, l *reputation.Ledger, target, rater int) bool {
	n := l.Size()
	othersTotal, othersPos := 0, 0
	for k := 0; k < n; k++ {
		if k == rater || k == target {
			continue
		}
		othersTotal += l.PairTotal(target, k)
		othersPos += l.PairPositive(target, k)
	}
	ch.charge(metrics.CostMatrixScan, int64(n))
	if othersTotal == 0 {
		return true
	}
	return float64(othersPos)/float64(othersTotal) < th.Tb
}

// denseBasicDetectAmong is the original Basic.DetectAmong: full row scans
// with a flat n×n checked bitset.
func denseBasicDetectAmong(th Thresholds, meter *metrics.CostMeter, l *reputation.Ledger, candidates []int) Result {
	ch := denseCharger{meter}
	n := l.Size()
	res := Result{Flagged: make([]bool, n)}
	high := make([]bool, n)
	for _, c := range candidates {
		if c >= 0 && c < n {
			high[c] = true
		}
	}
	checked := make([]bool, n*n)
	for i := 0; i < n; i++ {
		if !high[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			key := pairIndex(i, j, n)
			if checked[key] {
				continue
			}
			ch.charge(metrics.CostPairCheck, 1)
			ch.charge(metrics.CostMatrixScan, 1)
			if !high[j] {
				continue
			}
			checked[key] = true
			outI := denseOutsideLow(ch, th, l, i, j)
			nij := l.PairTotal(i, j)
			if nij < th.TN ||
				float64(l.PairPositive(i, j))/float64(nij) < th.Ta {
				continue
			}
			if th.StrictReverse && !outI {
				continue
			}
			nji := l.PairTotal(j, i)
			ch.charge(metrics.CostMatrixScan, 1)
			if nji < th.TN ||
				float64(l.PairPositive(j, i))/float64(nji) < th.Ta {
				continue
			}
			if th.StrictReverse {
				if denseOutsideLow(ch, th, l, j, i) {
					res.addPair(l, i, j)
				}
				continue
			}
			if outI || denseOutsideLow(ch, th, l, j, i) {
				res.addPair(l, i, j)
			}
		}
	}
	denseAssociationSweep(l, th, &res, func(n int64) { ch.charge(metrics.CostPairCheck, n) })
	res.sortPairs()
	return res
}

// denseOptimizedDetectAmong is the original Optimized.DetectAmong.
func denseOptimizedDetectAmong(th Thresholds, meter *metrics.CostMeter, l *reputation.Ledger, candidates []int) Result {
	ch := denseCharger{meter}
	n := l.Size()
	res := Result{Flagged: make([]bool, n)}
	high := make([]bool, n)
	for _, c := range candidates {
		if c >= 0 && c < n {
			high[c] = true
		}
	}
	checked := make([]bool, n*n)
	for i := 0; i < n; i++ {
		if !high[i] {
			continue
		}
		ri := float64(l.SummationScore(i))
		ni := l.TotalFor(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			key := pairIndex(i, j, n)
			if checked[key] {
				continue
			}
			ch.charge(metrics.CostPairCheck, 1)
			if !high[j] {
				continue
			}
			checked[key] = true
			nij, nji := l.PairTotal(i, j), l.PairTotal(j, i)
			if nij < th.TN || nji < th.TN {
				continue
			}
			rj := float64(l.SummationScore(j))
			nj := l.TotalFor(j)
			if th.StrictReverse {
				ch.charge(metrics.CostBoundCheck, 1)
				if !th.BoundsHold(ri, ni, nij) {
					continue
				}
				ch.charge(metrics.CostBoundCheck, 1)
				if !th.BoundsHold(rj, nj, nji) {
					continue
				}
				res.addPair(l, i, j)
				continue
			}
			if float64(l.PairPositive(i, j))/float64(nij) < th.Ta ||
				float64(l.PairPositive(j, i))/float64(nji) < th.Ta {
				continue
			}
			ch.charge(metrics.CostBoundCheck, 1)
			holdI := th.BoundsHold(ri, ni, nij)
			if !holdI {
				ch.charge(metrics.CostBoundCheck, 1)
				if !th.BoundsHold(rj, nj, nji) {
					continue
				}
			}
			res.addPair(l, i, j)
		}
	}
	denseAssociationSweep(l, th, &res, func(n int64) { ch.charge(metrics.CostPairCheck, n) })
	res.sortPairs()
	return res
}

// denseAssociationSweep is the original all-columns closure sweep.
func denseAssociationSweep(l *reputation.Ledger, th Thresholds, res *Result, charge func(int64)) {
	if th.StrictReverse {
		return
	}
	n := l.Size()
	queue := res.FlaggedNodes()
	inQueue := make(map[int]bool, len(queue))
	for _, c := range queue {
		inQueue[c] = true
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for x := 0; x < n; x++ {
			if x == c || res.HasPair(c, x) {
				continue
			}
			charge(1)
			ncx, nxc := l.PairTotal(c, x), l.PairTotal(x, c)
			if ncx < th.TN || nxc < th.TN {
				continue
			}
			if float64(l.PairPositive(c, x))/float64(ncx) < th.Ta ||
				float64(l.PairPositive(x, c))/float64(nxc) < th.Ta {
				continue
			}
			res.addPair(l, c, x)
			if !inQueue[x] {
				inQueue[x] = true
				queue = append(queue, x)
			}
		}
	}
}

// randomDetectorLedger generates a ledger with background noise, popular
// honest nodes, and several planted colluding structures (pairs, chains)
// so both the detection and the association sweep paths are exercised.
func randomDetectorLedger(r *rng.Rand, n int) *reputation.Ledger {
	l := reputation.NewLedger(n)
	// Background organic ratings, mostly positive.
	for k := 0; k < n*8; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		pol := 1
		if r.Bool(0.35) {
			pol = -1
		}
		l.Record(i, j, pol)
	}
	// Planted colluding pairs with mutual floods.
	pairs := r.IntRange(1, 4)
	for p := 0; p < pairs; p++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			continue
		}
		flood := r.IntRange(20, 35)
		for k := 0; k < flood; k++ {
			l.Record(a, b, 1)
			l.Record(b, a, 1)
		}
	}
	// A chain a-b-c to drive the association sweep's transitive closure.
	a, b, c := r.Intn(n), r.Intn(n), r.Intn(n)
	if a != b && b != c && a != c {
		for k := 0; k < 25; k++ {
			l.Record(a, b, 1)
			l.Record(b, a, 1)
			l.Record(b, c, 1)
			l.Record(c, b, 1)
		}
	}
	return l
}

func compareResults(t *testing.T, tag string, got, want Result) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s: %d pairs, dense reference %d\ngot  %+v\nwant %+v",
			tag, len(got.Pairs), len(want.Pairs), got.Pairs, want.Pairs)
	}
	for i := range want.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("%s: pair %d = %+v, dense reference %+v", tag, i, got.Pairs[i], want.Pairs[i])
		}
	}
	for i := range want.Flagged {
		if got.Flagged[i] != want.Flagged[i] {
			t.Fatalf("%s: Flagged[%d] = %v, dense reference %v", tag, i, got.Flagged[i], want.Flagged[i])
		}
	}
}

func compareMeters(t *testing.T, tag string, got, want *metrics.CostMeter) {
	t.Helper()
	gs, ws := got.Snapshot(), want.Snapshot()
	for name, w := range ws {
		if gs[name] != w {
			t.Fatalf("%s: counter %s = %d, dense reference %d (Figure 13 would change)",
				tag, name, gs[name], w)
		}
	}
	for name, g := range gs {
		if _, ok := ws[name]; !ok && g != 0 {
			t.Fatalf("%s: unexpected counter %s = %d", tag, name, g)
		}
	}
}

// TestSparseDetectorsMatchDenseReference is the contract of the sparse hot
// path: identical pairs, identical flags, and identical per-counter costs
// versus the preserved dense implementation, across randomized ledgers,
// threshold variants, and candidate restrictions.
func TestSparseDetectorsMatchDenseReference(t *testing.T) {
	r := rng.New(1234).Child("dense-equivalence")
	for trial := 0; trial < 60; trial++ {
		n := r.IntRange(4, 40)
		l := randomDetectorLedger(r, n)
		th := Thresholds{
			TR: float64(r.IntRange(0, 3)),
			TN: r.IntRange(1, 25),
			Ta: 0.5 + 0.5*r.Float64(),
			Tb: r.Float64(),
		}
		if r.Bool(0.25) {
			th.StrictReverse = true
		}
		var candidates []int
		if r.Bool(0.3) {
			// Restricted candidate set, possibly with duplicates and
			// out-of-range entries (DetectAmong must tolerate both).
			for k := 0; k < r.IntRange(1, n+3); k++ {
				candidates = append(candidates, r.IntRange(-1, n))
			}
		} else {
			candidates = summationCandidates(l, th.TR)
		}

		var mb, mbRef metrics.CostMeter
		b := NewBasic(th)
		b.Meter = &mb
		gotB := b.DetectAmong(l, candidates)
		wantB := denseBasicDetectAmong(th, &mbRef, l, candidates)
		compareResults(t, "basic", gotB, wantB)
		compareMeters(t, "basic", &mb, &mbRef)

		var mo, moRef metrics.CostMeter
		o := NewOptimized(th)
		o.Meter = &mo
		gotO := o.DetectAmong(l, candidates)
		wantO := denseOptimizedDetectAmong(th, &moRef, l, candidates)
		compareResults(t, "optimized", gotO, wantO)
		compareMeters(t, "optimized", &mo, &moRef)
	}
}

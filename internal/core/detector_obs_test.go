package core

import (
	"testing"

	"github.com/p2psim/collusion/internal/obs"
)

// TestTracingOffAddsNoAllocs pins the acceptance criterion that a
// disabled tracer adds zero allocations to the detector hot path: the
// Detect allocation count is identical with no tracer and with an
// explicitly disabled one.
func TestTracingOffAddsNoAllocs(t *testing.T) {
	l := benchLedger(200)
	bare := NewBasic(DefaultThresholds())
	baseline := testing.AllocsPerRun(5, func() { bare.Detect(l) })
	off := NewBasic(DefaultThresholds())
	off.Trace = obs.NewTracer(nil)
	if got := testing.AllocsPerRun(5, func() { off.Detect(l) }); got != baseline {
		t.Fatalf("disabled tracer changed Detect allocations: %v, baseline %v", got, baseline)
	}
	bareOpt := NewOptimized(DefaultThresholds())
	optBase := testing.AllocsPerRun(5, func() { bareOpt.Detect(l) })
	offOpt := NewOptimized(DefaultThresholds())
	offOpt.Trace = obs.NewTracer(nil)
	if got := testing.AllocsPerRun(5, func() { offOpt.Detect(l) }); got != optBase {
		t.Fatalf("disabled tracer changed optimized Detect allocations: %v, baseline %v", got, optBase)
	}
}

// BenchmarkBasicDetect200TracingDisabled is BenchmarkBasicDetect200 with
// an explicitly disabled tracer attached, so `benchjson -compare` can
// show the two are within noise of each other.
func BenchmarkBasicDetect200TracingDisabled(b *testing.B) {
	l := benchLedger(200)
	d := NewBasic(DefaultThresholds())
	d.Trace = obs.NewTracer(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

package core

import (
	"testing"

	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

// sparseBenchLedger models a large network where each node has rated only
// a handful of peers — the regime where the adjacency-list hot path wins:
// the dense reference visits all n-1 columns of a row while the sparse
// detector walks ~avgDegree active raters (the cost meter still charges
// the dense counts either way, so Figure 13 is unaffected).
func sparseBenchLedger(n, avgDegree int) *reputation.Ledger {
	l := reputation.NewLedger(n)
	r := rng.New(7)
	for k := 0; k < n*avgDegree; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		pol := 1
		if r.Bool(0.2) {
			pol = -1
		}
		l.Record(i, j, pol)
	}
	// A few planted colluding pairs so the detection path does real work.
	for p := 0; p < 4; p++ {
		a, b := 10*p+1, 10*p+2
		for k := 0; k < 30; k++ {
			l.Record(a, b, 1)
			l.Record(b, a, 1)
		}
	}
	return l
}

// BenchmarkBasicDetectSparse1000 measures the production adjacency-list
// Basic detector on a 1000-node sparse ledger.
func BenchmarkBasicDetectSparse1000(b *testing.B) {
	l := sparseBenchLedger(1000, 8)
	d := NewBasic(DefaultThresholds())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

// BenchmarkBasicDetectDense1000 is the pre-change dense-scan baseline on
// the identical ledger, for a direct sparse-vs-dense comparison.
func BenchmarkBasicDetectDense1000(b *testing.B) {
	l := sparseBenchLedger(1000, 8)
	th := DefaultThresholds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		denseBasicDetectAmong(th, nil, l, summationCandidates(l, th.TR))
	}
}

// BenchmarkOptimizedDetectSparse1000 and its dense baseline cover the
// Formula (2) detector in the same sparse regime.
func BenchmarkOptimizedDetectSparse1000(b *testing.B) {
	l := sparseBenchLedger(1000, 8)
	d := NewOptimized(DefaultThresholds())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

func BenchmarkOptimizedDetectDense1000(b *testing.B) {
	l := sparseBenchLedger(1000, 8)
	th := DefaultThresholds()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		denseOptimizedDetectAmong(th, nil, l, summationCandidates(l, th.TR))
	}
}

// The Sparse100k benchmarks are the scale the dense ledger made
// impossible: 100,000 nodes at ~10 ratings/node would have needed three
// 100k² int32 arrays (~120 GB); the CSR ledger builds and detects the same
// population within ordinary laptop memory (the n=100k acceptance bound is
// < 1 GiB, dominated by the per-row slice headers).

func BenchmarkBasicDetectSparse100k(b *testing.B) {
	l := sparseBenchLedger(100_000, 10)
	d := NewBasic(DefaultThresholds())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

func BenchmarkOptimizedDetectSparse100k(b *testing.B) {
	l := sparseBenchLedger(100_000, 10)
	d := NewOptimized(DefaultThresholds())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

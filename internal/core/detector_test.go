package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

func TestDefaultThresholdsValid(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdsValidate(t *testing.T) {
	bad := []Thresholds{
		{TN: 0, Ta: 0.8, Tb: 0.2},
		{TN: 5, Ta: 1.5, Tb: 0.2},
		{TN: 5, Ta: 0.8, Tb: -0.1},
		{TN: 5, Ta: 0.2, Tb: 0.8}, // Ta <= Tb
	}
	for i, th := range bad {
		if err := th.Validate(); err == nil {
			t.Errorf("bad thresholds %d accepted: %+v", i, th)
		}
	}
}

func TestFormulaReputationIdentity(t *testing.T) {
	// Hand check: ni=100, nij=40 from the rater with a=1.0; others 60
	// ratings with b=0.1 → R = 2*0.1*60 + 2*1*40 - 100 = 12 - 20 = -8...
	// compute: 12 + 80 - 100 = -8.
	if got := FormulaReputation(100, 40, 1.0, 0.1); math.Abs(got-(-8)) > 1e-12 {
		t.Fatalf("FormulaReputation = %v, want -8", got)
	}
}

// Property: Formula (1) is an identity for ±1 ledgers — the summation
// reputation equals 2b(N_i−N_(i,j)) + 2a·N_(i,j) − N_i for every rater j
// with nonzero counts.
func TestQuickFormulaOneIdentity(t *testing.T) {
	f := func(events []uint16) bool {
		const n = 6
		l := reputation.NewLedger(n)
		for _, e := range events {
			i := int(e) % n
			j := int(e>>3) % n
			if i == j {
				continue
			}
			pol := 1
			if e>>6&1 == 1 {
				pol = -1
			}
			l.Record(i, j, pol)
		}
		for target := 0; target < n; target++ {
			ni := l.TotalFor(target)
			if ni == 0 {
				continue
			}
			r := float64(l.SummationScore(target))
			for rater := 0; rater < n; rater++ {
				if rater == target {
					continue
				}
				nij := l.PairTotal(target, rater)
				if nij == 0 || nij == ni {
					continue // a or b undefined
				}
				a := float64(l.PairPositive(target, rater)) / float64(nij)
				b := float64(l.OthersPositive(target, rater)) / float64(l.OthersTotal(target, rater))
				if math.Abs(FormulaReputation(ni, nij, a, b)-r) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReputationBounds(t *testing.T) {
	th := Thresholds{TR: 1, TN: 20, Ta: 0.8, Tb: 0.2}
	lo, hi := th.ReputationBounds(100, 40)
	// lo = 2*0.8*40 - 100 = -36; hi = 2*0.2*60 + 80 - 100 = 4.
	if math.Abs(lo-(-36)) > 1e-12 || math.Abs(hi-4) > 1e-12 {
		t.Fatalf("bounds = [%v, %v], want [-36, 4]", lo, hi)
	}
	if !th.BoundsHold(0, 100, 40) || th.BoundsHold(10, 100, 40) || th.BoundsHold(-40, 100, 40) {
		t.Fatal("BoundsHold misclassified")
	}
}

// Property: Formula (2) soundness — whenever a >= Ta and b <= Tb on a ±1
// ledger, the reputation lies inside the bounds.
func TestQuickFormulaTwoSoundness(t *testing.T) {
	th := Thresholds{TR: 1, TN: 1, Ta: 0.8, Tb: 0.2}
	f := func(naPos, naNeg, nbPos, nbNeg uint8) bool {
		// Rater contributes naPos positives + naNeg negatives; the rest of
		// the world nbPos + nbNeg. Enforce the share conditions by
		// construction, then check the bounds.
		nij := int(naPos) + int(naNeg)
		rest := int(nbPos) + int(nbNeg)
		if nij == 0 {
			return true
		}
		a := float64(naPos) / float64(nij)
		b := 0.0
		if rest > 0 {
			b = float64(nbPos) / float64(rest)
		}
		if a < th.Ta || b > th.Tb {
			return true // premise not met
		}
		ni := nij + rest
		r := float64(int(naPos) - int(naNeg) + int(nbPos) - int(nbNeg))
		return th.BoundsHold(r, ni, nij)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// buildCollusionLedger constructs the canonical scenario: a population
// where pair (1,2) colludes (frequent mutual positives, negative from the
// rest) and node 3 is honestly popular.
func buildCollusionLedger(t *testing.T) *reputation.Ledger {
	t.Helper()
	const n = 12
	l := reputation.NewLedger(n)
	// Colluders 1 and 2: 30 mutual positives each direction.
	for k := 0; k < 30; k++ {
		l.Record(1, 2, 1)
		l.Record(2, 1, 1)
	}
	// The rest of the network rates the colluders mostly negatively (C2)
	// but not enough to sink their total reputation below TR (C1).
	for k := 0; k < 10; k++ {
		l.Record(4+k%6, 1, -1)
		l.Record(4+k%6, 2, -1)
	}
	// Node 3 is honestly high-reputed: many positives from many raters.
	for k := 0; k < 40; k++ {
		l.Record(4+k%8, 3, 1)
	}
	// Node 4 rates node 3 frequently and positively, but node 3's other
	// ratings are also positive, so b is high and no collusion exists.
	for k := 0; k < 25; k++ {
		l.Record(4, 3, 1)
	}
	return l
}

func TestBasicDetectsPlantedPair(t *testing.T) {
	l := buildCollusionLedger(t)
	d := NewBasic(DefaultThresholds())
	res := d.Detect(l)
	if len(res.Pairs) != 1 || !res.HasPair(1, 2) {
		t.Fatalf("detected pairs = %+v, want exactly {1,2}", res.Pairs)
	}
	e := res.Pairs[0]
	if e.NIJ != 30 || e.NJI != 30 || e.AIJ != 1 || e.AJI != 1 {
		t.Fatalf("evidence = %+v", e)
	}
	if res.Flagged[3] || res.Flagged[4] {
		t.Fatal("honest nodes flagged")
	}
	nodes := res.FlaggedNodes()
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 2 {
		t.Fatalf("FlaggedNodes = %v", nodes)
	}
}

func TestOptimizedDetectsPlantedPair(t *testing.T) {
	l := buildCollusionLedger(t)
	d := NewOptimized(DefaultThresholds())
	res := d.Detect(l)
	if len(res.Pairs) != 1 || !res.HasPair(1, 2) {
		t.Fatalf("detected pairs = %+v, want exactly {1,2}", res.Pairs)
	}
}

func TestDetectorsAgreeOnPlantedScenario(t *testing.T) {
	l := buildCollusionLedger(t)
	rb := NewBasic(DefaultThresholds()).Detect(l)
	ro := NewOptimized(DefaultThresholds()).Detect(l)
	if len(rb.Pairs) != len(ro.Pairs) {
		t.Fatalf("basic found %d pairs, optimized %d", len(rb.Pairs), len(ro.Pairs))
	}
	for i := range rb.Pairs {
		if rb.Pairs[i].I != ro.Pairs[i].I || rb.Pairs[i].J != ro.Pairs[i].J {
			t.Fatalf("pair %d differs: %+v vs %+v", i, rb.Pairs[i], ro.Pairs[i])
		}
	}
}

func TestNoDetectionBelowFrequencyThreshold(t *testing.T) {
	const n = 6
	l := reputation.NewLedger(n)
	// Mutual positives but below TN.
	for k := 0; k < 10; k++ {
		l.Record(1, 2, 1)
		l.Record(2, 1, 1)
	}
	for k := 0; k < 4; k++ {
		l.Record(3+k%3, 1, -1)
		l.Record(3+k%3, 2, -1)
	}
	th := DefaultThresholds() // TN = 20
	if res := NewBasic(th).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("basic flagged below-threshold pair: %+v", res.Pairs)
	}
	if res := NewOptimized(th).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("optimized flagged below-threshold pair: %+v", res.Pairs)
	}
}

func TestNoDetectionWhenOthersArePositive(t *testing.T) {
	// Two genuinely popular nodes that also rate each other a lot: the
	// outside world is positive about them (b high), so no collusion.
	const n = 10
	l := reputation.NewLedger(n)
	for k := 0; k < 30; k++ {
		l.Record(1, 2, 1)
		l.Record(2, 1, 1)
	}
	for k := 0; k < 30; k++ {
		l.Record(3+k%7, 1, 1)
		l.Record(3+k%7, 2, 1)
	}
	th := DefaultThresholds()
	if res := NewBasic(th).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("basic flagged popular friends: %+v", res.Pairs)
	}
	if res := NewOptimized(th).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("optimized flagged popular friends: %+v", res.Pairs)
	}
}

func TestOneSidedFloodingNotFlagged(t *testing.T) {
	// Node 2 floods node 1 with positives, but node 1 never rates back:
	// the symmetric condition fails (collusion is mutual by definition).
	const n = 8
	l := reputation.NewLedger(n)
	for k := 0; k < 40; k++ {
		l.Record(2, 1, 1)
	}
	for k := 0; k < 5; k++ {
		l.Record(3+k%5, 1, -1)
	}
	// Keep node 2 high-reputed via organic positives.
	for k := 0; k < 30; k++ {
		l.Record(3+k%5, 2, 1)
	}
	th := DefaultThresholds()
	if res := NewBasic(th).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("basic flagged one-sided flooding: %+v", res.Pairs)
	}
	if res := NewOptimized(th).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("optimized flagged one-sided flooding: %+v", res.Pairs)
	}
}

func TestLowReputedColludersSkipped(t *testing.T) {
	// Colluders whose reputation stays below TR are outside the search
	// space (the paper only examines high-reputed nodes, C1).
	const n = 8
	l := reputation.NewLedger(n)
	for k := 0; k < 25; k++ {
		l.Record(1, 2, 1)
		l.Record(2, 1, 1)
	}
	// Enough negatives to push their summation reputation below zero.
	for k := 0; k < 30; k++ {
		l.Record(3+k%5, 1, -1)
		l.Record(3+k%5, 2, -1)
	}
	th := DefaultThresholds() // TR = 1
	if res := NewBasic(th).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("basic examined low-reputed nodes: %+v", res.Pairs)
	}
	if res := NewOptimized(th).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("optimized examined low-reputed nodes: %+v", res.Pairs)
	}
}

func TestDetectAmongRestrictsSearch(t *testing.T) {
	l := buildCollusionLedger(t)
	// Exclude node 2 from the candidate set: the pair cannot be flagged.
	cands := []int{1, 3}
	if res := NewBasic(DefaultThresholds()).DetectAmong(l, cands); len(res.Pairs) != 0 {
		t.Fatalf("basic flagged pair outside candidates: %+v", res.Pairs)
	}
	if res := NewOptimized(DefaultThresholds()).DetectAmong(l, cands); len(res.Pairs) != 0 {
		t.Fatalf("optimized flagged pair outside candidates: %+v", res.Pairs)
	}
	// Out-of-range candidates must be ignored, not crash.
	if res := NewOptimized(DefaultThresholds()).DetectAmong(l, []int{-5, 9999, 1, 2}); !res.HasPair(1, 2) {
		t.Fatal("valid candidates lost among invalid ones")
	}
}

func TestMultiplePairsDetected(t *testing.T) {
	const n = 16
	l := reputation.NewLedger(n)
	plant := func(a, b int) {
		for k := 0; k < 25; k++ {
			l.Record(a, b, 1)
			l.Record(b, a, 1)
		}
		for k := 0; k < 8; k++ {
			l.Record(10+k%4, a, -1)
			l.Record(10+k%4, b, -1)
		}
	}
	plant(1, 2)
	plant(3, 4)
	plant(5, 6)
	for _, d := range []Detector{NewBasic(DefaultThresholds()), NewOptimized(DefaultThresholds())} {
		res := d.Detect(l)
		if len(res.Pairs) != 3 {
			t.Fatalf("%s found %d pairs, want 3: %+v", d.Name(), len(res.Pairs), res.Pairs)
		}
		for _, want := range [][2]int{{1, 2}, {3, 4}, {5, 6}} {
			if !res.HasPair(want[0], want[1]) {
				t.Fatalf("%s missed pair %v", d.Name(), want)
			}
		}
	}
}

// Property: on ±1 ledgers, every pair the basic method flags is also
// flagged by the optimized method (Formula (2) is a sound relaxation).
func TestQuickBasicSubsetOfOptimized(t *testing.T) {
	th := Thresholds{TR: 1, TN: 4, Ta: 0.8, Tb: 0.2}
	f := func(events []uint16, boost uint8) bool {
		const n = 8
		l := reputation.NewLedger(n)
		for _, e := range events {
			i := int(e) % n
			j := int(e>>3) % n
			if i == j {
				continue
			}
			pol := 1
			if e>>6&1 == 1 {
				pol = -1
			}
			l.Record(i, j, pol)
		}
		// Seed some mutual flooding so detections actually occur.
		for k := 0; k < int(boost)%40; k++ {
			l.Record(0, 1, 1)
			l.Record(1, 0, 1)
		}
		rb := NewBasic(th).Detect(l)
		ro := NewOptimized(th).Detect(l)
		for _, e := range rb.Pairs {
			if !ro.HasPair(e.I, e.J) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestCostAsymmetry(t *testing.T) {
	// The basic detector's measured work must exceed the optimized
	// detector's by roughly a factor of n on the same workload.
	// Every node has several frequent, positive raters, so the basic
	// detector's row re-scan fires throughout the matrix — the O(mn²)
	// regime of Proposition 4.1 — while the optimized detector replaces
	// each re-scan with a constant-cost bound evaluation.
	const n = 64
	l := reputation.NewLedger(n)
	r := rng.New(7)
	for i := 0; i < n; i++ {
		for f := 1; f <= 8; f++ {
			rater := (i + f) % n
			for k := 0; k < 25; k++ {
				l.Record(rater, i, 1)
			}
		}
	}
	for k := 0; k < n*10; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		l.Record(i, j, 1)
	}

	var mb, mo metrics.CostMeter
	b := NewBasic(DefaultThresholds())
	b.Meter = &mb
	o := NewOptimized(DefaultThresholds())
	o.Meter = &mo
	b.Detect(l)
	o.Detect(l)

	costB := mb.Total()
	costO := mo.Total()
	if costB <= costO {
		t.Fatalf("basic cost %d not above optimized cost %d", costB, costO)
	}
	if costB < 4*costO {
		t.Fatalf("basic cost %d not clearly asymptotically above optimized %d", costB, costO)
	}
	if mo.Get(metrics.CostMatrixScan) != 0 {
		t.Fatal("optimized detector performed row scans")
	}
}

func TestResultHelpers(t *testing.T) {
	var r Result
	r.Flagged = make([]bool, 4)
	l := reputation.NewLedger(4)
	l.Record(0, 1, 1)
	r.addPair(l, 2, 1)
	r.addPair(l, 1, 2) // duplicate in reverse order
	if len(r.Pairs) != 1 {
		t.Fatalf("duplicate pair stored: %+v", r.Pairs)
	}
	if r.Pairs[0].I != 1 || r.Pairs[0].J != 2 {
		t.Fatalf("pair not normalized: %+v", r.Pairs[0])
	}
	if !r.HasPair(2, 1) || r.HasPair(0, 1) {
		t.Fatal("HasPair wrong")
	}
}

func BenchmarkBasicDetect200(b *testing.B) {
	l := benchLedger(200)
	d := NewBasic(DefaultThresholds())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

func BenchmarkOptimizedDetect200(b *testing.B) {
	l := benchLedger(200)
	d := NewOptimized(DefaultThresholds())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

func benchLedger(n int) *reputation.Ledger {
	l := reputation.NewLedger(n)
	r := rng.New(1)
	for k := 0; k < n*60; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		pol := 1
		if r.Bool(0.2) {
			pol = -1
		}
		l.Record(i, j, pol)
	}
	for k := 0; k < 30; k++ {
		l.Record(1, 2, 1)
		l.Record(2, 1, 1)
	}
	return l
}

// TestResultEmpty pins the zero-value Result behavior: no pairs, no
// flagged nodes, and HasPair is false for anything.
func TestResultEmpty(t *testing.T) {
	var r Result
	if r.HasPair(0, 1) || r.HasPair(1, 0) || r.HasPair(-1, 5) {
		t.Fatal("empty result reports a pair")
	}
	if nodes := r.FlaggedNodes(); len(nodes) != 0 {
		t.Fatalf("empty result flags nodes: %v", nodes)
	}
}

// TestHasPairOrderInsensitive verifies {a, b} is found regardless of
// argument order, including equal and out-of-range arguments.
func TestHasPairOrderInsensitive(t *testing.T) {
	l := reputation.NewLedger(6)
	var r Result
	r.Flagged = make([]bool, 6)
	r.addPair(l, 4, 2)
	if !r.HasPair(2, 4) || !r.HasPair(4, 2) {
		t.Fatal("pair not found in one of the argument orders")
	}
	if r.HasPair(2, 2) || r.HasPair(4, 4) {
		t.Fatal("self pair reported")
	}
	if r.HasPair(2, 5) || r.HasPair(-3, 2) || r.HasPair(100, 200) {
		t.Fatal("absent pair reported")
	}
}

// TestFlaggedNodesSortedDistinct verifies FlaggedNodes is ascending and
// deduplicated when a node appears in several pairs.
func TestFlaggedNodesSortedDistinct(t *testing.T) {
	l := reputation.NewLedger(8)
	var r Result
	r.Flagged = make([]bool, 8)
	r.addPair(l, 7, 3)
	r.addPair(l, 3, 1)
	r.addPair(l, 5, 3)
	nodes := r.FlaggedNodes()
	want := []int{1, 3, 5, 7}
	if len(nodes) != len(want) {
		t.Fatalf("FlaggedNodes = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("FlaggedNodes = %v, want %v", nodes, want)
		}
	}
}

// TestDetectAmongOutOfRangeCandidates verifies both detectors ignore
// negative and too-large candidate indices instead of panicking, and
// still find the planted pair among the valid ones.
func TestDetectAmongOutOfRangeCandidates(t *testing.T) {
	l := buildCollusionLedger(t)
	candidates := []int{-5, -1, 1, 2, 3, 12, 99999}
	for _, d := range []Detector{NewBasic(DefaultThresholds()), NewOptimized(DefaultThresholds())} {
		res := d.DetectAmong(l, candidates)
		if !res.HasPair(1, 2) {
			t.Fatalf("%s: planted pair missed with out-of-range candidates", d.Name())
		}
		if len(res.Flagged) != l.Size() {
			t.Fatalf("%s: Flagged sized %d, want %d", d.Name(), len(res.Flagged), l.Size())
		}
	}
}

// TestDetectAmongEmptyCandidates verifies an empty candidate set yields
// an empty result with a correctly sized Flagged slice.
func TestDetectAmongEmptyCandidates(t *testing.T) {
	l := buildCollusionLedger(t)
	for _, d := range []Detector{NewBasic(DefaultThresholds()), NewOptimized(DefaultThresholds())} {
		res := d.DetectAmong(l, nil)
		if len(res.Pairs) != 0 {
			t.Fatalf("%s: pairs detected with no candidates: %+v", d.Name(), res.Pairs)
		}
		if len(res.FlaggedNodes()) != 0 {
			t.Fatalf("%s: nodes flagged with no candidates", d.Name())
		}
		if len(res.Flagged) != l.Size() {
			t.Fatalf("%s: Flagged sized %d, want %d", d.Name(), len(res.Flagged), l.Size())
		}
	}
}

package core

import (
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
)

// ExplainPair reruns the optimized (§IV-C, Formula (2)) screening cascade
// on one pair as a pure function of the ledger — no meter charges, no
// detector state, no result mutation — and returns the full decision
// record: the first gate the pair stops at (or obs.GateFlagged when every
// gate passes) together with every statistic the cascade consults,
// including the Formula (2) reputation intervals of both sides. The pair
// is normalized to I < J, as in the detectors' own audits.
//
// Unlike the detectors, the cascade here is prefixed with the T_R
// candidate screen (gate obs.GateTR): the detectors only ever examine
// pairs whose sides both passed it, so a pair failing T_R was never
// examined at all. The association sweep is NOT modeled — a pair can be
// detected through partnership with an already-flagged colluder even
// though its own cascade stops early — so callers explaining pairs from a
// detection Result must consult the Result first and only fall back to
// ExplainPair for pairs not in it (the service suspicion endpoint does
// exactly this). The converse direction is exact: any pair ExplainPair
// reports as obs.GateFlagged is detected by Optimized.Detect on the same
// ledger and thresholds, which TestExplainPairMatchesDetector pins.
func ExplainPair(l *reputation.Ledger, th Thresholds, i, j int) obs.PairAudit {
	if i > j {
		i, j = j, i
	}
	a := pairAuditFor(l, "explain", i, j, "")
	a.LoI, a.HiI = th.ReputationBounds(a.NI, a.NIJ)
	a.LoJ, a.HiJ = th.ReputationBounds(a.NJ, a.NJI)
	a.Gate = explainGate(th, a)
	return a
}

// explainGate runs the optimized cascade over an assembled audit record,
// in the exact gate order Optimized.examinePair uses, prefixed with the
// T_R candidate screen.
func explainGate(th Thresholds, a obs.PairAudit) string {
	if a.RI < th.TR || a.RJ < th.TR {
		return obs.GateTR
	}
	if a.NIJ < th.TN || a.NJI < th.TN {
		return obs.GateTN
	}
	if th.StrictReverse {
		if !th.BoundsHold(a.RI, a.NI, a.NIJ) {
			return obs.GateBoundForward
		}
		if !th.BoundsHold(a.RJ, a.NJ, a.NJI) {
			return obs.GateBoundReverse
		}
		return obs.GateFlagged
	}
	if a.AIJ < th.Ta || a.AJI < th.Ta {
		return obs.GateTA
	}
	if !th.BoundsHold(a.RI, a.NI, a.NIJ) && !th.BoundsHold(a.RJ, a.NJ, a.NJI) {
		return obs.GateBound
	}
	return obs.GateFlagged
}

package core

import (
	"testing"

	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

// flood records count ratings of the given polarity from rater about
// target.
func flood(l *reputation.Ledger, rater, target, count, polarity int) {
	for k := 0; k < count; k++ {
		l.Record(rater, target, polarity)
	}
}

// TestExplainPairGates drives each gate of the advisory cascade.
func TestExplainPairGates(t *testing.T) {
	th := Thresholds{TR: 1, TN: 20, Ta: 0.9, Tb: 0.5}
	l := reputation.NewLedger(8)

	// Nodes 0 and 1: a textbook colluding pair, no outside reputation.
	flood(l, 0, 1, 30, 1)
	flood(l, 1, 0, 30, 1)
	// Nodes 2 and 3: frequent but sour — fails T_a (both keep positive
	// summation scores, so the candidate screen passes).
	flood(l, 2, 3, 30, 1)
	flood(l, 3, 2, 20, 1)
	flood(l, 3, 2, 10, -1)
	flood(l, 2, 3, 5, -1)
	// Node 4: below T_R (negative summation score).
	flood(l, 5, 4, 3, -1)
	flood(l, 4, 5, 30, 1)
	// Nodes 6 and 7: reputable strangers — never rated each other.
	flood(l, 0, 6, 2, 1)
	flood(l, 1, 7, 2, 1)

	if got := ExplainPair(l, th, 0, 1).Gate; got != obs.GateFlagged {
		t.Fatalf("mutual flood pair gate = %q, want %q", got, obs.GateFlagged)
	}
	// Order normalization: the same pair either way round.
	if got := ExplainPair(l, th, 1, 0); got.I != 0 || got.J != 1 {
		t.Fatalf("ExplainPair(1,0) not normalized: I=%d J=%d", got.I, got.J)
	}
	if got := ExplainPair(l, th, 2, 3).Gate; got != obs.GateTA {
		t.Fatalf("sour pair gate = %q, want %q", got, obs.GateTA)
	}
	if got := ExplainPair(l, th, 4, 5).Gate; got != obs.GateTR {
		t.Fatalf("low-reputation pair gate = %q, want %q", got, obs.GateTR)
	}
	if got := ExplainPair(l, th, 6, 7).Gate; got != obs.GateTN {
		t.Fatalf("strangers gate = %q, want %q", got, obs.GateTN)
	}

	strict := th
	strict.StrictReverse = true
	if got := ExplainPair(l, strict, 0, 1).Gate; got != obs.GateFlagged {
		t.Fatalf("strict mutual flood pair gate = %q, want %q", got, obs.GateFlagged)
	}
}

// TestExplainPairMatchesDetector pins the exact half of the contract: on a
// randomized ledger, every pair the advisory cascade reports as flagged
// must be detected by Optimized.Detect under the same thresholds. (The
// converse is deliberately not exact: the association sweep can flag pairs
// whose own cascade stops early.)
func TestExplainPairMatchesDetector(t *testing.T) {
	const n = 24
	r := rng.New(3).Child("explain")
	th := Thresholds{TR: 1, TN: 5, Ta: 0.8, Tb: 0.5}
	for trial := 0; trial < 20; trial++ {
		l := reputation.NewLedger(n)
		// Background traffic plus a few planted floods.
		for k := 0; k < 400; k++ {
			rater, target := r.Intn(n), r.Intn(n)
			if rater == target {
				target = (target + 1) % n
			}
			pol := 1
			if r.Bool(0.3) {
				pol = -1
			}
			l.Record(rater, target, pol)
		}
		for p := 0; p < 3; p++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				b = (b + 1) % n
			}
			flood(l, a, b, 5+r.Intn(10), 1)
			flood(l, b, a, 5+r.Intn(10), 1)
		}
		det := NewOptimized(th)
		res := det.Detect(l)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a := ExplainPair(l, th, i, j)
				if a.Gate == obs.GateFlagged && !res.HasPair(i, j) {
					t.Fatalf("trial %d: ExplainPair(%d,%d) flagged but detector did not", trial, i, j)
				}
				if res.HasPair(i, j) && a.Gate != obs.GateFlagged && a.Gate == obs.GateTR {
					// Detected pairs were T_R candidates at detection time and
					// nothing mutated since, so the candidate screen cannot be
					// the stopping gate unless the sweep flagged them — which
					// never lowers a summation score. Anything else (TA, TN,
					// bound) can legitimately differ via the sweep.
					t.Fatalf("trial %d: detected pair (%d,%d) explained as %q", trial, i, j, a.Gate)
				}
			}
		}
	}
}

package core

import (
	"testing"
)

func TestFailManagerValidation(t *testing.T) {
	mr, err := NewManagerRing(3, 20, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.FailManager("nope"); err == nil {
		t.Error("unknown manager failure accepted")
	}

	single, err := NewManagerRing(1, 20, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	name, _ := single.ManagerOf(0)
	if err := single.FailManager(name); err == nil {
		t.Error("failing the last manager accepted")
	}
}

func TestFailManagerReassignsResponsibility(t *testing.T) {
	mr, err := NewManagerRing(4, 60, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := mr.ManagerOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.FailManager(victim); err != nil {
		t.Fatal(err)
	}
	if mr.Managers() != 3 {
		t.Fatalf("managers = %d, want 3", mr.Managers())
	}
	// Every rated node must have a surviving manager, and never the victim.
	for i := 0; i < 60; i++ {
		name, err := mr.ManagerOf(i)
		if err != nil {
			t.Fatal(err)
		}
		if name == victim {
			t.Fatalf("node %d still assigned to failed manager", i)
		}
	}
}

// Detection results must survive the crash of the manager holding the
// colluders' rows: the successor's replicas are promoted.
func TestDetectionSurvivesManagerCrash(t *testing.T) {
	const n = 24
	mr, err := NewManagerRing(5, n, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	collusionWorkload(t, mr, n)
	before := mr.Detect(KindOptimized)
	if len(before.Pairs) == 0 {
		t.Fatal("no pairs before crash")
	}

	// Crash the manager responsible for colluder 1.
	victim, err := mr.ManagerOf(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.FailManager(victim); err != nil {
		t.Fatal(err)
	}
	after := mr.Detect(KindOptimized)
	if len(after.Pairs) != len(before.Pairs) {
		t.Fatalf("detection changed after crash: %d vs %d pairs",
			len(after.Pairs), len(before.Pairs))
	}
	for i := range before.Pairs {
		if before.Pairs[i].I != after.Pairs[i].I || before.Pairs[i].J != after.Pairs[i].J {
			t.Fatalf("pair %d differs after crash: %+v vs %+v",
				i, before.Pairs[i], after.Pairs[i])
		}
	}
}

// Sequential crashes down to a single manager must preserve detection as
// long as each crash is followed by re-replication (which FailManager
// performs).
func TestSequentialManagerCrashes(t *testing.T) {
	const n = 24
	mr, err := NewManagerRing(5, n, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	collusionWorkload(t, mr, n)
	want := mr.Detect(KindOptimized)

	for mr.Managers() > 1 {
		name, err := mr.ManagerOf(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := mr.FailManager(name); err != nil {
			t.Fatal(err)
		}
		got := mr.Detect(KindOptimized)
		if len(got.Pairs) != len(want.Pairs) {
			t.Fatalf("with %d managers: %d pairs, want %d",
				mr.Managers(), len(got.Pairs), len(want.Pairs))
		}
	}
}

// Ratings recorded after a crash land at the new owners and detection
// continues to work on the merged state.
func TestRecordingAfterCrash(t *testing.T) {
	const n = 24
	mr, err := NewManagerRing(4, n, DefaultThresholds(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Half the collusion before the crash...
	record := func(rater, target, pol int) {
		if err := mr.Record(rater, target, pol); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 13; k++ {
		record(1, 2, 1)
		record(2, 1, 1)
	}
	victim, _ := mr.ManagerOf(1)
	if err := mr.FailManager(victim); err != nil {
		t.Fatal(err)
	}
	// ...and half after.
	for k := 0; k < 12; k++ {
		record(1, 2, 1)
		record(2, 1, 1)
	}
	for k := 0; k < 8; k++ {
		record(10+k%4, 1, -1)
		record(10+k%4, 2, -1)
	}
	res := mr.Detect(KindOptimized)
	if !res.HasPair(1, 2) {
		t.Fatalf("pair lost across crash: %+v", res.Pairs)
	}
	e := res.Pairs[0]
	if e.NIJ != 25 || e.NJI != 25 {
		t.Fatalf("merged counts wrong: %+v", e)
	}
}

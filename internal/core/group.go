package core

import (
	"sort"
	"strconv"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
)

// Group collusion detection extends the paper's pairwise methods to
// collectives of more than two nodes — the extension the paper names as
// future work ("how to detect a collusion collective having more than two
// nodes such as Sybil attack"). The Overstock analysis (C5) found closed
// groups to be rare in the wild, but a detector that only understands
// pairs is easy to evade: three colluders rating in a ring (1→2→3→1)
// never form a mutual pair and slip through the pairwise methods entirely.
//
// The group detector generalizes the collusion model:
//
//   - C1: every member of the collective is high-reputed;
//   - C3+C4: the collective's internal rating relationships are frequent
//     (>= TN) and almost always positive (>= Ta), forming a strongly
//     connected flooding structure (a pair is the 2-cycle special case);
//   - C2: the ratings members receive from outside the collective are
//     mostly negative (outside positive share < Tb), i.e. each member's
//     reputation is manufactured inside the group.
//
// Detection builds the flooding graph over high-reputed nodes (edge j→i
// when j rates i frequently and almost always positively), decomposes it
// into strongly connected components, and keeps every component of two or
// more nodes whose members fail the outside test. With StrictReverse
// every member must fail the outside test; by default a component is
// flagged when at least one member fails it, mirroring the pairwise
// relaxation that catches compromised pretrusted participants.

// Group is one detected collusion collective.
type Group struct {
	// Members lists the collective's node indices, ascending.
	Members []int
	// InsideRatings is the total number of ratings exchanged inside the
	// collective during the period.
	InsideRatings int
	// OutsidePositiveShare is the positive share of ratings the members
	// received from non-members (the generalized b statistic); zero when
	// the members received no outside ratings at all.
	OutsidePositiveShare float64
}

// GroupResult is the outcome of group detection.
type GroupResult struct {
	// Groups lists detected collectives ordered by their smallest member.
	Groups []Group
	// Flagged[i] reports whether node i belongs to any detected group.
	Flagged []bool
}

// FlaggedNodes returns all flagged node indices, ascending.
func (r GroupResult) FlaggedNodes() []int {
	var out []int
	for i, f := range r.Flagged {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// HasGroup reports whether some detected group contains every given node.
func (r GroupResult) HasGroup(nodes ...int) bool {
	for _, g := range r.Groups {
		inGroup := map[int]bool{}
		for _, m := range g.Members {
			inGroup[m] = true
		}
		all := true
		for _, n := range nodes {
			if !inGroup[n] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// GroupDetector finds collusion collectives of size >= 2.
type GroupDetector struct {
	Thresholds Thresholds
	// MaxGroupSize, when positive, skips strongly connected components
	// larger than the cap — a guard against degenerate threshold choices
	// that would connect most of the network. Zero means no cap.
	MaxGroupSize int
	// Meter, if non-nil, accumulates metrics.CostPairCheck per edge
	// examination and metrics.CostMatrixScan per outside-share scan.
	Meter *metrics.CostMeter
	// Trace, if enabled, receives group_edge events for rated high pairs
	// (which C3/C4 gate each candidate flooding edge stopped at),
	// group_member events for each examined collective member's outside
	// test, and one group_audit decision per collective.
	Trace *obs.Tracer
}

// NewGroupDetector returns a group detector with the given thresholds.
func NewGroupDetector(t Thresholds) *GroupDetector {
	return &GroupDetector{Thresholds: t}
}

// Name identifies the method in experiment output.
func (g *GroupDetector) Name() string { return "group" }

// Detect derives high-reputed candidates from summation scores and
// searches them for collusion collectives.
func (g *GroupDetector) Detect(l *reputation.Ledger) GroupResult {
	auditCandidates(g.Trace, g.Name(), l, g.Thresholds.TR)
	return g.DetectAmong(l, summationCandidates(l, g.Thresholds.TR))
}

// DetectAmong searches only the given candidate nodes.
func (g *GroupDetector) DetectAmong(l *reputation.Ledger, candidates []int) GroupResult {
	n := l.Size()
	res := GroupResult{Flagged: make([]bool, n)}
	high := make([]bool, n)
	var nodes []int
	for _, c := range candidates {
		if c >= 0 && c < n && !high[c] {
			high[c] = true
			nodes = append(nodes, c)
		}
	}
	sort.Ints(nodes)

	// Flooding graph over high-reputed nodes: edge rater→target when the
	// rating relationship is frequent and almost always positive.
	adj := make(map[int][]int, len(nodes)) // rater -> targets
	radj := make(map[int][]int, len(nodes))
	tracing := g.Trace.Enabled()
	for _, target := range nodes {
		// The dense scan examines every other candidate rater; unrated
		// pairs stop at the frequency gate unaudited (they are the
		// overwhelmingly common case and carry no information), so only
		// target's adjacency — already ascending, like nodes — needs
		// visiting, with the zero-count examinations charged in bulk.
		g.charge(metrics.CostPairCheck, int64(len(nodes)-1))
		pc := l.PairCountsOf(target)
		for k, r32 := range pc.Raters {
			rater := int(r32)
			if !high[rater] {
				continue
			}
			cnt := int(pc.Total[k])
			if cnt < g.Thresholds.TN {
				if tracing {
					g.auditEdge(l, target, rater, cnt, obs.GateTN)
				}
				continue
			}
			if float64(pc.Pos[k])/float64(cnt) < g.Thresholds.Ta {
				if tracing {
					g.auditEdge(l, target, rater, cnt, obs.GateTA)
				}
				continue
			}
			if tracing {
				g.auditEdge(l, target, rater, cnt, obs.GateFlagged)
			}
			adj[rater] = append(adj[rater], target)
			radj[target] = append(radj[target], rater)
		}
	}

	// Strongly connected components of size >= 2 are flooding collectives.
	for _, comp := range stronglyConnected(nodes, adj, radj) {
		if len(comp) < 2 {
			continue
		}
		if g.MaxGroupSize > 0 && len(comp) > g.MaxGroupSize {
			continue
		}
		group, suspicious := g.examine(l, comp)
		if suspicious {
			res.Groups = append(res.Groups, group)
			for _, m := range group.Members {
				res.Flagged[m] = true
			}
		}
	}
	sort.Slice(res.Groups, func(i, j int) bool {
		return res.Groups[i].Members[0] < res.Groups[j].Members[0]
	})
	return res
}

// examine applies the generalized outside test (C2) to one flooding
// collective and assembles its evidence.
func (g *GroupDetector) examine(l *reputation.Ledger, comp []int) (Group, bool) {
	members := append([]int(nil), comp...)
	sort.Ints(members)
	inGroup := make(map[int]bool, len(members))
	for _, m := range members {
		inGroup[m] = true
	}
	grp := Group{Members: members}

	outsideTotal, outsidePos := 0, 0
	failing := 0
	n := l.Size()
	for _, m := range members {
		// The outside test conceptually scans m's whole matrix row (charged
		// dense below); only the nonzero elements — m's adjacency —
		// contribute to the sums.
		memberOutTotal, memberOutPos := 0, 0
		pc := l.PairCountsOf(m)
		for k, r32 := range pc.Raters {
			cnt := int(pc.Total[k])
			if inGroup[int(r32)] {
				grp.InsideRatings += cnt
				continue
			}
			memberOutTotal += cnt
			memberOutPos += int(pc.Pos[k])
		}
		g.charge(metrics.CostMatrixScan, int64(n))
		outsideTotal += memberOutTotal
		outsidePos += memberOutPos
		// A member with no outside ratings is maximally suspicious: its
		// whole reputation is internal to the collective.
		memberFails := memberOutTotal == 0 ||
			float64(memberOutPos)/float64(memberOutTotal) < g.Thresholds.Tb
		if memberFails {
			failing++
		}
		if g.Trace.Enabled() {
			g.Trace.Emit("group_member",
				obs.Str("detector", g.Name()),
				obs.Int("node", m),
				obs.Int("out_pos", memberOutPos),
				obs.Int("out_tot", memberOutTotal),
				obs.Float("t_b", g.Thresholds.Tb),
				obs.Bool("fails_outside", memberFails))
		}
	}
	if outsideTotal > 0 {
		grp.OutsidePositiveShare = float64(outsidePos) / float64(outsideTotal)
	}
	suspicious := failing > 0
	if g.Thresholds.StrictReverse {
		suspicious = failing == len(members)
	}
	// Default: at least one member must look propped-up — the same
	// relaxation as the pairwise rule, so a collective that recruited
	// clean-looking members (the compromised-pretrust pattern) is still
	// caught, and every pairwise detection is covered by a group.
	if g.Trace.Enabled() {
		g.Trace.Emit("group_audit",
			obs.Str("detector", g.Name()),
			obs.Str("members", intsString(members)),
			obs.Int("inside_ratings", grp.InsideRatings),
			obs.Float("outside_share", grp.OutsidePositiveShare),
			obs.Int("failing", failing),
			obs.Bool("flagged", suspicious))
	}
	return grp, suspicious
}

// auditEdge emits one group_edge event for a rated candidate flooding
// edge rater→target.
func (g *GroupDetector) auditEdge(l *reputation.Ledger, target, rater, cnt int, gate string) {
	g.Trace.Emit("group_edge",
		obs.Str("detector", g.Name()),
		obs.Int("target", target),
		obs.Int("rater", rater),
		obs.Int("n", cnt),
		obs.Float("a", float64(l.PairPositive(target, rater))/float64(cnt)),
		obs.Str("gate", gate))
}

// intsString renders node indices as a comma-separated list for event
// attributes.
func intsString(xs []int) string {
	var b []byte
	for k, x := range xs {
		if k > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(x), 10)
	}
	return string(b)
}

func (g *GroupDetector) charge(name string, n int64) {
	if g.Meter != nil {
		g.Meter.Add(name, n)
	}
}

// stronglyConnected returns the strongly connected components of the
// directed graph over nodes, using Tarjan's algorithm iteratively.
func stronglyConnected(nodes []int, adj, radj map[int][]int) [][]int {
	// Kosaraju: order by finish time on the forward graph, then collect
	// components on the reverse graph. Iterative to avoid deep recursion.
	visited := make(map[int]bool, len(nodes))
	var order []int
	for _, start := range nodes {
		if visited[start] {
			continue
		}
		// Iterative DFS with explicit post-order.
		type frame struct {
			node int
			next int
		}
		stack := []frame{{node: start}}
		visited[start] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			targets := adj[f.node]
			advanced := false
			for f.next < len(targets) {
				t := targets[f.next]
				f.next++
				if !visited[t] {
					visited[t] = true
					stack = append(stack, frame{node: t})
					advanced = true
					break
				}
			}
			if !advanced && f.next >= len(targets) {
				order = append(order, f.node)
				stack = stack[:len(stack)-1]
			}
		}
	}

	assigned := make(map[int]bool, len(nodes))
	var comps [][]int
	for i := len(order) - 1; i >= 0; i-- {
		root := order[i]
		if assigned[root] {
			continue
		}
		comp := []int{root}
		assigned[root] = true
		stack := []int{root}
		for len(stack) > 0 {
			node := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range radj[node] {
				if !assigned[p] {
					assigned[p] = true
					comp = append(comp, p)
					stack = append(stack, p)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

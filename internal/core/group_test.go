package core

import (
	"testing"
	"testing/quick"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/reputation"
)

// plantRing makes members flood each other in a directed ring
// (m0→m1→...→m0), the structure pairwise detection cannot see.
func plantRing(l *reputation.Ledger, members []int, ratings int) {
	for i, m := range members {
		next := members[(i+1)%len(members)]
		for k := 0; k < ratings; k++ {
			l.Record(m, next, 1)
		}
	}
}

// plantClique makes every member flood every other member.
func plantClique(l *reputation.Ledger, members []int, ratings int) {
	for _, a := range members {
		for _, b := range members {
			if a == b {
				continue
			}
			for k := 0; k < ratings; k++ {
				l.Record(a, b, 1)
			}
		}
	}
}

// addOutsideNegatives gives each member low ratings from the crowd (C2).
func addOutsideNegatives(l *reputation.Ledger, members []int, from, count int) {
	for _, m := range members {
		for k := 0; k < count; k++ {
			l.Record(from+k%4, m, -1)
		}
	}
}

func TestGroupDetectsRing(t *testing.T) {
	const n = 16
	l := reputation.NewLedger(n)
	ring := []int{1, 2, 3}
	plantRing(l, ring, 30)
	addOutsideNegatives(l, ring, 8, 6)
	// Honest background traffic.
	for k := 0; k < 60; k++ {
		l.Record(8+k%4, 12+k%3, 1)
	}

	g := NewGroupDetector(DefaultThresholds())
	res := g.Detect(l)
	if len(res.Groups) != 1 || !res.HasGroup(1, 2, 3) {
		t.Fatalf("groups = %+v, want ring {1,2,3}", res.Groups)
	}
	grp := res.Groups[0]
	if grp.InsideRatings != 90 {
		t.Fatalf("inside ratings = %d, want 90", grp.InsideRatings)
	}
	if grp.OutsidePositiveShare != 0 {
		t.Fatalf("outside positive share = %v, want 0", grp.OutsidePositiveShare)
	}
	nodes := res.FlaggedNodes()
	if len(nodes) != 3 {
		t.Fatalf("flagged = %v", nodes)
	}
}

// The pairwise methods are blind to a 3-ring: no member pair rates
// mutually, so the paper's future-work case is a genuine gap the group
// detector closes.
func TestPairwiseMissesRingGroupCatches(t *testing.T) {
	const n = 16
	l := reputation.NewLedger(n)
	ring := []int{1, 2, 3}
	plantRing(l, ring, 30)
	addOutsideNegatives(l, ring, 8, 6)

	if res := NewBasic(DefaultThresholds()).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("basic flagged ring pairs: %+v", res.Pairs)
	}
	if res := NewOptimized(DefaultThresholds()).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("optimized flagged ring pairs: %+v", res.Pairs)
	}
	if res := NewGroupDetector(DefaultThresholds()).Detect(l); !res.HasGroup(1, 2, 3) {
		t.Fatalf("group detector missed the ring: %+v", res.Groups)
	}
}

func TestGroupDetectsClique(t *testing.T) {
	const n = 20
	l := reputation.NewLedger(n)
	clique := []int{4, 5, 6, 7}
	plantClique(l, clique, 25)
	addOutsideNegatives(l, clique, 10, 5)

	res := NewGroupDetector(DefaultThresholds()).Detect(l)
	if !res.HasGroup(4, 5, 6, 7) {
		t.Fatalf("clique not detected: %+v", res.Groups)
	}
}

func TestGroupDetectsPairAsTwoCycle(t *testing.T) {
	l := buildCollusionLedger(t)
	res := NewGroupDetector(DefaultThresholds()).Detect(l)
	if !res.HasGroup(1, 2) {
		t.Fatalf("pair not detected as 2-cycle: %+v", res.Groups)
	}
}

func TestGroupIgnoresHonestPopularCluster(t *testing.T) {
	// Mutually boosting nodes whose outside world also rates them well:
	// fails C2, must not be flagged.
	const n = 16
	l := reputation.NewLedger(n)
	plantClique(l, []int{1, 2, 3}, 25)
	for k := 0; k < 90; k++ {
		l.Record(8+k%6, 1+k%3, 1) // outside positives
	}
	res := NewGroupDetector(DefaultThresholds()).Detect(l)
	if len(res.Groups) != 0 {
		t.Fatalf("honest cluster flagged: %+v", res.Groups)
	}
}

func TestGroupIgnoresOneWayChain(t *testing.T) {
	// A directed chain 1→2→3 with no back edges is not strongly connected
	// and must not be flagged even with negative outsiders.
	const n = 16
	l := reputation.NewLedger(n)
	for k := 0; k < 30; k++ {
		l.Record(1, 2, 1)
		l.Record(2, 3, 1)
	}
	addOutsideNegatives(l, []int{2, 3}, 8, 4)
	// Keep all three high-reputed.
	for k := 0; k < 40; k++ {
		l.Record(8+k%4, 1, 1)
	}
	res := NewGroupDetector(DefaultThresholds()).Detect(l)
	if len(res.Groups) != 0 {
		t.Fatalf("one-way chain flagged: %+v", res.Groups)
	}
}

func TestGroupLowReputedSkipped(t *testing.T) {
	const n = 12
	l := reputation.NewLedger(n)
	ring := []int{1, 2, 3}
	plantRing(l, ring, 25)
	// Sink their summation reputations below TR.
	for _, m := range ring {
		for k := 0; k < 40; k++ {
			l.Record(4+k%5, m, -1)
		}
	}
	res := NewGroupDetector(DefaultThresholds()).Detect(l)
	if len(res.Groups) != 0 {
		t.Fatalf("low-reputed ring flagged: %+v", res.Groups)
	}
}

func TestGroupStrictRequiresAllMembers(t *testing.T) {
	const n = 20
	l := reputation.NewLedger(n)
	ring := []int{1, 2, 3}
	plantRing(l, ring, 30)
	// Nodes 2 and 3 look propped-up; node 1 has an honestly positive
	// outside record (the compromised-pretrust pattern).
	addOutsideNegatives(l, []int{2, 3}, 8, 6)
	for k := 0; k < 30; k++ {
		l.Record(8+k%6, 1, 1)
	}

	th := DefaultThresholds()
	relaxed := NewGroupDetector(th).Detect(l)
	if !relaxed.HasGroup(1, 2, 3) {
		t.Fatalf("default rule missed majority-suspicious ring: %+v", relaxed.Groups)
	}
	th.StrictReverse = true
	strict := NewGroupDetector(th).Detect(l)
	if len(strict.Groups) != 0 {
		t.Fatalf("strict rule flagged ring with a clean member: %+v", strict.Groups)
	}
}

func TestGroupMaxGroupSize(t *testing.T) {
	const n = 20
	l := reputation.NewLedger(n)
	clique := []int{1, 2, 3, 4, 5}
	plantClique(l, clique, 25)
	addOutsideNegatives(l, clique, 10, 5)
	g := NewGroupDetector(DefaultThresholds())
	g.MaxGroupSize = 4
	if res := g.Detect(l); len(res.Groups) != 0 {
		t.Fatalf("oversized group reported despite cap: %+v", res.Groups)
	}
	g.MaxGroupSize = 5
	if res := g.Detect(l); !res.HasGroup(clique...) {
		t.Fatal("group at the cap should be reported")
	}
}

func TestGroupMultipleDisjointGroups(t *testing.T) {
	const n = 24
	l := reputation.NewLedger(n)
	plantRing(l, []int{1, 2, 3}, 25)
	plantClique(l, []int{5, 6}, 25)
	addOutsideNegatives(l, []int{1, 2, 3, 5, 6}, 10, 5)
	res := NewGroupDetector(DefaultThresholds()).Detect(l)
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %+v, want 2", res.Groups)
	}
	if !res.HasGroup(1, 2, 3) || !res.HasGroup(5, 6) {
		t.Fatalf("missing groups: %+v", res.Groups)
	}
}

func TestGroupCostAccounting(t *testing.T) {
	var meter metrics.CostMeter
	l := buildCollusionLedger(t)
	g := NewGroupDetector(DefaultThresholds())
	g.Meter = &meter
	g.Detect(l)
	if meter.Get(metrics.CostPairCheck) == 0 {
		t.Fatal("no edge examinations counted")
	}
	if meter.Get(metrics.CostMatrixScan) == 0 {
		t.Fatal("no outside scans counted")
	}
}

// Property: every pair flagged by the pairwise optimized detector appears
// inside some group flagged by the group detector (groups generalize
// pairs) on ±1 ledgers.
func TestQuickGroupsCoverPairs(t *testing.T) {
	th := Thresholds{TR: 1, TN: 4, Ta: 0.8, Tb: 0.2}
	f := func(events []uint16, boost uint8) bool {
		const n = 8
		l := reputation.NewLedger(n)
		for _, e := range events {
			i := int(e) % n
			j := int(e>>3) % n
			if i == j {
				continue
			}
			pol := 1
			if e>>6&1 == 1 {
				pol = -1
			}
			l.Record(i, j, pol)
		}
		for k := 0; k < int(boost)%40; k++ {
			l.Record(0, 1, 1)
			l.Record(1, 0, 1)
		}
		pairs := NewBasic(th).Detect(l)
		groups := NewGroupDetector(th).Detect(l)
		for _, e := range pairs.Pairs {
			covered := false
			for _, g := range groups.Groups {
				inG := map[int]bool{}
				for _, m := range g.Members {
					inG[m] = true
				}
				if inG[e.I] && inG[e.J] {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestStronglyConnectedKnownGraph(t *testing.T) {
	nodes := []int{1, 2, 3, 4, 5}
	adj := map[int][]int{1: {2}, 2: {3}, 3: {1}, 4: {5}}
	radj := map[int][]int{2: {1}, 3: {2}, 1: {3}, 5: {4}}
	comps := stronglyConnected(nodes, adj, radj)
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 1 || sizes[1] != 2 {
		t.Fatalf("components = %v", comps)
	}
}

// Property: strongly connected components partition the node set.
func TestQuickSCCPartition(t *testing.T) {
	f := func(edges []uint8) bool {
		const n = 10
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		adj := map[int][]int{}
		radj := map[int][]int{}
		for _, e := range edges {
			a := int(e) % n
			b := int(e>>4) % n
			if a == b {
				continue
			}
			adj[a] = append(adj[a], b)
			radj[b] = append(radj[b], a)
		}
		comps := stronglyConnected(nodes, adj, radj)
		seen := map[int]int{}
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, m := range c {
				seen[m]++
			}
		}
		if total != n || len(seen) != n {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGroupDetect200(b *testing.B) {
	l := benchLedger(200)
	plantRing(l, []int{20, 21, 22}, 30)
	d := NewGroupDetector(DefaultThresholds())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

package core

import (
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

// evolveLedger mutates l with one cycle's worth of activity: background
// organic ratings plus, occasionally, a fresh mutual flood that creates or
// reinforces a colluding pair — so across cycles the dirty set varies from
// a few rows to most of the population.
func evolveLedger(r *rng.Rand, l *reputation.Ledger, n int) {
	ratings := r.IntRange(1, n*2)
	for k := 0; k < ratings; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		pol := 1
		if r.Bool(0.3) {
			pol = -1
		}
		l.Record(i, j, pol)
	}
	if r.Bool(0.4) {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			flood := r.IntRange(10, 30)
			for k := 0; k < flood; k++ {
				l.Record(a, b, 1)
				l.Record(b, a, 1)
			}
		}
	}
}

// TestIncrementalDetectionMatchesFull is the incremental path's contract:
// across a 60-trial sweep of evolving ledgers, every DetectIncremental
// cycle must flag the identical pairs AND charge the identical per-counter
// meter readings as a from-scratch Detect over the same ledger state.
func TestIncrementalDetectionMatchesFull(t *testing.T) {
	r := rng.New(77).Child("incremental-equivalence")
	for trial := 0; trial < 60; trial++ {
		n := r.IntRange(4, 40)
		th := Thresholds{
			TR: float64(r.IntRange(0, 3)),
			TN: r.IntRange(1, 25),
			Ta: 0.5 + 0.5*r.Float64(),
			Tb: r.Float64(),
		}
		if r.Bool(0.25) {
			th.StrictReverse = true
		}

		l := reputation.NewLedger(n)
		incB := NewBasic(th)
		incB.Meter = new(metrics.CostMeter)
		incO := NewOptimized(th)
		incO.Meter = new(metrics.CostMeter)

		cycles := r.IntRange(3, 8)
		prevB := incB.Meter.Snapshot()
		prevO := incO.Meter.Snapshot()
		for cycle := 0; cycle < cycles; cycle++ {
			evolveLedger(r, l, n)
			dirty := l.DirtyTargets()

			fullB := NewBasic(th)
			fullB.Meter = new(metrics.CostMeter)
			wantB := fullB.Detect(l)
			gotB := incB.DetectIncremental(l, dirty)
			compareResults(t, tag("basic", trial, cycle), gotB, wantB)
			prevB = compareMeterDelta(t, tag("basic", trial, cycle), incB.Meter, prevB, fullB.Meter)

			fullO := NewOptimized(th)
			fullO.Meter = new(metrics.CostMeter)
			wantO := fullO.Detect(l)
			gotO := incO.DetectIncremental(l, dirty)
			compareResults(t, tag("optimized", trial, cycle), gotO, wantO)
			prevO = compareMeterDelta(t, tag("optimized", trial, cycle), incO.Meter, prevO, fullO.Meter)

			l.ClearDirty()
		}
	}
}

// compareMeterDelta checks that the incremental detector's meter advanced
// this cycle by exactly the counts a from-scratch pass charged, and
// returns the new snapshot for the next cycle. A cached replay that
// dropped or double-charged any counter would change Figure 13's cost
// curves — exact equality is the requirement.
func compareMeterDelta(t *testing.T, tag string, inc *metrics.CostMeter, prev map[string]int64, full *metrics.CostMeter) map[string]int64 {
	t.Helper()
	cur := inc.Snapshot()
	want := full.Snapshot()
	for name, w := range want {
		if got := cur[name] - prev[name]; got != w {
			t.Fatalf("%s: incremental charged %d %s this cycle, full pass %d", tag, got, name, w)
		}
	}
	for name := range cur {
		if _, ok := want[name]; !ok && cur[name] != prev[name] {
			t.Fatalf("%s: incremental charged unexpected counter %s (+%d)", tag, name, cur[name]-prev[name])
		}
	}
	return cur
}

// TestIncrementalResetsOnLedgerSwap pins the state-invalidation rule:
// handing the detector a different Ledger value (a new run, a windowed
// merge) must discard every memoized screen, even with an empty dirty set.
func TestIncrementalResetsOnLedgerSwap(t *testing.T) {
	th := DefaultThresholds()
	th.TR = 0
	r := rng.New(5).Child("ledger-swap")

	a := reputation.NewLedger(12)
	evolveLedger(r, a, 12)
	for k := 0; k < 25; k++ {
		a.Record(1, 2, 1)
		a.Record(2, 1, 1)
	}
	b := reputation.NewLedger(12)
	evolveLedger(r, b, 12)
	for k := 0; k < 25; k++ {
		b.Record(3, 4, 1)
		b.Record(4, 3, 1)
	}

	for _, det := range []IncrementalDetector{NewBasic(th), NewOptimized(th)} {
		resA := det.DetectIncremental(a, a.DirtyTargets())
		if !resA.HasPair(1, 2) {
			t.Fatalf("%s: planted pair (1,2) not flagged on ledger a", det.Name())
		}
		// No dirty rows reported for b: only the ledger identity signals
		// the swap.
		resB := det.DetectIncremental(b, nil)
		full := NewOptimized(th)
		if det.Name() == "unoptimized" {
			resWant := NewBasic(th).Detect(b)
			compareResults(t, det.Name()+" after swap", resB, resWant)
			continue
		}
		compareResults(t, det.Name()+" after swap", resB, full.Detect(b))
	}
}

// TestIncrementalSteadyStateAllocs pins the scratch-buffer reuse: once the
// detector has warmed up on a ledger, re-detecting with no changes must
// not allocate (the per-cycle Detect used to rebuild candidate, bitmap,
// dedup-map and queue storage every period).
func TestIncrementalSteadyStateAllocs(t *testing.T) {
	th := DefaultThresholds()
	th.TR = 0
	r := rng.New(9).Child("steady-allocs")
	l := reputation.NewLedger(64)
	evolveLedger(r, l, 64)
	for k := 0; k < 30; k++ {
		l.Record(1, 2, 1)
		l.Record(2, 1, 1)
	}

	for _, det := range []IncrementalDetector{NewBasic(th), NewOptimized(th)} {
		for warm := 0; warm < 2; warm++ {
			det.DetectIncremental(l, l.DirtyTargets())
			l.ClearDirty()
		}
		allocs := testing.AllocsPerRun(50, func() {
			res := det.DetectIncremental(l, nil)
			if !res.HasPair(1, 2) {
				t.Fatal("planted pair lost")
			}
		})
		if allocs > 0 {
			t.Fatalf("%s: steady-state DetectIncremental allocates %v objects/op, want 0", det.Name(), allocs)
		}
	}
}

func tag(det string, trial, cycle int) string {
	return det + " trial " + itoa(trial) + " cycle " + itoa(cycle)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

package core

import (
	"sort"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
)

// Sybil-style boosting is the second future-work case the paper names: an
// attacker manufactures many cheap identities that all flood one
// beneficiary with positive ratings. Unlike pair or ring collusion the
// relationship is one-way — the fake identities never need reputations of
// their own, so neither the reciprocity test of the pairwise methods nor
// the strongly-connected structure of the group detector can fire.
//
// The Sybil detector keeps the collusion model's economics but drops
// reciprocity:
//
//   - C1: the beneficiary is high-reputed;
//   - C3+C4: at least MinBoosters distinct raters each rate the
//     beneficiary frequently (>= TN) and almost always positively (>= Ta)
//     — a single such rater is the pairwise detectors' business, but a
//     swarm of them is the Sybil signature (honest popularity shows up as
//     many low-frequency raters instead: the Amazon trace's organic
//     buyer-seller pairs average one rating per year);
//   - C2: excluding the flooding swarm, the beneficiary's remaining
//     ratings are mostly negative (< Tb), i.e. its reputation is
//     manufactured by the swarm.
//
// The booster identities themselves need no reputation screen — they are
// throwaways by construction.

// SybilFinding is one detected boosting swarm.
type SybilFinding struct {
	// Target is the boosted beneficiary.
	Target int
	// Boosters lists the flooding rater identities, ascending.
	Boosters []int
	// BoosterRatings is the total number of ratings the boosters gave the
	// target during the period.
	BoosterRatings int
	// OutsidePositiveShare is the positive share of the target's ratings
	// from everyone except the boosters; zero when no such ratings exist.
	OutsidePositiveShare float64
}

// SybilResult is the outcome of Sybil detection.
type SybilResult struct {
	// Findings lists detected swarms ordered by target.
	Findings []SybilFinding
	// Flagged[i] reports whether node i is a detected beneficiary or
	// booster.
	Flagged []bool
}

// FlaggedNodes returns all flagged node indices, ascending.
func (r SybilResult) FlaggedNodes() []int {
	var out []int
	for i, f := range r.Flagged {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// HasTarget reports whether the node was detected as a boosted
// beneficiary.
func (r SybilResult) HasTarget(node int) bool {
	for _, f := range r.Findings {
		if f.Target == node {
			return true
		}
	}
	return false
}

// SybilDetector finds one-way boosting swarms.
type SybilDetector struct {
	Thresholds Thresholds
	// MinBoosters is the minimum swarm size (default 3; smaller swarms
	// either are pairs — the pairwise methods' case — or provide too
	// little boost to matter).
	MinBoosters int
	// MinConcentration is the minimum share of a booster's outgoing
	// ratings that must go to the beneficiary (default 0.5). Fake
	// identities exist solely to boost, so their concentration is near 1;
	// an honest node's loyal customers also rate the other servers they
	// use, which keeps their concentration low and prevents popular
	// honest nodes from being mistaken for beneficiaries.
	MinConcentration float64
	// Meter, if non-nil, accumulates metrics.CostPairCheck per examined
	// rater and metrics.CostMatrixScan per outside-share scan.
	Meter *metrics.CostMeter
	// Trace, if enabled, receives sybil_rater events for rated
	// (target, rater) relationships (which gate disqualified the rater as
	// a booster) and one sybil_audit decision per candidate beneficiary.
	Trace *obs.Tracer
}

// Default Sybil-detector parameters.
const (
	DefaultMinBoosters      = 3
	DefaultMinConcentration = 0.5
)

// NewSybilDetector returns a Sybil detector with the given thresholds.
func NewSybilDetector(t Thresholds) *SybilDetector {
	return &SybilDetector{
		Thresholds:       t,
		MinBoosters:      DefaultMinBoosters,
		MinConcentration: DefaultMinConcentration,
	}
}

// Name identifies the method in experiment output.
func (d *SybilDetector) Name() string { return "sybil" }

// Detect derives high-reputed candidates from summation scores and
// searches them for boosting swarms.
func (d *SybilDetector) Detect(l *reputation.Ledger) SybilResult {
	auditCandidates(d.Trace, d.Name(), l, d.Thresholds.TR)
	return d.DetectAmong(l, summationCandidates(l, d.Thresholds.TR))
}

// DetectAmong searches only the given candidate beneficiaries.
func (d *SybilDetector) DetectAmong(l *reputation.Ledger, candidates []int) SybilResult {
	n := l.Size()
	res := SybilResult{Flagged: make([]bool, n)}
	minBoosters := d.MinBoosters
	if minBoosters < 1 {
		minBoosters = DefaultMinBoosters
	}
	minConc := d.MinConcentration
	if minConc <= 0 {
		minConc = DefaultMinConcentration
	}
	seen := make(map[int]bool, len(candidates))
	var targets []int
	for _, c := range candidates {
		if c >= 0 && c < n && !seen[c] {
			seen[c] = true
			targets = append(targets, c)
		}
	}
	sort.Ints(targets)

	tracing := d.Trace.Enabled()
	for _, target := range targets {
		var boosters []int
		boosterRatings := 0
		// The booster scan conceptually examines every other node's rating
		// relationship with the target (charged in bulk as the dense scan
		// would); unrated relationships stop at the frequency gate
		// unaudited — they carry no information and would dominate the
		// trace volume — so only the target's adjacency needs visiting.
		d.charge(metrics.CostPairCheck, int64(n-1))
		pc := l.PairCountsOf(target)
		for k, r32 := range pc.Raters {
			rater := int(r32)
			cnt := int(pc.Total[k])
			if cnt < d.Thresholds.TN {
				if tracing {
					d.auditRater(l, target, rater, cnt, obs.GateTN)
				}
				continue
			}
			if float64(pc.Pos[k])/float64(cnt) < d.Thresholds.Ta {
				if tracing {
					d.auditRater(l, target, rater, cnt, obs.GateTA)
				}
				continue
			}
			// Fake identities concentrate their ratings on the
			// beneficiary; honest frequent customers spread theirs.
			if out := l.OutgoingTotal(rater); out == 0 ||
				float64(cnt)/float64(out) < minConc {
				if tracing {
					d.auditRater(l, target, rater, cnt, "concentration")
				}
				continue
			}
			if tracing {
				d.auditRater(l, target, rater, cnt, "booster")
			}
			boosters = append(boosters, rater)
			boosterRatings += cnt
		}
		if len(boosters) < minBoosters {
			if tracing && len(boosters) > 0 {
				d.Trace.Emit("sybil_audit",
					obs.Str("detector", d.Name()),
					obs.Int("target", target),
					obs.Int("boosters", len(boosters)),
					obs.Int("min_boosters", minBoosters),
					obs.Int("booster_ratings", boosterRatings),
					obs.Float("outside_share", -1),
					obs.Str("gate", "min_boosters"))
			}
			continue
		}
		// Outside test over everyone except the swarm.
		inSwarm := make(map[int]bool, len(boosters))
		for _, b := range boosters {
			inSwarm[b] = true
		}
		outTotal, outPos := 0, 0
		for k, r32 := range pc.Raters {
			if inSwarm[int(r32)] {
				continue
			}
			outTotal += int(pc.Total[k])
			outPos += int(pc.Pos[k])
		}
		d.charge(metrics.CostMatrixScan, int64(n))
		share := 0.0
		if outTotal > 0 {
			share = float64(outPos) / float64(outTotal)
		}
		corroborated := outTotal > 0 && share >= d.Thresholds.Tb
		if tracing {
			gate := obs.GateFlagged
			if corroborated {
				gate = obs.GateTBOutside
			}
			d.Trace.Emit("sybil_audit",
				obs.Str("detector", d.Name()),
				obs.Int("target", target),
				obs.Int("boosters", len(boosters)),
				obs.Int("min_boosters", minBoosters),
				obs.Int("booster_ratings", boosterRatings),
				obs.Float("outside_share", share),
				obs.Str("gate", gate))
		}
		if corroborated {
			continue // the outside world corroborates the reputation
		}
		finding := SybilFinding{
			Target:               target,
			Boosters:             boosters,
			BoosterRatings:       boosterRatings,
			OutsidePositiveShare: share,
		}
		res.Findings = append(res.Findings, finding)
		res.Flagged[target] = true
		for _, b := range boosters {
			res.Flagged[b] = true
		}
	}
	return res
}

func (d *SybilDetector) charge(name string, n int64) {
	if d.Meter != nil {
		d.Meter.Add(name, n)
	}
}

// auditRater emits one sybil_rater event for a rated (target, rater)
// relationship, recording which booster gate the rater stopped at.
func (d *SybilDetector) auditRater(l *reputation.Ledger, target, rater, cnt int, gate string) {
	conc := 0.0
	if out := l.OutgoingTotal(rater); out > 0 {
		conc = float64(cnt) / float64(out)
	}
	d.Trace.Emit("sybil_rater",
		obs.Str("detector", d.Name()),
		obs.Int("target", target),
		obs.Int("rater", rater),
		obs.Int("n", cnt),
		obs.Float("a", float64(l.PairPositive(target, rater))/float64(cnt)),
		obs.Float("concentration", conc),
		obs.Str("gate", gate))
}

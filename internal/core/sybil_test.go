package core

import (
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/reputation"
)

// plantSwarm floods target with all-positive ratings from each booster.
func plantSwarm(l *reputation.Ledger, target int, boosters []int, ratings int) {
	for _, b := range boosters {
		for k := 0; k < ratings; k++ {
			l.Record(b, target, 1)
		}
	}
}

func TestSybilDetectsSwarm(t *testing.T) {
	const n = 24
	l := reputation.NewLedger(n)
	boosters := []int{10, 11, 12, 13}
	plantSwarm(l, 1, boosters, 25)
	// The outside world rates the beneficiary down.
	for k := 0; k < 8; k++ {
		l.Record(16+k%4, 1, -1)
	}
	// Honest background.
	for k := 0; k < 60; k++ {
		l.Record(16+k%6, 5, 1)
	}

	d := NewSybilDetector(DefaultThresholds())
	res := d.Detect(l)
	if len(res.Findings) != 1 || !res.HasTarget(1) {
		t.Fatalf("findings = %+v, want target 1", res.Findings)
	}
	f := res.Findings[0]
	if len(f.Boosters) != 4 || f.BoosterRatings != 100 {
		t.Fatalf("finding = %+v", f)
	}
	if f.OutsidePositiveShare != 0 {
		t.Fatalf("outside share = %v, want 0", f.OutsidePositiveShare)
	}
	for _, b := range boosters {
		if !res.Flagged[b] {
			t.Fatalf("booster %d not flagged", b)
		}
	}
	if res.Flagged[5] {
		t.Fatal("honest node flagged")
	}
	nodes := res.FlaggedNodes()
	if len(nodes) != 5 {
		t.Fatalf("flagged = %v", nodes)
	}
}

// One-way swarms are invisible to both pairwise detection (no
// reciprocity) and group detection (no strongly connected structure);
// this is precisely the gap the Sybil detector closes.
func TestPairAndGroupDetectorsMissSwarm(t *testing.T) {
	const n = 24
	l := reputation.NewLedger(n)
	plantSwarm(l, 1, []int{10, 11, 12, 13}, 25)
	for k := 0; k < 8; k++ {
		l.Record(16+k%4, 1, -1)
	}

	if res := NewBasic(DefaultThresholds()).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("basic flagged swarm: %+v", res.Pairs)
	}
	if res := NewOptimized(DefaultThresholds()).Detect(l); len(res.Pairs) != 0 {
		t.Fatalf("optimized flagged swarm: %+v", res.Pairs)
	}
	if res := NewGroupDetector(DefaultThresholds()).Detect(l); len(res.Groups) != 0 {
		t.Fatalf("group detector flagged swarm: %+v", res.Groups)
	}
	if res := NewSybilDetector(DefaultThresholds()).Detect(l); !res.HasTarget(1) {
		t.Fatalf("sybil detector missed swarm: %+v", res.Findings)
	}
}

func TestSybilIgnoresHonestPopularity(t *testing.T) {
	// A genuinely good seller with several loyal frequent customers: the
	// outside world also rates it positively, so C2 fails.
	const n = 24
	l := reputation.NewLedger(n)
	plantSwarm(l, 1, []int{10, 11, 12}, 25) // loyal regulars
	for k := 0; k < 40; k++ {
		l.Record(16+k%6, 1, 1) // the crowd agrees
	}
	res := NewSybilDetector(DefaultThresholds()).Detect(l)
	if len(res.Findings) != 0 {
		t.Fatalf("honest popularity flagged: %+v", res.Findings)
	}
}

func TestSybilBelowMinBoosters(t *testing.T) {
	const n = 16
	l := reputation.NewLedger(n)
	plantSwarm(l, 1, []int{10, 11}, 25) // swarm of two: the pairwise regime
	for k := 0; k < 6; k++ {
		l.Record(12+k%3, 1, -1)
	}
	res := NewSybilDetector(DefaultThresholds()).Detect(l)
	if len(res.Findings) != 0 {
		t.Fatalf("two boosters flagged as a swarm: %+v", res.Findings)
	}
	d := NewSybilDetector(DefaultThresholds())
	d.MinBoosters = 2
	if res := d.Detect(l); !res.HasTarget(1) {
		t.Fatal("MinBoosters=2 should catch the two-booster swarm")
	}
}

func TestSybilLowReputedTargetSkipped(t *testing.T) {
	const n = 16
	l := reputation.NewLedger(n)
	plantSwarm(l, 1, []int{10, 11, 12}, 25)
	// Sink the beneficiary's summation below TR despite the swarm.
	for k := 0; k < 120; k++ {
		l.Record(4+k%5, 1, -1)
	}
	res := NewSybilDetector(DefaultThresholds()).Detect(l)
	if len(res.Findings) != 0 {
		t.Fatalf("low-reputed target flagged: %+v", res.Findings)
	}
}

func TestSybilNoOutsideRatingsIsSuspicious(t *testing.T) {
	// All of the beneficiary's ratings come from the swarm.
	const n = 16
	l := reputation.NewLedger(n)
	plantSwarm(l, 1, []int{10, 11, 12}, 25)
	res := NewSybilDetector(DefaultThresholds()).Detect(l)
	if !res.HasTarget(1) {
		t.Fatalf("swarm-only reputation not flagged: %+v", res.Findings)
	}
}

func TestSybilMultipleTargets(t *testing.T) {
	const n = 32
	l := reputation.NewLedger(n)
	plantSwarm(l, 1, []int{10, 11, 12}, 25)
	plantSwarm(l, 2, []int{20, 21, 22, 23}, 22)
	for k := 0; k < 6; k++ {
		l.Record(26+k%3, 1, -1)
		l.Record(26+k%3, 2, -1)
	}
	res := NewSybilDetector(DefaultThresholds()).Detect(l)
	if !res.HasTarget(1) || !res.HasTarget(2) {
		t.Fatalf("findings = %+v, want targets 1 and 2", res.Findings)
	}
}

// A frequent all-positive rater that also rates many other nodes is a
// loyal customer, not a fake identity: the concentration criterion keeps
// it out of the swarm.
func TestSybilConcentrationExcludesBusyRaters(t *testing.T) {
	const n = 24
	l := reputation.NewLedger(n)
	// Raters 10-12 each give target 1 twenty-five positives but also
	// spread three times as many ratings over other nodes.
	for _, r := range []int{10, 11, 12} {
		for k := 0; k < 25; k++ {
			l.Record(r, 1, 1)
		}
		for k := 0; k < 75; k++ {
			l.Record(r, 14+k%6, 1)
		}
	}
	for k := 0; k < 8; k++ {
		l.Record(20+k%3, 1, -1)
	}
	res := NewSybilDetector(DefaultThresholds()).Detect(l)
	if len(res.Findings) != 0 {
		t.Fatalf("busy raters misread as a swarm: %+v", res.Findings)
	}
}

func TestSybilCostAccounting(t *testing.T) {
	var meter metrics.CostMeter
	const n = 16
	l := reputation.NewLedger(n)
	plantSwarm(l, 1, []int{10, 11, 12}, 25)
	d := NewSybilDetector(DefaultThresholds())
	d.Meter = &meter
	d.Detect(l)
	if meter.Get(metrics.CostPairCheck) == 0 || meter.Get(metrics.CostMatrixScan) == 0 {
		t.Fatal("costs not counted")
	}
}

func BenchmarkSybilDetect200(b *testing.B) {
	l := benchLedger(200)
	plantSwarm(l, 50, []int{60, 61, 62, 63, 64}, 30)
	d := NewSybilDetector(DefaultThresholds())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

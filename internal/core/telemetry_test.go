package core

import (
	"testing"

	"github.com/p2psim/collusion/internal/obs"
)

// TestTelemetryOffAddsNoAllocs pins the span acceptance criterion: a
// disabled span tracer (nil, or built on a nil sink) adds zero
// allocations to the detect hot loop, full and incremental, on both
// detectors — the Enabled guard must short-circuit before any
// bracketing work.
func TestTelemetryOffAddsNoAllocs(t *testing.T) {
	l := benchLedger(200)
	dirty := make([]int, l.Size())
	for i := range dirty {
		dirty[i] = i
	}

	t.Run("basic", func(t *testing.T) {
		bare := NewBasic(DefaultThresholds())
		baseline := testing.AllocsPerRun(5, func() { bare.Detect(l) })
		off := NewBasic(DefaultThresholds())
		off.Spans = obs.NewSpanTracer(nil, nil)
		if got := testing.AllocsPerRun(5, func() { off.Detect(l) }); got != baseline {
			t.Fatalf("disabled span tracer changed Detect allocations: %v, baseline %v", got, baseline)
		}
		incBase := testing.AllocsPerRun(5, func() { bare.DetectIncremental(l, dirty) })
		if got := testing.AllocsPerRun(5, func() { off.DetectIncremental(l, dirty) }); got != incBase {
			t.Fatalf("disabled span tracer changed DetectIncremental allocations: %v, baseline %v", got, incBase)
		}
	})
	t.Run("optimized", func(t *testing.T) {
		bare := NewOptimized(DefaultThresholds())
		baseline := testing.AllocsPerRun(5, func() { bare.Detect(l) })
		off := NewOptimized(DefaultThresholds())
		off.Spans = obs.NewSpanTracer(nil, nil)
		if got := testing.AllocsPerRun(5, func() { off.Detect(l) }); got != baseline {
			t.Fatalf("disabled span tracer changed Detect allocations: %v, baseline %v", got, baseline)
		}
		incBase := testing.AllocsPerRun(5, func() { bare.DetectIncremental(l, dirty) })
		if got := testing.AllocsPerRun(5, func() { off.DetectIncremental(l, dirty) }); got != incBase {
			t.Fatalf("disabled span tracer changed DetectIncremental allocations: %v, baseline %v", got, incBase)
		}
	})
}

// BenchmarkBasicDetect200SpansDisabled is BenchmarkBasicDetect200 with a
// disabled span tracer attached, so `benchjson -compare` can show spans-off
// detection is within noise of the bare detector.
func BenchmarkBasicDetect200SpansDisabled(b *testing.B) {
	l := benchLedger(200)
	d := NewBasic(DefaultThresholds())
	d.Spans = obs.NewSpanTracer(nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

// BenchmarkOptimizedDetect200SpansDisabled is the optimized-detector
// counterpart of BenchmarkBasicDetect200SpansDisabled.
func BenchmarkOptimizedDetect200SpansDisabled(b *testing.B) {
	l := benchLedger(200)
	d := NewOptimized(DefaultThresholds())
	d.Spans = obs.NewSpanTracer(nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(l)
	}
}

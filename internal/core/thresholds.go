// Package core implements the paper's contribution: the collusion
// detection methods of Section IV.
//
// Both detectors consume a period's rating ledger and flag pairs of nodes
// that match the collusion model built from characteristics C1-C5: two
// high-reputed nodes (C1, C5) that rate each other frequently (C4) and
// almost always positively (C3), while the rest of the network rates them
// mostly negatively (C2).
//
//   - The basic ("Unoptimized") detector follows Section IV-B literally:
//     for every high-reputed node it examines each rater and, when the
//     rater is frequent and positive, re-scans the node's whole matrix row
//     to compute the outside positive share b. Complexity O(mn²)
//     (Proposition 4.1).
//
//   - The optimized detector (Section IV-C) replaces the row re-scan with
//     the closed-form reputation bounds of Formula (2), derived from the
//     summation reputation identity of Formula (1). Checking a candidate
//     needs only R_i, N_i and N_(i,j). Complexity O(mn)
//     (Proposition 4.2).
//
// The detectors report the same pairs on the workloads the paper studies;
// formally, every pair the basic method flags is also flagged by the
// optimized method whenever ratings are strictly ±1 (see the package
// tests for the proof-by-property).
package core

import "fmt"

// Thresholds holds the detection parameters of Section IV-B.
type Thresholds struct {
	// TR is the high-reputation threshold: only nodes whose summation
	// reputation is at least TR are examined (colluders seek high
	// reputation, C1).
	TR float64
	// TN is the rating-frequency threshold per period T (paper: 20/year
	// from the Amazon trace, C4).
	TN int
	// Ta is the minimum positive share of the suspect rater's ratings
	// (C3). The trace analysis measured a ≈ 0.98 for suspects.
	Ta float64
	// Tb is the maximum positive share of everyone else's ratings (C2).
	// The trace analysis measured b ≈ 0.016 for suspects.
	Tb float64
	// StrictReverse selects the literal Section IV algorithm, which
	// repeats the outside-share test (b < Tb) on the partner's side.
	//
	// The default (false) drops that second outside-share test: a pair is
	// flagged when one member's reputation is manufactured by the other
	// (frequency, a >= Ta, b < Tb) and the reciprocal rating relationship
	// is also frequent and almost-always positive. The literal rule cannot
	// reproduce Figure 11 — a compromised pretrusted node serves honestly,
	// so its own outside ratings stay positive and the second b-test always
	// clears it — whereas the paper reports compromised pretrusted nodes
	// being detected and zeroed. Reciprocating a reputation-manufacturing
	// relationship is itself the collusion signature, so the relaxed
	// reverse test preserves the model while matching the reported
	// behavior.
	StrictReverse bool
}

// DefaultThresholds returns the parameters used throughout the paper's
// evaluation: T_N = 20 per period, with T_a and T_b placed conservatively
// between the measured colluder statistics (a≈0.98, b≈0.02) and normal
// behavior. TR defaults to 1: any node with positive summation reputation
// is worth examining; hosts with their own trust scale pass candidates
// explicitly via DetectAmong.
func DefaultThresholds() Thresholds {
	return Thresholds{TR: 1, TN: 20, Ta: 0.8, Tb: 0.2}
}

// Validate reports the first invalid parameter, if any.
func (t Thresholds) Validate() error {
	if t.TN < 1 {
		return fmt.Errorf("core: TN = %d, want >= 1", t.TN)
	}
	if t.Ta < 0 || t.Ta > 1 {
		return fmt.Errorf("core: Ta = %v outside [0,1]", t.Ta)
	}
	if t.Tb < 0 || t.Tb > 1 {
		return fmt.Errorf("core: Tb = %v outside [0,1]", t.Tb)
	}
	if t.Ta <= t.Tb {
		return fmt.Errorf("core: Ta (%v) must exceed Tb (%v) to separate colluders from the crowd", t.Ta, t.Tb)
	}
	return nil
}

// FormulaReputation evaluates Formula (1): the summation reputation of a
// node that received ni ratings in total, nij of them from one rater whose
// positive share is a, while the positive share of the other ni-nij
// ratings is b. The identity holds exactly when every rating is ±1.
func FormulaReputation(ni, nij int, a, b float64) float64 {
	return 2*b*float64(ni-nij) + 2*a*float64(nij) - float64(ni)
}

// ReputationBounds returns the Formula (2) interval [lo, hi]: if the
// rater's positive share is at least Ta and everyone else's share is at
// most Tb, the node's summation reputation must lie within it.
func (t Thresholds) ReputationBounds(ni, nij int) (lo, hi float64) {
	lo = 2*t.Ta*float64(nij) - float64(ni)
	hi = 2*t.Tb*float64(ni-nij) + 2*float64(nij) - float64(ni)
	return lo, hi
}

// BoundsHold reports whether reputation r satisfies Formula (2) for the
// given totals, i.e. whether the node's reputation is consistent with
// being propped up by the single rater.
func (t Thresholds) BoundsHold(r float64, ni, nij int) bool {
	lo, hi := t.ReputationBounds(ni, nij)
	return r >= lo && r <= hi
}

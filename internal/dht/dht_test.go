package dht

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/rng"
)

func TestNewSpaceValidation(t *testing.T) {
	for _, bits := range []uint{0, 65} {
		if _, err := NewSpace(bits); err == nil {
			t.Errorf("NewSpace(%d) accepted", bits)
		}
	}
	for _, bits := range []uint{1, 4, 32, 64} {
		if _, err := NewSpace(bits); err != nil {
			t.Errorf("NewSpace(%d) rejected: %v", bits, err)
		}
	}
}

func TestSpaceMask(t *testing.T) {
	s, _ := NewSpace(4)
	if s.Mask() != 0xF {
		t.Fatalf("4-bit mask = %x", s.Mask())
	}
	s64, _ := NewSpace(64)
	if s64.Mask() != ^ID(0) {
		t.Fatalf("64-bit mask = %x", s64.Mask())
	}
}

func TestSpaceHashWithinMask(t *testing.T) {
	s, _ := NewSpace(16)
	for i := 0; i < 1000; i++ {
		if id := s.HashInt(i); id > s.Mask() {
			t.Fatalf("HashInt(%d) = %d exceeds mask", i, id)
		}
	}
	if s.HashString("abc") != s.HashString("abc") {
		t.Fatal("HashString not deterministic")
	}
}

func TestSpaceAddWraps(t *testing.T) {
	s, _ := NewSpace(4)
	if got := s.Add(15, 1); got != 0 {
		t.Fatalf("Add(15,1) = %d, want 0", got)
	}
	if got := s.Add(10, 8); got != 2 {
		t.Fatalf("Add(10,8) = %d, want 2", got)
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		x, a, b ID
		want    bool
	}{
		{5, 2, 8, true},
		{2, 2, 8, false},
		{8, 2, 8, false},
		{9, 8, 2, true},  // wraparound
		{1, 8, 2, true},  // wraparound
		{5, 8, 2, false}, // wraparound
		{3, 4, 4, true},  // a == b: full circle except a itself
		{4, 4, 4, false},
	}
	for _, c := range cases {
		if got := Between(c.x, c.a, c.b); got != c.want {
			t.Errorf("Between(%d,%d,%d) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestBetweenRightIncl(t *testing.T) {
	if !BetweenRightIncl(8, 2, 8) {
		t.Fatal("(2,8] should contain 8")
	}
	if BetweenRightIncl(2, 2, 8) {
		t.Fatal("(2,8] should not contain 2")
	}
	if !BetweenRightIncl(0, 15, 3) {
		t.Fatal("(15,3] should contain 0")
	}
}

// buildPaperRing reproduces Figure 2: a 4-bit ring with nodes 1, 6, 10, 15.
func buildPaperRing(t *testing.T) *Ring {
	t.Helper()
	r, err := NewRing(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []ID{1, 6, 10, 15} {
		if _, err := r.AddNodeWithID(id, fmt.Sprintf("n%d", id)); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestPaperExampleOwnership(t *testing.T) {
	r := buildPaperRing(t)
	// Ownership follows Chord: the owner of key k is the first node with
	// ID >= k, wrapping around the 4-bit circle of Figure 2.
	cases := map[ID]ID{0: 1, 1: 1, 2: 6, 6: 6, 7: 10, 10: 10, 11: 15, 15: 15}
	for key, want := range cases {
		owner, err := r.Owner(key)
		if err != nil {
			t.Fatal(err)
		}
		if owner.ID() != want {
			t.Errorf("Owner(%d) = %d, want %d", key, owner.ID(), want)
		}
	}
}

func TestRoutingMatchesOwnership(t *testing.T) {
	r := buildPaperRing(t)
	for key := ID(0); key <= 15; key++ {
		owner, _ := r.Owner(key)
		for _, start := range r.Nodes() {
			got, hops, err := r.FindSuccessor(start, key)
			if err != nil {
				t.Fatalf("FindSuccessor(%v, %d): %v", start.Name(), key, err)
			}
			if got != owner {
				t.Fatalf("routing from %s to key %d reached %d, want %d",
					start.Name(), key, got.ID(), owner.ID())
			}
			if hops > 8 {
				t.Fatalf("routing took %d hops on a 4-node ring", hops)
			}
		}
	}
}

func TestSingleNodeRing(t *testing.T) {
	r, _ := NewRing(8, nil)
	n, err := r.AddNodeWithID(42, "only")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []ID{0, 42, 43, 255} {
		owner, hops, err := r.FindSuccessor(nil, key)
		if err != nil {
			t.Fatal(err)
		}
		if owner != n {
			t.Fatalf("single node does not own key %d", key)
		}
		if hops != 0 {
			t.Fatalf("single-node lookup took %d hops", hops)
		}
	}
}

func TestEmptyRingErrors(t *testing.T) {
	r, _ := NewRing(8, nil)
	if _, _, err := r.FindSuccessor(nil, 1); err == nil {
		t.Fatal("FindSuccessor on empty ring succeeded")
	}
	if _, err := r.Owner(1); err == nil {
		t.Fatal("Owner on empty ring succeeded")
	}
	if _, err := r.Insert(1, "x"); err == nil {
		t.Fatal("Insert on empty ring succeeded")
	}
	if _, _, err := r.Lookup(1); err == nil {
		t.Fatal("Lookup on empty ring succeeded")
	}
	if err := r.RemoveNode(1); err == nil {
		t.Fatal("RemoveNode on empty ring succeeded")
	}
}

func TestIDCollisionRejected(t *testing.T) {
	r, _ := NewRing(8, nil)
	if _, err := r.AddNodeWithID(5, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddNodeWithID(5, "b"); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestInsertLookup(t *testing.T) {
	r := buildPaperRing(t)
	if _, err := r.Insert(10, "rating-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(10, "rating-2"); err != nil {
		t.Fatal(err)
	}
	vals, _, err := r.Lookup(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != "rating-1" || vals[1] != "rating-2" {
		t.Fatalf("Lookup(10) = %v", vals)
	}
	// Values live at the owner.
	owner, _ := r.Owner(10)
	if owner.ID() != 10 || len(owner.StoredKeys()) != 1 {
		t.Fatalf("owner store wrong: %v", owner.StoredKeys())
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	r := buildPaperRing(t)
	if _, err := r.Insert(3, "a"); err != nil {
		t.Fatal(err)
	}
	vals, _, _ := r.Lookup(3)
	vals[0] = "mutated"
	vals2, _, _ := r.Lookup(3)
	if vals2[0] != "a" {
		t.Fatal("Lookup exposed internal storage")
	}
}

func TestKeyRehomingOnJoin(t *testing.T) {
	r, _ := NewRing(6, nil)
	if _, err := r.AddNodeWithID(50, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(10, "v"); err != nil {
		t.Fatal(err)
	}
	// Key 10 is owned by node 50 (only node). After node 20 joins, the
	// owner of key 10 becomes node 20 and the value must move.
	n20, err := r.AddNodeWithID(20, "b")
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := r.Lookup(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != "v" {
		t.Fatalf("value lost on join: %v", vals)
	}
	if got := n20.store[10]; len(got) != 1 {
		t.Fatal("value did not move to the new owner")
	}
}

func TestKeyRehomingOnLeave(t *testing.T) {
	r, _ := NewRing(6, nil)
	r.AddNodeWithID(20, "a")
	r.AddNodeWithID(50, "b")
	if _, err := r.Insert(10, "v"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveNode(20); err != nil {
		t.Fatal(err)
	}
	vals, _, err := r.Lookup(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != "v" {
		t.Fatalf("value lost on leave: %v", vals)
	}
}

func TestMessageCounting(t *testing.T) {
	var meter metrics.CostMeter
	r, _ := NewRing(16, &meter)
	for i := 0; i < 32; i++ {
		if _, err := r.AddNode(fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := meter.Get(metrics.CostDHTMessage)
	if _, _, err := r.Lookup(12345); err != nil {
		t.Fatal(err)
	}
	if meter.Get(metrics.CostDHTMessage) <= before {
		t.Fatal("lookup did not count messages")
	}
}

func TestLogarithmicHops(t *testing.T) {
	r, _ := NewRing(32, nil)
	const n = 256
	for i := 0; i < n; i++ {
		if _, err := r.AddNode(fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rand := rng.New(1)
	maxHops := 0
	total := 0
	const lookups = 500
	for i := 0; i < lookups; i++ {
		key := ID(rand.Uint64()) & r.Space().Mask()
		_, hops, err := r.FindSuccessor(r.nodes[rand.Intn(n)], key)
		if err != nil {
			t.Fatal(err)
		}
		if hops > maxHops {
			maxHops = hops
		}
		total += hops
	}
	// log2(256) = 8; allow generous slack but reject linear behavior.
	if maxHops > 20 {
		t.Fatalf("max hops = %d on a 256-node ring, expected O(log n)", maxHops)
	}
	if avg := float64(total) / lookups; avg > 10 {
		t.Fatalf("average hops = %v, expected around log2(256)/2", avg)
	}
}

// Property: for random topologies and keys, finger routing agrees with
// brute-force successor ownership from every start node.
func TestQuickRoutingAgreesWithBruteForce(t *testing.T) {
	f := func(seed uint64, rawIDs []uint16, rawKeys []uint16) bool {
		if len(rawIDs) == 0 {
			return true
		}
		if len(rawIDs) > 24 {
			rawIDs = rawIDs[:24]
		}
		if len(rawKeys) > 24 {
			rawKeys = rawKeys[:24]
		}
		r, err := NewRing(16, nil)
		if err != nil {
			return false
		}
		for i, raw := range rawIDs {
			// Collisions in the random data are fine; skip them.
			_, _ = r.AddNodeWithID(ID(raw), fmt.Sprintf("n%d", i))
		}
		if r.Len() == 0 {
			return true
		}
		rand := rng.New(seed)
		for _, rawKey := range rawKeys {
			key := ID(rawKey)
			want, _ := r.Owner(key)
			start := r.nodes[rand.Intn(r.Len())]
			got, _, err := r.FindSuccessor(start, key)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every key has exactly one owner and the owners partition the
// key space consistently with node IDs.
func TestQuickOwnershipPartition(t *testing.T) {
	f := func(rawIDs []uint8) bool {
		r, err := NewRing(8, nil)
		if err != nil {
			return false
		}
		for i, raw := range rawIDs {
			_, _ = r.AddNodeWithID(ID(raw), fmt.Sprintf("n%d", i))
		}
		if r.Len() == 0 {
			return true
		}
		counts := map[ID]int{}
		for key := ID(0); key <= 255; key++ {
			owner, err := r.Owner(key)
			if err != nil {
				return false
			}
			counts[owner.ID()]++
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == 256 && len(counts) == r.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFindSuccessor256(b *testing.B) {
	r, _ := NewRing(32, nil)
	for i := 0; i < 256; i++ {
		if _, err := r.AddNode(fmt.Sprintf("node-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	rand := rng.New(1)
	keys := make([]ID, 1024)
	for i := range keys {
		keys[i] = ID(rand.Uint64()) & r.Space().Mask()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.FindSuccessor(nil, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, _ := NewRing(32, nil)
		for j := 0; j < 64; j++ {
			if _, err := r.AddNode(fmt.Sprintf("node-%d", j)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

package dht_test

import (
	"fmt"

	"github.com/p2psim/collusion/internal/dht"
)

// Example reproduces the paper's Figure 2: a 4-bit Chord ring with nodes
// 1, 6, 10 and 15, where ratings for node 10 are inserted under key 10 and
// served by its owner.
func Example() {
	ring, err := dht.NewRing(4, nil)
	if err != nil {
		panic(err)
	}
	for _, id := range []dht.ID{1, 6, 10, 15} {
		if _, err := ring.AddNodeWithID(id, fmt.Sprintf("n%d", id)); err != nil {
			panic(err)
		}
	}
	// Insert(10, r10): other nodes report node 10's local reputation.
	if _, err := ring.Insert(10, "r10"); err != nil {
		panic(err)
	}
	owner, _ := ring.Owner(10)
	fmt.Println("owner of key 10:", owner.Name())

	// Lookup(10): a client queries node 10's reputation.
	vals, hops, err := ring.Lookup(10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("lookup found %v (%d routing hops)\n", vals, hops)

	// Key 11 wraps to the next node on the circle.
	owner11, _ := ring.Owner(11)
	fmt.Println("owner of key 11:", owner11.Name())
	// Output:
	// owner of key 10: n10
	// lookup found [r10] (2 routing hops)
	// owner of key 11: n15
}

package dht

import (
	"fmt"
	"sort"
)

// Failure tolerance. A deployed Chord ring keeps an r-entry successor list
// per node so lookups survive node failures, and re-replicates keys when a
// node departs abruptly (Stoica et al., Section 6). This file adds the
// same machinery to the simulated ring: nodes can Fail (crash without
// handing off state), lookups route around failed nodes using successor
// lists, and keys stored at a failed node are recoverable exactly when
// replication was enabled.

// SuccessorListLength is the default number of successors each node
// tracks; log2(n) entries suffice with high probability, and 8 covers
// rings up to ~256 nodes.
const SuccessorListLength = 8

// Successors returns the node's successor list (up to SuccessorListLength
// live nodes following it on the ring).
func (n *Node) Successors() []*Node {
	return append([]*Node(nil), n.succList...)
}

// Alive reports whether the node has not failed.
func (n *Node) Alive() bool { return !n.failed }

// ReplicationFactor returns how many successors receive a copy of each
// key stored on the ring (0 = no replication).
func (r *Ring) ReplicationFactor() int { return r.replicas }

// SetReplicationFactor enables storing each key at the owner plus k
// successors. Existing keys are re-replicated immediately.
func (r *Ring) SetReplicationFactor(k int) error {
	if k < 0 {
		return fmt.Errorf("dht: replication factor %d, want >= 0", k)
	}
	r.replicas = k
	r.replicateAll()
	return nil
}

// replicateAll re-copies every primary key to the owner's k successors.
func (r *Ring) replicateAll() {
	if r.replicas == 0 {
		return
	}
	for _, n := range r.liveNodes() {
		for key, vals := range n.store {
			if owner := r.successor(key); owner == n {
				r.replicate(key, vals)
			}
		}
	}
}

// replicate copies values of key onto the owner's k live successors.
func (r *Ring) replicate(key ID, vals []any) {
	owner := r.successor(key)
	cur := owner
	for i := 0; i < r.replicas; i++ {
		cur = cur.succ
		if cur == nil || cur == owner {
			break
		}
		if cur.replicaStore == nil {
			cur.replicaStore = make(map[ID][]any)
		}
		cur.replicaStore[key] = append([]any(nil), vals...)
	}
}

// Fail crashes a node: its primary store is lost (unlike RemoveNode, which
// models a graceful departure with hand-off). Lookups recover the keys
// only if replication was enabled. Returns an error for unknown nodes.
func (r *Ring) Fail(id ID) error {
	n, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("dht: no node with ID %d", id)
	}
	if n.failed {
		return fmt.Errorf("dht: node %d already failed", id)
	}
	n.failed = true
	delete(r.byID, id)
	for i, node := range r.nodes {
		if node == n {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			break
		}
	}
	// Crash: the primary store vanishes with the node.
	n.store = map[ID][]any{}
	r.rebuild()
	// Promote surviving replicas of the failed node's keys to the new
	// owners, as the stabilization protocol would.
	r.promoteReplicas()
	return nil
}

// promoteReplicas moves replica copies whose primary owner changed into
// the new owner's primary store, then refreshes replication.
func (r *Ring) promoteReplicas() {
	if r.replicas == 0 || len(r.nodes) == 0 {
		return
	}
	for _, n := range r.liveNodes() {
		for key, vals := range n.replicaStore {
			owner := r.successor(key)
			if len(owner.store[key]) == 0 {
				owner.store[key] = append([]any(nil), vals...)
			}
		}
	}
	// Rebuild replica sets for the new topology.
	for _, n := range r.liveNodes() {
		n.replicaStore = map[ID][]any{}
	}
	r.replicateAll()
}

// liveNodes returns the current members in ascending ID order.
func (r *Ring) liveNodes() []*Node {
	out := make([]*Node, len(r.nodes))
	copy(out, r.nodes)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// buildSuccessorLists fills each node's successor list from the sorted
// membership; called from rebuild.
func (r *Ring) buildSuccessorLists() {
	n := len(r.nodes)
	if n == 0 {
		return
	}
	length := SuccessorListLength
	if length > n-1 {
		length = n - 1
	}
	for i, node := range r.nodes {
		node.succList = node.succList[:0]
		for k := 1; k <= length; k++ {
			node.succList = append(node.succList, r.nodes[(i+k)%n])
		}
	}
}

// LookupWithFallback routes to the owner of key; if the routed-to node has
// failed mid-flight (a race a deployment must tolerate), the lookup falls
// back along the predecessor's successor list. It returns the values, the
// serving node, and the hops taken.
func (r *Ring) LookupWithFallback(key ID) ([]any, *Node, int, error) {
	owner, hops, err := r.FindSuccessor(nil, key)
	if err != nil {
		return nil, nil, hops, err
	}
	if owner.Alive() {
		return append([]any(nil), owner.store[key]...), owner, hops, nil
	}
	// Walk the failed owner's successor list for a live replica holder.
	for _, succ := range owner.succList {
		hops++
		r.countHop()
		if !succ.Alive() {
			continue
		}
		if vals, ok := succ.replicaStore[key]; ok {
			return append([]any(nil), vals...), succ, hops, nil
		}
		if vals, ok := succ.store[key]; ok {
			return append([]any(nil), vals...), succ, hops, nil
		}
		return nil, succ, hops, nil
	}
	return nil, nil, hops, fmt.Errorf("dht: no live successor holds key %d", key)
}

package dht

import (
	"fmt"
	"sync"
	"testing"

	"github.com/p2psim/collusion/internal/rng"
)

func buildRing(t *testing.T, n int, replicas int) *Ring {
	t.Helper()
	r, err := NewRing(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := r.AddNode(fmt.Sprintf("node-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if replicas > 0 {
		if err := r.SetReplicationFactor(replicas); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestSuccessorListsBuilt(t *testing.T) {
	r := buildRing(t, 16, 0)
	for _, n := range r.Nodes() {
		succ := n.Successors()
		if len(succ) != SuccessorListLength {
			t.Fatalf("node %s has %d successors, want %d", n.Name(), len(succ), SuccessorListLength)
		}
		if succ[0] != n.Successor() {
			t.Fatal("first successor-list entry is not the direct successor")
		}
		// Entries must be distinct and exclude the node itself.
		seen := map[ID]bool{n.ID(): true}
		for _, s := range succ {
			if seen[s.ID()] {
				t.Fatalf("duplicate or self entry in successor list of %s", n.Name())
			}
			seen[s.ID()] = true
		}
	}
}

func TestSuccessorListShortRing(t *testing.T) {
	r := buildRing(t, 3, 0)
	for _, n := range r.Nodes() {
		if got := len(n.Successors()); got != 2 {
			t.Fatalf("3-node ring successor list = %d, want 2", got)
		}
	}
}

func TestSetReplicationFactorValidation(t *testing.T) {
	r := buildRing(t, 4, 0)
	if err := r.SetReplicationFactor(-1); err == nil {
		t.Fatal("negative replication accepted")
	}
	if err := r.SetReplicationFactor(2); err != nil {
		t.Fatal(err)
	}
	if r.ReplicationFactor() != 2 {
		t.Fatalf("replication factor = %d", r.ReplicationFactor())
	}
}

func TestFailUnknownNode(t *testing.T) {
	r := buildRing(t, 4, 0)
	if err := r.Fail(999999); err == nil {
		t.Fatal("failing unknown node succeeded")
	}
}

func TestFailWithoutReplicationLosesKeys(t *testing.T) {
	r := buildRing(t, 8, 0)
	key := r.Space().HashString("some-key")
	if _, err := r.Insert(key, "v"); err != nil {
		t.Fatal(err)
	}
	owner, _ := r.Owner(key)
	if err := r.Fail(owner.ID()); err != nil {
		t.Fatal(err)
	}
	vals, _, err := r.Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 0 {
		t.Fatalf("crashed node's keys survived without replication: %v", vals)
	}
}

func TestFailWithReplicationRecoversKeys(t *testing.T) {
	r := buildRing(t, 8, 2)
	key := r.Space().HashString("replicated-key")
	if _, err := r.Insert(key, "v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(key, "v2"); err != nil {
		t.Fatal(err)
	}
	owner, _ := r.Owner(key)
	if err := r.Fail(owner.ID()); err != nil {
		t.Fatal(err)
	}
	vals, _, err := r.Lookup(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != "v1" || vals[1] != "v2" {
		t.Fatalf("recovered values = %v, want [v1 v2]", vals)
	}
}

func TestSequentialFailuresWithReplication(t *testing.T) {
	r := buildRing(t, 12, 3)
	keys := make([]ID, 20)
	for i := range keys {
		keys[i] = r.Space().HashString(fmt.Sprintf("key-%d", i))
		if _, err := r.Insert(keys[i], i); err != nil {
			t.Fatal(err)
		}
	}
	// Fail three nodes, one at a time (each failure is followed by
	// re-replication, as stabilization would do).
	rand := rng.New(5)
	for k := 0; k < 3; k++ {
		nodes := r.Nodes()
		victim := nodes[rand.Intn(len(nodes))]
		if err := r.Fail(victim.ID()); err != nil {
			t.Fatal(err)
		}
	}
	for i, key := range keys {
		vals, _, err := r.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != i {
			t.Fatalf("key %d lost after failures: %v", i, vals)
		}
	}
}

func TestRoutingCorrectAfterFailures(t *testing.T) {
	r := buildRing(t, 32, 0)
	rand := rng.New(9)
	for k := 0; k < 8; k++ {
		nodes := r.Nodes()
		if err := r.Fail(nodes[rand.Intn(len(nodes))].ID()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		key := ID(rand.Uint64()) & r.Space().Mask()
		want, err := r.Owner(key)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := r.FindSuccessor(nil, key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("routing to %d reached %d, want %d", key, got.ID(), want.ID())
		}
	}
}

func TestLookupWithFallback(t *testing.T) {
	r := buildRing(t, 8, 2)
	key := r.Space().HashString("fallback-key")
	if _, err := r.Insert(key, "v"); err != nil {
		t.Fatal(err)
	}
	vals, node, _, err := r.LookupWithFallback(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != "v" {
		t.Fatalf("fallback lookup on healthy ring = %v", vals)
	}
	if node == nil || !node.Alive() {
		t.Fatal("served by nil or dead node")
	}
}

func TestAliveFlag(t *testing.T) {
	r := buildRing(t, 4, 0)
	n := r.Nodes()[0]
	if !n.Alive() {
		t.Fatal("fresh node reported dead")
	}
	if err := r.Fail(n.ID()); err != nil {
		t.Fatal(err)
	}
	if n.Alive() {
		t.Fatal("failed node reported alive")
	}
	if err := r.Fail(n.ID()); err == nil {
		t.Fatal("double failure accepted")
	}
}

// Concurrent read-only lookups must be race-free once the topology is
// stable (run under -race).
func TestConcurrentLookups(t *testing.T) {
	r := buildRing(t, 64, 0)
	for i := 0; i < 50; i++ {
		if _, err := r.Insert(r.Space().HashInt(i), i); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rand := rng.New(seed)
			for i := 0; i < 500; i++ {
				key := r.Space().HashInt(rand.Intn(50))
				if _, _, err := r.Lookup(key); err != nil {
					errs <- err
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func BenchmarkFailAndRecover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, _ := NewRing(32, nil)
		for j := 0; j < 32; j++ {
			if _, err := r.AddNode(fmt.Sprintf("node-%d", j)); err != nil {
				b.Fatal(err)
			}
		}
		if err := r.SetReplicationFactor(2); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 50; j++ {
			if _, err := r.Insert(r.Space().HashInt(j), j); err != nil {
				b.Fatal(err)
			}
		}
		victim := r.Nodes()[0]
		b.StartTimer()
		if err := r.Fail(victim.ID()); err != nil {
			b.Fatal(err)
		}
	}
}

// Package dht implements the Chord distributed hash table used as the
// substrate of decentralized reputation systems in Section IV-A of the
// paper: reputation managers form a Chord ring, a node's ratings are stored
// at the owner of its hashed ID, and managers communicate with
// Insert(ID, value) / Lookup(ID) primitives. The implementation follows
// Stoica et al. (the paper's reference [22]): an m-bit circular identifier
// space, successor ownership, finger tables, and iterative O(log n)
// routing. Routing hops are counted as messages so the decentralized
// detection experiments can report communication cost.
package dht

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// ID is a point on the Chord identifier circle. Only the low Space.Bits
// bits are meaningful.
type ID uint64

// Space describes an m-bit circular identifier space.
type Space struct {
	Bits uint
}

// NewSpace returns an identifier space with the given number of bits.
// Bits must be in [1, 64].
func NewSpace(bits uint) (Space, error) {
	if bits < 1 || bits > 64 {
		return Space{}, fmt.Errorf("dht: space bits = %d, want 1..64", bits)
	}
	return Space{Bits: bits}, nil
}

// Mask returns the bitmask selecting valid identifier bits.
func (s Space) Mask() ID {
	if s.Bits >= 64 {
		return ^ID(0)
	}
	return ID(1)<<s.Bits - 1
}

// Size returns the number of points on the circle as a float (exact for
// Bits < 64); used only for diagnostics.
func (s Space) Size() float64 {
	return float64(uint64(s.Mask())) + 1
}

// Hash maps an arbitrary byte key onto the circle by truncating its SHA-1
// digest, the consistent-hashing construction referenced by the paper.
func (s Space) Hash(key []byte) ID {
	sum := sha1.Sum(key)
	return ID(binary.BigEndian.Uint64(sum[:8])) & s.Mask()
}

// HashString hashes a string key onto the circle.
func (s Space) HashString(key string) ID { return s.Hash([]byte(key)) }

// HashInt hashes an integer key (e.g. a node ID from the simulator) onto
// the circle.
func (s Space) HashInt(key int) ID {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(key))
	return s.Hash(buf[:])
}

// Add returns (a + d) on the circle.
func (s Space) Add(a ID, d uint64) ID {
	return (a + ID(d)) & s.Mask()
}

// Between reports whether x lies on the open arc (a, b) travelling
// clockwise from a to b. When a == b the arc covers the whole circle
// except a itself.
func Between(x, a, b ID) bool {
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}

// BetweenRightIncl reports whether x lies on the half-open arc (a, b]
// clockwise from a. This is the ownership test of Chord: key k belongs to
// successor(k), the first node whose ID equals or follows k.
func BetweenRightIncl(x, a, b ID) bool {
	if x == b {
		return true
	}
	return Between(x, a, b)
}

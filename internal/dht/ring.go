package dht

import (
	"fmt"
	"sort"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
)

// Node is a Chord participant: an identifier, a finger table, and a local
// key/value store for the keys it owns.
type Node struct {
	id           ID
	name         string
	fingers      []*Node // fingers[k] = successor(id + 2^k)
	succ         *Node
	pred         *Node
	succList     []*Node // r live successors for failure tolerance
	store        map[ID][]any
	replicaStore map[ID][]any // copies held on behalf of predecessors
	failed       bool
}

// ID returns the node's position on the circle.
func (n *Node) ID() ID { return n.id }

// Name returns the label the node was registered under.
func (n *Node) Name() string { return n.name }

// Successor returns the node's immediate successor on the ring.
func (n *Node) Successor() *Node { return n.succ }

// Predecessor returns the node's immediate predecessor on the ring.
func (n *Node) Predecessor() *Node { return n.pred }

// StoredKeys returns the keys currently stored at this node, ascending.
func (n *Node) StoredKeys() []ID {
	out := make([]ID, 0, len(n.store))
	for k := range n.store {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ring is an in-process simulation of a Chord overlay. It is deterministic:
// topology is rebuilt exactly (no probabilistic stabilization), while
// lookups still route through finger tables and report their hop counts,
// preserving the O(log n) message costs a deployment would pay.
//
// Ring is not safe for concurrent mutation; concurrent Lookups are safe
// once the topology is built.
type Ring struct {
	space    Space
	nodes    []*Node // sorted by id
	byID     map[ID]*Node
	meter    *metrics.CostMeter
	hops     *obs.Histogram // per-lookup hop counts, when observed
	replicas int            // successor copies per key (0 = none)
}

// NewRing creates an empty ring over an m-bit space. The meter, if non-nil,
// receives a metrics.CostDHTMessage increment per routing hop.
func NewRing(bits uint, meter *metrics.CostMeter) (*Ring, error) {
	space, err := NewSpace(bits)
	if err != nil {
		return nil, err
	}
	return &Ring{space: space, byID: make(map[ID]*Node), meter: meter}, nil
}

// Space returns the ring's identifier space.
func (r *Ring) Space() Space { return r.space }

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the ring's nodes in ascending ID order.
func (r *Ring) Nodes() []*Node {
	out := make([]*Node, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// AddNode joins a node whose ID is the hash of name and returns it.
// Keys are re-homed to preserve successor ownership.
func (r *Ring) AddNode(name string) (*Node, error) {
	return r.addNode(r.space.HashString(name), name)
}

// AddNodeWithID joins a node at an explicit position (useful for tests and
// for reproducing the paper's 4-bit example ring).
func (r *Ring) AddNodeWithID(id ID, name string) (*Node, error) {
	return r.addNode(id&r.space.Mask(), name)
}

func (r *Ring) addNode(id ID, name string) (*Node, error) {
	if _, exists := r.byID[id]; exists {
		return nil, fmt.Errorf("dht: ID collision at %d (node %q)", id, name)
	}
	n := &Node{id: id, name: name, store: make(map[ID][]any), replicaStore: make(map[ID][]any)}
	r.byID[id] = n
	r.nodes = append(r.nodes, n)
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i].id < r.nodes[j].id })
	r.rebuild()
	return n, nil
}

// RemoveNode departs a node; its stored keys are re-homed to the new owner.
func (r *Ring) RemoveNode(id ID) error {
	n, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("dht: no node with ID %d", id)
	}
	delete(r.byID, id)
	for i, node := range r.nodes {
		if node == n {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			break
		}
	}
	orphaned := n.store
	r.rebuild()
	if len(r.nodes) > 0 {
		for k, vals := range orphaned {
			owner := r.successor(k)
			owner.store[k] = append(owner.store[k], vals...)
		}
	}
	return nil
}

// rebuild recomputes successors, predecessors and finger tables exactly,
// then re-homes any keys whose owner changed.
func (r *Ring) rebuild() {
	n := len(r.nodes)
	if n == 0 {
		return
	}
	for i, node := range r.nodes {
		node.succ = r.nodes[(i+1)%n]
		node.pred = r.nodes[(i-1+n)%n]
		if node.fingers == nil || len(node.fingers) != int(r.space.Bits) {
			node.fingers = make([]*Node, r.space.Bits)
		}
		for k := uint(0); k < r.space.Bits; k++ {
			start := r.space.Add(node.id, 1<<k)
			node.fingers[k] = r.successor(start)
		}
	}
	// Re-home keys displaced by the topology change.
	for _, node := range r.nodes {
		for k, vals := range node.store {
			owner := r.successor(k)
			if owner != node {
				owner.store[k] = append(owner.store[k], vals...)
				delete(node.store, k)
			}
		}
	}
	r.buildSuccessorLists()
}

// successor finds the owner of key by direct inspection of the sorted node
// list. It is the ground truth ownership function; routing must agree.
func (r *Ring) successor(key ID) *Node {
	idx := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= key })
	if idx == len(r.nodes) {
		idx = 0
	}
	return r.nodes[idx]
}

// FindSuccessor routes from start to the owner of key using finger tables,
// returning the owner and the number of hops (messages) taken. If start is
// nil, routing begins at the first node.
func (r *Ring) FindSuccessor(start *Node, key ID) (*Node, int, error) {
	if len(r.nodes) == 0 {
		return nil, 0, fmt.Errorf("dht: ring is empty")
	}
	cur := start
	if cur == nil {
		cur = r.nodes[0]
	}
	hops := 0
	// Bound iterations defensively; correct routing needs at most
	// O(space bits) closest-preceding-finger steps.
	for limit := int(r.space.Bits)*2 + 2; limit > 0; limit-- {
		if cur.succ == cur {
			// Single-node ring owns everything.
			r.observeHops(hops)
			return cur, hops, nil
		}
		if BetweenRightIncl(key, cur.id, cur.succ.id) {
			r.countHop()
			r.observeHops(hops + 1)
			return cur.succ, hops + 1, nil
		}
		next := cur.closestPrecedingFinger(key)
		if next == cur {
			next = cur.succ
		}
		cur = next
		hops++
		r.countHop()
	}
	return nil, hops, fmt.Errorf("dht: routing to key %d did not converge", key)
}

func (r *Ring) countHop() {
	if r.meter != nil {
		r.meter.Inc(metrics.CostDHTMessage)
	}
}

// SetHopObserver registers a histogram that observes the hop count of
// every successfully routed FindSuccessor call (and therefore of every
// Insert/Lookup). A nil histogram disables observation.
func (r *Ring) SetHopObserver(h *obs.Histogram) { r.hops = h }

func (r *Ring) observeHops(n int) {
	if r.hops != nil {
		r.hops.Observe(int64(n))
	}
}

// closestPrecedingFinger returns the finger-table entry most closely
// preceding key, as in the Chord paper.
func (n *Node) closestPrecedingFinger(key ID) *Node {
	for k := len(n.fingers) - 1; k >= 0; k-- {
		f := n.fingers[k]
		if f != nil && Between(f.id, n.id, key) {
			return f
		}
	}
	return n
}

// Owner returns the node responsible for key without counting messages
// (a local oracle; use FindSuccessor for routed access).
func (r *Ring) Owner(key ID) (*Node, error) {
	if len(r.nodes) == 0 {
		return nil, fmt.Errorf("dht: ring is empty")
	}
	return r.successor(key), nil
}

// Insert routes value to the owner of key and appends it to the owner's
// store, as the paper's Insert(ID_i, r_i) primitive. It returns the hops
// taken.
func (r *Ring) Insert(key ID, value any) (int, error) {
	owner, hops, err := r.FindSuccessor(nil, key)
	if err != nil {
		return hops, err
	}
	owner.store[key] = append(owner.store[key], value)
	if r.replicas > 0 {
		r.replicate(key, owner.store[key])
	}
	return hops, nil
}

// Lookup routes to the owner of key and returns the stored values, as the
// paper's Lookup(ID_i) primitive. It returns the hops taken.
func (r *Ring) Lookup(key ID) ([]any, int, error) {
	owner, hops, err := r.FindSuccessor(nil, key)
	if err != nil {
		return nil, hops, err
	}
	return append([]any(nil), owner.store[key]...), hops, nil
}

package dht

import "fmt"

// Incremental maintenance. AddNode/RemoveNode rebuild the topology exactly
// — convenient for simulation, but a deployed Chord ring converges
// incrementally: a node joins knowing a single introducer, and periodic
// stabilize / notify / fix-fingers rounds repair successor and finger
// pointers (Stoica et al., Section 5). This file implements that protocol
// so the convergence behavior itself can be studied and tested: after a
// lazy join, routing is temporarily degraded and becomes exact once
// stabilization converges.

// JoinLazy adds a node whose only initial knowledge is the introducer: its
// successor comes from one routed lookup and its finger table starts out
// pointing at that successor. No other node learns about it until
// stabilization rounds run. The introducer must be a current member; the
// first node of an empty ring may pass nil.
func (r *Ring) JoinLazy(name string, introducer *Node) (*Node, error) {
	id := r.space.HashString(name)
	if _, exists := r.byID[id]; exists {
		return nil, fmt.Errorf("dht: ID collision at %d (node %q)", id, name)
	}
	n := &Node{id: id, name: name, store: make(map[ID][]any), replicaStore: make(map[ID][]any)}
	n.fingers = make([]*Node, r.space.Bits)

	if len(r.nodes) == 0 {
		if introducer != nil {
			return nil, fmt.Errorf("dht: introducer given for the first node")
		}
		n.succ = n
		n.pred = n
		for k := range n.fingers {
			n.fingers[k] = n
		}
	} else {
		if introducer == nil || r.byID[introducer.id] != introducer {
			return nil, fmt.Errorf("dht: introducer is not a current ring member")
		}
		succ, _, err := r.FindSuccessor(introducer, id)
		if err != nil {
			return nil, fmt.Errorf("dht: join lookup failed: %w", err)
		}
		n.succ = succ
		n.pred = nil // learned through notify
		for k := range n.fingers {
			n.fingers[k] = succ
		}
	}
	r.byID[id] = n
	r.insertSorted(n)
	return n, nil
}

// insertSorted places n into the sorted membership list without touching
// any routing pointers.
func (r *Ring) insertSorted(n *Node) {
	idx := 0
	for idx < len(r.nodes) && r.nodes[idx].id < n.id {
		idx++
	}
	r.nodes = append(r.nodes, nil)
	copy(r.nodes[idx+1:], r.nodes[idx:])
	r.nodes[idx] = n
}

// Stabilize runs one stabilization step for n: it checks whether its
// successor's predecessor has slipped in between, adopts it if so, and
// notifies the successor of its own existence.
func (r *Ring) Stabilize(n *Node) {
	succ := n.succ
	if succ == nil {
		return
	}
	if x := succ.pred; x != nil && x != n && Between(x.id, n.id, succ.id) {
		n.succ = x
		succ = x
	}
	r.notify(succ, n)
}

// notify tells succ that n believes it is succ's predecessor.
func (r *Ring) notify(succ, n *Node) {
	if succ == n {
		return
	}
	if succ.pred == nil || succ.pred == succ || Between(n.id, succ.pred.id, succ.id) {
		succ.pred = n
	}
}

// FixFinger refreshes finger k of n with a routed lookup. During
// convergence routing may fail; the stale finger is then left in place
// for a later round.
func (r *Ring) FixFinger(n *Node, k uint) {
	if k >= r.space.Bits {
		return
	}
	start := r.space.Add(n.id, 1<<k)
	owner, _, err := r.FindSuccessor(n, start)
	if err != nil {
		return
	}
	n.fingers[k] = owner
}

// StabilizeRound runs one stabilize step and a full finger refresh for
// every node, in ascending ID order.
func (r *Ring) StabilizeRound() {
	for _, n := range r.liveNodes() {
		r.Stabilize(n)
	}
	for _, n := range r.liveNodes() {
		for k := uint(0); k < r.space.Bits; k++ {
			r.FixFinger(n, k)
		}
	}
	r.buildSuccessorLists()
}

// Converged reports whether every node's successor and predecessor agree
// with the exact sorted membership.
func (r *Ring) Converged() bool {
	n := len(r.nodes)
	if n == 0 {
		return true
	}
	for i, node := range r.nodes {
		if node.succ != r.nodes[(i+1)%n] {
			return false
		}
		if node.pred != r.nodes[(i-1+n)%n] {
			return false
		}
	}
	return true
}

// StabilizeUntilConverged runs stabilization rounds until the topology is
// exact or maxRounds is exhausted. It returns the number of rounds run and
// whether convergence was reached.
func (r *Ring) StabilizeUntilConverged(maxRounds int) (int, bool) {
	for round := 1; round <= maxRounds; round++ {
		r.StabilizeRound()
		if r.Converged() {
			return round, true
		}
	}
	return maxRounds, r.Converged()
}

// RehomeKeys moves every stored key to its exact owner; lazy joins do not
// transfer keys by themselves, so call this after convergence (the
// deployed protocol piggybacks transfers on notify).
func (r *Ring) RehomeKeys() {
	for _, node := range r.nodes {
		for k, vals := range node.store {
			owner := r.successor(k)
			if owner != node {
				owner.store[k] = append(owner.store[k], vals...)
				delete(node.store, k)
			}
		}
	}
	if r.replicas > 0 {
		r.replicateAll()
	}
}

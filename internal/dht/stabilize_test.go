package dht

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/p2psim/collusion/internal/rng"
)

func TestJoinLazyFirstNode(t *testing.T) {
	r, _ := NewRing(16, nil)
	n, err := r.JoinLazy("first", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Successor() != n || n.Predecessor() != n {
		t.Fatal("single node should be its own successor and predecessor")
	}
	if !r.Converged() {
		t.Fatal("single-node ring not converged")
	}
}

func TestJoinLazyValidation(t *testing.T) {
	r, _ := NewRing(16, nil)
	if _, err := r.JoinLazy("a", nil); err != nil {
		t.Fatal(err)
	}
	// First-node form on a non-empty ring is rejected.
	if _, err := r.JoinLazy("b", nil); err == nil {
		t.Error("nil introducer accepted on non-empty ring")
	}
	// A foreign node is not a valid introducer.
	other, _ := NewRing(16, nil)
	foreign, _ := other.JoinLazy("x", nil)
	if _, err := r.JoinLazy("c", foreign); err == nil {
		t.Error("foreign introducer accepted")
	}
	// Duplicate names collide on ID.
	first := r.Nodes()[0]
	if _, err := r.JoinLazy("a", first); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestLazyJoinsConverge(t *testing.T) {
	r, _ := NewRing(32, nil)
	first, err := r.JoinLazy("node-0", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 24; i++ {
		if _, err := r.JoinLazy(fmt.Sprintf("node-%d", i), first); err != nil {
			t.Fatal(err)
		}
	}
	if r.Converged() {
		t.Fatal("ring unexpectedly converged without stabilization")
	}
	rounds, ok := r.StabilizeUntilConverged(64)
	if !ok {
		t.Fatalf("no convergence after %d rounds", rounds)
	}
	t.Logf("converged after %d rounds", rounds)

	// After convergence, routing must agree with the oracle everywhere.
	rand := rng.New(3)
	for i := 0; i < 200; i++ {
		key := ID(rand.Uint64()) & r.Space().Mask()
		want, _ := r.Owner(key)
		got, _, err := r.FindSuccessor(r.Nodes()[rand.Intn(r.Len())], key)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("routing to %d reached %d, want %d", key, got.ID(), want.ID())
		}
	}
}

func TestInterleavedJoinsAndStabilization(t *testing.T) {
	r, _ := NewRing(32, nil)
	first, err := r.JoinLazy("seed", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Join in small batches with a couple of stabilization rounds between
	// batches, as a live ring would experience.
	for batch := 0; batch < 6; batch++ {
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("n-%d-%d", batch, i)
			// Use any current member as introducer.
			intro := r.Nodes()[batch%r.Len()]
			if _, err := r.JoinLazy(name, intro); err != nil {
				t.Fatal(err)
			}
		}
		r.StabilizeRound()
		r.StabilizeRound()
	}
	if _, ok := r.StabilizeUntilConverged(64); !ok {
		t.Fatal("interleaved joins did not converge")
	}
	_ = first
}

func TestRehomeKeysAfterLazyJoin(t *testing.T) {
	r, _ := NewRing(32, nil)
	first, err := r.JoinLazy("alpha", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Store keys while alone: the first node owns everything.
	keys := make([]ID, 10)
	for i := range keys {
		keys[i] = r.Space().HashString(fmt.Sprintf("key-%d", i))
		if _, err := r.Insert(keys[i], i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if _, err := r.JoinLazy(fmt.Sprintf("member-%d", i), first); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := r.StabilizeUntilConverged(64); !ok {
		t.Fatal("no convergence")
	}
	r.RehomeKeys()
	for i, key := range keys {
		owner, _ := r.Owner(key)
		vals, _, err := r.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != i {
			t.Fatalf("key %d not at its owner %d after rehoming: %v", key, owner.ID(), vals)
		}
	}
}

// Property: any join order converges to the exact ring within a bounded
// number of rounds, and every key keeps exactly one owner.
func TestQuickLazyConvergence(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		n := int(count)%16 + 2
		r, err := NewRing(24, nil)
		if err != nil {
			return false
		}
		first, err := r.JoinLazy("origin", nil)
		if err != nil {
			return false
		}
		rand := rng.New(seed)
		for i := 0; i < n; i++ {
			intro := first
			if r.Len() > 1 {
				intro = r.Nodes()[rand.Intn(r.Len())]
			}
			// Name collisions can occur in the hashed space; skip them.
			_, _ = r.JoinLazy(fmt.Sprintf("peer-%d-%d", seed%997, i), intro)
		}
		if _, ok := r.StabilizeUntilConverged(4 * r.Len()); !ok {
			return false
		}
		for k := 0; k < 30; k++ {
			key := ID(rand.Uint64()) & r.Space().Mask()
			want, err := r.Owner(key)
			if err != nil {
				return false
			}
			got, _, err := r.FindSuccessor(r.Nodes()[rand.Intn(r.Len())], key)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStabilizeRound(b *testing.B) {
	r, _ := NewRing(32, nil)
	first, err := r.JoinLazy("origin", nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := r.JoinLazy(fmt.Sprintf("peer-%d", i), first); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.StabilizeRound()
	}
}

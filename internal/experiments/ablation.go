package experiments

import (
	"fmt"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/simulator"
)

// Ablation studies beyond the paper's figures. They exercise the design
// choices DESIGN.md calls out (threshold selection — the paper's stated
// future work; the strict vs default reverse rule; the decentralized
// deployment; group collusion) and quantify robustness (false positives
// on honest workloads, engine comparison).

// AbThresholds sweeps the detection thresholds around the simulation
// calibration and reports precision, recall and detection latency against
// the planted colluders — the paper's future-work question of "how to
// determine the threshold values".
func AbThresholds(opts Options) (*Table, error) {
	opts = opts.normalized()
	t := &Table{
		ID:     "ab-thresholds",
		Title:  "Threshold sensitivity: precision/recall/latency vs Ta, Tb, TN (B=0.2, EigenTrust+Optimized)",
		Header: []string{"param", "value", "precision", "recall", "mean_detection_cycle"},
		Notes: []string{
			"calibrated point: Ta=0.95 Tb=0.7 TN=20; recall collapses once Tb < b_colluder (~0.2) or TN approaches the full-run flood volume; latency grows with TN; precision stays 1.0 throughout",
		},
	}
	base := simulator.SimThresholds()
	sweeps := []struct {
		param  string
		values []float64
		apply  func(*core.Thresholds, float64)
	}{
		// Colluders rate their partners all-positively, so Ta is inert up
		// to 1.0 — included to demonstrate that robustness.
		{"Ta", []float64{0.85, 0.95, 1.0}, func(th *core.Thresholds, v float64) { th.Ta = v }},
		// The colluders' outside positive share is about B = 0.2: recall
		// must collapse once Tb drops below it.
		{"Tb", []float64{0.05, 0.10, 0.15, 0.25, 0.45, 0.70}, func(th *core.Thresholds, v float64) { th.Tb = v }},
		// A pair exchanges 2x10x20 = 400 ratings per direction per cycle;
		// raising TN toward the full-run volume (8,000) delays and then
		// prevents detection.
		{"TN", []float64{20, 400, 1000, 2000, 4000, 8000, 12000}, func(th *core.Thresholds, v float64) { th.TN = int(v) }},
	}
	for _, sweep := range sweeps {
		for _, v := range sweep.values {
			th := base
			sweep.apply(&th, v)
			if th.Ta <= th.Tb {
				continue // invalid combination
			}
			precision, recall, latency, err := detectionQuality(opts, th)
			if err != nil {
				return nil, err
			}
			t.AddRow(sweep.param, v, precision, recall, latency)
		}
	}
	return t, nil
}

// detectionQuality runs the Figure 10 scenario with the given thresholds
// and scores detection against the configured colluders.
func detectionQuality(opts Options, th core.Thresholds) (precision, recall, latency float64, err error) {
	var tp, fp, fn, latSum, latN int
	for run := 0; run < opts.Runs; run++ {
		cfg := simulator.DefaultConfig()
		cfg.IngestShards = opts.IngestShards
		cfg.FullDetect = opts.FullDetect
		cfg.Seed = opts.Seed + uint64(run)*77
		cfg.ColluderGoodProb = 0.2
		cfg.Detector = simulator.DetectorOptimized
		cfg.Thresholds = th
		res, runErr := simulator.Run(cfg)
		if runErr != nil {
			return 0, 0, 0, runErr
		}
		isColluder := map[int]bool{}
		for _, c := range cfg.Colluders {
			isColluder[c] = true
		}
		for i, f := range res.Flagged {
			switch {
			case f && isColluder[i]:
				tp++
				latSum += res.DetectionCycle[i]
				latN++
			case f && !isColluder[i]:
				fp++
			case !f && isColluder[i]:
				fn++
			}
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if latN > 0 {
		latency = float64(latSum) / float64(latN)
	}
	return precision, recall, latency, nil
}

// AbStrict compares the default reverse rule against the literal
// Section IV algorithm (StrictReverse) on the compromised-pretrust
// scenario of Figure 11, exposing why the default rule is needed to
// reproduce the paper's reported outcome.
func AbStrict(opts Options) (*Table, error) {
	opts = opts.normalized()
	t := &Table{
		ID:     "ab-strict",
		Title:  "Default vs literal (StrictReverse) rule on the Figure 11 scenario",
		Header: []string{"rule", "colluders_flagged", "compromised_flagged", "normal_false_flags"},
		Notes: []string{
			"the literal rule cannot implicate honestly-serving compromised pretrusted nodes",
		},
	}
	for _, strict := range []bool{false, true} {
		cfg := simulator.DefaultConfig()
		cfg.IngestShards = opts.IngestShards
		cfg.FullDetect = opts.FullDetect
		cfg.Seed = opts.Seed
		cfg.ColluderGoodProb = 0.2
		cfg.CompromisedPairs = [][2]int{{0, 3}, {1, 5}}
		cfg.Detector = simulator.DetectorOptimized
		th := simulator.SimThresholds()
		th.StrictReverse = strict
		cfg.Thresholds = th
		res, err := simulator.Run(cfg)
		if err != nil {
			return nil, err
		}
		colluders, compromised, falseFlags := 0, 0, 0
		for i, f := range res.Flagged {
			if !f {
				continue
			}
			switch {
			case i == 0 || i == 1:
				compromised++
			case i >= 3 && i <= 10:
				colluders++
			case i == 2:
				falseFlags++ // honest pretrusted
			default:
				falseFlags++
			}
		}
		rule := "default"
		if strict {
			rule = "strict"
		}
		t.AddRow(rule, colluders, compromised, falseFlags)
	}
	return t, nil
}

// AbManagers runs the decentralized detection protocol with increasing
// manager counts over the same workload, verifying that the detected
// pairs match the centralized result while measuring the communication
// cost of distribution.
func AbManagers(opts Options) (*Table, error) {
	opts = opts.normalized()
	// Build one Figure 10-style ledger.
	cfg := simulator.DefaultConfig()
	cfg.IngestShards = opts.IngestShards
	cfg.FullDetect = opts.FullDetect
	cfg.Seed = opts.Seed
	cfg.ColluderGoodProb = 0.2
	res, err := simulator.Run(cfg)
	if err != nil {
		return nil, err
	}
	th := simulator.SimThresholds()
	central := core.NewOptimized(th).Detect(res.Ledger)

	t := &Table{
		ID:     "ab-managers",
		Title:  "Decentralized detection vs manager count (optimized method)",
		Header: []string{"managers", "pairs_found", "matches_centralized", "manager_messages", "dht_hops"},
		Notes: []string{
			fmt.Sprintf("centralized baseline finds %d pairs; distribution must not change the result", len(central.Pairs)),
		},
	}
	for _, m := range []int{1, 2, 4, 8, 16} {
		var meter metrics.CostMeter
		ring, err := core.NewManagerRing(m, cfg.Overlay.Nodes, th, &meter)
		if err != nil {
			return nil, err
		}
		if err := ring.RecordLedger(res.Ledger); err != nil {
			return nil, err
		}
		dist := ring.Detect(core.KindOptimized)
		match := len(dist.Pairs) == len(central.Pairs)
		if match {
			for i := range dist.Pairs {
				if dist.Pairs[i].I != central.Pairs[i].I || dist.Pairs[i].J != central.Pairs[i].J {
					match = false
					break
				}
			}
		}
		t.AddRow(m, len(dist.Pairs), match,
			meter.Get(metrics.CostManagerMessage), meter.Get(metrics.CostDHTMessage))
	}
	return t, nil
}

// AbFalsePositives runs honest workloads (no colluders at all) across
// several seeds and engines and counts false detections. The collusion
// model's conjunction of frequency, positivity and outside-negativity
// should never fire on organic traffic.
func AbFalsePositives(opts Options) (*Table, error) {
	opts = opts.normalized()
	t := &Table{
		ID:     "ab-false-positives",
		Title:  "False positives on honest workloads (no colluders planted)",
		Header: []string{"detector", "seeds", "nodes_flagged"},
		Notes:  []string{"expected: zero flags for every detector"},
	}
	for _, det := range []simulator.DetectorKind{
		simulator.DetectorBasic, simulator.DetectorOptimized, simulator.DetectorGroup,
	} {
		flagged := 0
		for run := 0; run < opts.Runs; run++ {
			cfg := simulator.DefaultConfig()
			cfg.IngestShards = opts.IngestShards
			cfg.FullDetect = opts.FullDetect
			cfg.Seed = opts.Seed + uint64(run)*131
			cfg.Colluders = nil
			cfg.Detector = det
			res, err := simulator.Run(cfg)
			if err != nil {
				return nil, err
			}
			for _, f := range res.Flagged {
				if f {
					flagged++
				}
			}
		}
		t.AddRow(det.String(), opts.Runs, flagged)
	}
	return t, nil
}

// AbGroup sweeps the collusion-collective size and compares the pairwise
// optimized detector with the group detector — the paper's future-work
// extension. Rings of size >= 3 contain no mutual pair and are invisible
// to the pairwise methods.
func AbGroup(opts Options) (*Table, error) {
	opts = opts.normalized()
	t := &Table{
		ID:     "ab-group",
		Title:  "Pairwise vs group detection across collective sizes (directed rings, B=0.2)",
		Header: []string{"ring_size", "members_flagged_optimized", "members_flagged_group", "members_total"},
		Notes: []string{
			"size 2 is the paper's mutual pair; sizes >= 3 evade pairwise detection entirely",
		},
	}
	for _, size := range []int{2, 3, 4, 5} {
		members := make([]int, size)
		for i := range members {
			members[i] = 3 + i
		}
		counts := map[simulator.DetectorKind]int{}
		for _, det := range []simulator.DetectorKind{simulator.DetectorOptimized, simulator.DetectorGroup} {
			cfg := simulator.DefaultConfig()
			cfg.IngestShards = opts.IngestShards
			cfg.FullDetect = opts.FullDetect
			cfg.Seed = opts.Seed
			cfg.ColluderGoodProb = 0.2
			cfg.Detector = det
			if size == 2 {
				cfg.Colluders = members
			} else {
				cfg.Colluders = nil
				cfg.ColluderRings = [][]int{members}
			}
			res, err := simulator.Run(cfg)
			if err != nil {
				return nil, err
			}
			for _, m := range members {
				if res.Flagged[m] {
					counts[det]++
				}
			}
		}
		t.AddRow(size, counts[simulator.DetectorOptimized], counts[simulator.DetectorGroup], size)
	}
	return t, nil
}

// AbSybil compares the detector families on a one-way boosting swarm (the
// paper's future-work Sybil case): the beneficiary profits under bare
// EigenTrust, the pairwise and group detectors cannot implicate it, and
// the Sybil detector zeroes the whole swarm.
func AbSybil(opts Options) (*Table, error) {
	opts = opts.normalized()
	t := &Table{
		ID:     "ab-sybil",
		Title:  "Detector families vs a one-way boosting swarm (beneficiary + 6 fakes, B=0.2)",
		Header: []string{"detector", "beneficiary_flagged", "swarm_flagged", "beneficiary_reputation"},
		Notes: []string{
			"only the Sybil detector implicates the swarm; pairwise needs reciprocity, group needs strong connectivity",
		},
	}
	swarm := []int{20, 21, 22, 23, 24, 25, 26}
	for _, det := range []simulator.DetectorKind{
		simulator.DetectorNone, simulator.DetectorOptimized,
		simulator.DetectorGroup, simulator.DetectorSybil,
	} {
		cfg := simulator.DefaultConfig()
		cfg.IngestShards = opts.IngestShards
		cfg.FullDetect = opts.FullDetect
		cfg.Seed = opts.Seed
		cfg.ColluderGoodProb = 0.2
		cfg.Colluders = nil
		cfg.SybilSwarms = [][]int{swarm}
		cfg.Detector = det
		res, err := simulator.Run(cfg)
		if err != nil {
			return nil, err
		}
		flagged := 0
		for _, m := range swarm {
			if res.Flagged[m] {
				flagged++
			}
		}
		t.AddRow(det.String(), res.Flagged[swarm[0]], flagged, res.Scores[swarm[0]])
	}
	return t, nil
}

// AbEngines compares the reputation engines' resistance to pairwise
// collusion in the Figure 5/6 scenarios, reporting the colluder and
// pretrusted group means per engine.
func AbEngines(opts Options) (*Table, error) {
	opts = opts.normalized()
	t := &Table{
		ID:     "ab-engines",
		Title:  "Engine comparison: colluder vs pretrusted mean reputation (no detector)",
		Header: []string{"engine", "B", "colluder_mean", "pretrusted_mean", "normal_mean"},
		Notes: []string{
			"EigenTrust suppresses colluders at B=0.2; flat weighted sums do not",
		},
	}
	engines := []simulator.EngineKind{
		simulator.EngineEigenTrust,
		simulator.EngineWeightedSum,
		simulator.EngineIterativeWeighted,
		simulator.EngineSimilarity,
		simulator.EngineSummation,
	}
	for _, engine := range engines {
		for _, b := range []float64{0.6, 0.2} {
			cfg := simulator.DefaultConfig()
			cfg.IngestShards = opts.IngestShards
			cfg.FullDetect = opts.FullDetect
			cfg.Seed = opts.Seed
			cfg.ColluderGoodProb = b
			cfg.Engine = engine
			avg, err := simulator.RunAveraged(cfg, opts.Runs)
			if err != nil {
				return nil, err
			}
			var colSum, preSum, normSum float64
			var colN, preN, normN int
			role := roleMap(cfg)
			for i, sc := range avg.Scores {
				switch role[i] {
				case "colluder":
					colSum += sc
					colN++
				case "pretrusted":
					preSum += sc
					preN++
				default:
					normSum += sc
					normN++
				}
			}
			t.AddRow(engine.String(), b, colSum/float64(colN), preSum/float64(preN), normSum/float64(normN))
		}
	}
	return t, nil
}

// AbTimeline records the per-cycle evolution of group mean reputations
// under bare EigenTrust and under EigenTrust+Optimized — the dynamics
// behind Figures 5 and 9: colluders rise until the detector identifies
// their rating pattern and pins them to zero, after which the pretrusted
// nodes absorb the trust mass.
func AbTimeline(opts Options) (*Table, error) {
	opts = opts.normalized()
	t := &Table{
		ID:    "ab-timeline",
		Title: "Reputation dynamics per simulation cycle (B=0.6)",
		Header: []string{"cycle", "colluders_bare", "pretrusted_bare",
			"colluders_detected", "pretrusted_detected"},
		Notes: []string{
			"bare: colluders rise and stay on top; with the detector they are zeroed from the first detection pass",
		},
	}
	series := map[simulator.DetectorKind][][2]float64{} // per cycle: {colMean, preMean}
	for _, det := range []simulator.DetectorKind{simulator.DetectorNone, simulator.DetectorOptimized} {
		cfg := simulator.DefaultConfig()
		cfg.IngestShards = opts.IngestShards
		cfg.FullDetect = opts.FullDetect
		cfg.Seed = opts.Seed
		cfg.Detector = det
		var timeline [][2]float64
		role := roleMap(cfg)
		cfg.OnCycle = func(cycle int, scores []float64) {
			var colSum, preSum float64
			var colN, preN int
			for i, sc := range scores {
				switch role[i] {
				case "colluder":
					colSum += sc
					colN++
				case "pretrusted":
					preSum += sc
					preN++
				}
			}
			timeline = append(timeline, [2]float64{colSum / float64(colN), preSum / float64(preN)})
		}
		if _, err := simulator.Run(cfg); err != nil {
			return nil, err
		}
		series[det] = timeline
	}
	bare := series[simulator.DetectorNone]
	guarded := series[simulator.DetectorOptimized]
	for c := 0; c < len(bare) && c < len(guarded); c++ {
		t.AddRow(c+1, bare[c][0], bare[c][1], guarded[c][0], guarded[c][1])
	}
	return t, nil
}

// Ablations runs every ablation study in order.
func Ablations(opts Options) ([]*Table, error) {
	drivers := []struct {
		name string
		fn   func(Options) (*Table, error)
	}{
		{"ab-thresholds", AbThresholds},
		{"ab-strict", AbStrict},
		{"ab-managers", AbManagers},
		{"ab-false-positives", AbFalsePositives},
		{"ab-group", AbGroup},
		{"ab-sybil", AbSybil},
		{"ab-engines", AbEngines},
		{"ab-timeline", AbTimeline},
		{"ab-scale", AbScale},
		{"ab-churn", AbChurn},
		{"ab-intensity", AbIntensity},
		{"ab-decentralized-live", AbDecentralizedLive},
	}
	var tables []*Table
	for _, d := range drivers {
		tab, err := d.fn(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.name, err)
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

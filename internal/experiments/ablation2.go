package experiments

import (
	"fmt"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/simulator"
)

// AbScale checks the paper's robustness claim — "we also conducted
// experiments with different numbers of nodes and colluders; the relative
// performance differences between the different systems remain almost the
// same" — by re-running the Figure 12 comparison at several network sizes
// with a proportional colluder count.
func AbScale(opts Options) (*Table, error) {
	opts = opts.normalized()
	t := &Table{
		ID:    "ab-scale",
		Title: "Network-size robustness: colluder request share at 4% colluders (B=0.2)",
		Header: []string{"nodes", "colluders", "share_eigentrust", "share_optimized",
			"detected_colluders"},
		Notes: []string{
			"the ordering (EigenTrust >> Optimized) and full detection hold at every size, as the paper claims",
		},
	}
	for _, n := range []int{100, 200, 400} {
		numColluders := n / 25 // 4% of the population, paired
		if numColluders%2 == 1 {
			numColluders++
		}
		colluders := make([]int, numColluders)
		for i := range colluders {
			colluders[i] = 3 + i
		}
		shares := map[simulator.DetectorKind]float64{}
		detected := 0
		for _, det := range []simulator.DetectorKind{simulator.DetectorNone, simulator.DetectorOptimized} {
			cfg := simulator.DefaultConfig()
			cfg.IngestShards = opts.IngestShards
			cfg.FullDetect = opts.FullDetect
			cfg.Seed = opts.Seed
			cfg.Overlay.Nodes = n
			cfg.ColluderGoodProb = 0.2
			cfg.Colluders = colluders
			cfg.Detector = det
			avg, err := simulator.RunAveraged(cfg, opts.Runs)
			if err != nil {
				return nil, err
			}
			shares[det] = avg.PercentToColluders
			if det == simulator.DetectorOptimized {
				for _, c := range colluders {
					if avg.FlagRate[c] > 0.5 {
						detected++
					}
				}
			}
		}
		t.AddRow(n, numColluders, shares[simulator.DetectorNone],
			shares[simulator.DetectorOptimized], detected)
	}
	return t, nil
}

// AbChurn validates that decentralized detection survives manager churn:
// after each crash (rows recovered from successor replicas), the detected
// pairs must still match the centralized baseline, while responsibility
// shifts among the survivors.
func AbChurn(opts Options) (*Table, error) {
	opts = opts.normalized()
	cfg := simulator.DefaultConfig()
	cfg.IngestShards = opts.IngestShards
	cfg.FullDetect = opts.FullDetect
	cfg.Seed = opts.Seed
	cfg.ColluderGoodProb = 0.2
	res, err := simulator.Run(cfg)
	if err != nil {
		return nil, err
	}
	th := simulator.SimThresholds()
	central := core.NewOptimized(th).Detect(res.Ledger)

	var meter metrics.CostMeter
	ring, err := core.NewManagerRing(6, cfg.Overlay.Nodes, th, &meter)
	if err != nil {
		return nil, err
	}
	if err := ring.RecordLedger(res.Ledger); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "ab-churn",
		Title:  "Decentralized detection under manager churn (replicated rows)",
		Header: []string{"failures", "managers_left", "pairs_found", "matches_centralized"},
		Notes: []string{
			fmt.Sprintf("centralized baseline: %d pairs; each crash is followed by replica promotion", len(central.Pairs)),
		},
	}
	check := func(failures int) error {
		dist := ring.Detect(core.KindOptimized)
		match := len(dist.Pairs) == len(central.Pairs)
		if match {
			for i := range dist.Pairs {
				if dist.Pairs[i].I != central.Pairs[i].I || dist.Pairs[i].J != central.Pairs[i].J {
					match = false
					break
				}
			}
		}
		t.AddRow(failures, ring.Managers(), len(dist.Pairs), match)
		return nil
	}
	if err := check(0); err != nil {
		return nil, err
	}
	for failures := 1; failures <= 4; failures++ {
		// Crash the manager responsible for node 3 (a colluder) to stress
		// the replica-promotion path.
		name, err := ring.ManagerOf(3)
		if err != nil {
			return nil, err
		}
		if err := ring.FailManager(name); err != nil {
			return nil, err
		}
		if err := check(failures); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AbIntensity sweeps the collusion flood intensity (ratings per partner
// per query cycle) and reports detection recall and latency: the detector
// fires once the cumulative pair frequency crosses T_N, so weaker floods
// are caught later — and floods below the threshold rate are never caught,
// but also buy almost no reputation.
func AbIntensity(opts Options) (*Table, error) {
	opts = opts.normalized()
	t := &Table{
		ID:     "ab-intensity",
		Title:  "Detection vs collusion flood intensity (B=0.2, EigenTrust+Optimized, TN=20)",
		Header: []string{"ratings_per_cycle", "recall", "mean_detection_cycle", "colluder_mean_reputation"},
		Notes: []string{
			"a pair exchanging r ratings/query cycle crosses TN=20 within ceil(20/(20r)) cycles; even r=1 is caught in cycle 1",
		},
	}
	for _, intensity := range []int{1, 2, 5, 10, 20} {
		cfg := simulator.DefaultConfig()
		cfg.IngestShards = opts.IngestShards
		cfg.FullDetect = opts.FullDetect
		cfg.Seed = opts.Seed
		cfg.ColluderGoodProb = 0.2
		cfg.Detector = simulator.DetectorOptimized
		cfg.CollusionRatings = intensity
		res, err := simulator.Run(cfg)
		if err != nil {
			return nil, err
		}
		flagged, latSum, repSum := 0, 0, 0.0
		for _, c := range cfg.Colluders {
			if res.Flagged[c] {
				flagged++
				latSum += res.DetectionCycle[c]
			}
			repSum += res.Scores[c]
		}
		recall := float64(flagged) / float64(len(cfg.Colluders))
		latency := 0.0
		if flagged > 0 {
			latency = float64(latSum) / float64(flagged)
		}
		t.AddRow(intensity, recall, latency, repSum/float64(len(cfg.Colluders)))
	}
	return t, nil
}

// AbDecentralizedLive runs the decentralized deployment inside the live
// Section V simulation: every rating is routed through the DHT to its
// manager as it happens, and the manager protocol runs each cycle. It
// reports the communication cost (manager messages and DHT hops) as the
// colluder count grows — the decentralized companion to Figure 13.
func AbDecentralizedLive(opts Options) (*Table, error) {
	opts = opts.normalized()
	counts := opts.ColluderCounts
	if len(counts) == 0 {
		counts = []int{8, 28, 58}
	}
	t := &Table{
		ID:    "ab-decentralized-live",
		Title: "Live decentralized deployment (8 managers): cost vs colluder count (B=0.2)",
		Header: []string{"colluders", "colluders_flagged", "manager_messages",
			"dht_hops", "rating_routing_hops"},
		Notes: []string{
			"rating routing dominates (every report crosses the DHT); detection itself needs only a few manager messages",
		},
	}
	for _, nc := range counts {
		var meter metrics.CostMeter
		th := simulator.SimThresholds()
		cfg := simulator.DefaultConfig()
		cfg.IngestShards = opts.IngestShards
		cfg.FullDetect = opts.FullDetect
		cfg.Seed = opts.Seed
		cfg.ColluderGoodProb = 0.2
		cfg.Colluders = colluderSet(nc)
		ring, err := core.NewManagerRing(8, cfg.Overlay.Nodes, th, &meter)
		if err != nil {
			return nil, err
		}
		// OnRating forces the run sequential, so the live deployment can
		// share the driver's tracer and observe DHT hops in the registry.
		ring.Trace = opts.Tracer
		ring.Observe(opts.Obs)
		cfg.Tracer = opts.Tracer
		cfg.Obs = opts.Obs
		cfg.Progress = opts.Progress
		cfg.OnRating = func(rater, target, polarity int) {
			// A live deployment routes every rating report over the DHT.
			_ = ring.Record(rater, target, polarity)
		}
		var detectHops int64
		flagged := map[int]bool{}
		cfg.OnCycle = func(cycle int, scores []float64) {
			before := meter.Get(metrics.CostDHTMessage)
			res := ring.Detect(core.KindOptimized)
			detectHops += meter.Get(metrics.CostDHTMessage) - before
			for _, n := range res.FlaggedNodes() {
				flagged[n] = true
			}
		}
		if _, err := simulator.Run(cfg); err != nil {
			return nil, err
		}
		colFlagged := 0
		for _, c := range cfg.Colluders {
			if flagged[c] {
				colFlagged++
			}
		}
		t.AddRow(nc, colFlagged,
			meter.Get(metrics.CostManagerMessage),
			detectHops,
			meter.Get(metrics.CostDHTMessage)-detectHops)
	}
	return t, nil
}

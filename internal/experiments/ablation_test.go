package experiments

import (
	"strconv"
	"testing"
)

func TestAbStrict(t *testing.T) {
	tab, err := AbStrict(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	var def, strict []string
	for _, row := range tab.Rows {
		switch row[0] {
		case "default":
			def = row
		case "strict":
			strict = row
		}
	}
	// The default rule must flag both compromised pretrusted nodes; the
	// literal rule cannot flag any.
	if def[2] != "2" {
		t.Fatalf("default rule flagged %s compromised nodes, want 2", def[2])
	}
	if strict[2] != "0" {
		t.Fatalf("strict rule flagged %s compromised nodes, want 0", strict[2])
	}
	// Neither rule may flag honest nodes.
	if def[3] != "0" || strict[3] != "0" {
		t.Fatalf("false flags: default=%s strict=%s", def[3], strict[3])
	}
}

func TestAbManagers(t *testing.T) {
	tab, err := AbManagers(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row[2] != "true" {
			t.Fatalf("row %d: distributed result diverged from centralized: %v", i, row)
		}
	}
	// A single manager needs no messages; multiple managers do.
	if cellF(t, tab, 0, 3) != 0 {
		t.Fatalf("single manager exchanged messages: %v", tab.Rows[0])
	}
	if cellF(t, tab, 4, 3) == 0 {
		t.Fatalf("16 managers exchanged no messages: %v", tab.Rows[4])
	}
}

func TestAbFalsePositives(t *testing.T) {
	opts := quickOpts()
	opts.Runs = 2
	tab, err := AbFalsePositives(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 detectors", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != "0" {
			t.Fatalf("detector %s produced %s false positives", row[0], row[2])
		}
	}
}

func TestAbGroup(t *testing.T) {
	tab, err := AbGroup(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 sizes", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		size, _ := strconv.Atoi(row[0])
		opt, _ := strconv.Atoi(row[1])
		grp, _ := strconv.Atoi(row[2])
		if grp != size {
			t.Fatalf("group detector flagged %d/%d members of ring size %d", grp, size, size)
		}
		if size == 2 && opt != 2 {
			t.Fatalf("pairwise detector missed the size-2 pair: %v", row)
		}
		if size >= 3 && opt != 0 {
			t.Fatalf("pairwise detector unexpectedly flagged ring of size %d: %v", size, row)
		}
	}
}

func TestAbThresholds(t *testing.T) {
	opts := quickOpts()
	opts.Runs = 1
	tab, err := AbThresholds(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty sweep")
	}
	var recallAtTightTb, recallAtCalibratedTb float64
	var latencyAtBigTN, latencyAtSmallTN float64
	for i, row := range tab.Rows {
		precision := cellF(t, tab, i, 2)
		if precision != 0 && precision != 1 {
			t.Fatalf("precision %v at %v=%v — false positives appeared", precision, row[0], row[1])
		}
		switch {
		case row[0] == "Tb" && row[1] == "0.05":
			recallAtTightTb = cellF(t, tab, i, 3)
		case row[0] == "Tb" && row[1] == "0.7":
			recallAtCalibratedTb = cellF(t, tab, i, 3)
		case row[0] == "TN" && row[1] == "20":
			latencyAtSmallTN = cellF(t, tab, i, 4)
		case row[0] == "TN" && row[1] == "4000":
			latencyAtBigTN = cellF(t, tab, i, 4)
		}
	}
	if recallAtCalibratedTb != 1 {
		t.Fatalf("recall at calibrated Tb = %v, want 1", recallAtCalibratedTb)
	}
	if recallAtTightTb >= recallAtCalibratedTb {
		t.Fatalf("tightening Tb did not reduce recall: %v vs %v",
			recallAtTightTb, recallAtCalibratedTb)
	}
	if latencyAtBigTN <= latencyAtSmallTN {
		t.Fatalf("raising TN did not delay detection: %v vs %v",
			latencyAtBigTN, latencyAtSmallTN)
	}
}

func TestAbEngines(t *testing.T) {
	opts := quickOpts()
	opts.Runs = 1
	tab, err := AbEngines(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (5 engines x 2 B values)", len(tab.Rows))
	}
	// EigenTrust at B=0.2 suppresses colluders below pretrusted; the flat
	// weighted sum does not.
	for i, row := range tab.Rows {
		if row[1] != "0.2" {
			continue
		}
		col := cellF(t, tab, i, 2)
		pre := cellF(t, tab, i, 3)
		switch row[0] {
		case "eigentrust":
			if col >= pre {
				t.Fatalf("eigentrust B=0.2: colluders %v not below pretrusted %v", col, pre)
			}
		case "weighted-sum":
			if col <= pre {
				t.Fatalf("weighted-sum B=0.2: expected colluders %v above pretrusted %v", col, pre)
			}
		}
	}
}

func TestAblationsAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation suite is slow")
	}
	opts := quickOpts()
	opts.Runs = 1
	tables, err := Ablations(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 12 {
		t.Fatalf("tables = %d, want 12", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("ablation %s is empty", tab.ID)
		}
	}
}

func TestAbSybil(t *testing.T) {
	tab, err := AbSybil(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 detectors", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		switch row[0] {
		case "sybil":
			if row[1] != "true" || row[2] != "7" || cellF(t, tab, i, 3) != 0 {
				t.Fatalf("sybil row wrong: %v", row)
			}
		default:
			if row[1] != "false" {
				t.Fatalf("%s flagged the beneficiary: %v", row[0], row)
			}
		}
	}
	// Without the Sybil detector, the swarm manufactures real reputation.
	if cellF(t, tab, 0, 3) <= 0.001 {
		t.Fatalf("beneficiary not boosted under bare EigenTrust: %v", tab.Rows[0])
	}
}

func TestAbTimeline(t *testing.T) {
	tab, err := AbTimeline(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 {
		t.Fatalf("rows = %d, want 20 cycles", len(tab.Rows))
	}
	// Bare colluders end high; detected colluders end at zero.
	last := len(tab.Rows) - 1
	if cellF(t, tab, last, 1) <= cellF(t, tab, last, 2) {
		t.Fatalf("bare colluders %v not above pretrusted %v at the end",
			cellF(t, tab, last, 1), cellF(t, tab, last, 2))
	}
	if cellF(t, tab, last, 3) > 1e-3 {
		t.Fatalf("detected colluders end at %v, want ~0", cellF(t, tab, last, 3))
	}
}

func TestByNameIncludesAblations(t *testing.T) {
	for _, name := range []string{"ab-thresholds", "ab-strict", "ab-managers",
		"ab-false-positives", "ab-group", "ab-sybil", "ab-engines", "ab-timeline",
		"ab-scale", "ab-churn", "ab-intensity", "ab-decentralized-live"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
}

func TestAbChurn(t *testing.T) {
	tab, err := AbChurn(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (0..4 failures)", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row[3] != "true" {
			t.Fatalf("failure step %d diverged from centralized: %v", i, row)
		}
	}
	if tab.Rows[4][1] != "2" {
		t.Fatalf("managers after 4 failures = %s, want 2", tab.Rows[4][1])
	}
}

func TestAbIntensity(t *testing.T) {
	opts := quickOpts()
	opts.Runs = 1
	tab, err := AbIntensity(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if recall := cellF(t, tab, i, 1); recall < 0.75 {
			t.Fatalf("recall %v at intensity %s", recall, row[0])
		}
		if rep := cellF(t, tab, i, 3); rep > 1e-3 {
			t.Fatalf("colluders retained reputation %v at intensity %s", rep, row[0])
		}
	}
}

func TestAbScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale ablation runs 400-node simulations")
	}
	opts := quickOpts()
	opts.Runs = 1
	tab, err := AbScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 sizes", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		et := cellF(t, tab, i, 2)
		opt := cellF(t, tab, i, 3)
		if et <= opt {
			t.Fatalf("size %s: EigenTrust share %v not above detector %v", row[0], et, opt)
		}
		colluders := cellF(t, tab, i, 1)
		if detected := cellF(t, tab, i, 4); detected < colluders-2 {
			t.Fatalf("size %s: only %v/%v colluders detected", row[0], detected, colluders)
		}
	}
}

func TestAbDecentralizedLive(t *testing.T) {
	opts := quickOpts()
	opts.Runs = 1
	opts.ColluderCounts = []int{8}
	tab, err := AbDecentralizedLive(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tab.Rows))
	}
	if flagged := cellF(t, tab, 0, 1); flagged < 6 {
		t.Fatalf("live decentralized deployment flagged only %v/8 colluders", flagged)
	}
	if hops := cellF(t, tab, 0, 4); hops == 0 {
		t.Fatal("no rating-routing hops counted")
	}
}

package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// quickOpts keeps experiment tests fast: one run, reduced trace volume,
// two colluder counts.
func quickOpts() Options {
	return Options{Seed: 1, Runs: 1, Scale: 0.25, ColluderCounts: []int{8, 28}}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID:     "demo",
		Title:  "demo table",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", true)

	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo table", "a  b", "2.5", "# a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if tab.String() == "" {
		t.Fatal("String() empty")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "demo.csv")
	if err := tab.WriteCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "a,b\n1,2.5\n") {
		t.Fatalf("csv = %q", data)
	}
}

func TestSaveAll(t *testing.T) {
	tab := &Table{ID: "t1", Title: "x", Header: []string{"c"}}
	tab.AddRow(1)
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := SaveAll(&buf, dir, tab); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "t1.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(buf.String(), "t1") {
		t.Fatal("render output missing")
	}
}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d); %d rows", tab.ID, row, col, len(tab.Rows))
	}
	return tab.Rows[row][col]
}

func cellF(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q not a float", tab.ID, row, col, cell(t, tab, row, col))
	}
	return v
}

func TestFig1a(t *testing.T) {
	tab, err := Fig1a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 50 {
		t.Fatalf("fig1a has %d sellers, want ~97", len(tab.Rows))
	}
	// Sorted by descending reputation; top sellers should out-volume the
	// bottom sellers.
	topRep := cellF(t, tab, 0, 1)
	botRep := cellF(t, tab, len(tab.Rows)-1, 1)
	if topRep <= botRep {
		t.Fatalf("not sorted: %v .. %v", topRep, botRep)
	}
	topTotal := cellF(t, tab, 0, 4)
	botTotal := cellF(t, tab, len(tab.Rows)-1, 4)
	if topTotal <= botTotal {
		t.Fatalf("volume does not rise with reputation: %v vs %v", topTotal, botTotal)
	}
}

func TestFig1b(t *testing.T) {
	tab, err := Fig1b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("fig1b empty")
	}
	archs := map[string]bool{}
	for _, row := range tab.Rows {
		archs[row[3]] = true
	}
	if !archs["booster"] {
		t.Fatalf("no booster archetype in fig1b: %v", archs)
	}
	if !archs["rival"] {
		t.Fatalf("no rival archetype in fig1b: %v", archs)
	}
}

func TestFig1c(t *testing.T) {
	tab, err := Fig1c(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("fig1c rows = %d, want 9 (5 suspicious + 4 unsuspicious)", len(tab.Rows))
	}
	// Suspicious sellers must show a larger max-per-rater than normal ones.
	maxSusp, maxNorm := 0.0, 0.0
	for i, row := range tab.Rows {
		v := cellF(t, tab, i, 4)
		if row[2] == "true" {
			if v > maxSusp {
				maxSusp = v
			}
		} else if v > maxNorm {
			maxNorm = v
		}
	}
	if maxSusp <= maxNorm {
		t.Fatalf("suspicious max %v not above normal max %v", maxSusp, maxNorm)
	}
}

func TestFig1d(t *testing.T) {
	tab, err := Fig1d(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	metrics := map[string]string{}
	for _, row := range tab.Rows {
		if row[0] != "edge" {
			metrics[row[0]] = row[1]
		}
	}
	if metrics["closed_groups"] != "0" || metrics["triangles"] != "0" {
		t.Fatalf("C5 violated: %v", metrics)
	}
	pairs, _ := strconv.Atoi(metrics["isolated_pairs"])
	if pairs < 5 {
		t.Fatalf("isolated pairs = %d, want several", pairs)
	}
	chains, _ := strconv.Atoi(metrics["open_chains"])
	if chains < 1 {
		t.Fatalf("open chains = %d, want >= 1", chains)
	}
}

func TestFig4(t *testing.T) {
	tab, err := Fig4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("fig4 empty")
	}
	for i := range tab.Rows {
		lo, hi := cellF(t, tab, i, 2), cellF(t, tab, i, 3)
		if lo > hi {
			t.Fatalf("row %d: lower %v above upper %v", i, lo, hi)
		}
	}
}

// groupMean extracts a "mean <role>" summary row value.
func groupMean(t *testing.T, tab *Table, role string) float64 {
	t.Helper()
	for i, row := range tab.Rows {
		if row[0] == "mean" && row[1] == role {
			return cellF(t, tab, i, 2)
		}
	}
	t.Fatalf("table %s has no mean row for %s", tab.ID, role)
	return 0
}

func TestFig5Shape(t *testing.T) {
	tab, err := Fig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if col, pre := groupMean(t, tab, "colluder"), groupMean(t, tab, "pretrusted"); col <= pre {
		t.Fatalf("colluder mean %v not above pretrusted %v", col, pre)
	}
}

func TestFig6Shape(t *testing.T) {
	tab, err := Fig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if col, pre := groupMean(t, tab, "colluder"), groupMean(t, tab, "pretrusted"); col >= pre/5 {
		t.Fatalf("colluder mean %v not suppressed below pretrusted %v", col, pre)
	}
}

func TestFig8Shape(t *testing.T) {
	tab, err := Fig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// First 8 rows are colluders: reputation 0 and flag rate 1 under both
	// methods.
	for i := 0; i < 8; i++ {
		if cellF(t, tab, i, 2) != 0 || cellF(t, tab, i, 3) != 0 {
			t.Fatalf("colluder row %d not zeroed: %v", i, tab.Rows[i])
		}
		if cellF(t, tab, i, 4) != 1 || cellF(t, tab, i, 5) != 1 {
			t.Fatalf("colluder row %d not always flagged: %v", i, tab.Rows[i])
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tab, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if col := groupMean(t, tab, "colluder"); col > 1e-3 {
		t.Fatalf("colluder mean %v, want ~0", col)
	}
	if pre, norm := groupMean(t, tab, "pretrusted"), groupMean(t, tab, "normal"); pre <= norm {
		t.Fatalf("pretrusted mean %v not above normal %v", pre, norm)
	}
}

func TestFig12Shape(t *testing.T) {
	tab, err := Fig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (quick counts)", len(tab.Rows))
	}
	// At the larger colluder count, EigenTrust's share must exceed both
	// detectors'.
	last := len(tab.Rows) - 1
	et := cellF(t, tab, last, 1)
	unopt := cellF(t, tab, last, 2)
	opt := cellF(t, tab, last, 3)
	if et <= unopt || et <= opt {
		t.Fatalf("EigenTrust share %v not above detectors (%v, %v)", et, unopt, opt)
	}
	// EigenTrust share grows with colluder count.
	if cellF(t, tab, 0, 1) >= et {
		t.Fatalf("EigenTrust share did not grow: %v -> %v", cellF(t, tab, 0, 1), et)
	}
}

func TestFig13Shape(t *testing.T) {
	tab, err := Fig13(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		et := cellF(t, tab, i, 1)
		unopt := cellF(t, tab, i, 2)
		opt := cellF(t, tab, i, 3)
		if !(unopt > et && et > opt) {
			t.Fatalf("row %d cost ordering violated: unopt=%v et=%v opt=%v", i, unopt, et, opt)
		}
	}
	// EigenTrust cost roughly flat in colluder count (within 2x); the
	// unoptimized cost grows.
	et0 := cellF(t, tab, 0, 1)
	etN := cellF(t, tab, len(tab.Rows)-1, 1)
	if etN > 2*et0 || et0 > 2*etN {
		t.Fatalf("EigenTrust cost not flat: %v -> %v", et0, etN)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("fig5"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Runs != 1 || o.Scale != 1.0 || o.Seed != 1 {
		t.Fatalf("normalized = %+v", o)
	}
}

func TestFig7Shape(t *testing.T) {
	tab, err := Fig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The compromised pretrusted nodes' direct partners (rows 4 and 6,
	// 1-based) must exceed the honest pretrusted node (row 3).
	honestPre := cellF(t, tab, 2, 2)
	if cellF(t, tab, 3, 2) <= honestPre && cellF(t, tab, 5, 2) <= honestPre {
		t.Fatalf("no boosted colluder above honest pretrusted %v", honestPre)
	}
	// Tail colluders (rows 8-11) starve.
	for i := 7; i <= 10; i++ {
		if cellF(t, tab, i, 2) > honestPre {
			t.Fatalf("tail colluder row %d unexpectedly high: %v", i, tab.Rows[i])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	tab, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if col := groupMean(t, tab, "colluder"); col > 1e-3 {
		t.Fatalf("colluder mean %v, want ~0", col)
	}
	// All colluder rows flagged in every run.
	for i := 3; i <= 10; i++ {
		if cellF(t, tab, i, 3) < 0.5 {
			t.Fatalf("colluder row %d flag rate %v", i, cellF(t, tab, i, 3))
		}
	}
}

func TestFig11Shape(t *testing.T) {
	tab, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Compromised pretrusted rows 1-2 at zero with flag rate 1; honest
	// pretrusted row 3 keeps a high reputation.
	for i := 0; i <= 1; i++ {
		if cellF(t, tab, i, 2) != 0 || cellF(t, tab, i, 3) != 1 {
			t.Fatalf("compromised row %d not zeroed/flagged: %v", i, tab.Rows[i])
		}
	}
	if honest := cellF(t, tab, 2, 2); honest < 10*groupMean(t, tab, "normal") {
		t.Fatalf("honest pretrusted %v not well above normal mean", honest)
	}
}

package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestIngestShardsByteIdenticalArtifacts extends the parallel acceptance
// gate to the streaming intake path: a figure run with IngestShards=0
// (legacy immediate records), 1 (batched sequential) and 4 (sharded
// writers) must render byte-identical text and CSV artifacts — the
// sharded pipeline may change how ledgers are built, never what any
// experiment reports.
func TestIngestShardsByteIdenticalArtifacts(t *testing.T) {
	figures := []struct {
		name string
		fn   func(Options) (*Table, error)
	}{
		{"fig5", Fig5},
		{"fig8", Fig8},
		{"fig13", Fig13},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			t.Parallel()
			render := func(shards int) (string, []byte) {
				opts := quickOpts()
				opts.Runs = 2
				opts.IngestShards = shards
				tab, err := fig.fn(opts)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				var buf bytes.Buffer
				if err := tab.Render(&buf); err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				if err := tab.WriteCSV(filepath.Join(dir, tab.ID+".csv")); err != nil {
					t.Fatal(err)
				}
				csv, err := os.ReadFile(filepath.Join(dir, tab.ID+".csv"))
				if err != nil {
					t.Fatal(err)
				}
				return buf.String(), csv
			}
			refText, refCSV := render(0)
			for _, shards := range []int{1, 4} {
				text, csv := render(shards)
				if text != refText {
					t.Errorf("rendered table differs between shards=0 and shards=%d:\n--- shards=0 ---\n%s--- shards=%d ---\n%s",
						shards, refText, shards, text)
				}
				if !bytes.Equal(csv, refCSV) {
					t.Errorf("CSV bytes differ between shards=0 and shards=%d", shards)
				}
			}
		})
	}
}

package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestWorkersByteIdenticalArtifacts is the acceptance gate of the parallel
// experiment engine: the same figure run with Workers=1 and Workers=4 must
// render byte-identical text AND write byte-identical CSV files. It covers
// one per-run-fanned figure (Fig8, which also fans per-detector cells) and
// the two per-cell-fanned grids (Fig12 and Fig13, the cost figure whose
// meter totals must not depend on scheduling).
func TestWorkersByteIdenticalArtifacts(t *testing.T) {
	figures := []struct {
		name string
		fn   func(Options) (*Table, error)
	}{
		{"fig8", Fig8},
		{"fig12", Fig12},
		{"fig13", Fig13},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			t.Parallel()
			render := func(workers int) (string, []byte) {
				opts := quickOpts()
				opts.Runs = 2 // exercise the per-run fan-out too
				opts.Workers = workers
				tab, err := fig.fn(opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				if err := tab.Render(&buf); err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				if err := tab.WriteCSV(filepath.Join(dir, tab.ID+".csv")); err != nil {
					t.Fatal(err)
				}
				csv, err := os.ReadFile(filepath.Join(dir, tab.ID+".csv"))
				if err != nil {
					t.Fatal(err)
				}
				return buf.String(), csv
			}
			seqText, seqCSV := render(1)
			parText, parCSV := render(4)
			if seqText != parText {
				t.Errorf("rendered table differs between workers=1 and workers=4:\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
					seqText, parText)
			}
			if !bytes.Equal(seqCSV, parCSV) {
				t.Errorf("CSV bytes differ between workers=1 and workers=4:\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
					seqCSV, parCSV)
			}
		})
	}
}

// TestRunAveragedParallelMatchesSequential pins the simulator-level fan-out
// via a reputation figure: Workers only changes scheduling, never values.
func TestWorkersByteIdenticalReputationFigure(t *testing.T) {
	render := func(workers int) string {
		opts := quickOpts()
		opts.Runs = 3
		opts.Workers = workers
		tab, err := Fig5(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tab.String()
	}
	if seq, par := render(1), render(3); seq != par {
		t.Errorf("fig5 differs between workers=1 and workers=3:\n--- workers=1 ---\n%s--- workers=3 ---\n%s", seq, par)
	}
}

package experiments

import (
	"fmt"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/parallel"
	"github.com/p2psim/collusion/internal/simulator"
	"github.com/p2psim/collusion/internal/stats"
)

func defaultSimThresholds() core.Thresholds { return simulator.SimThresholds() }

// reputationFigure runs an averaged simulation and renders the reputation
// distribution of the first 20 nodes plus per-group summaries — the
// standard layout of Figures 5-11.
func reputationFigure(id, title string, cfg simulator.Config, opts Options, notes ...string) (*Table, error) {
	opts = opts.normalized()
	cfg.Seed = opts.Seed
	cfg.Workers = opts.Workers
	cfg.IngestShards = opts.IngestShards
	cfg.FullDetect = opts.FullDetect
	cfg.Tracer = opts.Tracer // RunAveragedParallel forks per run internally
	cfg.Obs = opts.Obs
	cfg.Progress = opts.Progress
	avg, err := simulator.RunAveragedParallel(cfg, opts.Runs, opts.Workers)
	if err != nil {
		return nil, err
	}
	role := roleMap(cfg)
	t := &Table{
		ID:    id,
		Title: title,
		// Node IDs are printed 1-based to match the paper's figures.
		Header: []string{"node_id", "role", "avg_reputation", "flag_rate"},
		Notes:  notes,
	}
	show := 20
	if show > cfg.Overlay.Nodes {
		show = cfg.Overlay.Nodes
	}
	for i := 0; i < show; i++ {
		t.AddRow(i+1, role[i], avg.Scores[i], avg.FlagRate[i])
	}
	// Group means over the whole population.
	groups := map[string]*struct {
		sum float64
		n   int
	}{}
	for i := 0; i < cfg.Overlay.Nodes; i++ {
		g := groups[role[i]]
		if g == nil {
			g = &struct {
				sum float64
				n   int
			}{}
			groups[role[i]] = g
		}
		g.sum += avg.Scores[i]
		g.n++
	}
	for _, name := range []string{"pretrusted", "colluder", "normal"} {
		if g := groups[name]; g != nil && g.n > 0 {
			t.AddRow("mean", name, g.sum/float64(g.n), "")
		}
	}
	// Trust concentration across the whole population (the skew the paper
	// notes in Figure 5(a)).
	t.AddRow("gini", "all", stats.Gini(avg.Scores), "")
	return t, nil
}

// roleMap labels each node for figure output.
func roleMap(cfg simulator.Config) map[int]string {
	role := map[int]string{}
	for i := 0; i < cfg.Overlay.Nodes; i++ {
		role[i] = "normal"
	}
	for _, p := range cfg.Pretrusted {
		role[p] = "pretrusted"
	}
	for _, c := range cfg.Colluders {
		role[c] = "colluder"
	}
	for _, cp := range cfg.CompromisedPairs {
		role[cp[0]] = "compromised-pretrusted"
	}
	return role
}

// Fig5 reproduces Figure 5: reputation distribution under bare EigenTrust
// with colluders behaving well 60% of the time.
func Fig5(opts Options) (*Table, error) {
	cfg := simulator.DefaultConfig()
	return reputationFigure("fig5",
		"EigenTrust reputation distribution, B=0.6 (pretrusted 1-3, colluders 4-11)",
		cfg, opts,
		"shape: colluders gain the highest reputations, above even pretrusted nodes")
}

// Fig6 reproduces Figure 6: bare EigenTrust with B=0.2.
func Fig6(opts Options) (*Table, error) {
	cfg := simulator.DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	return reputationFigure("fig6",
		"EigenTrust reputation distribution, B=0.2 (pretrusted 1-3, colluders 4-11)",
		cfg, opts,
		"shape: EigenTrust suppresses colluders when their service is poor; pretrusted highest")
}

// Fig7 reproduces Figure 7: bare EigenTrust with compromised pretrusted
// nodes (n1 colludes with n4, n2 with n6), B=0.2.
func Fig7(opts Options) (*Table, error) {
	cfg := simulator.DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	cfg.CompromisedPairs = [][2]int{{0, 3}, {1, 5}}
	return reputationFigure("fig7",
		"EigenTrust with compromised pretrusted nodes, B=0.2",
		cfg, opts,
		"shape: compromised pretrust boosts colluders 4-7 above everyone; colluders 8-11 starve")
}

// Fig8 reproduces Figure 8: the standalone detectors (no pretrusted nodes,
// colluders 1-8, summation reputation), B=0.2. Unoptimized and Optimized
// produce identical distributions; the table reports both flag rates.
func Fig8(opts Options) (*Table, error) {
	opts = opts.normalized()
	base := simulator.DefaultConfig()
	base.Pretrusted = nil
	base.Colluders = []int{0, 1, 2, 3, 4, 5, 6, 7}
	base.ColluderGoodProb = 0.2
	base.Engine = simulator.EngineSummation
	base.Seed = opts.Seed
	base.IngestShards = opts.IngestShards
	base.FullDetect = opts.FullDetect

	// One cell per detector kind; cells run concurrently and land in
	// index-ordered slots, so the table is identical for every Workers.
	// Each cell traces into its own forked buffer, joined in cell order,
	// keeping the combined trace byte-identical too.
	kinds := []simulator.DetectorKind{simulator.DetectorBasic, simulator.DetectorOptimized}
	kids := opts.Tracer.Fork(len(kinds))
	avgs := make([]*simulator.AveragedResult, len(kinds))
	errs := make([]error, len(kinds))
	parallel.ForEach(opts.Workers, len(kinds), func(c int) {
		cfg := base
		cfg.Detector = kinds[c]
		cfg.Tracer = kids[c]
		cfg.Obs = opts.Obs
		cfg.Progress = opts.Progress
		avgs[c], errs[c] = simulator.RunAveragedParallel(cfg, opts.Runs, opts.Workers)
	})
	if err := opts.Tracer.Join(kids); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	results := map[simulator.DetectorKind]*simulator.AveragedResult{}
	for c, det := range kinds {
		results[det] = avgs[c]
	}
	t := &Table{
		ID:     "fig8",
		Title:  "Standalone detectors, B=0.2 (colluders 1-8, summation reputation)",
		Header: []string{"node_id", "role", "rep_unoptimized", "rep_optimized", "flag_unopt", "flag_opt"},
		Notes: []string{
			"shape: both methods detect all colluders and zero their reputations; results identical",
		},
	}
	role := roleMap(base)
	bu := results[simulator.DetectorBasic]
	op := results[simulator.DetectorOptimized]
	show := 20
	if show > base.Overlay.Nodes {
		show = base.Overlay.Nodes
	}
	for i := 0; i < show; i++ {
		t.AddRow(i+1, role[i], bu.Scores[i], op.Scores[i], bu.FlagRate[i], op.FlagRate[i])
	}
	return t, nil
}

// Fig9 reproduces Figure 9: EigenTrust employing the optimized detector,
// B=0.6.
func Fig9(opts Options) (*Table, error) {
	cfg := simulator.DefaultConfig()
	cfg.Detector = simulator.DetectorOptimized
	return reputationFigure("fig9",
		"EigenTrust+Optimized reputation distribution, B=0.6",
		cfg, opts,
		"shape: colluders drop to 0, pretrusted reputations rise, normal means rise")
}

// Fig10 reproduces Figure 10: EigenTrust+Optimized, B=0.2.
func Fig10(opts Options) (*Table, error) {
	cfg := simulator.DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	cfg.Detector = simulator.DetectorOptimized
	return reputationFigure("fig10",
		"EigenTrust+Optimized reputation distribution, B=0.2",
		cfg, opts,
		"shape: colluders at 0; pretrusted absorb the freed trust mass and stay highest")
}

// Fig11 reproduces Figure 11: EigenTrust+Optimized with compromised
// pretrusted nodes.
func Fig11(opts Options) (*Table, error) {
	cfg := simulator.DefaultConfig()
	cfg.ColluderGoodProb = 0.2
	cfg.CompromisedPairs = [][2]int{{0, 3}, {1, 5}}
	cfg.Detector = simulator.DetectorOptimized
	return reputationFigure("fig11",
		"EigenTrust+Optimized with compromised pretrusted nodes, B=0.2",
		cfg, opts,
		"shape: colluders AND compromised pretrusted nodes at 0; honest pretrusted node 3 stays high")
}

// fig12Counts are the x-axis of Figures 12 and 13.
var fig12Counts = []int{8, 18, 28, 38, 48, 58}

// colluderSet returns n colluder indices starting after the pretrusted
// nodes, as in the paper's layout.
func colluderSet(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 3 + i
	}
	return out
}

// Fig12 reproduces Figure 12: the percentage of file requests served by
// colluders versus the number of colluders, for bare EigenTrust and for
// EigenTrust employing each detector. Settings follow Figure 6 (B=0.2).
func Fig12(opts Options) (*Table, error) {
	opts = opts.normalized()
	counts := opts.ColluderCounts
	if len(counts) == 0 {
		counts = fig12Counts
	}
	t := &Table{
		ID:     "fig12",
		Title:  "Percent of requests sent to colluders vs number of colluders (B=0.2)",
		Header: []string{"colluders", "eigentrust", "unoptimized", "optimized"},
		Notes: []string{
			"shape: EigenTrust's share rises sharply with colluder count; both detectors stay low, flat and equal",
		},
	}
	// Flatten the counts × detectors grid into cells. Each cell is fully
	// determined by (Seed, colluder count, detector) — never by which
	// goroutine claims it — and the rows are assembled from the cell slice
	// in count order, so the table is byte-identical for every Workers.
	kinds := []simulator.DetectorKind{
		simulator.DetectorNone, simulator.DetectorBasic, simulator.DetectorOptimized,
	}
	shares := make([]float64, len(counts)*len(kinds))
	errs := make([]error, len(shares))
	kids := opts.Tracer.Fork(len(shares))
	parallel.ForEach(opts.Workers, len(shares), func(c int) {
		nc, det := counts[c/len(kinds)], kinds[c%len(kinds)]
		cfg := simulator.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.ColluderGoodProb = 0.2
		cfg.Colluders = colluderSet(nc)
		cfg.Detector = det
		cfg.IngestShards = opts.IngestShards
		cfg.FullDetect = opts.FullDetect
		cfg.Tracer = kids[c]
		cfg.Obs = opts.Obs
		cfg.Progress = opts.Progress
		avg, err := simulator.RunAveragedParallel(cfg, opts.Runs, opts.Workers)
		if err != nil {
			errs[c] = err
			return
		}
		shares[c] = avg.PercentToColluders
	})
	if err := opts.Tracer.Join(kids); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for ci, nc := range counts {
		row := []any{nc}
		for ki := range kinds {
			row = append(row, shares[ci*len(kinds)+ki])
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig13 reproduces Figure 13: operation cost (counted work units) for
// thwarting collusion versus the number of colluders. EigenTrust's cost is
// its recursive matrix calculation; the detectors' costs are their matrix
// scans / bound checks. The paper's ordering — Unoptimized >> EigenTrust >
// Optimized, with EigenTrust flat in the colluder count — must hold.
func Fig13(opts Options) (*Table, error) {
	opts = opts.normalized()
	counts := opts.ColluderCounts
	if len(counts) == 0 {
		counts = fig12Counts
	}
	t := &Table{
		ID:     "fig13",
		Title:  "Operation cost for thwarting collusion vs number of colluders (B=0.2)",
		Header: []string{"colluders", "eigentrust", "unoptimized", "optimized"},
		Notes: []string{
			"shape: Unoptimized >> EigenTrust > Optimized; EigenTrust flat in colluder count",
		},
	}
	// Flatten the counts × methods grid into cells, each with its own
	// fresh meter so concurrent cells never share counters. Cell outputs
	// land in index-ordered slots and the rows are assembled in count
	// order, so the table is byte-identical for every Workers.
	const methods = 3 // eigentrust, unoptimized, optimized
	costs := make([]int64, len(counts)*methods)
	errs := make([]error, len(costs))
	kids := opts.Tracer.Fork(len(costs))
	parallel.ForEach(opts.Workers, len(costs), func(c int) {
		nc, method := counts[c/methods], c%methods
		var meter metrics.CostMeter
		cfg := simulator.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.ColluderGoodProb = 0.2
		cfg.Colluders = colluderSet(nc)
		cfg.Meter = &meter
		cfg.IngestShards = opts.IngestShards
		cfg.FullDetect = opts.FullDetect
		cfg.Tracer = kids[c]
		cfg.Obs = opts.Obs
		cfg.Progress = opts.Progress
		switch method {
		case 0:
			// EigenTrust cost: the recursive matrix calculation's
			// multiply-adds, measured on a bare power-iteration run (the
			// cost model the paper describes for EigenTrust).
		case 1:
			// Detector costs: the detector counters, measured on summation
			// runs so the engine does not contribute.
			cfg.Engine = simulator.EngineSummation
			cfg.Detector = simulator.DetectorBasic
		case 2:
			cfg.Engine = simulator.EngineSummation
			cfg.Detector = simulator.DetectorOptimized
		}
		if _, err := simulator.Run(cfg); err != nil {
			errs[c] = err
			return
		}
		if method == 0 {
			costs[c] = meter.Get(metrics.CostEigenMulAdd)
			return
		}
		costs[c] = meter.Get(metrics.CostMatrixScan) +
			meter.Get(metrics.CostBoundCheck) +
			meter.Get(metrics.CostPairCheck)
	})
	if err := opts.Tracer.Join(kids); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for ci, nc := range counts {
		t.AddRow(nc, costs[ci*methods], costs[ci*methods+1], costs[ci*methods+2])
	}
	return t, nil
}

// All runs every figure driver in order.
func All(opts Options) ([]*Table, error) {
	drivers := []struct {
		name string
		fn   func(Options) (*Table, error)
	}{
		{"fig1a", Fig1a}, {"fig1b", Fig1b}, {"fig1c", Fig1c}, {"fig1d", Fig1d},
		{"fig4", Fig4}, {"fig5", Fig5}, {"fig6", Fig6}, {"fig7", Fig7},
		{"fig8", Fig8}, {"fig9", Fig9}, {"fig10", Fig10}, {"fig11", Fig11},
		{"fig12", Fig12}, {"fig13", Fig13},
	}
	var tables []*Table
	for _, d := range drivers {
		t, err := d.fn(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.name, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// ByName returns the driver for a figure id, or an error listing the
// available ids.
func ByName(name string) (func(Options) (*Table, error), error) {
	drivers := map[string]func(Options) (*Table, error){
		"fig1a": Fig1a, "fig1b": Fig1b, "fig1c": Fig1c, "fig1d": Fig1d,
		"fig4": Fig4, "fig5": Fig5, "fig6": Fig6, "fig7": Fig7,
		"fig8": Fig8, "fig9": Fig9, "fig10": Fig10, "fig11": Fig11,
		"fig12": Fig12, "fig13": Fig13,
		"ab-thresholds": AbThresholds, "ab-strict": AbStrict,
		"ab-managers": AbManagers, "ab-false-positives": AbFalsePositives,
		"ab-group": AbGroup, "ab-sybil": AbSybil, "ab-engines": AbEngines,
		"ab-timeline": AbTimeline, "ab-scale": AbScale,
		"ab-churn": AbChurn, "ab-intensity": AbIntensity,
		"ab-decentralized-live": AbDecentralizedLive,
	}
	if fn, ok := drivers[name]; ok {
		return fn, nil
	}
	return nil, fmt.Errorf("experiments: unknown figure %q (try fig1a-fig1d, fig4-fig13, ab-*)", name)
}

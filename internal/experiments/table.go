// Package experiments regenerates every quantitative figure of the paper's
// evaluation (Figure 1a-d trace analyses, the Formula (2) surface of
// Figure 4, the reputation distributions of Figures 5-11, the
// request-share comparison of Figure 12 and the operation-cost comparison
// of Figure 13). Each driver returns a Table that renders as aligned text
// and can be exported as CSV; cmd/experiments exposes them on the command
// line and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/p2psim/collusion/internal/obs"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the figure identifier, e.g. "fig5".
	ID string
	// Title describes the artifact.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data, one string per column.
	Rows [][]string
	// Notes carries expected-shape commentary printed under the table.
	Notes []string
}

// AddRow appends a row, formatting each value with %v (floats with %.6g).
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", x)
		case float32:
			row[i] = fmt.Sprintf("%.6g", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && i != len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	return b.String()
}

// WriteCSV writes the table data (header + rows) to path.
func (t *Table) WriteCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiments: write header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: write row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: flush: %w", err)
	}
	return f.Close()
}

// SaveAll renders tables to w and, when dir is non-empty, writes one CSV
// per table into dir.
func SaveAll(w io.Writer, dir string, tables ...*Table) error {
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		if err := t.WriteCSV(filepath.Join(dir, t.ID+".csv")); err != nil {
			return err
		}
	}
	return nil
}

// Options configures experiment execution.
type Options struct {
	// Seed drives every generator and simulation.
	Seed uint64
	// Runs is the number of averaged simulation runs (the paper uses 5).
	Runs int
	// Scale multiplies synthetic-trace volumes; 1.0 reproduces the default
	// laptop-scale population, smaller values speed up tests.
	Scale float64
	// ColluderCounts overrides the x-axis of Figures 12 and 13
	// (default {8, 18, 28, 38, 48, 58}).
	ColluderCounts []int
	// Workers bounds the goroutines used by the parallel experiment
	// engine: averaged runs fan per-run, Figures 8, 12 and 13 fan
	// per-cell, and the EigenTrust engine splits its power iteration.
	// Values <= 1 run sequentially. Every worker count produces
	// byte-identical artifacts: cell RNG seeds derive only from Seed and
	// the cell index, and reductions walk cells in index order.
	Workers int
	// IngestShards is forwarded to every simulation the drivers run: when
	// >= 1 each simulation cycle's ratings flush through the sharded
	// ingest pipeline with this many writer goroutines. Artifacts are
	// byte-identical for every value >= 1 (and for 0 up to the absence of
	// ingest_audit trace events); see simulator.Config.IngestShards.
	IngestShards int
	// FullDetect is forwarded to every simulation the drivers run: when
	// set, detectors take the from-scratch Detect path each cycle instead
	// of memoized incremental screening. Artifacts are byte-identical
	// either way — the flag exists to measure that equivalence (and the
	// cost gap); see simulator.Config.FullDetect.
	FullDetect bool
	// Tracer, if enabled, threads the observability run trace through
	// every simulation a driver performs. Cell-parallel figures fork one
	// buffered child tracer per cell and join them in cell order, so the
	// combined trace stays byte-identical for every Workers.
	Tracer *obs.Tracer
	// Obs, if non-nil, collects run histograms (EigenTrust iterations,
	// rating-pair frequencies, DHT lookup hops) across every simulation a
	// driver performs. Runs only record into histograms, which are
	// order-independent, so one registry is safe under cell parallelism.
	Obs *obs.Registry
	// Progress, if non-nil, is forwarded to every simulation a driver
	// performs: one registry-delta line per simulation cycle, a live feed
	// across the whole experiment sweep. Progress serializes internally,
	// so sharing one reporter across concurrent figure cells is safe, but
	// line order then reflects scheduling — a progress stream is a live
	// feed here, not a deterministic artifact. (Span tracers are NOT
	// plumbed through experiments for the same reason taken seriously:
	// a shared open-span stack across concurrent cells would corrupt.)
	Progress *obs.Progress
}

// DefaultOptions mirrors the paper's averaging (5 runs).
func DefaultOptions() Options {
	return Options{Seed: 1, Runs: 5, Scale: 1.0}
}

func (o Options) normalized() Options {
	if o.Runs < 1 {
		o.Runs = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

package experiments

import (
	"fmt"
	"sort"

	"github.com/p2psim/collusion/internal/analysis"
	"github.com/p2psim/collusion/internal/trace"
)

// amazonTrace builds the synthetic Amazon trace used by the Figure 1
// drivers, with volumes scaled by opts.Scale.
func amazonTrace(opts Options) (*trace.AmazonTrace, error) {
	cfg := trace.DefaultAmazonConfig()
	cfg.Seed = opts.Seed
	for i := range cfg.Bands {
		cfg.Bands[i].MeanDailyRatings *= opts.Scale
	}
	return trace.GenerateAmazon(cfg)
}

// Fig1a reproduces Figure 1(a): per-seller positive/negative rating
// volumes ordered by reputation. High-reputed sellers attract the most
// transactions; the suspicious mid-band sellers attract nearly as many as
// the top band.
func Fig1a(opts Options) (*Table, error) {
	opts = opts.normalized()
	at, err := amazonTrace(opts)
	if err != nil {
		return nil, err
	}
	vols := analysis.RatingVsReputation(&at.Trace)
	suspicious := map[trace.NodeID]bool{}
	for _, s := range at.Sellers {
		if s.Suspicious {
			suspicious[s.ID] = true
		}
	}
	t := &Table{
		ID:     "fig1a",
		Title:  "Ratings vs seller reputation (synthetic Amazon trace)",
		Header: []string{"seller", "reputation", "positive", "negative", "total", "suspicious"},
		Notes: []string{
			"shape: volume rises with reputation; suspicious [0.94,0.97] sellers rival the top band",
		},
	}
	for _, v := range vols {
		t.AddRow(int(v.Seller), v.Reputation, v.Positive, v.Negative, v.Total(), suspicious[v.Seller])
	}
	return t, nil
}

// Fig1b reproduces Figure 1(b): the rating time series of the most-active
// raters on one suspicious seller, exposing the booster (always 5), rival
// (always 1) and normal (mixed) archetypes.
func Fig1b(opts Options) (*Table, error) {
	opts = opts.normalized()
	at, err := amazonTrace(opts)
	if err != nil {
		return nil, err
	}
	// Pick the first suspicious seller, as the paper picks one example.
	var seller trace.NodeID = -1
	for _, s := range at.Sellers {
		if s.Suspicious {
			seller = s.ID
			break
		}
	}
	if seller < 0 {
		return nil, fmt.Errorf("experiments: no suspicious seller in trace")
	}
	series := analysis.SellerRaterSeries(&at.Trace, seller, 10)
	if len(series) > 5 {
		series = series[:5] // the paper plots 5 representative raters
	}
	t := &Table{
		ID:     "fig1b",
		Title:  fmt.Sprintf("Ratings over time on suspicious seller %d (top raters)", seller),
		Header: []string{"rater", "day", "score", "archetype"},
		Notes: []string{
			"shape: boosters rate 5 continuously, rivals rate 1 continuously, normals mix",
		},
	}
	for _, s := range series {
		arch := classifyArchetype(s)
		for _, p := range s.Points {
			t.AddRow(int(s.Rater), p.Day, int(p.Score), arch)
		}
	}
	return t, nil
}

func classifyArchetype(s analysis.RaterSeries) string {
	pos, neg := 0, 0
	for _, p := range s.Points {
		switch p.Score.Polarity() {
		case 1:
			pos++
		case -1:
			neg++
		}
	}
	switch {
	case pos == len(s.Points):
		return "booster"
	case neg == len(s.Points):
		return "rival"
	default:
		return "normal"
	}
}

// Fig1c reproduces Figure 1(c): per-rater rating frequency statistics for
// suspicious vs unsuspicious sellers. Suspicious sellers show much higher
// maxima and variance because their boosters rate far more often than any
// organic buyer.
func Fig1c(opts Options) (*Table, error) {
	opts = opts.normalized()
	at, err := amazonTrace(opts)
	if err != nil {
		return nil, err
	}
	var suspicious, normal []trace.NodeID
	for _, s := range at.Sellers {
		if s.Suspicious && len(suspicious) < 5 {
			suspicious = append(suspicious, s.ID)
		}
		if !s.Suspicious && s.Band >= 0.9 && len(normal) < 4 {
			normal = append(normal, s.ID)
		}
	}
	sellers := append(append([]trace.NodeID{}, suspicious...), normal...)
	cfg := trace.DefaultAmazonConfig()
	freqs := analysis.SellerRaterFrequencies(&at.Trace, sellers, cfg.Days)
	t := &Table{
		ID:    "fig1c",
		Title: "Per-rater rating frequency by seller (5 suspicious vs 4 unsuspicious)",
		Header: []string{"seller", "reputation", "suspicious", "avg_per_rater_per_day",
			"max_per_rater", "min_per_rater", "variance"},
		Notes: []string{
			"shape: suspicious sellers have much larger max-per-rater and variance at similar reputation",
		},
	}
	isSuspicious := map[trace.NodeID]bool{}
	for _, s := range suspicious {
		isSuspicious[s] = true
	}
	for _, f := range freqs {
		t.AddRow(int(f.Seller), f.Reputation, isSuspicious[f.Seller],
			f.AvgPerDay, f.MaxPerRater, f.MinPerRater, f.VariancePerR)
	}
	return t, nil
}

// Fig1d reproduces Figure 1(d): the Overstock interaction graph with edges
// where a pair exchanged more than 20 ratings. The component structure is
// pairwise — isolated pairs plus open chains, no closed groups (C5).
func Fig1d(opts Options) (*Table, error) {
	opts = opts.normalized()
	cfg := trace.DefaultOverstockConfig()
	cfg.Seed = opts.Seed
	cfg.OrganicTransactions = int(float64(cfg.OrganicTransactions) * opts.Scale)
	tr, err := trace.GenerateOverstock(cfg)
	if err != nil {
		return nil, err
	}
	g := analysis.BuildInteractionGraph(tr, analysis.GraphOptions{EdgeThreshold: 20, RequireMutual: true})
	structure := g.ClassifyStructure()

	t := &Table{
		ID:     "fig1d",
		Title:  "Overstock interaction graph (edge: >20 mutual ratings)",
		Header: []string{"metric", "value"},
		Notes: []string{
			"shape: suspected colluders pair up; zero closed groups (triangles) — C5",
		},
	}
	t.AddRow("nodes_with_edges", len(g.Nodes()))
	t.AddRow("edges", len(g.Edges()))
	t.AddRow("isolated_pairs", structure.IsolatedPairs)
	t.AddRow("open_chains", structure.ChainComponents)
	t.AddRow("closed_groups", structure.ClosedGroups)
	t.AddRow("triangles", g.Triangles())
	t.AddRow("max_degree", g.MaxDegree())

	// Append the edge list for plotting.
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		t.AddRow("edge", fmt.Sprintf("%d-%d", e[0], e[1]))
	}
	return t, nil
}

// Fig4 reproduces Figure 4: the Formula (2) reputation bounds of a
// suspected colluder as a function of N_i and N_(i,j), for the default
// threshold pair. Points between lo and hi are consistent with collusion.
func Fig4(opts Options) (*Table, error) {
	opts = opts.normalized()
	th := defaultSimThresholds()
	t := &Table{
		ID:     "fig4",
		Title:  fmt.Sprintf("Reputation bounds of suspected colluders (Ta=%.2f, Tb=%.2f)", th.Ta, th.Tb),
		Header: []string{"N_i", "N_ij", "lower", "upper"},
		Notes: []string{
			"surface: reputation of a colluder lies between lower and upper for each (N_i, N_ij)",
		},
	}
	for ni := 50; ni <= 500; ni += 50 {
		for frac := 1; frac <= 9; frac++ {
			nij := ni * frac / 10
			lo, hi := th.ReputationBounds(ni, nij)
			t.AddRow(ni, nij, lo, hi)
		}
	}
	return t, nil
}

package ingest

import (
	"testing"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

// sparse100kBatch is the Sparse100k replay workload: one million ratings
// over 100,000 nodes at ~10 ratings/node — the Amazon-crawl scale the
// paper's detectors assume arrives as a continuous stream.
func sparse100kBatch() []Rating {
	const (
		n       = 100_000
		ratings = n * 10
	)
	r := rng.New(7)
	batch := make([]Rating, 0, ratings)
	for k := 0; k < ratings; k++ {
		rater, target := r.Intn(n), r.Intn(n)
		if rater == target {
			continue
		}
		pol := int8(1)
		if r.Bool(0.2) {
			pol = -1
		}
		batch = append(batch, Rating{Rater: int32(rater), Target: int32(target), Polarity: pol})
	}
	return batch
}

// benchShardedIngest replays the million-rating batch into a fresh ledger
// with the given writer count. Shards=1 is the single-writer baseline the
// parallel counts are judged against; the outputs are byte-identical, so
// the only difference worth measuring is wall time.
func benchShardedIngest(b *testing.B, shards int) {
	batch := sparse100kBatch()
	const n = 100_000
	g := &Ingester{Shards: shards}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := reputation.NewLedger(n)
		if err := g.Ingest(batch, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedIngest1(b *testing.B) { benchShardedIngest(b, 1) }
func BenchmarkShardedIngest4(b *testing.B) { benchShardedIngest(b, 4) }
func BenchmarkShardedIngest8(b *testing.B) { benchShardedIngest(b, 8) }

// The window benchmarks drive cycles of ratings through a
// window-maintenance strategy: record a cycle's ratings, close the
// cycle, read the merged window twice (once for scoring, once for
// detection — the simulator's access pattern). The workload models the
// bursty-stream regime the window exists for: each cycle touches a small
// fraction of the population, so the ring holds much more history than
// any one cycle changes.
const (
	windowBenchNodes  = 20_000
	windowBenchLength = 20
	windowBenchCycles = 50
	windowBenchRate   = 2_000 // ratings per cycle
)

// BenchmarkWindowRolloverIncremental measures the delta-ring WindowLedger:
// each cycle costs one merge of the new delta plus one subtraction of the
// expiring one, regardless of window length.
func BenchmarkWindowRolloverIncremental(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rng.New(7)
		w := NewWindowLedger(windowBenchNodes, windowBenchLength)
		sink := 0
		for c := 0; c < windowBenchCycles; c++ {
			for k := 0; k < windowBenchRate; k++ {
				rater, target := r.Intn(windowBenchNodes), r.Intn(windowBenchNodes)
				if rater == target {
					continue
				}
				w.Record(rater, target, 1)
			}
			w.Roll()
			sink += w.Window().TotalFor(0)
			sink += w.Window().TotalFor(1)
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	}
}

// The windowed-detection benchmarks measure the closed streaming loop:
// each cycle records ratings touching ~1% of the population, seals the
// cycle with Roll, and runs pairwise detection over the merged window —
// incrementally (candidate upkeep and screens driven by Roll's dirty
// set) or from scratch (every row re-scored, every high pair
// re-screened). The gap between the two is the per-cycle price the
// incremental path removes.
const (
	wdBenchNodes   = 10_000
	wdBenchWindow  = 20
	wdBenchPerCyc  = 100 // ~1% of rows dirtied per cycle
	wdBenchColludA = 17
	wdBenchColludB = 18
)

// wdBenchCycle records one cycle's ratings (background traffic plus a
// persistently hot colluding pair, so detection always has real work)
// and seals it, returning Roll's dirty set.
func wdBenchCycle(r *rng.Rand, win *WindowLedger) []int {
	for k := 0; k < wdBenchPerCyc; k++ {
		rater, target := r.Intn(wdBenchNodes), r.Intn(wdBenchNodes)
		if rater == target {
			continue
		}
		pol := 1
		if r.Bool(0.2) {
			pol = -1
		}
		win.Record(rater, target, pol)
	}
	for k := 0; k < 3; k++ {
		win.Record(wdBenchColludA, wdBenchColludB, 1)
		win.Record(wdBenchColludB, wdBenchColludA, 1)
	}
	return win.Roll()
}

// BenchmarkWindowedIncrementalDetect is the O(dirty) per-cycle path the
// simulator's windowed runs take.
func BenchmarkWindowedIncrementalDetect(b *testing.B) {
	r := rng.New(13)
	win := NewWindowLedger(wdBenchNodes, wdBenchWindow)
	det := core.NewOptimized(core.DefaultThresholds())
	for c := 0; c < wdBenchWindow; c++ {
		det.DetectIncremental(win.Window(), wdBenchCycle(r, win))
	}
	b.ReportAllocs()
	b.ResetTimer()
	// The hot pair is usually but not always flagged (background raters
	// intermittently corroborate it within the window), so sink the pair
	// count instead of asserting.
	sink := 0
	for i := 0; i < b.N; i++ {
		res := det.DetectIncremental(win.Window(), wdBenchCycle(r, win))
		sink += len(res.Pairs)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkWindowedFullDetect is the from-scratch baseline over the same
// stream (the simulator's FullDetect path).
func BenchmarkWindowedFullDetect(b *testing.B) {
	r := rng.New(13)
	win := NewWindowLedger(wdBenchNodes, wdBenchWindow)
	det := core.NewOptimized(core.DefaultThresholds())
	for c := 0; c < wdBenchWindow; c++ {
		wdBenchCycle(r, win)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		wdBenchCycle(r, win)
		res := det.Detect(win.Window())
		sink += len(res.Pairs)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkWindowRolloverRemerge is the pre-change baseline: the
// reputation.WindowedLedger re-merges every period of the ring each time
// the window is read, paying O(window · nnz) per cycle.
func BenchmarkWindowRolloverRemerge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rng.New(7)
		w := reputation.NewWindowedLedger(windowBenchNodes, windowBenchLength)
		sink := 0
		for c := 0; c < windowBenchCycles; c++ {
			for k := 0; k < windowBenchRate; k++ {
				rater, target := r.Intn(windowBenchNodes), r.Intn(windowBenchNodes)
				if rater == target {
					continue
				}
				w.Record(rater, target, 1)
			}
			sink += w.Window().TotalFor(0)
			sink += w.Window().TotalFor(1)
			w.Advance()
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	}
}

package ingest

import (
	"testing"

	"github.com/p2psim/collusion/internal/reputation"
)

// FuzzShardMerge feeds arbitrary byte-encoded batches through the sharded
// ingest pipeline at several shard counts and cross-checks each result
// against sequential Record calls, so the fuzzer explores shard-boundary
// and merge-order interleavings the seeded equivalence trials might miss.
// The first byte picks the shard count; each following triple encodes
// (rater, target, polarity). Self-ratings are skipped: the batch contract
// mirrors Record's panic contract, which FuzzLedgerRecord already covers.
func FuzzShardMerge(f *testing.F) {
	f.Add([]byte{4, 0, 1, 2, 1, 0, 0, 3, 2, 1})
	f.Add([]byte{8, 5, 1, 2, 4, 1, 2, 3, 1, 2, 2, 1, 2})
	f.Add([]byte{2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 8
		shards := 1
		if len(data) > 0 {
			shards = 1 + int(data[0])%8
			data = data[1:]
		}
		var batch []Rating
		want := reputation.NewLedger(n)
		for len(data) >= 3 {
			rater := int(data[0]) % n
			target := int(data[1]) % n
			polarity := int(data[2])%3 - 1
			data = data[3:]
			if rater == target {
				continue
			}
			batch = append(batch, Rating{
				Rater:    int32(rater),
				Target:   int32(target),
				Polarity: int8(polarity),
			})
			want.Record(rater, target, polarity)
		}
		got := reputation.NewLedger(n)
		g := &Ingester{Shards: shards}
		if err := g.Ingest(batch, got); err != nil {
			t.Fatal(err)
		}
		requireLedgersEqual(t, "fuzz sharded ingest", got, want, true)
		// A second batch through the same Ingester exercises delta reuse.
		if err := g.Ingest(batch, got); err != nil {
			t.Fatal(err)
		}
		double := reputation.NewLedger(n)
		for _, rec := range batch {
			double.Record(int(rec.Rater), int(rec.Target), int(rec.Polarity))
			double.Record(int(rec.Rater), int(rec.Target), int(rec.Polarity))
		}
		requireLedgersEqual(t, "fuzz repeated batch", got, double, true)
	})
}

// Package ingest is the streaming intake subsystem: it turns bulk rating
// streams — trace replays, simulator query cycles, live feeds — into
// ledger updates that scale across cores without ever changing a byte of
// the results.
//
// Two pieces compose it. The Ingester shards a batch of ratings across K
// writer goroutines by target row; each writer accumulates a private CSR
// delta ledger, and the deltas are folded into the destination ledgers in
// shard-index order, so the outcome is a pure function of the batch
// content and never of scheduling. The WindowLedger keeps a ring of
// per-cycle CSR deltas and maintains the merged sliding window
// incrementally — add the newest delta, subtract the expiring one — in
// place of the full window re-merge sliding-window runs used to pay every
// cycle.
//
// Determinism contract (the same one internal/parallel documents): every
// shard count produces observationally identical ledgers — identical
// adjacency, counts, totals and sorted dirty sets — because per-pair
// counts are order-independent sums, row adjacency is kept ascending, and
// rows are partitioned disjointly across shards. The equivalence tests
// and FuzzShardMerge pin this against the single-writer Record path.
package ingest

import (
	"fmt"

	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/parallel"
	"github.com/p2psim/collusion/internal/reputation"
)

// Rating is one intake record: rater scored target with the paper's
// three-valued polarity (-1, 0, +1). The compact layout keeps
// million-rating replay batches cache-friendly.
type Rating struct {
	Rater, Target int32
	Polarity      int8
}

// Ingester shards rating batches across writer goroutines. The zero value
// is a valid sequential ingester; set Shards for parallel intake. An
// Ingester reuses its shard delta ledgers across batches, so one instance
// must not be shared by concurrent callers.
type Ingester struct {
	// Shards is the writer-goroutine count K. Values <= 1 ingest
	// sequentially on the calling goroutine; every value produces
	// observationally identical destination ledgers.
	Shards int
	// Obs, if non-nil, receives the ingest.records_per_shard histogram:
	// one observation per shard per batch, recording how many ratings the
	// shard wrote. Histogram recording is atomic and order-independent.
	Obs *obs.Registry
	// Tracer, if enabled, receives one ingest_audit event per batch with
	// the batch size and the count of distinct targets touched. Both
	// attributes are pure functions of the batch, never of the shard
	// count, so traces stay byte-identical for every Shards value.
	Tracer *obs.Tracer
	// Spans, if enabled, brackets every Ingest call in an "ingest" span
	// whose payload (record count) is a pure function of the batch, so
	// the span timeline is byte-identical for every Shards value.
	Spans *obs.SpanTracer

	deltas   []*reputation.Ledger // cached per-shard deltas, population n
	perShard []int                // reused per-shard write-count scratch
	n        int
}

// Ingest folds one batch of ratings into every destination ledger. All
// destinations must share one population size. With Shards <= 1 the batch
// is recorded directly; otherwise target rows are partitioned across the
// shard writers (target mod K), each accumulates a private delta, and the
// deltas merge into each destination in shard-index order. Invalid
// records (out-of-range nodes, self-ratings, bad polarity) panic exactly
// as Ledger.Record does: they are caller bugs, not data conditions.
//
//colsim:hotpath
func (g *Ingester) Ingest(batch []Rating, dsts ...*reputation.Ledger) error {
	if g.Spans.Enabled() {
		return g.ingestSpanned(batch, dsts)
	}
	return g.ingest(batch, dsts)
}

// ingestSpanned brackets the batch in an "ingest" span.
//
//colsim:coldpath span bracketing runs only when a span tracer is attached
func (g *Ingester) ingestSpanned(batch []Rating, dsts []*reputation.Ledger) error {
	g.Spans.Begin("ingest")
	err := g.ingest(batch, dsts)
	g.Spans.End("ingest", obs.Int("records", len(batch)))
	return err
}

// ingest is the span-free batch fold shared by both entry paths.
//
//colsim:hotpath
func (g *Ingester) ingest(batch []Rating, dsts []*reputation.Ledger) error {
	if len(dsts) == 0 {
		return fmt.Errorf("ingest: no destination ledgers") //colsimlint:ignore hotalloc caller-bug guard; allocates only on the error path
	}
	n := dsts[0].Size()
	for _, d := range dsts[1:] {
		if d.Size() != n {
			return fmt.Errorf("ingest: destination sizes differ: %d vs %d", n, d.Size()) //colsimlint:ignore hotalloc caller-bug guard; allocates only on the error path
		}
	}
	if len(batch) == 0 {
		return nil
	}
	shards := g.Shards
	if shards < 1 {
		shards = 1
	}
	if shards == 1 {
		for _, d := range dsts {
			for _, r := range batch {
				d.Record(int(r.Rater), int(r.Target), int(r.Polarity))
			}
		}
		if h := g.Obs.Histogram("ingest.records_per_shard"); h != nil {
			h.Observe(int64(len(batch)))
		}
		if g.Tracer.Enabled() {
			g.audit(batch, distinctTargets(batch))
		}
		return nil
	}

	g.ensureDeltas(shards, n)
	perShard := g.perShard[:shards]
	parallel.ForEach(shards, shards, func(k int) { //colsimlint:ignore hotalloc one worker-closure fan-out per batch, amortized over the batch's ratings
		d := g.deltas[k]
		wrote := 0
		for _, r := range batch {
			if int(r.Target)%shards == k {
				d.Record(int(r.Rater), int(r.Target), int(r.Polarity))
				wrote++
			}
		}
		perShard[k] = wrote
	})
	// Index-ordered reduction: shard rows are disjoint (partitioned by
	// target), so each merge takes the fresh-row fast path and the merged
	// adjacency is identical to what sequential Records would have built.
	for _, d := range g.deltas[:shards] {
		for _, dst := range dsts {
			if err := dst.Merge(d); err != nil {
				return err
			}
		}
	}
	g.observe(perShard)
	if g.Tracer.Enabled() {
		// Shard rows are disjoint, so summing per-delta dirty rows counts
		// the batch's distinct targets — the same number the sequential
		// path reports.
		targets := 0
		for _, d := range g.deltas[:shards] {
			targets += len(d.DirtyTargets()) //colsimlint:ignore hotalloc tracing-only branch; the sorted dirty snapshot is the audit's price
		}
		g.audit(batch, targets)
	}
	return nil
}

// ensureDeltas readies one empty private delta ledger per shard and the
// per-shard count scratch, reusing storage from previous batches when the
// population matches.
func (g *Ingester) ensureDeltas(shards, n int) {
	if g.n != n {
		g.deltas = nil
		g.n = n
	}
	for len(g.deltas) < shards {
		g.deltas = append(g.deltas, reputation.NewLedger(n)) //colsimlint:ignore hotalloc one delta ledger per shard, allocated on first use or population change and reused for every later batch
	}
	if cap(g.perShard) < shards {
		g.perShard = make([]int, shards) //colsimlint:ignore hotalloc grows to the high-water shard count and is resliced afterwards
	}
	for _, d := range g.deltas[:shards] {
		d.Reset()
		d.ClearDirty()
	}
}

// observe records per-shard write counts into the registry histogram.
func (g *Ingester) observe(perShard []int) {
	h := g.Obs.Histogram("ingest.records_per_shard")
	if h == nil {
		return
	}
	for _, c := range perShard {
		h.Observe(int64(c))
	}
}

// audit emits the per-batch ingest_audit trace event. Both attributes
// depend only on the batch, so the trace is byte-identical for every
// shard count.
//
//colsim:coldpath reached only from tracing-enabled branches; one event per batch
func (g *Ingester) audit(batch []Rating, targets int) {
	g.Tracer.Emit("ingest_audit",
		obs.Int("records", len(batch)),
		obs.Int("targets", targets))
}

// distinctTargets counts the batch's distinct targets for the sequential
// path's audit event. Only the count is used, so map iteration order
// cannot leak into output. Skipped entirely when tracing is off.
//
//colsim:coldpath tracing-only helper; the per-batch set is the audit's price
func distinctTargets(batch []Rating) int {
	seen := make(map[int32]struct{}, len(batch))
	for _, r := range batch {
		seen[r.Target] = struct{}{}
	}
	return len(seen)
}

package ingest

import (
	"bytes"
	"testing"

	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
	"github.com/p2psim/collusion/internal/trace"
)

// randomBatch builds count random ratings over an n-node population,
// skipping self-ratings.
func randomBatch(r *rng.Rand, n, count int) []Rating {
	batch := make([]Rating, 0, count)
	for k := 0; k < count; k++ {
		rater, target := r.Intn(n), r.Intn(n)
		if rater == target {
			continue
		}
		batch = append(batch, Rating{
			Rater:    int32(rater),
			Target:   int32(target),
			Polarity: int8(r.Intn(3) - 1),
		})
	}
	return batch
}

// requireLedgersEqual asserts every observable of got matches want:
// population, per-target adjacency with aligned counts, receive and sent
// totals, and (when checkDirty) the sorted dirty-target set.
func requireLedgersEqual(t *testing.T, step string, got, want *reputation.Ledger, checkDirty bool) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: Size = %d, want %d", step, got.Size(), want.Size())
	}
	for target := 0; target < want.Size(); target++ {
		gp, wp := got.PairCountsOf(target), want.PairCountsOf(target)
		if len(gp.Raters) != len(wp.Raters) {
			t.Fatalf("%s: target %d has raters %v, want %v", step, target, gp.Raters, wp.Raters)
		}
		for k := range wp.Raters {
			if gp.Raters[k] != wp.Raters[k] || gp.Total[k] != wp.Total[k] ||
				gp.Pos[k] != wp.Pos[k] || gp.Neg[k] != wp.Neg[k] {
				t.Fatalf("%s: target %d entry %d = (r%d %d/%d/%d), want (r%d %d/%d/%d)",
					step, target, k,
					gp.Raters[k], gp.Total[k], gp.Pos[k], gp.Neg[k],
					wp.Raters[k], wp.Total[k], wp.Pos[k], wp.Neg[k])
			}
		}
		if got.TotalFor(target) != want.TotalFor(target) ||
			got.PositiveFor(target) != want.PositiveFor(target) ||
			got.NegativeFor(target) != want.NegativeFor(target) ||
			got.OutgoingTotal(target) != want.OutgoingTotal(target) {
			t.Fatalf("%s: target %d totals differ", step, target)
		}
	}
	if !checkDirty {
		return
	}
	gd, wd := got.DirtyTargets(), want.DirtyTargets()
	if len(gd) != len(wd) {
		t.Fatalf("%s: DirtyTargets = %v, want %v", step, gd, wd)
	}
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: DirtyTargets = %v, want %v", step, gd, wd)
		}
	}
}

// TestShardedMatchesSequential is the subsystem's core determinism gate:
// for every shard count the sharded ingest must be observationally
// identical to sequential Record calls — adjacency, counts, totals, and
// the sorted dirty set.
func TestShardedMatchesSequential(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(60)
		batch := randomBatch(r, n, r.Intn(800))

		want := reputation.NewLedger(n)
		for _, rec := range batch {
			want.Record(int(rec.Rater), int(rec.Target), int(rec.Polarity))
		}

		for _, k := range []int{1, 2, 4, 8} {
			got := reputation.NewLedger(n)
			g := &Ingester{Shards: k}
			if err := g.Ingest(batch, got); err != nil {
				t.Fatalf("shards=%d: %v", k, err)
			}
			requireLedgersEqual(t, "sharded ingest", got, want, true)
		}
	}
}

// TestIngesterReuseAcrossBatches drives several batches through one
// Ingester instance (the simulator's per-cycle flush pattern) to pin the
// delta-cache reuse: accumulated state must match one sequential pass.
func TestIngesterReuseAcrossBatches(t *testing.T) {
	r := rng.New(47)
	const n = 40
	want := reputation.NewLedger(n)
	got := reputation.NewLedger(n)
	g := &Ingester{Shards: 4}
	for cycle := 0; cycle < 20; cycle++ {
		batch := randomBatch(r, n, r.Intn(300))
		for _, rec := range batch {
			want.Record(int(rec.Rater), int(rec.Target), int(rec.Polarity))
		}
		if err := g.Ingest(batch, got); err != nil {
			t.Fatal(err)
		}
	}
	requireLedgersEqual(t, "multi-batch reuse", got, want, true)
}

// TestIngestMultipleDestinations mirrors the windowed simulator flush:
// one batch folds into both the cumulative ledger and the open window
// delta, and both must match the sequential reference.
func TestIngestMultipleDestinations(t *testing.T) {
	r := rng.New(53)
	const n = 30
	batch := randomBatch(r, n, 500)
	want := reputation.NewLedger(n)
	for _, rec := range batch {
		want.Record(int(rec.Rater), int(rec.Target), int(rec.Polarity))
	}
	a, b := reputation.NewLedger(n), reputation.NewLedger(n)
	g := &Ingester{Shards: 3}
	if err := g.Ingest(batch, a, b); err != nil {
		t.Fatal(err)
	}
	requireLedgersEqual(t, "destination a", a, want, true)
	requireLedgersEqual(t, "destination b", b, want, true)
}

// TestIngestAuditByteIdentity pins the trace contract: ingest_audit
// events carry only batch-derived attributes, so the emitted trace bytes
// are identical for every shard count.
func TestIngestAuditByteIdentity(t *testing.T) {
	r := rng.New(61)
	const n = 50
	batches := make([][]Rating, 6)
	for i := range batches {
		batches[i] = randomBatch(r, n, 200+r.Intn(200))
	}
	traceFor := func(shards int) []byte {
		var sink obs.BufferSink
		g := &Ingester{Shards: shards, Tracer: obs.NewTracer(&sink)}
		dst := reputation.NewLedger(n)
		for _, b := range batches {
			if err := g.Ingest(b, dst); err != nil {
				t.Fatal(err)
			}
		}
		return sink.Bytes()
	}
	ref := traceFor(1)
	if len(ref) == 0 {
		t.Fatal("sequential ingest emitted no audit events")
	}
	for _, k := range []int{2, 4, 8} {
		if !bytes.Equal(ref, traceFor(k)) {
			t.Fatalf("shards=%d changed the audit trace bytes", k)
		}
	}
}

// TestRecordsPerShardHistogram checks the intake metric: one observation
// per shard per batch, summing to the batch size.
func TestRecordsPerShardHistogram(t *testing.T) {
	r := rng.New(67)
	const n = 40
	batch := randomBatch(r, n, 600)
	reg := obs.NewRegistry(nil)
	g := &Ingester{Shards: 4, Obs: reg}
	if err := g.Ingest(batch, reputation.NewLedger(n)); err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram("ingest.records_per_shard")
	if h.Count() != 4 {
		t.Fatalf("histogram count = %d, want one observation per shard (4)", h.Count())
	}
	if h.Sum() != int64(len(batch)) {
		t.Fatalf("histogram sum = %d, want batch size %d", h.Sum(), len(batch))
	}
}

func TestIngestErrors(t *testing.T) {
	g := &Ingester{Shards: 2}
	if err := g.Ingest([]Rating{{Rater: 0, Target: 1, Polarity: 1}}); err == nil {
		t.Error("missing destinations not reported")
	}
	if err := g.Ingest([]Rating{{Rater: 0, Target: 1, Polarity: 1}},
		reputation.NewLedger(4), reputation.NewLedger(5)); err == nil {
		t.Error("destination size mismatch not reported")
	}
}

// TestReplayTrace checks the trace bridge: score-to-polarity conversion,
// population sizing, and shard-count independence of the replayed ledger.
func TestReplayTrace(t *testing.T) {
	tr := &trace.Trace{Ratings: []trace.Rating{
		{Day: 1, Rater: 0, Target: 3, Score: 5},
		{Day: 2, Rater: 3, Target: 0, Score: 1},
		{Day: 3, Rater: 2, Target: 3, Score: 3},
		{Day: 4, Rater: 1, Target: 1, Score: 4}, // self-rating: dropped
		{Day: 5, Rater: 4, Target: 2, Score: 4},
	}}
	if got := Population(tr); got != 5 {
		t.Fatalf("Population = %d, want 5", got)
	}
	want := reputation.NewLedger(5)
	want.Record(0, 3, 1)
	want.Record(3, 0, -1)
	want.Record(2, 3, 0)
	want.Record(4, 2, 1)
	for _, k := range []int{1, 4} {
		got := reputation.NewLedger(5)
		g := &Ingester{Shards: k}
		if err := g.ReplayTrace(tr, got); err != nil {
			t.Fatal(err)
		}
		requireLedgersEqual(t, "trace replay", got, want, true)
	}
}

package ingest

import (
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/trace"
)

// Population returns the smallest ledger size able to hold every node in
// the trace: one past the highest rater or target ID.
func Population(tr *trace.Trace) int {
	max := trace.NodeID(-1)
	for _, r := range tr.Ratings {
		if r.Rater > max {
			max = r.Rater
		}
		if r.Target > max {
			max = r.Target
		}
	}
	return int(max) + 1
}

// FromTrace converts a trace's ratings into an intake batch, mapping each
// raw 1..5 score to the paper's three-valued polarity. Self-ratings are
// dropped (Ledger.Record treats them as caller bugs; crawled traces may
// contain them).
func FromTrace(tr *trace.Trace) []Rating {
	batch := make([]Rating, 0, len(tr.Ratings))
	for _, r := range tr.Ratings {
		if r.Rater == r.Target {
			continue
		}
		batch = append(batch, Rating{
			Rater:    int32(r.Rater),
			Target:   int32(r.Target),
			Polarity: int8(r.Score.Polarity()),
		})
	}
	return batch
}

// ReplayTrace bulk-loads a whole trace into the destination ledgers
// through the sharded pipeline: one batch, one ingest_audit event, one
// records_per_shard observation per shard. The resulting ledgers are
// byte-identical for every shard count.
func (g *Ingester) ReplayTrace(tr *trace.Trace, dsts ...*reputation.Ledger) error {
	return g.Ingest(FromTrace(tr), dsts...)
}

package ingest

import (
	"fmt"

	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
)

// WindowLedger maintains a sliding window of rating periods as a ring of
// per-cycle CSR delta ledgers plus one incrementally-maintained merged
// view. Where reputation.WindowedLedger re-merges every period of the ring
// each time the window is read — O(window · nnz) per cycle — WindowLedger
// pays only for what changed: sealing a cycle merges its delta into the
// window and, once the ring is full, subtracts the expiring delta
// (Ledger.Subtract is the exact inverse of Merge, so the merged view is
// observationally identical to a from-scratch re-merge; the property test
// pins this against reputation.WindowedLedger over a thousand cycles).
//
// Usage follows the simulation loop: Record (or batch-ingest into
// Current) during a cycle, Roll once when the cycle closes, then read
// Window. The merged view is live and stable — the same *Ledger instance
// across cycles — and Roll reports exactly which of its rows the cycle
// changed (delta rows merged in plus rows the evicted period's
// subtraction touched), so windowed consumers drive incremental
// detection off Roll's returned dirty set exactly like cumulative ones
// drive it off Ledger.DirtyTargets.
type WindowLedger struct {
	n      int
	window int
	ring   []*reputation.Ledger // sealed period deltas, ring order
	head   int                  // ring slot the next sealed delta lands in
	filled int
	cur    *reputation.Ledger // the open period's delta
	merged *reputation.Ledger // incrementally-maintained window view

	rolled    int // cycles sealed so far
	deltaRows int // distinct targets in the most recently sealed delta

	// Obs, if non-nil, receives two per-Roll histograms:
	// window.delta_rows_per_cycle records how many target rows the sealed
	// delta touched, and window.dirty_rows_per_cycle records the size of
	// the cycle's full dirty set (delta rows plus rows the evicted
	// period's subtraction touched) — the row count incremental detection
	// actually rescreens. Atomic and order-independent, like all run-side
	// histogram recording. (The companion window.delta_rows gauge is set
	// post-run by the CLIs from the final cycle's value.)
	Obs *obs.Registry
	// Spans, if enabled, brackets every Roll in a "window.roll" span whose
	// payload (delta rows sealed, dirty rows reported) is a pure function
	// of the rating stream, keeping the span timeline byte-identical for
	// every shard count.
	Spans *obs.SpanTracer
}

// NewWindowLedger creates a windowed ledger for n nodes spanning window
// periods (the open period plus window-1 sealed ones). It panics if
// n <= 0 or window <= 0, mirroring reputation.NewLedger.
func NewWindowLedger(n, window int) *WindowLedger {
	if n <= 0 {
		panic(fmt.Sprintf("ingest: NewWindowLedger(n=%d), want n > 0", n))
	}
	if window <= 0 {
		panic(fmt.Sprintf("ingest: NewWindowLedger(window=%d), want window > 0", window))
	}
	return &WindowLedger{
		n:      n,
		window: window,
		ring:   make([]*reputation.Ledger, window),
		cur:    reputation.NewLedger(n),
		merged: reputation.NewLedger(n),
	}
}

// Size returns the node population.
func (w *WindowLedger) Size() int { return w.n }

// WindowLength returns the number of periods the window spans.
func (w *WindowLedger) WindowLength() int { return w.window }

// Periods returns how many sealed periods currently contribute to the
// merged window (0..window).
func (w *WindowLedger) Periods() int { return w.filled }

// Record stores one rating in the open period.
func (w *WindowLedger) Record(rater, target, polarity int) {
	w.cur.Record(rater, target, polarity)
}

// Current returns the open period's delta ledger — the destination batch
// ingest writes into. Live view; sealed by the next Roll.
func (w *WindowLedger) Current() *reputation.Ledger { return w.cur }

// Roll seals the open period into the window: the expiring delta (if the
// ring is full) is subtracted from the merged view, the open delta is
// merged in and pushed onto the ring, and a fresh open period begins,
// reusing the evicted delta's storage. Cost is O(rows changed), not
// O(window · nnz).
//
// Roll returns the cycle's dirty set: every target row the merged window
// view changed this cycle — the rows the sealed delta merged in plus the
// rows the evicted delta's subtraction touched — ascending and
// deterministic (a pure function of the rating stream, never of shard
// count or scheduling). It is exactly the dirty argument
// core.IncrementalDetector.DetectIncremental requires for the merged
// window, and Roll consumes the merged ledger's dirty-set bookkeeping to
// produce it, so callers must not also call ClearDirty on Window().
func (w *WindowLedger) Roll() []int {
	if !w.Spans.Enabled() {
		return w.roll()
	}
	w.Spans.Begin("window.roll")
	dirty := w.roll()
	w.Spans.End("window.roll",
		obs.Int("delta_rows", w.deltaRows),
		obs.Int("dirty_rows", len(dirty)))
	return dirty
}

// roll is the span-free rollover shared by both entry paths.
func (w *WindowLedger) roll() []int {
	w.deltaRows = w.cur.DirtyCount()
	var spare *reputation.Ledger
	if w.filled == w.window {
		expiring := w.ring[w.head]
		// Subtract cannot fail: every ring delta shares the population.
		if err := w.merged.Subtract(expiring); err != nil {
			panic("ingest: " + err.Error())
		}
		spare = expiring
	}
	if err := w.merged.Merge(w.cur); err != nil {
		panic("ingest: " + err.Error())
	}
	w.ring[w.head] = w.cur
	w.head = (w.head + 1) % w.window
	if w.filled < w.window {
		w.filled++
	}
	if spare != nil {
		spare.Reset()
		spare.ClearDirty()
		w.cur = spare
	} else {
		w.cur = reputation.NewLedger(w.n)
	}
	w.rolled++
	dirty := w.merged.DirtyTargets()
	w.merged.ClearDirty()
	w.Obs.Histogram("window.delta_rows_per_cycle").Observe(int64(w.deltaRows))
	w.Obs.Histogram("window.dirty_rows_per_cycle").Observe(int64(len(dirty)))
	return dirty
}

// Window returns the merged ledger over every sealed period in the
// window. The view is live and instance-stable across cycles: mutations
// happen only inside Roll, which reports them as its returned dirty set
// (and advances the rows' generations), so callers may layer incremental
// detection on top. Callers must not mutate it — and must not ClearDirty
// it, since Roll owns that bookkeeping.
func (w *WindowLedger) Window() *reputation.Ledger { return w.merged }

// DeltaRows returns how many target rows the most recently sealed period
// touched — the window.delta_rows gauge the CLIs export after a run.
func (w *WindowLedger) DeltaRows() int { return w.deltaRows }

// Rolled returns how many periods have been sealed.
func (w *WindowLedger) Rolled() int { return w.rolled }

package ingest

import (
	"testing"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/rng"
)

// TestWindowedIncrementalMatchesFullDetection closes the streaming loop's
// correctness gate end to end: a persistent incremental detector driven
// by Roll's dirty set over a live, in-place-mutating window ledger must —
// for 1000 straight cycles — flag the identical pairs and charge the
// identical per-counter meter readings as a from-scratch detector pass
// over the same merged window. The window evicts as well as merges, so
// rows shrink, disappear and reappear between detections; any memo the
// generation keys fail to invalidate, or any candidate the persistent
// bitmap loses track of, diverges here.
func TestWindowedIncrementalMatchesFullDetection(t *testing.T) {
	r := rng.New(211).Child("windowed-incremental")
	const (
		n      = 36
		window = 5
		cycles = 1000
	)
	th := core.DefaultThresholds()
	th.TR = 1
	th.TN = 6

	win := NewWindowLedger(n, window)
	incB := core.NewBasic(th)
	incB.Meter = new(metrics.CostMeter)
	incO := core.NewOptimized(th)
	incO.Meter = new(metrics.CostMeter)
	prevB := incB.Meter.Snapshot()
	prevO := incO.Meter.Snapshot()

	flaggedOnce := 0
	for cycle := 1; cycle <= cycles; cycle++ {
		// Organic background traffic plus an intermittent mutual flood, so
		// colluding pairs drift in and out of the window as cycles evict.
		count := r.Intn(2 * n)
		for k := 0; k < count; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if i == j {
				continue
			}
			pol := 1
			if r.Bool(0.3) {
				pol = -1
			}
			win.Record(i, j, pol)
		}
		if r.Bool(0.3) {
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				flood := r.IntRange(4, 12)
				for k := 0; k < flood; k++ {
					win.Record(a, b, 1)
					win.Record(b, a, 1)
				}
			}
		}
		dirty := win.Roll()

		fullB := core.NewBasic(th)
		fullB.Meter = new(metrics.CostMeter)
		wantB := fullB.Detect(win.Window())
		gotB := incB.DetectIncremental(win.Window(), dirty)
		requireSameDetection(t, "basic", cycle, gotB, wantB)
		prevB = requireSameMeterDelta(t, "basic", cycle, incB.Meter, prevB, fullB.Meter)

		fullO := core.NewOptimized(th)
		fullO.Meter = new(metrics.CostMeter)
		wantO := fullO.Detect(win.Window())
		gotO := incO.DetectIncremental(win.Window(), dirty)
		requireSameDetection(t, "optimized", cycle, gotO, wantO)
		prevO = requireSameMeterDelta(t, "optimized", cycle, incO.Meter, prevO, fullO.Meter)

		if len(wantO.Pairs) > 0 {
			flaggedOnce++
		}
	}
	// The workload must actually exercise detection, not vacuously agree.
	if flaggedOnce < 50 {
		t.Fatalf("only %d/%d cycles produced detections; workload too quiet to be a meaningful gate", flaggedOnce, cycles)
	}
}

// requireSameDetection asserts two detection results flag the identical
// pairs with identical evidence and the identical per-node flag vector.
func requireSameDetection(t *testing.T, det string, cycle int, got, want core.Result) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("%s cycle %d: incremental found %d pairs, full pass %d\ninc  %+v\nfull %+v",
			det, cycle, len(got.Pairs), len(want.Pairs), got.Pairs, want.Pairs)
	}
	for i := range want.Pairs {
		if got.Pairs[i] != want.Pairs[i] {
			t.Fatalf("%s cycle %d: pair %d = %+v, full pass %+v", det, cycle, i, got.Pairs[i], want.Pairs[i])
		}
	}
	for i := range want.Flagged {
		if got.Flagged[i] != want.Flagged[i] {
			t.Fatalf("%s cycle %d: Flagged[%d] = %v, full pass %v", det, cycle, i, got.Flagged[i], want.Flagged[i])
		}
	}
}

// requireSameMeterDelta asserts the incremental detector's meter advanced
// this cycle by exactly what the from-scratch pass charged — the cost
// figures must be independent of which path computed them — and returns
// the new snapshot for the next cycle.
func requireSameMeterDelta(t *testing.T, det string, cycle int, inc *metrics.CostMeter, prev map[string]int64, full *metrics.CostMeter) map[string]int64 {
	t.Helper()
	cur := inc.Snapshot()
	want := full.Snapshot()
	for name, w := range want {
		if got := cur[name] - prev[name]; got != w {
			t.Fatalf("%s cycle %d: incremental charged %d %s this cycle, full pass %d", det, cycle, got, name, w)
		}
	}
	for name := range cur {
		if _, ok := want[name]; !ok && cur[name] != prev[name] {
			t.Fatalf("%s cycle %d: incremental charged unexpected counter %s (+%d)", det, cycle, name, cur[name]-prev[name])
		}
	}
	return cur
}

package ingest

import (
	"testing"

	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

// TestWindowLedgerMatchesBruteForce is the delta-ring correctness gate:
// over 1000 random cycles the incrementally-maintained window must be
// observationally identical to reputation.WindowedLedger's full re-merge
// at every cycle boundary. The protocols align as follows: the reference
// records into its open period and its Window() merges the open period
// with the sealed ones, while WindowLedger seals via Roll before reading
// — so we compare right after Roll and right before the reference's
// Advance, when both views span the same set of cycles.
func TestWindowLedgerMatchesBruteForce(t *testing.T) {
	r := rng.New(97)
	const (
		n      = 50
		window = 7
		cycles = 1000
	)
	win := NewWindowLedger(n, window)
	ref := reputation.NewWindowedLedger(n, window)
	for cycle := 1; cycle <= cycles; cycle++ {
		count := r.Intn(120)
		for k := 0; k < count; k++ {
			rater, target := r.Intn(n), r.Intn(n)
			if rater == target {
				continue
			}
			pol := r.Intn(3) - 1
			win.Record(rater, target, pol)
			ref.Record(rater, target, pol)
		}
		win.Roll()
		if win.Periods() != ref.Periods() {
			t.Fatalf("cycle %d: Periods = %d, want %d", cycle, win.Periods(), ref.Periods())
		}
		requireLedgersEqual(t, "window", win.Window(), ref.Window(), false)
		ref.Advance()
	}
	if win.Rolled() != cycles {
		t.Fatalf("Rolled = %d, want %d", win.Rolled(), cycles)
	}
}

// TestWindowLedgerDirtySupportsIncrementalDetection pins the property the
// simulator's incremental path would rely on: after ClearDirty, a Roll
// marks exactly the rows whose window contents changed — rows touched by
// the sealed delta or by the evicted one.
func TestWindowLedgerDirtySupportsIncrementalDetection(t *testing.T) {
	const n, window = 20, 3
	win := NewWindowLedger(n, window)
	fill := func(pairs ...[2]int) {
		for _, p := range pairs {
			win.Record(p[0], p[1], 1)
		}
		win.Roll()
	}
	fill([2]int{1, 2})
	fill([2]int{3, 4})
	fill([2]int{5, 6})
	win.Window().ClearDirty()
	// Sealing {7,8} evicts the cycle that touched target 2.
	fill([2]int{7, 8})
	dirty := win.Window().DirtyTargets()
	want := []int{2, 8}
	if len(dirty) != len(want) {
		t.Fatalf("DirtyTargets = %v, want %v", dirty, want)
	}
	for i := range want {
		if dirty[i] != want[i] {
			t.Fatalf("DirtyTargets = %v, want %v", dirty, want)
		}
	}
}

// TestWindowLedgerDeltaRowsAndHistogram checks the observability hooks:
// DeltaRows reports the sealed cycle's distinct targets and every Roll
// lands one observation in the window.delta_rows_per_cycle histogram.
func TestWindowLedgerDeltaRowsAndHistogram(t *testing.T) {
	reg := obs.NewRegistry(nil)
	win := NewWindowLedger(10, 2)
	win.Obs = reg
	win.Record(0, 1, 1)
	win.Record(2, 1, 1)
	win.Record(0, 3, -1)
	win.Roll()
	if win.DeltaRows() != 2 {
		t.Fatalf("DeltaRows = %d, want 2 (targets 1 and 3)", win.DeltaRows())
	}
	win.Roll() // empty cycle
	if win.DeltaRows() != 0 {
		t.Fatalf("DeltaRows after empty cycle = %d, want 0", win.DeltaRows())
	}
	h := reg.Histogram("window.delta_rows_per_cycle")
	if h.Count() != 2 || h.Sum() != 2 {
		t.Fatalf("histogram count/sum = %d/%d, want 2/2", h.Count(), h.Sum())
	}
}

func TestNewWindowLedgerPanics(t *testing.T) {
	for _, args := range [][2]int{{0, 3}, {5, 0}, {-1, 2}, {4, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWindowLedger(%d, %d) did not panic", args[0], args[1])
				}
			}()
			NewWindowLedger(args[0], args[1])
		}()
	}
}

package ingest

import (
	"testing"

	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

// windowRowsEqual reports whether target t's row reads identically in
// both ledgers: adjacency with aligned per-pair counts plus the receive
// totals — everything the memoizing pair screens observe about a target.
// Sent totals are rater-side state outside the row contract (only the
// full-pass sybil detector reads them, and it never memoizes).
func windowRowsEqual(a, b *reputation.Ledger, t int) bool {
	ap, bp := a.PairCountsOf(t), b.PairCountsOf(t)
	if len(ap.Raters) != len(bp.Raters) {
		return false
	}
	for k := range ap.Raters {
		if ap.Raters[k] != bp.Raters[k] || ap.Total[k] != bp.Total[k] ||
			ap.Pos[k] != bp.Pos[k] || ap.Neg[k] != bp.Neg[k] {
			return false
		}
	}
	return a.TotalFor(t) == b.TotalFor(t) &&
		a.PositiveFor(t) == b.PositiveFor(t) &&
		a.NegativeFor(t) == b.NegativeFor(t)
}

// TestWindowLedgerMatchesBruteForce is the delta-ring correctness gate:
// over 1000 random cycles the incrementally-maintained window must be
// observationally identical to reputation.WindowedLedger's full re-merge
// at every cycle boundary. The protocols align as follows: the reference
// records into its open period and its Window() merges the open period
// with the sealed ones, while WindowLedger seals via Roll before reading
// — so we compare right after Roll and right before the reference's
// Advance, when both views span the same set of cycles.
//
// The same loop pins Roll's dirty-set contract, which incremental
// windowed detection stands on: the returned set is sorted and
// duplicate-free, every row whose contents changed since the previous
// cycle is in it, and rows outside it kept both their contents and their
// RowGen (so memoized screens keyed on generations stay valid).
func TestWindowLedgerMatchesBruteForce(t *testing.T) {
	r := rng.New(97)
	const (
		n      = 50
		window = 7
		cycles = 1000
	)
	win := NewWindowLedger(n, window)
	ref := reputation.NewWindowedLedger(n, window)
	prev := win.Window().Clone()
	prevGen := make([]uint64, n)
	for cycle := 1; cycle <= cycles; cycle++ {
		count := r.Intn(120)
		for k := 0; k < count; k++ {
			rater, target := r.Intn(n), r.Intn(n)
			if rater == target {
				continue
			}
			pol := r.Intn(3) - 1
			win.Record(rater, target, pol)
			ref.Record(rater, target, pol)
		}
		dirty := win.Roll()
		if win.Periods() != ref.Periods() {
			t.Fatalf("cycle %d: Periods = %d, want %d", cycle, win.Periods(), ref.Periods())
		}
		requireLedgersEqual(t, "window", win.Window(), ref.Window(), false)
		ref.Advance()

		inDirty := make([]bool, n)
		for i, row := range dirty {
			if i > 0 && dirty[i-1] >= row {
				t.Fatalf("cycle %d: dirty set %v not strictly ascending", cycle, dirty)
			}
			inDirty[row] = true
		}
		for row := 0; row < n; row++ {
			changed := !windowRowsEqual(prev, win.Window(), row)
			if changed && !inDirty[row] {
				t.Fatalf("cycle %d: row %d changed but is missing from dirty set %v", cycle, row, dirty)
			}
			if !inDirty[row] {
				if changed || win.Window().RowGen(row) != prevGen[row] {
					t.Fatalf("cycle %d: clean row %d mutated (gen %d -> %d)",
						cycle, row, prevGen[row], win.Window().RowGen(row))
				}
			}
			prevGen[row] = win.Window().RowGen(row)
		}
		prev = win.Window().Clone()
	}
	if win.Rolled() != cycles {
		t.Fatalf("Rolled = %d, want %d", win.Rolled(), cycles)
	}
}

// TestWindowLedgerDirtySupportsIncrementalDetection pins the property the
// simulator's incremental path relies on: Roll returns exactly the rows
// whose window contents this cycle touched — rows of the sealed delta
// plus rows of the evicted one — and consumes the merged ledger's dirty
// bookkeeping doing so.
func TestWindowLedgerDirtySupportsIncrementalDetection(t *testing.T) {
	const n, window = 20, 3
	win := NewWindowLedger(n, window)
	fill := func(pairs ...[2]int) []int {
		for _, p := range pairs {
			win.Record(p[0], p[1], 1)
		}
		return win.Roll()
	}
	requireDirty := func(got, want []int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("Roll dirty = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Roll dirty = %v, want %v", got, want)
			}
		}
	}
	requireDirty(fill([2]int{1, 2}), []int{2})
	requireDirty(fill([2]int{3, 4}), []int{4})
	requireDirty(fill([2]int{5, 6}), []int{6})
	// Sealing {7,8} evicts the cycle that touched target 2.
	requireDirty(fill([2]int{7, 8}), []int{2, 8})
	// Roll owns the merged view's dirty bookkeeping: nothing left behind.
	if leftover := win.Window().DirtyTargets(); len(leftover) != 0 {
		t.Fatalf("Window().DirtyTargets after Roll = %v, want empty", leftover)
	}
}

// TestWindowLedgerDeltaRowsAndHistogram checks the observability hooks:
// DeltaRows reports the sealed cycle's distinct targets and every Roll
// lands one observation in each of the window.delta_rows_per_cycle and
// window.dirty_rows_per_cycle histograms.
func TestWindowLedgerDeltaRowsAndHistogram(t *testing.T) {
	reg := obs.NewRegistry(nil)
	win := NewWindowLedger(10, 2)
	win.Obs = reg
	win.Record(0, 1, 1)
	win.Record(2, 1, 1)
	win.Record(0, 3, -1)
	win.Roll()
	if win.DeltaRows() != 2 {
		t.Fatalf("DeltaRows = %d, want 2 (targets 1 and 3)", win.DeltaRows())
	}
	win.Roll() // empty cycle
	if win.DeltaRows() != 0 {
		t.Fatalf("DeltaRows after empty cycle = %d, want 0", win.DeltaRows())
	}
	// Third cycle: {0,5} seals while the first cycle (targets 1 and 3)
	// evicts, so the dirty set spans three rows but the delta only one.
	win.Record(0, 5, 1)
	if dirty := win.Roll(); len(dirty) != 3 {
		t.Fatalf("eviction-cycle dirty = %v, want rows 1, 3 and 5", dirty)
	}
	hd := reg.Histogram("window.delta_rows_per_cycle")
	if hd.Count() != 3 || hd.Sum() != 3 {
		t.Fatalf("delta_rows histogram count/sum = %d/%d, want 3/3", hd.Count(), hd.Sum())
	}
	hr := reg.Histogram("window.dirty_rows_per_cycle")
	if hr.Count() != 3 || hr.Sum() != 5 {
		t.Fatalf("dirty_rows histogram count/sum = %d/%d, want 3/5", hr.Count(), hr.Sum())
	}
}

func TestNewWindowLedgerPanics(t *testing.T) {
	for _, args := range [][2]int{{0, 3}, {5, 0}, {-1, 2}, {4, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWindowLedger(%d, %d) did not panic", args[0], args[1])
				}
			}()
			NewWindowLedger(args[0], args[1])
		}()
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// Hot-path annotation directives. They live in a function's doc comment:
//
//	//colsim:hotpath
//	func (l *Ledger) Record(...)            // must be allocation-free,
//	                                        // together with everything it calls
//
//	//colsim:coldpath lazy one-time registration
//	func (m *CostMeter) counter(...)        // traversal stops here; a reason
//	                                        // after the directive is mandatory
const (
	hotpathDirective  = "//colsim:hotpath"
	coldpathDirective = "//colsim:coldpath"
)

// funcFacts caches, per package, the function-declaration index and the
// hot/cold-path annotations the call-graph analyzers need. The hotalloc
// traversal crosses package boundaries, so facts are memoized process-wide
// rather than per Pass.
type funcFacts struct {
	pkg *Package
	// decls maps each function object to its declaration.
	decls map[*types.Func]*ast.FuncDecl
	// order lists the declared functions in source order, for
	// deterministic iteration.
	order []*types.Func
	// hot marks //colsim:hotpath functions, cold marks //colsim:coldpath.
	hot  map[*types.Func]bool
	cold map[*types.Func]bool
	// coldNoReason records coldpath directives with no reason text; the
	// hotalloc analyzer reports them when it runs on the package.
	coldNoReason []token.Pos
	// sup indexes the package's //colsimlint:ignore directives so the
	// cross-package traversal can honor suppressions local to a callee's
	// own package.
	sup *suppressions
}

var (
	factsMu    sync.Mutex
	factsCache = map[*Package]*funcFacts{}
)

// factsFor returns (building and memoizing on first use) the call-graph
// facts for pkg.
func factsFor(pkg *Package) *funcFacts {
	factsMu.Lock()
	defer factsMu.Unlock()
	if f, ok := factsCache[pkg]; ok {
		return f
	}
	f := &funcFacts{
		pkg:   pkg,
		decls: make(map[*types.Func]*ast.FuncDecl),
		hot:   make(map[*types.Func]bool),
		cold:  make(map[*types.Func]bool),
		sup:   newSuppressions(pkg),
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			f.decls[obj] = fd
			f.order = append(f.order, obj)
			if fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				switch {
				case c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" "):
					f.hot[obj] = true
				case strings.HasPrefix(c.Text, coldpathDirective):
					f.cold[obj] = true
					reason := strings.TrimPrefix(c.Text, coldpathDirective)
					if strings.TrimSpace(reason) == "" {
						// Reported at the declaration so suppression and
						// fixture expectations anchor to the func line.
						f.coldNoReason = append(f.coldNoReason, fd.Pos())
					}
				}
			}
		}
	}
	factsCache[pkg] = f
	return f
}

// calleeOf resolves a call expression to the static function or method it
// invokes. It returns nil for calls through function values, built-ins,
// and type conversions; interface method calls resolve to the interface
// method object (the caller widens those to concrete implementations).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.F).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isInterfaceMethod reports whether fn is declared on an interface (so a
// call through it dispatches dynamically).
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// widenInterfaceCall returns the concrete module-local methods a call to
// the interface method fn could dispatch to, found by scanning every
// package the loader has analyzed for named types whose method sets
// implement the interface. Results are deduplicated and returned in
// deterministic (position) order.
func widenInterfaceCall(pkg *Package, fn *types.Func) []*types.Func {
	sig := fn.Type().(*types.Signature)
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	seen := make(map[*types.Func]bool)
	var out []*types.Func
	pkgs := append(pkg.LoadedPackages(), pkg)
	for _, p := range pkgs {
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			for _, t := range []types.Type{named, types.NewPointer(named)} {
				if !types.Implements(t, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(t, true, p.Types, fn.Name())
				if m, ok := obj.(*types.Func); ok && !seen[m] {
					seen[m] = true
					out = append(out, m)
				}
				break
			}
		}
	}
	sortFuncsByPos(out)
	return out
}

// sortFuncsByPos orders functions by declaration position for
// deterministic traversal.
func sortFuncsByPos(fns []*types.Func) {
	for i := 1; i < len(fns); i++ {
		for j := i; j > 0 && fns[j].Pos() < fns[j-1].Pos(); j-- {
			fns[j], fns[j-1] = fns[j-1], fns[j]
		}
	}
}

// packageFor maps a module-local function object to its analyzed Package,
// resolving through the loader cache; nil for the standard library and
// functions without bodies.
func packageFor(pkg *Package, fn *types.Func) *Package {
	fp := fn.Pkg()
	if fp == nil {
		return nil
	}
	if fp.Path() == pkg.Path {
		return pkg
	}
	return pkg.Imported(fp.Path())
}

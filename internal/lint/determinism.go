package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// restrictedTrees lists the module-relative package trees in which all
// randomness must come from internal/rng and all time from the simulator
// clock. Everything the experiment pipeline touches is here; cmd/ wrappers
// merely forward seeds into these packages.
var restrictedTrees = []string{
	"internal/core",
	"internal/simulator",
	"internal/reputation",
	"internal/ingest",
	"internal/dht",
	"internal/overlay",
	"internal/analysis",
	"internal/experiments",
	"internal/obs",
	"internal/service",
}

// exemptTrees carves explicitly-unseeded subtrees out of the restricted
// set. internal/obs/prof is the profiling harness: it exists to read the
// wall clock and drive pprof, its measurements flow one way into
// histograms, and nothing seeded imports it for results.
// internal/obs/serve is the live telemetry HTTP plane: an operational
// server (timeouts, uptime, graceful shutdown) that only ever reads the
// registry and the span stream — telemetry flows one way, out.
// internal/service/httpapi is the detection service's HTTP request plane:
// it times requests into a latency histogram but contains no detection
// logic — the deterministic core it calls into (internal/service itself)
// stays restricted, which is what keeps request replay byte-exact.
var exemptTrees = []string{
	"internal/obs/prof",
	"internal/obs/serve",
	"internal/service/httpapi",
}

// forbiddenImports are packages that smuggle ambient nondeterminism into a
// restricted tree.
var forbiddenImports = map[string]string{
	"math/rand":    "use internal/rng (splittable, seeded) instead",
	"math/rand/v2": "use internal/rng (splittable, seeded) instead",
	"crypto/rand":  "use internal/rng (splittable, seeded) instead",
}

// forbiddenTimeFuncs are time-package functions that read the wall clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Tick":  true,
	"After": true,
}

// DeterminismAnalyzer forbids ambient randomness and wall-clock reads in
// the restricted package trees, where every run must replay bit-identically
// from a single seed.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand, crypto/rand and wall-clock time in seeded simulation packages",
	Run:  runDeterminism,
}

// inRestrictedTree reports whether the pass's package lies in one of the
// restricted trees.
func inRestrictedTree(p *Pass) bool {
	rel := p.Pkg.RelPath()
	for _, tree := range exemptTrees {
		if rel == tree || strings.HasPrefix(rel, tree+"/") {
			return false
		}
	}
	for _, tree := range restrictedTrees {
		if rel == tree || strings.HasPrefix(rel, tree+"/") {
			return true
		}
	}
	return false
}

func runDeterminism(p *Pass) {
	if !inRestrictedTree(p) {
		return
	}
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, ok := forbiddenImports[path]; ok {
				p.Reportf(imp.Pos(), "import of %s in seeded package: %s", path, why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if forbiddenTimeFuncs[sel.Sel.Name] {
				p.Reportf(sel.Pos(), "time.%s in seeded package: use the simulator clock", sel.Sel.Name)
			}
			return true
		})
	}
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDropAnalyzer flags expression statements that call a function
// returning an error and silently discard it. Assigning the error to the
// blank identifier (`_ = f()`) is an explicit, reviewable discard and is
// not flagged.
//
// Calls that cannot meaningfully fail are exempt: the fmt stdout print
// family, and writes to strings.Builder / bytes.Buffer (documented to
// always return a nil error), including fmt.Fprint* targeting them. In
// non-library packages (cmd/, examples/) the whole fmt print family is
// exempt — command-line diagnostics to standard streams are
// fire-and-forget there, mirroring printlint's scope.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flag silently discarded error returns",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p, call) || errExempt(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "error return discarded; handle it or assign to _ explicitly")
			return true
		})
	}
}

// returnsError reports whether the call's last result is of type error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.Pkg.Info.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errExempt reports whether the call is on the cannot-fail exemption list.
func errExempt(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Methods on strings.Builder / bytes.Buffer never return a non-nil
	// error.
	if recv, ok := p.Pkg.Info.Selections[sel]; ok {
		return isNeverFailWriter(recv.Recv())
	}
	// Package-level fmt calls.
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return false
	}
	name := sel.Sel.Name
	if name == "Print" || name == "Printf" || name == "Println" {
		return true
	}
	if strings.HasPrefix(name, "Fprint") {
		// Command-line tools print diagnostics fire-and-forget.
		if !p.IsLibrary() {
			return true
		}
		// fmt.Fprint* into a never-fail writer.
		return len(call.Args) > 0 && isNeverFailWriter(p.Pkg.Info.TypeOf(call.Args[0]))
	}
	return false
}

// isNeverFailWriter reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer.
func isNeverFailWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

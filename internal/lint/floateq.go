package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEqAnalyzer flags == and != between floating-point operands in
// library code. Reputation scores (R_i) and the a/b rating shares of
// Formula (1) are accumulated floats; exact comparison of such values is
// almost always a rounding bug — compare against an epsilon instead.
//
// Comparison against the exact constant 0 is exempt: the zero value is
// Go's unset-configuration sentinel (`if eps == 0 { eps = Default }`) and
// a sum of non-negative terms is exactly zero iff every term is. NaN
// probing via `x != x` is still flagged — use math.IsNaN.
var FloatEqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floats in library code; use epsilon comparison",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	if !p.IsLibrary() {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			if isFloat(p, be.X) || isFloat(p, be.Y) {
				p.Reportf(be.OpPos, "%s between floats; compare with an epsilon (e.g. math.Abs(a-b) < eps)", be.Op)
			}
			return true
		})
	}
}

// isZeroConst reports whether the expression is a compile-time numeric
// constant equal to exactly zero.
func isZeroConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
	}
	return false
}

// isFloat reports whether the expression's type is a floating-point basic
// type (after unwrapping named types).
func isFloat(p *Pass, e ast.Expr) bool {
	t := p.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAllocAnalyzer enforces the repository's zero-allocation contract on
// annotated hot paths. A function whose doc comment carries
// //colsim:hotpath must be allocation-free, together with everything it
// calls through the module-local call graph (interface calls are widened
// to every module-local concrete implementation). Traversal stops at
// //colsim:coldpath functions (reason required) and at callees that carry
// their own //colsim:hotpath contract (they are checked as roots in their
// own package's pass).
//
// Flagged allocation sites: make/new, map and slice literals, address-of
// struct literals, append that may grow (append into a make-with-capacity
// local or a resliced buffer is exempt), variable-capturing closures,
// fmt/errors and other allocating stdlib calls, string concatenation and
// string<->[]byte conversions, interface boxing at call arguments, and
// calls through function values (unverifiable). Arguments of panic(...)
// are exempt: a panicking hot path is already off the fast path.
//
// Cross-package findings are reported at the boundary call site in the
// package under analysis, so the suppression lives next to the call;
// suppressions and annotations inside the callee's own package are
// honored during traversal.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid heap allocation in //colsim:hotpath functions and their callees",
	Run:  runHotAlloc,
}

// allocPkgAll lists stdlib packages whose every call is treated as
// allocating on a hot path.
var allocPkgAll = map[string]bool{
	"fmt":    true,
	"errors": true,
}

// allocFuncs lists specific allocating stdlib functions. Append-style
// strconv functions and sort.Search* are deliberately absent: they write
// into caller-provided storage.
var allocFuncs = map[string]map[string]bool{
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "FormatBool": true, "Quote": true, "Unquote": true,
	},
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"strings": {
		"Repeat": true, "Join": true, "Split": true, "SplitN": true,
		"Fields": true, "Replace": true, "ReplaceAll": true,
		"ToUpper": true, "ToLower": true, "Clone": true, "NewReplacer": true,
	},
	"bytes": {
		"Repeat": true, "Join": true, "Split": true, "SplitN": true,
		"Fields": true, "Clone": true, "NewBuffer": true, "NewBufferString": true,
	},
}

// hotProblem is one allocation found during cross-package traversal,
// summarized at the boundary call site.
type hotProblem struct {
	pos token.Position
	msg string
}

type hotWalker struct {
	pass *Pass
	// visitedLocal guards same-package recursion; reports are emitted
	// directly, so revisiting would duplicate them.
	visitedLocal map[*types.Func]bool
	// subtree memoizes the first unsuppressed allocation found beneath a
	// module-local function outside the package under analysis (nil when
	// the subtree is clean).
	subtree map[*types.Func]*hotProblem
}

func runHotAlloc(p *Pass) {
	facts := factsFor(p.Pkg)
	for _, pos := range facts.coldNoReason {
		p.Reportf(pos, "//colsim:coldpath directive requires a reason")
	}
	w := &hotWalker{
		pass:         p,
		visitedLocal: make(map[*types.Func]bool),
		subtree:      make(map[*types.Func]*hotProblem),
	}
	for _, fn := range facts.order {
		if facts.hot[fn] {
			w.walkLocal(fn)
		}
	}
}

// walkLocal examines a function in the package under analysis, reporting
// findings at their exact positions (framework suppression applies).
func (w *hotWalker) walkLocal(fn *types.Func) {
	if w.visitedLocal[fn] {
		return
	}
	w.visitedLocal[fn] = true
	decl := factsFor(w.pass.Pkg).decls[fn]
	if decl == nil || decl.Body == nil {
		return
	}
	w.examine(w.pass.Pkg, decl, true, func(pos token.Pos, format string, args ...any) {
		w.pass.Reportf(pos, format, args...)
	})
}

// subtreeProblem returns the first unsuppressed allocation reachable
// through fn (a module-local function outside the package under
// analysis), or nil when its subtree is allocation-free. Results are
// memoized; a cycle in progress counts as clean.
func (w *hotWalker) subtreeProblem(fn *types.Func) *hotProblem {
	if p, ok := w.subtree[fn]; ok {
		return p
	}
	w.subtree[fn] = nil
	pkg := packageFor(w.pass.Pkg, fn)
	if pkg == nil {
		return nil
	}
	facts := factsFor(pkg)
	decl := facts.decls[fn]
	if decl == nil || decl.Body == nil {
		return nil
	}
	var found *hotProblem
	w.examine(pkg, decl, false, func(pos token.Pos, format string, args ...any) {
		if found != nil {
			return
		}
		position := pkg.Fset.Position(pos)
		if facts.sup.suppressed(w.pass.Analyzer.Name, position) {
			return
		}
		found = &hotProblem{pos: position, msg: fmt.Sprintf(format, args...)}
	})
	w.subtree[fn] = found
	return found
}

// reportFn receives findings from examine.
type reportFn func(pos token.Pos, format string, args ...any)

// examine walks one function body flagging allocation sites and
// dispatching on calls. local is true when pkg is the package under
// analysis (same-package callees recurse with direct reporting).
func (w *hotWalker) examine(pkg *Package, decl *ast.FuncDecl, local bool, report reportFn) {
	info := pkg.Info
	reuse := reuseSafeSlices(info, decl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := capturedLocal(info, n); capt != "" {
				report(n.Pos(), "hot path: closure capturing %s allocates", capt)
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					if _, isStruct := info.Types[cl].Type.Underlying().(*types.Struct); isStruct {
						report(n.Pos(), "hot path: address-of composite literal allocates")
						return false
					}
				}
			}
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "hot path: map literal allocates")
			case *types.Slice:
				report(n.Pos(), "hot path: slice literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv := info.Types[n]
				if tv.Value == nil && isStringType(tv.Type) {
					report(n.Pos(), "hot path: string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			w.examineCall(pkg, n, local, reuse, report)
			// Child expressions (arguments) are still inspected for
			// literals, concatenation and nested calls.
			if isPanicCall(info, n) {
				return false
			}
		}
		return true
	})
}

// examineCall classifies one call on a hot path.
func (w *hotWalker) examineCall(pkg *Package, call *ast.CallExpr, local bool, reuse map[*types.Var]bool, report reportFn) {
	info := pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Type conversion.
		if convAllocates(info, call) {
			report(call.Pos(), "hot path: %s conversion allocates", types.ExprString(call.Fun))
		}
		return
	}
	if obj := builtinOf(info, call); obj != nil {
		switch obj.Name() {
		case "make":
			report(call.Pos(), "hot path: make allocates")
		case "new":
			report(call.Pos(), "hot path: new allocates")
		case "append":
			if !appendIsReuseSafe(info, call, reuse) {
				report(call.Pos(), "hot path: append may grow its backing array; preallocate with make(_, _, cap) or reslice a reused buffer")
			}
		}
		return
	}
	callee := calleeOf(info, call)
	if callee == nil {
		report(call.Pos(), "hot path: call through function value %s cannot be verified allocation-free", types.ExprString(call.Fun))
		return
	}
	cp := callee.Pkg()
	if cp == nil {
		return
	}
	if cp.Path() != pkg.Module && !strings.HasPrefix(cp.Path(), pkg.Module+"/") {
		// Standard library: deny-listed calls allocate (reported once,
		// without a separate boxing finding), the rest are assumed clean
		// (math, sync/atomic, len-style accessors).
		if allocPkgAll[cp.Path()] || allocFuncs[cp.Path()][callee.Name()] {
			report(call.Pos(), "hot path: call to %s.%s allocates", cp.Name(), callee.Name())
			return
		}
		w.checkBoxing(pkg, call, callee, report)
		return
	}
	w.checkBoxing(pkg, call, callee, report)
	if isInterfaceMethod(callee) {
		for _, impl := range widenInterfaceCall(pkg, callee) {
			w.checkCallee(pkg, call, impl, local, report, true)
		}
		return
	}
	w.checkCallee(pkg, call, callee, local, report, false)
}

// checkCallee continues traversal into a module-local callee.
func (w *hotWalker) checkCallee(pkg *Package, call *ast.CallExpr, callee *types.Func, local bool, report reportFn, viaInterface bool) {
	cpkg := packageFor(w.pass.Pkg, callee)
	if cpkg == nil {
		return
	}
	facts := factsFor(cpkg)
	if facts.cold[callee] {
		return
	}
	if facts.hot[callee] {
		// The callee carries its own hot-path contract and is verified as
		// a root in its own package's pass.
		return
	}
	if local && cpkg == w.pass.Pkg {
		w.walkLocal(callee)
		return
	}
	if p := w.subtreeProblem(callee); p != nil {
		via := ""
		if viaInterface {
			via = " (possible interface dispatch)"
		}
		report(call.Pos(), "hot path: call to %s allocates%s: %s at %s", funcDisplayName(callee), via, p.msg, p.pos)
	}
}

// checkBoxing flags concrete non-pointer values passed to interface-typed
// parameters, which box (allocate) at the call.
func (w *hotWalker) checkBoxing(pkg *Package, call *ast.CallExpr, callee *types.Func, report reportFn) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv := pkg.Info.Types[arg]
		if tv.Value != nil || tv.IsNil() {
			continue
		}
		if boxingAllocates(tv.Type) {
			report(arg.Pos(), "hot path: passing %s to interface parameter boxes (allocates)", tv.Type)
		}
	}
}

// boxingAllocates reports whether storing a value of concrete type t in an
// interface requires a heap allocation (pointer-shaped values do not).
func boxingAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	default:
		return true
	}
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// convAllocates reports whether a type conversion call allocates:
// string <-> []byte / []rune in either direction.
func convAllocates(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	dst := info.Types[call.Fun].Type
	src := info.Types[call.Args[0]].Type
	if src == nil || dst == nil {
		return false
	}
	_, dstSlice := dst.Underlying().(*types.Slice)
	_, srcSlice := src.Underlying().(*types.Slice)
	if isStringType(dst) && srcSlice {
		return true
	}
	if dstSlice && isStringType(src) {
		return true
	}
	return false
}

// builtinOf returns the builtin object a call invokes, or nil.
func builtinOf(info *types.Info, call *ast.CallExpr) *types.Builtin {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	b, _ := info.Uses[id].(*types.Builtin)
	return b
}

// isPanicCall reports whether call is panic(...); its arguments are exempt
// from allocation rules (a panicking hot path is already cold).
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	b := builtinOf(info, call)
	return b != nil && b.Name() == "panic"
}

// reuseSafeSlices returns the function-local slice variables whose appends
// are amortized-free: initialized from make with an explicit capacity or
// from a reslice of an existing buffer.
func reuseSafeSlices(info *types.Info, decl *ast.FuncDecl) map[*types.Var]bool {
	safe := make(map[*types.Var]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj, _ := info.Defs[id].(*types.Var)
			if obj == nil {
				obj, _ = info.Uses[id].(*types.Var)
			}
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.SliceExpr:
				safe[obj] = true
			case *ast.CallExpr:
				if b := builtinOf(info, rhs); b != nil && b.Name() == "make" && len(rhs.Args) == 3 {
					safe[obj] = true
				}
			}
		}
		return true
	})
	return safe
}

// appendIsReuseSafe reports whether an append call targets a reslice or a
// make-with-capacity local, the two amortized-allocation-free idioms.
func appendIsReuseSafe(info *types.Info, call *ast.CallExpr, reuse map[*types.Var]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		if v, ok := info.Uses[dst].(*types.Var); ok && reuse[v] {
			return true
		}
	}
	return false
}

// capturedLocal returns the name of a function-local variable the closure
// captures from its enclosing function ("" when it captures none).
// Capturing a local forces a closure context allocation; references to
// package-level variables do not.
func capturedLocal(info *types.Info, lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal (params, locals)
		}
		if v.Parent() == nil || v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		name = v.Name()
		return false
	})
	return name
}

// funcDisplayName renders a function as pkg.Name or pkg.(Recv).Name for
// findings.
func funcDisplayName(fn *types.Func) string {
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name() + "."
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			return pkgName + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkgName + fn.Name()
}

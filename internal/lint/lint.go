// Package lint is a small, dependency-free static-analysis framework for
// the project's determinism and correctness conventions.
//
// Every experiment in this reproduction must replay bit-identically from a
// single seed: randomness comes from internal/rng, simulated time from the
// simulator clock, and experiment output must not depend on map iteration
// order. The analyzers in this package turn those conventions into
// machine-checked invariants. They are built directly on go/parser, go/ast
// and go/types (with a module-aware source importer, see load.go), so the
// module stays free of external dependencies.
//
// The cmd/colsimlint binary drives the analyzers over package patterns and
// exits non-zero on findings; `make lint` and CI run it on every change.
//
// A finding can be suppressed where the convention is intentionally
// violated by placing
//
//	//colsimlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the offending line or on the line directly above it. The reason is
// mandatory by convention (the linter does not parse it, reviewers do).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding matched by a //colsimlint:ignore
	// directive. Run drops suppressed findings; RunAll keeps them so
	// machine consumers (colsimlint -json) can audit what is being waived.
	Suppressed bool
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one named rule. Run inspects a type-checked package through
// the Pass and reports findings; it must not retain the Pass.
type Analyzer struct {
	// Name identifies the analyzer in findings and suppression comments.
	Name string
	// Doc is a one-line description shown by `colsimlint -list`.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	// Analyzer is the rule currently running.
	Analyzer *Analyzer
	// Fset resolves token.Pos values to positions.
	Fset *token.FileSet
	// Files are the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *Package
	// report receives raw findings before suppression filtering.
	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsLibrary reports whether the package is library code: not a main
// package and not under cmd/ or examples/. Several analyzers only apply
// to library code.
func (p *Pass) IsLibrary() bool {
	if p.Pkg.Types != nil && p.Pkg.Types.Name() == "main" {
		return false
	}
	rel := p.Pkg.RelPath()
	return rel != "cmd" && !strings.HasPrefix(rel, "cmd/") &&
		rel != "examples" && !strings.HasPrefix(rel, "examples/")
}

// Analyzers returns the full rule catalogue in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		ErrDropAnalyzer,
		FloatEqAnalyzer,
		HotAllocAnalyzer,
		LockCheckAnalyzer,
		MapOrderAnalyzer,
		ParReduceAnalyzer,
		PrintAnalyzer,
	}
}

// Run executes the given analyzers over the packages and returns the
// surviving (non-suppressed) findings sorted by position.
func Run(analyzers []*Analyzer, pkgs []*Package) []Finding {
	var out []Finding
	for _, f := range RunAll(analyzers, pkgs) {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// RunAll executes the given analyzers over the packages and returns every
// finding sorted by position, with suppressed findings retained and marked
// rather than dropped.
func RunAll(analyzers []*Analyzer, pkgs []*Package) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		sup := newSuppressions(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg,
			}
			pass.report = func(f Finding) {
				f.Suppressed = sup.suppressed(a.Name, f.Pos)
				out = append(out, f)
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreDirective is the suppression comment prefix.
const ignoreDirective = "//colsimlint:ignore"

// suppressions indexes //colsimlint:ignore comments by file and line.
type suppressions struct {
	// byLine maps filename -> line -> analyzer names suppressed there.
	byLine map[string]map[int][]string
}

func newSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]string)}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				pos := pkg.Fset.Position(c.Pos())
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byLine[pos.Filename] = lines
				}
				// The directive covers its own line (trailing comment)
				// and the line below it (standalone comment).
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					lines[ln] = append(lines[ln], names...)
				}
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	for _, name := range s.byLine[pos.Filename][pos.Line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

package lint_test

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/p2psim/collusion/internal/lint"
)

// sharedLoader caches one loader (and its source-imported standard
// library) across all fixture tests.
var sharedLoader = sync.OnceValues(func() (*lint.Loader, error) {
	return lint.NewLoader(".")
})

// loadFixture type-checks testdata/<name> under the given virtual import
// path (relative to the module root).
func loadFixture(t *testing.T, name, virtualPath string) *lint.Package {
	t.Helper()
	ldr, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := ldr.LoadDir(filepath.Join("testdata", name), ldr.Module+"/"+virtualPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// wantRe extracts the quoted expectation patterns of a // want comment.
var wantRe = regexp.MustCompile(`"([^"]*)"`)

// expectation is one // want "pattern" comment in a fixture file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				pos := pkg.Fset.Position(c.Pos())
				groups := wantRe.FindAllStringSubmatch(rest, -1)
				if len(groups) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, g := range groups {
					re, err := regexp.Compile(g[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, g[1], err)
					}
					wants = append(wants, &expectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: re,
					})
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over a fixture package and verifies its
// findings against the fixture's // want comments, in both directions:
// every finding must be expected, and every expectation must fire.
func checkFixture(t *testing.T, a *lint.Analyzer, pkg *lint.Package) {
	t.Helper()
	wants := collectWants(t, pkg)
	findings := lint.Run([]*lint.Analyzer{a}, []*lint.Package{pkg})
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.pattern.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	pkg := loadFixture(t, "determinism", "internal/core/lintfixture")
	checkFixture(t, lint.DeterminismAnalyzer, pkg)
}

// TestDeterminismUnrestrictedTreeSilent proves the determinism rules do
// not fire outside the seeded package trees: the same dirty fixture under
// a cmd/ path yields no findings.
func TestDeterminismUnrestrictedTreeSilent(t *testing.T) {
	pkg := loadFixture(t, "determinism", "cmd/lintfixture")
	findings := lint.Run([]*lint.Analyzer{lint.DeterminismAnalyzer}, []*lint.Package{pkg})
	if len(findings) != 0 {
		t.Fatalf("determinism fired outside restricted trees: %v", findings)
	}
}

// TestDeterminismObsRestricted proves the observability package is a
// seeded tree: the dirty fixture under internal/obs yields the same
// findings as under internal/core.
func TestDeterminismObsRestricted(t *testing.T) {
	pkg := loadFixture(t, "determinism", "internal/obs/lintfixture")
	checkFixture(t, lint.DeterminismAnalyzer, pkg)
}

// TestDeterminismIngestRestricted proves the streaming-ingest subsystem
// is a seeded tree: its shard partitioning and delta-ring maintenance
// must never draw on unseeded randomness or the wall clock, so the dirty
// fixture under internal/ingest yields the same findings as under
// internal/core.
func TestDeterminismIngestRestricted(t *testing.T) {
	pkg := loadFixture(t, "determinism", "internal/ingest/lintfixture")
	checkFixture(t, lint.DeterminismAnalyzer, pkg)
}

// TestDeterminismProfExempt proves the explicitly-unseeded profiling
// harness is carved out: the same dirty fixture under internal/obs/prof
// yields no findings.
func TestDeterminismProfExempt(t *testing.T) {
	pkg := loadFixture(t, "determinism", "internal/obs/prof/lintfixture")
	findings := lint.Run([]*lint.Analyzer{lint.DeterminismAnalyzer}, []*lint.Package{pkg})
	if len(findings) != 0 {
		t.Fatalf("determinism fired in the exempt profiling harness: %v", findings)
	}
}

// TestDeterminismServeExempt proves the live telemetry HTTP plane is
// carved out like the profiling harness: the same dirty fixture —
// which under internal/obs itself still yields every finding
// (TestDeterminismObsRestricted) — produces none under
// internal/obs/serve, where listener timeouts and uptime legitimately
// read the wall clock.
func TestDeterminismServeExempt(t *testing.T) {
	pkg := loadFixture(t, "determinism", "internal/obs/serve/lintfixture")
	findings := lint.Run([]*lint.Analyzer{lint.DeterminismAnalyzer}, []*lint.Package{pkg})
	if len(findings) != 0 {
		t.Fatalf("determinism fired in the exempt telemetry plane: %v", findings)
	}
}

// TestDeterminismServiceRestricted proves the resident detection service
// is a seeded tree: epoch transitions, snapshot publication and request
// replay must be wall-clock- and randomness-free so a recorded request
// log replays byte-identically, so the dirty fixture under
// internal/service yields the same findings as under internal/core.
func TestDeterminismServiceRestricted(t *testing.T) {
	pkg := loadFixture(t, "determinism", "internal/service/lintfixture")
	checkFixture(t, lint.DeterminismAnalyzer, pkg)
}

// TestDeterminismServiceHTTPExempt proves the service's HTTP request
// plane is carved out like internal/obs/serve: request-latency timing
// legitimately reads the wall clock, so the same dirty fixture produces
// no findings under internal/service/httpapi.
func TestDeterminismServiceHTTPExempt(t *testing.T) {
	pkg := loadFixture(t, "determinism", "internal/service/httpapi/lintfixture")
	findings := lint.Run([]*lint.Analyzer{lint.DeterminismAnalyzer}, []*lint.Package{pkg})
	if len(findings) != 0 {
		t.Fatalf("determinism fired in the exempt service HTTP plane: %v", findings)
	}
}

func TestErrDropFixture(t *testing.T) {
	pkg := loadFixture(t, "errdrop", "internal/lintfixture/errdrop")
	checkFixture(t, lint.ErrDropAnalyzer, pkg)
}

// TestErrDropFmtExemptInCommands proves the fmt print family is exempt
// from errdrop under cmd/, while genuine error drops stay flagged.
func TestErrDropFmtExemptInCommands(t *testing.T) {
	pkg := loadFixture(t, "errdrop", "cmd/lintfixture-errdrop")
	findings := lint.Run([]*lint.Analyzer{lint.ErrDropAnalyzer}, []*lint.Package{pkg})
	if len(findings) != 3 {
		t.Fatalf("got %d findings under cmd/, want 3 (fmt exempt, real drops kept): %v", len(findings), findings)
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "Fprintln") {
			t.Errorf("fmt.Fprintln flagged under cmd/: %s", f)
		}
	}
}

func TestFloatEqFixture(t *testing.T) {
	pkg := loadFixture(t, "floateq", "internal/lintfixture/floateq")
	checkFixture(t, lint.FloatEqAnalyzer, pkg)
}

func TestMapOrderFixture(t *testing.T) {
	pkg := loadFixture(t, "maporder", "internal/lintfixture/maporder")
	checkFixture(t, lint.MapOrderAnalyzer, pkg)
}

func TestPrintFixture(t *testing.T) {
	pkg := loadFixture(t, "printlint", "internal/lintfixture/printlint")
	checkFixture(t, lint.PrintAnalyzer, pkg)
}

// TestPrintExemptInCommands proves printlint stays silent on the same
// dirty fixture when it lives under cmd/.
func TestPrintExemptInCommands(t *testing.T) {
	pkg := loadFixture(t, "printlint", "cmd/lintfixture-print")
	findings := lint.Run([]*lint.Analyzer{lint.PrintAnalyzer}, []*lint.Package{pkg})
	if len(findings) != 0 {
		t.Fatalf("printlint fired under cmd/: %v", findings)
	}
}

// TestFloatEqExemptInCommands proves floateq is scoped to library code.
func TestFloatEqExemptInCommands(t *testing.T) {
	pkg := loadFixture(t, "floateq", "cmd/lintfixture-floateq")
	findings := lint.Run([]*lint.Analyzer{lint.FloatEqAnalyzer}, []*lint.Package{pkg})
	if len(findings) != 0 {
		t.Fatalf("floateq fired under cmd/: %v", findings)
	}
}

// TestParReduceFixture checks the ordered-reduction rules on a dirty
// fixture placed in a seeded tree.
func TestParReduceFixture(t *testing.T) {
	pkg := loadFixture(t, "parreduce", "internal/core/lintfixture-parreduce")
	checkFixture(t, lint.ParReduceAnalyzer, pkg)
}

// TestParReduceUnrestrictedTreeSilent proves parreduce is scoped to the
// seeded trees: the same dirty fixture under cmd/ yields no findings.
func TestParReduceUnrestrictedTreeSilent(t *testing.T) {
	pkg := loadFixture(t, "parreduce", "cmd/lintfixture-parreduce")
	findings := lint.Run([]*lint.Analyzer{lint.ParReduceAnalyzer}, []*lint.Package{pkg})
	if len(findings) != 0 {
		t.Fatalf("parreduce fired outside restricted trees: %v", findings)
	}
}

// TestHotAllocFixture checks the allocation rules, the same-package call
// graph, coldpath carve-outs and suppression on one fixture. The fixture
// also contains a //colsimlint:ignore'd make that must stay silent.
func TestHotAllocFixture(t *testing.T) {
	pkg := loadFixture(t, "hotalloc", "internal/lintfixture/hotalloc")
	checkFixture(t, lint.HotAllocAnalyzer, pkg)
}

// TestHotAllocCrossPackage checks call-graph propagation into a
// dependency imported by its real module path: boundary call sites are
// flagged, interface calls widen to concrete implementations, and the
// dependency's own coldpath annotations and suppressions are honored.
func TestHotAllocCrossPackage(t *testing.T) {
	pkg := loadFixture(t, "hotallocdep", "internal/lintfixture/hotallocdep")
	checkFixture(t, lint.HotAllocAnalyzer, pkg)
}

// TestLockCheckFixture checks copied locks, mixed atomic/plain access and
// pool retention.
func TestLockCheckFixture(t *testing.T) {
	pkg := loadFixture(t, "lockcheck", "internal/lintfixture/lockcheck")
	checkFixture(t, lint.LockCheckAnalyzer, pkg)
}

// TestRunAllKeepsSuppressed proves RunAll retains suppressed findings
// (marked) while Run drops them: the hotalloc fixture's ignored make
// appears only in RunAll output.
func TestRunAllKeepsSuppressed(t *testing.T) {
	pkg := loadFixture(t, "hotalloc", "internal/lintfixture/hotalloc")
	as := []*lint.Analyzer{lint.HotAllocAnalyzer}
	all := lint.RunAll(as, []*lint.Package{pkg})
	run := lint.Run(as, []*lint.Package{pkg})
	var suppressed int
	for _, f := range all {
		if f.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Fatal("RunAll reported no suppressed findings; the fixture has one")
	}
	if len(all) != len(run)+suppressed {
		t.Fatalf("RunAll %d findings, Run %d + %d suppressed: totals disagree", len(all), len(run), suppressed)
	}
	for _, f := range run {
		if f.Suppressed {
			t.Fatalf("Run leaked a suppressed finding: %s", f)
		}
	}
}

// TestAnalyzersCatalogue pins the rule catalogue: names are unique,
// documented, and stable in order.
func TestAnalyzersCatalogue(t *testing.T) {
	got := lint.Analyzers()
	wantNames := []string{"determinism", "errdrop", "floateq", "hotalloc", "lockcheck", "maporder", "parreduce", "printlint"}
	if len(got) != len(wantNames) {
		t.Fatalf("catalogue has %d analyzers, want %d", len(got), len(wantNames))
	}
	for i, a := range got {
		if a.Name != wantNames[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, wantNames[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
}

// TestFindingString pins the file:line:col rendering CI consumers parse.
func TestFindingString(t *testing.T) {
	pkg := loadFixture(t, "floateq", "internal/lintfixture/floateq")
	findings := lint.Run([]*lint.Analyzer{lint.FloatEqAnalyzer}, []*lint.Package{pkg})
	if len(findings) == 0 {
		t.Fatal("no findings")
	}
	s := findings[0].String()
	if !strings.Contains(s, "dirty.go:") || !strings.Contains(s, "floateq:") {
		t.Fatalf("finding rendering = %q", s)
	}
}

// TestLoaderRejectsMissingDir pins loader error behavior.
func TestLoaderRejectsMissingDir(t *testing.T) {
	ldr, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ldr.LoadDir(filepath.Join("testdata", "no-such-dir"), ldr.Module+"/nope"); err == nil {
		t.Fatal("loading a missing directory succeeded")
	}
}

// TestLoadPatterns exercises the ./... pattern walk over this package's
// own tree: it must find internal/lint itself and skip testdata.
func TestLoadPatterns(t *testing.T) {
	ldr, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ldr.Load(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1 (testdata must be skipped)", len(pkgs))
	}
	if rel := pkgs[0].RelPath(); rel != "internal/lint" {
		t.Fatalf("RelPath = %q, want internal/lint", rel)
	}
	var names []string
	for _, f := range pkgs[0].Files {
		names = append(names, filepath.Base(fixtureFileName(pkgs[0], f)))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("files not sorted: %v", names)
		}
	}
}

func fixtureFileName(p *lint.Package, f *ast.File) string {
	return p.Fset.Position(f.Pos()).Filename
}

// TestSuppressionDirective verifies //colsimlint:ignore silences a finding
// on its own line and the line below, but nothing else.
func TestSuppressionDirective(t *testing.T) {
	pkg := loadFixture(t, "suppress", "internal/lintfixture/suppress")
	checkFixture(t, lint.FloatEqAnalyzer, pkg)
}

func ExampleFinding_String() {
	f := lint.Finding{Analyzer: "demo", Message: "message"}
	f.Pos.Filename, f.Pos.Line, f.Pos.Column = "x.go", 3, 7
	fmt.Println(f)
	// Output: x.go:3:7: demo: message
}

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Fset resolves positions for the package's files.
	Fset *token.FileSet
	// Path is the package's import path.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Module is the module path the package belongs to.
	Module string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression and identifier facts.
	Info *types.Info

	// loader is the Loader that produced this package, for resolving
	// module-internal imports to their own analyzed Packages (the hotalloc
	// call graph crosses package boundaries through it).
	loader *Loader
}

// Imported returns the module-internal package with the given import path
// if this package's loader has analyzed it (it has, for anything this
// package imports), or nil.
func (p *Package) Imported(path string) *Package {
	if p.loader == nil {
		return nil
	}
	return p.loader.cache[path]
}

// LoadedPackages returns every module-internal package the loader has
// analyzed so far, sorted by import path so interface-dispatch widening
// scans them in a deterministic order.
func (p *Package) LoadedPackages() []*Package {
	if p.loader == nil {
		return nil
	}
	out := make([]*Package, 0, len(p.loader.cache))
	for _, pkg := range p.loader.cache {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// RelPath returns the package path relative to its module root ("" for the
// module root package itself).
func (p *Package) RelPath() string {
	if p.Path == p.Module {
		return ""
	}
	return strings.TrimPrefix(p.Path, p.Module+"/")
}

// Loader parses and type-checks packages of a single module without any
// dependency on the go command: module-internal imports are resolved
// recursively from source, and standard-library imports go through the
// go/importer source importer (GOROOT/src).
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module containing dir, found by
// walking up to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  module,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Load resolves package patterns to type-checked packages. A pattern
// ending in "/..." loads every package under the prefix directory;
// any other pattern names a single package directory. Relative patterns
// are resolved against base.
func (l *Loader) Load(base string, patterns []string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if pat == "..." {
			pat, rec = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, rec = strings.TrimSuffix(pat, "/..."), true
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		dir = filepath.Clean(dir)
		if !rec {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", dir, err)
		}
	}
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && lintableFile(e.Name()) {
			return true
		}
	}
	return false
}

// lintableFile reports whether name is a non-test Go source file.
func lintableFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// LoadDir parses and type-checks the single package in dir. pathOverride,
// if non-empty, is used as the package's import path instead of the one
// derived from the module layout — fixture tests use this to place test
// sources at an arbitrary "virtual" location in the module.
func (l *Loader) LoadDir(dir, pathOverride string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := pathOverride
	if path == "" {
		path, err = l.dirToPath(abs)
		if err != nil {
			return nil, err
		}
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && lintableFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{
		Fset:   l.fset,
		Path:   path,
		Dir:    abs,
		Module: l.Module,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		loader: l,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// dirToPath maps an absolute directory inside the module to its import
// path.
func (l *Loader) dirToPath(abs string) (string, error) {
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("lint: %s is outside module %s", abs, l.Root)
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module-internal packages are loaded
// from source via LoadDir, everything else (the standard library) goes
// through the go/importer source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.LoadDir(filepath.Join(l.Root, filepath.FromSlash(rel)), "")
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheckAnalyzer flags three classes of synchronization misuse that
// survive the race detector when the racy schedule never fires in tests:
//
//   - lock-by-value: parameters, receivers and assignments that copy a
//     value containing a sync.Mutex/RWMutex/WaitGroup/Once/Cond/Pool/Map,
//     splitting its internal state (fresh composite-literal initialization
//     is exempt);
//   - mixed access: a field or package variable manipulated through the
//     sync/atomic function API in one place and with plain loads/stores in
//     another — the plain accesses race with the atomic ones;
//   - pool retention: a value passed to sync.Pool.Put and used afterwards
//     in the same function, when another goroutine may already own it.
var LockCheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc:  "flag copied locks, mixed atomic/plain access, and sync.Pool values retained past Put",
	Run:  runLockCheck,
}

func runLockCheck(p *Pass) {
	for _, file := range p.Files {
		checkLockCopies(p, file)
		checkPoolRetention(p, file)
	}
	checkMixedAtomic(p)
}

// lockTypes are the sync types whose values must never be copied once
// used.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether t (passed or assigned by value) embeds
// synchronization state that copying would split.
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if lockTypes[obj.Name()] {
					return true
				}
			case "sync/atomic":
				// atomic.Int64 and friends embed noCopy state.
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// checkLockCopies flags by-value parameters, receivers, results, range
// values and assignments of lock-containing types.
func checkLockCopies(p *Pass, file *ast.File) {
	info := p.Pkg.Info
	flagField := func(f *ast.Field, what string) {
		if f.Type == nil {
			return
		}
		t := info.Types[f.Type].Type
		if t == nil {
			return
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			return
		}
		if containsLock(t) {
			p.Reportf(f.Pos(), "%s passes lock-containing type %s by value; use a pointer", what, t)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				for _, f := range n.Recv.List {
					flagField(f, "method receiver")
				}
			}
			if n.Type.Params != nil {
				for _, f := range n.Type.Params.List {
					flagField(f, "parameter")
				}
			}
		case *ast.FuncLit:
			if n.Type.Params != nil {
				for _, f := range n.Type.Params.List {
					flagField(f, "parameter")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !copiesExistingValue(rhs) {
					continue
				}
				t := info.Types[rhs].Type
				if t == nil {
					continue
				}
				if _, isPtr := t.(*types.Pointer); isPtr {
					continue
				}
				if containsLock(t) {
					p.Reportf(n.Lhs[i].Pos(), "assignment copies lock-containing value of type %s", t)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			// A defining range value is recorded in Defs, not Types.
			var t types.Type
			if id, ok := n.Value.(*ast.Ident); ok {
				if v, ok := info.Defs[id].(*types.Var); ok {
					t = v.Type()
				} else if v, ok := info.Uses[id].(*types.Var); ok {
					t = v.Type()
				}
			} else {
				t = info.Types[n.Value].Type
			}
			if t == nil {
				return true
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				return true
			}
			if containsLock(t) {
				p.Reportf(n.Value.Pos(), "range value copies lock-containing type %s; range over indices instead", t)
			}
		}
		return true
	})
}

// copiesExistingValue reports whether an rvalue expression copies an
// already-live value (as opposed to a fresh composite literal, call
// result, or address).
func copiesExistingValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.MUL
	}
	return false
}

// checkMixedAtomic flags fields and package variables that are accessed
// through sync/atomic functions in one place and with plain loads or
// stores elsewhere in the package.
func checkMixedAtomic(p *Pass) {
	info := p.Pkg.Info
	atomicVars := make(map[*types.Var]bool)
	atomicNodes := make(map[ast.Node]bool)
	// Pass 1: find &x arguments to sync/atomic calls.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := addressedVar(info, un.X); v != nil {
					atomicVars[v] = true
					atomicNodes[ast.Unparen(un.X)] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}
	// Pass 2: find plain accesses to those variables.
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if atomicNodes[n] {
				return false
			}
			var v *types.Var
			switch e := n.(type) {
			case *ast.SelectorExpr:
				v, _ = info.Uses[e.Sel].(*types.Var)
			case *ast.Ident:
				v, _ = info.Uses[e].(*types.Var)
			default:
				return true
			}
			if v == nil || !atomicVars[v] {
				return true
			}
			p.Reportf(n.(ast.Expr).Pos(), "%s is accessed atomically elsewhere in this package; this plain access races with the atomic ones", v.Name())
			return false
		})
	}
}

// addressedVar resolves &expr's operand to the variable (field or package
// var) being addressed.
func addressedVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	}
	return nil
}

// checkPoolRetention flags uses of a value after it has been handed back
// to a sync.Pool via Put in the same function.
func checkPoolRetention(p *Pass, file *ast.File) {
	info := p.Pkg.Info
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		// Deferred Puts run at function exit, so later uses are fine.
		deferred := make(map[*ast.CallExpr]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferred[d.Call] = true
			}
			return true
		})
		// Find non-deferred Put calls on sync.Pool values.
		type putCall struct {
			v   *types.Var
			end token.Pos
		}
		var puts []putCall
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 || deferred[call] {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Put" {
				return true
			}
			recv := info.Types[sel.X].Type
			if recv == nil || !isSyncPool(recv) {
				return true
			}
			id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := info.Uses[id].(*types.Var); ok {
				puts = append(puts, putCall{v: v, end: call.End()})
			}
			return true
		})
		if len(puts) == 0 {
			return true
		}
		ast.Inspect(body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			for _, put := range puts {
				if v == put.v && id.Pos() > put.end {
					p.Reportf(id.Pos(), "%s is used after being returned to a sync.Pool; another goroutine may already own it", v.Name())
					return true
				}
			}
			return true
		})
		return true
	})
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrderAnalyzer flags `range` loops over maps whose body appends to a
// slice or writes output: both leak Go's randomized map iteration order
// into results, which makes experiment output nondeterministic. An append
// is accepted when the enclosing function later passes the slice to a
// sort.* or slices.* call; otherwise sort the result or iterate over
// pre-sorted keys.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration that appends or writes output without a subsequent sort",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, file := range p.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if rs, ok := n.(*ast.RangeStmt); ok {
				checkMapRange(p, rs, stack)
			}
			return true
		})
	}
}

func checkMapRange(p *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	t := p.Pkg.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	// Collect order-sensitive effects in the loop body: output writes and
	// appends to identifiers.
	var appendTargets []types.Object
	wrote := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isOutputCall(p, n) {
				wrote = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || i >= len(n.Lhs) {
					continue
				}
				if ident, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := p.Pkg.Info.ObjectOf(ident); obj != nil {
						appendTargets = append(appendTargets, obj)
					}
				}
			}
		}
		return true
	})
	if wrote {
		p.Reportf(rs.For, "writing output while ranging over a map: iteration order is randomized; iterate sorted keys instead")
	}
	if len(appendTargets) == 0 {
		return
	}

	// Find the innermost enclosing function body; a later sort.*/slices.*
	// call that mentions the appended slice makes the order deterministic
	// again.
	var fnBody *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			fnBody = fn.Body
		case *ast.FuncLit:
			fnBody = fn.Body
		}
		if fnBody != nil {
			break
		}
	}
	for _, obj := range appendTargets {
		if fnBody != nil && sortedAfter(p, fnBody, rs, obj) {
			continue
		}
		p.Reportf(rs.For, "appending to %s while ranging over a map without sorting the result: iteration order is randomized", obj.Name())
	}
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != "append" {
		return false
	}
	_, isBuiltin := p.Pkg.Info.ObjectOf(ident).(*types.Builtin)
	return isBuiltin
}

// isOutputCall reports whether the call emits output whose order would be
// observable: the fmt print family, the log package, the print builtins,
// or Write*/Print* methods on any value.
func isOutputCall(p *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "print" || fun.Name == "println" {
			_, isBuiltin := p.Pkg.Info.ObjectOf(fun).(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if _, ok := p.Pkg.Info.Selections[fun]; ok {
			// A method call: writing into any sink inside the loop bakes
			// the iteration order into its contents.
			return strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Print")
		}
		ident, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
		if !ok {
			return false
		}
		switch pn.Imported().Path() {
		case "fmt":
			return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
		case "log":
			return true
		case "io":
			return name == "WriteString" || name == "Copy"
		}
	}
	return false
}

// sortedAfter reports whether fnBody contains a sort.* or slices.* call
// after the range statement that mentions obj.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && p.Pkg.Info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParReduceAnalyzer enforces the ordered-reduction discipline that keeps
// parallel runs byte-identical to sequential ones in the seeded trees:
// inside a worker closure (a func literal passed to parallel.ForEach /
// parallel.Blocks, or launched by a go statement), every write to
// captured state must target a per-index slot — out[i] = ... where i is
// derived only from the closure's index parameters, constants, and
// read-only captured values. Shared-scalar accumulation, captured map
// writes, appends to captured slices, writes through captured pointers,
// and slot writes at non-index-derived positions are all flagged: each
// one makes the result depend on goroutine scheduling.
//
// Post-join consumption is checked narrowly: a descending for loop (i--)
// indexing a slice the workers just filled is flagged, since reductions
// must visit slots in ascending index order to match the sequential
// execution byte for byte.
var ParReduceAnalyzer = &Analyzer{
	Name: "parreduce",
	Doc:  "require per-index slot writes in worker closures and ascending post-join reduction in seeded packages",
	Run:  runParReduce,
}

func runParReduce(p *Pass) {
	if !inRestrictedTree(p) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkPostJoin(p, n)
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkWorker(p, lit, "go statement")
				}
			case *ast.CallExpr:
				if name, lit := parallelWorker(p, n); lit != nil {
					checkWorker(p, lit, "parallel."+name)
				}
			}
			return true
		})
	}
}

// parallelWorker recognizes parallel.ForEach / parallel.Blocks calls whose
// last argument is a func literal, returning the primitive name and the
// literal.
func parallelWorker(p *Pass, call *ast.CallExpr) (string, *ast.FuncLit) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != p.Pkg.Module+"/internal/parallel" {
		return "", nil
	}
	if fn.Name() != "ForEach" && fn.Name() != "Blocks" {
		return "", nil
	}
	if len(call.Args) == 0 {
		return "", nil
	}
	lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return "", nil
	}
	return fn.Name(), lit
}

// workerScope carries the dataflow facts for one worker closure.
type workerScope struct {
	pass *Pass
	lit  *ast.FuncLit
	ctx  string
	// written holds the captured variables the closure writes (used to
	// disqualify them as read-only index sources).
	written map[*types.Var]bool
	// derived holds the variables whose values are index-derived:
	// closure int parameters and locals computed only from index-derived
	// inputs, constants, and read-only captured values.
	derived map[*types.Var]bool
}

func checkWorker(p *Pass, lit *ast.FuncLit, ctx string) {
	w := &workerScope{
		pass:    p,
		lit:     lit,
		ctx:     ctx,
		written: make(map[*types.Var]bool),
		derived: make(map[*types.Var]bool),
	}
	w.collectWrites()
	w.solveDerived()
	w.flag()
}

// capturedVar returns the captured variable an lvalue expression is rooted
// at, or nil when the expression is rooted at a closure-local variable.
func (w *workerScope) capturedVar(expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.Ident:
			v, ok := w.pass.Pkg.Info.Uses[e].(*types.Var)
			if !ok || w.declaredInside(v) {
				return nil
			}
			return v
		default:
			return nil
		}
	}
}

// declaredInside reports whether v is declared within the closure (its
// parameters and locals are scheduling-private).
func (w *workerScope) declaredInside(v *types.Var) bool {
	return v.Pos() >= w.lit.Pos() && v.Pos() <= w.lit.End()
}

// eachWriteTarget invokes fn for every lvalue the closure writes.
func (w *workerScope) eachWriteTarget(fn func(target ast.Expr, stmt ast.Node)) {
	info := w.pass.Pkg.Info
	ast.Inspect(w.lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				fn(lhs, n)
			}
		case *ast.IncDecStmt:
			fn(n.X, n)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				if n.Key != nil {
					fn(n.Key, n)
				}
				if n.Value != nil {
					fn(n.Value, n)
				}
			}
		case *ast.CallExpr:
			if b := builtinOf(info, n); b != nil && b.Name() == "delete" && len(n.Args) > 0 {
				fn(n.Args[0], n)
			}
		}
		return true
	})
}

// collectWrites records which captured variables the closure writes.
func (w *workerScope) collectWrites() {
	w.eachWriteTarget(func(target ast.Expr, _ ast.Node) {
		if v := w.capturedVar(target); v != nil {
			w.written[v] = true
		}
	})
	// copy(dst, src) writes through dst as well.
	ast.Inspect(w.lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if b := builtinOf(w.pass.Pkg.Info, call); b != nil && b.Name() == "copy" && len(call.Args) == 2 {
			if v := w.capturedVar(call.Args[0]); v != nil {
				w.written[v] = true
			}
		}
		return true
	})
}

// solveDerived computes the index-derived variable set by optimistic
// fixed-point iteration over the closure's assignments.
func (w *workerScope) solveDerived() {
	info := w.pass.Pkg.Info
	// Closure integer parameters are the index sources.
	if w.lit.Type.Params != nil {
		for _, field := range w.lit.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && isIntegerVar(v) {
					w.derived[v] = true
				}
			}
		}
	}
	// Gather assignments to closure-local variables. sources[v] == nil
	// means v has an inherently non-derivable source (range over a map or
	// channel, tuple from a call, ...).
	sources := make(map[*types.Var][]ast.Expr)
	locals := make(map[*types.Var]bool)
	addSource := func(v *types.Var, e ast.Expr) {
		locals[v] = true
		if _, poisoned := sources[v]; poisoned && sources[v] == nil {
			return
		}
		if e == nil {
			sources[v] = nil
			return
		}
		sources[v] = append(sources[v], e)
	}
	lhsVar := func(e ast.Expr) *types.Var {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
		v, _ := info.Uses[id].(*types.Var)
		if v != nil && !w.declaredInside(v) {
			return nil
		}
		return v
	}
	ast.Inspect(w.lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if v := lhsVar(lhs); v != nil {
						addSource(v, n.Rhs[i])
					}
				}
			} else {
				// Tuple assignment from a call or type assertion.
				for _, lhs := range n.Lhs {
					if v := lhsVar(lhs); v != nil {
						addSource(v, nil)
					}
				}
			}
		case *ast.RangeStmt:
			keyDerivable := false
			switch info.Types[n.X].Type.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Basic:
				keyDerivable = w.derivableExpr(n.X, w.derived)
			}
			if n.Key != nil {
				if v := lhsVar(n.Key); v != nil {
					if keyDerivable {
						addSource(v, n.X)
					} else {
						addSource(v, nil)
					}
				}
			}
			if n.Value != nil {
				if v := lhsVar(n.Value); v != nil {
					if keyDerivable {
						addSource(v, n.X)
					} else {
						addSource(v, nil)
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					locals[v] = true
					if i < len(vs.Values) {
						addSource(v, vs.Values[i])
					}
					// A var with no initializer is the zero value:
					// derivable, no source needed.
				}
			}
		}
		return true
	})
	// Optimistically mark every local derivable, then refute.
	for v := range locals {
		w.derived[v] = true
	}
	for v, srcs := range sources {
		if srcs == nil {
			delete(w.derived, v)
		}
	}
	for changed := true; changed; {
		changed = false
		for v, srcs := range sources {
			if !w.derived[v] || srcs == nil {
				continue
			}
			for _, src := range srcs {
				if !w.derivableExpr(src, w.derived) {
					delete(w.derived, v)
					changed = true
					break
				}
			}
		}
	}
}

// derivableExpr reports whether e's value is index-derived: built only
// from index-derived variables, constants, and read-only captured values.
// derived may be nil to mean "no locals assumed derived yet".
func (w *workerScope) derivableExpr(e ast.Expr, derived map[*types.Var]bool) bool {
	info := w.pass.Pkg.Info
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		switch o := obj.(type) {
		case *types.Const:
			return true
		case *types.Var:
			if w.declaredInside(o) {
				return derived[o]
			}
			// Read-only captured values are a deterministic snapshot;
			// captured values the closure writes are scheduling-dependent.
			return !w.written[o]
		case *types.Nil:
			return true
		}
		return false
	case *ast.ParenExpr:
		return w.derivableExpr(e.X, derived)
	case *ast.BinaryExpr:
		return w.derivableExpr(e.X, derived) && w.derivableExpr(e.Y, derived)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return false // channel receive: scheduling-dependent
		}
		return w.derivableExpr(e.X, derived)
	case *ast.IndexExpr:
		return w.derivableExpr(e.X, derived) && w.derivableExpr(e.Index, derived)
	case *ast.SliceExpr:
		if !w.derivableExpr(e.X, derived) {
			return false
		}
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil && !w.derivableExpr(idx, derived) {
				return false
			}
		}
		return true
	case *ast.SelectorExpr:
		if _, ok := info.Uses[e.Sel].(*types.Const); ok {
			return true
		}
		return w.derivableExpr(e.X, derived)
	case *ast.CallExpr:
		if b := builtinOf(info, e); b != nil && (b.Name() == "len" || b.Name() == "cap") {
			return len(e.Args) == 1 && w.derivableExpr(e.Args[0], derived)
		}
		return false
	}
	return false
}

// isIntegerVar reports whether v has an integer type.
func isIntegerVar(v *types.Var) bool {
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// flag reports every scheduling-dependent write in the closure.
func (w *workerScope) flag() {
	info := w.pass.Pkg.Info
	w.eachWriteTarget(func(target ast.Expr, stmt ast.Node) {
		w.flagTarget(target, stmt)
	})
	// copy into a captured destination must cover an index-derived range.
	ast.Inspect(w.lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		b := builtinOf(info, call)
		if b == nil || b.Name() != "copy" || len(call.Args) != 2 {
			return true
		}
		v := w.capturedVar(call.Args[0])
		if v == nil {
			return true
		}
		if se, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
			ok := true
			for _, idx := range []ast.Expr{se.Low, se.High} {
				if idx != nil && !w.derivableExpr(idx, w.derived) {
					ok = false
				}
			}
			if ok && (se.Low != nil || se.High != nil) {
				return true
			}
		}
		w.pass.Reportf(call.Pos(), "copy into captured slice %q from %s worker must target an index-derived sub-range (copy(%s[lo:hi], ...))", v.Name(), w.ctx, v.Name())
		return true
	})
}

// flagTarget classifies one write target.
func (w *workerScope) flagTarget(target ast.Expr, stmt ast.Node) {
	info := w.pass.Pkg.Info
	v := w.capturedVar(target)
	if v == nil {
		return
	}
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		if as, ok := stmt.(*ast.AssignStmt); ok && appendsTo(info, as, t) {
			w.pass.Reportf(target.Pos(), "append to captured slice %q from %s worker reorders elements by scheduling; write per-index slots (%s[i] = ...) instead", v.Name(), w.ctx, v.Name())
			return
		}
		w.pass.Reportf(target.Pos(), "write to captured variable %q from %s worker is scheduling-dependent; accumulate into a per-index slot and reduce after the join", v.Name(), w.ctx)
	case *ast.IndexExpr:
		if _, isMap := info.Types[t.X].Type.Underlying().(*types.Map); isMap {
			w.pass.Reportf(target.Pos(), "write to captured map %q from %s worker is scheduling-dependent (and unsafe); collect into per-index slots and merge after the join", v.Name(), w.ctx)
			return
		}
		if !w.derivableExpr(t.Index, w.derived) {
			w.pass.Reportf(target.Pos(), "write to captured slice %q at a position not derived from the worker index; slots written by %s workers must be index-disjoint", v.Name(), w.ctx)
		}
		// Per-index slot write: the ordered-reduction contract.
	case *ast.StarExpr:
		w.pass.Reportf(target.Pos(), "write through captured pointer %q from %s worker is scheduling-dependent; write a per-index slot instead", v.Name(), w.ctx)
	case *ast.SelectorExpr:
		// Field write: clean when rooted at a per-index slot
		// (out[i].f = ...), shared otherwise.
		if !w.slotRooted(t) {
			w.pass.Reportf(target.Pos(), "write to field of captured %q from %s worker is scheduling-dependent; write a per-index slot instead", v.Name(), w.ctx)
		}
	case *ast.CallExpr:
		// delete(m, k) routed through eachWriteTarget.
		w.pass.Reportf(target.Pos(), "delete from captured map %q inside %s worker is scheduling-dependent; collect into per-index slots and merge after the join", v.Name(), w.ctx)
	}
}

// slotRooted reports whether a selector write chain passes through an
// index-derived slice element (out[i].field...).
func (w *workerScope) slotRooted(e ast.Expr) bool {
	info := w.pass.Pkg.Info
	for {
		switch t := e.(type) {
		case *ast.SelectorExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			if _, isMap := info.Types[t.X].Type.Underlying().(*types.Map); isMap {
				return false
			}
			return w.derivableExpr(t.Index, w.derived)
		default:
			return false
		}
	}
}

// appendsTo reports whether the assignment is x = append(x, ...) for the
// given lhs identifier.
func appendsTo(info *types.Info, as *ast.AssignStmt, lhs *ast.Ident) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	b := builtinOf(info, call)
	return b != nil && b.Name() == "append"
}

// checkPostJoin flags descending reductions over worker-filled slot
// slices: after a parallel.ForEach/Blocks statement, a for loop with an
// i-- post statement that indexes one of the slices the workers wrote
// consumes the slots in descending order, which inverts the sequential
// reduction order.
func checkPostJoin(p *Pass, block *ast.BlockStmt) {
	slots := make(map[*types.Var]bool)
	for _, stmt := range block.List {
		es, ok := stmt.(*ast.ExprStmt)
		if ok {
			if call, isCall := es.X.(*ast.CallExpr); isCall {
				if _, lit := parallelWorker(p, call); lit != nil {
					for v := range workerSlotSlices(p, lit) {
						slots[v] = true
					}
					continue
				}
			}
		}
		if len(slots) == 0 {
			continue
		}
		fs, ok := stmt.(*ast.ForStmt)
		if !ok {
			continue
		}
		post, ok := fs.Post.(*ast.IncDecStmt)
		if !ok || post.Tok != token.DEC {
			continue
		}
		if v := descendingSlotUse(p, fs, slots); v != nil {
			p.Reportf(fs.Pos(), "post-join reduction over worker-filled slice %q iterates in descending index order; consume slots in ascending order to match sequential execution", v.Name())
		}
	}
}

// workerSlotSlices returns the captured slices a worker closure writes
// per-index slots into.
func workerSlotSlices(p *Pass, lit *ast.FuncLit) map[*types.Var]bool {
	w := &workerScope{
		pass:    p,
		lit:     lit,
		ctx:     "",
		written: make(map[*types.Var]bool),
		derived: make(map[*types.Var]bool),
	}
	out := make(map[*types.Var]bool)
	w.eachWriteTarget(func(target ast.Expr, _ ast.Node) {
		if idx, ok := ast.Unparen(target).(*ast.IndexExpr); ok {
			if _, isMap := p.Pkg.Info.Types[idx.X].Type.Underlying().(*types.Map); isMap {
				return
			}
			if v := w.capturedVar(target); v != nil {
				out[v] = true
			}
		}
	})
	return out
}

// descendingSlotUse returns a slot slice indexed inside the descending
// loop's body, or nil.
func descendingSlotUse(p *Pass, fs *ast.ForStmt, slots map[*types.Var]bool) *types.Var {
	var found *types.Var
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(idx.X).(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := p.Pkg.Info.Uses[id].(*types.Var); ok && slots[v] {
			found = v
		}
		return true
	})
	return found
}

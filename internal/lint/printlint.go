package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PrintAnalyzer forbids writing to stdout/stderr or the process-global
// logger from library packages: simulation and analysis code must return
// data and let cmd/ and examples/ decide how to present it. Flagged are
// the fmt stdout print family, fmt.Fprint* aimed at os.Stdout/os.Stderr,
// every log-package output function, and the print/println builtins.
// cmd/, examples/ and main packages are exempt.
var PrintAnalyzer = &Analyzer{
	Name: "printlint",
	Doc:  "forbid fmt.Print*/log output in library packages",
	Run:  runPrint,
}

func runPrint(p *Pass) {
	if !p.IsLibrary() {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name != "print" && fun.Name != "println" {
					return true
				}
				if _, isBuiltin := p.Pkg.Info.ObjectOf(fun).(*types.Builtin); isBuiltin {
					p.Reportf(call.Pos(), "builtin %s in library code: return data instead of printing", fun.Name)
				}
			case *ast.SelectorExpr:
				ident, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
				if !ok {
					return true
				}
				name := fun.Sel.Name
				switch pn.Imported().Path() {
				case "fmt":
					if name == "Print" || name == "Printf" || name == "Println" {
						p.Reportf(call.Pos(), "fmt.%s in library code: return data and let cmd/ print", name)
					} else if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 && isStdStream(p, call.Args[0]) {
						p.Reportf(call.Pos(), "fmt.%s to a standard stream in library code: accept an io.Writer or return data", name)
					}
				case "log":
					if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fatal") ||
						strings.HasPrefix(name, "Panic") || name == "Output" {
						p.Reportf(call.Pos(), "log.%s in library code: return an error or accept a logger", name)
					}
				}
			}
			return true
		})
	}
}

// isStdStream reports whether the expression is os.Stdout or os.Stderr.
func isStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Pkg.Info.Uses[ident].(*types.PkgName)
	return ok && pn.Imported().Path() == "os"
}

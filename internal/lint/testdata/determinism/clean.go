package fixture

import "time"

// TickInterval is a duration constant: naming durations is fine, only
// reading the wall clock is not.
const TickInterval = 100 * time.Millisecond

// Format renders a duration; no clock is consulted.
func Format(d time.Duration) string {
	return d.String()
}

// Scaled multiplies a simulated duration.
func Scaled(d time.Duration, n int) time.Duration {
	return d * time.Duration(n)
}

// Package fixture seeds determinism violations: ambient randomness and
// wall-clock reads that must not appear in seeded simulation packages.
package fixture

import (
	crand "crypto/rand" // want "import of crypto/rand in seeded package"
	mrand "math/rand"   // want "import of math/rand in seeded package"
	"time"
)

// Jitter draws from the global math/rand source.
func Jitter() float64 {
	return mrand.Float64()
}

// Entropy reads from the OS entropy pool.
func Entropy(buf []byte) {
	_, _ = crand.Read(buf)
}

// Stamp reads the wall clock twice.
func Stamp() int64 {
	start := time.Now()                    // want "time.Now in seeded package"
	return time.Since(start).Nanoseconds() // want "time.Since in seeded package"
}

// Deadline computes a wall-clock distance.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until in seeded package"
}

// Package fixture seeds silently discarded error returns.
package fixture

import (
	"fmt"
	"io"
	"os"
	"strings"
)

func fail() error { return nil }

func pair() (int, error) { return 0, nil }

// Dropped discards error returns silently.
func Dropped() {
	fail()         // want "error return discarded"
	pair()         // want "error return discarded"
	os.Remove("x") // want "error return discarded"
}

// Explicit discards are reviewable and allowed.
func Explicit() {
	_ = fail()
	_, _ = pair()
}

// Handled errors are the happy path.
func Handled() error {
	if err := fail(); err != nil {
		return err
	}
	n, err := pair()
	if err != nil {
		return err
	}
	_ = n
	return nil
}

// PrintDiag writes to an arbitrary writer; library code must propagate
// the error (cmd/ packages are exempt).
func PrintDiag(w io.Writer) {
	fmt.Fprintln(w, "diag") // want "error return discarded"
}

// Exempt calls cannot meaningfully fail.
func Exempt() string {
	var b strings.Builder
	b.WriteString("ok")
	fmt.Fprintf(&b, "%d", 1)
	fmt.Println("ok")
	return b.String()
}

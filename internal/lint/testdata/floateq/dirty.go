// Package fixture seeds exact floating-point comparisons.
package fixture

// Score is a named float: the underlying type still matters.
type Score float64

// Equal compares accumulated floats exactly.
func Equal(a, b float64) bool {
	return a == b // want "== between floats"
}

// NotEqual compares named floats exactly.
func NotEqual(a, b Score) bool {
	return a != b // want "!= between floats"
}

// Mixed converts and compares exactly.
func Mixed(a float64, b int) bool {
	return a == float64(b) // want "== between floats"
}

// NaNProbe uses the self-inequality idiom; math.IsNaN says what it means.
func NaNProbe(x float64) bool {
	return x != x // want "!= between floats"
}

// ZeroSentinel compares against the exact zero constant — the unset-value
// idiom — and is exempt.
func ZeroSentinel(eps float64) float64 {
	if eps == 0 {
		eps = 1e-9
	}
	return eps
}

// Close is the sanctioned epsilon comparison.
func Close(a, b float64) bool {
	return abs(a-b) < 1e-9
}

// Ints compare exactly without complaint.
func Ints(a, b int) bool { return a == b }

// Ordering comparisons on floats are fine.
func Less(a, b float64) bool { return a < b }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Package hotfix exercises the hotalloc analyzer: //colsim:hotpath
// functions and everything they call must be allocation-free.
package hotfix

import "fmt"

type item struct{ k, v int }

// helper is not annotated: reached from the hot root through the call
// graph, its allocation is still flagged at its own position.
func helper(n int) []int {
	return make([]int, n) // want "make allocates"
}

// record's any parameter boxes concrete arguments at hot call sites.
func record(v any) { _ = v }

//colsim:coldpath fixture: lazy one-time registration path
func lazyRegister() map[string]int {
	return map[string]int{"a": 1}
}

//colsim:coldpath
func badColdpath() {} // want "requires a reason"

//colsim:hotpath
func DirtyHot(xs []int, s string, fn func() int) int {
	m := map[int]int{}                // want "map literal allocates"
	lit := []int{1, 2, 3}             // want "slice literal allocates"
	p := &item{k: 1}                  // want "address-of composite literal allocates"
	b := new(item)                    // want "new allocates"
	xs = append(xs, 1)                // want "append may grow"
	msg := fmt.Sprintf("%d", len(xs)) // want "call to fmt.Sprintf allocates"
	msg = msg + s                     // want "string concatenation allocates"
	raw := []byte(s)                  // want "conversion allocates"
	n := fn()                         // want "call through function value"
	total := 0
	add := func() { total += n } // want "closure capturing"
	add()                        // want "call through function value"
	record(item{k: n})           // want "boxes"
	_ = helper(n)
	_ = lazyRegister()
	return len(m) + len(lit) + p.k + b.v + len(raw) + len(msg)
}

//colsim:hotpath
func CleanHot(xs []int, buf []byte) int {
	// Reslice-reuse append and panic arguments are exempt; plain
	// arithmetic, len/cap, and index writes are free.
	buf = append(buf[:0], 'x')
	acc := 0
	for i := 0; i < len(xs); i++ {
		if xs[i] < 0 {
			panic(fmt.Sprintf("negative at %d", i))
		}
		acc += xs[i]
	}
	scratch := make([]int, 0, 8) //colsimlint:ignore hotalloc fixture: setup-time prealloc outside the steady loop
	for i := 0; i < len(xs); i++ {
		scratch = append(scratch, xs[i])
	}
	_ = cleanCallee(acc)
	return acc + len(buf) + len(scratch)
}

// cleanCallee is allocation-free, so traversal stays silent.
func cleanCallee(n int) int { return n * 2 }

//colsim:hotpath
func OtherHot(n int) int {
	// Calling another hot-annotated function does not re-traverse it:
	// its own contract covers it.
	return CleanHot(nil, nil) + n
}

// Package dep is the cross-package dependency for the hotalloc
// call-graph fixture. It is imported by its real module path, so the
// analyzer traverses into it exactly as it does for production packages.
package dep

// Summarizer is implemented by Slow; interface calls from a hot path are
// widened to every module-local implementation.
type Summarizer interface {
	Summarize(n int) string
}

// Slow allocates inside the interface method.
type Slow struct{}

// Summarize concatenates, allocating on every iteration.
func (Slow) Summarize(n int) string {
	s := "x"
	for i := 0; i < n; i++ {
		s = s + "y"
	}
	return s
}

// Alloc builds a fresh slice on every call.
func Alloc(n int) []int {
	out := make([]int, n)
	return out
}

// Clean is allocation-free.
func Clean(a, b int) int { return a + b }

//colsim:coldpath fixture: registration-style lazy path
func LazyInit() []int { return make([]int, 8) }

// Scratch allocates intentionally; its own package waives the finding, so
// hot callers see a clean subtree.
func Scratch(n int) []int {
	return make([]int, n) //colsimlint:ignore hotalloc fixture: amortized scratch buffer owned by the callee
}

// Package hotdep exercises hotalloc's cross-package call-graph
// traversal: allocations inside module-local dependencies are reported at
// the boundary call site in the package under analysis.
package hotdep

import "github.com/p2psim/collusion/internal/lint/testdata/hotallocdep/dep"

//colsim:hotpath
func Root(n int) int {
	xs := dep.Alloc(n) // want "call to dep.Alloc allocates"
	n = dep.Clean(n, 2)
	_ = dep.LazyInit() // clean: coldpath carve-out in the dependency
	_ = dep.Scratch(n) // clean: suppressed inside the dependency
	return len(xs) + n
}

//colsim:hotpath
func ViaInterface(s dep.Summarizer, n int) int {
	out := s.Summarize(n) // want "possible interface dispatch"
	return len(out)
}

// Package lockfix exercises the lockcheck analyzer: copied locks, mixed
// atomic/plain field access, and sync.Pool values retained past Put.
package lockfix

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	mu sync.Mutex
	n  int64
}

func ByValueParam(c counters) int64 { // want "parameter passes lock-containing type"
	return c.n
}

func CopyAssign(c *counters) int64 {
	snapshot := *c // want "assignment copies lock-containing value"
	return snapshot.n
}

// CleanPointer is the correct shape: lock travels by pointer.
func CleanPointer(c *counters) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

type stats struct{ hits int64 }

func MixedAtomic(s *stats) int64 {
	atomic.AddInt64(&s.hits, 1)
	return s.hits // want "accessed atomically elsewhere"
}

type onlyAtomic struct{ m int64 }

// Bump only ever touches m atomically: clean.
func Bump(o *onlyAtomic) {
	atomic.AddInt64(&o.m, 1)
}

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func PoolRetain() int {
	b := bufPool.Get().(*[]byte)
	bufPool.Put(b)
	return len(*b) // want "used after being returned to a sync.Pool"
}

// PoolClean defers the Put, so every use precedes the handback.
func PoolClean() int {
	b := bufPool.Get().(*[]byte)
	defer bufPool.Put(b)
	return cap(*b)
}

type wrapper struct{ inner counters }

func RangeCopies(ws []wrapper) int64 {
	var total int64
	for _, w := range ws { // want "range value copies lock-containing type"
		total += w.inner.n
	}
	return total
}

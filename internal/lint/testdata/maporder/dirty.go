// Package fixture seeds map-iteration-order leaks.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// Keys appends map keys without sorting: callers observe random order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "appending to out while ranging over a map"
		out = append(out, k)
	}
	return out
}

// SortedKeys is the sanctioned pattern: append, then sort.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SortedBySlice also counts: sort.Slice mentions the appended slice.
func SortedBySlice(m map[int]float64) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Dump prints while iterating: output order is randomized.
func Dump(m map[string]int) {
	for k, v := range m { // want "writing output while ranging over a map"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Render writes into a builder while iterating: the string content bakes
// in the iteration order.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "writing output while ranging over a map"
		b.WriteString(k)
	}
	return b.String()
}

// Sum is commutative aggregation; order cannot be observed.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes into another map; keyed writes are order-independent.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// SliceAppend ranges over a slice, which iterates in order.
func SliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

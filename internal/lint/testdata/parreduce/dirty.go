// Package parfix exercises the parreduce analyzer: worker closures must
// write per-index slots and post-join reductions must run ascending.
package parfix

import "github.com/p2psim/collusion/internal/parallel"

// CleanForEach is the ordered-reduction contract: workers fill disjoint
// slots, the join consumes them in ascending index order.
func CleanForEach(n int) int {
	out := make([]int, n)
	parallel.ForEach(4, n, func(i int) {
		out[i] = i * i
	})
	sum := 0
	for i := 0; i < n; i++ {
		sum += out[i]
	}
	return sum
}

// CleanBlocks writes through loop variables derived from the block
// bounds, the idiom the sparse EigenTrust multiply uses.
func CleanBlocks(c []float64, n int) {
	parallel.Blocks(4, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c[i] = float64(i) * 0.5
		}
	})
}

// CleanStructSlot writes a field of a per-index slot.
func CleanStructSlot(n int) []struct{ V int } {
	out := make([]struct{ V int }, n)
	parallel.ForEach(2, n, func(i int) {
		out[i].V = i
	})
	return out
}

func SharedScalar(n int) int {
	sum := 0
	parallel.ForEach(4, n, func(i int) {
		sum += i // want "write to captured variable"
	})
	return sum
}

func SharedMap(n int) map[int]int {
	m := make(map[int]int, n)
	parallel.ForEach(4, n, func(i int) {
		m[i] = i // want "write to captured map"
	})
	return m
}

func AppendCapture(n int) []int {
	var out []int
	parallel.ForEach(4, n, func(i int) {
		out = append(out, i) // want "append to captured slice"
	})
	return out
}

func NonIndexSlot(n int, next func() int) []int {
	out := make([]int, n)
	parallel.ForEach(4, n, func(i int) {
		j := next()
		out[j] = i // want "not derived from the worker index"
	})
	return out
}

func DescendingReduce(n int) int {
	out := make([]int, n)
	parallel.ForEach(4, n, func(i int) {
		out[i] = i
	})
	sum := 0
	for i := n - 1; i >= 0; i-- { // want "descending index order"
		sum += out[i]
	}
	return sum
}

func GoStmtWrite(done chan struct{}) int {
	total := 0
	go func() {
		total = 1 // want "write to captured variable"
		close(done)
	}()
	return total
}

func PointerEscape(n int, acc *int) {
	parallel.ForEach(4, n, func(i int) {
		*acc = i // want "write through captured pointer"
	})
}

func WholeCopy(n int, dst, src []int) {
	parallel.Blocks(4, n, func(lo, hi int) {
		copy(dst, src) // want "copy into captured slice"
	})
}

// CleanRangeCopy copies into an index-derived sub-range.
func CleanRangeCopy(n int, dst, src []int) {
	parallel.Blocks(4, n, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

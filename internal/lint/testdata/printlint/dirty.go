// Package fixture seeds direct output from library code.
package fixture

import (
	"fmt"
	"io"
	"log"
	"os"
)

// Report writes straight to process streams and the global logger.
func Report(x int) {
	fmt.Println("x =", x)             // want "fmt.Println in library code"
	fmt.Printf("%d\n", x)             // want "fmt.Printf in library code"
	fmt.Print(x)                      // want "fmt.Print in library code"
	fmt.Fprintf(os.Stdout, "%d\n", x) // want "fmt.Fprintf to a standard stream"
	fmt.Fprintln(os.Stderr, x)        // want "fmt.Fprintln to a standard stream"
	log.Printf("x=%d", x)             // want "log.Printf in library code"
	println(x)                        // want "builtin println in library code"
}

// Clean takes a writer from the caller; presentation stays in cmd/.
func Clean(w io.Writer, x int) error {
	_, err := fmt.Fprintf(w, "%d\n", x)
	return err
}

// Sprint formats without emitting; that is allowed.
func Sprint(x int) string {
	return fmt.Sprintf("%d", x)
}

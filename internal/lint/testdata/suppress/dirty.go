// Package fixture exercises the //colsimlint:ignore directive.
package fixture

// ExactTie compares exactly but carries a trailing suppression.
func ExactTie(a, b float64) bool {
	return a == b //colsimlint:ignore floateq exact tie on copied values, not computed ones
}

// AboveLine carries the suppression on the line above.
func AboveLine(a, b float64) bool {
	//colsimlint:ignore floateq exact tie on copied values, not computed ones
	return a == b
}

// WrongName suppresses a different analyzer, so the finding survives.
func WrongName(a, b float64) bool {
	return a == b //colsimlint:ignore maporder misdirected suppression // want "== between floats"
}

// Unsuppressed is the control.
func Unsuppressed(a, b float64) bool {
	return a == b // want "== between floats"
}

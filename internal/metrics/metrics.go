// Package metrics provides counted-work accounting for the experiments.
//
// The paper reports "operation cost" as the number of computer cycles spent
// thwarting collusion (Figure 13). A wall-clock measurement would not be
// portable or stable, so the reproduction counts primitive operations
// instead: matrix-element visits in the basic detector, bound evaluations
// in the optimized detector, multiply-adds in the EigenTrust power
// iteration, and messages exchanged between decentralized reputation
// managers. The counts preserve the asymptotic shapes — O(mn²), O(mn) and
// O(n²·iterations) — that the figure compares.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// CostMeter accumulates named operation counters. The zero value is ready
// to use. All methods are safe for concurrent use.
type CostMeter struct {
	mu       sync.Mutex
	counters map[string]*atomic.Int64
}

// Add increments the named counter by n. Negative n is permitted and
// decrements, which callers use to cancel speculative accounting.
func (m *CostMeter) Add(name string, n int64) {
	m.counter(name).Add(n)
}

// Inc increments the named counter by one.
func (m *CostMeter) Inc(name string) { m.Add(name, 1) }

// Get returns the current value of the named counter (zero if never used).
func (m *CostMeter) Get(name string) int64 {
	m.mu.Lock()
	c, ok := m.counters[name]
	m.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Load()
}

// Total returns the sum of every counter. This is the scalar the Figure 13
// harness reports per method.
func (m *CostMeter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, c := range m.counters {
		total += c.Load()
	}
	return total
}

// Reset zeroes every counter but keeps their names registered.
func (m *CostMeter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.counters {
		c.Store(0)
	}
}

// Snapshot returns a copy of all counters at a point in time.
func (m *CostMeter) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for name, c := range m.counters {
		out[name] = c.Load()
	}
	return out
}

// String renders the counters sorted by name, one per line, for logs.
func (m *CostMeter) String() string {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%d\n", name, snap[name])
	}
	return b.String()
}

// counter returns (registering on first use) the named counter. After the
// first call for a name the path is a mutex-guarded map read; the
// allocations below happen once per counter name for the meter's lifetime.
//
//colsim:coldpath lazy one-time registration per counter name; steady-state calls take the map-hit path
func (m *CostMeter) counter(name string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.counters == nil {
		m.counters = make(map[string]*atomic.Int64)
	}
	c, ok := m.counters[name]
	if !ok {
		c = new(atomic.Int64)
		m.counters[name] = c
	}
	return c
}

// Well-known counter names shared by the detector, reputation, and DHT
// packages so that experiment output is comparable across methods.
const (
	// CostMatrixScan counts rating-matrix element visits (basic detector).
	CostMatrixScan = "detector.matrix_scan"
	// CostBoundCheck counts Formula (2) bound evaluations (optimized detector).
	CostBoundCheck = "detector.bound_check"
	// CostPairCheck counts candidate pair examinations in either detector.
	CostPairCheck = "detector.pair_check"
	// CostEigenMulAdd counts multiply-adds in EigenTrust power iterations.
	CostEigenMulAdd = "eigentrust.mul_add"
	// CostDHTMessage counts messages routed through the DHT overlay.
	CostDHTMessage = "dht.message"
	// CostManagerMessage counts suspicion-check messages between reputation
	// managers in the decentralized detection protocol.
	CostManagerMessage = "manager.message"
)

package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestZeroValueUsable(t *testing.T) {
	var m CostMeter
	if got := m.Get("anything"); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	m.Inc("a")
	if got := m.Get("a"); got != 1 {
		t.Fatalf("after Inc, a = %d, want 1", got)
	}
}

func TestAddAndTotal(t *testing.T) {
	var m CostMeter
	m.Add("x", 5)
	m.Add("y", 7)
	m.Add("x", 3)
	if got := m.Get("x"); got != 8 {
		t.Fatalf("x = %d, want 8", got)
	}
	if got := m.Total(); got != 15 {
		t.Fatalf("Total = %d, want 15", got)
	}
}

func TestNegativeAdd(t *testing.T) {
	var m CostMeter
	m.Add("x", 10)
	m.Add("x", -4)
	if got := m.Get("x"); got != 6 {
		t.Fatalf("x = %d, want 6", got)
	}
}

func TestReset(t *testing.T) {
	var m CostMeter
	m.Add("x", 3)
	m.Add("y", 4)
	m.Reset()
	if got := m.Total(); got != 0 {
		t.Fatalf("Total after Reset = %d, want 0", got)
	}
	// Names must survive Reset so Snapshot still reports them.
	snap := m.Snapshot()
	if _, ok := snap["x"]; !ok {
		t.Fatal("counter name lost after Reset")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	var m CostMeter
	m.Add("x", 1)
	snap := m.Snapshot()
	snap["x"] = 999
	if got := m.Get("x"); got != 1 {
		t.Fatalf("mutating snapshot changed meter: x = %d", got)
	}
}

func TestStringSortedOutput(t *testing.T) {
	var m CostMeter
	m.Add("beta", 2)
	m.Add("alpha", 1)
	s := m.String()
	if !strings.Contains(s, "alpha=1") || !strings.Contains(s, "beta=2") {
		t.Fatalf("String() = %q missing counters", s)
	}
	if strings.Index(s, "alpha") > strings.Index(s, "beta") {
		t.Fatalf("String() not sorted: %q", s)
	}
}

func TestConcurrentAdds(t *testing.T) {
	var m CostMeter
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Inc("shared")
				m.Add("other", 2)
			}
		}()
	}
	wg.Wait()
	if got := m.Get("shared"); got != workers*perWorker {
		t.Fatalf("shared = %d, want %d", got, workers*perWorker)
	}
	if got := m.Get("other"); got != 2*workers*perWorker {
		t.Fatalf("other = %d, want %d", got, 2*workers*perWorker)
	}
}

// TestConcurrentMixedHammer drives every CostMeter method at once — lazy
// counter creation, reads, totals, resets, and snapshots — so `go test
// -race` certifies the meter for the parallel experiment engine, where one
// meter is shared by the figure harness and its worker goroutines.
func TestConcurrentMixedHammer(t *testing.T) {
	var m CostMeter
	names := []string{CostMatrixScan, CostBoundCheck, CostPairCheck,
		CostEigenMulAdd, CostDHTMessage, CostManagerMessage}
	const workers = 8
	const steps = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < steps; i++ {
				name := names[(w+i)%len(names)]
				switch i % 6 {
				case 0:
					m.Inc(name)
				case 1:
					m.Add(name, int64(i%7))
				case 2:
					_ = m.Get(name)
				case 3:
					_ = m.Total()
				case 4:
					_ = m.Snapshot()
				case 5:
					_ = m.String()
				}
			}
		}(w)
	}
	// One goroutine resets concurrently: the hammer asserts absence of
	// data races and torn reads, not a particular final count.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			m.Reset()
		}
	}()
	wg.Wait()
	if m.Total() < 0 {
		t.Fatalf("Total went negative: %d", m.Total())
	}
}

func BenchmarkInc(b *testing.B) {
	var m CostMeter
	for i := 0; i < b.N; i++ {
		m.Inc(CostBoundCheck)
	}
}

func BenchmarkIncParallel(b *testing.B) {
	var m CostMeter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Inc(CostMatrixScan)
		}
	})
}

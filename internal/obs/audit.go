package obs

// Audit gate labels shared by the detectors. Each names the first
// threshold gate of the paper's collusion model (§IV) that the examined
// pair failed — or GateFlagged when every gate passed. The labels answer
// "why wasn't (i,j) flagged in cycle c?" directly from the trace.
const (
	// GateFlagged: every gate passed; the pair was detected.
	GateFlagged = "flagged"
	// GateTNForward: N_(i,j) < T_N — j does not rate i frequently (C4).
	GateTNForward = "tn_forward"
	// GateTAForward: a_(i,j) < T_a — j's ratings of i are not almost
	// always positive (C3).
	GateTAForward = "ta_forward"
	// GateTBForward: the strict rule demanded i's outside share be low
	// (< T_b, C2) and it was not.
	GateTBForward = "tb_forward"
	// GateTNReverse / GateTAReverse: the symmetric screen on a_(j,i).
	GateTNReverse = "tn_reverse"
	GateTAReverse = "ta_reverse"
	// GateTBReverse: the strict rule's outside test on j failed.
	GateTBReverse = "tb_reverse"
	// GateTBOutside: the default rule's outside test failed on every
	// evaluated side — neither node looks propped up by the other.
	GateTBOutside = "tb_outside"
	// GateTN / GateTA: the optimized method's combined frequency /
	// positivity screens (both directions read together).
	GateTN = "tn"
	GateTA = "ta"
	// GateBound: the Formula (2) reputation-interval check failed on the
	// side(s) the optimized rule required.
	GateBound = "bound"
	// GateBoundForward / GateBoundReverse: which side failed under the
	// strict optimized rule, where the checks run in order.
	GateBoundForward = "bound_forward"
	GateBoundReverse = "bound_reverse"
	// GateTR: at least one node of the pair is below the T_R candidate
	// screen, so the detectors never examined the pair at all. Emitted by
	// the service suspicion endpoint's advisory explain path
	// (core.ExplainPair), never by the detectors themselves — they screen
	// candidates before pairing.
	GateTR = "tr"
)

// PairAudit is one detector decision about a candidate pair (I, J): which
// threshold gate it stopped at and the observed values of every statistic
// the cascade consults. Fields the examined gate never reached are still
// reported (they are O(1) ledger reads), so the trail explains not just
// the failing gate but the full picture the detector saw.
type PairAudit struct {
	// Detector is the detector's Name().
	Detector string
	// I, J are the examined pair, I < J.
	I, J int
	// Gate is the first failing gate label, or GateFlagged.
	Gate string
	// NIJ, NJI are the pair rating counts N_(i,j) / N_(j,i).
	NIJ, NJI int
	// AIJ, AJI are the pair positive shares (zero when the count is zero).
	AIJ, AJI float64
	// NI, NJ are the total ratings each node received.
	NI, NJ int
	// RI, RJ are the summation reputations.
	RI, RJ float64
	// OutPosI/OutTotI and OutPosJ/OutTotJ are each node's outside ratings
	// — positives and total received from everyone but the partner (the
	// b statistic of C2).
	OutPosI, OutTotI int
	OutPosJ, OutTotJ int
	// LoI, HiI, LoJ, HiJ are the Formula (2) reputation bounds each side
	// was (or would have been) checked against; zero for detectors that
	// never evaluate them.
	LoI, HiI, LoJ, HiJ float64
}

// PairAudit emits a "pair_audit" event carrying the decision.
//
//colsim:coldpath no-op unless tracing is enabled; audited runs trade allocation freedom for the decision record
func (t *Tracer) PairAudit(a PairAudit) {
	if !t.Enabled() {
		return
	}
	t.Emit("pair_audit",
		Str("detector", a.Detector),
		Int("i", a.I),
		Int("j", a.J),
		Str("gate", a.Gate),
		Bool("flagged", a.Gate == GateFlagged),
		Int("n_ij", a.NIJ),
		Int("n_ji", a.NJI),
		Float("a_ij", a.AIJ),
		Float("a_ji", a.AJI),
		Int("n_i", a.NI),
		Int("n_j", a.NJ),
		Float("r_i", a.RI),
		Float("r_j", a.RJ),
		Int("out_pos_i", a.OutPosI),
		Int("out_tot_i", a.OutTotI),
		Int("out_pos_j", a.OutPosJ),
		Int("out_tot_j", a.OutTotJ),
		Float("lo_i", a.LoI),
		Float("hi_i", a.HiI),
		Float("lo_j", a.LoJ),
		Float("hi_j", a.HiJ),
	)
}

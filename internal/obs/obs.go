// Package obs is the deterministic observability layer: structured run
// tracing, detector decision audits, and a metrics registry unifying the
// cost meter with gauges and log-bucketed histograms.
//
// Determinism is the design constraint everything else bends around. The
// seeded simulation trees must replay bit-identically from a single seed,
// so trace events are stamped with the simulation cycle — never the wall
// clock — and every event attribute is encoded by hand into a canonical
// JSONL form (fixed key order, strconv float formatting, no map
// iteration), so a seeded run produces a byte-identical trace.jsonl on
// every replay and for every worker count. Wall-clock profiling lives in
// the explicitly-unseeded internal/obs/prof subpackage, which the
// colsimlint determinism analyzer exempts.
//
// A disabled tracer (nil, or no sink) is free: Enabled reports false
// without allocation, and every emit helper is a nil-safe no-op, so the
// detector hot path pays nothing when tracing is off (pinned by
// TestTracingOffAddsNoAllocs).
package obs

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
)

// Attr is one typed event attribute. The concrete payload is stored in a
// discriminated field rather than an interface so building an attribute
// never allocates.
type Attr struct {
	Key  string
	kind byte
	i    int64
	f    float64
	s    string
}

// Attribute kind tags.
const (
	kindInt byte = iota
	kindFloat
	kindStr
	kindBool
)

// Int returns an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, kind: kindInt, i: int64(v)} }

// I64 returns a 64-bit integer attribute.
func I64(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, i: v} }

// Float returns a float attribute, encoded with strconv 'g' shortest form
// so the byte representation is canonical.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, f: v} }

// Str returns a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: kindStr, s: v} }

// Bool returns a boolean attribute.
func Bool(key string, v bool) Attr {
	var i int64
	if v {
		i = 1
	}
	return Attr{Key: key, kind: kindBool, i: i}
}

// Sink receives encoded trace output. WriteTrace is handed one or more
// complete, newline-terminated JSONL event lines; the slice is reused by
// the caller and must not be retained.
type Sink interface {
	WriteTrace(p []byte) error
	Close() error
}

// BufferSink collects trace lines in memory; Tracer.Fork uses it for the
// per-run buffers that make parallel runs byte-identical to sequential
// ones.
type BufferSink struct {
	buf bytes.Buffer
}

// WriteTrace implements Sink. Writes to a bytes.Buffer cannot fail.
func (s *BufferSink) WriteTrace(p []byte) error {
	s.buf.Write(p)
	return nil
}

// Close implements Sink.
func (s *BufferSink) Close() error { return nil }

// Bytes returns the collected trace.
func (s *BufferSink) Bytes() []byte { return s.buf.Bytes() }

// WriterSink adapts any io.Writer into a Sink.
type WriterSink struct {
	w io.Writer
}

// NewWriterSink returns a sink writing to w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// WriteTrace implements Sink.
func (s *WriterSink) WriteTrace(p []byte) error {
	_, err := s.w.Write(p)
	return err
}

// Close implements Sink.
func (s *WriterSink) Close() error { return nil }

// FileSink writes buffered JSONL to a file; Close flushes and closes it.
type FileSink struct {
	f  *os.File
	bw *bufio.Writer
}

// NewFileSink creates (truncating) the file at path.
func NewFileSink(path string) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileSink{f: f, bw: bufio.NewWriter(f)}, nil
}

// WriteTrace implements Sink.
func (s *FileSink) WriteTrace(p []byte) error {
	_, err := s.bw.Write(p)
	return err
}

// Close flushes the buffer and closes the file, returning the first error.
func (s *FileSink) Close() error {
	ferr := s.bw.Flush()
	cerr := s.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Tracer emits structured, cycle-stamped events to a sink. A nil Tracer
// (or one with a nil sink) is a valid disabled tracer: every method is a
// no-op. The first sink error is latched; subsequent emits are dropped and
// Err/Close surface the error to the run's caller, so trace loss is never
// silent.
type Tracer struct {
	mu      sync.Mutex
	sink    Sink
	cycle   int64
	err     error
	scratch []byte
}

// NewTracer returns a tracer writing to sink. A nil sink yields a disabled
// tracer.
func NewTracer(sink Sink) *Tracer { return &Tracer{sink: sink} }

// Enabled reports whether events will be recorded. It is nil-safe and
// allocation-free, so hot paths can guard audit work with it.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// SetCycle stamps subsequent events with the given 1-based simulation
// cycle. Events emitted outside any cycle (run setup, final summaries)
// carry the last value set, initially zero.
func (t *Tracer) SetCycle(cycle int) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.cycle = int64(cycle)
	t.mu.Unlock()
}

// Emit records one event of the given type. Attributes are encoded in
// argument order after the fixed "cycle" and "type" keys, giving every
// event a canonical byte representation.
func (t *Tracer) Emit(typ string, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	b := t.scratch[:0]
	b = append(b, `{"cycle":`...)
	b = strconv.AppendInt(b, t.cycle, 10)
	b = append(b, `,"type":`...)
	b = appendJSONString(b, typ)
	for _, a := range attrs {
		b = append(b, ',')
		b = appendJSONString(b, a.Key)
		b = append(b, ':')
		switch a.kind {
		case kindInt:
			b = strconv.AppendInt(b, a.i, 10)
		case kindFloat:
			b = appendJSONFloat(b, a.f)
		case kindStr:
			b = appendJSONString(b, a.s)
		case kindBool:
			if a.i != 0 {
				b = append(b, "true"...)
			} else {
				b = append(b, "false"...)
			}
		}
	}
	b = append(b, '}', '\n')
	t.scratch = b
	if err := t.sink.WriteTrace(b); err != nil {
		t.err = err
	}
}

// Err returns the first sink error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close closes the sink and returns the latched emit error, or the close
// error if emission was clean.
func (t *Tracer) Close() error {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cerr := t.sink.Close()
	if t.err != nil {
		return t.err
	}
	return cerr
}

// Fork returns n child tracers, each buffering into its own BufferSink, so
// independent runs (or figure cells) can trace concurrently; Join flushes
// the buffers into the parent in index order, making the combined trace
// byte-identical for every worker count. On a disabled tracer the children
// are nil (disabled) tracers.
func (t *Tracer) Fork(n int) []*Tracer {
	kids := make([]*Tracer, n)
	if !t.Enabled() {
		return kids
	}
	for i := range kids {
		kids[i] = NewTracer(&BufferSink{})
	}
	return kids
}

// Join appends each child's buffered trace to the parent sink in slice
// order and propagates the first child (or parent sink) error. Children
// produced by Fork on a disabled tracer are skipped.
func (t *Tracer) Join(kids []*Tracer) error {
	if !t.Enabled() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, k := range kids {
		if k == nil {
			continue
		}
		k.mu.Lock()
		kerr := k.err
		var data []byte
		if buf, ok := k.sink.(*BufferSink); ok {
			data = buf.Bytes()
		}
		k.mu.Unlock()
		if kerr != nil && t.err == nil {
			t.err = kerr
		}
		if t.err == nil && len(data) > 0 {
			if err := t.sink.WriteTrace(data); err != nil {
				t.err = err
			}
		}
	}
	return t.err
}

// TimerFunc starts a measurement and returns the function that stops it.
// The simulator calls it around each detection pass when one is
// configured; implementations that read the wall clock live in
// internal/obs/prof, outside the seeded trees.
type TimerFunc func() (stop func())

// appendJSONFloat encodes f in the shortest round-trippable decimal form.
// JSON has no Inf/NaN literals; they are encoded as strings.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		b = append(b, '"')
		b = strconv.AppendFloat(b, f, 'g', -1, 64)
		return append(b, '"')
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// appendJSONString encodes s as a JSON string, escaping quotes,
// backslashes and control characters. Event types and keys are ASCII
// identifiers, so the fast path is a plain copy.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'a' + v - 10
}

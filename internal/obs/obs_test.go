package obs

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failSink fails WriteTrace after failAfter successful writes and returns
// closeErr from Close, for exercising the error-latching paths.
type failSink struct {
	failAfter int
	writes    int
	closeErr  error
}

var errSinkBroken = errors.New("sink broken")

func (s *failSink) WriteTrace(p []byte) error {
	s.writes++
	if s.writes > s.failAfter {
		return errSinkBroken
	}
	return nil
}

func (s *failSink) Close() error { return s.closeErr }

// TestEmitCanonicalEncoding pins the exact byte encoding of every
// attribute kind: fixed key order, strconv 'g' floats, string-quoted
// NaN/Inf, escaped strings. Byte-identical traces depend on this.
func TestEmitCanonicalEncoding(t *testing.T) {
	var sink BufferSink
	tr := NewTracer(&sink)
	tr.SetCycle(3)
	tr.Emit("ev",
		Int("i", -5),
		I64("i64", 1<<40),
		Float("f", 0.25),
		Float("nan", math.NaN()),
		Float("inf", math.Inf(1)),
		Str("s", "q\"\\\x01"),
		Bool("yes", true),
		Bool("no", false),
	)
	want := `{"cycle":3,"type":"ev","i":-5,"i64":1099511627776,"f":0.25,` +
		`"nan":"NaN","inf":"+Inf","s":"q\"\\\u0001","yes":true,"no":false}` + "\n"
	if got := string(sink.Bytes()); got != want {
		t.Fatalf("encoding drifted:\n got %q\nwant %q", got, want)
	}
	// The line must round-trip through a standard JSON decoder.
	var m map[string]any
	if err := json.Unmarshal(sink.Bytes(), &m); err != nil {
		t.Fatalf("emitted line is not valid JSON: %v", err)
	}
	if m["type"] != "ev" || m["cycle"] != float64(3) {
		t.Fatalf("decoded event = %v", m)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSetCycleStampsEvents(t *testing.T) {
	var sink BufferSink
	tr := NewTracer(&sink)
	tr.Emit("a")
	tr.SetCycle(7)
	tr.Emit("b")
	lines := strings.Split(strings.TrimSpace(string(sink.Bytes())), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], `{"cycle":0,`) {
		t.Errorf("pre-cycle event = %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], `{"cycle":7,`) {
		t.Errorf("stamped event = %s", lines[1])
	}
}

// TestDisabledTracer proves a nil tracer and a sink-less tracer are valid
// disabled tracers: every method is a safe no-op.
func TestDisabledTracer(t *testing.T) {
	for name, tr := range map[string]*Tracer{"nil": nil, "no-sink": NewTracer(nil)} {
		if tr.Enabled() {
			t.Errorf("%s tracer reports enabled", name)
		}
		tr.SetCycle(5)
		tr.Emit("ev", Int("x", 1))
		tr.PairAudit(PairAudit{Gate: GateFlagged})
		if err := tr.Err(); err != nil {
			t.Errorf("%s tracer Err = %v", name, err)
		}
		if err := tr.Close(); err != nil {
			t.Errorf("%s tracer Close = %v", name, err)
		}
		kids := tr.Fork(3)
		if len(kids) != 3 {
			t.Fatalf("%s tracer Fork returned %d kids", name, len(kids))
		}
		for _, k := range kids {
			if k != nil {
				t.Errorf("%s tracer forked a live child", name)
			}
		}
		if err := tr.Join(kids); err != nil {
			t.Errorf("%s tracer Join = %v", name, err)
		}
	}
}

// TestTracingOffAddsNoAllocs pins the zero-cost claim the detector hot
// path relies on: with tracing off, the Enabled guard plus the skipped
// Emit allocate nothing.
func TestTracingOffAddsNoAllocs(t *testing.T) {
	for name, tr := range map[string]*Tracer{"nil": nil, "no-sink": NewTracer(nil)} {
		allocs := testing.AllocsPerRun(1000, func() {
			if tr.Enabled() {
				tr.Emit("pair_audit", Int("i", 1), Int("j", 2), Str("gate", GateTN))
			}
		})
		if allocs != 0 {
			t.Errorf("%s tracer: %v allocs per guarded emit, want 0", name, allocs)
		}
	}
}

// TestSinkErrorLatched pins the failure contract: the first sink error is
// latched, later emits are dropped without touching the sink, and both
// Err and Close surface the error so trace loss is never silent.
func TestSinkErrorLatched(t *testing.T) {
	sink := &failSink{failAfter: 1}
	tr := NewTracer(sink)
	tr.Emit("ok")
	if err := tr.Err(); err != nil {
		t.Fatalf("healthy emit latched error: %v", err)
	}
	tr.Emit("boom")
	if !errors.Is(tr.Err(), errSinkBroken) {
		t.Fatalf("Err = %v, want %v", tr.Err(), errSinkBroken)
	}
	tr.Emit("dropped")
	if sink.writes != 2 {
		t.Fatalf("sink saw %d writes after latch, want 2", sink.writes)
	}
	if !errors.Is(tr.Close(), errSinkBroken) {
		t.Fatal("Close did not surface the latched emit error")
	}
}

func TestCloseSurfacesCloseError(t *testing.T) {
	closeErr := errors.New("close failed")
	tr := NewTracer(&failSink{failAfter: 100, closeErr: closeErr})
	tr.Emit("ok")
	if !errors.Is(tr.Close(), closeErr) {
		t.Fatal("clean emission: Close must return the sink close error")
	}
}

// TestForkJoinOrder proves Join assembles child buffers in index order no
// matter the order the children were written, which is what makes
// parallel runs byte-identical to sequential ones.
func TestForkJoinOrder(t *testing.T) {
	var sink BufferSink
	parent := NewTracer(&sink)
	kids := parent.Fork(3)
	for _, k := range []int{2, 0, 1} { // scheduler-shuffled completion order
		kids[k].Emit("run", Int("k", k))
	}
	if err := parent.Join(kids); err != nil {
		t.Fatal(err)
	}
	want := `{"cycle":0,"type":"run","k":0}` + "\n" +
		`{"cycle":0,"type":"run","k":1}` + "\n" +
		`{"cycle":0,"type":"run","k":2}` + "\n"
	if got := string(sink.Bytes()); got != want {
		t.Fatalf("joined trace out of order:\n got %q\nwant %q", got, want)
	}
}

func TestJoinPropagatesChildError(t *testing.T) {
	var sink BufferSink
	parent := NewTracer(&sink)
	bad := NewTracer(&failSink{failAfter: 0})
	bad.Emit("boom")
	if err := parent.Join([]*Tracer{bad, nil}); !errors.Is(err, errSinkBroken) {
		t.Fatalf("Join = %v, want child error %v", err, errSinkBroken)
	}
	if err := parent.Err(); !errors.Is(err, errSinkBroken) {
		t.Fatal("child error not latched on parent")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errSinkBroken }

func TestWriterSink(t *testing.T) {
	var buf strings.Builder
	s := NewWriterSink(&buf)
	if err := s.WriteTrace([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "x\n" {
		t.Fatalf("wrote %q", buf.String())
	}
	if err := NewWriterSink(failWriter{}).WriteTrace([]byte("x")); !errors.Is(err, errSinkBroken) {
		t.Fatalf("failing writer error = %v", err)
	}
}

func TestFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(sink)
	tr.Emit("ev", Int("x", 1))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"cycle":0,"type":"ev","x":1}`+"\n" {
		t.Fatalf("file trace = %q", data)
	}
	if _, err := NewFileSink(filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")); err == nil {
		t.Fatal("creating a sink in a missing directory succeeded")
	}
}

// TestPairAuditEvent pins the audit event schema the trail consumers
// (and DESIGN.md) document.
func TestPairAuditEvent(t *testing.T) {
	var sink BufferSink
	tr := NewTracer(&sink)
	tr.SetCycle(4)
	tr.PairAudit(PairAudit{
		Detector: "basic", I: 1, J: 2, Gate: GateFlagged,
		NIJ: 30, NJI: 30, AIJ: 1, AJI: 1,
		NI: 40, NJ: 41, RI: 20, RJ: 19,
		OutPosI: 3, OutTotI: 10, OutPosJ: 4, OutTotJ: 11,
		LoI: 14, HiI: 24, LoJ: 13, HiJ: 23,
	})
	var m map[string]any
	if err := json.Unmarshal(sink.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	wants := map[string]any{
		"cycle": float64(4), "type": "pair_audit", "detector": "basic",
		"i": float64(1), "j": float64(2), "gate": "flagged", "flagged": true,
		"n_ij": float64(30), "a_ij": float64(1), "r_i": float64(20),
		"out_tot_j": float64(11), "lo_i": float64(14), "hi_j": float64(23),
	}
	for k, v := range wants {
		if m[k] != v {
			t.Errorf("pair_audit[%q] = %v, want %v", k, m[k], v)
		}
	}
}

// Package prof is the explicitly-unseeded profiling harness: the one
// place in the repository allowed to read the wall clock and drive pprof.
// The colsimlint determinism analyzer restricts internal/obs but exempts
// this subtree — timing and profiles measure the host machine, never feed
// back into simulation state, and are expected to differ between runs.
// Nothing here may be imported by code that influences seeded results;
// the simulator only ever receives an opaque obs.TimerFunc whose
// measurements flow one way, into a histogram.
package prof

import (
	"os"
	"runtime/pprof"
	"time"

	"github.com/p2psim/collusion/internal/obs"
)

// DetectTimer returns a TimerFunc that records wall-clock nanoseconds per
// measured section into h. A nil histogram yields a no-op timer.
func DetectTimer(h *obs.Histogram) obs.TimerFunc {
	if h == nil {
		return func() func() { return func() {} }
	}
	return func() func() {
		start := time.Now()
		return func() { h.Observe(time.Since(start).Nanoseconds()) }
	}
}

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// Package prof is the explicitly-unseeded profiling harness: the one
// place in the repository allowed to read the wall clock and drive pprof.
// The colsimlint determinism analyzer restricts internal/obs but exempts
// this subtree — timing and profiles measure the host machine, never feed
// back into simulation state, and are expected to differ between runs.
// Nothing here may be imported by code that influences seeded results;
// the simulator only ever receives an opaque obs.TimerFunc whose
// measurements flow one way, into a histogram.
package prof

import (
	"os"
	"runtime/pprof"
	"time"

	"github.com/p2psim/collusion/internal/obs"
)

// DetectTimer returns a TimerFunc that records wall-clock nanoseconds per
// measured section into h. A nil histogram yields a no-op timer.
func DetectTimer(h *obs.Histogram) obs.TimerFunc {
	if h == nil {
		return func() func() { return func() {} }
	}
	return func() func() {
		start := time.Now()
		return func() { h.Observe(time.Since(start).Nanoseconds()) }
	}
}

// SpanTimer is the wall-clock obs.SpanObserver: it times every span
// between SpanBegin and SpanEnd and records the nanoseconds into the
// registry histogram span.<name>_ns. Durations live only in histograms —
// never in the span timeline itself — so attaching a timer does not
// perturb the timeline's byte-identity. Like the SpanTracer driving it,
// a SpanTimer describes one sequential run loop and is not safe for
// concurrent use.
type SpanTimer struct {
	reg   *obs.Registry
	stack []spanStart
	hists map[string]*obs.Histogram
}

type spanStart struct {
	name  string
	start time.Time
}

// NewSpanTimer returns a timer recording into reg (nil yields a timer
// whose observations vanish into nil histograms).
func NewSpanTimer(reg *obs.Registry) *SpanTimer {
	return &SpanTimer{reg: reg, hists: make(map[string]*obs.Histogram)}
}

// SpanBegin implements obs.SpanObserver.
func (t *SpanTimer) SpanBegin(name string) {
	t.stack = append(t.stack, spanStart{name: name, start: time.Now()})
}

// SpanEnd implements obs.SpanObserver. The SpanTracer enforces strict
// Begin/End pairing, so a mismatch here cannot happen through it; stray
// calls are ignored rather than panicking twice.
func (t *SpanTimer) SpanEnd(name string) {
	if len(t.stack) == 0 {
		return
	}
	top := t.stack[len(t.stack)-1]
	if top.name != name {
		return
	}
	t.stack = t.stack[:len(t.stack)-1]
	h, ok := t.hists[name]
	if !ok {
		h = t.reg.Histogram("span." + name + "_ns")
		t.hists[name] = h
	}
	h.Observe(time.Since(top.start).Nanoseconds())
}

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

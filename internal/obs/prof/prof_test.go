package prof

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/p2psim/collusion/internal/obs"
)

func TestDetectTimerNilHistogram(t *testing.T) {
	stop := DetectTimer(nil)()
	stop() // must be a safe no-op
}

func TestDetectTimerRecords(t *testing.T) {
	var h obs.Histogram
	timer := DetectTimer(&h)
	for i := 0; i < 3; i++ {
		stop := timer()
		stop()
	}
	if h.Count() != 3 {
		t.Fatalf("recorded %d sections, want 3", h.Count())
	}
	if h.Sum() < 0 {
		t.Fatalf("negative wall-clock sum %d", h.Sum())
	}
}

func TestCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A second profile cannot start while one is running.
	if _, err := StartCPUProfile(filepath.Join(t.TempDir(), "x.pprof")); err == nil {
		t.Error("concurrent CPU profile accepted")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("CPU profile is empty")
	}
	if _, err := StartCPUProfile(filepath.Join(t.TempDir(), "no", "dir", "cpu.pprof")); err == nil {
		t.Fatal("profiling into a missing directory succeeded")
	}
}

func TestWriteHeapProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	if err := WriteHeapProfile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
	if err := WriteHeapProfile(filepath.Join(t.TempDir(), "no", "dir", "mem.pprof")); err == nil {
		t.Fatal("writing into a missing directory succeeded")
	}
}

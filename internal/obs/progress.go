package obs

import "sync"

// Progress is the per-cycle streaming reporter behind the -progress CLI
// flags: each Cycle call snapshots the registry, diffs it against the
// previous cycle's snapshot, and emits one canonical JSONL line carrying
// exactly what moved — counter deltas, new gauge values, and histogram
// count/sum deltas — as flat attributes in deterministic (sorted-name)
// order.
//
// The line stream is deterministic whenever the registry content is: a
// seeded single run with no wall-clock collectors attached produces a
// byte-identical progress file on every replay, for every worker and
// shard count (meter charges, memo counters and window histograms are
// all pinned worker- and shard-invariant elsewhere). Attaching
// wall-clock histograms (detect.cycle_ns, span.*_ns) or sharing one
// Progress across concurrently-executing runs degrades the file to a
// live operational feed: still canonical per line, no longer replayable.
//
// Cycle is mutex-guarded so concurrent experiment cells may share one
// reporter; a nil Progress (or one built on a nil registry or sink) is a
// valid disabled reporter.
type Progress struct {
	mu   sync.Mutex
	reg  *Registry
	tr   *Tracer
	prev *RegistrySnapshot
}

// NewProgress returns a reporter diffing reg into sink. A nil registry or
// sink yields a disabled reporter.
func NewProgress(reg *Registry, sink Sink) *Progress {
	return &Progress{reg: reg, tr: NewTracer(sink)}
}

// Enabled reports whether Cycle will emit. Nil-safe.
func (p *Progress) Enabled() bool { return p != nil && p.reg != nil && p.tr.Enabled() }

// Cycle emits one progress line for the given simulation cycle: the
// registry delta since the previous Cycle call (or since zero on the
// first). Histogram deltas flatten to two attributes, <name>.count and
// <name>.sum; a cycle in which nothing moved still emits its (empty)
// line, so consumers can count cycles. Sink errors latch; see Err.
func (p *Progress) Cycle(cycle int) {
	if !p.Enabled() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.reg.Snapshot()
	d := cur.Diff(p.prev)
	p.prev = cur
	attrs := make([]Attr, 0, len(d.Counters)+len(d.Gauges)+2*len(d.Histograms))
	for _, c := range d.Counters {
		attrs = append(attrs, I64(c.Name, c.Value))
	}
	for _, g := range d.Gauges {
		attrs = append(attrs, Float(g.Name, g.Value))
	}
	for _, h := range d.Histograms {
		attrs = append(attrs, I64(h.Name+".count", h.Count), I64(h.Name+".sum", h.Sum))
	}
	p.tr.SetCycle(cycle)
	p.tr.Emit("progress", attrs...)
}

// Err returns the first sink error encountered, if any.
func (p *Progress) Err() error {
	if p == nil {
		return nil
	}
	return p.tr.Err()
}

// Close closes the sink and surfaces any latched emit error.
func (p *Progress) Close() error {
	if p == nil {
		return nil
	}
	return p.tr.Close()
}

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/p2psim/collusion/internal/metrics"
)

// Registry unifies the cost meter's counters with gauges and log-bucketed
// histograms behind one export surface (Prometheus text and JSON). The
// zero value is not usable; construct with NewRegistry. All methods are
// safe for concurrent use, and every recording primitive is atomic and
// order-independent, so parallel runs export identical values regardless
// of interleaving.
type Registry struct {
	meter *metrics.CostMeter

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry wraps the given cost meter (a fresh one when nil).
func NewRegistry(m *metrics.CostMeter) *Registry {
	if m == nil {
		m = &metrics.CostMeter{}
	}
	return &Registry{
		meter:    m,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Meter returns the underlying cost meter, for wiring into detectors and
// engines that charge operation counts.
func (r *Registry) Meter() *metrics.CostMeter {
	if r == nil {
		return nil
	}
	return r.meter
}

// Gauge returns (creating on first use) the named gauge. Nil-safe: a nil
// registry yields a nil gauge whose methods are no-ops.
//
//colsim:coldpath lazy one-time registration per gauge name; hot paths cache the returned pointer
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram. Nil-safe
// like Gauge.
//
//colsim:coldpath lazy one-time registration per histogram name; hot paths cache the returned pointer
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter returns (creating on first use) the named counter. Nil-safe
// like Gauge. Registry counters export alongside the cost meter's in the
// counters section of both formats, but live outside the meter: detectors
// and engines meter only the paper's operation costs — which the
// incremental-vs-full equivalence tests compare exactly — while registry
// counters carry operational telemetry such as detect.incremental_hits
// that has no dense-reference counterpart.
//
//colsim:coldpath lazy one-time registration per counter name; hot paths cache the returned pointer
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Counter is a monotonically increasing int64. Recording is a single
// atomic add, so concurrent increments are order-independent. A nil
// counter is a valid no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float value. A nil gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (zero initially).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts int64 observations in power-of-two buckets: bucket 0
// holds observations <= 0 and bucket k >= 1 holds [2^(k-1), 2^k - 1].
// Log bucketing keeps the footprint fixed (65 counters) across the many
// orders of magnitude the observed quantities span — pair rating
// frequencies, EigenTrust iteration counts, DHT hops, detection
// nanoseconds — and recording is a single atomic add per bucket, so
// concurrent observation is order-independent. A nil histogram is a valid
// no-op.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [65]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketCount is one non-empty histogram bucket: Count observations were
// <= Upper (and greater than the previous bucket's Upper).
type BucketCount struct {
	Upper int64 `json:"upper"`
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending Upper order. Bucket
// upper bounds are 0, 1, 3, 7, ..., 2^k - 1.
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	var out []BucketCount
	for k := range h.buckets {
		c := h.buckets[k].Load()
		if c == 0 {
			continue
		}
		upper := int64(0)
		if k > 0 {
			if k >= 64 {
				upper = math.MaxInt64
			} else {
				upper = int64(1)<<k - 1
			}
		}
		out = append(out, BucketCount{Upper: upper, Count: c})
	}
	return out
}

// sortedKeys returns the map's keys ascending, for deterministic export.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// snapshot captures the registry's counters, gauges and histograms under
// the lock so exporters can walk them without holding it.
func (r *Registry) snapshot() (counters map[string]*Counter, gauges map[string]*Gauge, hists map[string]*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters = make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges = make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists = make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	return counters, gauges, hists
}

// counterValues merges the cost meter's counters with the registry's own
// into one name-to-value map for export. Names cannot collide in practice
// (meter names are the paper's operation costs, registry names are dotted
// telemetry), but a collision would sum rather than drop a value.
func (r *Registry) counterValues(own map[string]*Counter) map[string]int64 {
	out := r.meter.Snapshot()
	if out == nil {
		out = make(map[string]int64, len(own))
	}
	for name, c := range own {
		out[name] += c.Value()
	}
	return out
}

// WritePrometheus renders every counter, gauge and histogram in the
// Prometheus text exposition format, metric names prefixed with colsim_
// and dots replaced by underscores. Output order is deterministic
// (counters, gauges, histograms; each sorted by name).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b bytes.Buffer
	own, gauges, hists := r.snapshot()
	counters := r.counterValues(own)
	for _, name := range sortedKeys(counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn,
			formatFloat(gauges[name].Value()))
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for _, bc := range h.Buckets() {
			cum += bc.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, bc.Upper, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count())
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", pn, h.Sum(), pn, h.Count())
	}
	_, err := w.Write(b.Bytes())
	return err
}

// jsonExport is the WriteJSON document shape. Slices, not maps, so the
// encoded byte order is exactly the sorted-name order.
type jsonExport struct {
	Counters   []jsonCounter   `json:"counters"`
	Gauges     []jsonGauge     `json:"gauges"`
	Histograms []jsonHistogram `json:"histograms"`
}

type jsonCounter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type jsonGauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type jsonHistogram struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets"`
}

// WriteJSON renders the registry as one indented JSON document with
// counters, gauges and histograms each sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := jsonExport{
		Counters:   []jsonCounter{},
		Gauges:     []jsonGauge{},
		Histograms: []jsonHistogram{},
	}
	own, gauges, hists := r.snapshot()
	counters := r.counterValues(own)
	for _, name := range sortedKeys(counters) {
		doc.Counters = append(doc.Counters, jsonCounter{Name: name, Value: counters[name]})
	}
	for _, name := range sortedKeys(gauges) {
		doc.Gauges = append(doc.Gauges, jsonGauge{Name: name, Value: gauges[name].Value()})
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		buckets := h.Buckets()
		if buckets == nil {
			buckets = []BucketCount{}
		}
		doc.Histograms = append(doc.Histograms, jsonHistogram{
			Name: name, Count: h.Count(), Sum: h.Sum(), Buckets: buckets,
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// WriteFile exports the registry to path, choosing the format by
// extension: Prometheus text when path ends in ".prom", indented JSON
// otherwise. The harness -metrics flags funnel through here.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".prom") {
		werr = r.WritePrometheus(f)
	} else {
		werr = r.WriteJSON(f)
	}
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// promName converts a dotted metric name to a Prometheus-safe identifier.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("colsim_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatFloat renders a gauge value in canonical shortest form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

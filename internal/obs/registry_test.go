package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
)

// TestNilRegistry pins the nil-safety chain the wiring code relies on: a
// nil registry yields nil gauges and histograms whose methods no-op.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Meter() != nil {
		t.Error("nil registry has a meter")
	}
	g := r.Gauge("x")
	if g != nil {
		t.Fatal("nil registry returned a live gauge")
	}
	g.Set(5)
	if g.Value() != 0 {
		t.Error("nil gauge stored a value")
	}
	h := r.Histogram("x")
	if h != nil {
		t.Fatal("nil registry returned a live histogram")
	}
	h.Observe(5)
	if h.Count() != 0 || h.Sum() != 0 || h.Buckets() != nil {
		t.Error("nil histogram recorded an observation")
	}
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry returned a live counter")
	}
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter recorded an increment")
	}
}

// TestCounter pins the registry-counter contract the incremental
// detectors rely on: stable instance per name, atomic accumulation, and
// export alongside (but independent of) the cost meter's counters.
func TestCounter(t *testing.T) {
	var m metrics.CostMeter
	r := NewRegistry(&m)
	c := r.Counter("detect.incremental_hits")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d", c.Value())
	}
	c.Add(2)
	c.Add(3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("detect.incremental_hits") != c {
		t.Fatal("re-getting a counter returned a different instance")
	}
	// Registry counters must not leak into the cost meter: the meter is
	// what the incremental-vs-full equivalence tests compare exactly.
	if snap := m.Snapshot(); len(snap) != 0 {
		t.Fatalf("registry counter leaked into the cost meter: %v", snap)
	}
}

// TestCounterExportMergesWithMeter pins the export surface: meter
// counters and registry counters share the counters section, sorted by
// name, in both formats.
func TestCounterExportMergesWithMeter(t *testing.T) {
	var m metrics.CostMeter
	m.Add(metrics.CostPairCheck, 7)
	r := NewRegistry(&m)
	r.Counter("detect.incremental_hits").Add(11)
	r.Counter("detect.incremental_misses").Add(4)

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE colsim_detect_incremental_hits counter\n" +
		"colsim_detect_incremental_hits 11\n" +
		"# TYPE colsim_detect_incremental_misses counter\n" +
		"colsim_detect_incremental_misses 4\n" +
		"# TYPE colsim_detector_pair_check counter\n" +
		"colsim_detector_pair_check 7\n"
	if prom.String() != want {
		t.Fatalf("prometheus counter export drifted:\n got %q\nwant %q", prom.String(), want)
	}

	var out bytes.Buffer
	if err := r.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Counters) != 3 ||
		doc.Counters[0].Name != "detect.incremental_hits" || doc.Counters[0].Value != 11 ||
		doc.Counters[1].Name != "detect.incremental_misses" || doc.Counters[1].Value != 4 ||
		doc.Counters[2].Name != metrics.CostPairCheck || doc.Counters[2].Value != 7 {
		t.Fatalf("JSON counters = %+v", doc.Counters)
	}
}

func TestRegistryMeter(t *testing.T) {
	var m metrics.CostMeter
	if NewRegistry(&m).Meter() != &m {
		t.Error("registry did not keep the provided meter")
	}
	if NewRegistry(nil).Meter() == nil {
		t.Error("registry did not substitute a fresh meter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry(nil)
	g := r.Gauge("run.flagged_total")
	if g.Value() != 0 {
		t.Fatalf("fresh gauge = %v", g.Value())
	}
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", g.Value())
	}
	if r.Gauge("run.flagged_total") != g {
		t.Fatal("re-getting a gauge returned a different instance")
	}
}

// TestHistogramBuckets pins the power-of-two bucket layout: bucket 0
// holds v <= 0 and bucket k holds [2^(k-1), 2^k - 1].
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("dht.lookup_hops")
	for _, v := range []int64{-1, 0, 1, 2, 3, 8} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 13 {
		t.Fatalf("count=%d sum=%d, want 6/13", h.Count(), h.Sum())
	}
	want := []BucketCount{{Upper: 0, Count: 2}, {Upper: 1, Count: 1}, {Upper: 3, Count: 2}, {Upper: 15, Count: 1}}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if r.Histogram("dht.lookup_hops") != h {
		t.Fatal("re-getting a histogram returned a different instance")
	}
}

func TestHistogramMaxValue(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	b := h.Buckets()
	if len(b) != 1 || b[0].Upper != math.MaxInt64 || b[0].Count != 1 {
		t.Fatalf("MaxInt64 bucket = %+v", b)
	}
}

// populated builds a registry with one of each metric kind for the
// exporter tests.
func populated() *Registry {
	var m metrics.CostMeter
	m.Add(metrics.CostPairCheck, 7)
	r := NewRegistry(&m)
	r.Gauge("run.flagged_total").Set(3)
	h := r.Histogram("dht.lookup_hops")
	h.Observe(1)
	h.Observe(2)
	h.Observe(5)
	return r
}

// TestWritePrometheus pins the exposition format byte-for-byte: sorted
// sections, colsim_ prefix, dots to underscores, cumulative buckets.
func TestWritePrometheus(t *testing.T) {
	r := populated()
	var out bytes.Buffer
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE colsim_detector_pair_check counter\n" +
		"colsim_detector_pair_check 7\n" +
		"# TYPE colsim_run_flagged_total gauge\n" +
		"colsim_run_flagged_total 3\n" +
		"# TYPE colsim_dht_lookup_hops histogram\n" +
		"colsim_dht_lookup_hops_bucket{le=\"1\"} 1\n" +
		"colsim_dht_lookup_hops_bucket{le=\"3\"} 2\n" +
		"colsim_dht_lookup_hops_bucket{le=\"7\"} 3\n" +
		"colsim_dht_lookup_hops_bucket{le=\"+Inf\"} 3\n" +
		"colsim_dht_lookup_hops_sum 8\n" +
		"colsim_dht_lookup_hops_count 3\n"
	if out.String() != want {
		t.Fatalf("prometheus export drifted:\n got %q\nwant %q", out.String(), want)
	}
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatal("repeated export is not byte-identical")
	}
}

func TestWriteJSON(t *testing.T) {
	r := populated()
	var out bytes.Buffer
	if err := r.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"gauges"`
		Histograms []struct {
			Name    string        `json:"name"`
			Count   int64         `json:"count"`
			Sum     int64         `json:"sum"`
			Buckets []BucketCount `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Counters) != 1 || doc.Counters[0].Name != metrics.CostPairCheck || doc.Counters[0].Value != 7 {
		t.Fatalf("counters = %+v", doc.Counters)
	}
	if len(doc.Gauges) != 1 || doc.Gauges[0].Value != 3 {
		t.Fatalf("gauges = %+v", doc.Gauges)
	}
	if len(doc.Histograms) != 1 || doc.Histograms[0].Count != 3 || doc.Histograms[0].Sum != 8 {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
	if len(doc.Histograms[0].Buckets) != 3 {
		t.Fatalf("buckets = %+v", doc.Histograms[0].Buckets)
	}
	var again bytes.Buffer
	if err := r.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatal("repeated export is not byte-identical")
	}
}

// TestWriteJSONEmptyRegistry pins that empty sections encode as [] (not
// null), so consumers can range without nil checks.
func TestWriteJSONEmptyRegistry(t *testing.T) {
	var out bytes.Buffer
	if err := NewRegistry(nil).WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`"counters": []`, `"gauges": []`, `"histograms": []`} {
		if !strings.Contains(s, want) {
			t.Errorf("empty export missing %q:\n%s", want, s)
		}
	}
}

func TestWriteFileFormats(t *testing.T) {
	r := populated()
	dir := t.TempDir()
	promPath := filepath.Join(dir, "m.prom")
	if err := r.WriteFile(promPath); err != nil {
		t.Fatal(err)
	}
	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(prom, []byte("# TYPE colsim_")) {
		t.Fatalf(".prom file not in exposition format: %q", prom[:40])
	}
	jsonPath := filepath.Join(dir, "m.json")
	if err := r.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("default-format file is not valid JSON")
	}
	if err := r.WriteFile(filepath.Join(dir, "no", "such", "m.json")); err == nil {
		t.Fatal("writing into a missing directory succeeded")
	}
}

var errWriterBroken = errors.New("writer broken")

type brokenWriter struct{}

func (brokenWriter) Write(p []byte) (int, error) { return 0, errWriterBroken }

func TestExportersPropagateWriteErrors(t *testing.T) {
	r := populated()
	if err := r.WritePrometheus(brokenWriter{}); !errors.Is(err, errWriterBroken) {
		t.Errorf("WritePrometheus error = %v", err)
	}
	if err := r.WriteJSON(brokenWriter{}); !errors.Is(err, errWriterBroken) {
		t.Errorf("WriteJSON error = %v", err)
	}
}

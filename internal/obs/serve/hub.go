package serve

import (
	"sync"

	"github.com/p2psim/collusion/internal/obs"
)

// Hub is the bounded fan-out span sink feeding /spans subscriptions: it
// implements obs.Sink, so a tracer (usually behind an obs.Tee with the
// span file sink) writes each encoded event chunk once and the hub copies
// it to every live subscriber's buffered channel.
//
// The contract that matters is that the hub can NEVER block the emitting
// path: a subscriber whose buffer is full loses the chunk and the
// serve.spans_dropped counter increments — slow HTTP readers cost
// themselves data, not the simulation throughput. With no subscribers a
// write is a mutex acquisition and nothing else.
type Hub struct {
	mu      sync.Mutex
	subs    []chan []byte
	closed  bool
	queue   int
	dropped *obs.Counter
}

// defaultQueue is the per-subscriber buffered-chunk count. Each chunk is
// one WriteTrace payload (typically a single JSONL line), so the default
// absorbs scheduling hiccups without holding runs of a large simulation
// in memory per slow reader.
const defaultQueue = 256

// NewHub returns a hub registering its dropped-chunk counter as
// serve.spans_dropped in reg (nil-safe: without a registry drops are
// simply uncounted). queue bounds each subscriber's buffer; values <= 0
// select the default of 256 chunks.
func NewHub(reg *obs.Registry, queue int) *Hub {
	if queue <= 0 {
		queue = defaultQueue
	}
	return &Hub{queue: queue, dropped: reg.Counter("serve.spans_dropped")}
}

// WriteTrace implements obs.Sink. The payload is copied once (the tracer
// reuses its scratch buffer) and offered to every subscriber without
// blocking; full subscribers drop the chunk and are counted.
func (h *Hub) WriteTrace(p []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || len(h.subs) == 0 {
		return nil
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	for _, ch := range h.subs {
		select {
		case ch <- cp:
		default:
			h.dropped.Add(1)
		}
	}
	return nil
}

// Close implements obs.Sink: every subscriber channel is closed (ending
// its /spans stream) and later writes are discarded. Idempotent, because
// both the owning tracer's Close and a shutting-down server may reach it.
func (h *Hub) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	for _, ch := range h.subs {
		close(ch)
	}
	h.subs = nil
	return nil
}

// Subscribe registers a new subscriber and returns its chunk channel plus
// the function that unsubscribes it (closing the channel). On a closed
// hub the returned channel is already closed.
func (h *Hub) Subscribe() (<-chan []byte, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan []byte, h.queue)
	if h.closed {
		close(ch)
		return ch, func() {}
	}
	h.subs = append(h.subs, ch)
	return ch, func() { h.unsubscribe(ch) }
}

// unsubscribe removes one subscriber; safe to call after Close (the hub
// has already forgotten and closed the channel).
func (h *Hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, s := range h.subs {
		if s == ch {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			close(ch)
			return
		}
	}
}

// Dropped returns how many chunks were dropped on full subscriber
// buffers (0 when the hub was built without a registry).
func (h *Hub) Dropped() int64 { return h.dropped.Value() }

// Subscribers returns the live subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

package serve

import (
	"fmt"
	"testing"

	"github.com/p2psim/collusion/internal/obs"
)

// TestHubFanOut pins the basic contract: every subscriber gets every
// chunk as its own copy, and unsubscribe closes the channel.
func TestHubFanOut(t *testing.T) {
	h := NewHub(nil, 8)
	a, cancelA := h.Subscribe()
	b, cancelB := h.Subscribe()
	defer cancelB()
	if h.Subscribers() != 2 {
		t.Fatalf("subscribers = %d, want 2", h.Subscribers())
	}

	payload := []byte("line\n")
	if err := h.WriteTrace(payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // the tracer reuses its scratch buffer; the hub must have copied
	for name, ch := range map[string]<-chan []byte{"a": a, "b": b} {
		got := <-ch
		if string(got) != "line\n" {
			t.Fatalf("subscriber %s got %q (copy not taken?)", name, got)
		}
	}

	cancelA()
	if _, ok := <-a; ok {
		t.Fatal("unsubscribed channel not closed")
	}
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers after unsubscribe = %d, want 1", h.Subscribers())
	}
}

// TestHubOverflowDropsWithCounter pins the never-block contract: a
// subscriber that stops reading loses chunks, the drop counter (both the
// hub's and the registry's) advances, and WriteTrace keeps returning
// immediately with no error.
func TestHubOverflowDropsWithCounter(t *testing.T) {
	reg := obs.NewRegistry(nil)
	h := NewHub(reg, 2)
	ch, cancel := h.Subscribe()
	defer cancel()

	for i := 0; i < 7; i++ {
		if err := h.WriteTrace([]byte(fmt.Sprintf("chunk %d\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Dropped(); got != 5 {
		t.Fatalf("dropped = %d, want 5 (queue 2, writes 7)", got)
	}
	if got := reg.Counter("serve.spans_dropped").Value(); got != 5 {
		t.Fatalf("registry drop counter = %d, want 5", got)
	}
	// The subscriber still holds the oldest chunks, in order.
	if got := string(<-ch); got != "chunk 0\n" {
		t.Fatalf("first buffered chunk %q", got)
	}
	if got := string(<-ch); got != "chunk 1\n" {
		t.Fatalf("second buffered chunk %q", got)
	}
}

// TestHubCloseIdempotent pins the lifecycle: Close ends every
// subscription, later writes are discarded, a second Close is a no-op,
// and a post-close Subscribe yields an already-closed channel.
func TestHubCloseIdempotent(t *testing.T) {
	h := NewHub(nil, 0)
	ch, _ := h.Subscribe()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ch; ok {
		t.Fatal("subscription survived Close")
	}
	if err := h.WriteTrace([]byte("late\n")); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	dead, cancel := h.Subscribe()
	defer cancel()
	if _, ok := <-dead; ok {
		t.Fatal("post-close Subscribe returned a live channel")
	}
}

// TestHubNoSubscribers pins that writing to an idle hub is a cheap no-op.
func TestHubNoSubscribers(t *testing.T) {
	h := NewHub(nil, 0)
	if err := h.WriteTrace([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if h.Dropped() != 0 {
		t.Fatalf("dropped %d chunks with no subscribers", h.Dropped())
	}
}

package serve

import (
	"io"
	"net/http"
	"sync"
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/simulator"
)

// TestConcurrentScrapeDuringRun is the telemetry race hammer: a windowed,
// sharded-ingest simulation records into the registry while scraper
// goroutines hammer WritePrometheus and Snapshot/Diff, plus one client
// scraping the HTTP endpoints — the exact concurrency a live -telemetry-addr
// run exposes. The CI race job runs this package under -race, which is
// where the test earns its keep; the assertions only guard basic sanity.
func TestConcurrentScrapeDuringRun(t *testing.T) {
	var meter metrics.CostMeter
	reg := obs.NewRegistry(&meter)
	s := startServer(t, Options{Registry: reg, Hub: NewHub(reg, 0)})

	cfg := simulator.DefaultConfig()
	cfg.Overlay.Nodes = 60
	cfg.SimCycles = 8
	cfg.QueryCycles = 10
	cfg.Pretrusted = nil
	cfg.Colluders = []int{0, 1, 2, 3, 4, 5, 6, 7}
	cfg.ColluderGoodProb = 0.2
	cfg.Detector = simulator.DetectorOptimized
	cfg.WindowCycles = 3
	cfg.IngestShards = 4
	cfg.Meter = &meter
	cfg.Obs = reg

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prev *obs.RegistrySnapshot
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				cur := reg.Snapshot()
				cur.Diff(prev)
				prev = cur
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/healthz"} {
				resp, err := http.Get("http://" + s.Addr() + path)
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}
	}()

	if _, err := simulator.Run(cfg); err != nil {
		t.Error(err)
	}
	close(done)
	wg.Wait()

	snap := reg.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Fatalf("run recorded nothing: %+v", snap)
	}
}

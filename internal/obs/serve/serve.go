// Package serve is the live telemetry plane: a small HTTP server exposing
// a running simulation's metrics registry, health watermark, span stream
// and pprof endpoints while the run executes — the bridge from the
// post-run artifact exports (-trace/-metrics files) to the ROADMAP's
// resident detection service.
//
// Like internal/obs/prof, this subtree is explicitly wall-clock-exempt
// (the colsimlint determinism analyzer carves it out): an HTTP server is
// operational machinery, not part of any seeded tree, and nothing here
// feeds back into simulation state. Telemetry flows strictly one way —
// the simulation records into the registry and the span tracer, the
// server reads. Endpoints:
//
//	/metrics        Prometheus text exposition of the registry (live scrape;
//	                byte-identical to Registry.WritePrometheus at the same state)
//	/metrics.json   the registry's JSON export
//	/healthz        JSON health document: cycle watermark, build info, uptime
//	/spans          chunked JSONL subscription to the live span timeline,
//	                fed by the bounded drop-with-counter Hub
//	/debug/pprof/   the standard pprof handlers
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/p2psim/collusion/internal/obs"
)

// Options configures Start.
type Options struct {
	// Addr is the listen address, e.g. ":9090" or "127.0.0.1:0" (use
	// Server.Addr to discover the bound port).
	Addr string
	// Registry backs /metrics and /metrics.json. Required.
	Registry *obs.Registry
	// Hub, if non-nil, feeds /spans; without one the endpoint reports 404.
	// The hub's lifecycle belongs to the span tracer's sink chain — the
	// server never closes it.
	Hub *Hub
	// Version is a free-form build label reported by /healthz alongside
	// the Go runtime version.
	Version string
	// API, if non-nil, is mounted at /v1/ — the detection service's
	// request plane (internal/service/httpapi) rides on the same listener
	// as the telemetry endpoints, so one -telemetry-addr exposes both.
	API http.Handler
}

// Server is one running telemetry server.
type Server struct {
	reg     *obs.Registry
	hub     *Hub
	version string
	start   time.Time
	cycle   atomic.Int64
	ln      net.Listener
	srv     *http.Server
}

// Start listens on opts.Addr and serves in a background goroutine.
func Start(opts Options) (*Server, error) {
	if opts.Registry == nil {
		return nil, fmt.Errorf("serve: Options.Registry is required")
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		reg:     opts.Registry,
		hub:     opts.Hub,
		version: opts.Version,
		start:   time.Now(),
		ln:      ln,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/metrics.json", s.metricsJSON)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/spans", s.spans)
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	if opts.API != nil {
		mux.Handle("/v1/", opts.API)
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve returns ErrServerClosed on Shutdown/Close; any earlier
		// error means the listener died, which the next scrape will notice.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (resolving ":0" to the actual
// port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetCycle advances the /healthz cycle watermark — the last completed
// simulation cycle, so a scraper can correlate a /metrics reading with
// run progress.
func (s *Server) SetCycle(cycle int) { s.cycle.Store(int64(cycle)) }

// Linger blocks for d, keeping the server scrapeable after the run whose
// telemetry it exposes has completed; the CLIs call it behind their
// -telemetry-linger flags so batch runs stay scrapeable long enough for a
// final collection pass. A non-positive d returns immediately.
func (s *Server) Linger(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Close shuts the server down, waiting briefly for in-flight requests
// before closing remaining connections (long-lived /spans streams end
// when their hub closes or their connection drops).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// metrics serves the Prometheus text exposition — the same bytes
// Registry.WritePrometheus writes to a -metrics file at equal registry
// state, which the CI telemetry smoke compares byte-for-byte.
func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// metricsJSON serves the registry's JSON export.
func (s *Server) metricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.reg.WriteJSON(w)
}

// healthz serves the health document: status, cycle watermark, build
// info and uptime.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = fmt.Fprintf(w, "{\"status\":\"ok\",\"cycle\":%d,\"go\":%q,\"version\":%q,\"uptime_s\":%d}\n",
		s.cycle.Load(), runtime.Version(), s.version, int64(time.Since(s.start).Seconds()))
}

// spans streams the live span timeline as chunked JSONL until the client
// disconnects or the hub closes. Each chunk is one sink write; a client
// that cannot keep up silently loses chunks (see Hub) rather than ever
// stalling the emitting simulation.
func (s *Server) spans(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		http.Error(w, "span streaming not configured (no span tracer attached)", http.StatusNotFound)
		return
	}
	ch, cancel := s.hub.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case chunk, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}
}

package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
)

// startServer boots a server on a loopback ephemeral port and tears it
// down with the test.
func startServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	s, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// get fetches a path from the server and returns status and body.
func get(t *testing.T, s *Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestMetricsEndpointMatchesFileExport pins the CI smoke contract: at
// equal registry state, a /metrics scrape returns byte-for-byte what
// WritePrometheus exports, and /metrics.json matches WriteJSON.
func TestMetricsEndpointMatchesFileExport(t *testing.T) {
	var meter metrics.CostMeter
	reg := obs.NewRegistry(&meter)
	meter.Add(metrics.CostPairCheck, 42)
	reg.Counter("serve.test_counter").Add(3)
	reg.Gauge("serve.test_gauge").Set(1.5)
	reg.Histogram("serve.test_hist").Observe(7)
	s := startServer(t, Options{Registry: reg})

	status, body := get(t, s, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	var want bytes.Buffer
	if err := reg.WritePrometheus(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("/metrics differs from WritePrometheus:\n%s\nvs\n%s", body, want.Bytes())
	}

	status, body = get(t, s, "/metrics.json")
	if status != http.StatusOK {
		t.Fatalf("/metrics.json status %d", status)
	}
	var wantJSON bytes.Buffer
	if err := reg.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, wantJSON.Bytes()) {
		t.Fatalf("/metrics.json differs from WriteJSON")
	}
}

// TestHealthzWatermark pins the health document: ok status, the cycle
// watermark set through SetCycle, and build info.
func TestHealthzWatermark(t *testing.T) {
	reg := obs.NewRegistry(nil)
	s := startServer(t, Options{Registry: reg, Version: "test-build"})
	s.SetCycle(17)

	status, body := get(t, s, "/healthz")
	if status != http.StatusOK {
		t.Fatalf("/healthz status %d", status)
	}
	var doc struct {
		Status  string `json:"status"`
		Cycle   int    `json:"cycle"`
		Go      string `json:"go"`
		Version string `json:"version"`
		UptimeS int    `json:"uptime_s"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if doc.Status != "ok" || doc.Cycle != 17 || doc.Version != "test-build" {
		t.Fatalf("healthz document: %+v", doc)
	}
	if !strings.HasPrefix(doc.Go, "go") {
		t.Fatalf("healthz go version %q", doc.Go)
	}
}

// TestPprofIndexServed pins that the standard pprof handlers are mounted.
func TestPprofIndexServed(t *testing.T) {
	s := startServer(t, Options{Registry: obs.NewRegistry(nil)})
	status, body := get(t, s, "/debug/pprof/")
	if status != http.StatusOK || !bytes.Contains(body, []byte("profile")) {
		t.Fatalf("/debug/pprof/ status %d body %q", status, body[:min(len(body), 80)])
	}
}

// TestSpansWithoutHub404s pins the unconfigured-endpoint contract.
func TestSpansWithoutHub404s(t *testing.T) {
	s := startServer(t, Options{Registry: obs.NewRegistry(nil)})
	if status, _ := get(t, s, "/spans"); status != http.StatusNotFound {
		t.Fatalf("/spans without hub returned %d, want 404", status)
	}
}

// TestStartRequiresRegistry pins the options validation.
func TestStartRequiresRegistry(t *testing.T) {
	if _, err := Start(Options{Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("Start without a registry succeeded")
	}
}

// TestSpansStreamsLiveTimeline pins the streaming path end to end: a
// span tracer emitting through the hub reaches an HTTP /spans client as
// JSONL lines, and the stream ends when the hub closes.
func TestSpansStreamsLiveTimeline(t *testing.T) {
	reg := obs.NewRegistry(nil)
	hub := NewHub(reg, 0)
	s := startServer(t, Options{Registry: reg, Hub: hub})

	resp, err := http.Get("http://" + s.Addr() + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/spans status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("/spans content type %q", ct)
	}
	// The HTTP handler subscribes asynchronously; emit only once it is
	// registered so the test never races the subscription.
	deadline := time.Now().Add(5 * time.Second)
	for hub.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("/spans client never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	sp := obs.NewSpanTracer(hub, nil)
	sp.SetCycle(1)
	sp.Begin("cycle")
	sp.End("cycle")

	sc := bufio.NewScanner(resp.Body)
	lineCh := make(chan string)
	done := make(chan error, 1)
	go func() {
		for sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
		done <- sc.Err()
	}()
	var lines []string
	for len(lines) < 2 {
		select {
		case line := <-lineCh:
			lines = append(lines, line)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out streaming; got %q", lines)
		}
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("/spans stream did not end after hub close")
	}
	if !strings.Contains(lines[0], `"type":"span_begin"`) ||
		!strings.Contains(lines[1], `"type":"span_end"`) {
		t.Fatalf("streamed lines: %q", lines)
	}
}

// TestServerCloseUnblocksIdleSpansClient pins shutdown: closing the
// server terminates an idle /spans stream rather than hanging on it.
func TestServerCloseUnblocksIdleSpansClient(t *testing.T) {
	reg := obs.NewRegistry(nil)
	hub := NewHub(reg, 0)
	s, err := Start(Options{Addr: "127.0.0.1:0", Registry: reg, Hub: hub})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on an idle /spans stream")
	}
}

// TestLingerNonPositiveReturnsImmediately pins the -telemetry-linger
// default: zero means no post-run wait.
func TestLingerNonPositiveReturnsImmediately(t *testing.T) {
	s := startServer(t, Options{Registry: obs.NewRegistry(nil)})
	start := time.Now()
	s.Linger(0)
	s.Linger(-time.Second)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("non-positive linger blocked for %v", elapsed)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package obs

import "math"

// CounterSample is one named counter value (or, in a diff, its delta).
type CounterSample struct {
	Name  string
	Value int64
}

// GaugeSample is one named gauge value.
type GaugeSample struct {
	Name  string
	Value float64
}

// HistogramSample is one named histogram: total observation count, value
// sum, and the non-empty buckets ascending by upper bound. In a diff the
// three carry per-interval deltas instead of totals.
type HistogramSample struct {
	Name    string
	Count   int64
	Sum     int64
	Buckets []BucketCount
}

// RegistrySnapshot is a point-in-time copy of every metric the registry
// exports — cost-meter counters merged with registry counters, gauges,
// and histograms — each section sorted by name, so two snapshots of equal
// state are deeply equal and Diff can merge-walk them. Snapshots are
// values: taking one never blocks recorders beyond the registry's brief
// name-map lock, which is what lets a telemetry server snapshot a live
// run concurrently with sharded ingest (pinned under -race).
type RegistrySnapshot struct {
	Counters   []CounterSample
	Gauges     []GaugeSample
	Histograms []HistogramSample
}

// Snapshot captures the registry's current state. Nil-safe: a nil
// registry yields an empty snapshot. Individual readings are atomic;
// across metrics the snapshot is not a transaction, so a concurrent
// recorder may land between two reads — fine for telemetry, where every
// counter is monotone and the next interval absorbs the skew.
func (r *Registry) Snapshot() *RegistrySnapshot {
	snap := &RegistrySnapshot{}
	if r == nil {
		return snap
	}
	own, gauges, hists := r.snapshot()
	counters := r.counterValues(own)
	for _, name := range sortedKeys(counters) {
		snap.Counters = append(snap.Counters, CounterSample{Name: name, Value: counters[name]})
	}
	for _, name := range sortedKeys(gauges) {
		snap.Gauges = append(snap.Gauges, GaugeSample{Name: name, Value: gauges[name].Value()})
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		snap.Histograms = append(snap.Histograms, HistogramSample{
			Name: name, Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets(),
		})
	}
	return snap
}

// Diff returns what changed since prev: counter deltas, new gauge values,
// and histogram count/sum/bucket deltas — only for metrics that actually
// moved, each section still sorted by name. A nil prev means "first
// interval": everything non-zero appears as its full value. Metrics are
// never unregistered, so names present in prev but missing from s cannot
// occur on a live registry and are ignored.
func (s *RegistrySnapshot) Diff(prev *RegistrySnapshot) *RegistrySnapshot {
	if prev == nil {
		prev = &RegistrySnapshot{}
	}
	d := &RegistrySnapshot{}
	pi := 0
	for _, c := range s.Counters {
		var before int64
		for pi < len(prev.Counters) && prev.Counters[pi].Name < c.Name {
			pi++
		}
		if pi < len(prev.Counters) && prev.Counters[pi].Name == c.Name {
			before = prev.Counters[pi].Value
		}
		if delta := c.Value - before; delta != 0 {
			d.Counters = append(d.Counters, CounterSample{Name: c.Name, Value: delta})
		}
	}
	pi = 0
	for _, g := range s.Gauges {
		before, had := 0.0, false
		for pi < len(prev.Gauges) && prev.Gauges[pi].Name < g.Name {
			pi++
		}
		if pi < len(prev.Gauges) && prev.Gauges[pi].Name == g.Name {
			before, had = prev.Gauges[pi].Value, true
		}
		// Bit-level comparison: gauges are set, not accumulated, so "changed"
		// means the stored bits changed (this also keeps NaN updates visible).
		if !had || math.Float64bits(before) != math.Float64bits(g.Value) {
			d.Gauges = append(d.Gauges, g)
		}
	}
	pi = 0
	for _, h := range s.Histograms {
		var before HistogramSample
		for pi < len(prev.Histograms) && prev.Histograms[pi].Name < h.Name {
			pi++
		}
		if pi < len(prev.Histograms) && prev.Histograms[pi].Name == h.Name {
			before = prev.Histograms[pi]
		}
		if h.Count == before.Count && h.Sum == before.Sum {
			continue
		}
		d.Histograms = append(d.Histograms, HistogramSample{
			Name:    h.Name,
			Count:   h.Count - before.Count,
			Sum:     h.Sum - before.Sum,
			Buckets: diffBuckets(h.Buckets, before.Buckets),
		})
	}
	return d
}

// diffBuckets subtracts two non-empty-bucket lists (both ascending by
// Upper), keeping buckets whose count changed.
func diffBuckets(cur, prev []BucketCount) []BucketCount {
	var out []BucketCount
	pi := 0
	for _, b := range cur {
		var before int64
		for pi < len(prev) && prev[pi].Upper < b.Upper {
			pi++
		}
		if pi < len(prev) && prev[pi].Upper == b.Upper {
			before = prev[pi].Count
		}
		if delta := b.Count - before; delta != 0 {
			out = append(out, BucketCount{Upper: b.Upper, Count: delta})
		}
	}
	return out
}

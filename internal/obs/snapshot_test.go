package obs

import (
	"reflect"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
)

// TestSnapshotNilRegistry pins the nil-safety edge: a nil registry yields
// an empty (but usable) snapshot, and diffing two of them yields nothing.
func TestSnapshotNilRegistry(t *testing.T) {
	var r *Registry
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry produced a non-empty snapshot: %+v", snap)
	}
	d := snap.Diff(r.Snapshot())
	if len(d.Counters)+len(d.Gauges)+len(d.Histograms) != 0 {
		t.Fatalf("diff of empty snapshots is non-empty: %+v", d)
	}
}

// TestSnapshotMergesMeterAndSorts pins that a snapshot carries cost-meter
// charges merged with registry counters, every section sorted by name.
func TestSnapshotMergesMeterAndSorts(t *testing.T) {
	var meter metrics.CostMeter
	r := NewRegistry(&meter)
	meter.Add(metrics.CostPairCheck, 5)
	r.Counter("zz.last").Add(1)
	r.Counter("aa.first").Add(2)
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Observe(3)

	snap := r.Snapshot()
	var names []string
	for _, c := range snap.Counters {
		names = append(names, c.Name)
	}
	if !sortedStrings(names) {
		t.Fatalf("counters not sorted: %v", names)
	}
	want := map[string]int64{"aa.first": 2, "zz.last": 1, metrics.CostPairCheck: 5}
	for name, v := range want {
		found := false
		for _, c := range snap.Counters {
			if c.Name == name {
				found = c.Value == v
			}
		}
		if !found {
			t.Errorf("snapshot missing counter %s=%d: %+v", name, v, snap.Counters)
		}
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 1.5 {
		t.Fatalf("gauges: %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 || snap.Histograms[0].Sum != 3 {
		t.Fatalf("histograms: %+v", snap.Histograms)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// TestDiffFirstInterval pins that diffing against nil reports every
// non-zero metric at its full value — the first progress line is the
// state so far, not an empty delta.
func TestDiffFirstInterval(t *testing.T) {
	r := NewRegistry(nil)
	r.Counter("c").Add(7)
	r.Gauge("g").Set(2)
	r.Histogram("h").Observe(4)
	d := r.Snapshot().Diff(nil)
	if len(d.Counters) != 1 || d.Counters[0].Value != 7 {
		t.Fatalf("counters: %+v", d.Counters)
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Value != 2 {
		t.Fatalf("gauges: %+v", d.Gauges)
	}
	if len(d.Histograms) != 1 || d.Histograms[0].Count != 1 || d.Histograms[0].Sum != 4 {
		t.Fatalf("histograms: %+v", d.Histograms)
	}
}

// TestDiffUnchangedMetricsAbsent pins the "only what moved" contract: a
// counter that did not move between snapshots does not appear in the
// diff, and an entirely idle interval diffs to nothing.
func TestDiffUnchangedMetricsAbsent(t *testing.T) {
	r := NewRegistry(nil)
	still := r.Counter("still")
	moving := r.Counter("moving")
	still.Add(3)
	moving.Add(1)
	prev := r.Snapshot()
	moving.Add(4)
	d := r.Snapshot().Diff(prev)
	if len(d.Counters) != 1 || d.Counters[0].Name != "moving" || d.Counters[0].Value != 4 {
		t.Fatalf("diff counters: %+v", d.Counters)
	}
	idle := r.Snapshot().Diff(r.Snapshot())
	if len(idle.Counters)+len(idle.Gauges)+len(idle.Histograms) != 0 {
		t.Fatalf("idle interval diffed non-empty: %+v", idle)
	}
}

// TestDiffGaugeBitComparison pins that gauges diff on stored bits: a Set
// to the same value is no change, any bit change (including to NaN)
// reports the new value.
func TestDiffGaugeBitComparison(t *testing.T) {
	r := NewRegistry(nil)
	g := r.Gauge("g")
	g.Set(1.25)
	prev := r.Snapshot()
	g.Set(1.25)
	if d := r.Snapshot().Diff(prev); len(d.Gauges) != 0 {
		t.Fatalf("re-set to equal value reported: %+v", d.Gauges)
	}
	g.Set(2.5)
	if d := r.Snapshot().Diff(prev); len(d.Gauges) != 1 || d.Gauges[0].Value != 2.5 {
		t.Fatalf("changed gauge not reported: %+v", d.Gauges)
	}
}

// TestDiffHistogramBucketDeltas pins the histogram section: count and
// sum deltas plus per-bucket count deltas, with untouched buckets absent.
func TestDiffHistogramBucketDeltas(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("h")
	h.Observe(1) // bucket upper 1
	h.Observe(9) // a higher bucket
	prev := r.Snapshot()
	h.Observe(9)
	h.Observe(9)
	d := r.Snapshot().Diff(prev)
	if len(d.Histograms) != 1 {
		t.Fatalf("histograms: %+v", d.Histograms)
	}
	hd := d.Histograms[0]
	if hd.Count != 2 || hd.Sum != 18 {
		t.Fatalf("count/sum deltas: %+v", hd)
	}
	if len(hd.Buckets) != 1 || hd.Buckets[0].Count != 2 {
		t.Fatalf("bucket deltas should carry only the moved bucket: %+v", hd.Buckets)
	}
	if hd.Buckets[0].Upper < 9 {
		t.Fatalf("moved bucket upper %d cannot hold 9", hd.Buckets[0].Upper)
	}
}

// TestSnapshotOfUnchangedRegistryDeeplyEqual pins the merge-walk
// precondition Diff relies on: two snapshots of the same state are
// deeply equal.
func TestSnapshotOfUnchangedRegistryDeeplyEqual(t *testing.T) {
	var meter metrics.CostMeter
	r := NewRegistry(&meter)
	meter.Add(metrics.CostMatrixScan, 2)
	r.Counter("c").Add(1)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(5)
	if a, b := r.Snapshot(), r.Snapshot(); !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots of identical state differ:\n%+v\n%+v", a, b)
	}
}

// TestProgressEmitsPerCycleDeltas pins the reporter end to end: one
// canonical line per cycle, flat sorted attributes, deltas not totals,
// and an empty line for an idle cycle.
func TestProgressEmitsPerCycleDeltas(t *testing.T) {
	var sink BufferSink
	r := NewRegistry(nil)
	p := NewProgress(r, &sink)
	if !p.Enabled() {
		t.Fatal("reporter with registry and sink reports disabled")
	}

	r.Counter("c").Add(2)
	r.Gauge("g").Set(0.5)
	p.Cycle(1)
	r.Counter("c").Add(3)
	p.Cycle(2)
	p.Cycle(3) // idle
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	want := []string{
		`{"cycle":1,"type":"progress","c":2,"g":0.5}`,
		`{"cycle":2,"type":"progress","c":3}`,
		`{"cycle":3,"type":"progress"}`,
	}
	got := strings.Split(strings.TrimSuffix(string(sink.Bytes()), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), len(want), sink.Bytes())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestProgressDisabledVariants pins nil-safety: nil reporter, nil
// registry, and nil sink are all valid disabled reporters.
func TestProgressDisabledVariants(t *testing.T) {
	var sink BufferSink
	for _, p := range []*Progress{nil, NewProgress(nil, &sink), NewProgress(NewRegistry(nil), nil)} {
		if p.Enabled() {
			t.Fatal("disabled reporter reports enabled")
		}
		p.Cycle(1)
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.Bytes()) != 0 {
		t.Fatalf("disabled reporter emitted: %s", sink.Bytes())
	}
}

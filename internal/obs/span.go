package obs

import "github.com/p2psim/collusion/internal/metrics"

// SpanObserver is notified when spans open and close. The one
// implementation that matters lives in internal/obs/prof: a wall-clock
// SpanTimer recording span durations into registry histograms. Keeping
// the clock behind this interface keeps the span timeline itself purely
// cycle-stamped — wall time flows one way, into histograms, and never
// into the deterministic JSONL stream.
type SpanObserver interface {
	SpanBegin(name string)
	SpanEnd(name string)
}

// SpanTracer emits a hierarchical span timeline — run → cycle → phase
// (ingest, window.roll, eigentrust, detect, manager.exchange) — through
// the canonical JSONL encoder. Every event is deterministic: span IDs are
// sequential, parents come from an explicit stack, and the only payload a
// span carries beyond its identity is cycle-time data (cost-meter deltas,
// dirty-row counts, memo hit/miss deltas), so a seeded run produces a
// byte-identical timeline on every replay, for every worker count and
// every ingest shard count.
//
// A nil SpanTracer (or one with a nil sink) is a valid disabled tracer:
// Enabled reports false without allocating, and every method is a no-op,
// so instrumented hot paths guard with Enabled and pay nothing when spans
// are off (pinned by TestTelemetryOffAddsNoAllocs).
//
// Unlike Tracer, a SpanTracer is stateful (the open-span stack) and is
// NOT safe for concurrent use: it describes one sequential run loop.
// RunAveragedParallel forces runs sequential when a shared span tracer is
// attached, exactly as it does for OnCycle observers.
type SpanTracer struct {
	tr    *Tracer
	meter *metrics.CostMeter

	// Observer, if non-nil, is notified at every Begin/End. Begin notifies
	// after the span_begin event is encoded and End notifies before
	// span_end encoding starts, so a wall-clock observer times the span
	// body without the encoder.
	Observer SpanObserver

	nextID int64
	stack  []spanFrame
}

// spanFrame is one open span: its ID and name, plus the meter total
// captured at Begin so End can emit the span's exact operation-cost delta.
type spanFrame struct {
	id   int64
	name string
	cost int64
}

// NewSpanTracer returns a span tracer writing to sink. A nil sink yields
// a disabled tracer. The meter, if non-nil, prices every span: span_end
// carries the meter-total delta accrued between Begin and End — a
// deterministic, worker-count-invariant cost the operation-cost
// equivalence tests pin, where wall time would differ on every run.
func NewSpanTracer(sink Sink, meter *metrics.CostMeter) *SpanTracer {
	return &SpanTracer{tr: NewTracer(sink), meter: meter}
}

// Enabled reports whether spans will be recorded. Nil-safe and
// allocation-free, so hot paths can guard bracketing work with it.
func (s *SpanTracer) Enabled() bool { return s != nil && s.tr.Enabled() }

// SetCycle stamps subsequent span events with the given simulation cycle.
func (s *SpanTracer) SetCycle(cycle int) {
	if !s.Enabled() {
		return
	}
	s.tr.SetCycle(cycle)
}

// Begin opens a span nested under the innermost open span and emits its
// span_begin event: the span's sequential ID, its parent's ID (0 at the
// root), and its name, followed by any extra attributes in argument order.
func (s *SpanTracer) Begin(name string, attrs ...Attr) {
	if !s.Enabled() {
		return
	}
	s.nextID++
	parent := int64(0)
	if len(s.stack) > 0 {
		parent = s.stack[len(s.stack)-1].id
	}
	s.stack = append(s.stack, spanFrame{id: s.nextID, name: name, cost: s.total()})
	head := [3]Attr{I64("id", s.nextID), I64("parent", parent), Str("name", name)}
	s.tr.Emit("span_begin", append(head[:], attrs...)...)
	if s.Observer != nil {
		s.Observer.SpanBegin(name)
	}
}

// End closes the innermost open span, which must carry the given name —
// a mismatch is a bracketing bug in the instrumentation and panics. The
// span_end event carries the span ID, its name, the cost-meter delta
// accrued since Begin, and any extra attributes in argument order.
func (s *SpanTracer) End(name string, attrs ...Attr) {
	if !s.Enabled() {
		return
	}
	if len(s.stack) == 0 {
		panic("obs: SpanTracer.End(" + name + ") with no open span")
	}
	top := s.stack[len(s.stack)-1]
	if top.name != name {
		panic("obs: SpanTracer.End(" + name + ") does not match open span " + top.name)
	}
	s.stack = s.stack[:len(s.stack)-1]
	if s.Observer != nil {
		s.Observer.SpanEnd(name)
	}
	head := [3]Attr{I64("id", top.id), Str("name", name), I64("cost", s.total()-top.cost)}
	s.tr.Emit("span_end", append(head[:], attrs...)...)
}

// Depth returns the number of currently open spans.
func (s *SpanTracer) Depth() int {
	if s == nil {
		return 0
	}
	return len(s.stack)
}

// Err returns the first sink error encountered, if any.
func (s *SpanTracer) Err() error {
	if s == nil {
		return nil
	}
	return s.tr.Err()
}

// Close closes the sink and surfaces any latched emit error.
func (s *SpanTracer) Close() error {
	if s == nil {
		return nil
	}
	return s.tr.Close()
}

// total reads the meter total priced into span cost deltas (0 without a
// meter). Meter totals are worker-count- and shard-count-invariant (the
// parallel-equivalence tests pin exact charge equality), so the deltas
// are too.
func (s *SpanTracer) total() int64 {
	if s.meter == nil {
		return 0
	}
	return s.meter.Total()
}

// TeeSink fans every trace write out to several sinks — typically a file
// sink plus the telemetry hub streaming /spans subscriptions. Writes go
// to every sink even after one fails; the first error is returned (and
// latched by the owning tracer as usual).
type TeeSink struct {
	sinks []Sink
}

// Tee combines sinks into one. With a single sink it is returned as-is.
func Tee(sinks ...Sink) Sink {
	if len(sinks) == 1 {
		return sinks[0]
	}
	return &TeeSink{sinks: sinks}
}

// WriteTrace implements Sink.
func (t *TeeSink) WriteTrace(p []byte) error {
	var first error
	for _, s := range t.sinks {
		if err := s.WriteTrace(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close implements Sink, closing every sink and returning the first error.
func (t *TeeSink) Close() error {
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
)

// TestSpanTracerNesting pins the timeline shape: sequential IDs, explicit
// parent links from the open-span stack, and cost deltas priced off the
// meter total between Begin and End.
func TestSpanTracerNesting(t *testing.T) {
	var sink BufferSink
	var meter metrics.CostMeter
	sp := NewSpanTracer(&sink, &meter)
	if !sp.Enabled() {
		t.Fatal("tracer with a sink reports disabled")
	}

	sp.Begin("run", Int("nodes", 60))
	sp.SetCycle(1)
	sp.Begin("cycle")
	sp.Begin("detect")
	meter.Add(metrics.CostPairCheck, 7)
	sp.End("detect", Int("pairs", 2))
	meter.Add(metrics.CostEigenMulAdd, 3)
	sp.End("cycle")
	sp.End("run")
	if sp.Depth() != 0 {
		t.Fatalf("depth %d after balanced brackets", sp.Depth())
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	want := []string{
		`{"cycle":0,"type":"span_begin","id":1,"parent":0,"name":"run","nodes":60}`,
		`{"cycle":1,"type":"span_begin","id":2,"parent":1,"name":"cycle"}`,
		`{"cycle":1,"type":"span_begin","id":3,"parent":2,"name":"detect"}`,
		`{"cycle":1,"type":"span_end","id":3,"name":"detect","cost":7,"pairs":2}`,
		`{"cycle":1,"type":"span_end","id":2,"name":"cycle","cost":10}`,
		`{"cycle":1,"type":"span_end","id":1,"name":"run","cost":10}`,
	}
	got := strings.Split(strings.TrimSuffix(string(sink.Bytes()), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(got), len(want), sink.Bytes())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestSpanTracerWithoutMeter pins that an unmetered tracer prices every
// span at zero instead of crashing.
func TestSpanTracerWithoutMeter(t *testing.T) {
	var sink BufferSink
	sp := NewSpanTracer(&sink, nil)
	sp.Begin("run")
	sp.End("run")
	if !bytes.Contains(sink.Bytes(), []byte(`"cost":0`)) {
		t.Fatalf("unmetered span_end missing zero cost: %s", sink.Bytes())
	}
}

// TestSpanEndMismatchPanics pins that unbalanced instrumentation is a
// loud bug, not a silently corrupted timeline.
func TestSpanEndMismatchPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("End with no open span", func() {
		sp := NewSpanTracer(&BufferSink{}, nil)
		sp.End("run")
	})
	mustPanic("End with mismatched name", func() {
		sp := NewSpanTracer(&BufferSink{}, nil)
		sp.Begin("run")
		sp.End("cycle")
	})
}

// TestDisabledSpanTracerNoOps pins the nil-safety contract instrumented
// hot paths rely on: a nil tracer, and a tracer with a nil sink, accept
// every call without emitting or panicking.
func TestDisabledSpanTracerNoOps(t *testing.T) {
	for _, sp := range []*SpanTracer{nil, NewSpanTracer(nil, nil)} {
		if sp.Enabled() {
			t.Fatal("disabled tracer reports enabled")
		}
		sp.SetCycle(3)
		sp.Begin("run")
		sp.End("cycle") // mismatch would panic on an enabled tracer
		if sp.Depth() != 0 {
			t.Fatalf("disabled tracer tracked depth %d", sp.Depth())
		}
		if err := sp.Err(); err != nil {
			t.Fatal(err)
		}
		if err := sp.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// spanRecorder records observer notifications in order.
type spanRecorder struct{ calls []string }

func (r *spanRecorder) SpanBegin(name string) { r.calls = append(r.calls, "begin:"+name) }
func (r *spanRecorder) SpanEnd(name string)   { r.calls = append(r.calls, "end:"+name) }

// TestSpanObserverNotified pins the observer hook the wall-clock
// prof.SpanTimer attaches through.
func TestSpanObserverNotified(t *testing.T) {
	sp := NewSpanTracer(&BufferSink{}, nil)
	rec := &spanRecorder{}
	sp.Observer = rec
	sp.Begin("run")
	sp.Begin("cycle")
	sp.End("cycle")
	sp.End("run")
	want := "begin:run,begin:cycle,end:cycle,end:run"
	if got := strings.Join(rec.calls, ","); got != want {
		t.Fatalf("observer calls %q, want %q", got, want)
	}
}

// TestTeeSink pins the fan-out contract: every sink sees every write even
// after one fails, the first error wins, and a single sink is passed
// through without wrapping.
func TestTeeSink(t *testing.T) {
	var a, b BufferSink
	tee := Tee(&a, &b)
	if err := tee.WriteTrace([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), []byte("x\n")) || !bytes.Equal(b.Bytes(), []byte("x\n")) {
		t.Fatalf("tee did not fan out: %q / %q", a.Bytes(), b.Bytes())
	}
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}

	var after BufferSink
	failing := Tee(&failSink{failAfter: 0}, &after)
	if err := failing.WriteTrace([]byte("y\n")); !errors.Is(err, errSinkBroken) {
		t.Fatalf("tee error %v, want %v", err, errSinkBroken)
	}
	if !bytes.Equal(after.Bytes(), []byte("y\n")) {
		t.Fatal("sink after the failing one missed the write")
	}

	var only BufferSink
	if got := Tee(&only); got != Sink(&only) {
		t.Fatal("single-sink Tee should return the sink unchanged")
	}
}

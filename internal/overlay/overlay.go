// Package overlay builds the unstructured, interest-clustered P2P network
// of the paper's evaluation (Section V, "Network model"): a fixed set of
// interest categories, each node holding a few randomly chosen interests,
// and all nodes sharing an interest connected into one cluster. A node
// with m interests belongs to m clusters; queries for a file in an
// interest go to all cluster neighbors.
package overlay

import (
	"fmt"
	"sort"

	"github.com/p2psim/collusion/internal/rng"
)

// Config parameterizes overlay construction.
type Config struct {
	// Seed makes construction reproducible.
	Seed uint64
	// Nodes is the network size (paper: 200).
	Nodes int
	// InterestCategories is the number of interest clusters (paper: 20).
	InterestCategories int
	// InterestsPerNode bounds how many interests each node draws
	// (paper: uniform in [1, 5]).
	InterestsPerNode [2]int
	// Capacity is the number of requests a node can serve simultaneously
	// per query cycle (paper: 50).
	Capacity int
}

// DefaultConfig returns the paper's evaluation parameters.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Nodes:              200,
		InterestCategories: 20,
		InterestsPerNode:   [2]int{1, 5},
		Capacity:           50,
	}
}

// Validate reports the first invalid parameter, if any.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("overlay: Nodes = %d, want >= 2", c.Nodes)
	}
	if c.InterestCategories < 1 {
		return fmt.Errorf("overlay: InterestCategories = %d, want >= 1", c.InterestCategories)
	}
	lo, hi := c.InterestsPerNode[0], c.InterestsPerNode[1]
	if lo < 1 || hi < lo {
		return fmt.Errorf("overlay: InterestsPerNode = [%d,%d], want 1 <= lo <= hi", lo, hi)
	}
	if hi > c.InterestCategories {
		return fmt.Errorf("overlay: up to %d interests per node but only %d categories",
			hi, c.InterestCategories)
	}
	if c.Capacity < 1 {
		return fmt.Errorf("overlay: Capacity = %d, want >= 1", c.Capacity)
	}
	return nil
}

// Network is an immutable interest-clustered overlay.
type Network struct {
	cfg       Config
	interests [][]int // per node, sorted category indices
	clusters  [][]int // per category, sorted member node indices
}

// New builds the overlay.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed).Child("overlay")
	n := &Network{
		cfg:       cfg,
		interests: make([][]int, cfg.Nodes),
		clusters:  make([][]int, cfg.InterestCategories),
	}
	for node := 0; node < cfg.Nodes; node++ {
		k := r.IntRange(cfg.InterestsPerNode[0], cfg.InterestsPerNode[1])
		picks := r.Sample(cfg.InterestCategories, k)
		sort.Ints(picks)
		n.interests[node] = picks
		for _, cat := range picks {
			n.clusters[cat] = append(n.clusters[cat], node)
		}
	}
	return n, nil
}

// Config returns the configuration the overlay was built with.
func (n *Network) Config() Config { return n.cfg }

// Size returns the number of nodes.
func (n *Network) Size() int { return n.cfg.Nodes }

// Interests returns the sorted interest categories of a node.
func (n *Network) Interests(node int) []int {
	return append([]int(nil), n.interests[node]...)
}

// HasInterest reports whether the node belongs to the category's cluster.
func (n *Network) HasInterest(node, category int) bool {
	for _, c := range n.interests[node] {
		if c == category {
			return true
		}
	}
	return false
}

// Cluster returns the sorted members of a category's cluster.
func (n *Network) Cluster(category int) []int {
	return append([]int(nil), n.clusters[category]...)
}

// Neighbors returns the node's cluster peers for one category: every other
// member of the category's cluster. It returns nil if the node is not in
// the cluster.
func (n *Network) Neighbors(node, category int) []int {
	if !n.HasInterest(node, category) {
		return nil
	}
	members := n.clusters[category]
	out := make([]int, 0, len(members)-1)
	for _, m := range members {
		if m != node {
			out = append(out, m)
		}
	}
	return out
}

// SharesInterest reports whether two nodes belong to at least one common
// cluster.
func (n *Network) SharesInterest(a, b int) bool {
	ia, ib := n.interests[a], n.interests[b]
	i, j := 0, 0
	for i < len(ia) && j < len(ib) {
		switch {
		case ia[i] == ib[j]:
			return true
		case ia[i] < ib[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// RandomInterest returns one of the node's interests chosen uniformly.
func (n *Network) RandomInterest(node int, r *rng.Rand) int {
	return rng.Pick(r, n.interests[node])
}

package overlay

import (
	"testing"
	"testing/quick"

	"github.com/p2psim/collusion/internal/rng"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.InterestCategories = 0 },
		func(c *Config) { c.InterestsPerNode = [2]int{0, 3} },
		func(c *Config) { c.InterestsPerNode = [2]int{4, 2} },
		func(c *Config) { c.InterestsPerNode = [2]int{1, 25} },
		func(c *Config) { c.Capacity = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInterestsWithinBounds(t *testing.T) {
	net, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := net.Config()
	for node := 0; node < net.Size(); node++ {
		ints := net.Interests(node)
		if len(ints) < cfg.InterestsPerNode[0] || len(ints) > cfg.InterestsPerNode[1] {
			t.Fatalf("node %d has %d interests", node, len(ints))
		}
		seen := map[int]bool{}
		for _, c := range ints {
			if c < 0 || c >= cfg.InterestCategories {
				t.Fatalf("node %d has out-of-range interest %d", node, c)
			}
			if seen[c] {
				t.Fatalf("node %d has duplicate interest %d", node, c)
			}
			seen[c] = true
		}
	}
}

func TestClustersConsistentWithInterests(t *testing.T) {
	net, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for cat := 0; cat < net.Config().InterestCategories; cat++ {
		for _, member := range net.Cluster(cat) {
			if !net.HasInterest(member, cat) {
				t.Fatalf("node %d in cluster %d without the interest", member, cat)
			}
		}
	}
	// Converse: each node appears in each of its interest clusters.
	for node := 0; node < net.Size(); node++ {
		for _, cat := range net.Interests(node) {
			found := false
			for _, m := range net.Cluster(cat) {
				if m == node {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d missing from cluster %d", node, cat)
			}
		}
	}
}

func TestNeighbors(t *testing.T) {
	net, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	node := 0
	cats := net.Interests(node)
	nbrs := net.Neighbors(node, cats[0])
	for _, nb := range nbrs {
		if nb == node {
			t.Fatal("node is its own neighbor")
		}
		if !net.HasInterest(nb, cats[0]) {
			t.Fatalf("neighbor %d lacks interest %d", nb, cats[0])
		}
	}
	// A category the node does not hold yields no neighbors.
	for cat := 0; cat < net.Config().InterestCategories; cat++ {
		if !net.HasInterest(node, cat) {
			if got := net.Neighbors(node, cat); got != nil {
				t.Fatalf("Neighbors for foreign category = %v", got)
			}
			break
		}
	}
}

func TestSharesInterest(t *testing.T) {
	net, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 50; a++ {
		for b := 0; b < 50; b++ {
			want := false
			for _, ca := range net.Interests(a) {
				if net.HasInterest(b, ca) {
					want = true
					break
				}
			}
			if got := net.SharesInterest(a, b); got != want {
				t.Fatalf("SharesInterest(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for node := 0; node < a.Size(); node++ {
		ia, ib := a.Interests(node), b.Interests(node)
		if len(ia) != len(ib) {
			t.Fatalf("node %d interest counts differ", node)
		}
		for i := range ia {
			if ia[i] != ib[i] {
				t.Fatalf("node %d interests differ", node)
			}
		}
	}
}

func TestRandomInterestIsOwn(t *testing.T) {
	net, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for node := 0; node < 20; node++ {
		for k := 0; k < 20; k++ {
			cat := net.RandomInterest(node, r)
			if !net.HasInterest(node, cat) {
				t.Fatalf("node %d drew foreign interest %d", node, cat)
			}
		}
	}
}

// Property: cluster membership counts and per-node interest counts agree
// in total for arbitrary seeds.
func TestQuickMembershipConservation(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Nodes = 50
		net, err := New(cfg)
		if err != nil {
			return false
		}
		fromInterests := 0
		for node := 0; node < net.Size(); node++ {
			fromInterests += len(net.Interests(node))
		}
		fromClusters := 0
		for cat := 0; cat < cfg.InterestCategories; cat++ {
			fromClusters += len(net.Cluster(cat))
		}
		return fromInterests == fromClusters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNew(b *testing.B) {
	cfg := DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

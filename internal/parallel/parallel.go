// Package parallel provides the deterministic fan-out primitives the
// experiment engine and the reputation engines build on.
//
// Parallelism in this repository must never change results: every figure
// artifact has to be byte-identical whatever the worker count, because the
// experiments are the reproduction's ground truth. The package therefore
// offers only primitives whose outputs are independent of scheduling:
//
//   - ForEach runs index-addressed tasks on a bounded worker pool. Tasks
//     write into caller-owned, index-disjoint slots, so the caller merges
//     results in deterministic index order afterwards ("ordered
//     reduction").
//   - Blocks partitions [0, n) into contiguous chunks with boundaries that
//     depend only on n and the chunk count ("fixed partition boundaries"),
//     for data-parallel loops over disjoint ranges.
//
// Neither primitive exposes worker identity to the task, so no computation
// can accidentally key behavior (seeding, ordering) off the scheduler.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller asks for
// automatic sizing: the current GOMAXPROCS setting.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(0), fn(1), ..., fn(n-1) across at most workers
// goroutines and returns when all calls have completed. With workers <= 1
// (or n <= 1) it degenerates to a plain sequential loop on the calling
// goroutine, so the sequential and parallel paths execute the same task
// bodies.
//
// Tasks are claimed from an atomic counter, so the assignment of index to
// goroutine is scheduling-dependent; fn must not derive any output from
// which goroutine ran it. A panic in any task is re-raised on the calling
// goroutine after all workers have stopped.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[panicValue]
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &panicValue{value: r})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.value)
	}
}

// panicValue boxes a recovered panic so it can cross goroutines through an
// atomic pointer.
type panicValue struct{ value any }

// Blocks splits [0, n) into blocks contiguous chunks and runs fn(lo, hi)
// for each chunk, using up to the same number of goroutines. Chunk
// boundaries are the fixed values lo = w*n/blocks, hi = (w+1)*n/blocks —
// they depend only on n and blocks, never on scheduling — so a computation
// that is deterministic per chunk stays deterministic overall.
func Blocks(blocks, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if blocks > n {
		blocks = n
	}
	if blocks <= 1 {
		fn(0, n)
		return
	}
	ForEach(blocks, blocks, func(w int) {
		lo := w * n / blocks
		hi := (w + 1) * n / blocks
		if lo < hi {
			fn(lo, hi)
		}
	})
}

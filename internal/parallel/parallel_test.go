package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16, 100} {
		const n = 57
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ran := 0
	ForEach(8, 0, func(int) { ran++ })
	if ran != 0 {
		t.Fatalf("n=0 ran %d tasks", ran)
	}
	ForEach(8, 1, func(i int) { ran += i + 1 })
	if ran != 1 {
		t.Fatalf("n=1 ran wrong tasks: %d", ran)
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	// workers <= 1 must run in index order on the calling goroutine.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	ForEach(4, 16, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
	t.Fatal("panic did not propagate")
}

func TestBlocksPartition(t *testing.T) {
	for _, blocks := range []int{1, 2, 3, 7, 64} {
		const n = 41
		covered := make([]atomic.Int32, n)
		Blocks(blocks, n, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("blocks=%d: empty chunk [%d,%d)", blocks, lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if got := covered[i].Load(); got != 1 {
				t.Fatalf("blocks=%d: index %d covered %d times", blocks, i, got)
			}
		}
	}
}

func TestBlocksBoundariesFixed(t *testing.T) {
	// The chunk boundaries must be a pure function of (blocks, n).
	collect := func() [][2]int {
		var mu [64][2]int
		idx := atomic.Int32{}
		Blocks(4, 100, func(lo, hi int) {
			i := idx.Add(1) - 1
			mu[i] = [2]int{lo, hi}
		})
		out := mu[:idx.Load()]
		// Sort by lo for comparison (chunk completion order is scheduling-
		// dependent, the boundary set is not).
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j][0] < out[j-1][0]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return append([][2]int(nil), out...)
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("boundaries differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

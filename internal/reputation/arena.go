package reputation

import "math/bits"

// The ledger's row storage is a chunked arena: large fixed-size blocks of
// four parallel int32 columns (rater id, total, positive, negative), carved
// into power-of-two spans that rows reference by (block, offset, length).
// Growing a row to its next size class copies it into a new span and
// returns the old one to a per-class free list, so the steady state of any
// workload — sharded ingest deltas reset every batch, window rows that
// shrink and regrow as periods expire — recycles spans instead of touching
// the heap. Building the ledger therefore allocates O(blocks), not one
// append chain per (target, rater) pair: the n=100k / 1M-rating footprint
// benchmark drops from ~1.46M allocations to a few hundred.
//
// Free lists are intrusive: a freed span stores the next free span's
// handle in its own first rater slot, so pushing and popping spans
// allocates nothing and needs no side arrays. Handles pack (block <<
// arenaBlockShift | offset) + 1, with 0 meaning "empty list", so the
// zero-valued arena is ready to use.
//
// Spans never outgrow a block; a row whose capacity class exceeds
// arenaBlockShift gets a dedicated block of exactly its span size (blocks
// are independently sized slices, so oversized rows cost their actual
// length, and on free the whole block recycles through its class list).
const (
	arenaBlockShift = 16 // 65536 entries per standard block
	arenaBlockSize  = 1 << arenaBlockShift
	arenaMinClass   = 2 // smallest span holds 4 raters
	arenaMaxClass   = 31
)

// rowRef locates one target row inside the arena: a span of 1<<class
// entries starting at offset off of block blk, of which the first n hold
// live data. class == 0 means the row has no span (real classes start at
// arenaMinClass); the ledger maintains the invariant n == 0 ⇔ class == 0.
type rowRef struct {
	blk, off int32
	n        int32
	class    int8
}

// arena owns the blocks and the per-class free lists. The zero value is
// valid except for bumpBlk, which NewLedger sets to -1 (no bump block yet).
type arena struct {
	raters [][]int32
	total  [][]int32
	pos    [][]int32
	neg    [][]int32

	bumpBlk int32 // block the bump allocator carves standard spans from
	bumpOff int32

	// free[c] heads the intrusive free list of spans with capacity 1<<c,
	// encoded (blk<<arenaBlockShift|off)+1; 0 is the empty list.
	free [arenaMaxClass + 1]int32
}

// classFor returns the smallest span class whose capacity holds n entries.
func classFor(n int) int8 {
	c := int8(bits.Len(uint(n - 1)))
	if c < arenaMinClass {
		c = arenaMinClass
	}
	return c
}

// rowCap is the span capacity of a class.
func rowCap(class int8) int32 { return int32(1) << class }

// alloc hands out a span of 1<<class entries: a free-list pop when the
// class has a recycled span, a bump advance otherwise. Only block growth —
// once per arenaBlockSize entries — reaches the allocator.
func (a *arena) alloc(class int8) (blk, off int32) {
	if h := a.free[class]; h != 0 {
		h--
		blk, off = h>>arenaBlockShift, h&(arenaBlockSize-1)
		a.free[class] = a.raters[blk][off]
		return blk, off
	}
	if class >= arenaBlockShift {
		return a.growDedicated(class)
	}
	size := rowCap(class)
	if a.bumpBlk < 0 || a.bumpOff+size > arenaBlockSize {
		a.grow()
	}
	blk, off = a.bumpBlk, a.bumpOff
	a.bumpOff += size
	return blk, off
}

// freeSpan returns a span to its class free list, threading the list link
// through the span's own first rater slot.
func (a *arena) freeSpan(blk, off int32, class int8) {
	a.raters[blk][off] = a.free[class]
	a.free[class] = (blk<<arenaBlockShift | off) + 1
}

// grow appends one standard block (four aligned columns) and makes it the
// bump block. The tail of the previous bump block is not wasted: it is
// decomposed into power-of-two spans and pushed onto the free lists.
//
//colsim:coldpath one four-column block allocation per 65536 arena entries, amortized across every row span the block serves
func (a *arena) grow() {
	if a.bumpBlk >= 0 {
		rem := int32(arenaBlockSize) - a.bumpOff
		off := a.bumpOff
		// Span sizes are powers of two >= 1<<arenaMinClass, so bumpOff —
		// and hence rem — is always a multiple of the minimum span size and
		// decomposes exactly, largest piece first.
		for c := int8(arenaBlockShift - 1); c >= arenaMinClass; c-- {
			if size := rowCap(c); rem >= size {
				a.freeSpan(a.bumpBlk, off, c)
				off += size
				rem -= size
			}
		}
	}
	a.raters = append(a.raters, make([]int32, arenaBlockSize))
	a.total = append(a.total, make([]int32, arenaBlockSize))
	a.pos = append(a.pos, make([]int32, arenaBlockSize))
	a.neg = append(a.neg, make([]int32, arenaBlockSize))
	a.bumpBlk = int32(len(a.raters) - 1)
	a.bumpOff = 0
}

// growDedicated appends a block of exactly 1<<class entries for a span too
// large to carve from a standard block, and returns it as the span.
//
//colsim:coldpath a row outgrowing a whole standard block is a once-per-run event on sparse workloads; the block recycles through its class free list afterwards
func (a *arena) growDedicated(class int8) (blk, off int32) {
	size := int(rowCap(class))
	a.raters = append(a.raters, make([]int32, size))
	a.total = append(a.total, make([]int32, size))
	a.pos = append(a.pos, make([]int32, size))
	a.neg = append(a.neg, make([]int32, size))
	return int32(len(a.raters) - 1), 0
}

// copySpan copies the first n entries of all four columns from the src
// span to the dst span.
func (a *arena) copySpan(dstBlk, dstOff, srcBlk, srcOff, n int32) {
	db, do, sb, so := int(dstBlk), int(dstOff), int(srcBlk), int(srcOff)
	copy(a.raters[db][do:do+int(n)], a.raters[sb][so:so+int(n)])
	copy(a.total[db][do:do+int(n)], a.total[sb][so:so+int(n)])
	copy(a.pos[db][do:do+int(n)], a.pos[sb][so:so+int(n)])
	copy(a.neg[db][do:do+int(n)], a.neg[sb][so:so+int(n)])
}

// spanViews returns the four column views over a full span of the given
// capacity; callers slice down to the live length themselves.
func (a *arena) spanViews(r rowRef, length int32) (rs, tot, pos, neg []int32) {
	b, lo, hi := int(r.blk), r.off, r.off+length
	return a.raters[b][lo:hi], a.total[b][lo:hi], a.pos[b][lo:hi], a.neg[b][lo:hi]
}

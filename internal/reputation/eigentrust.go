package reputation

import (
	"fmt"
	"math"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/parallel"
)

// EigenTrust implements the algorithm of Kamvar, Schlosser and
// Garcia-Molina (the paper's reference [9]) that the evaluation compares
// against:
//
//  1. local trust: s_ij = pos(i→j) − neg(i→j), clamped at zero;
//  2. normalization: c_ij = max(s_ij,0) / Σ_j max(s_ij,0), with rows that
//     trust nobody falling back to the pretrust distribution;
//  3. global trust: the fixed point of t = (1−α)·Cᵀt + α·p, computed by
//     damped power iteration from t₀ = p, where p is uniform over the
//     pretrusted peers (or over all peers when none are designated).
//
// The returned scores form a probability distribution over nodes, matching
// the scale of the paper's Figures 5–11.
//
// The trust matrix is never materialized densely. The engine keeps a
// column-compressed view of the positive local-trust edges (O(n + nnz)
// memory) plus the ascending list of dangling rows — raters with no
// positive experience, whose row is the pretrust distribution — and each
// power-iteration multiply costs O(nnz + d·n) where d is the dangling-row
// count (and only O(nnz + d·|support(p)|) when the pretrust vector is
// sparse, because a dangling row contributes p[j]·t[i] = 0 to every column
// j outside p's support). The scores are nevertheless bit-identical to the
// dense reference: for each output column, contributions accumulate over
// rows in strictly ascending order, exactly the float-addition chain the
// dense row scan performs (see DESIGN.md §17 for the ordering argument).
//
// Each multiply-add of the iteration is still charged to the cost meter
// under metrics.CostEigenMulAdd at the dense n² count, computed
// arithmetically — the same discipline the detectors use for their dense
// element-visit counts — so Figure 13's cost curves are independent of the
// storage layout.
type EigenTrust struct {
	// Pretrusted lists the indices of pretrusted peers (paper: IDs 1-3).
	// Out-of-range entries are ignored; duplicates count once.
	Pretrusted []int
	// Alpha is the damping weight of the pretrust distribution in each
	// iteration. The zero value selects DefaultAlpha.
	Alpha float64
	// Epsilon is the L1 convergence tolerance. The zero value selects
	// DefaultEpsilon.
	Epsilon float64
	// MaxIter bounds the power iteration. The zero value selects
	// DefaultMaxIter.
	MaxIter int
	// Workers sets the number of goroutines used to normalize the trust
	// matrix and to run each power-iteration multiply. Values <= 1 select
	// the sequential path. The parallel path is bit-identical to the
	// sequential one for every worker count: the multiply is partitioned
	// over output columns with fixed boundaries, each next[j] accumulates
	// over rows i in the same ascending order as the sequential loop, and
	// the damping and convergence pass stays on the calling goroutine.
	Workers int
	// Meter, if non-nil, accumulates the iteration cost.
	Meter *metrics.CostMeter
	// IterObs, if non-nil, observes the power-iteration count of every
	// Scores call — the per-cycle convergence view of the cost model.
	IterObs *obs.Histogram
	// Obs, if non-nil, receives the eigentrust.nnz and
	// eigentrust.dangling_rows gauges after every matrix build, exposing
	// the sparsity the multiply exploits.
	Obs *obs.Registry

	// iterations records the iteration count of the last Scores call,
	// exposed for the cost experiments.
	iterations int

	// m is the sparse trust matrix of the last Scores call; its storage
	// (and the iteration vectors below) is reused across calls, so
	// repeated engine cycles stop re-allocating the edge arrays.
	m          etMatrix
	p, t, next []float64
}

// etMatrix is the column-compressed normalized local-trust matrix. Column
// j holds the raters with positive local trust in target j — exactly the
// ledger's CSR row for target j, filtered to s_ij > 0 — so colRow is
// ascending within each column by construction. rowSum[i] is rater i's
// positive local-trust mass Σ_j max(s_ij,0), accumulated in ascending j
// order (the dense reference's row-sum chain); dangling lists, ascending,
// the rows with rowSum == 0, whose virtual row is the pretrust vector.
type etMatrix struct {
	colOff   []int     // n+1 offsets into colRow/colVal per target column
	colRow   []int32   // rater index i of each edge, ascending per column
	colVal   []float64 // normalized trust c_ij = max(s_ij,0) / rowSum[i]
	rowSum   []float64 // per-rater positive local-trust mass
	dangling []int32   // rows with no positive edges, ascending
}

// Defaults for the EigenTrust engine.
const (
	DefaultAlpha   = 0.15
	DefaultEpsilon = 1e-9
	DefaultMaxIter = 100
)

// NewEigenTrust returns an engine with default damping and convergence
// parameters.
func NewEigenTrust(pretrusted []int) *EigenTrust {
	return &EigenTrust{Pretrusted: pretrusted}
}

// Name implements Engine.
func (e *EigenTrust) Name() string { return "eigentrust" }

// Iterations returns the power-iteration count of the most recent Scores
// call.
func (e *EigenTrust) Iterations() int { return e.iterations }

// NNZ returns the number of positive local-trust edges in the most recent
// Scores call's sparse matrix.
func (e *EigenTrust) NNZ() int { return len(e.m.colRow) }

// DanglingRows returns how many raters had no positive experience in the
// most recent Scores call — the rows that fall back to the pretrust
// distribution.
func (e *EigenTrust) DanglingRows() int { return len(e.m.dangling) }

func (e *EigenTrust) params() (alpha, eps float64, maxIter int) {
	alpha, eps, maxIter = e.Alpha, e.Epsilon, e.MaxIter
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if eps == 0 {
		eps = DefaultEpsilon
	}
	if maxIter == 0 {
		maxIter = DefaultMaxIter
	}
	return alpha, eps, maxIter
}

// Scores implements Engine. Memory is O(n + nnz): no dense row is ever
// materialized, and the matrix, vector and scratch storage persists on the
// engine across calls.
func (e *EigenTrust) Scores(l *Ledger) []float64 {
	n := l.Size()
	alpha, eps, maxIter := e.params()
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}

	e.p = floatSlice(e.p, n)
	e.pretrustInto(e.p)
	e.build(l, n, workers)
	if e.Obs != nil {
		e.Obs.Gauge("eigentrust.nnz").Set(float64(e.NNZ()))
		e.Obs.Gauge("eigentrust.dangling_rows").Set(float64(e.DanglingRows()))
	}

	// Damped power iteration: t ← (1−α)·Cᵀt + α·p.
	t := floatSlice(e.t, n)
	copy(t, e.p)
	next := floatSlice(e.next, n)
	e.iterations = 0
	for iter := 0; iter < maxIter; iter++ {
		e.iterations++
		e.multiply(t, next, workers)
		if e.Meter != nil {
			// Cost-model policy: the meter still charges the dense n²
			// multiply-add count arithmetically, whatever the storage
			// layout, so Figure 13's curves depend only on network size
			// and iteration count.
			e.Meter.Add(metrics.CostEigenMulAdd, int64(n)*int64(n))
		}
		// Damping and the convergence test stay on the calling goroutine:
		// they are O(n), and keeping their single left-to-right float
		// accumulation chain guarantees the iteration count — and therefore
		// the returned scores — cannot depend on the worker count.
		delta := 0.0
		for j := 0; j < n; j++ {
			next[j] = (1-alpha)*next[j] + alpha*e.p[j]
			delta += math.Abs(next[j] - t[j])
		}
		t, next = next, t
		if delta < eps {
			break
		}
	}
	e.t, e.next = t, next
	e.IterObs.Observe(int64(e.iterations))
	// The scratch vectors stay owned by the engine; callers get a fresh
	// copy they may retain or mutate.
	out := make([]float64, n)
	copy(out, t)
	return out
}

// build constructs the column-compressed trust matrix straight from the
// ledger's CSR views in one O(n + nnz) pass. Scanning targets j in
// ascending order appends each column's edges with rater i ascending (the
// ledger's adjacency order) and accumulates every rater's rowSum in
// ascending j order — exactly the chain the dense reference's row scan
// performs — so the normalized values below are bit-identical to dividing
// a dense row by its sum.
func (e *EigenTrust) build(l *Ledger, n, workers int) {
	m := &e.m
	m.colOff = intSlice(m.colOff, n+1)
	m.rowSum = floatSlice(m.rowSum, n)
	for i := range m.rowSum {
		m.rowSum[i] = 0
	}
	m.colRow = m.colRow[:0]
	m.colVal = m.colVal[:0]
	m.colOff[0] = 0
	for j := 0; j < n; j++ {
		pc := l.PairCountsOf(j)
		for k, r := range pc.Raters {
			if s := pc.Pos[k] - pc.Neg[k]; s > 0 {
				m.colRow = append(m.colRow, r)
				m.colVal = append(m.colVal, float64(s))
				m.rowSum[r] += float64(s)
			}
		}
		m.colOff[j+1] = len(m.colRow)
	}
	// A peer with no positive experience defers to the pretrust
	// distribution, as in the original algorithm. rowSum only accumulates
	// values >= 1, so == 0 is exact "no positive edges".
	m.dangling = m.dangling[:0]
	for i := 0; i < n; i++ {
		if m.rowSum[i] == 0 {
			m.dangling = append(m.dangling, int32(i))
		}
	}
	// Normalize c_ij = s_ij / rowSum[i]: each edge is one independent
	// division, so the fixed-boundary partition is bit-identical to the
	// sequential pass for every worker count.
	cv, cr, rs := m.colVal, m.colRow, m.rowSum
	parallel.Blocks(workers, len(cv), func(lo, hi int) {
		for k := lo; k < hi; k++ {
			cv[k] /= rs[cr[k]]
		}
	})
}

// multiply computes next = Cᵀt over the sparse matrix. The parallel path
// partitions the output columns into fixed contiguous blocks; each worker
// runs the same column kernel the sequential path runs, so the result is
// bit-identical for every worker count.
//
//colsim:hotpath
func (e *EigenTrust) multiply(t, next []float64, workers int) {
	n := len(t)
	if workers <= 1 {
		e.multiplyColumns(t, next, 0, n)
		return
	}
	parallel.Blocks(workers, n, func(jlo, jhi int) { //colsimlint:ignore hotalloc one worker-closure fan-out per multiply, amortized over the matrix's nonzeros
		e.multiplyColumns(t, next, jlo, jhi)
	})
}

// multiplyColumns accumulates next[j] for columns jlo <= j < jhi. For each
// column it merges the column's edge rows with the dangling rows in
// strictly ascending row order — the two sets are disjoint, edge rows
// contribute c_ij·t[i] and dangling rows p[j]·t[i] — reproducing the dense
// reference's ascending-i accumulation chain term for term. Rows with
// t[i] == 0 are skipped exactly as the dense loop skips them, and columns
// with p[j] == 0 skip the dangling merge entirely: every accumulated value
// is non-negative, so the skipped terms are IEEE +0 additions, which leave
// the accumulator bit-identical.
//
//colsim:hotpath
func (e *EigenTrust) multiplyColumns(t, next []float64, jlo, jhi int) {
	m := &e.m
	colOff, colRow, colVal := m.colOff, m.colRow, m.colVal
	dang := m.dangling
	p := e.p
	for j := jlo; j < jhi; j++ {
		acc := 0.0
		ke, keEnd := colOff[j], colOff[j+1]
		pj := p[j]
		if pj == 0 {
			for ; ke < keEnd; ke++ {
				if ti := t[colRow[ke]]; ti != 0 {
					acc += colVal[ke] * ti
				}
			}
			next[j] = acc
			continue
		}
		kd, kdEnd := 0, len(dang)
		for ke < keEnd && kd < kdEnd {
			if colRow[ke] < dang[kd] {
				if ti := t[colRow[ke]]; ti != 0 {
					acc += colVal[ke] * ti
				}
				ke++
			} else {
				if ti := t[dang[kd]]; ti != 0 {
					acc += pj * ti
				}
				kd++
			}
		}
		for ; ke < keEnd; ke++ {
			if ti := t[colRow[ke]]; ti != 0 {
				acc += colVal[ke] * ti
			}
		}
		for ; kd < kdEnd; kd++ {
			if ti := t[dang[kd]]; ti != 0 {
				acc += pj * ti
			}
		}
		next[j] = acc
	}
}

// pretrustInto fills p with the pretrust distribution: uniform over the
// distinct in-range pretrusted indices, or uniform over everyone when none
// are valid. Out-of-range entries are ignored and duplicates count once,
// so the vector always sums to one.
func (e *EigenTrust) pretrustInto(p []float64) {
	n := len(p)
	for i := range p {
		p[i] = 0
	}
	valid := 0
	for _, idx := range e.Pretrusted {
		if idx >= 0 && idx < n && p[idx] == 0 {
			p[idx] = 1 // mark; replaced by the uniform share below
			valid++
		}
	}
	if valid == 0 {
		for i := range p {
			p[i] = 1 / float64(n)
		}
		return
	}
	share := 1 / float64(valid)
	for i := range p {
		if p[i] != 0 {
			p[i] = share
		}
	}
}

// floatSlice returns s resized to n, reusing its backing array when
// capacity allows. Contents are unspecified; callers overwrite.
func floatSlice(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// intSlice is floatSlice for []int.
func intSlice(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// CheckDistribution verifies that scores form a probability distribution
// within tolerance; the EigenTrust property tests use it.
func CheckDistribution(scores []float64, tol float64) error {
	sum := 0.0
	for i, s := range scores {
		if s < -tol {
			return fmt.Errorf("reputation: score %d is negative: %v", i, s)
		}
		sum += s
	}
	if math.Abs(sum-1) > tol {
		return fmt.Errorf("reputation: scores sum to %v, want 1", sum)
	}
	return nil
}

package reputation

import (
	"fmt"
	"math"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/parallel"
)

// EigenTrust implements the algorithm of Kamvar, Schlosser and
// Garcia-Molina (the paper's reference [9]) that the evaluation compares
// against:
//
//  1. local trust: s_ij = pos(i→j) − neg(i→j), clamped at zero;
//  2. normalization: c_ij = max(s_ij,0) / Σ_j max(s_ij,0), with rows that
//     trust nobody falling back to the pretrust distribution;
//  3. global trust: the fixed point of t = (1−α)·Cᵀt + α·p, computed by
//     damped power iteration from t₀ = p, where p is uniform over the
//     pretrusted peers (or over all peers when none are designated).
//
// The returned scores form a probability distribution over nodes, matching
// the scale of the paper's Figures 5–11.
//
// Each multiply-add of the iteration is charged to the cost meter under
// metrics.CostEigenMulAdd; Figure 13 reports this as EigenTrust's
// "recursive matrix calculation" cost, which depends on the network size
// and iteration count but not on the number of colluders.
type EigenTrust struct {
	// Pretrusted lists the indices of pretrusted peers (paper: IDs 1-3).
	Pretrusted []int
	// Alpha is the damping weight of the pretrust distribution in each
	// iteration. The zero value selects DefaultAlpha.
	Alpha float64
	// Epsilon is the L1 convergence tolerance. The zero value selects
	// DefaultEpsilon.
	Epsilon float64
	// MaxIter bounds the power iteration. The zero value selects
	// DefaultMaxIter.
	MaxIter int
	// Workers sets the number of goroutines used to build the trust matrix
	// and to run each power-iteration multiply. Values <= 1 select the
	// sequential path. The parallel path is bit-identical to the sequential
	// one for every worker count: the matrix rows are independent, and the
	// multiply is partitioned over output columns with fixed boundaries, so
	// each next[j] accumulates over rows i in the same ascending order as
	// the sequential loop; the damping and convergence pass stays on the
	// calling goroutine.
	Workers int
	// Meter, if non-nil, accumulates the iteration cost.
	Meter *metrics.CostMeter
	// IterObs, if non-nil, observes the power-iteration count of every
	// Scores call — the per-cycle convergence view of the cost model.
	IterObs *obs.Histogram

	// iterations records the iteration count of the last Scores call,
	// exposed for the cost experiments.
	iterations int
}

// Defaults for the EigenTrust engine.
const (
	DefaultAlpha   = 0.15
	DefaultEpsilon = 1e-9
	DefaultMaxIter = 100
)

// NewEigenTrust returns an engine with default damping and convergence
// parameters.
func NewEigenTrust(pretrusted []int) *EigenTrust {
	return &EigenTrust{Pretrusted: pretrusted}
}

// Name implements Engine.
func (e *EigenTrust) Name() string { return "eigentrust" }

// Iterations returns the power-iteration count of the most recent Scores
// call.
func (e *EigenTrust) Iterations() int { return e.iterations }

func (e *EigenTrust) params() (alpha, eps float64, maxIter int) {
	alpha, eps, maxIter = e.Alpha, e.Epsilon, e.MaxIter
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if eps == 0 {
		eps = DefaultEpsilon
	}
	if maxIter == 0 {
		maxIter = DefaultMaxIter
	}
	return alpha, eps, maxIter
}

// Scores implements Engine.
func (e *EigenTrust) Scores(l *Ledger) []float64 {
	n := l.Size()
	alpha, eps, maxIter := e.params()
	p := e.pretrustVector(n)
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}

	// Build the normalized local trust matrix C row-major: c[i][j] is how
	// much rater i trusts node j. The ledger stores counts by target row,
	// so the per-rater view is a CSR transpose of the positive local-trust
	// edges, built in one O(n + nnz) pass: scanning targets j in ascending
	// order appends each rater's edges with j ascending, so the row sums
	// below accumulate in exactly the order of the old dense column scan
	// and the resulting floats are bit-identical.
	off := make([]int, n+1)
	for j := 0; j < n; j++ {
		pc := l.PairCountsOf(j)
		for k := range pc.Raters {
			if pc.Pos[k]-pc.Neg[k] > 0 {
				off[int(pc.Raters[k])+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	edgeTo := make([]int32, off[n])
	edgeS := make([]float64, off[n])
	fill := make([]int, n)
	copy(fill, off[:n])
	for j := 0; j < n; j++ {
		pc := l.PairCountsOf(j)
		for k, r32 := range pc.Raters {
			if s := pc.Pos[k] - pc.Neg[k]; s > 0 {
				at := fill[r32]
				edgeTo[at] = int32(j)
				edgeS[at] = float64(s)
				fill[r32] = at + 1
			}
		}
	}
	// Rows are independent, so filling them in parallel blocks produces
	// the exact same floats as the sequential loop.
	c := make([][]float64, n)
	parallel.Blocks(workers, n, func(rlo, rhi int) {
		for i := rlo; i < rhi; i++ {
			row := make([]float64, n)
			sum := 0.0
			for at := off[i]; at < off[i+1]; at++ {
				row[edgeTo[at]] = edgeS[at]
				sum += edgeS[at]
			}
			if sum == 0 {
				// A peer with no positive experience defers to the pretrust
				// distribution, as in the original algorithm.
				copy(row, p)
			} else {
				// Only the edge slots are nonzero; dividing just those
				// leaves the zero entries bit-identical to dividing all.
				for at := off[i]; at < off[i+1]; at++ {
					row[edgeTo[at]] /= sum
				}
			}
			c[i] = row
		}
	})

	// Damped power iteration: t ← (1−α)·Cᵀt + α·p.
	t := append([]float64(nil), p...)
	next := make([]float64, n)
	e.iterations = 0
	for iter := 0; iter < maxIter; iter++ {
		e.iterations++
		e.multiply(c, t, next, workers)
		if e.Meter != nil {
			e.Meter.Add(metrics.CostEigenMulAdd, int64(n)*int64(n))
		}
		// Damping and the convergence test stay on the calling goroutine:
		// they are O(n), and keeping their single left-to-right float
		// accumulation chain guarantees the iteration count — and therefore
		// the returned scores — cannot depend on the worker count.
		delta := 0.0
		for j := 0; j < n; j++ {
			next[j] = (1-alpha)*next[j] + alpha*p[j]
			delta += math.Abs(next[j] - t[j])
		}
		t, next = next, t
		if delta < eps {
			break
		}
	}
	e.IterObs.Observe(int64(e.iterations))
	return t
}

// multiply computes next = Cᵀt. The parallel path partitions the output
// columns into fixed contiguous blocks; each worker accumulates its
// next[j] over rows i in ascending order — the identical float-addition
// chain the sequential loop performs for that j — so the result is
// bit-identical for every worker count.
func (e *EigenTrust) multiply(c [][]float64, t, next []float64, workers int) {
	n := len(t)
	if workers <= 1 {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			ti := t[i]
			if ti == 0 {
				continue
			}
			row := c[i]
			for j := 0; j < n; j++ {
				next[j] += row[j] * ti
			}
		}
		return
	}
	parallel.Blocks(workers, n, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			ti := t[i]
			if ti == 0 {
				continue
			}
			row := c[i]
			for j := jlo; j < jhi; j++ {
				next[j] += row[j] * ti
			}
		}
	})
}

// pretrustVector returns p: uniform over pretrusted peers, or uniform over
// everyone when no pretrusted peers are configured.
func (e *EigenTrust) pretrustVector(n int) []float64 {
	p := make([]float64, n)
	valid := 0
	for _, idx := range e.Pretrusted {
		if idx >= 0 && idx < n {
			valid++
		}
	}
	if valid == 0 {
		for i := range p {
			p[i] = 1 / float64(n)
		}
		return p
	}
	share := 1 / float64(valid)
	for _, idx := range e.Pretrusted {
		if idx >= 0 && idx < n {
			p[idx] = share
		}
	}
	return p
}

// CheckDistribution verifies that scores form a probability distribution
// within tolerance; the EigenTrust property tests use it.
func CheckDistribution(scores []float64, tol float64) error {
	sum := 0.0
	for i, s := range scores {
		if s < -tol {
			return fmt.Errorf("reputation: score %d is negative: %v", i, s)
		}
		sum += s
	}
	if math.Abs(sum-1) > tol {
		return fmt.Errorf("reputation: scores sum to %v, want 1", sum)
	}
	return nil
}

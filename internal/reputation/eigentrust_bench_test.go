package reputation

import "testing"

// Cached benchmark ledgers: building the 100k/1M-node networks costs more
// than the benchmarked operations, so they are constructed once per
// process and shared (benchmarks run sequentially; EigenTrust never
// mutates the ledger).
var (
	etBench100k *Ledger
	etBench1M   *Ledger
)

// eigenBenchLedger100k is a 100k-node network with ~2M mixed-polarity
// ratings — the sparse regime the detectors' Sparse100k benchmarks use.
func eigenBenchLedger100k() *Ledger {
	if etBench100k == nil {
		etBench100k = randomTrustLedger(100, 100_000, 2_000_000)
	}
	return etBench100k
}

// eigenBenchLedger1M is the million-node smoke topology: ~1.9M positive
// edges, every 17th node dangling.
func eigenBenchLedger1M() *Ledger {
	if etBench1M == nil {
		const n = 1_000_000
		l := NewLedger(n)
		for i := 0; i < n; i++ {
			if i%17 == 0 {
				continue
			}
			l.Record(i, (i+1)%n, 1)
			if j := (i*7 + 3) % n; j != i {
				l.Record(i, j, 1)
			}
		}
		etBench1M = l
	}
	return etBench1M
}

// BenchmarkEigenTrustBuildSparse100k measures the O(n + nnz) matrix build
// straight from the ledger's CSR views, with the engine-owned scratch
// reused across calls (steady-state allocations stay flat).
func BenchmarkEigenTrustBuildSparse100k(b *testing.B) {
	l := eigenBenchLedger100k()
	e := NewEigenTrust([]int{0, 1, 2})
	e.build(l, l.Size(), 1) // warm the engine-owned scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.build(l, l.Size(), 1)
	}
}

// BenchmarkEigenTrustMultiplySparse100k measures one power-iteration
// multiply over the sparse matrix — the //colsim:hotpath kernel, O(nnz +
// d·n) and allocation-free.
func BenchmarkEigenTrustMultiplySparse100k(b *testing.B) {
	l := eigenBenchLedger100k()
	n := l.Size()
	e := NewEigenTrust([]int{0, 1, 2})
	e.p = floatSlice(e.p, n)
	e.pretrustInto(e.p)
	e.build(l, n, 1)
	t := make([]float64, n)
	copy(t, e.p)
	next := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.multiply(t, next, 1)
	}
}

// BenchmarkEigenTrustScoresSparse100k is the full engine at n=100k:
// build + damped power iteration at the simulator's convergence tolerance.
func BenchmarkEigenTrustScoresSparse100k(b *testing.B) {
	l := eigenBenchLedger100k()
	e := NewEigenTrust([]int{0, 1, 2})
	e.Epsilon = 1e-4
	e.Scores(l) // warm the engine-owned scratch: steady state is the contract
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Scores(l)
	}
}

// BenchmarkEigenTrustScoresSparse1M demonstrates the new scale ceiling:
// million-node EigenTrust in container memory. The dense trust matrix
// alone would need ~8 TB; the sparse engine holds O(n + nnz).
func BenchmarkEigenTrustScoresSparse1M(b *testing.B) {
	l := eigenBenchLedger1M()
	e := NewEigenTrust([]int{0, 1, 2})
	e.Epsilon = 1e-4
	e.MaxIter = 12
	e.Scores(l) // warm the engine-owned scratch: steady state is the contract
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Scores(l)
	}
}

package reputation

import (
	"fmt"
	"math"
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/rng"
)

// denseEigenTrustScores is the preserved dense reference implementation:
// the engine exactly as it was before the sparse rewrite, materializing n
// dense rows and multiplying full rows each iteration. It shares params()
// and pretrustInto with the live engine, so the two differ only in
// storage layout — the equivalence tests below pin them bit-identical.
func denseEigenTrustScores(e *EigenTrust, l *Ledger) (scores []float64, iters int) {
	n := l.Size()
	alpha, eps, maxIter := e.params()
	p := make([]float64, n)
	e.pretrustInto(p)

	// Dense build via CSR transpose, exactly as the pre-sparse engine:
	// scanning targets j ascending appends each rater's edges with j
	// ascending, so row sums accumulate in ascending j order.
	off := make([]int, n+1)
	for j := 0; j < n; j++ {
		pc := l.PairCountsOf(j)
		for k := range pc.Raters {
			if pc.Pos[k]-pc.Neg[k] > 0 {
				off[int(pc.Raters[k])+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	edgeTo := make([]int32, off[n])
	edgeS := make([]float64, off[n])
	fill := make([]int, n)
	copy(fill, off[:n])
	for j := 0; j < n; j++ {
		pc := l.PairCountsOf(j)
		for k, r32 := range pc.Raters {
			if s := pc.Pos[k] - pc.Neg[k]; s > 0 {
				at := fill[r32]
				edgeTo[at] = int32(j)
				edgeS[at] = float64(s)
				fill[r32] = at + 1
			}
		}
	}
	c := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		sum := 0.0
		for at := off[i]; at < off[i+1]; at++ {
			row[edgeTo[at]] = edgeS[at]
			sum += edgeS[at]
		}
		if sum == 0 {
			copy(row, p)
		} else {
			for at := off[i]; at < off[i+1]; at++ {
				row[edgeTo[at]] /= sum
			}
		}
		c[i] = row
	}

	t := append([]float64(nil), p...)
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		iters++
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			ti := t[i]
			if ti == 0 {
				continue
			}
			row := c[i]
			for j := 0; j < n; j++ {
				next[j] += row[j] * ti
			}
		}
		delta := 0.0
		for j := 0; j < n; j++ {
			next[j] = (1-alpha)*next[j] + alpha*p[j]
			delta += math.Abs(next[j] - t[j])
		}
		t, next = next, t
		if delta < eps {
			break
		}
	}
	return t, iters
}

// assertBitIdentical compares sparse-engine output against the dense
// reference bit for bit, plus iteration counts.
func assertBitIdentical(t *testing.T, ctx string, got, want []float64, gotIters, wantIters int) {
	t.Helper()
	if gotIters != wantIters {
		t.Fatalf("%s: %d iterations, dense reference did %d", ctx, gotIters, wantIters)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores, dense reference has %d", ctx, len(got), len(want))
	}
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("%s: score[%d] = %v (bits %x), dense reference %v (bits %x)",
				ctx, j, got[j], math.Float64bits(got[j]), want[j], math.Float64bits(want[j]))
		}
	}
}

var equivalenceWorkerCounts = []int{1, 2, 4, 8}

// TestEigenTrustSparseMatchesDenseReference is the tentpole equivalence
// pin: randomized ledgers (mixed polarity, dangling rows, messy pretrust
// sets including duplicates and out-of-range indices), sparse scores
// bit-identical to the preserved dense reference for every tested worker
// count, with identical iteration counts and an unchanged (dense n²)
// metered cost. One persistent engine per worker count exercises the
// cross-call scratch reuse while n varies trial to trial.
func TestEigenTrustSparseMatchesDenseReference(t *testing.T) {
	r := rng.New(11).Child("sparse-vs-dense")
	engines := make(map[int]*EigenTrust, len(equivalenceWorkerCounts))
	for _, w := range equivalenceWorkerCounts {
		engines[w] = &EigenTrust{Workers: w}
	}
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(120)
		l := NewLedger(n)
		ratings := r.Intn(8*n + 1)
		for k := 0; k < ratings; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if i == j {
				continue
			}
			pol := 1
			if r.Bool(0.35) {
				pol = -1
			}
			l.Record(i, j, pol)
		}
		var pre []int
		switch trial % 3 {
		case 0: // none configured: uniform pretrust over everyone
		case 1: // clean pretrust set
			for m := 0; m <= r.Intn(3); m++ {
				pre = append(pre, r.Intn(n))
			}
		case 2: // messy: duplicates and out-of-range entries
			pre = []int{-1, n, n + 7}
			for m := 0; m <= r.Intn(3); m++ {
				idx := r.Intn(n)
				pre = append(pre, idx, idx)
			}
		}
		ref := &EigenTrust{Pretrusted: pre}
		want, wantIters := denseEigenTrustScores(ref, l)
		for _, workers := range equivalenceWorkerCounts {
			e := engines[workers]
			e.Pretrusted = pre
			var meter metrics.CostMeter
			e.Meter = &meter
			got := e.Scores(l)
			ctx := fmt.Sprintf("trial=%d n=%d workers=%d", trial, n, workers)
			assertBitIdentical(t, ctx, got, want, e.Iterations(), wantIters)
			if gotCost, wantCost := meter.Total(), int64(wantIters)*int64(n)*int64(n); gotCost != wantCost {
				t.Fatalf("trial=%d n=%d workers=%d: metered cost %d, dense policy charges %d",
					trial, n, workers, gotCost, wantCost)
			}
		}
	}
}

// TestEigenTrustAllDanglingNetwork covers the extreme where every row
// falls back to the pretrust distribution: ledgers with only negative
// ratings and fully empty ledgers, under both sparse (designated
// pretrusted) and uniform pretrust vectors — the uniform case walks the
// full d·n dangling merge, the designated case takes the p[j] == 0
// shortcut on almost every column.
func TestEigenTrustAllDanglingNetwork(t *testing.T) {
	r := rng.New(23).Child("all-dangling")
	for _, n := range []int{1, 2, 17, 60} {
		negOnly := NewLedger(n)
		for k := 0; k < 6*n; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if i == j {
				continue
			}
			negOnly.Record(i, j, -1)
		}
		empty := NewLedger(n)
		cases := []struct {
			name string
			l    *Ledger
		}{{"negatives-only", negOnly}, {"empty", empty}}
		for _, tc := range cases {
			name, l := tc.name, tc.l
			for _, pre := range [][]int{nil, {0}, {0, n - 1, 0, -5, n}} {
				ref := &EigenTrust{Pretrusted: pre}
				want, wantIters := denseEigenTrustScores(ref, l)
				for _, workers := range equivalenceWorkerCounts {
					e := &EigenTrust{Pretrusted: pre, Workers: workers}
					got := e.Scores(l)
					assertBitIdentical(t, name, got, want, e.Iterations(), wantIters)
					if e.DanglingRows() != n {
						t.Fatalf("%s n=%d: %d dangling rows, want all %d", name, n, e.DanglingRows(), n)
					}
					if e.NNZ() != 0 {
						t.Fatalf("%s n=%d: nnz %d, want 0", name, n, e.NNZ())
					}
					if err := CheckDistribution(got, 1e-9); err != nil {
						t.Fatalf("%s n=%d: %v", name, n, err)
					}
				}
			}
		}
	}
}

// TestEigenTrustPretrustDedup is the regression test for the
// pretrust-vector double count: duplicate indices used to increment the
// share denominator while overwriting the same slot, so Pretrusted
// [1, 1, 2] produced a vector summing to 2/3. Deduplicated, the vector is
// a distribution and duplicates are share-neutral.
func TestEigenTrustPretrustDedup(t *testing.T) {
	e := NewEigenTrust([]int{1, 1, 2})
	p := make([]float64, 5)
	e.pretrustInto(p)
	if err := CheckDistribution(p, 0); err != nil {
		t.Fatalf("duplicate pretrusted indices broke the distribution: %v", err)
	}
	if p[1] != 0.5 || p[2] != 0.5 {
		t.Fatalf("p = %v, want 0.5 at indices 1 and 2", p)
	}
	// A duplicated entry must be share-neutral: [1,1,2] == [1,2].
	dedup := NewEigenTrust([]int{1, 2})
	q := make([]float64, 5)
	dedup.pretrustInto(q)
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("duplicates changed the pretrust vector: %v vs %v", p, q)
		}
	}
	// Out-of-range entries alone fall back to uniform.
	oob := NewEigenTrust([]int{-3, 9, 17})
	u := make([]float64, 5)
	oob.pretrustInto(u)
	for i := range u {
		if u[i] != 1.0/5 {
			t.Fatalf("out-of-range pretrusted indices: p = %v, want uniform", u)
		}
	}
	// End to end: scores stay a distribution under the messy set.
	l := randomTrustLedger(5, 30, 300)
	messy := NewEigenTrust([]int{1, 1, 2, -1, 40})
	if err := CheckDistribution(messy.Scores(l), 1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestEigenTrustScratchReuseAllocs pins the O(n + nnz) allocation
// contract: after the first call warms the engine-owned matrix and vector
// scratch, repeated Scores calls allocate only the returned copy and the
// normalization closure — never per-row storage.
func TestEigenTrustScratchReuseAllocs(t *testing.T) {
	l := randomTrustLedger(3, 400, 4000)
	e := NewEigenTrust([]int{0, 1, 2})
	e.Scores(l) // warm the scratch
	allocs := testing.AllocsPerRun(10, func() { e.Scores(l) })
	if allocs > 3 {
		t.Fatalf("steady-state Scores made %v allocations, want <= 3 (result copy + normalization closure)", allocs)
	}
}

// TestEigenTrustMillionNodeSmoke demonstrates the new scale ceiling: a
// 1M-node, ~1.9M-edge network (with every 17th node silent, so dangling
// rows are exercised) converges in container memory. The dense path would
// need ~8 TB for the trust matrix alone.
func TestEigenTrustMillionNodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node smoke skipped in -short mode")
	}
	const n = 1_000_000
	l := NewLedger(n)
	for i := 0; i < n; i++ {
		if i%17 == 0 {
			continue // dangling row: rates nobody
		}
		l.Record(i, (i+1)%n, 1)
		if j := (i*7 + 3) % n; j != i {
			l.Record(i, j, 1)
		}
	}
	e := NewEigenTrust([]int{0, 1, 2})
	e.Workers = 4
	e.Epsilon = 1e-4
	e.MaxIter = 12
	scores := e.Scores(l)
	if err := CheckDistribution(scores, 1e-6); err != nil {
		t.Fatal(err)
	}
	if e.NNZ() < 1_800_000 {
		t.Fatalf("nnz = %d, want ~1.9M positive edges", e.NNZ())
	}
	if want := (n + 16) / 17; e.DanglingRows() != want {
		t.Fatalf("dangling rows = %d, want %d", e.DanglingRows(), want)
	}
	if e.Iterations() < 2 {
		t.Fatalf("power iteration converged suspiciously fast: %d iterations", e.Iterations())
	}
}

package reputation

import (
	"math"
	"testing"

	"github.com/p2psim/collusion/internal/rng"
)

// FuzzEigenTrustSparse drives the sparse engine against the preserved
// dense reference on fuzzer-chosen networks: arbitrary sizes, densities,
// polarities, pretrust sets (in-range, out-of-range, duplicated, empty)
// and worker counts. Scores must be bit-identical and iteration counts
// equal — the same contract the randomized equivalence test pins, explored
// adversarially.
func FuzzEigenTrustSparse(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint16(80), int8(0), int8(1), uint8(0))
	f.Add(uint64(7), uint8(1), uint16(0), int8(-1), int8(5), uint8(1))
	f.Add(uint64(42), uint8(63), uint16(500), int8(3), int8(3), uint8(2))
	f.Add(uint64(99), uint8(30), uint16(40), int8(120), int8(-8), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, ratings uint16, pre1, pre2 int8, workersRaw uint8) {
		n := 1 + int(nRaw)%64
		r := rng.New(seed).Child("fuzz-eigentrust")
		l := NewLedger(n)
		for k := 0; k < int(ratings)%512; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if i == j {
				continue
			}
			pol := 1
			if r.Bool(0.4) {
				pol = -1
			}
			l.Record(i, j, pol)
		}
		pre := []int{int(pre1), int(pre2)}
		if pre1 == pre2 {
			pre = append(pre, int(pre1)) // triple duplicate
		}
		ref := &EigenTrust{Pretrusted: pre}
		want, wantIters := denseEigenTrustScores(ref, l)

		workers := equivalenceWorkerCounts[int(workersRaw)%len(equivalenceWorkerCounts)]
		e := &EigenTrust{Pretrusted: pre, Workers: workers}
		got := e.Scores(l)
		if e.Iterations() != wantIters {
			t.Fatalf("n=%d workers=%d: %d iterations, dense reference did %d",
				n, workers, e.Iterations(), wantIters)
		}
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("n=%d workers=%d: score[%d] = %v, dense reference %v (must be bit-identical)",
					n, workers, j, got[j], want[j])
			}
		}
		if err := CheckDistribution(got, 1e-9); err != nil {
			t.Fatal(err)
		}
	})
}

package reputation

import (
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/rng"
)

// randomTrustLedger builds a ledger with a mix of positive and negative
// ratings, including rows with no positive experience (pretrust fallback)
// and zero-score nodes.
func randomTrustLedger(seed uint64, n, ratings int) *Ledger {
	r := rng.New(seed).Child("eigentrust-parallel")
	l := NewLedger(n)
	for k := 0; k < ratings; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		pol := 1
		if r.Bool(0.3) {
			pol = -1
		}
		l.Record(i, j, pol)
	}
	return l
}

// TestEigenTrustWorkersBitIdentical pins the tentpole determinism claim:
// the row-partitioned parallel power iteration returns bit-identical
// scores, the same iteration count, and the same metered cost as the
// sequential path, for every worker count.
func TestEigenTrustWorkersBitIdentical(t *testing.T) {
	for _, n := range []int{1, 7, 50, 128} {
		l := randomTrustLedger(uint64(n), n, n*20)
		var seqMeter metrics.CostMeter
		seq := NewEigenTrust([]int{0, 1, 2})
		seq.Meter = &seqMeter
		want := seq.Scores(l)
		wantIters := seq.Iterations()

		for _, workers := range []int{2, 3, 4, 16, 100} {
			var meter metrics.CostMeter
			par := NewEigenTrust([]int{0, 1, 2})
			par.Workers = workers
			par.Meter = &meter
			got := par.Scores(l)
			if par.Iterations() != wantIters {
				t.Fatalf("n=%d workers=%d: %d iterations, sequential did %d",
					n, workers, par.Iterations(), wantIters)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("n=%d workers=%d: score[%d] = %v, sequential %v (must be bit-identical)",
						n, workers, j, got[j], want[j])
				}
			}
			if got, want := meter.Total(), seqMeter.Total(); got != want {
				t.Fatalf("n=%d workers=%d: metered cost %d, sequential %d", n, workers, got, want)
			}
		}
	}
}

func TestEigenTrustWorkersStillADistribution(t *testing.T) {
	l := randomTrustLedger(9, 40, 800)
	e := NewEigenTrust([]int{0})
	e.Workers = 8
	if err := CheckDistribution(e.Scores(l), 1e-9); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEigenTrustScores200(b *testing.B) {
	l := randomTrustLedger(1, 200, 200*60)
	e := NewEigenTrust([]int{0, 1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Scores(l)
	}
}

func BenchmarkEigenTrustScores200Workers(b *testing.B) {
	l := randomTrustLedger(1, 200, 200*60)
	e := NewEigenTrust([]int{0, 1, 2})
	e.Workers = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Scores(l)
	}
}

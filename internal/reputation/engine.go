package reputation

import (
	"fmt"
	"math"
)

// Engine computes a global reputation score for every node from a period's
// ledger. Implementations must not mutate the ledger.
type Engine interface {
	// Scores returns one score per node index. Higher is more trustworthy.
	Scores(l *Ledger) []float64
	// Name identifies the engine in experiment output.
	Name() string
}

// Summation is the eBay/Amazon-style engine of Section IV-A: a node's
// reputation is the sum of all rating values it received (+1/0/-1).
// This is the engine whose algebra yields the optimized detector's
// Formula (1).
type Summation struct{}

// Name implements Engine.
func (Summation) Name() string { return "summation" }

// Scores implements Engine.
func (Summation) Scores(l *Ledger) []float64 {
	out := make([]float64, l.Size())
	for i := range out {
		out[i] = float64(l.SummationScore(i))
	}
	return out
}

// WeightedSum is the scoring the paper describes in Section V:
// R = Σ_j w1·r_j + Σ_p w2·r_p, where r_j is the rating value from normal
// node n_j (weighted w1 = 0.2) and r_p the rating value from pretrusted
// node n_p (weighted w2 = 0.5).
type WeightedSum struct {
	// Pretrusted lists node indices whose ratings carry WPretrusted weight.
	Pretrusted []int
	// WNormal is the weight of ordinary raters (paper: 0.2).
	WNormal float64
	// WPretrusted is the weight of pretrusted raters (paper: 0.5).
	WPretrusted float64
}

// NewWeightedSum returns the engine with the paper's honey-spot parameters
// w1 = 0.2 and w2 = 0.5.
func NewWeightedSum(pretrusted []int) *WeightedSum {
	return &WeightedSum{Pretrusted: pretrusted, WNormal: 0.2, WPretrusted: 0.5}
}

// Name implements Engine.
func (w *WeightedSum) Name() string { return "weighted-sum" }

// Scores implements Engine.
func (w *WeightedSum) Scores(l *Ledger) []float64 {
	n := l.Size()
	weight := make([]float64, n)
	for i := range weight {
		weight[i] = w.WNormal
	}
	for _, p := range w.Pretrusted {
		if p >= 0 && p < n {
			weight[p] = w.WPretrusted
		}
	}
	out := make([]float64, n)
	for target := 0; target < n; target++ {
		// Only the target's active raters contribute; the adjacency is
		// ascending, so the float accumulation order matches the old dense
		// column scan exactly.
		sum := 0.0
		pc := l.PairCountsOf(target)
		for k, r32 := range pc.Raters {
			if d := pc.Pos[k] - pc.Neg[k]; d != 0 {
				sum += weight[r32] * float64(d)
			}
		}
		out[target] = sum
	}
	return out
}

// Normalize scales scores so non-negative mass sums to one, mirroring the
// probability-distribution presentation of the paper's Figures 5-11.
// Negative scores are clamped to zero first. If every score is zero or
// negative the input is returned unchanged (a copy).
func Normalize(scores []float64) []float64 {
	out := make([]float64, len(scores))
	total := 0.0
	for i, s := range scores {
		if s > 0 {
			out[i] = s
			total += s
		}
	}
	if total == 0 {
		copy(out, scores)
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}

// Threshold classifies nodes against a reputation threshold T_R: indices
// with score >= tr are returned as trustworthy.
func Threshold(scores []float64, tr float64) []int {
	var out []int
	for i, s := range scores {
		if s >= tr {
			out = append(out, i)
		}
	}
	return out
}

// ValidateEngine asserts an engine produces one finite score per node; it
// is used by tests and by the simulator's startup checks.
func ValidateEngine(e Engine, l *Ledger) error {
	scores := e.Scores(l)
	if len(scores) != l.Size() {
		return fmt.Errorf("reputation: engine %q returned %d scores for %d nodes",
			e.Name(), len(scores), l.Size())
	}
	for i, s := range scores {
		if math.IsNaN(s) || s > 1e18 || s < -1e18 {
			return fmt.Errorf("reputation: engine %q produced non-finite score %v for node %d",
				e.Name(), s, i)
		}
	}
	return nil
}

package reputation

import "github.com/p2psim/collusion/internal/metrics"

// IterativeWeighted is the EigenTrust-style scoring the paper's Section V
// evaluation describes: R = Σ_j w1·r_j + Σ_p w2·r_p with w2 > w1, where "a
// node with higher reputation has higher w1" — i.e. the weight of a
// rater's feedback depends on the rater's own current reputation, updated
// once per simulation cycle.
//
// Concretely, at each update a rater's ratings are weighed:
//
//   - WPretrusted (paper: 0.5) for pretrusted peers;
//   - WNormal (paper: 0.2) for peers whose reputation from the previous
//     update is at least TrustThreshold (the paper's reputation threshold,
//     0.05 on the normalized scale);
//   - WDistrusted (a small residual) for peers currently below it.
//
// Scores are normalized to a distribution after every update, matching the
// scale of the paper's Figures 5-11, and the normalized scores feed the
// next update's weights. This closed loop is what lets the system suppress
// colluders whose service is poor: bad service drags their reputation
// below the threshold, which in turn discounts the very ratings they use
// to prop each other up.
//
// The engine is stateful across calls (it remembers the previous scores);
// create a fresh instance per simulation run.
type IterativeWeighted struct {
	// Pretrusted lists node indices whose ratings carry WPretrusted.
	Pretrusted []int
	// WNormal is the weight of trustworthy raters (paper: 0.2).
	WNormal float64
	// WPretrusted is the weight of pretrusted raters (paper: 0.5).
	WPretrusted float64
	// WDistrusted is the residual weight of raters currently below the
	// trust threshold.
	WDistrusted float64
	// TrustThreshold is the normalized-reputation threshold T_R above
	// which a rater counts as trustworthy (paper: 0.05).
	TrustThreshold float64
	// Meter, if non-nil, is charged one metrics.CostEigenMulAdd per
	// matrix multiply-add of each update.
	Meter *metrics.CostMeter

	prev []float64 // previous normalized scores
}

// NewIterativeWeighted returns the engine with the paper's parameters:
// w1 = 0.2, w2 = 0.5, T_R = 0.05, and a distrust residual of w1/4.
func NewIterativeWeighted(pretrusted []int) *IterativeWeighted {
	return &IterativeWeighted{
		Pretrusted:     pretrusted,
		WNormal:        0.2,
		WPretrusted:    0.5,
		WDistrusted:    0.05,
		TrustThreshold: 0.05,
	}
}

// Name implements Engine.
func (e *IterativeWeighted) Name() string { return "iterative-weighted" }

// Reset clears the remembered scores so the engine can drive a new run.
func (e *IterativeWeighted) Reset() { e.prev = nil }

// Scores implements Engine. It computes one weighted-sum update from the
// cumulative ledger using the previous update's normalized scores to
// assign rater weights, then normalizes.
func (e *IterativeWeighted) Scores(l *Ledger) []float64 {
	n := l.Size()
	pre := make([]bool, n)
	for _, p := range e.Pretrusted {
		if p >= 0 && p < n {
			pre[p] = true
		}
	}
	weight := make([]float64, n)
	for j := 0; j < n; j++ {
		switch {
		case pre[j]:
			weight[j] = e.WPretrusted
		case e.prev != nil && j < len(e.prev) && e.prev[j] >= e.TrustThreshold:
			weight[j] = e.WNormal
		default:
			weight[j] = e.WDistrusted
		}
	}
	raw := make([]float64, n)
	for target := 0; target < n; target++ {
		// Only active raters have nonzero local trust for the target; the
		// ascending adjacency keeps the float accumulation order of the
		// old dense column scan.
		sum := 0.0
		pc := l.PairCountsOf(target)
		for k, r32 := range pc.Raters {
			if d := pc.Pos[k] - pc.Neg[k]; d != 0 {
				sum += weight[r32] * float64(d)
			}
		}
		raw[target] = sum
	}
	if e.Meter != nil {
		e.Meter.Add(metrics.CostEigenMulAdd, int64(n)*int64(n))
	}
	scores := Normalize(raw)
	e.prev = scores
	return scores
}

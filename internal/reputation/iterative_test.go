package reputation

import (
	"math"
	"testing"

	"github.com/p2psim/collusion/internal/metrics"
)

func TestIterativeWeightedFirstUpdateUsesResidualWeights(t *testing.T) {
	l := NewLedger(4)
	l.Record(0, 2, 1) // pretrusted rater
	l.Record(1, 2, 1) // unknown rater: residual weight on first update
	e := NewIterativeWeighted([]int{0})
	scores := e.Scores(l)
	// Raw: node 2 gets 0.5 (pretrusted) + 0.05 (residual) = 0.55; it is
	// the only positive node, so it normalizes to 1.
	if math.Abs(scores[2]-1) > 1e-12 {
		t.Fatalf("scores = %v", scores)
	}
}

func TestIterativeWeightedPromotesTrustworthyRaters(t *testing.T) {
	l := NewLedger(4)
	l.Record(0, 1, 1) // pretrusted vouches for node 1
	e := NewIterativeWeighted([]int{0})
	first := e.Scores(l)
	if first[1] < e.TrustThreshold {
		t.Fatalf("node 1 not trusted after first update: %v", first)
	}
	// Now node 1 rates node 2: on the second update its weight must be
	// WNormal, not the residual.
	l.Record(1, 2, 1)
	second := e.Scores(l)
	// Raw: node1 = 0.5, node2 = 0.2 → normalized 0.5/0.7 and 0.2/0.7.
	if math.Abs(second[2]-0.2/0.7) > 1e-9 {
		t.Fatalf("node 2 score = %v, want %v", second[2], 0.2/0.7)
	}
}

func TestIterativeWeightedDemotesDistrustedRaters(t *testing.T) {
	const n = 8
	l := NewLedger(n)
	// Node 1 is heavily negatively rated: its own ratings should carry
	// only the residual weight on the next update.
	l.Record(0, 2, 1) // establish some positive mass elsewhere
	for k := 0; k < 20; k++ {
		l.Record(3+k%5, 1, -1)
	}
	e := NewIterativeWeighted([]int{0})
	e.Scores(l)
	l.Record(1, 4, 1)
	scores := e.Scores(l)
	// Node 4's only rater is distrusted node 1: raw 0.05; node 2's rater
	// is pretrusted: raw 0.5. Ratio after normalization must be 10x.
	if scores[4] <= 0 || math.Abs(scores[2]/scores[4]-10) > 1e-6 {
		t.Fatalf("scores = %v, want node2/node4 = 10", scores)
	}
}

func TestIterativeWeightedReset(t *testing.T) {
	l := NewLedger(3)
	l.Record(0, 1, 1)
	e := NewIterativeWeighted([]int{0})
	a := e.Scores(l)
	e.Reset()
	b := e.Scores(l)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Reset did not restore initial state: %v vs %v", a, b)
		}
	}
}

func TestIterativeWeightedNormalizedOutput(t *testing.T) {
	l := NewLedger(6)
	for k := 0; k < 30; k++ {
		l.Record(k%6, (k+1)%6, 1)
	}
	e := NewIterativeWeighted([]int{0})
	if err := CheckDistribution(e.Scores(l), 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestIterativeWeightedCostAccounting(t *testing.T) {
	var meter metrics.CostMeter
	l := NewLedger(5)
	l.Record(0, 1, 1)
	e := NewIterativeWeighted([]int{0})
	e.Meter = &meter
	e.Scores(l)
	e.Scores(l)
	if got := meter.Get(metrics.CostEigenMulAdd); got != 2*25 {
		t.Fatalf("cost = %d, want 50 (2 updates x n^2)", got)
	}
}

func TestIterativeWeightedName(t *testing.T) {
	if NewIterativeWeighted(nil).Name() != "iterative-weighted" {
		t.Fatal("wrong engine name")
	}
}

// Package reputation implements the rating ledger and the reputation
// engines the paper builds on: the eBay/Amazon-style summation score used
// to derive the optimized detector's Formula (1), the weighted-sum scoring
// the paper describes in Section V (normal raters weighted w1=0.2,
// pretrusted raters w2=0.5), and the full EigenTrust algorithm (normalized
// local trust, pretrust vector, damped power iteration) from the paper's
// reference [9].
package reputation

import (
	"fmt"
	"slices"
)

// Ledger accumulates the ratings of one global-reputation period T for a
// fixed population of n nodes (indices 0..n-1).
//
// Index convention (matching the paper's rating matrix in Section IV-B):
// the first index is the *target* (the rated node n_i) and the second is
// the *rater* (n_j). So PairTotal(i, j) is the paper's N_(i,j): the number
// of ratings n_i received from n_j during T.
//
// Storage is CSR-style sparse: each target row keeps its active raters in
// an ascending adjacency list with the per-pair counts in aligned columns,
// so total memory is O(n + nnz) where nnz is the number of nonzero
// (target, rater) pairs — never the dense n² the paper's matrix notation
// suggests. The rating matrix is extremely sparse in the paper's traces
// (characteristic C4: the average Amazon pair trades about once a year),
// which is what makes population sizes around n=100,000 practical.
//
// Rows live in a chunked arena (see arena.go): each row is a power-of-two
// span of four parallel int32 columns inside large shared blocks, resized
// by moving between size classes whose spans recycle through intrusive
// free lists. Mutation therefore allocates only when the arena grows a
// block — never per rating and never per merged row — which is what keeps
// Record, Merge and Subtract allocation-free in the steady state.
//
// Ledger is not safe for concurrent mutation; the simulation engine is
// deterministic and single-threaded by design.
type Ledger struct {
	n int

	// rows[target] locates the target's adjacency span in the arena:
	// ascending active raters with aligned total/pos/neg counts. Detection
	// inner loops iterate these spans instead of scanning all n columns,
	// which is what makes the hot path cost proportional to the number of
	// nonzero pairs. A neutral (polarity 0) rating counts toward the total
	// only, so neg is not derivable from total-pos.
	rows []rowRef
	ar   arena

	recvTotal []int64 // N_i per target
	recvPos   []int64
	recvNeg   []int64
	sentTotal []int64 // outgoing ratings per rater

	// dirty/dirtyList track which target rows changed since the last
	// ClearDirty — the deterministic dirty set incremental detection keys
	// its candidate maintenance on (see DirtyTargets). rowGen counts every
	// mutation of a row, monotonically and independently of ClearDirty —
	// the per-target generation incremental detection keys its memoized
	// pair screens on (see RowGen).
	dirty     []bool
	dirtyList []int32
	rowGen    []uint64
}

// NewLedger creates an empty ledger for n nodes. It panics if n <= 0.
// Allocation is O(n): the per-pair count storage grows with the number of
// distinct rating pairs actually recorded.
func NewLedger(n int) *Ledger {
	if n <= 0 {
		panic(fmt.Sprintf("reputation: NewLedger(%d), want n > 0", n))
	}
	return &Ledger{
		n:         n,
		rows:      make([]rowRef, n),
		ar:        arena{bumpBlk: -1},
		recvTotal: make([]int64, n),
		recvPos:   make([]int64, n),
		recvNeg:   make([]int64, n),
		sentTotal: make([]int64, n),
		dirty:     make([]bool, n),
		rowGen:    make([]uint64, n),
	}
}

// Size returns the node population the ledger covers.
func (l *Ledger) Size() int { return l.n }

// row returns the four live column views of target's adjacency span (nil
// for an empty row).
func (l *Ledger) row(target int) (rs, tot, pos, neg []int32) {
	r := l.rows[target]
	if r.class == 0 {
		return nil, nil, nil, nil
	}
	return l.ar.spanViews(r, r.n)
}

// Record stores one rating of polarity -1, 0 or +1 from rater about target.
// It panics on out-of-range indices, self-ratings, or invalid polarity,
// because those are programming errors in the caller, not data conditions.
//
//colsim:hotpath
func (l *Ledger) Record(rater, target, polarity int) {
	if rater < 0 || rater >= l.n || target < 0 || target >= l.n {
		panic(fmt.Sprintf("reputation: Record(%d, %d) out of range [0,%d)", rater, target, l.n))
	}
	if rater == target {
		panic(fmt.Sprintf("reputation: node %d rated itself", rater))
	}
	if polarity < -1 || polarity > 1 {
		panic(fmt.Sprintf("reputation: polarity %d, want -1, 0 or 1", polarity))
	}
	rs, tot, pos, neg := l.row(target)
	idx, found := findRater(rs, int32(rater))
	if !found {
		l.insertRaterAt(target, idx, int32(rater))
		_, tot, pos, neg = l.row(target)
	}
	tot[idx]++
	l.recvTotal[target]++
	l.sentTotal[rater]++
	switch polarity {
	case 1:
		pos[idx]++
		l.recvPos[target]++
	case -1:
		neg[idx]++
		l.recvNeg[target]++
	}
	l.markDirty(target)
}

// findRater binary-searches an ascending adjacency list. It returns the
// index of rater when present, else the insertion position.
func findRater(rs []int32, rater int32) (int, bool) {
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rs[mid] < rater {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(rs) && rs[lo] == rater
}

// insertRaterAt adds rater to target's adjacency at position idx, keeping
// all four aligned columns in ascending-rater order with zero counts.
// Lists stay short on sparse workloads, so the shifting insert is cheap; a
// full span moves to the next size class through the arena free lists, so
// growth allocates nothing once the arena blocks exist.
func (l *Ledger) insertRaterAt(target, idx int, rater int32) {
	r := &l.rows[target]
	switch {
	case r.class == 0:
		r.blk, r.off = l.ar.alloc(arenaMinClass)
		r.class = arenaMinClass
	case r.n == rowCap(r.class):
		l.growRow(r)
	}
	n := int(r.n)
	rs, tot, pos, neg := l.ar.spanViews(*r, r.n+1)
	copy(rs[idx+1:], rs[idx:n])
	copy(tot[idx+1:], tot[idx:n])
	copy(pos[idx+1:], pos[idx:n])
	copy(neg[idx+1:], neg[idx:n])
	rs[idx], tot[idx], pos[idx], neg[idx] = rater, 0, 0, 0
	r.n++
}

// growRow moves a full row span to the next size class, recycling the old
// span through its class free list.
func (l *Ledger) growRow(r *rowRef) {
	class := r.class + 1
	blk, off := l.ar.alloc(class)
	l.ar.copySpan(blk, off, r.blk, r.off, r.n)
	l.ar.freeSpan(r.blk, r.off, r.class)
	r.blk, r.off, r.class = blk, off, class
}

// RatersOf returns the ascending indices of every rater that has rated
// target at least once this period: exactly the j with PairTotal(target, j)
// > 0. The returned slice is a live view into the ledger — callers must
// not modify it, and it is invalidated by the next Record, Merge or Reset.
func (l *Ledger) RatersOf(target int) []int32 {
	rs, _, _, _ := l.row(target)
	return rs
}

// PairCounts is one target row's adjacency with its aligned per-pair
// counts: for each k, Raters[k] rated the target Total[k] times, Pos[k]
// positively and Neg[k] negatively. Raters is ascending.
type PairCounts struct {
	Raters []int32
	Total  []int32
	Pos    []int32
	Neg    []int32
}

// PairCountsOf returns target's active raters together with the aligned
// rating counts, so detection and scoring loops read N_(i,j) in the same
// pass as the adjacency with no per-pair lookup. Live view, same
// invalidation rules as RatersOf.
func (l *Ledger) PairCountsOf(target int) PairCounts {
	rs, tot, pos, neg := l.row(target)
	return PairCounts{Raters: rs, Total: tot, Pos: pos, Neg: neg}
}

// DirtyTargets returns, ascending, every target whose received-rating row
// changed (Record, Merge, Subtract or Reset) since the last ClearDirty —
// or since creation. The set depends only on the sequence of mutations,
// never on map order or timing, so passing it to the incremental detectors
// keeps seeded runs deterministic. The returned slice is freshly
// allocated.
func (l *Ledger) DirtyTargets() []int {
	if len(l.dirtyList) == 0 {
		return nil
	}
	out := make([]int, len(l.dirtyList))
	for i, t := range l.dirtyList {
		out[i] = int(t)
	}
	slices.Sort(out)
	return out
}

// DirtyCount returns how many target rows are currently dirty — the size
// of the DirtyTargets set without paying for its allocation and sort.
func (l *Ledger) DirtyCount() int { return len(l.dirtyList) }

// ClearDirty empties the dirty-target set. Callers snapshot DirtyTargets,
// feed it to incremental detection, then clear. Row generations are not
// affected: they advance monotonically for the life of the ledger.
func (l *Ledger) ClearDirty() {
	for _, t := range l.dirtyList {
		l.dirty[t] = false
	}
	l.dirtyList = l.dirtyList[:0]
}

// RowGen returns target's row generation: a counter advanced by every
// mutation that touches the row (Record, Merge, Subtract, Reset),
// independent of ClearDirty. Two reads returning the same value bracket a
// window in which every row-derived statistic — pair counts, receive
// totals, the summation score — was unchanged, which is what lets the
// incremental detectors replay memoized pair screens across in-place
// ledger mutations instead of keying on ledger identity.
func (l *Ledger) RowGen(target int) uint64 { return l.rowGen[target] }

func (l *Ledger) markDirty(target int) {
	l.rowGen[target]++
	if !l.dirty[target] {
		l.dirty[target] = true
		l.dirtyList = append(l.dirtyList, int32(target)) //colsimlint:ignore hotalloc grows once per newly-dirty target and is truncated in place by ClearDirty, so steady state re-uses the backing array
	}
}

// Reset clears the ledger for a new period T. Cost is O(n): every row
// span returns to its arena free list, so the next period's rows recycle
// the same chunks — the sharded ingest deltas and the window ring rely on
// this to stay allocation-free across batches.
func (l *Ledger) Reset() {
	for t := range l.rows {
		r := &l.rows[t]
		if r.class == 0 {
			continue
		}
		l.markDirty(t)
		l.ar.freeSpan(r.blk, r.off, r.class)
		*r = rowRef{}
	}
	clearInt64(l.recvTotal)
	clearInt64(l.recvPos)
	clearInt64(l.recvNeg)
	clearInt64(l.sentTotal)
}

func clearInt64(xs []int64) {
	for i := range xs {
		xs[i] = 0
	}
}

// TotalFor returns N_i: all ratings target received in T.
func (l *Ledger) TotalFor(target int) int { return int(l.recvTotal[target]) }

// PositiveFor returns N+_i: positive ratings target received in T.
func (l *Ledger) PositiveFor(target int) int { return int(l.recvPos[target]) }

// NegativeFor returns N-_i: negative ratings target received in T.
func (l *Ledger) NegativeFor(target int) int { return int(l.recvNeg[target]) }

// OutgoingTotal returns the number of ratings rater issued in T, across
// all targets. The Sybil detector uses it to measure a rater's
// concentration on one beneficiary.
func (l *Ledger) OutgoingTotal(rater int) int { return int(l.sentTotal[rater]) }

// PairTotal returns N_(i,j): ratings target i received from rater j.
// Random access binary-searches the row adjacency; loops that walk a whole
// row should use PairCountsOf instead.
func (l *Ledger) PairTotal(target, rater int) int {
	rs, tot, _, _ := l.row(target)
	if idx, found := findRater(rs, int32(rater)); found {
		return int(tot[idx])
	}
	return 0
}

// PairPositive returns N+_(i,j).
func (l *Ledger) PairPositive(target, rater int) int {
	rs, _, pos, _ := l.row(target)
	if idx, found := findRater(rs, int32(rater)); found {
		return int(pos[idx])
	}
	return 0
}

// PairNegative returns N-_(i,j).
func (l *Ledger) PairNegative(target, rater int) int {
	rs, _, _, neg := l.row(target)
	if idx, found := findRater(rs, int32(rater)); found {
		return int(neg[idx])
	}
	return 0
}

// OthersTotal returns N_(i,-j): ratings target i received from everyone
// except rater j.
func (l *Ledger) OthersTotal(target, rater int) int {
	return int(l.recvTotal[target]) - l.PairTotal(target, rater)
}

// OthersPositive returns N+_(i,-j).
func (l *Ledger) OthersPositive(target, rater int) int {
	return int(l.recvPos[target]) - l.PairPositive(target, rater)
}

// SummationScore returns the eBay-style reputation of target: the sum of
// all received rating values (positives minus negatives), as defined in
// Section IV-A.
func (l *Ledger) SummationScore(target int) int {
	return int(l.recvPos[target] - l.recvNeg[target])
}

// LocalTrust returns s_ij, rater i's satisfaction with node j: positive
// minus negative ratings i gave j. This is the EigenTrust local trust
// input before normalization.
func (l *Ledger) LocalTrust(rater, target int) int {
	rs, _, pos, neg := l.row(target)
	if idx, found := findRater(rs, int32(rater)); found {
		return int(pos[idx] - neg[idx])
	}
	return 0
}

// Clone returns a deep copy of the ledger, including its dirty set and row
// generations. The clone's arena is rebuilt compactly: each row lands in
// the smallest span class that holds it.
//
// The clone owns its storage outright: no span, column view or counter is
// shared with the original, so the two ledgers may mutate — Record, Merge,
// Subtract, even Reset, in any interleaving — without ever observing each
// other. In particular a Reset of the original recycles only the
// *original's* arena spans through its own free lists; the clone's rows
// live in the clone's arena and are untouched. The arena-recycling
// property test in ledger_clone_test.go pins this across clone/mutate/
// Reset interleavings against a dense reference.
func (l *Ledger) Clone() *Ledger {
	c := NewLedger(l.n)
	l.CloneInto(c)
	return c
}

// CloneInto freezes l's current contents into dst, which must cover the
// same population. dst's previous contents are discarded: every existing
// row span returns to dst's arena free lists before the copy, so repeated
// CloneInto calls into the same destination recycle the same chunks and
// allocate only while dst's arena is still growing toward l's footprint —
// the steady state is allocation-free. This is the snapshot freeze path of
// the resident service (internal/service): the single writer clones the
// period ledger into a recycled snapshot ledger each epoch, and concurrent
// readers of previously published clones are safe because, like Clone, the
// destination shares no storage with l.
//
// dst's dirty set, dirty list and row generations are overwritten with
// copies of l's, exactly as Clone produces. It panics if the populations
// differ: recycling a snapshot across population changes is a programming
// error.
func (l *Ledger) CloneInto(dst *Ledger) {
	if dst.n != l.n {
		panic(fmt.Sprintf("reputation: CloneInto ledger of size %d from size %d", dst.n, l.n))
	}
	for t := range dst.rows {
		r := &dst.rows[t]
		if r.class == 0 {
			continue
		}
		dst.ar.freeSpan(r.blk, r.off, r.class)
		*r = rowRef{}
	}
	for t := 0; t < l.n; t++ {
		rs, tot, pos, neg := l.row(t)
		if len(rs) == 0 {
			continue
		}
		class := classFor(len(rs))
		blk, off := dst.ar.alloc(class)
		dst.rows[t] = rowRef{blk: blk, off: off, n: int32(len(rs)), class: class}
		dr, dt, dp, dn := dst.ar.spanViews(dst.rows[t], int32(len(rs)))
		copy(dr, rs)
		copy(dt, tot)
		copy(dp, pos)
		copy(dn, neg)
	}
	copy(dst.recvTotal, l.recvTotal)
	copy(dst.recvPos, l.recvPos)
	copy(dst.recvNeg, l.recvNeg)
	copy(dst.sentTotal, l.sentTotal)
	copy(dst.dirty, l.dirty)
	dst.dirtyList = append(dst.dirtyList[:0], l.dirtyList...)
	copy(dst.rowGen, l.rowGen)
}

// Merge adds every count of other into l. Both ledgers must cover the same
// population. Only other's nonzero rows are visited, so merging costs
// O(n + nnz(l) + nnz(other)) — not the dense n² walk.
//
//colsim:hotpath
func (l *Ledger) Merge(other *Ledger) error {
	if other.n != l.n {
		return fmt.Errorf("reputation: merging ledger of size %d into size %d", other.n, l.n) //colsimlint:ignore hotalloc size-mismatch guard; allocates only on caller error, never in a valid merge
	}
	for t := 0; t < l.n; t++ {
		if other.rows[t].n == 0 {
			continue
		}
		l.mergeRow(t, other)
		l.recvTotal[t] += other.recvTotal[t]
		l.recvPos[t] += other.recvPos[t]
		l.recvNeg[t] += other.recvNeg[t]
		l.markDirty(t)
	}
	for r := 0; r < l.n; r++ {
		l.sentTotal[r] += other.sentTotal[r]
	}
	return nil
}

// Subtract removes every count of other from l — the exact inverse of
// Merge. Both ledgers must cover the same population, and other must be a
// sub-ledger of l: every count it holds must be present in l with at least
// that value. Raters whose pair total reaches zero are dropped from the
// row adjacency, so subtracting a period delta leaves the ledger
// observationally identical to a fresh merge of the remaining periods —
// this is what lets a sliding window retire its expiring cycle without
// re-merging the whole ring (see internal/ingest.WindowLedger). Underflow
// panics: handing Subtract anything but a recorded sub-ledger is a
// programming error, not a data condition. Rows are compacted in place, so
// live PairCountsOf/RatersOf views of l are invalidated.
//
//colsim:hotpath
func (l *Ledger) Subtract(other *Ledger) error {
	if other.n != l.n {
		return fmt.Errorf("reputation: subtracting ledger of size %d from size %d", other.n, l.n) //colsimlint:ignore hotalloc size-mismatch guard; allocates only on caller error, never in a valid subtract
	}
	for t := 0; t < l.n; t++ {
		if other.rows[t].n == 0 {
			continue
		}
		l.subtractRow(t, other)
		l.recvTotal[t] -= other.recvTotal[t]
		l.recvPos[t] -= other.recvPos[t]
		l.recvNeg[t] -= other.recvNeg[t]
		if l.recvTotal[t] < 0 || l.recvPos[t] < 0 || l.recvNeg[t] < 0 {
			panic(fmt.Sprintf("reputation: Subtract underflow on target %d totals", t))
		}
		l.markDirty(t)
	}
	for r := 0; r < l.n; r++ {
		l.sentTotal[r] -= other.sentTotal[r]
		if l.sentTotal[r] < 0 {
			panic(fmt.Sprintf("reputation: Subtract underflow on rater %d outgoing total", r))
		}
	}
	return nil
}

// subtractRow removes other's row for target t from l's, compacting the
// aligned adjacency in place and keeping it ascending. Every rater of
// other's row must appear in l's with counts at least as large. A row
// emptied by the subtraction releases its span back to the arena.
func (l *Ledger) subtractRow(t int, other *Ledger) {
	a, at, ap, an := l.row(t)
	b, bt, bp, bn := other.row(t)
	out, j := 0, 0
	for i := 0; i < len(a); i++ {
		tot, pos, neg := at[i], ap[i], an[i]
		if j < len(b) && b[j] == a[i] {
			tot -= bt[j]
			pos -= bp[j]
			neg -= bn[j]
			j++
		}
		if tot < 0 || pos < 0 || neg < 0 {
			panic(fmt.Sprintf("reputation: Subtract underflow on pair (%d, %d)", t, a[i]))
		}
		if tot == 0 {
			// A zero total forces zero splits (pos+neg <= tot per pair), so
			// the rater leaves the adjacency entirely.
			if pos != 0 || neg != 0 {
				panic(fmt.Sprintf("reputation: Subtract left pair (%d, %d) with zero total but %d/%d splits",
					t, a[i], pos, neg))
			}
			continue
		}
		a[out] = a[i]
		at[out] = tot
		ap[out] = pos
		an[out] = neg
		out++
	}
	if j < len(b) {
		panic(fmt.Sprintf("reputation: Subtract of rater %d absent from target %d's row", b[j], t))
	}
	r := &l.rows[t]
	r.n = int32(out)
	if out == 0 {
		l.ar.freeSpan(r.blk, r.off, r.class)
		*r = rowRef{}
	}
}

// mergeRow folds other's row for target t into l's, keeping the aligned
// adjacency ascending. A fresh destination row copies into a recycled span
// of the right class; a union that fits the existing span merges backward
// in place; only a union outgrowing the span moves the row to a larger
// class — and the outgrown span goes straight back on its free list, so no
// path here allocates once the arena is warm.
func (l *Ledger) mergeRow(t int, other *Ledger) {
	b, bt, bp, bn := other.row(t)
	a, at, ap, an := l.row(t)
	if len(a) == 0 {
		class := classFor(len(b))
		r := &l.rows[t]
		r.blk, r.off = l.ar.alloc(class)
		r.n, r.class = int32(len(b)), class
		dr, dt, dp, dn := l.ar.spanViews(*r, r.n)
		copy(dr, b)
		copy(dt, bt)
		copy(dp, bp)
		copy(dn, bn)
		return
	}
	u := unionLen(a, b)
	r := &l.rows[t]
	if int32(u) > rowCap(r.class) {
		class := classFor(u)
		blk, off := l.ar.alloc(class)
		moved := rowRef{blk: blk, off: off, n: r.n, class: class}
		l.ar.copySpan(blk, off, r.blk, r.off, r.n)
		l.ar.freeSpan(r.blk, r.off, r.class)
		*r = moved
		a, at, ap, an = l.row(t)
	}
	// Backward in-place merge: the write cursor never passes an unread
	// element of a (w >= i always holds because the union is at least as
	// long as a's unread prefix), so the row merges without scratch
	// storage even when a and b alias.
	mr, mt, mp, mn := l.ar.spanViews(*r, int32(u))
	i, j, w := len(a)-1, len(b)-1, u-1
	for j >= 0 {
		switch {
		case i >= 0 && a[i] > b[j]:
			mr[w], mt[w], mp[w], mn[w] = a[i], at[i], ap[i], an[i]
			i--
		case i >= 0 && a[i] == b[j]:
			mr[w], mt[w], mp[w], mn[w] = a[i], at[i]+bt[j], ap[i]+bp[j], an[i]+bn[j]
			i--
			j--
		default:
			mr[w], mt[w], mp[w], mn[w] = b[j], bt[j], bp[j], bn[j]
			j--
		}
		w--
	}
	r.n = int32(u)
}

// unionLen counts the distinct raters of two ascending adjacency lists.
func unionLen(a, b []int32) int {
	i, j, u := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
		u++
	}
	return u + (len(a) - i) + (len(b) - j)
}

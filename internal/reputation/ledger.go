// Package reputation implements the rating ledger and the reputation
// engines the paper builds on: the eBay/Amazon-style summation score used
// to derive the optimized detector's Formula (1), the weighted-sum scoring
// the paper describes in Section V (normal raters weighted w1=0.2,
// pretrusted raters w2=0.5), and the full EigenTrust algorithm (normalized
// local trust, pretrust vector, damped power iteration) from the paper's
// reference [9].
package reputation

import (
	"fmt"
)

// Ledger accumulates the ratings of one global-reputation period T for a
// fixed population of n nodes (indices 0..n-1).
//
// Index convention (matching the paper's rating matrix in Section IV-B):
// the first index is the *target* (the rated node n_i) and the second is
// the *rater* (n_j). So PairTotal(i, j) is the paper's N_(i,j): the number
// of ratings n_i received from n_j during T.
//
// Storage is CSR-style sparse: each target row keeps its active raters in
// an ascending adjacency list with the per-pair counts in aligned slices,
// so total memory is O(n + nnz) where nnz is the number of nonzero
// (target, rater) pairs — never the dense n² the paper's matrix notation
// suggests. The rating matrix is extremely sparse in the paper's traces
// (characteristic C4: the average Amazon pair trades about once a year),
// which is what makes population sizes around n=100,000 practical.
//
// Ledger is not safe for concurrent mutation; the simulation engine is
// deterministic and single-threaded by design.
type Ledger struct {
	n int

	// raters[target] lists, in ascending order, every rater j with
	// N_(target,j) > 0 — the target's active-rater adjacency. Detection
	// inner loops iterate these lists instead of scanning all n columns,
	// which is what makes the hot path cost proportional to the number of
	// nonzero pairs.
	raters [][]int32
	// cntTotal/cntPos/cntNeg are aligned with raters: cntTotal[target][k]
	// is N_(target, raters[target][k]), and likewise for the positive and
	// negative splits. A neutral (polarity 0) rating counts toward the
	// total only, so neg is not derivable from total-pos.
	cntTotal [][]int32
	cntPos   [][]int32
	cntNeg   [][]int32

	recvTotal []int64 // N_i per target
	recvPos   []int64
	recvNeg   []int64
	sentTotal []int64 // outgoing ratings per rater

	// dirty/dirtyList track which target rows changed since the last
	// ClearDirty — the deterministic dirty set incremental detection keys
	// its per-pair memoization on (see DirtyTargets).
	dirty     []bool
	dirtyList []int32
}

// NewLedger creates an empty ledger for n nodes. It panics if n <= 0.
// Allocation is O(n): the per-pair count storage grows with the number of
// distinct rating pairs actually recorded.
func NewLedger(n int) *Ledger {
	if n <= 0 {
		panic(fmt.Sprintf("reputation: NewLedger(%d), want n > 0", n))
	}
	return &Ledger{
		n:         n,
		raters:    make([][]int32, n),
		cntTotal:  make([][]int32, n),
		cntPos:    make([][]int32, n),
		cntNeg:    make([][]int32, n),
		recvTotal: make([]int64, n),
		recvPos:   make([]int64, n),
		recvNeg:   make([]int64, n),
		sentTotal: make([]int64, n),
		dirty:     make([]bool, n),
	}
}

// Size returns the node population the ledger covers.
func (l *Ledger) Size() int { return l.n }

// Record stores one rating of polarity -1, 0 or +1 from rater about target.
// It panics on out-of-range indices, self-ratings, or invalid polarity,
// because those are programming errors in the caller, not data conditions.
//
//colsim:hotpath
func (l *Ledger) Record(rater, target, polarity int) {
	if rater < 0 || rater >= l.n || target < 0 || target >= l.n {
		panic(fmt.Sprintf("reputation: Record(%d, %d) out of range [0,%d)", rater, target, l.n))
	}
	if rater == target {
		panic(fmt.Sprintf("reputation: node %d rated itself", rater))
	}
	if polarity < -1 || polarity > 1 {
		panic(fmt.Sprintf("reputation: polarity %d, want -1, 0 or 1", polarity))
	}
	idx, found := findRater(l.raters[target], int32(rater))
	if !found {
		l.insertRaterAt(target, idx, int32(rater))
	}
	l.cntTotal[target][idx]++
	l.recvTotal[target]++
	l.sentTotal[rater]++
	switch polarity {
	case 1:
		l.cntPos[target][idx]++
		l.recvPos[target]++
	case -1:
		l.cntNeg[target][idx]++
		l.recvNeg[target]++
	}
	l.markDirty(target)
}

// findRater binary-searches an ascending adjacency list. It returns the
// index of rater when present, else the insertion position.
func findRater(rs []int32, rater int32) (int, bool) {
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rs[mid] < rater {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(rs) && rs[lo] == rater
}

// insertRaterAt adds rater to target's adjacency at position idx, keeping
// all four aligned slices in ascending-rater order with zero counts. Lists
// stay short on sparse workloads, so the shifting insert is cheap.
func (l *Ledger) insertRaterAt(target, idx int, rater int32) {
	l.raters[target] = insert32(l.raters[target], idx, rater)
	l.cntTotal[target] = insert32(l.cntTotal[target], idx, 0)
	l.cntPos[target] = insert32(l.cntPos[target], idx, 0)
	l.cntNeg[target] = insert32(l.cntNeg[target], idx, 0)
}

// insert32 inserts v at position i, shifting the tail right.
func insert32(xs []int32, i int, v int32) []int32 {
	// This append is the ledger-build allocation storm BENCH_detect.json
	// measures (~1.46M allocs building the n=100k ledger): every first
	// rating of a (target, rater) pair may grow four row slices. The
	// ROADMAP's chunked/arena row storage is the planned fix.
	xs = append(xs, 0) //colsimlint:ignore hotalloc row growth on first rating of a pair; retired by the ROADMAP arena row storage
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// RatersOf returns the ascending indices of every rater that has rated
// target at least once this period: exactly the j with PairTotal(target, j)
// > 0. The returned slice is a live view into the ledger — callers must
// not modify it, and it is invalidated by the next Record, Merge or Reset.
func (l *Ledger) RatersOf(target int) []int32 {
	return l.raters[target]
}

// PairCounts is one target row's adjacency with its aligned per-pair
// counts: for each k, Raters[k] rated the target Total[k] times, Pos[k]
// positively and Neg[k] negatively. Raters is ascending.
type PairCounts struct {
	Raters []int32
	Total  []int32
	Pos    []int32
	Neg    []int32
}

// PairCountsOf returns target's active raters together with the aligned
// rating counts, so detection and scoring loops read N_(i,j) in the same
// pass as the adjacency with no per-pair lookup. Live view, same
// invalidation rules as RatersOf.
func (l *Ledger) PairCountsOf(target int) PairCounts {
	return PairCounts{
		Raters: l.raters[target],
		Total:  l.cntTotal[target],
		Pos:    l.cntPos[target],
		Neg:    l.cntNeg[target],
	}
}

// DirtyTargets returns, ascending, every target whose received-rating row
// changed (Record, Merge or Reset) since the last ClearDirty — or since
// creation. The set depends only on the sequence of mutations, never on
// map order or timing, so passing it to the incremental detectors keeps
// seeded runs deterministic. The returned slice is freshly allocated.
func (l *Ledger) DirtyTargets() []int {
	if len(l.dirtyList) == 0 {
		return nil
	}
	out := make([]int, len(l.dirtyList))
	for i, t := range l.dirtyList {
		out[i] = int(t)
	}
	sortInts(out)
	return out
}

// ClearDirty empties the dirty-target set. Callers snapshot DirtyTargets,
// feed it to incremental detection, then clear.
func (l *Ledger) ClearDirty() {
	for _, t := range l.dirtyList {
		l.dirty[t] = false
	}
	l.dirtyList = l.dirtyList[:0]
}

func (l *Ledger) markDirty(target int) {
	if !l.dirty[target] {
		l.dirty[target] = true
		l.dirtyList = append(l.dirtyList, int32(target)) //colsimlint:ignore hotalloc grows once per newly-dirty target and is truncated in place by ClearDirty, so steady state re-uses the backing array
	}
}

// sortInts is an allocation-free insertion sort; dirty lists are short
// (bounded by the targets touched in one period).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Reset clears the ledger for a new period T. Cost is O(n): per-target
// slices are truncated in place, keeping their storage for reuse.
func (l *Ledger) Reset() {
	for i := range l.raters {
		if len(l.raters[i]) > 0 {
			l.markDirty(i)
		}
		l.raters[i] = l.raters[i][:0]
		l.cntTotal[i] = l.cntTotal[i][:0]
		l.cntPos[i] = l.cntPos[i][:0]
		l.cntNeg[i] = l.cntNeg[i][:0]
	}
	clearInt64(l.recvTotal)
	clearInt64(l.recvPos)
	clearInt64(l.recvNeg)
	clearInt64(l.sentTotal)
}

func clearInt64(xs []int64) {
	for i := range xs {
		xs[i] = 0
	}
}

// TotalFor returns N_i: all ratings target received in T.
func (l *Ledger) TotalFor(target int) int { return int(l.recvTotal[target]) }

// PositiveFor returns N+_i: positive ratings target received in T.
func (l *Ledger) PositiveFor(target int) int { return int(l.recvPos[target]) }

// NegativeFor returns N-_i: negative ratings target received in T.
func (l *Ledger) NegativeFor(target int) int { return int(l.recvNeg[target]) }

// OutgoingTotal returns the number of ratings rater issued in T, across
// all targets. The Sybil detector uses it to measure a rater's
// concentration on one beneficiary.
func (l *Ledger) OutgoingTotal(rater int) int { return int(l.sentTotal[rater]) }

// PairTotal returns N_(i,j): ratings target i received from rater j.
// Random access binary-searches the row adjacency; loops that walk a whole
// row should use PairCountsOf instead.
func (l *Ledger) PairTotal(target, rater int) int {
	if idx, found := findRater(l.raters[target], int32(rater)); found {
		return int(l.cntTotal[target][idx])
	}
	return 0
}

// PairPositive returns N+_(i,j).
func (l *Ledger) PairPositive(target, rater int) int {
	if idx, found := findRater(l.raters[target], int32(rater)); found {
		return int(l.cntPos[target][idx])
	}
	return 0
}

// PairNegative returns N-_(i,j).
func (l *Ledger) PairNegative(target, rater int) int {
	if idx, found := findRater(l.raters[target], int32(rater)); found {
		return int(l.cntNeg[target][idx])
	}
	return 0
}

// OthersTotal returns N_(i,-j): ratings target i received from everyone
// except rater j.
func (l *Ledger) OthersTotal(target, rater int) int {
	return int(l.recvTotal[target]) - l.PairTotal(target, rater)
}

// OthersPositive returns N+_(i,-j).
func (l *Ledger) OthersPositive(target, rater int) int {
	return int(l.recvPos[target]) - l.PairPositive(target, rater)
}

// SummationScore returns the eBay-style reputation of target: the sum of
// all received rating values (positives minus negatives), as defined in
// Section IV-A.
func (l *Ledger) SummationScore(target int) int {
	return int(l.recvPos[target] - l.recvNeg[target])
}

// LocalTrust returns s_ij, rater i's satisfaction with node j: positive
// minus negative ratings i gave j. This is the EigenTrust local trust
// input before normalization.
func (l *Ledger) LocalTrust(rater, target int) int {
	if idx, found := findRater(l.raters[target], int32(rater)); found {
		return int(l.cntPos[target][idx] - l.cntNeg[target][idx])
	}
	return 0
}

// Clone returns a deep copy of the ledger, including its dirty set.
func (l *Ledger) Clone() *Ledger {
	c := NewLedger(l.n)
	for i := range l.raters {
		c.raters[i] = append([]int32(nil), l.raters[i]...)
		c.cntTotal[i] = append([]int32(nil), l.cntTotal[i]...)
		c.cntPos[i] = append([]int32(nil), l.cntPos[i]...)
		c.cntNeg[i] = append([]int32(nil), l.cntNeg[i]...)
	}
	copy(c.recvTotal, l.recvTotal)
	copy(c.recvPos, l.recvPos)
	copy(c.recvNeg, l.recvNeg)
	copy(c.sentTotal, l.sentTotal)
	copy(c.dirty, l.dirty)
	c.dirtyList = append([]int32(nil), l.dirtyList...)
	return c
}

// Merge adds every count of other into l. Both ledgers must cover the same
// population. Only other's nonzero rows are visited, so merging costs
// O(n + nnz(l) + nnz(other)) — not the dense n² walk.
//
//colsim:hotpath
func (l *Ledger) Merge(other *Ledger) error {
	if other.n != l.n {
		return fmt.Errorf("reputation: merging ledger of size %d into size %d", other.n, l.n) //colsimlint:ignore hotalloc size-mismatch guard; allocates only on caller error, never in a valid merge
	}
	for t := 0; t < l.n; t++ {
		if len(other.raters[t]) == 0 {
			continue
		}
		l.mergeRow(t, other)
		l.recvTotal[t] += other.recvTotal[t]
		l.recvPos[t] += other.recvPos[t]
		l.recvNeg[t] += other.recvNeg[t]
		l.markDirty(t)
	}
	for r := 0; r < l.n; r++ {
		l.sentTotal[r] += other.sentTotal[r]
	}
	return nil
}

// Subtract removes every count of other from l — the exact inverse of
// Merge. Both ledgers must cover the same population, and other must be a
// sub-ledger of l: every count it holds must be present in l with at least
// that value. Raters whose pair total reaches zero are dropped from the
// row adjacency, so subtracting a period delta leaves the ledger
// observationally identical to a fresh merge of the remaining periods —
// this is what lets a sliding window retire its expiring cycle without
// re-merging the whole ring (see internal/ingest.WindowLedger). Underflow
// panics: handing Subtract anything but a recorded sub-ledger is a
// programming error, not a data condition. Rows are compacted in place, so
// live PairCountsOf/RatersOf views of l are invalidated.
//
//colsim:hotpath
func (l *Ledger) Subtract(other *Ledger) error {
	if other.n != l.n {
		return fmt.Errorf("reputation: subtracting ledger of size %d from size %d", other.n, l.n) //colsimlint:ignore hotalloc size-mismatch guard; allocates only on caller error, never in a valid subtract
	}
	for t := 0; t < l.n; t++ {
		if len(other.raters[t]) == 0 {
			continue
		}
		l.subtractRow(t, other)
		l.recvTotal[t] -= other.recvTotal[t]
		l.recvPos[t] -= other.recvPos[t]
		l.recvNeg[t] -= other.recvNeg[t]
		if l.recvTotal[t] < 0 || l.recvPos[t] < 0 || l.recvNeg[t] < 0 {
			panic(fmt.Sprintf("reputation: Subtract underflow on target %d totals", t))
		}
		l.markDirty(t)
	}
	for r := 0; r < l.n; r++ {
		l.sentTotal[r] -= other.sentTotal[r]
		if l.sentTotal[r] < 0 {
			panic(fmt.Sprintf("reputation: Subtract underflow on rater %d outgoing total", r))
		}
	}
	return nil
}

// subtractRow removes other's row for target t from l's, compacting the
// aligned adjacency in place and keeping it ascending. Every rater of
// other's row must appear in l's with counts at least as large.
func (l *Ledger) subtractRow(t int, other *Ledger) {
	a, b := l.raters[t], other.raters[t]
	out, j := 0, 0
	for i := 0; i < len(a); i++ {
		tot, pos, neg := l.cntTotal[t][i], l.cntPos[t][i], l.cntNeg[t][i]
		if j < len(b) && b[j] == a[i] {
			tot -= other.cntTotal[t][j]
			pos -= other.cntPos[t][j]
			neg -= other.cntNeg[t][j]
			j++
		}
		if tot < 0 || pos < 0 || neg < 0 {
			panic(fmt.Sprintf("reputation: Subtract underflow on pair (%d, %d)", t, a[i]))
		}
		if tot == 0 {
			// A zero total forces zero splits (pos+neg <= tot per pair), so
			// the rater leaves the adjacency entirely.
			if pos != 0 || neg != 0 {
				panic(fmt.Sprintf("reputation: Subtract left pair (%d, %d) with zero total but %d/%d splits",
					t, a[i], pos, neg))
			}
			continue
		}
		a[out] = a[i]
		l.cntTotal[t][out] = tot
		l.cntPos[t][out] = pos
		l.cntNeg[t][out] = neg
		out++
	}
	if j < len(b) {
		panic(fmt.Sprintf("reputation: Subtract of rater %d absent from target %d's row", b[j], t))
	}
	l.raters[t] = a[:out]
	l.cntTotal[t] = l.cntTotal[t][:out]
	l.cntPos[t] = l.cntPos[t][:out]
	l.cntNeg[t] = l.cntNeg[t][:out]
}

// mergeRow folds other's row for target t into l's, keeping the aligned
// adjacency ascending.
func (l *Ledger) mergeRow(t int, other *Ledger) {
	b := other.raters[t]
	a := l.raters[t]
	if len(a) == 0 {
		// Fresh row: copy other's, reusing any truncated capacity left by
		// Reset; a shard-merge steady state therefore re-uses storage.
		l.raters[t] = append(a, b...)                               //colsimlint:ignore hotalloc grows only when the row outgrows capacity retained by Reset; ROADMAP arena row storage retires it
		l.cntTotal[t] = append(l.cntTotal[t], other.cntTotal[t]...) //colsimlint:ignore hotalloc same retained-capacity reuse as the raters row above
		l.cntPos[t] = append(l.cntPos[t], other.cntPos[t]...)       //colsimlint:ignore hotalloc same retained-capacity reuse as the raters row above
		l.cntNeg[t] = append(l.cntNeg[t], other.cntNeg[t]...)       //colsimlint:ignore hotalloc same retained-capacity reuse as the raters row above
		return
	}
	// The four merged-row buffers below are the other face of the ledger
	// allocation storm: a disjoint-union merge allocates fresh rows. The
	// ROADMAP's chunked/arena row storage is the planned fix.
	mr := make([]int32, 0, len(a)+len(b)) //colsimlint:ignore hotalloc merged row must not alias either input row; sized exactly, freed when the old row is dropped
	mt := make([]int32, 0, len(a)+len(b)) //colsimlint:ignore hotalloc aligned with mr above
	mp := make([]int32, 0, len(a)+len(b)) //colsimlint:ignore hotalloc aligned with mr above
	mn := make([]int32, 0, len(a)+len(b)) //colsimlint:ignore hotalloc aligned with mr above
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			mr = append(mr, a[i])
			mt = append(mt, l.cntTotal[t][i])
			mp = append(mp, l.cntPos[t][i])
			mn = append(mn, l.cntNeg[t][i])
			i++
		case a[i] > b[j]:
			mr = append(mr, b[j])
			mt = append(mt, other.cntTotal[t][j])
			mp = append(mp, other.cntPos[t][j])
			mn = append(mn, other.cntNeg[t][j])
			j++
		default:
			mr = append(mr, a[i])
			mt = append(mt, l.cntTotal[t][i]+other.cntTotal[t][j])
			mp = append(mp, l.cntPos[t][i]+other.cntPos[t][j])
			mn = append(mn, l.cntNeg[t][i]+other.cntNeg[t][j])
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		mr = append(mr, a[i])
		mt = append(mt, l.cntTotal[t][i])
		mp = append(mp, l.cntPos[t][i])
		mn = append(mn, l.cntNeg[t][i])
	}
	for ; j < len(b); j++ {
		mr = append(mr, b[j])
		mt = append(mt, other.cntTotal[t][j])
		mp = append(mp, other.cntPos[t][j])
		mn = append(mn, other.cntNeg[t][j])
	}
	l.raters[t], l.cntTotal[t], l.cntPos[t], l.cntNeg[t] = mr, mt, mp, mn
}

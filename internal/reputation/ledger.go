// Package reputation implements the rating ledger and the reputation
// engines the paper builds on: the eBay/Amazon-style summation score used
// to derive the optimized detector's Formula (1), the weighted-sum scoring
// the paper describes in Section V (normal raters weighted w1=0.2,
// pretrusted raters w2=0.5), and the full EigenTrust algorithm (normalized
// local trust, pretrust vector, damped power iteration) from the paper's
// reference [9].
package reputation

import (
	"fmt"
)

// Ledger accumulates the ratings of one global-reputation period T for a
// fixed population of n nodes (indices 0..n-1).
//
// Index convention (matching the paper's rating matrix in Section IV-B):
// the first index is the *target* (the rated node n_i) and the second is
// the *rater* (n_j). So PairTotal(i, j) is the paper's N_(i,j): the number
// of ratings n_i received from n_j during T.
//
// Ledger is not safe for concurrent mutation; the simulation engine is
// deterministic and single-threaded by design.
type Ledger struct {
	n     int
	total []int32 // [target*n+rater] all ratings
	pos   []int32 // [target*n+rater] positive ratings
	neg   []int32 // [target*n+rater] negative ratings

	recvTotal []int64 // N_i per target
	recvPos   []int64
	recvNeg   []int64
	sentTotal []int64 // outgoing ratings per rater

	// raters[target] lists, in ascending order, every rater j with
	// N_(target,j) > 0 — the target's active-rater adjacency. Detection
	// inner loops iterate these lists instead of scanning all n columns,
	// which is what makes the hot path cost proportional to the number of
	// nonzero pairs (the matrix is ~1 rating/pair-year sparse in the
	// paper's traces, characteristic C4).
	raters [][]int32
}

// NewLedger creates an empty ledger for n nodes. It panics if n <= 0.
func NewLedger(n int) *Ledger {
	if n <= 0 {
		panic(fmt.Sprintf("reputation: NewLedger(%d), want n > 0", n))
	}
	return &Ledger{
		n:         n,
		total:     make([]int32, n*n),
		pos:       make([]int32, n*n),
		neg:       make([]int32, n*n),
		recvTotal: make([]int64, n),
		recvPos:   make([]int64, n),
		recvNeg:   make([]int64, n),
		sentTotal: make([]int64, n),
		raters:    make([][]int32, n),
	}
}

// Size returns the node population the ledger covers.
func (l *Ledger) Size() int { return l.n }

// Record stores one rating of polarity -1, 0 or +1 from rater about target.
// It panics on out-of-range indices, self-ratings, or invalid polarity,
// because those are programming errors in the caller, not data conditions.
func (l *Ledger) Record(rater, target, polarity int) {
	if rater < 0 || rater >= l.n || target < 0 || target >= l.n {
		panic(fmt.Sprintf("reputation: Record(%d, %d) out of range [0,%d)", rater, target, l.n))
	}
	if rater == target {
		panic(fmt.Sprintf("reputation: node %d rated itself", rater))
	}
	if polarity < -1 || polarity > 1 {
		panic(fmt.Sprintf("reputation: polarity %d, want -1, 0 or 1", polarity))
	}
	idx := target*l.n + rater
	if l.total[idx] == 0 {
		l.insertRater(target, int32(rater))
	}
	l.total[idx]++
	l.recvTotal[target]++
	l.sentTotal[rater]++
	switch polarity {
	case 1:
		l.pos[idx]++
		l.recvPos[target]++
	case -1:
		l.neg[idx]++
		l.recvNeg[target]++
	}
}

// insertRater adds rater to target's adjacency list, keeping it sorted
// ascending. Lists stay short on sparse workloads, so the shifting insert
// is cheap; the binary search keeps the common repeat-rating case O(log k).
func (l *Ledger) insertRater(target int, rater int32) {
	rs := l.raters[target]
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs[mid] < rater {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	rs = append(rs, 0)
	copy(rs[lo+1:], rs[lo:])
	rs[lo] = rater
	l.raters[target] = rs
}

// RatersOf returns the ascending indices of every rater that has rated
// target at least once this period: exactly the j with PairTotal(target, j)
// > 0. The returned slice is a live view into the ledger — callers must
// not modify it, and it is invalidated by the next Record, Merge or Reset.
func (l *Ledger) RatersOf(target int) []int32 {
	return l.raters[target]
}

// Reset clears the ledger for a new period T.
func (l *Ledger) Reset() {
	clearInt32(l.total)
	clearInt32(l.pos)
	clearInt32(l.neg)
	clearInt64(l.recvTotal)
	clearInt64(l.recvPos)
	clearInt64(l.recvNeg)
	clearInt64(l.sentTotal)
	for i := range l.raters {
		l.raters[i] = l.raters[i][:0]
	}
}

func clearInt32(xs []int32) {
	for i := range xs {
		xs[i] = 0
	}
}

func clearInt64(xs []int64) {
	for i := range xs {
		xs[i] = 0
	}
}

// TotalFor returns N_i: all ratings target received in T.
func (l *Ledger) TotalFor(target int) int { return int(l.recvTotal[target]) }

// PositiveFor returns N+_i: positive ratings target received in T.
func (l *Ledger) PositiveFor(target int) int { return int(l.recvPos[target]) }

// NegativeFor returns N-_i: negative ratings target received in T.
func (l *Ledger) NegativeFor(target int) int { return int(l.recvNeg[target]) }

// OutgoingTotal returns the number of ratings rater issued in T, across
// all targets. The Sybil detector uses it to measure a rater's
// concentration on one beneficiary.
func (l *Ledger) OutgoingTotal(rater int) int { return int(l.sentTotal[rater]) }

// PairTotal returns N_(i,j): ratings target i received from rater j.
func (l *Ledger) PairTotal(target, rater int) int {
	return int(l.total[target*l.n+rater])
}

// PairPositive returns N+_(i,j).
func (l *Ledger) PairPositive(target, rater int) int {
	return int(l.pos[target*l.n+rater])
}

// PairNegative returns N-_(i,j).
func (l *Ledger) PairNegative(target, rater int) int {
	return int(l.neg[target*l.n+rater])
}

// OthersTotal returns N_(i,-j): ratings target i received from everyone
// except rater j.
func (l *Ledger) OthersTotal(target, rater int) int {
	return int(l.recvTotal[target]) - l.PairTotal(target, rater)
}

// OthersPositive returns N+_(i,-j).
func (l *Ledger) OthersPositive(target, rater int) int {
	return int(l.recvPos[target]) - l.PairPositive(target, rater)
}

// SummationScore returns the eBay-style reputation of target: the sum of
// all received rating values (positives minus negatives), as defined in
// Section IV-A.
func (l *Ledger) SummationScore(target int) int {
	return int(l.recvPos[target] - l.recvNeg[target])
}

// LocalTrust returns s_ij, rater i's satisfaction with node j: positive
// minus negative ratings i gave j. This is the EigenTrust local trust
// input before normalization.
func (l *Ledger) LocalTrust(rater, target int) int {
	idx := target*l.n + rater
	return int(l.pos[idx] - l.neg[idx])
}

// Clone returns a deep copy of the ledger.
func (l *Ledger) Clone() *Ledger {
	c := NewLedger(l.n)
	copy(c.total, l.total)
	copy(c.pos, l.pos)
	copy(c.neg, l.neg)
	copy(c.recvTotal, l.recvTotal)
	copy(c.recvPos, l.recvPos)
	copy(c.recvNeg, l.recvNeg)
	copy(c.sentTotal, l.sentTotal)
	for i, rs := range l.raters {
		c.raters[i] = append([]int32(nil), rs...)
	}
	return c
}

// Merge adds every count of other into l. Both ledgers must cover the same
// population.
func (l *Ledger) Merge(other *Ledger) error {
	if other.n != l.n {
		return fmt.Errorf("reputation: merging ledger of size %d into size %d", other.n, l.n)
	}
	for i := range l.total {
		l.total[i] += other.total[i]
		l.pos[i] += other.pos[i]
		l.neg[i] += other.neg[i]
	}
	for i := 0; i < l.n; i++ {
		l.recvTotal[i] += other.recvTotal[i]
		l.recvPos[i] += other.recvPos[i]
		l.recvNeg[i] += other.recvNeg[i]
		l.sentTotal[i] += other.sentTotal[i]
		l.raters[i] = mergeSorted(l.raters[i], other.raters[i])
	}
	return nil
}

// mergeSorted unions two ascending rater lists. It returns a in place when
// b contributes nothing new.
func mergeSorted(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append(a, b...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

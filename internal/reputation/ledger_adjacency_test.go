package reputation

import (
	"testing"

	"github.com/p2psim/collusion/internal/rng"
)

// bruteRatersOf recomputes target's active-rater list the slow way, straight
// from PairTotal — the definition RatersOf must match.
func bruteRatersOf(l *Ledger, target int) []int32 {
	var out []int32
	for j := 0; j < l.Size(); j++ {
		if l.PairTotal(target, j) > 0 {
			out = append(out, int32(j))
		}
	}
	return out
}

func checkAdjacency(t *testing.T, l *Ledger, step string) {
	t.Helper()
	for target := 0; target < l.Size(); target++ {
		got := l.RatersOf(target)
		want := bruteRatersOf(l, target)
		if len(got) != len(want) {
			t.Fatalf("%s: target %d: RatersOf has %d raters, brute force %d\ngot  %v\nwant %v",
				step, target, len(got), len(want), got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("%s: target %d: RatersOf[%d] = %d, want %d", step, target, k, got[k], want[k])
			}
		}
	}
}

// TestRatersOfMatchesBruteForce drives a ledger (and clones and merge
// targets derived from it) through randomized Record/Merge/Reset/Clone
// sequences and checks after every operation that RatersOf(target) equals a
// brute-force scan of PairTotal.
func TestRatersOfMatchesBruteForce(t *testing.T) {
	const (
		n     = 17
		steps = 2000
	)
	r := rng.New(42).Child("ledger-adjacency")
	l := NewLedger(n)
	// side receives occasional bursts and is merged into l, exercising the
	// sorted-union path with overlapping and disjoint lists.
	side := NewLedger(n)

	polarity := func() int { return r.IntRange(-1, 1) }
	for step := 0; step < steps; step++ {
		switch op := r.Intn(100); {
		case op < 70: // Record into the main ledger
			rater := r.Intn(n)
			target := r.Intn(n)
			if rater == target {
				continue
			}
			l.Record(rater, target, polarity())
		case op < 85: // Record into the side ledger
			rater := r.Intn(n)
			target := r.Intn(n)
			if rater == target {
				continue
			}
			side.Record(rater, target, polarity())
		case op < 93: // Merge side into main, then clear side
			if err := l.Merge(side); err != nil {
				t.Fatal(err)
			}
			side.Reset()
			checkAdjacency(t, side, "side after Reset")
		case op < 97: // Clone must carry an independent, correct adjacency
			c := l.Clone()
			checkAdjacency(t, c, "clone")
			// Mutating the clone must not leak into the original.
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				c.Record(a, b, 1)
			}
		default: // Reset the main ledger
			l.Reset()
		}
		checkAdjacency(t, l, "main")
	}
}

func TestRatersOfEmptyAndSingle(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 4; i++ {
		if got := l.RatersOf(i); len(got) != 0 {
			t.Fatalf("empty ledger: RatersOf(%d) = %v", i, got)
		}
	}
	l.Record(2, 1, 1)
	if got := l.RatersOf(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("RatersOf(1) = %v, want [2]", got)
	}
	if got := l.RatersOf(2); len(got) != 0 {
		t.Fatalf("RatersOf(2) = %v, want empty (adjacency is per target, not per rater)", got)
	}
	// Repeat ratings must not duplicate the entry.
	l.Record(2, 1, -1)
	l.Record(2, 1, 0)
	if got := l.RatersOf(1); len(got) != 1 {
		t.Fatalf("repeat ratings duplicated adjacency: %v", got)
	}
	// Insertions keep ascending order.
	l.Record(3, 1, 1)
	l.Record(0, 1, 1)
	got := l.RatersOf(1)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("RatersOf(1) = %v, want [0 2 3]", got)
	}
}

func TestMergeRowUnion(t *testing.T) {
	cases := []struct{ a, b, want []int32 }{
		{nil, nil, nil},
		{[]int32{1, 3}, nil, []int32{1, 3}},
		{nil, []int32{2}, []int32{2}},
		{[]int32{1, 3, 5}, []int32{2, 3, 6}, []int32{1, 2, 3, 5, 6}},
		{[]int32{1, 2}, []int32{1, 2}, []int32{1, 2}},
	}
	for _, c := range cases {
		// Row 0's adjacency is driven through the public API: each listed
		// rater records once about target 0.
		l, other := NewLedger(8), NewLedger(8)
		for _, r := range c.a {
			l.Record(int(r), 0, 1)
		}
		for _, r := range c.b {
			other.Record(int(r), 0, 1)
		}
		if err := l.Merge(other); err != nil {
			t.Fatal(err)
		}
		got := l.RatersOf(0)
		if len(got) != len(c.want) {
			t.Fatalf("Merge(%v, %v) adjacency = %v, want %v", c.a, c.b, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Merge(%v, %v) adjacency = %v, want %v", c.a, c.b, got, c.want)
			}
		}
	}
}

package reputation

import (
	"testing"

	"github.com/p2psim/collusion/internal/rng"
)

// BenchmarkLedgerFootprintSparse100k measures the memory cost of building
// a 100,000-node ledger holding ~10 ratings/node — the bytes/op column is
// the ledger's whole-life allocation footprint. The dense representation
// this PR removed would have allocated three 100k² int32 arrays (~120 GB)
// before the first rating; the CSR ledger's acceptance bound for this
// workload is < 1 GiB.
func BenchmarkLedgerFootprintSparse100k(b *testing.B) {
	const (
		n       = 100_000
		ratings = n * 10
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rng.New(7)
		l := NewLedger(n)
		for k := 0; k < ratings; k++ {
			rater, target := r.Intn(n), r.Intn(n)
			if rater == target {
				continue
			}
			pol := 1
			if r.Bool(0.2) {
				pol = -1
			}
			l.Record(rater, target, pol)
		}
		if l.TotalFor(0) < 0 {
			b.Fatal("impossible")
		}
	}
}

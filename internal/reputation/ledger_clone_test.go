package reputation

import (
	"testing"

	"github.com/p2psim/collusion/internal/rng"
)

// TestCloneMidWindowAgainstDense property-tests the snapshot-freeze
// contract: a clone taken mid-window must keep matching the dense
// reference captured at clone time while the original ledger keeps
// rolling — records, merges of period deltas, subtractions of expiring
// periods, even full Resets. Any storage sharing between the clone's
// arena and the original's would surface here as the clone drifting with
// the original's mutations.
func TestCloneMidWindowAgainstDense(t *testing.T) {
	const n = 48
	r := rng.New(7).Child("clone-window")
	src := NewLedger(n)
	dense := newDenseLedger(n)

	record := func(dst *Ledger, dd *denseLedger, count int) {
		for k := 0; k < count; k++ {
			rater := r.Intn(n)
			target := r.Intn(n)
			if rater == target {
				target = (target + 1) % n
			}
			pol := r.Intn(3) - 1
			dst.Record(rater, target, pol)
			if dd != nil {
				dd.record(rater, target, pol)
			}
		}
	}

	type frozen struct {
		clone *Ledger
		ref   *denseLedger
		step  string
	}
	var clones []frozen

	// Roll a synthetic window: each period records a delta into the live
	// ledger, clones are taken at varied mid-window points, and between
	// periods the original merges fresh deltas and subtracts expiring ones
	// — the exact mutation mix the WindowLedger drives.
	var periods []*Ledger
	var densePeriods []*denseLedger
	for period := 0; period < 6; period++ {
		delta := NewLedger(n)
		denseDelta := newDenseLedger(n)
		for k := 0; k < 40; k++ {
			rater := r.Intn(n)
			target := r.Intn(n)
			if rater == target {
				target = (target + 1) % n
			}
			pol := r.Intn(3) - 1
			delta.Record(rater, target, pol)
			denseDelta.record(rater, target, pol)
			src.Record(rater, target, pol)
			dense.record(rater, target, pol)
		}
		periods = append(periods, delta)
		densePeriods = append(densePeriods, denseDelta)

		// Mid-window freeze: clone now, remember the dense state now.
		clones = append(clones, frozen{clone: src.Clone(), ref: dense.clone(), step: "after period"})

		// Retire the oldest period once the window is over capacity.
		if len(periods) > 3 {
			if err := src.Subtract(periods[0]); err != nil {
				t.Fatalf("period %d: Subtract: %v", period, err)
			}
			dense.subtract(densePeriods[0])
			periods = periods[1:]
			densePeriods = densePeriods[1:]
		}
	}

	// The original keeps rolling: more records, then a full Reset — the
	// harshest recycling event, returning every span of src's arena to its
	// free lists.
	record(src, dense, 200)
	src.Reset()
	dense.reset()
	record(src, dense, 120)

	// Every frozen clone must still match the dense state at its freeze
	// point, bit for bit, despite everything the original did since.
	for i, f := range clones {
		checkAgainstDense(t, f.step, f.clone, f.ref)
		got := f.clone.DirtyTargets()
		want := f.ref.dirtyTargets()
		if len(got) != len(want) {
			t.Fatalf("clone %d: dirty set diverged: got %d targets, want %d", i, len(got), len(want))
		}
	}
	checkAgainstDense(t, "original after reset+records", src, dense)
}

// TestCloneIntoRecyclesArena pins the steady-state allocation behavior of
// the snapshot freeze path: repeated CloneInto calls into the same
// destination recycle the destination's arena spans instead of growing
// fresh storage, even as the source mutates (including span size-class
// changes) between freezes.
func TestCloneIntoRecyclesArena(t *testing.T) {
	const n = 64
	r := rng.New(11).Child("clone-recycle")
	src := NewLedger(n)
	dst := NewLedger(n)

	mutate := func(count int) {
		for k := 0; k < count; k++ {
			rater := r.Intn(n)
			target := r.Intn(n)
			if rater == target {
				target = (target + 1) % n
			}
			src.Record(rater, target, r.Intn(3)-1)
		}
	}

	// Warm both arenas: grow src to its high-water footprint, then freeze
	// it twice so dst's arena reaches the same class population.
	mutate(4000)
	src.CloneInto(dst)
	src.CloneInto(dst)

	// Steady state: shuffling counts around (without growing rows past
	// their existing size classes is not guaranteed, so allow the arena the
	// occasional block) must freeze with (near-)zero allocations.
	allocs := testing.AllocsPerRun(20, func() {
		src.CloneInto(dst)
	})
	if allocs > 1 {
		t.Fatalf("steady-state CloneInto allocated %.1f times per freeze, want <= 1", allocs)
	}

	// And the recycled freeze is still an exact copy.
	dense := newDenseLedger(n)
	for tgt := 0; tgt < n; tgt++ {
		pc := src.PairCountsOf(tgt)
		for k, rater := range pc.Raters {
			for c := int32(0); c < pc.Pos[k]; c++ {
				dense.record(int(rater), tgt, 1)
			}
			for c := int32(0); c < pc.Neg[k]; c++ {
				dense.record(int(rater), tgt, -1)
			}
			for c := int32(0); c < pc.Total[k]-pc.Pos[k]-pc.Neg[k]; c++ {
				dense.record(int(rater), tgt, 0)
			}
		}
	}
	clear(dense.dirty)
	for _, d := range src.DirtyTargets() {
		dense.dirty[d] = true
	}
	checkAgainstDense(t, "recycled freeze", dst, dense)

	// Population mismatch is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatalf("CloneInto across populations did not panic")
		}
	}()
	src.CloneInto(NewLedger(n + 1))
}

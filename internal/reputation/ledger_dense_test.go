package reputation

import (
	"runtime"
	"testing"

	"github.com/p2psim/collusion/internal/rng"
)

// denseLedger is the pre-CSR reference implementation: three dense n²
// count arrays. It is deliberately the dumbest possible realization of the
// Ledger contract, preserved test-only so the sparse implementation can be
// property-checked against it accessor by accessor.
type denseLedger struct {
	n                  int
	total, pos, neg    []int32 // n² row-major: [target*n+rater]
	recvTotal, recvPos []int64
	recvNeg, sentTotal []int64
	dirty              []bool
}

func newDenseLedger(n int) *denseLedger {
	return &denseLedger{
		n:     n,
		total: make([]int32, n*n), pos: make([]int32, n*n), neg: make([]int32, n*n),
		recvTotal: make([]int64, n), recvPos: make([]int64, n),
		recvNeg: make([]int64, n), sentTotal: make([]int64, n),
		dirty: make([]bool, n),
	}
}

func (d *denseLedger) record(rater, target, polarity int) {
	at := target*d.n + rater
	d.total[at]++
	d.recvTotal[target]++
	d.sentTotal[rater]++
	switch polarity {
	case 1:
		d.pos[at]++
		d.recvPos[target]++
	case -1:
		d.neg[at]++
		d.recvNeg[target]++
	}
	d.dirty[target] = true
}

func (d *denseLedger) merge(o *denseLedger) {
	for t := 0; t < d.n; t++ {
		rowTouched := false
		for r := 0; r < d.n; r++ {
			at := t*d.n + r
			if o.total[at] == 0 {
				continue
			}
			d.total[at] += o.total[at]
			d.pos[at] += o.pos[at]
			d.neg[at] += o.neg[at]
			rowTouched = true
		}
		if rowTouched {
			d.recvTotal[t] += o.recvTotal[t]
			d.recvPos[t] += o.recvPos[t]
			d.recvNeg[t] += o.recvNeg[t]
			d.dirty[t] = true
		}
	}
	for r := 0; r < d.n; r++ {
		d.sentTotal[r] += o.sentTotal[r]
	}
}

func (d *denseLedger) subtract(o *denseLedger) {
	for t := 0; t < d.n; t++ {
		rowTouched := false
		for r := 0; r < d.n; r++ {
			at := t*d.n + r
			if o.total[at] == 0 {
				continue
			}
			d.total[at] -= o.total[at]
			d.pos[at] -= o.pos[at]
			d.neg[at] -= o.neg[at]
			rowTouched = true
		}
		if rowTouched {
			d.recvTotal[t] -= o.recvTotal[t]
			d.recvPos[t] -= o.recvPos[t]
			d.recvNeg[t] -= o.recvNeg[t]
			d.dirty[t] = true
		}
	}
	for r := 0; r < d.n; r++ {
		d.sentTotal[r] -= o.sentTotal[r]
	}
}

func (d *denseLedger) reset() {
	for t := 0; t < d.n; t++ {
		if d.recvTotal[t] > 0 {
			d.dirty[t] = true
		}
	}
	clear(d.total)
	clear(d.pos)
	clear(d.neg)
	clear(d.recvTotal)
	clear(d.recvPos)
	clear(d.recvNeg)
	clear(d.sentTotal)
}

func (d *denseLedger) clone() *denseLedger {
	c := newDenseLedger(d.n)
	copy(c.total, d.total)
	copy(c.pos, d.pos)
	copy(c.neg, d.neg)
	copy(c.recvTotal, d.recvTotal)
	copy(c.recvPos, d.recvPos)
	copy(c.recvNeg, d.recvNeg)
	copy(c.sentTotal, d.sentTotal)
	copy(c.dirty, d.dirty)
	return c
}

func (d *denseLedger) dirtyTargets() []int {
	var out []int
	for t, f := range d.dirty {
		if f {
			out = append(out, t)
		}
	}
	return out
}

func (d *denseLedger) clearDirty() { clear(d.dirty) }

// checkAgainstDense compares every public accessor of the sparse ledger,
// including the aligned PairCountsOf view and the dirty set, against the
// dense reference.
func checkAgainstDense(t *testing.T, step string, l *Ledger, d *denseLedger) {
	t.Helper()
	if l.Size() != d.n {
		t.Fatalf("%s: Size = %d, want %d", step, l.Size(), d.n)
	}
	for target := 0; target < d.n; target++ {
		if got, want := l.TotalFor(target), int(d.recvTotal[target]); got != want {
			t.Fatalf("%s: TotalFor(%d) = %d, want %d", step, target, got, want)
		}
		if got, want := l.PositiveFor(target), int(d.recvPos[target]); got != want {
			t.Fatalf("%s: PositiveFor(%d) = %d, want %d", step, target, got, want)
		}
		if got, want := l.NegativeFor(target), int(d.recvNeg[target]); got != want {
			t.Fatalf("%s: NegativeFor(%d) = %d, want %d", step, target, got, want)
		}
		if got, want := l.OutgoingTotal(target), int(d.sentTotal[target]); got != want {
			t.Fatalf("%s: OutgoingTotal(%d) = %d, want %d", step, target, got, want)
		}
		if got, want := l.SummationScore(target), int(d.recvPos[target]-d.recvNeg[target]); got != want {
			t.Fatalf("%s: SummationScore(%d) = %d, want %d", step, target, got, want)
		}
		pc := l.PairCountsOf(target)
		if len(pc.Total) != len(pc.Raters) || len(pc.Pos) != len(pc.Raters) || len(pc.Neg) != len(pc.Raters) {
			t.Fatalf("%s: PairCountsOf(%d) misaligned: raters %d total %d pos %d neg %d",
				step, target, len(pc.Raters), len(pc.Total), len(pc.Pos), len(pc.Neg))
		}
		k := 0
		for rater := 0; rater < d.n; rater++ {
			at := target*d.n + rater
			if got, want := l.PairTotal(target, rater), int(d.total[at]); got != want {
				t.Fatalf("%s: PairTotal(%d, %d) = %d, want %d", step, target, rater, got, want)
			}
			if got, want := l.PairPositive(target, rater), int(d.pos[at]); got != want {
				t.Fatalf("%s: PairPositive(%d, %d) = %d, want %d", step, target, rater, got, want)
			}
			if got, want := l.PairNegative(target, rater), int(d.neg[at]); got != want {
				t.Fatalf("%s: PairNegative(%d, %d) = %d, want %d", step, target, rater, got, want)
			}
			if got, want := l.LocalTrust(rater, target), int(d.pos[at]-d.neg[at]); got != want {
				t.Fatalf("%s: LocalTrust(%d, %d) = %d, want %d", step, rater, target, got, want)
			}
			if got, want := l.OthersTotal(target, rater), int(d.recvTotal[target])-int(d.total[at]); got != want {
				t.Fatalf("%s: OthersTotal(%d, %d) = %d, want %d", step, target, rater, got, want)
			}
			if got, want := l.OthersPositive(target, rater), int(d.recvPos[target])-int(d.pos[at]); got != want {
				t.Fatalf("%s: OthersPositive(%d, %d) = %d, want %d", step, target, rater, got, want)
			}
			if d.total[at] == 0 {
				continue
			}
			// The aligned view must list exactly the nonzero pairs, in
			// ascending rater order, with matching counts.
			if k >= len(pc.Raters) || int(pc.Raters[k]) != rater {
				t.Fatalf("%s: PairCountsOf(%d).Raters[%d] misses rater %d (have %v)",
					step, target, k, rater, pc.Raters)
			}
			if int(pc.Total[k]) != int(d.total[at]) || int(pc.Pos[k]) != int(d.pos[at]) || int(pc.Neg[k]) != int(d.neg[at]) {
				t.Fatalf("%s: PairCountsOf(%d)[%d] = (%d,%d,%d), want (%d,%d,%d)",
					step, target, k, pc.Total[k], pc.Pos[k], pc.Neg[k], d.total[at], d.pos[at], d.neg[at])
			}
			k++
		}
		if k != len(pc.Raters) {
			t.Fatalf("%s: PairCountsOf(%d) has %d extra raters: %v", step, target, len(pc.Raters)-k, pc.Raters[k:])
		}
	}
	gotDirty := l.DirtyTargets()
	wantDirty := d.dirtyTargets()
	if len(gotDirty) != len(wantDirty) {
		t.Fatalf("%s: DirtyTargets = %v, want %v", step, gotDirty, wantDirty)
	}
	for i := range gotDirty {
		if gotDirty[i] != wantDirty[i] {
			t.Fatalf("%s: DirtyTargets = %v, want %v", step, gotDirty, wantDirty)
		}
	}
}

// TestLedgerMatchesDenseReference drives the sparse ledger and the dense
// reference through identical randomized Record/Merge/Subtract/Clone/
// Reset/ClearDirty workloads and checks every accessor (Pair*,
// receive/sent totals, LocalTrust, Others*, PairCountsOf alignment,
// dirty set) stays equivalent after each step. Merged side deltas are
// kept and later subtracted — the windowed eviction pattern — so span
// shrinking, row removal and arena free-list recycling all run under the
// dense cross-check.
func TestLedgerMatchesDenseReference(t *testing.T) {
	const (
		n     = 13
		steps = 1500
	)
	r := rng.New(99).Child("ledger-dense-equiv")
	l, d := NewLedger(n), newDenseLedger(n)
	side, sideD := NewLedger(n), newDenseLedger(n)
	// Deltas merged into main and not yet subtracted back out, oldest
	// first — the same discipline WindowLedger's ring enforces, which
	// keeps every Subtract an exact inverse of a prior Merge.
	var pending []*Ledger
	var pendingD []*denseLedger

	for step := 0; step < steps; step++ {
		switch op := r.Intn(100); {
		case op < 58: // Record into the main pair
			rater, target := r.Intn(n), r.Intn(n)
			if rater == target {
				continue
			}
			p := r.IntRange(-1, 1)
			l.Record(rater, target, p)
			d.record(rater, target, p)
		case op < 75: // Record into the side pair
			rater, target := r.Intn(n), r.Intn(n)
			if rater == target {
				continue
			}
			p := r.IntRange(-1, 1)
			side.Record(rater, target, p)
			sideD.record(rater, target, p)
		case op < 83: // Merge side into main, remember the delta, reset side
			if err := l.Merge(side); err != nil {
				t.Fatal(err)
			}
			d.merge(sideD)
			pending = append(pending, side.Clone())
			pendingD = append(pendingD, sideD.clone())
			side.Reset()
			sideD.reset()
			checkAgainstDense(t, "side after reset", side, sideD)
		case op < 89: // Subtract the oldest merged delta (window eviction)
			if len(pending) == 0 {
				continue
			}
			if err := l.Subtract(pending[0]); err != nil {
				t.Fatal(err)
			}
			d.subtract(pendingD[0])
			pending, pendingD = pending[1:], pendingD[1:]
		case op < 93: // Clone and verify independence
			cl, cd := l.Clone(), d.clone()
			checkAgainstDense(t, "clone", cl, cd)
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				cl.Record(a, b, 1)
			}
		case op < 97: // Snapshot-and-clear, as the incremental cycle does
			l.ClearDirty()
			d.clearDirty()
		default:
			l.Reset()
			d.reset()
			// Old deltas are no longer subsets of the emptied main ledger.
			pending, pendingD = nil, nil
		}
		checkAgainstDense(t, "main", l, d)
	}
}

// TestLedgerResetReusesArena pins the free-list contract the sharded
// ingest recycling path depends on: Reset returns every row span to the
// arena's free lists, so refilling the ledger — even with a different
// row shape — reuses recycled spans instead of growing new blocks. After
// one warm-up fill the Reset+refill cycle must be allocation-free.
func TestLedgerResetReusesArena(t *testing.T) {
	const n = 64
	r := rng.New(41).Child("reset-reuse")
	type rec struct{ rater, target, pol int }
	batches := make([][]rec, 4)
	for b := range batches {
		count := 600 + r.Intn(400)
		for k := 0; k < count; k++ {
			rater, target := r.Intn(n), r.Intn(n)
			if rater == target {
				continue
			}
			batches[b] = append(batches[b], rec{rater, target, r.IntRange(-1, 1)})
		}
	}
	l := NewLedger(n)
	fill := func(b int) {
		l.Reset()
		l.ClearDirty()
		for _, rc := range batches[b] {
			l.Record(rc.rater, rc.target, rc.pol)
		}
	}
	for b := range batches {
		fill(b) // warm up: grow the arena to the largest shape once
	}
	idx := 0
	allocs := testing.AllocsPerRun(20, func() {
		fill(idx % len(batches))
		idx++
	})
	if allocs > 0 {
		t.Fatalf("steady-state Reset+refill allocates %v objects/op, want 0", allocs)
	}
}

// TestNewLedgerAllocationIsLinear pins the tentpole's memory contract: an
// empty ledger for a large population must not allocate any O(n²) array.
// 400k nodes dense would need 3×400k²×4 bytes ≈ 1.9 TB; the sparse ledger
// must stay under a few hundred bytes per node.
func TestNewLedgerAllocationIsLinear(t *testing.T) {
	const n = 400_000
	allocs := testing.AllocsPerRun(1, func() {
		l := NewLedger(n)
		if l.Size() != n {
			t.Fatal("bad size")
		}
	})
	// 9 backing arrays + the struct itself; a dense implementation would
	// not fail this count but would fail the byte bound below.
	if allocs > 16 {
		t.Fatalf("NewLedger(%d) made %v allocations, want <= 16", n, allocs)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	l := NewLedger(n)
	runtime.ReadMemStats(&after)
	if l.Size() != n {
		t.Fatal("bad size")
	}
	perNode := float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	if perNode > 200 {
		t.Fatalf("NewLedger allocates %.0f bytes/node, want <= 200 (O(n), not O(n²))", perNode)
	}
}

package reputation

import "testing"

// FuzzLedgerRecord feeds arbitrary byte-encoded rating sequences to the
// sparse ledger and cross-checks every touched row against the dense
// reference, so the fuzzer explores adjacency insert/merge orders and
// arena span-growth patterns the seeded property tests might miss. Each
// input byte triple encodes (rater, target, polarity); invalid triples
// assert the panic contract. Every input additionally round-trips a
// merge+subtract of a sub-delta (the windowed eviction pattern, freeing
// and reallocating arena spans) and a Reset+replay (recycling every span
// through the free lists), each of which must land back on the dense
// reference exactly.
func FuzzLedgerRecord(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 0, 0, 3, 2, 1})
	f.Add([]byte{5, 1, 2, 4, 1, 2, 3, 1, 2, 2, 1, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 8
		type rec struct{ rater, target, polarity int }
		var recs []rec
		l, d := NewLedger(n), newDenseLedger(n)
		for len(data) >= 3 {
			rater := int(data[0]) % n
			target := int(data[1]) % n
			polarity := int(data[2])%3 - 1
			data = data[3:]
			if rater == target {
				// The contract is a panic; assert it fires and move on.
				func() {
					defer func() {
						if recover() == nil {
							t.Fatalf("Record(%d, %d) self-rating did not panic", rater, target)
						}
					}()
					l.Record(rater, target, polarity)
				}()
				continue
			}
			l.Record(rater, target, polarity)
			d.record(rater, target, polarity)
			recs = append(recs, rec{rater, target, polarity})
		}
		checkAgainstDense(t, "fuzz", l, d)
		// A merge into a fresh ledger must reproduce the same counts.
		m := NewLedger(n)
		if err := m.Merge(l); err != nil {
			t.Fatal(err)
		}
		checkAgainstDense(t, "fuzz-merge", m, d)
		// Merge in a delta built from every other rating, then subtract it
		// back out: Subtract must be Merge's exact inverse while arena rows
		// grow, shrink, and free mid-life.
		delta := NewLedger(n)
		for i, rc := range recs {
			if i%2 == 0 {
				delta.Record(rc.rater, rc.target, rc.polarity)
			}
		}
		if err := l.Merge(delta); err != nil {
			t.Fatal(err)
		}
		if err := l.Subtract(delta); err != nil {
			t.Fatal(err)
		}
		checkAgainstDense(t, "fuzz-subtract", l, d)
		// Reset recycles every span through the free lists; replaying the
		// same stream must reconstruct the identical observable state.
		l.Reset()
		l.ClearDirty()
		for _, rc := range recs {
			l.Record(rc.rater, rc.target, rc.polarity)
		}
		checkAgainstDense(t, "fuzz-replay", l, d)
	})
}

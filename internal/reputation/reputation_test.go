package reputation

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/p2psim/collusion/internal/metrics"
	"github.com/p2psim/collusion/internal/rng"
)

func TestLedgerCounts(t *testing.T) {
	l := NewLedger(4)
	l.Record(1, 0, 1)
	l.Record(1, 0, 1)
	l.Record(2, 0, -1)
	l.Record(3, 0, 0)
	l.Record(0, 1, 1)

	if got := l.TotalFor(0); got != 4 {
		t.Fatalf("TotalFor(0) = %d, want 4", got)
	}
	if got := l.PositiveFor(0); got != 2 {
		t.Fatalf("PositiveFor(0) = %d, want 2", got)
	}
	if got := l.NegativeFor(0); got != 1 {
		t.Fatalf("NegativeFor(0) = %d, want 1", got)
	}
	if got := l.PairTotal(0, 1); got != 2 {
		t.Fatalf("PairTotal(0,1) = %d, want 2", got)
	}
	if got := l.PairPositive(0, 1); got != 2 {
		t.Fatalf("PairPositive(0,1) = %d, want 2", got)
	}
	if got := l.PairNegative(0, 2); got != 1 {
		t.Fatalf("PairNegative(0,2) = %d, want 1", got)
	}
	if got := l.OthersTotal(0, 1); got != 2 {
		t.Fatalf("OthersTotal(0,1) = %d, want 2", got)
	}
	if got := l.OthersPositive(0, 1); got != 0 {
		t.Fatalf("OthersPositive(0,1) = %d, want 0", got)
	}
	if got := l.SummationScore(0); got != 1 {
		t.Fatalf("SummationScore(0) = %d, want 1 (2 pos - 1 neg)", got)
	}
	if got := l.LocalTrust(1, 0); got != 2 {
		t.Fatalf("LocalTrust(1,0) = %d, want 2", got)
	}
	if got := l.LocalTrust(2, 0); got != -1 {
		t.Fatalf("LocalTrust(2,0) = %d, want -1", got)
	}
	if got := l.OutgoingTotal(1); got != 2 {
		t.Fatalf("OutgoingTotal(1) = %d, want 2", got)
	}
	if got := l.OutgoingTotal(0); got != 1 {
		t.Fatalf("OutgoingTotal(0) = %d, want 1", got)
	}
}

func TestLedgerPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"size zero", func() { NewLedger(0) }},
		{"rater out of range", func() { NewLedger(2).Record(5, 0, 1) }},
		{"target out of range", func() { NewLedger(2).Record(0, 5, 1) }},
		{"self rating", func() { NewLedger(2).Record(1, 1, 1) }},
		{"bad polarity", func() { NewLedger(2).Record(0, 1, 2) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.f()
		}()
	}
}

func TestLedgerReset(t *testing.T) {
	l := NewLedger(3)
	l.Record(0, 1, 1)
	l.Record(2, 1, -1)
	l.Reset()
	if l.TotalFor(1) != 0 || l.SummationScore(1) != 0 || l.PairTotal(1, 0) != 0 {
		t.Fatal("Reset did not clear counts")
	}
}

func TestLedgerCloneIndependent(t *testing.T) {
	l := NewLedger(3)
	l.Record(0, 1, 1)
	c := l.Clone()
	c.Record(2, 1, 1)
	if l.TotalFor(1) != 1 {
		t.Fatal("clone mutation affected original")
	}
	if c.TotalFor(1) != 2 {
		t.Fatal("clone missing recorded rating")
	}
}

func TestLedgerMerge(t *testing.T) {
	a := NewLedger(3)
	a.Record(0, 1, 1)
	b := NewLedger(3)
	b.Record(0, 1, -1)
	b.Record(2, 1, 1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.TotalFor(1) != 3 || a.SummationScore(1) != 1 {
		t.Fatalf("merged totals wrong: total=%d score=%d", a.TotalFor(1), a.SummationScore(1))
	}
	if err := a.Merge(NewLedger(5)); err == nil {
		t.Fatal("size-mismatched merge accepted")
	}
}

// Property: per-pair counts always reconcile with per-node receive totals.
func TestQuickLedgerReconciles(t *testing.T) {
	f := func(events []uint16) bool {
		const n = 8
		l := NewLedger(n)
		for _, e := range events {
			rater := int(e) % n
			target := int(e>>3) % n
			if rater == target {
				continue
			}
			polarity := int(e>>6)%3 - 1
			l.Record(rater, target, polarity)
		}
		for target := 0; target < n; target++ {
			sumTotal, sumPos, sumNeg := 0, 0, 0
			for rater := 0; rater < n; rater++ {
				sumTotal += l.PairTotal(target, rater)
				sumPos += l.PairPositive(target, rater)
				sumNeg += l.PairNegative(target, rater)
			}
			if sumTotal != l.TotalFor(target) ||
				sumPos != l.PositiveFor(target) ||
				sumNeg != l.NegativeFor(target) {
				return false
			}
			if l.SummationScore(target) != l.PositiveFor(target)-l.NegativeFor(target) {
				return false
			}
		}
		for rater := 0; rater < n; rater++ {
			sent := 0
			for target := 0; target < n; target++ {
				sent += l.PairTotal(target, rater)
			}
			if sent != l.OutgoingTotal(rater) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummationEngine(t *testing.T) {
	l := NewLedger(3)
	l.Record(1, 0, 1)
	l.Record(2, 0, 1)
	l.Record(1, 2, -1)
	scores := Summation{}.Scores(l)
	want := []float64{2, 0, -1}
	for i := range want {
		if scores[i] != want[i] {
			t.Fatalf("Scores = %v, want %v", scores, want)
		}
	}
	if (Summation{}).Name() == "" {
		t.Fatal("empty engine name")
	}
}

func TestWeightedSumEngine(t *testing.T) {
	l := NewLedger(4)
	// Node 0 is pretrusted. It rates node 2 positively twice; node 1 rates
	// node 2 positively once and node 3 negatively once.
	l.Record(0, 2, 1)
	l.Record(0, 2, 1)
	l.Record(1, 2, 1)
	l.Record(1, 3, -1)
	e := NewWeightedSum([]int{0})
	scores := e.Scores(l)
	if want := 0.5*2 + 0.2*1; math.Abs(scores[2]-want) > 1e-12 {
		t.Fatalf("score[2] = %v, want %v", scores[2], want)
	}
	if want := -0.2; math.Abs(scores[3]-want) > 1e-12 {
		t.Fatalf("score[3] = %v, want %v", scores[3], want)
	}
	if scores[0] != 0 || scores[1] != 0 {
		t.Fatalf("unrated nodes scored: %v", scores)
	}
}

func TestWeightedSumIgnoresInvalidPretrusted(t *testing.T) {
	l := NewLedger(2)
	l.Record(0, 1, 1)
	e := NewWeightedSum([]int{-1, 99})
	scores := e.Scores(l)
	if want := 0.2; math.Abs(scores[1]-want) > 1e-12 {
		t.Fatalf("score[1] = %v, want %v", scores[1], want)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 0, -3, 6})
	if math.Abs(out[0]-0.25) > 1e-12 || out[1] != 0 || out[2] != 0 || math.Abs(out[3]-0.75) > 1e-12 {
		t.Fatalf("Normalize = %v", out)
	}
	zero := Normalize([]float64{-1, 0})
	if zero[0] != -1 || zero[1] != 0 {
		t.Fatalf("Normalize of non-positive input = %v, want unchanged copy", zero)
	}
}

func TestThreshold(t *testing.T) {
	got := Threshold([]float64{0.1, 0.04, 0.05, -1}, 0.05)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Threshold = %v", got)
	}
}

func TestValidateEngine(t *testing.T) {
	l := NewLedger(3)
	l.Record(0, 1, 1)
	for _, e := range []Engine{Summation{}, NewWeightedSum([]int{0}), NewEigenTrust([]int{0})} {
		if err := ValidateEngine(e, l); err != nil {
			t.Errorf("engine %q failed validation: %v", e.Name(), err)
		}
	}
}

func TestEigenTrustDistribution(t *testing.T) {
	l := NewLedger(10)
	r := rng.New(1)
	for k := 0; k < 500; k++ {
		i, j := r.Intn(10), r.Intn(10)
		if i == j {
			continue
		}
		pol := 1
		if r.Bool(0.3) {
			pol = -1
		}
		l.Record(i, j, pol)
	}
	e := NewEigenTrust([]int{0, 1})
	scores := e.Scores(l)
	if err := CheckDistribution(scores, 1e-6); err != nil {
		t.Fatal(err)
	}
	if e.Iterations() == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestEigenTrustFixedPoint(t *testing.T) {
	l := NewLedger(6)
	r := rng.New(2)
	for k := 0; k < 300; k++ {
		i, j := r.Intn(6), r.Intn(6)
		if i == j {
			continue
		}
		pol := 1
		if r.Bool(0.2) {
			pol = -1
		}
		l.Record(i, j, pol)
	}
	e := NewEigenTrust([]int{0})
	t1 := e.Scores(l)
	// Running again from the same ledger must be deterministic.
	t2 := e.Scores(l)
	for i := range t1 {
		if math.Abs(t1[i]-t2[i]) > 1e-12 {
			t.Fatalf("non-deterministic scores at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestEigenTrustPretrustedFloor(t *testing.T) {
	// Even with zero ratings, pretrusted peers hold at least alpha * p mass.
	l := NewLedger(8)
	e := NewEigenTrust([]int{2})
	e.Alpha = 0.2
	scores := e.Scores(l)
	if scores[2] < 0.2*1.0-1e-9 {
		t.Fatalf("pretrusted mass = %v, want >= alpha", scores[2])
	}
	if err := CheckDistribution(scores, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestEigenTrustNoPretrustedUniformFallback(t *testing.T) {
	l := NewLedger(4)
	e := NewEigenTrust(nil)
	scores := e.Scores(l)
	for i, s := range scores {
		if math.Abs(s-0.25) > 1e-9 {
			t.Fatalf("score[%d] = %v, want uniform 0.25", i, s)
		}
	}
}

// The collusion vulnerability the paper exploits: two nodes that flood each
// other with positive ratings gain global trust relative to an identical
// node without a partner.
func TestEigenTrustColluderBoost(t *testing.T) {
	const n = 12
	l := NewLedger(n)
	r := rng.New(3)
	// Organic traffic: everyone behaves equally well, so all nodes —
	// including the colluders — receive comparable external trust. The
	// collusion boost then comes purely from the mutual flooding, as in the
	// paper's B=0.6 scenario (colluders still serve well enough to earn
	// organic positives).
	for k := 0; k < 2000; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		l.Record(i, j, 1)
	}
	// Colluders 1 and 2 rate each other massively.
	for k := 0; k < 200; k++ {
		l.Record(1, 2, 1)
		l.Record(2, 1, 1)
	}
	e := NewEigenTrust([]int{0})
	scores := e.Scores(l)
	// Node 3 is an ordinary node with organic incoming trust only.
	if scores[1] <= scores[3] || scores[2] <= scores[3] {
		t.Fatalf("collusion did not boost trust: colluders %v/%v vs normal %v",
			scores[1], scores[2], scores[3])
	}
}

func TestEigenTrustCostAccounting(t *testing.T) {
	var meter metrics.CostMeter
	l := NewLedger(5)
	l.Record(0, 1, 1)
	e := NewEigenTrust([]int{0})
	e.Meter = &meter
	e.Scores(l)
	got := meter.Get(metrics.CostEigenMulAdd)
	want := int64(e.Iterations()) * 25
	if got != want {
		t.Fatalf("cost = %d, want %d (iterations × n²)", got, want)
	}
}

func TestEigenTrustMaxIterRespected(t *testing.T) {
	l := NewLedger(5)
	l.Record(0, 1, 1)
	e := NewEigenTrust([]int{0})
	e.MaxIter = 3
	e.Epsilon = 1e-300 // never converge by tolerance
	e.Scores(l)
	if e.Iterations() != 3 {
		t.Fatalf("iterations = %d, want 3", e.Iterations())
	}
}

// Property: EigenTrust scores are a probability distribution for arbitrary
// rating patterns.
func TestQuickEigenTrustDistribution(t *testing.T) {
	f := func(events []uint16, pretrust uint8) bool {
		const n = 7
		l := NewLedger(n)
		for _, e := range events {
			i := int(e) % n
			j := int(e>>3) % n
			if i == j {
				continue
			}
			pol := int(e>>6)%3 - 1
			l.Record(i, j, pol)
		}
		e := NewEigenTrust([]int{int(pretrust) % n})
		return CheckDistribution(e.Scores(l), 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDistribution(t *testing.T) {
	if err := CheckDistribution([]float64{0.5, 0.5}, 1e-9); err != nil {
		t.Fatal(err)
	}
	if err := CheckDistribution([]float64{0.5, 0.4}, 1e-9); err == nil {
		t.Fatal("sum 0.9 accepted")
	}
	if err := CheckDistribution([]float64{1.5, -0.5}, 1e-9); err == nil {
		t.Fatal("negative mass accepted")
	}
}

func benchLedger(n int) *Ledger {
	l := NewLedger(n)
	r := rng.New(1)
	for k := 0; k < n*50; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		pol := 1
		if r.Bool(0.2) {
			pol = -1
		}
		l.Record(i, j, pol)
	}
	return l
}

func BenchmarkEigenTrust200(b *testing.B) {
	l := benchLedger(200)
	e := NewEigenTrust([]int{0, 1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Scores(l)
	}
}

func BenchmarkWeightedSum200(b *testing.B) {
	l := benchLedger(200)
	e := NewWeightedSum([]int{0, 1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Scores(l)
	}
}

func BenchmarkLedgerRecord(b *testing.B) {
	l := NewLedger(200)
	for i := 0; i < b.N; i++ {
		l.Record(i%199, 199, 1)
	}
}

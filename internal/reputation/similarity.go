package reputation

import (
	"math"

	"github.com/p2psim/collusion/internal/metrics"
)

// SimilarityWeighted implements the feedback-credibility idea of PeerTrust
// and TrustGuard (the paper's references [26] and [21], its related-work
// group of collusion mitigations): a rater's feedback is weighed by how
// well its opinions agree with everyone else's. For each rater v the
// engine compares v's per-target positive shares against the consensus
// (all-rater) shares over the targets v actually rated, converts the
// root-mean-square deviation into a credibility weight
//
//	Cr(v) = 1 − RMSD(v, consensus) ∈ [0, 1],
//
// and scores each node as the credibility-weighted sum of its received
// ratings, normalized to a distribution.
//
// Collusion is dampened because boosters systematically deviate from
// consensus on their beneficiaries (they rate 1.0 where the crowd rates
// low), which costs them credibility — but it is a mitigation, not a
// detection: the colluders are discounted, never identified. The engine
// exists as a comparison baseline for the ablation study.
type SimilarityWeighted struct {
	// MinOverlap is the minimum number of rated targets before a rater's
	// similarity is trusted; raters below it get NeutralCredibility.
	// The zero value selects 2.
	MinOverlap int
	// NeutralCredibility is the weight for raters with too little history
	// to compare. The zero value selects 0.5.
	NeutralCredibility float64
	// Meter, if non-nil, is charged one metrics.CostEigenMulAdd per
	// matrix element visited.
	Meter *metrics.CostMeter
}

// NewSimilarityWeighted returns the engine with default parameters.
func NewSimilarityWeighted() *SimilarityWeighted {
	return &SimilarityWeighted{}
}

// Name implements Engine.
func (e *SimilarityWeighted) Name() string { return "similarity-weighted" }

func (e *SimilarityWeighted) params() (minOverlap int, neutral float64) {
	minOverlap = e.MinOverlap
	if minOverlap == 0 {
		minOverlap = 2
	}
	neutral = e.NeutralCredibility
	if neutral == 0 {
		neutral = 0.5
	}
	return minOverlap, neutral
}

// Scores implements Engine.
func (e *SimilarityWeighted) Scores(l *Ledger) []float64 {
	n := l.Size()
	minOverlap, neutral := e.params()

	// Consensus positive share per target.
	consensus := make([]float64, n)
	hasConsensus := make([]bool, n)
	for target := 0; target < n; target++ {
		if total := l.TotalFor(target); total > 0 {
			consensus[target] = float64(l.PositiveFor(target)) / float64(total)
			hasConsensus[target] = true
		}
	}

	// Credibility per rater from deviation against consensus.
	credibility := make([]float64, n)
	for rater := 0; rater < n; rater++ {
		sumSq := 0.0
		overlap := 0
		for target := 0; target < n; target++ {
			if target == rater || !hasConsensus[target] {
				continue
			}
			cnt := l.PairTotal(target, rater)
			if cnt == 0 {
				continue
			}
			share := float64(l.PairPositive(target, rater)) / float64(cnt)
			d := share - consensus[target]
			sumSq += d * d
			overlap++
		}
		if e.Meter != nil {
			e.Meter.Add(metrics.CostEigenMulAdd, int64(n))
		}
		if overlap < minOverlap {
			credibility[rater] = neutral
			continue
		}
		credibility[rater] = 1 - math.Sqrt(sumSq/float64(overlap))
		if credibility[rater] < 0 {
			credibility[rater] = 0
		}
	}

	// Credibility-weighted summation.
	raw := make([]float64, n)
	for target := 0; target < n; target++ {
		sum := 0.0
		for rater := 0; rater < n; rater++ {
			if rater == target {
				continue
			}
			if d := l.LocalTrust(rater, target); d != 0 {
				sum += credibility[rater] * float64(d)
			}
		}
		raw[target] = sum
	}
	if e.Meter != nil {
		e.Meter.Add(metrics.CostEigenMulAdd, int64(n)*int64(n))
	}
	return Normalize(raw)
}

// Credibilities exposes the per-rater credibility weights for one ledger,
// for diagnostics and tests.
func (e *SimilarityWeighted) Credibilities(l *Ledger) []float64 {
	n := l.Size()
	minOverlap, neutral := e.params()
	consensus := make([]float64, n)
	hasConsensus := make([]bool, n)
	for target := 0; target < n; target++ {
		if total := l.TotalFor(target); total > 0 {
			consensus[target] = float64(l.PositiveFor(target)) / float64(total)
			hasConsensus[target] = true
		}
	}
	out := make([]float64, n)
	for rater := 0; rater < n; rater++ {
		sumSq := 0.0
		overlap := 0
		for target := 0; target < n; target++ {
			if target == rater || !hasConsensus[target] {
				continue
			}
			cnt := l.PairTotal(target, rater)
			if cnt == 0 {
				continue
			}
			share := float64(l.PairPositive(target, rater)) / float64(cnt)
			d := share - consensus[target]
			sumSq += d * d
			overlap++
		}
		if overlap < minOverlap {
			out[rater] = neutral
			continue
		}
		out[rater] = 1 - math.Sqrt(sumSq/float64(overlap))
		if out[rater] < 0 {
			out[rater] = 0
		}
	}
	return out
}

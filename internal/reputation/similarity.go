package reputation

import (
	"math"

	"github.com/p2psim/collusion/internal/metrics"
)

// SimilarityWeighted implements the feedback-credibility idea of PeerTrust
// and TrustGuard (the paper's references [26] and [21], its related-work
// group of collusion mitigations): a rater's feedback is weighed by how
// well its opinions agree with everyone else's. For each rater v the
// engine compares v's per-target positive shares against the consensus
// (all-rater) shares over the targets v actually rated, converts the
// root-mean-square deviation into a credibility weight
//
//	Cr(v) = 1 − RMSD(v, consensus) ∈ [0, 1],
//
// and scores each node as the credibility-weighted sum of its received
// ratings, normalized to a distribution.
//
// Collusion is dampened because boosters systematically deviate from
// consensus on their beneficiaries (they rate 1.0 where the crowd rates
// low), which costs them credibility — but it is a mitigation, not a
// detection: the colluders are discounted, never identified. The engine
// exists as a comparison baseline for the ablation study.
type SimilarityWeighted struct {
	// MinOverlap is the minimum number of rated targets before a rater's
	// similarity is trusted; raters below it get NeutralCredibility.
	// The zero value selects 2.
	MinOverlap int
	// NeutralCredibility is the weight for raters with too little history
	// to compare. The zero value selects 0.5.
	NeutralCredibility float64
	// Meter, if non-nil, is charged one metrics.CostEigenMulAdd per
	// matrix element visited.
	Meter *metrics.CostMeter
}

// NewSimilarityWeighted returns the engine with default parameters.
func NewSimilarityWeighted() *SimilarityWeighted {
	return &SimilarityWeighted{}
}

// Name implements Engine.
func (e *SimilarityWeighted) Name() string { return "similarity-weighted" }

func (e *SimilarityWeighted) params() (minOverlap int, neutral float64) {
	minOverlap = e.MinOverlap
	if minOverlap == 0 {
		minOverlap = 2
	}
	neutral = e.NeutralCredibility
	if neutral == 0 {
		neutral = 0.5
	}
	return minOverlap, neutral
}

// Scores implements Engine.
func (e *SimilarityWeighted) Scores(l *Ledger) []float64 {
	n := l.Size()
	minOverlap, neutral := e.params()
	credibility := e.credibilityWeights(l, consensusShares(l), minOverlap, neutral, e.Meter)

	// Credibility-weighted summation: only the target's active raters have
	// nonzero local trust, and the ascending adjacency keeps the float
	// accumulation order of the old dense column scan.
	raw := make([]float64, n)
	for target := 0; target < n; target++ {
		sum := 0.0
		pc := l.PairCountsOf(target)
		for k, r32 := range pc.Raters {
			if d := pc.Pos[k] - pc.Neg[k]; d != 0 {
				sum += credibility[r32] * float64(d)
			}
		}
		raw[target] = sum
	}
	if e.Meter != nil {
		e.Meter.Add(metrics.CostEigenMulAdd, int64(n)*int64(n))
	}
	return Normalize(raw)
}

// Credibilities exposes the per-rater credibility weights for one ledger,
// for diagnostics and tests. Unlike Scores it charges no meter cost.
func (e *SimilarityWeighted) Credibilities(l *Ledger) []float64 {
	minOverlap, neutral := e.params()
	return e.credibilityWeights(l, consensusShares(l), minOverlap, neutral, nil)
}

// consensusShares returns each target's all-rater positive share (zero for
// unrated targets).
func consensusShares(l *Ledger) []float64 {
	consensus := make([]float64, l.Size())
	for target := range consensus {
		if total := l.TotalFor(target); total > 0 {
			consensus[target] = float64(l.PositiveFor(target)) / float64(total)
		}
	}
	return consensus
}

// credibilityWeights computes Cr(v) per rater. The ledger stores counts by
// target row, so the per-rater view is a CSR transpose of the rated pairs,
// built in one O(n + nnz) pass. Scanning targets in ascending order
// appends each rater's rated targets ascending, so the deviation sums
// accumulate in exactly the order of the old dense column scan (a rated
// pair implies the target has ratings, hence a consensus share, and
// self-rated pairs cannot exist — the two skips the dense scan needed).
func (e *SimilarityWeighted) credibilityWeights(l *Ledger, consensus []float64, minOverlap int, neutral float64, meter *metrics.CostMeter) []float64 {
	n := l.Size()
	off := make([]int, n+1)
	for target := 0; target < n; target++ {
		pc := l.PairCountsOf(target)
		for _, r32 := range pc.Raters {
			off[int(r32)+1]++
		}
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	// Each transposed edge carries the rater's positive share for that
	// target minus the consensus — all the deviation pass needs.
	dev := make([]float64, off[n])
	fill := make([]int, n)
	copy(fill, off[:n])
	for target := 0; target < n; target++ {
		pc := l.PairCountsOf(target)
		for k, r32 := range pc.Raters {
			at := fill[r32]
			dev[at] = float64(pc.Pos[k])/float64(pc.Total[k]) - consensus[target]
			fill[r32] = at + 1
		}
	}

	out := make([]float64, n)
	for rater := 0; rater < n; rater++ {
		sumSq := 0.0
		for at := off[rater]; at < off[rater+1]; at++ {
			sumSq += dev[at] * dev[at]
		}
		overlap := off[rater+1] - off[rater]
		if meter != nil {
			meter.Add(metrics.CostEigenMulAdd, int64(n))
		}
		if overlap < minOverlap {
			out[rater] = neutral
			continue
		}
		out[rater] = 1 - math.Sqrt(sumSq/float64(overlap))
		if out[rater] < 0 {
			out[rater] = 0
		}
	}
	return out
}

package reputation

import (
	"math"
	"testing"

	"github.com/p2psim/collusion/internal/rng"
)

// buildConsensusLedger gives every node some consensus history: raters
// 0..5 rate targets 6..9 with agreed polarities.
func buildConsensusLedger() *Ledger {
	l := NewLedger(12)
	for rater := 0; rater < 6; rater++ {
		for rep := 0; rep < 5; rep++ {
			l.Record(rater, 6, 1)  // everyone likes 6
			l.Record(rater, 7, 1)  // everyone likes 7
			l.Record(rater, 8, -1) // everyone dislikes 8
		}
	}
	return l
}

func TestSimilarityCredibilityAgreement(t *testing.T) {
	l := buildConsensusLedger()
	e := NewSimilarityWeighted()
	cr := e.Credibilities(l)
	// Raters 0-5 agree perfectly with consensus: credibility 1.
	for rater := 0; rater < 6; rater++ {
		if math.Abs(cr[rater]-1) > 1e-9 {
			t.Fatalf("agreeing rater %d credibility = %v, want 1", rater, cr[rater])
		}
	}
	// Nodes that never rated anyone get the neutral weight.
	if cr[10] != 0.5 {
		t.Fatalf("silent node credibility = %v, want 0.5", cr[10])
	}
}

func TestSimilarityCredibilityDeviation(t *testing.T) {
	l := buildConsensusLedger()
	// Node 11 rates against consensus everywhere.
	for rep := 0; rep < 5; rep++ {
		l.Record(11, 6, -1)
		l.Record(11, 7, -1)
		l.Record(11, 8, 1)
	}
	cr := NewSimilarityWeighted().Credibilities(l)
	if cr[11] > 0.3 {
		t.Fatalf("contrarian credibility = %v, want near 0", cr[11])
	}
}

func TestSimilarityDampensBoosting(t *testing.T) {
	const n = 20
	base := func() *Ledger {
		l := NewLedger(n)
		r := rng.New(4)
		// Consensus background: targets 10..15 receive honest mixed
		// ratings from raters 0..7.
		for k := 0; k < 600; k++ {
			rater := r.Intn(8)
			target := 10 + r.Intn(6)
			pol := 1
			if r.Bool(0.3) {
				pol = -1
			}
			l.Record(rater, target, pol)
		}
		return l
	}

	// Booster 16 floods target 10... use a dedicated unpopular target 17:
	// the crowd rates 17 mostly negatively, the booster only positively.
	plain := base()
	boosted := base()
	for k := 0; k < 40; k++ {
		plain.Record(0, 17, -1) // crowd view without boosting
		boosted.Record(0, 17, -1)
		boosted.Record(16, 17, 1)
	}

	sim := NewSimilarityWeighted()
	simScores := sim.Scores(boosted)
	sumScores := Summation{}.Scores(boosted)

	// Under plain summation the boosted target breaks even (40 pos vs 40
	// neg => 0); under similarity weighting the booster's deviating
	// ratings are discounted, leaving the target clearly negative relative
	// to honest targets.
	if sumScores[17] != 0 {
		t.Fatalf("summation score = %v, want 0 by construction", sumScores[17])
	}
	if simScores[17] > 0 {
		t.Fatalf("similarity-weighted score = %v, want <= 0", simScores[17])
	}
	cr := sim.Credibilities(boosted)
	if cr[16] >= cr[0] {
		t.Fatalf("booster credibility %v not below honest rater %v", cr[16], cr[0])
	}
}

func TestSimilarityScoresAreDistribution(t *testing.T) {
	l := buildConsensusLedger()
	scores := NewSimilarityWeighted().Scores(l)
	if err := CheckDistribution(scores, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityEmptyLedger(t *testing.T) {
	l := NewLedger(5)
	scores := NewSimilarityWeighted().Scores(l)
	for i, s := range scores {
		if s != 0 {
			t.Fatalf("score[%d] = %v on empty ledger", i, s)
		}
	}
}

func TestSimilarityName(t *testing.T) {
	if NewSimilarityWeighted().Name() != "similarity-weighted" {
		t.Fatal("wrong name")
	}
}

func BenchmarkSimilarityWeighted200(b *testing.B) {
	l := benchLedger(200)
	e := NewSimilarityWeighted()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Scores(l)
	}
}

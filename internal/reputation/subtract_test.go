package reputation

import (
	"testing"

	"github.com/p2psim/collusion/internal/rng"
)

// randomRecords drives count random ratings into the given ledgers (all of
// population n), so each receives the identical sequence.
func randomRecords(r *rng.Rand, n, count int, into ...*Ledger) {
	for k := 0; k < count; k++ {
		rater, target := r.Intn(n), r.Intn(n)
		if rater == target {
			continue
		}
		pol := r.Intn(3) - 1
		for _, l := range into {
			l.Record(rater, target, pol)
		}
	}
}

// requireLedgersEqual asserts every observable of got matches want: the
// population, per-target adjacency with aligned counts, receive/sent
// totals, and the sorted dirty set.
func requireLedgersEqual(t *testing.T, step string, got, want *Ledger) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("%s: Size = %d, want %d", step, got.Size(), want.Size())
	}
	for target := 0; target < want.Size(); target++ {
		gp, wp := got.PairCountsOf(target), want.PairCountsOf(target)
		if len(gp.Raters) != len(wp.Raters) {
			t.Fatalf("%s: target %d has %d raters %v, want %d %v",
				step, target, len(gp.Raters), gp.Raters, len(wp.Raters), wp.Raters)
		}
		for k := range wp.Raters {
			if gp.Raters[k] != wp.Raters[k] || gp.Total[k] != wp.Total[k] ||
				gp.Pos[k] != wp.Pos[k] || gp.Neg[k] != wp.Neg[k] {
				t.Fatalf("%s: target %d entry %d = (r%d %d/%d/%d), want (r%d %d/%d/%d)",
					step, target, k,
					gp.Raters[k], gp.Total[k], gp.Pos[k], gp.Neg[k],
					wp.Raters[k], wp.Total[k], wp.Pos[k], wp.Neg[k])
			}
		}
		if got.TotalFor(target) != want.TotalFor(target) ||
			got.PositiveFor(target) != want.PositiveFor(target) ||
			got.NegativeFor(target) != want.NegativeFor(target) ||
			got.OutgoingTotal(target) != want.OutgoingTotal(target) {
			t.Fatalf("%s: target %d totals %d/%d/%d out %d, want %d/%d/%d out %d",
				step, target,
				got.TotalFor(target), got.PositiveFor(target), got.NegativeFor(target), got.OutgoingTotal(target),
				want.TotalFor(target), want.PositiveFor(target), want.NegativeFor(target), want.OutgoingTotal(target))
		}
	}
	gd, wd := got.DirtyTargets(), want.DirtyTargets()
	if len(gd) != len(wd) {
		t.Fatalf("%s: DirtyTargets = %v, want %v", step, gd, wd)
	}
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: DirtyTargets = %v, want %v", step, gd, wd)
		}
	}
}

// TestSubtractInvertsMerge drives randomized trials of the window-ring
// algebra: base + delta - delta must be observationally identical to base,
// including the removal of raters whose pair totals return to zero.
func TestSubtractInvertsMerge(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(30)
		base := NewLedger(n)
		randomRecords(r, n, r.Intn(200), base)
		delta := NewLedger(n)
		randomRecords(r, n, r.Intn(200), delta)

		sum := base.Clone()
		if err := sum.Merge(delta); err != nil {
			t.Fatal(err)
		}
		if err := sum.Subtract(delta); err != nil {
			t.Fatal(err)
		}
		// Merge+Subtract dirties every row delta touched; mirror that on the
		// expectation so the dirty sets compare equal.
		want := base.Clone()
		for target := 0; target < n; target++ {
			if len(delta.RatersOf(target)) > 0 {
				want.markDirty(target)
			}
		}
		requireLedgersEqual(t, "merge+subtract round-trip", sum, want)
	}
}

// TestSubtractWindowSemantics pins the delta-ring use case directly:
// merging W period deltas and subtracting the expiring one equals merging
// the remaining W-1, for every observable including adjacency order.
func TestSubtractWindowSemantics(t *testing.T) {
	r := rng.New(23)
	const n = 40
	deltas := make([]*Ledger, 5)
	for i := range deltas {
		deltas[i] = NewLedger(n)
		randomRecords(r, n, 300, deltas[i])
	}
	rolling := NewLedger(n)
	for _, d := range deltas {
		if err := rolling.Merge(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := rolling.Subtract(deltas[0]); err != nil {
		t.Fatal(err)
	}
	remerged := NewLedger(n)
	for _, d := range deltas[1:] {
		if err := remerged.Merge(d); err != nil {
			t.Fatal(err)
		}
	}
	rolling.ClearDirty()
	remerged.ClearDirty()
	requireLedgersEqual(t, "window eviction", rolling, remerged)
}

func TestSubtractSizeMismatch(t *testing.T) {
	l := NewLedger(4)
	if err := l.Subtract(NewLedger(5)); err == nil {
		t.Fatal("size mismatch not reported")
	}
}

func TestSubtractUnderflowPanics(t *testing.T) {
	l := NewLedger(4)
	l.Record(1, 0, 1)
	big := NewLedger(4)
	big.Record(1, 0, 1)
	big.Record(1, 0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pair-count underflow not caught")
			}
		}()
		_ = l.Subtract(big)
	}()

	l2 := NewLedger(4)
	l2.Record(1, 0, 1)
	other := NewLedger(4)
	other.Record(2, 0, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("absent-rater subtraction not caught")
			}
		}()
		_ = l2.Subtract(other)
	}()
}

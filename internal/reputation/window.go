package reputation

import "fmt"

// WindowedLedger maintains per-period rating ledgers and exposes a merged
// view of the most recent periods. The paper's detection statistics are
// all defined over "the time period T for updating global reputations"
// (Table I); a cumulative ledger approximates T as the whole run, while a
// windowed ledger gives the literal sliding-window semantics: ratings
// older than the window no longer count toward N_i, N_(i,j) or the
// summation reputation, so a pair that stops colluding eventually stops
// matching the collusion model.
type WindowedLedger struct {
	n       int
	window  int
	periods []*Ledger // ring buffer; periods[head] is the current period
	head    int
	filled  int
}

// NewWindowedLedger creates a windowed ledger for n nodes keeping the
// current period plus window-1 past periods. It panics if n <= 0 or
// window <= 0, mirroring NewLedger.
func NewWindowedLedger(n, window int) *WindowedLedger {
	if n <= 0 {
		panic(fmt.Sprintf("reputation: NewWindowedLedger(n=%d), want n > 0", n))
	}
	if window <= 0 {
		panic(fmt.Sprintf("reputation: NewWindowedLedger(window=%d), want window > 0", window))
	}
	w := &WindowedLedger{n: n, window: window, periods: make([]*Ledger, window)}
	w.periods[0] = NewLedger(n)
	w.filled = 1
	return w
}

// Size returns the node population.
func (w *WindowedLedger) Size() int { return w.n }

// WindowLength returns the number of periods the window spans.
func (w *WindowedLedger) WindowLength() int { return w.window }

// Periods returns how many periods currently hold data (1..window).
func (w *WindowedLedger) Periods() int { return w.filled }

// Record stores a rating in the current period.
func (w *WindowedLedger) Record(rater, target, polarity int) {
	w.periods[w.head].Record(rater, target, polarity)
}

// Advance closes the current period and opens a new one, evicting the
// oldest period once the window is full.
func (w *WindowedLedger) Advance() {
	w.head = (w.head + 1) % w.window
	if w.periods[w.head] == nil {
		w.periods[w.head] = NewLedger(w.n)
		w.filled++
		return
	}
	// Reuse the evicted period's storage.
	w.periods[w.head].Reset()
}

// Current returns the ledger of the open period (live view, not a copy).
func (w *WindowedLedger) Current() *Ledger { return w.periods[w.head] }

// Window returns a merged ledger over every period in the window. The
// result is a fresh copy safe to retain.
func (w *WindowedLedger) Window() *Ledger {
	merged := NewLedger(w.n)
	for _, p := range w.periods {
		if p == nil {
			continue
		}
		// Merge cannot fail: all periods share the population size.
		if err := merged.Merge(p); err != nil {
			panic("reputation: " + err.Error())
		}
	}
	return merged
}

// Reset clears every period.
func (w *WindowedLedger) Reset() {
	for _, p := range w.periods {
		if p != nil {
			p.Reset()
		}
	}
}

package reputation

import (
	"testing"
	"testing/quick"
)

func TestWindowedLedgerPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewWindowedLedger(0, 3) },
		func() { NewWindowedLedger(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction did not panic")
				}
			}()
			f()
		}()
	}
}

func TestWindowedLedgerBasics(t *testing.T) {
	w := NewWindowedLedger(4, 3)
	if w.Size() != 4 || w.WindowLength() != 3 || w.Periods() != 1 {
		t.Fatalf("fresh ledger: size=%d window=%d periods=%d", w.Size(), w.WindowLength(), w.Periods())
	}
	w.Record(0, 1, 1)
	if got := w.Window().TotalFor(1); got != 1 {
		t.Fatalf("window total = %d, want 1", got)
	}
	if got := w.Current().TotalFor(1); got != 1 {
		t.Fatalf("current total = %d, want 1", got)
	}
}

func TestWindowedLedgerEviction(t *testing.T) {
	w := NewWindowedLedger(4, 2) // current + 1 past period
	w.Record(0, 1, 1)            // period 1
	w.Advance()
	w.Record(2, 1, 1) // period 2
	if got := w.Window().TotalFor(1); got != 2 {
		t.Fatalf("window holds %d ratings, want 2 (both periods in window)", got)
	}
	w.Advance() // period 3: period 1 evicted
	if got := w.Window().TotalFor(1); got != 1 {
		t.Fatalf("window holds %d ratings, want 1 after eviction", got)
	}
	if got := w.Window().PairTotal(1, 0); got != 0 {
		t.Fatalf("evicted pair count = %d, want 0", got)
	}
	if got := w.Window().PairTotal(1, 2); got != 1 {
		t.Fatalf("retained pair count = %d, want 1", got)
	}
	w.Advance() // period 4: period 2 evicted too
	if got := w.Window().TotalFor(1); got != 0 {
		t.Fatalf("window holds %d ratings, want 0", got)
	}
}

func TestWindowedLedgerPeriodsCap(t *testing.T) {
	w := NewWindowedLedger(3, 3)
	for i := 0; i < 10; i++ {
		w.Advance()
	}
	if w.Periods() != 3 {
		t.Fatalf("periods = %d, want capped at 3", w.Periods())
	}
}

func TestWindowedLedgerReset(t *testing.T) {
	w := NewWindowedLedger(3, 2)
	w.Record(0, 1, 1)
	w.Advance()
	w.Record(2, 1, -1)
	w.Reset()
	if got := w.Window().TotalFor(1); got != 0 {
		t.Fatalf("after Reset window total = %d", got)
	}
}

func TestWindowedLedgerIsCopy(t *testing.T) {
	w := NewWindowedLedger(3, 2)
	w.Record(0, 1, 1)
	snapshot := w.Window()
	w.Record(2, 1, 1)
	if snapshot.TotalFor(1) != 1 {
		t.Fatal("Window() snapshot mutated by later recording")
	}
}

// Property: with a window of W periods, the merged view always equals the
// sum of the last W periods' recordings exactly.
func TestQuickWindowMatchesManualSum(t *testing.T) {
	f := func(events []uint16, advances uint8) bool {
		const n, window = 5, 3
		w := NewWindowedLedger(n, window)
		// Manual shadow: slice of per-period ledgers.
		var shadow []*Ledger
		shadow = append(shadow, NewLedger(n))
		step := 0
		for _, e := range events {
			if int(advances) > 0 && step%(int(advances)+1) == int(advances) {
				w.Advance()
				shadow = append(shadow, NewLedger(n))
			}
			step++
			rater := int(e) % n
			target := int(e>>3) % n
			if rater == target {
				continue
			}
			pol := int(e>>6)%3 - 1
			w.Record(rater, target, pol)
			shadow[len(shadow)-1].Record(rater, target, pol)
		}
		want := NewLedger(n)
		lo := len(shadow) - window
		if lo < 0 {
			lo = 0
		}
		for _, p := range shadow[lo:] {
			if err := want.Merge(p); err != nil {
				return false
			}
		}
		got := w.Window()
		for target := 0; target < n; target++ {
			if got.TotalFor(target) != want.TotalFor(target) ||
				got.SummationScore(target) != want.SummationScore(target) {
				return false
			}
			for rater := 0; rater < n; rater++ {
				if got.PairTotal(target, rater) != want.PairTotal(target, rater) ||
					got.PairPositive(target, rater) != want.PairPositive(target, rater) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWindowMerge(b *testing.B) {
	w := NewWindowedLedger(200, 5)
	for p := 0; p < 5; p++ {
		for k := 0; k < 2000; k++ {
			w.Record(k%199, 199, 1)
		}
		if p < 4 {
			w.Advance()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Window()
	}
}

// Package rng provides small, fast, deterministic pseudo-random number
// generators for the simulator and the synthetic trace generators.
//
// All experiments in this repository must be reproducible from a single
// integer seed, including when components run concurrently. To achieve
// that, rng exposes a splittable generator: every subsystem derives its
// own independent substream with Child, keyed by a stable label, so the
// order in which subsystems consume randomness never perturbs each other.
//
// The core generator is xoshiro256**, seeded through splitmix64, following
// the reference constructions by Blackman and Vigna. Neither algorithm is
// cryptographic; they are chosen for speed, statistical quality, and easy
// reproducibility across platforms.
package rng

import (
	"math"
	"math/bits"
)

// splitmix64 advances a 64-bit state and returns the next output.
// It is used for seeding and for hashing labels into substream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic pseudo-random number generator.
// It is not safe for concurrent use; derive one per goroutine with Child.
// The zero value is not usable: construct with New or Child.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed. Two generators constructed
// with the same seed produce identical streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256** must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Child derives an independent substream keyed by label. Deriving the same
// label twice from generators in identical states yields identical children,
// so subsystems can be given stable names ("overlay", "node/17", ...) and
// remain reproducible regardless of sibling consumption.
func (r *Rand) Child(label string) *Rand {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	// Mix the label hash with fresh output so successive Child calls with
	// the same label on the same parent still produce distinct streams.
	seed := h ^ r.Uint64()
	return New(seed)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)

	return result
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// IntRange returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Range returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *Rand) Float64Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Float64Range called with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inverse transform sampling.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation above 64.
// It panics if mean is negative.
func (r *Rand) Poisson(mean float64) int {
	switch {
	case mean < 0:
		panic("rng: Poisson called with negative mean")
	case mean == 0:
		return 0
	case mean > 64:
		// Normal approximation with continuity correction; adequate for
		// workload generation at large means.
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	limit := math.Exp(-mean)
	p := 1.0
	n := 0
	for {
		p *= r.Float64()
		if p <= limit {
			return n
		}
		n++
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap, via Fisher-Yates.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct uniform indices from [0, n) in random order.
// It panics if k > n or k < 0.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample called with k outside [0, n]")
	}
	p := r.Perm(n)
	return p[:k]
}

// Pick returns a uniformly chosen element of xs. It panics on empty input.
func Pick[T any](r *Rand, xs []T) T {
	if len(xs) == 0 {
		panic("rng: Pick from empty slice")
	}
	return xs[r.Intn(len(xs))]
}

// WeightedPick returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. Negative weights are treated as zero. It
// panics if the slice is empty or the total weight is zero.
func (r *Rand) WeightedPick(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: WeightedPick from empty slice")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		panic("rng: WeightedPick with zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

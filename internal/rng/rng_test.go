package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("seeds 1 and 2 collided on %d/100 outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestChildDeterminism(t *testing.T) {
	a := New(7).Child("overlay")
	b := New(7).Child("overlay")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-label children diverged")
		}
	}
}

func TestChildIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Child("a")
	b := parent.Child("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("children 'a' and 'b' collided on %d/100 outputs", same)
	}
}

func TestRepeatedChildDistinct(t *testing.T) {
	parent := New(9)
	a := parent.Child("x")
	b := parent.Child("x")
	// Successive derivations with the same label must not alias, because the
	// parent advances between calls.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("successive same-label children collided on %d/100 outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nCoversSmallRangeUniformly(t *testing.T) {
	r := New(11)
	const n = 8
	const draws = 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("value %d drawn %d times, want about %.0f", v, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(8)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 = %v, want about 0.5", mean)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(10)
	for i := 0; i < 1000; i++ {
		f := r.Float64Range(2.5, 7.5)
		if f < 2.5 || f >= 7.5 {
			t.Fatalf("Float64Range(2.5,7.5) = %v", f)
		}
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := New(12)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(14)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want about 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(15)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want about 1", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(16)
	for _, mean := range []float64{0, 0.5, 3, 20, 100} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Poisson(mean)
			if v < 0 {
				t.Fatalf("Poisson(%v) returned negative %d", mean, v)
			}
			sum += float64(v)
		}
		got := sum / n
		tol := 0.05*mean + 0.05
		if math.Abs(got-mean) > tol {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonPanicsOnNegativeMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	New(1).Poisson(-1)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(18)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	counts := map[int]int{}
	for _, v := range xs {
		counts[v]++
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		counts[v]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Fatalf("element %d count changed by %d after Shuffle", v, c)
		}
	}
}

func TestSample(t *testing.T) {
	r := New(19)
	s := r.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("Sample(10,4) returned %d elements", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Sample(10,4) = %v has invalid or duplicate element", s)
		}
		seen[v] = true
	}
	if got := r.Sample(3, 3); len(got) != 3 {
		t.Fatalf("Sample(3,3) returned %d elements", len(got))
	}
	if got := r.Sample(3, 0); len(got) != 0 {
		t.Fatalf("Sample(3,0) returned %d elements", len(got))
	}
}

func TestSamplePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	New(1).Sample(2, 3)
}

func TestPick(t *testing.T) {
	r := New(20)
	xs := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[Pick(r, xs)]++
	}
	for _, k := range xs {
		if counts[k] < 800 {
			t.Fatalf("Pick heavily skewed: %v", counts)
		}
	}
}

func TestWeightedPick(t *testing.T) {
	r := New(21)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.WeightedPick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %v, want about 3", ratio)
	}
}

func TestWeightedPickNegativeTreatedAsZero(t *testing.T) {
	r := New(22)
	weights := []float64{-5, 2}
	for i := 0; i < 1000; i++ {
		if r.WeightedPick(weights) != 1 {
			t.Fatal("negative-weight index was picked")
		}
	}
}

func TestWeightedPickPanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("WeightedPick(%v) did not panic", weights)
				}
			}()
			New(1).WeightedPick(weights)
		}()
	}
}

// Property: Uint64n(n) < n for arbitrary n > 0.
func TestQuickUint64nInRange(t *testing.T) {
	r := New(23)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identically seeded generators agree on arbitrary call interleavings
// of Intn and Float64 decided by the inputs.
func TestQuickStreamEquality(t *testing.T) {
	f := func(seed uint64, ops []bool) bool {
		a, b := New(seed), New(seed)
		for _, op := range ops {
			if op {
				if a.Intn(1000) != b.Intn(1000) {
					return false
				}
			} else {
				if a.Float64() != b.Float64() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}

package service

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/p2psim/collusion/internal/ingest"
	"github.com/p2psim/collusion/internal/rng"
)

// benchBatches pre-builds deterministic rating batches so the bench loop
// measures the store, not the generator.
func benchBatches(n, count, size int) [][]ingest.Rating {
	r := rng.New(17).Child("bench")
	batches := make([][]ingest.Rating, count)
	for i := range batches {
		batches[i] = randomBatch(r, n, size, nil)
	}
	return batches
}

// BenchmarkSnapshotPublish measures one full epoch transition — ingest,
// rescore, incremental detect, COW snapshot publish — on a warm store
// whose snapshot storage recycles, so steady-state publish cost (the
// CloneInto refill plus slice copies) dominates.
func BenchmarkSnapshotPublish(b *testing.B) {
	const n = 200
	s := testStore(b, n, Config{})
	batches := benchBatches(n, 64, 100)
	for _, batch := range batches {
		if _, err := s.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Apply(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeQueryUnderIngest measures reader-side snapshot queries
// (Acquire, score + pair reads, Release) while a background writer
// applies batches as fast as the store allows — the latency a service
// client sees under full ingest pressure, and the bench that keeps the
// "queries never block ingest" property visible in the bench artifact.
func BenchmarkServeQueryUnderIngest(b *testing.B) {
	const n = 200
	s := testStore(b, n, Config{})
	batches := benchBatches(n, 64, 100)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if _, err := s.Apply(batches[i%len(batches)]); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sn := s.Acquire()
		sink += sn.Score(i % n)
		if sn.IsFlagged(i % n) {
			sink++
		}
		sn.Release()
	}
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
	_ = sink
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/ingest"
)

// Request is the service's wire request, one JSON object per operation.
// The same shape arrives as an HTTP request body and as a line of a JSONL
// request log: replaying a recorded log through Replay produces responses
// byte-identical to the ones the HTTP API served.
type Request struct {
	// Op selects the operation: "ingest", "reputation", "suspicion",
	// "flagged" or "epoch".
	Op string `json:"op"`
	// Ratings carries the ingest batch as [rater, target, polarity]
	// triples; only valid for Op == "ingest".
	Ratings [][3]int64 `json:"ratings,omitempty"`
	// Node is the queried node for "reputation" and "suspicion".
	Node int `json:"node,omitempty"`
}

// DecodeRequest parses one request object, rejecting unknown fields and
// trailing garbage so malformed requests fail loudly instead of silently
// ignoring half their payload.
func DecodeRequest(data []byte) (Request, error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("service: bad request: %w", err)
	}
	if dec.More() {
		return Request{}, fmt.Errorf("service: bad request: trailing data after JSON object")
	}
	switch req.Op {
	case "ingest", "reputation", "suspicion", "flagged", "epoch":
	case "":
		return Request{}, fmt.Errorf("service: bad request: missing op")
	default:
		return Request{}, fmt.Errorf("service: bad request: unknown op %q", req.Op)
	}
	if req.Op != "ingest" && len(req.Ratings) > 0 {
		return Request{}, fmt.Errorf("service: bad request: op %q does not take ratings", req.Op)
	}
	return req, nil
}

// ToBatch converts the request's rating triples into an ingest batch,
// validating against the population size n. Only valid for Op == "ingest".
func (req Request) ToBatch(n int) ([]ingest.Rating, error) {
	if req.Op != "ingest" {
		return nil, fmt.Errorf("service: ToBatch on op %q", req.Op)
	}
	batch := make([]ingest.Rating, len(req.Ratings))
	for k, t := range req.Ratings {
		rater, target, pol := t[0], t[1], t[2]
		if rater < 0 || rater >= int64(n) || target < 0 || target >= int64(n) {
			return nil, fmt.Errorf("service: rating %d: pair (%d, %d) out of range [0,%d)", k, rater, target, n)
		}
		if rater == target {
			return nil, fmt.Errorf("service: rating %d: node %d rated itself", k, rater)
		}
		if pol < -1 || pol > 1 {
			return nil, fmt.Errorf("service: rating %d: polarity %d, want -1, 0 or 1", k, pol)
		}
		batch[k] = ingest.Rating{Rater: int32(rater), Target: int32(target), Polarity: int8(pol)}
	}
	return batch, nil
}

// AppendRequestIngest encodes batch as a canonical "ingest" request line
// (trailing newline included) — the record format of the request log a
// served run emits and Replay consumes.
func AppendRequestIngest(dst []byte, batch []ingest.Rating) []byte {
	dst = append(dst, `{"op":"ingest","ratings":[`...)
	for k, r := range batch {
		if k > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(r.Rater), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(r.Target), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(r.Polarity), 10)
		dst = append(dst, ']')
	}
	dst = append(dst, "]}\n"...)
	return dst
}

// AppendRequestQuery encodes a no-argument query request line ("flagged"
// or "epoch"), trailing newline included.
func AppendRequestQuery(dst []byte, op string) []byte {
	dst = append(dst, `{"op":"`...)
	dst = append(dst, op...)
	dst = append(dst, "\"}\n"...)
	return dst
}

// All response encoders below produce exactly one newline-terminated JSON
// line with a deterministic field order and strconv-based float
// formatting ('g', shortest round-trip) — the byte-identity contract
// between the HTTP API, the replay mode and the batch artifacts rests on
// them.

// AppendIngestReply encodes the response to an applied batch.
func AppendIngestReply(dst []byte, epoch int64, accepted int) []byte {
	dst = append(dst, `{"epoch":`...)
	dst = strconv.AppendInt(dst, epoch, 10)
	dst = append(dst, `,"accepted":`...)
	dst = strconv.AppendInt(dst, int64(accepted), 10)
	dst = append(dst, "}\n"...)
	return dst
}

// AppendEpoch encodes the epoch watermark response.
func AppendEpoch(dst []byte, sn *Snapshot) []byte {
	dst = append(dst, `{"epoch":`...)
	dst = strconv.AppendInt(dst, sn.Epoch(), 10)
	dst = append(dst, `,"ratings":`...)
	dst = strconv.AppendInt(dst, sn.Ratings(), 10)
	dst = append(dst, `,"nodes":`...)
	dst = strconv.AppendInt(dst, int64(sn.Nodes()), 10)
	dst = append(dst, "}\n"...)
	return dst
}

// AppendReputation encodes one node's reputation response.
func AppendReputation(dst []byte, sn *Snapshot, node int) []byte {
	dst = append(dst, `{"epoch":`...)
	dst = strconv.AppendInt(dst, sn.Epoch(), 10)
	dst = append(dst, `,"node":`...)
	dst = strconv.AppendInt(dst, int64(node), 10)
	dst = append(dst, `,"score":`...)
	dst = appendFloat(dst, sn.Score(node))
	dst = append(dst, `,"flagged":`...)
	dst = strconv.AppendBool(dst, sn.IsFlagged(node))
	dst = append(dst, `,"first_flagged":`...)
	dst = strconv.AppendInt(dst, sn.FirstFlagged(node), 10)
	dst = append(dst, "}\n"...)
	return dst
}

// AppendSuspicion encodes one node's suspicion audit: for every partner
// that rated the node (ascending), the pair's decision record — the gate
// obs.GateFlagged with detected:true when the pair is among the detected
// evidence, otherwise the advisory core.ExplainPair cascade gate over the
// snapshot's frozen ledger. The Result-first order matters because the
// detectors' association sweep can flag pairs whose own cascade stops
// early; see core.ExplainPair.
func AppendSuspicion(dst []byte, sn *Snapshot, th core.Thresholds, node int) []byte {
	dst = append(dst, `{"epoch":`...)
	dst = strconv.AppendInt(dst, sn.Epoch(), 10)
	dst = append(dst, `,"node":`...)
	dst = strconv.AppendInt(dst, int64(node), 10)
	dst = append(dst, `,"flagged":`...)
	dst = strconv.AppendBool(dst, sn.IsFlagged(node))
	dst = append(dst, `,"first_flagged":`...)
	dst = strconv.AppendInt(dst, sn.FirstFlagged(node), 10)
	dst = append(dst, `,"partners":[`...)
	for k, rater := range sn.Ledger().RatersOf(node) {
		if k > 0 {
			dst = append(dst, ',')
		}
		dst = appendPartnerAudit(dst, sn, th, node, int(rater))
	}
	dst = append(dst, "]}\n"...)
	return dst
}

// appendPartnerAudit encodes one pair decision, normalized to i < j as in
// the detectors' own audit records.
func appendPartnerAudit(dst []byte, sn *Snapshot, th core.Thresholds, node, partner int) []byte {
	a := core.ExplainPair(sn.Ledger(), th, node, partner)
	detected := sn.HasPair(node, partner)
	gate := a.Gate
	if detected {
		gate = "flagged"
	}
	dst = append(dst, `{"partner":`...)
	dst = strconv.AppendInt(dst, int64(partner), 10)
	dst = append(dst, `,"i":`...)
	dst = strconv.AppendInt(dst, int64(a.I), 10)
	dst = append(dst, `,"j":`...)
	dst = strconv.AppendInt(dst, int64(a.J), 10)
	dst = append(dst, `,"gate":"`...)
	dst = append(dst, gate...)
	dst = append(dst, `","detected":`...)
	dst = strconv.AppendBool(dst, detected)
	dst = append(dst, `,"n_ij":`...)
	dst = strconv.AppendInt(dst, int64(a.NIJ), 10)
	dst = append(dst, `,"n_ji":`...)
	dst = strconv.AppendInt(dst, int64(a.NJI), 10)
	dst = append(dst, `,"a_ij":`...)
	dst = appendFloat(dst, a.AIJ)
	dst = append(dst, `,"a_ji":`...)
	dst = appendFloat(dst, a.AJI)
	dst = append(dst, `,"r_i":`...)
	dst = appendFloat(dst, a.RI)
	dst = append(dst, `,"r_j":`...)
	dst = appendFloat(dst, a.RJ)
	dst = append(dst, '}')
	return dst
}

// AppendFlaggedSnapshot encodes the full flagged document of a snapshot.
func AppendFlaggedSnapshot(dst []byte, sn *Snapshot) []byte {
	first := sn.first
	return AppendFlagged(dst, sn.Epoch(), sn.Scores(), sn.Flagged(), func(i int) int64 { return first[i] }, sn.Pairs())
}

// AppendFlagged encodes the flagged document: epoch watermark, every
// flagged node with its first-detection epoch (ascending), every evidence
// pair (sorted by (i, j), first-evidence statistics) and the full score
// vector. The batch CLI writes the same document from a simulation Result
// (epoch = SimCycles, first = DetectionCycle), which is what the CI smoke
// job byte-compares served and replayed runs against.
func AppendFlagged(dst []byte, epoch int64, scores []float64, flagged []bool, first func(int) int64, pairs []core.Evidence) []byte {
	dst = append(dst, `{"epoch":`...)
	dst = strconv.AppendInt(dst, epoch, 10)
	dst = append(dst, `,"nodes":`...)
	dst = strconv.AppendInt(dst, int64(len(scores)), 10)
	dst = append(dst, `,"flagged":[`...)
	wrote := false
	for i, f := range flagged {
		if !f {
			continue
		}
		if wrote {
			dst = append(dst, ',')
		}
		wrote = true
		dst = append(dst, `{"node":`...)
		dst = strconv.AppendInt(dst, int64(i), 10)
		dst = append(dst, `,"first":`...)
		dst = strconv.AppendInt(dst, first(i), 10)
		dst = append(dst, '}')
	}
	dst = append(dst, `],"pairs":[`...)
	for k, e := range pairs {
		if k > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"i":`...)
		dst = strconv.AppendInt(dst, int64(e.I), 10)
		dst = append(dst, `,"j":`...)
		dst = strconv.AppendInt(dst, int64(e.J), 10)
		dst = append(dst, `,"n_ij":`...)
		dst = strconv.AppendInt(dst, int64(e.NIJ), 10)
		dst = append(dst, `,"n_ji":`...)
		dst = strconv.AppendInt(dst, int64(e.NJI), 10)
		dst = append(dst, `,"a_ij":`...)
		dst = appendFloat(dst, e.AIJ)
		dst = append(dst, `,"a_ji":`...)
		dst = appendFloat(dst, e.AJI)
		dst = append(dst, '}')
	}
	dst = append(dst, `],"scores":[`...)
	for i, s := range scores {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendFloat(dst, s)
	}
	dst = append(dst, "]}\n"...)
	return dst
}

// appendFloat is the repo-wide deterministic float encoding: shortest
// round-trip 'g', the same formatting the registry exporters use.
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/ingest"
)

func TestDecodeRequest(t *testing.T) {
	good := []string{
		`{"op":"ingest","ratings":[[0,1,1],[2,3,-1]]}`,
		`{"op":"reputation","node":5}`,
		`{"op":"suspicion","node":0}`,
		`{"op":"flagged"}`,
		`{"op":"epoch"}`,
	}
	for _, in := range good {
		if _, err := DecodeRequest([]byte(in)); err != nil {
			t.Errorf("DecodeRequest(%s): %v", in, err)
		}
	}
	bad := []string{
		``,
		`{}`,
		`not json`,
		`{"op":"frobnicate"}`,
		`{"op":"epoch","bogus":1}`,
		`{"op":"epoch"}{"op":"epoch"}`,
		`{"op":"flagged","ratings":[[0,1,1]]}`,
	}
	for _, in := range bad {
		if _, err := DecodeRequest([]byte(in)); err == nil {
			t.Errorf("DecodeRequest(%s) accepted", in)
		}
	}
}

func TestToBatch(t *testing.T) {
	req, err := DecodeRequest([]byte(`{"op":"ingest","ratings":[[0,1,1],[2,0,-1],[3,4,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := req.ToBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	want := []ingest.Rating{
		{Rater: 0, Target: 1, Polarity: 1},
		{Rater: 2, Target: 0, Polarity: -1},
		{Rater: 3, Target: 4, Polarity: 0},
	}
	if len(batch) != len(want) {
		t.Fatalf("batch length %d, want %d", len(batch), len(want))
	}
	for i := range want {
		if batch[i] != want[i] {
			t.Fatalf("batch[%d] = %+v, want %+v", i, batch[i], want[i])
		}
	}
	bad := []string{
		`{"op":"ingest","ratings":[[0,8,1]]}`,  // target out of range
		`{"op":"ingest","ratings":[[-1,0,1]]}`, // rater out of range
		`{"op":"ingest","ratings":[[3,3,1]]}`,  // self-rating
		`{"op":"ingest","ratings":[[0,1,2]]}`,  // bad polarity
	}
	for _, in := range bad {
		req, err := DecodeRequest([]byte(in))
		if err != nil {
			t.Fatalf("DecodeRequest(%s): %v", in, err)
		}
		if _, err := req.ToBatch(8); err == nil {
			t.Errorf("ToBatch(%s) accepted", in)
		}
	}
	if _, err := (Request{Op: "epoch"}).ToBatch(8); err == nil {
		t.Error("ToBatch on non-ingest op accepted")
	}
}

// TestRequestRoundTrip pins the canonical-encoding contract: request
// lines a served run records decode back to the batch they encode, so a
// replay ingests exactly the recorded stream.
func TestRequestRoundTrip(t *testing.T) {
	batch := []ingest.Rating{
		{Rater: 0, Target: 1, Polarity: 1},
		{Rater: 5, Target: 2, Polarity: -1},
		{Rater: 3, Target: 4, Polarity: 0},
	}
	line := AppendRequestIngest(nil, batch)
	if !bytes.HasSuffix(line, []byte("\n")) {
		t.Fatal("request line not newline-terminated")
	}
	req, err := DecodeRequest(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	got, err := req.ToBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Fatalf("round-trip batch[%d] = %+v, want %+v", i, got[i], batch[i])
		}
	}
	q := AppendRequestQuery(nil, "flagged")
	if req, err := DecodeRequest(bytes.TrimSuffix(q, []byte("\n"))); err != nil || req.Op != "flagged" {
		t.Fatalf("query round-trip: %+v, %v", req, err)
	}
}

// TestResponsesAreValidJSON runs every encoder over a live store and
// checks each produced line parses as standalone JSON — the encoders are
// hand-rolled, so this guards bracket/comma slips.
func TestResponsesAreValidJSON(t *testing.T) {
	s := testStore(t, 8, Config{})
	if _, err := s.Apply([]ingest.Rating{
		{Rater: 0, Target: 1, Polarity: 1},
		{Rater: 1, Target: 0, Polarity: 1},
		{Rater: 2, Target: 3, Polarity: -1},
	}); err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()
	lines := [][]byte{
		AppendIngestReply(nil, 1, 3),
		AppendEpoch(nil, sn),
		AppendReputation(nil, sn, 1),
		AppendSuspicion(nil, sn, s.Thresholds(), 0),
		AppendFlaggedSnapshot(nil, sn),
	}
	for i, line := range lines {
		if !bytes.HasSuffix(line, []byte("\n")) {
			t.Fatalf("line %d not newline-terminated: %s", i, line)
		}
		var doc map[string]any
		if err := json.Unmarshal(line, &doc); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if _, ok := doc["epoch"]; !ok {
			t.Fatalf("line %d carries no epoch: %s", i, line)
		}
	}
}

// FuzzRequestDecode fuzzes the request decoder: it must never panic, and
// anything it accepts must be one of the five ops with an internally
// consistent shape.
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"op":"ingest","ratings":[[0,1,1]]}`))
	f.Add([]byte(`{"op":"reputation","node":3}`))
	f.Add([]byte(`{"op":"flagged"}`))
	f.Add([]byte(`{"op":"epoch","node":0}`))
	f.Add([]byte(`{"op":"suspicion"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"op":"ingest","ratings":[[9e99,-1,5]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		switch req.Op {
		case "ingest", "reputation", "suspicion", "flagged", "epoch":
		default:
			t.Fatalf("decoder accepted op %q", req.Op)
		}
		if req.Op != "ingest" && len(req.Ratings) > 0 {
			t.Fatal("decoder accepted ratings on a query op")
		}
		// ToBatch on accepted ingests must validate or reject, not panic,
		// and an accepted batch must be in range.
		if req.Op == "ingest" {
			batch, err := req.ToBatch(16)
			if err != nil {
				return
			}
			for _, r := range batch {
				if r.Rater < 0 || r.Rater >= 16 || r.Target < 0 || r.Target >= 16 ||
					r.Rater == r.Target || r.Polarity < -1 || r.Polarity > 1 {
					t.Fatalf("validated batch carries bad rating %+v", r)
				}
			}
		}
	})
}

// TestReplayRejectsMalformed pins replay's fail-fast contract with line
// attribution.
func TestReplayRejectsMalformed(t *testing.T) {
	s := testStore(t, 8, Config{})
	in := strings.NewReader(`{"op":"epoch"}` + "\n" + `{"op":"bogus"}` + "\n")
	var out bytes.Buffer
	err := Replay(s, in, &out)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("Replay error = %v, want line-2 attribution", err)
	}
	// The valid first line still produced its response.
	if !strings.HasPrefix(out.String(), `{"epoch":0`) {
		t.Fatalf("first response missing: %q", out.String())
	}
}

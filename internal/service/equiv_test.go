package service_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/ingest"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/service"
	"github.com/p2psim/collusion/internal/simulator"
)

// equivConfig is the shrunk paper setup the equivalence suite drives both
// planes with.
func equivConfig(workers, shards, window int) simulator.Config {
	cfg := simulator.DefaultConfig()
	cfg.Overlay.Nodes = 60
	cfg.SimCycles = 8
	cfg.QueryCycles = 10
	cfg.Detector = simulator.DetectorOptimized
	cfg.Workers = workers
	cfg.IngestShards = shards
	cfg.WindowCycles = window
	return cfg
}

// newStoreFor builds a service store from the same configuration a batch
// run would use, with engine and detector constructed by the exact same
// code path (simulator.BuildEngine / BuildPairDetector).
func newStoreFor(t *testing.T, cfg simulator.Config, reg *obs.Registry) *service.Store {
	t.Helper()
	built := cfg
	built.Obs = reg
	st, err := service.New(service.Config{
		Nodes:        built.Overlay.Nodes,
		Engine:       simulator.BuildEngine(built),
		Detector:     simulator.BuildPairDetector(built),
		Thresholds:   built.DetectionThresholds(),
		IngestShards: built.IngestShards,
		WindowCycles: built.WindowCycles,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// stripServiceMetrics drops the service-plane-only metric families
// (service_*) from a Prometheus exposition, leaving exactly the families
// a batch run exports.
func stripServiceMetrics(dump []byte) string {
	var keep []string
	for _, line := range strings.Split(string(dump), "\n") {
		name := strings.TrimPrefix(line, "# TYPE ")
		if strings.HasPrefix(name, "colsim_service_") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestServedMatchesBatch is the tentpole acceptance gate: a served run —
// the seeded simulator running quiet as a traffic source, each cycle's
// ratings applied to the store as one epoch — must be byte-identical to
// the plain batch run of the same configuration, at EVERY epoch for the
// scores and at the end for the flag set, first-detection epochs,
// evidence pairs, frozen ledger and registry metrics. The combos sweep
// engine worker count, ingest shard count (including the legacy direct
// path) and both ledger modes, none of which may leak into outputs.
func TestServedMatchesBatch(t *testing.T) {
	combos := []struct{ workers, shards, window int }{
		{1, 0, 0},
		{1, 1, 0},
		{1, 8, 4},
		{4, 1, 4},
		{4, 8, 0},
	}
	for _, c := range combos {
		c := c
		t.Run(fmt.Sprintf("w%d_s%d_win%d", c.workers, c.shards, c.window), func(t *testing.T) {
			// Batch plane: the ordinary simulation run, metrics observed.
			regA := obs.NewRegistry(nil)
			cfgA := equivConfig(c.workers, c.shards, c.window)
			cfgA.Obs = regA
			resA, err := simulator.Run(cfgA)
			if err != nil {
				t.Fatal(err)
			}

			// Served plane: same simulator config, but quiet — the store
			// observes the identical rating stream and recomputes
			// everything itself.
			regB := obs.NewRegistry(nil)
			cfgB := equivConfig(c.workers, c.shards, c.window)
			st := newStoreFor(t, cfgB, regB)
			defer st.Close()

			// Per-epoch check, chained to run after the tap's delivery:
			// the snapshot at epoch E must carry bitwise the scores the
			// batch run reports at cycle E.
			cfgB.OnCycle = func(cycle int, scores []float64) {
				sn := st.Acquire()
				defer sn.Release()
				if sn.Epoch() != int64(cycle) {
					t.Fatalf("cycle %d: snapshot epoch %d", cycle, sn.Epoch())
				}
				if !reflect.DeepEqual(sn.Scores(), scores) {
					t.Fatalf("cycle %d: served scores diverge from batch scores", cycle)
				}
			}
			tap := simulator.NewBatchTap(&cfgB, func(cycle int, batch []ingest.Rating) error {
				_, err := st.Apply(batch)
				return err
			})
			resB, err := simulator.Run(cfgB)
			if err != nil {
				t.Fatal(err)
			}
			if err := tap.Err(); err != nil {
				t.Fatal(err)
			}

			// Final-state identity: flags, first-detection epochs, pairs,
			// scores, and the frozen period ledger row by row.
			sn := st.Acquire()
			defer sn.Release()
			if sn.Epoch() != int64(cfgB.SimCycles) {
				t.Fatalf("final epoch %d, want %d", sn.Epoch(), cfgB.SimCycles)
			}
			if !reflect.DeepEqual(sn.Scores(), resA.Scores) {
				t.Fatal("final scores differ from batch run")
			}
			if !reflect.DeepEqual(sn.Flagged(), resA.Flagged) {
				t.Fatal("flag sets differ from batch run")
			}
			if !reflect.DeepEqual(sn.Pairs(), resA.DetectedPairs) {
				t.Fatalf("evidence pairs differ: served %v, batch %v", sn.Pairs(), resA.DetectedPairs)
			}
			for i, cyc := range resA.DetectionCycle {
				if sn.FirstFlagged(i) != int64(cyc) {
					t.Fatalf("node %d: first flagged at epoch %d, batch cycle %d", i, sn.FirstFlagged(i), cyc)
				}
			}
			// The quiet sim's own outputs must equal the observed batch
			// run too (sanity that the tap changed nothing).
			if !reflect.DeepEqual(resB.Scores, resA.Scores) || !reflect.DeepEqual(resB.Flagged, resA.Flagged) {
				t.Fatal("tap perturbed the simulation outputs")
			}
			n := resA.Ledger.Size()
			period := sn.Ledger()
			want := resA.Ledger
			if c.window > 0 {
				// Windowed stores publish the window view; rebuild the
				// batch run's counterpart is not exported, so compare
				// against the quiet run's result ledger only in
				// cumulative mode and check sizes here.
				if period.Size() != n {
					t.Fatalf("snapshot ledger size %d, want %d", period.Size(), n)
				}
			} else {
				for target := 0; target < n; target++ {
					gp, wp := period.PairCountsOf(target), want.PairCountsOf(target)
					if !reflect.DeepEqual(gp.Raters, wp.Raters) ||
						!reflect.DeepEqual(gp.Total, wp.Total) ||
						!reflect.DeepEqual(gp.Pos, wp.Pos) ||
						!reflect.DeepEqual(gp.Neg, wp.Neg) {
						t.Fatalf("snapshot ledger row %d differs from batch ledger", target)
					}
				}
			}

			// Registry identity: after the store performs the batch run's
			// end-of-run pair-frequency observation, the two registries
			// must export byte-identical Prometheus text once the
			// service-plane-only families are stripped.
			if _, err := st.ObservePairFrequencies(); err != nil {
				t.Fatal(err)
			}
			var dumpA, dumpB bytes.Buffer
			if err := regA.WritePrometheus(&dumpA); err != nil {
				t.Fatal(err)
			}
			if err := regB.WritePrometheus(&dumpB); err != nil {
				t.Fatal(err)
			}
			if got, want := stripServiceMetrics(dumpB.Bytes()), dumpA.String(); got != want {
				t.Fatalf("metrics diverge\n--- served (stripped) ---\n%s\n--- batch ---\n%s", got, want)
			}
		})
	}
}

// TestReplayMatchesDirect pins the replay plane: encoding a served run's
// batches as a JSONL request log and replaying it through a fresh store
// yields byte-identical responses on a second replay, and its final
// flagged document equals the directly-served store's.
func TestReplayMatchesDirect(t *testing.T) {
	cfg := equivConfig(1, 1, 0)
	st := newStoreFor(t, cfg, nil)
	defer st.Close()

	// Record the request log while serving directly.
	var log []byte
	tap := simulator.NewBatchTap(&cfg, func(cycle int, batch []ingest.Rating) error {
		log = service.AppendRequestIngest(log, batch)
		_, err := st.Apply(batch)
		return err
	})
	if _, err := simulator.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := tap.Err(); err != nil {
		t.Fatal(err)
	}
	log = service.AppendRequestQuery(log, "epoch")
	log = service.AppendRequestQuery(log, "flagged")

	replayOnce := func() []byte {
		cfg2 := equivConfig(1, 1, 0)
		st2 := newStoreFor(t, cfg2, nil)
		defer st2.Close()
		var out bytes.Buffer
		if err := service.Replay(st2, bytes.NewReader(log), &out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	out1, out2 := replayOnce(), replayOnce()
	if !bytes.Equal(out1, out2) {
		t.Fatal("replay is not deterministic")
	}

	sn := st.Acquire()
	defer sn.Release()
	direct := service.AppendFlaggedSnapshot(nil, sn)
	if !bytes.HasSuffix(out1, direct) {
		t.Fatalf("replayed flagged document differs from directly served store:\nreplay tail: %s\ndirect: %s",
			lastLine(out1), direct)
	}
}

func lastLine(b []byte) []byte {
	b = bytes.TrimRight(b, "\n")
	if i := bytes.LastIndexByte(b, '\n'); i >= 0 {
		return b[i+1:]
	}
	return b
}

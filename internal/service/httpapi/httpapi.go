// Package httpapi is the detection service's HTTP request plane: a
// net/http handler translating the /v1/ endpoints into service.Store
// operations. It contains no logic of its own — every request decodes
// through the service codec, executes against an Acquire-pinned snapshot
// (or Apply, for ingest), and responds with the codec's deterministic
// JSON line, so an HTTP response body is byte-identical to the same
// operation's line in a request-log replay.
//
// Like internal/obs/serve (which mounts this handler at /v1/), the
// package is wall-clock-exempt under the colsimlint determinism analyzer:
// it times requests into the service.query_ns histogram, operational
// telemetry that never feeds back into detection state. The deterministic
// core it calls into lives in internal/service, which is lint-restricted.
package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/service"
)

// maxBody bounds an ingest request body; a batch is one epoch's ratings,
// far below this.
const maxBody = 8 << 20

// API serves the /v1/ endpoints for one store.
type API struct {
	store *service.Store
	// qns is the wall-clock per-request latency histogram
	// (service.query_ns), nil-safe like every registry handle.
	qns *obs.Histogram
	mux *http.ServeMux
}

// New builds the handler. reg may be nil (no request telemetry).
func New(store *service.Store, reg *obs.Registry) *API {
	a := &API{store: store, qns: reg.Histogram("service.query_ns"), mux: http.NewServeMux()}
	a.mux.HandleFunc("POST /v1/ratings", a.ratings)
	a.mux.HandleFunc("GET /v1/reputation/{node}", a.reputation)
	a.mux.HandleFunc("GET /v1/suspicion/{node}", a.suspicion)
	a.mux.HandleFunc("GET /v1/flagged", a.flagged)
	a.mux.HandleFunc("GET /v1/epoch", a.epoch)
	return a
}

// ServeHTTP times the request into service.query_ns and dispatches.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	a.mux.ServeHTTP(w, r)
	a.qns.Observe(time.Since(start).Nanoseconds())
}

// ratings applies one ingest batch as the next epoch. The body is the
// canonical codec request ({"op":"ingest","ratings":[[rater,target,
// polarity],...]}), exactly one JSONL request-log line.
func (a *API) ratings(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	if len(body) > maxBody {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	req, err := service.DecodeRequest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Op != "ingest" {
		http.Error(w, fmt.Sprintf("op %q not valid for /v1/ratings", req.Op), http.StatusBadRequest)
		return
	}
	batch, err := req.ToBatch(a.store.Nodes())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	epoch, err := a.store.Apply(batch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeLine(w, service.AppendIngestReply(nil, epoch, len(batch)))
}

// node parses and range-checks the {node} path component.
func (a *API) node(w http.ResponseWriter, r *http.Request) (int, bool) {
	node, err := strconv.Atoi(r.PathValue("node"))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad node %q", r.PathValue("node")), http.StatusBadRequest)
		return 0, false
	}
	if node < 0 || node >= a.store.Nodes() {
		http.Error(w, fmt.Sprintf("node %d out of range [0,%d)", node, a.store.Nodes()), http.StatusNotFound)
		return 0, false
	}
	return node, true
}

func (a *API) reputation(w http.ResponseWriter, r *http.Request) {
	node, ok := a.node(w, r)
	if !ok {
		return
	}
	sn := a.store.Acquire()
	defer sn.Release()
	writeLine(w, service.AppendReputation(nil, sn, node))
}

func (a *API) suspicion(w http.ResponseWriter, r *http.Request) {
	node, ok := a.node(w, r)
	if !ok {
		return
	}
	sn := a.store.Acquire()
	defer sn.Release()
	writeLine(w, service.AppendSuspicion(nil, sn, a.store.Thresholds(), node))
}

func (a *API) flagged(w http.ResponseWriter, r *http.Request) {
	sn := a.store.Acquire()
	defer sn.Release()
	writeLine(w, service.AppendFlaggedSnapshot(nil, sn))
}

func (a *API) epoch(w http.ResponseWriter, r *http.Request) {
	sn := a.store.Acquire()
	defer sn.Release()
	writeLine(w, service.AppendEpoch(nil, sn))
}

func writeLine(w http.ResponseWriter, line []byte) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(line)
}

package httpapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/service"
)

func testAPI(t *testing.T) (*API, *service.Store, *obs.Registry) {
	t.Helper()
	th := core.Thresholds{TR: 1, TN: 5, Ta: 0.8, Tb: 0.5}
	st, err := service.New(service.Config{
		Nodes:      8,
		Engine:     reputation.Summation{},
		Detector:   core.NewOptimized(th),
		Thresholds: th,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	reg := obs.NewRegistry(nil)
	return New(st, reg), st, reg
}

func do(t *testing.T, a *API, method, path, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	a.ServeHTTP(w, req)
	return w.Code, w.Body.String()
}

// TestEndpoints drives the full API surface and pins that HTTP response
// bodies are byte-identical to the replay-mode lines for the same
// operations.
func TestEndpoints(t *testing.T) {
	a, st, reg := testAPI(t)

	code, body := do(t, a, http.MethodGet, "/v1/epoch", "")
	if code != http.StatusOK || body != "{\"epoch\":0,\"ratings\":0,\"nodes\":8}\n" {
		t.Fatalf("GET /v1/epoch: %d %q", code, body)
	}

	ingestBody := `{"op":"ingest","ratings":[[1,2,1],[2,1,1],[0,3,1]]}`
	code, body = do(t, a, http.MethodPost, "/v1/ratings", ingestBody)
	if code != http.StatusOK || body != "{\"epoch\":1,\"accepted\":3}\n" {
		t.Fatalf("POST /v1/ratings: %d %q", code, body)
	}

	code, body = do(t, a, http.MethodGet, "/v1/reputation/3", "")
	if code != http.StatusOK || !strings.Contains(body, `"node":3`) || !strings.Contains(body, `"epoch":1`) {
		t.Fatalf("GET /v1/reputation/3: %d %q", code, body)
	}

	code, body = do(t, a, http.MethodGet, "/v1/suspicion/1", "")
	if code != http.StatusOK || !strings.Contains(body, `"partners":[`) {
		t.Fatalf("GET /v1/suspicion/1: %d %q", code, body)
	}

	code, body = do(t, a, http.MethodGet, "/v1/flagged", "")
	if code != http.StatusOK || !strings.Contains(body, `"pairs":[`) {
		t.Fatalf("GET /v1/flagged: %d %q", code, body)
	}

	// Byte-identity with the replay encoders at the same snapshot.
	sn := st.Acquire()
	defer sn.Release()
	wantFlagged := string(service.AppendFlaggedSnapshot(nil, sn))
	if body != wantFlagged {
		t.Fatalf("HTTP flagged body %q differs from codec line %q", body, wantFlagged)
	}

	if reg.Histogram("service.query_ns").Count() == 0 {
		t.Fatal("service.query_ns histogram never observed")
	}
}

func TestEndpointErrors(t *testing.T) {
	a, _, _ := testAPI(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{http.MethodGet, "/v1/reputation/99", "", http.StatusNotFound},
		{http.MethodGet, "/v1/reputation/-1", "", http.StatusNotFound},
		{http.MethodGet, "/v1/reputation/zap", "", http.StatusBadRequest},
		{http.MethodGet, "/v1/suspicion/99", "", http.StatusNotFound},
		{http.MethodPost, "/v1/ratings", `not json`, http.StatusBadRequest},
		{http.MethodPost, "/v1/ratings", `{"op":"epoch"}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/ratings", `{"op":"ingest","ratings":[[0,0,1]]}`, http.StatusBadRequest},
		{http.MethodGet, "/v1/ratings", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/epoch", "", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		code, body := do(t, a, c.method, c.path, c.body)
		if code != c.want {
			t.Errorf("%s %s: status %d, want %d (%q)", c.method, c.path, code, c.want, body)
		}
	}
}

// TestRejectedIngestAdvancesNoEpoch pins that HTTP-rejected batches leave
// the store untouched.
func TestRejectedIngestAdvancesNoEpoch(t *testing.T) {
	a, st, _ := testAPI(t)
	if code, _ := do(t, a, http.MethodPost, "/v1/ratings", `{"op":"ingest","ratings":[[0,99,1]]}`); code != http.StatusBadRequest {
		t.Fatalf("bad batch status %d", code)
	}
	sn := st.Acquire()
	defer sn.Release()
	if sn.Epoch() != 0 {
		t.Fatalf("rejected ingest advanced epoch to %d", sn.Epoch())
	}
}

package service

import (
	"bufio"
	"fmt"
	"io"
)

// Replay feeds a JSONL request log (one Request per line, as recorded by
// a served run) through the store in order and writes each operation's
// response line to w. Because the store applies batches strictly in
// arrival order and every encoder is deterministic, replaying the same
// log against a store built from the same configuration reproduces the
// original run byte for byte — same epochs, same scores, same flagged
// document. Blank lines are skipped; the first malformed or rejected
// request aborts the replay with its error.
func Replay(s *Store, r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	var out []byte
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		req, err := DecodeRequest(raw)
		if err != nil {
			return fmt.Errorf("service: replay line %d: %w", line, err)
		}
		out, err = replayOne(s, req, out[:0])
		if err != nil {
			return fmt.Errorf("service: replay line %d: %w", line, err)
		}
		if _, err := w.Write(out); err != nil {
			return fmt.Errorf("service: replay line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("service: replay: %w", err)
	}
	return nil
}

// replayOne dispatches one decoded request and appends its response line.
func replayOne(s *Store, req Request, out []byte) ([]byte, error) {
	switch req.Op {
	case "ingest":
		batch, err := req.ToBatch(s.Nodes())
		if err != nil {
			return out, err
		}
		epoch, err := s.Apply(batch)
		if err != nil {
			return out, err
		}
		return AppendIngestReply(out, epoch, len(batch)), nil
	case "epoch", "reputation", "suspicion", "flagged":
		if req.Op == "reputation" || req.Op == "suspicion" {
			if req.Node < 0 || req.Node >= s.Nodes() {
				return out, fmt.Errorf("node %d out of range [0,%d)", req.Node, s.Nodes())
			}
		}
		sn := s.Acquire()
		defer sn.Release()
		switch req.Op {
		case "epoch":
			return AppendEpoch(out, sn), nil
		case "reputation":
			return AppendReputation(out, sn, req.Node), nil
		case "suspicion":
			return AppendSuspicion(out, sn, s.Thresholds(), req.Node), nil
		default:
			return AppendFlaggedSnapshot(out, sn), nil
		}
	default:
		return out, fmt.Errorf("unknown op %q", req.Op)
	}
}

package service

import (
	"sync/atomic"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/reputation"
)

// A Snapshot is one epoch's immutable view of the detection state: the
// frozen period ledger, the engine scores with detected colluders zeroed,
// the flag set with first-flagged epochs, and the accumulated evidence
// pairs — everything a query needs, pinned consistently at one epoch
// watermark.
//
// Snapshots are published by the store's single writer via atomic pointer
// swap and pinned by readers through a refcount: Store.Acquire returns the
// current snapshot with one reference held, and Release returns it. A
// snapshot whose last reference drops is recycled — its ledger arena, its
// slices — into the writer's next publication, which is what keeps the
// steady-state publish path allocation-bounded no matter how many epochs
// the service lives through. All accessor methods are safe for concurrent
// use by any number of pinned readers; none of them mutate.
type Snapshot struct {
	epoch   int64
	ratings int64
	ledger  *reputation.Ledger
	scores  []float64
	flagged []bool
	first   []int64
	pairs   []core.Evidence

	// refs is the pin count: the store's own reference (held from publish
	// until the next publish) plus one per outstanding Acquire. It is 0
	// exactly while the snapshot sits in the recycle pool or is being
	// refilled by the writer; tryAcquire refuses to resurrect it from 0,
	// which is the whole synchronization between readers and recycling.
	refs  atomic.Int64
	store *Store
}

// Epoch returns the epoch watermark: how many batches had been applied
// when this snapshot was published. Every service response carries it.
func (sn *Snapshot) Epoch() int64 { return sn.epoch }

// Ratings returns the total ratings ingested through this epoch.
func (sn *Snapshot) Ratings() int64 { return sn.ratings }

// Nodes returns the population size.
func (sn *Snapshot) Nodes() int { return len(sn.scores) }

// Ledger returns the frozen period ledger (the sliding window when the
// store is windowed, the cumulative history otherwise). Read-only: the
// snapshot plane's immutability is by convention, not enforcement.
func (sn *Snapshot) Ledger() *reputation.Ledger { return sn.ledger }

// Scores returns the per-node reputation scores, detected colluders
// zeroed. Read-only view.
func (sn *Snapshot) Scores() []float64 { return sn.scores }

// Score returns one node's reputation score.
func (sn *Snapshot) Score(node int) float64 { return sn.scores[node] }

// IsFlagged reports whether node was detected as a colluder by this epoch.
func (sn *Snapshot) IsFlagged(node int) bool { return sn.flagged[node] }

// Flagged returns the per-node flag markers. Read-only view.
func (sn *Snapshot) Flagged() []bool { return sn.flagged }

// FirstFlagged returns the 1-based epoch at which node was first flagged,
// or 0 if it never was — the service counterpart of the batch result's
// DetectionCycle.
func (sn *Snapshot) FirstFlagged(node int) int64 { return sn.first[node] }

// Pairs returns every distinct evidence pair detected so far, sorted by
// (I, J), each with the statistics observed when it was first detected —
// the same first-evidence-wins aggregation the batch simulator reports.
// Read-only view.
func (sn *Snapshot) Pairs() []core.Evidence { return sn.pairs }

// HasPair reports whether {a, b} is among the detected pairs (in either
// order), by binary search over the sorted pair list.
func (sn *Snapshot) HasPair(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	lo, hi := 0, len(sn.pairs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := sn.pairs[mid]
		if e.I < a || (e.I == a && e.J < b) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sn.pairs) && sn.pairs[lo].I == a && sn.pairs[lo].J == b
}

// tryAcquire takes one reference unless the count already reached 0 (the
// snapshot is recycling); a CAS loop so a racing Release cannot be lost.
func (sn *Snapshot) tryAcquire() bool {
	for {
		r := sn.refs.Load()
		if r == 0 {
			return false
		}
		if sn.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release returns one pinned reference. The caller must not touch the
// snapshot afterwards. When the last reference drops, the snapshot's
// storage is offered to the store's recycle pool for the writer's next
// publication (or left to the garbage collector when the pool is full).
func (sn *Snapshot) Release() {
	if sn.refs.Add(-1) > 0 {
		return
	}
	select {
	case sn.store.free <- sn:
		sn.store.mRecycled.Add(1)
	default:
	}
}

// Package service is the resident collusion-detection server: a
// long-running Store that ingests rating batches through the existing
// sharded ingest machinery, runs incremental detection on every epoch's
// dirty set, and publishes the result as an epoch-stamped copy-on-write
// Snapshot that concurrent readers pin without ever blocking — or being
// blocked by — the ingest path.
//
// One applied batch is one epoch. When the traffic source is the seeded
// simulator (simulator.NewBatchTap delivers each simulation cycle's
// ratings as one batch), epoch E of a served run is byte-identical to
// cycle E of the batch run from the same configuration: the same ledgers,
// the same engine scores, the same flag set, evidence pairs and registry
// metrics. The equivalence tests in this package pin that contract for
// every tested worker and ingest-shard count.
//
// Concurrency model: a single writer goroutine owns every piece of
// mutable detection state (ledgers, window, detector memo, flag set) and
// applies commands — rating batches, maintenance — strictly in arrival
// order, so the service stays deterministic for a deterministic request
// stream (the JSONL replay mode feeds exactly that). Readers interact
// only with the published *Snapshot through an atomic pointer and
// per-snapshot refcounts; see Snapshot. Package service is part of the
// lint-enforced deterministic tree — no wall clock, no ambient randomness
// — while the HTTP listener lives in the wall-clock-exempt
// service/httpapi subpackage.
package service

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/ingest"
	"github.com/p2psim/collusion/internal/obs"
	"github.com/p2psim/collusion/internal/reputation"
)

// ErrClosed is returned by commands submitted after Close.
var ErrClosed = errors.New("service: store is closed")

// Config parameterizes a Store. Engine, detector and thresholds are
// injected pre-built (simulator.BuildEngine / simulator.BuildPairDetector
// construct them exactly as a batch run would) so the service package
// stays independent of the simulator.
type Config struct {
	// Nodes is the fixed population size. Required.
	Nodes int
	// Engine scores the period ledger each epoch. Required.
	Engine reputation.Engine
	// Detector, if non-nil, is the pairwise collusion detector run each
	// epoch. Incremental detectors take the O(dirty) path exactly as the
	// simulation loop drives them.
	Detector core.Detector
	// Thresholds parameterize the suspicion endpoint's advisory explain
	// path (core.ExplainPair); zero value selects core.DefaultThresholds.
	// They should match the detector's.
	Thresholds core.Thresholds
	// IngestShards >= 1 routes each batch through the sharded ingest.Ingester
	// with that many writer goroutines; 0 records directly, exactly
	// mirroring the simulator's two intake paths (and their telemetry).
	IngestShards int
	// WindowCycles > 0 evaluates scores and detection over a sliding
	// window of the last WindowCycles epochs instead of the cumulative
	// history, through the same delta-ring WindowLedger as batch runs.
	WindowCycles int
	// FullDetect forces from-scratch detection every epoch (A/B escape
	// hatch; outputs are identical either way).
	FullDetect bool
	// Obs, if non-nil, receives the same histograms and counters a batch
	// run records, plus the service.* ingest-plane telemetry.
	Obs *obs.Registry
	// Tracer, if enabled, receives the detector's audit events and the
	// ingest pipeline's shard audits, stamped with the epoch as the cycle.
	Tracer *obs.Tracer
	// Spans, if enabled, receives the detector's span brackets.
	Spans *obs.SpanTracer
	// CycleTimer, if non-nil, brackets every epoch's detection pass (the
	// wall-clock implementations live in internal/obs/prof).
	CycleTimer obs.TimerFunc
	// SnapshotPool bounds how many unpinned snapshots are kept for
	// recycling; 0 selects a small default. More snapshots than this may
	// be live at once under reader pressure — the excess is simply left
	// to the garbage collector instead of reused.
	SnapshotPool int
}

// Store is the resident detection service core. See the package comment
// for the concurrency model. Create with New, feed with Apply, query by
// Acquire-ing snapshots, stop with Close.
type Store struct {
	cfg Config
	n   int
	th  core.Thresholds

	// Writer-owned state: touched only by the run loop (and by New before
	// the loop starts).
	ledger   *reputation.Ledger
	win      *ingest.WindowLedger
	winDirty []int
	ingester *ingest.Ingester
	engine   reputation.Engine
	det      core.Detector
	epoch    int64
	ratings  int64
	scores   []float64
	flagged  []bool
	first    []int64
	pairSet  map[[2]int]struct{}
	pairs    []core.Evidence

	// Snapshot plane: the current publication and the recycle pool.
	cur  atomic.Pointer[Snapshot]
	free chan *Snapshot

	cmds chan command
	quit chan struct{}
	done chan struct{}

	mBatches, mRatings, mRecycled *obs.Counter
	gEpoch                        *obs.Gauge
}

type command struct {
	op    int
	batch []ingest.Rating
	reply chan reply
}

type reply struct {
	epoch int64
	err   error
}

const (
	opApply = iota
	opPairFrequencies
)

// New validates cfg, publishes the empty epoch-0 snapshot and starts the
// writer loop.
func New(cfg Config) (*Store, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("service: Nodes = %d, want > 0", cfg.Nodes)
	}
	if cfg.Engine == nil {
		return nil, fmt.Errorf("service: Engine is required")
	}
	if cfg.IngestShards < 0 {
		return nil, fmt.Errorf("service: IngestShards = %d, want >= 0", cfg.IngestShards)
	}
	if cfg.WindowCycles < 0 {
		return nil, fmt.Errorf("service: WindowCycles = %d, want >= 0", cfg.WindowCycles)
	}
	pool := cfg.SnapshotPool
	if pool <= 0 {
		pool = 4
	}
	th := cfg.Thresholds
	if th == (core.Thresholds{}) {
		th = core.DefaultThresholds()
	}
	s := &Store{
		cfg:       cfg,
		n:         cfg.Nodes,
		th:        th,
		ledger:    reputation.NewLedger(cfg.Nodes),
		engine:    cfg.Engine,
		det:       cfg.Detector,
		scores:    make([]float64, cfg.Nodes),
		flagged:   make([]bool, cfg.Nodes),
		first:     make([]int64, cfg.Nodes),
		pairSet:   make(map[[2]int]struct{}),
		free:      make(chan *Snapshot, pool),
		cmds:      make(chan command),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		mBatches:  cfg.Obs.Counter("service.batches_total"),
		mRatings:  cfg.Obs.Counter("service.ratings_total"),
		mRecycled: cfg.Obs.Counter("service.snapshots_recycled"),
		gEpoch:    cfg.Obs.Gauge("service.epoch"),
	}
	if cfg.WindowCycles > 0 {
		s.win = ingest.NewWindowLedger(cfg.Nodes, cfg.WindowCycles)
		s.win.Obs = cfg.Obs
		s.win.Spans = cfg.Spans
	}
	if cfg.IngestShards >= 1 {
		s.ingester = &ingest.Ingester{
			Shards: cfg.IngestShards,
			Obs:    cfg.Obs,
			Tracer: cfg.Tracer,
			Spans:  cfg.Spans,
		}
	}
	s.publish() // epoch 0: empty ledger, zero scores, nothing flagged
	go s.run()
	return s, nil
}

// Thresholds returns the suspicion-explain thresholds the store serves
// with (defaults already applied).
func (s *Store) Thresholds() core.Thresholds { return s.th }

// Nodes returns the population size.
func (s *Store) Nodes() int { return s.n }

// run is the single-writer ingest loop: commands apply strictly in
// arrival order, one at a time, and each Apply publishes exactly one new
// snapshot before its reply is sent.
func (s *Store) run() {
	for {
		select {
		case c := <-s.cmds:
			switch c.op {
			case opApply:
				c.reply <- s.applyBatch(c.batch)
			case opPairFrequencies:
				s.observePairFrequencies()
				c.reply <- reply{epoch: s.epoch}
			}
		case <-s.quit:
			close(s.done)
			return
		}
	}
}

// submit routes one command through the writer loop, failing fast after
// Close. The commands channel is unbuffered, so a completed send means
// the loop owns the command and will reply.
func (s *Store) submit(c command) (int64, error) {
	select {
	case s.cmds <- c:
		r := <-c.reply
		return r.epoch, r.err
	case <-s.quit:
		return 0, ErrClosed
	}
}

// Apply ingests one rating batch as the next epoch: the batch is folded
// into the ledgers (sharded when configured), the window rolls, the
// engine rescores, the detector runs over the epoch's dirty set, and the
// resulting state is published as a new snapshot — all before Apply
// returns the new epoch watermark. The batch is validated up front;
// invalid batches reject whole with no state change. Apply is safe for
// concurrent use (batches serialize in arrival order), but the batch
// slice must not be mutated until Apply returns.
func (s *Store) Apply(batch []ingest.Rating) (int64, error) {
	if err := ValidateBatch(batch, s.n); err != nil {
		return 0, err
	}
	return s.submit(command{op: opApply, batch: batch, reply: make(chan reply, 1)})
}

// ObservePairFrequencies records every nonzero rating-pair count of the
// cumulative ledger into the registry's ratings.pair_frequency histogram
// — the post-run observation a batch simulation performs once at the end,
// exposed as a command so a served run's final metrics match the batch
// artifact. It returns the epoch at which the observation ran.
func (s *Store) ObservePairFrequencies() (int64, error) {
	return s.submit(command{op: opPairFrequencies, reply: make(chan reply, 1)})
}

// Close stops the writer loop and waits for it to exit. In-flight
// commands finish first; later commands fail with ErrClosed. The current
// snapshot stays acquirable — queries keep working against the final
// epoch — but no new epochs can be applied.
func (s *Store) Close() {
	select {
	case <-s.quit:
	default:
		close(s.quit)
	}
	<-s.done
}

// ValidateBatch checks every rating against the population contract the
// ledger enforces by panic: indices in [0, n), no self-ratings, polarity
// in {-1, 0, +1}. Service inputs are data, not programming errors, so the
// service rejects instead of crashing.
func ValidateBatch(batch []ingest.Rating, n int) error {
	for k, r := range batch {
		if int(r.Rater) < 0 || int(r.Rater) >= n || int(r.Target) < 0 || int(r.Target) >= n {
			return fmt.Errorf("service: rating %d: pair (%d, %d) out of range [0,%d)", k, r.Rater, r.Target, n)
		}
		if r.Rater == r.Target {
			return fmt.Errorf("service: rating %d: node %d rated itself", k, r.Rater)
		}
		if r.Polarity < -1 || r.Polarity > 1 {
			return fmt.Errorf("service: rating %d: polarity %d, want -1, 0 or 1", k, r.Polarity)
		}
	}
	return nil
}

// applyBatch is the writer-side epoch transition. Its structure mirrors
// the simulation loop's cycle boundary exactly — flushRatings, Roll,
// rescore, detect — which is what the served-equals-batch equivalence
// tests pin.
func (s *Store) applyBatch(batch []ingest.Rating) reply {
	if s.cfg.Tracer.Enabled() {
		s.cfg.Tracer.SetCycle(int(s.epoch) + 1)
	}
	if s.cfg.Spans.Enabled() {
		s.cfg.Spans.SetCycle(int(s.epoch) + 1)
	}
	if s.ingester != nil {
		if len(batch) > 0 {
			dsts := []*reputation.Ledger{s.ledger}
			if s.win != nil {
				dsts = append(dsts, s.win.Current())
			}
			if err := s.ingester.Ingest(batch, dsts...); err != nil {
				return reply{epoch: s.epoch, err: err}
			}
		}
	} else {
		for _, r := range batch {
			s.ledger.Record(int(r.Rater), int(r.Target), int(r.Polarity))
			if s.win != nil {
				s.win.Record(int(r.Rater), int(r.Target), int(r.Polarity))
			}
		}
	}
	if s.win != nil {
		s.winDirty = s.win.Roll()
	}
	s.epoch++
	s.ratings += int64(len(batch))
	s.updateScores()
	s.detect()
	s.publish()
	s.mBatches.Add(1)
	s.mRatings.Add(int64(len(batch)))
	s.gEpoch.Set(float64(s.epoch))
	return reply{epoch: s.epoch}
}

// periodLedger returns the ledger scoring and detection operate on: the
// sliding window when configured, otherwise the cumulative history.
func (s *Store) periodLedger() *reputation.Ledger {
	if s.win != nil {
		return s.win.Window()
	}
	return s.ledger
}

// updateScores recomputes global scores with the engine and keeps
// detected colluders at zero, as the simulation loop does each cycle.
func (s *Store) updateScores() {
	s.scores = s.engine.Scores(s.periodLedger())
	for i, f := range s.flagged {
		if f {
			s.scores[i] = 0
		}
	}
}

// detect runs the detection pass, bracketed by the configured timer.
func (s *Store) detect() {
	if s.det == nil {
		return
	}
	if s.cfg.CycleTimer != nil {
		stop := s.cfg.CycleTimer()
		s.runDetection()
		stop()
		return
	}
	s.runDetection()
}

// runDetection mirrors the simulation loop's pairwise detection tail:
// incremental over the epoch's dirty set, first evidence per pair wins,
// flagged nodes zero and stay zero.
func (s *Store) runDetection() {
	res := s.detectPairs(s.periodLedger())
	for _, e := range res.Pairs {
		key := [2]int{e.I, e.J}
		if _, ok := s.pairSet[key]; !ok {
			s.pairSet[key] = struct{}{}
			s.insertPair(e)
		}
		s.flag(e.I)
		s.flag(e.J)
	}
}

// detectPairs matches the simulator's dirty-set plumbing: windowed stores
// use the window Roll's dirty set, cumulative stores the ledger's own.
func (s *Store) detectPairs(period *reputation.Ledger) core.Result {
	inc, ok := s.det.(core.IncrementalDetector)
	if !ok || s.cfg.FullDetect {
		return s.det.Detect(period)
	}
	if s.win != nil {
		return inc.DetectIncremental(period, s.winDirty)
	}
	dirty := period.DirtyTargets()
	res := inc.DetectIncremental(period, dirty)
	period.ClearDirty()
	return res
}

// insertPair keeps s.pairs sorted by (I, J) under insertion — pair counts
// are small, and the sorted order is what the flagged document exports.
func (s *Store) insertPair(e core.Evidence) {
	at := len(s.pairs)
	for at > 0 && (e.I < s.pairs[at-1].I || (e.I == s.pairs[at-1].I && e.J < s.pairs[at-1].J)) {
		at--
	}
	s.pairs = append(s.pairs, core.Evidence{})
	copy(s.pairs[at+1:], s.pairs[at:])
	s.pairs[at] = e
}

// flag marks a node as detected at the current epoch and zeroes its
// score.
func (s *Store) flag(node int) {
	if !s.flagged[node] {
		s.flagged[node] = true
		s.first[node] = s.epoch
	}
	s.scores[node] = 0
}

// observePairFrequencies is the batch run's post-run pair-frequency
// observation, over the cumulative ledger.
func (s *Store) observePairFrequencies() {
	h := s.cfg.Obs.Histogram("ratings.pair_frequency")
	if h == nil {
		return
	}
	for i := 0; i < s.n; i++ {
		pc := s.ledger.PairCountsOf(i)
		for k := range pc.Raters {
			h.Observe(int64(pc.Total[k]))
		}
	}
}

// publish freezes the writer state into a snapshot (recycled when one is
// available) and swaps it in as the current publication. The recycled
// snapshot's refcount is 0 throughout the refill — no reader can pin it —
// and is set to 1 (the store's own reference) before the swap; the
// displaced snapshot's store reference is released, so it recycles as
// soon as its last reader lets go.
func (s *Store) publish() {
	sn := s.takeFree()
	sn.epoch = s.epoch
	sn.ratings = s.ratings
	if sn.ledger == nil {
		sn.ledger = reputation.NewLedger(s.n)
	}
	s.periodLedger().CloneInto(sn.ledger)
	sn.scores = append(sn.scores[:0], s.scores...)
	sn.flagged = append(sn.flagged[:0], s.flagged...)
	sn.first = append(sn.first[:0], s.first...)
	sn.pairs = append(sn.pairs[:0], s.pairs...)
	sn.refs.Store(1)
	if old := s.cur.Swap(sn); old != nil {
		old.Release()
	}
}

// takeFree pops a recycled snapshot or allocates a fresh one.
func (s *Store) takeFree() *Snapshot {
	select {
	case sn := <-s.free:
		return sn
	default:
		return &Snapshot{store: s}
	}
}

// Acquire pins and returns the current snapshot; the caller must Release
// it. Acquire never blocks on the ingest path — it is a pointer load plus
// a refcount CAS, retried only across a concurrent publish or recycle.
// The double-check against the current pointer makes the returned
// snapshot the newest one published at some instant during the call.
func (s *Store) Acquire() *Snapshot {
	for {
		sn := s.cur.Load()
		if !sn.tryAcquire() {
			continue
		}
		if s.cur.Load() == sn {
			return sn
		}
		sn.Release()
	}
}

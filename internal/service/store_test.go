package service

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/p2psim/collusion/internal/core"
	"github.com/p2psim/collusion/internal/ingest"
	"github.com/p2psim/collusion/internal/reputation"
	"github.com/p2psim/collusion/internal/rng"
)

// testStore builds a small store on the cheap summation engine with the
// optimized detector.
func testStore(t testing.TB, n int, cfg Config) *Store {
	t.Helper()
	cfg.Nodes = n
	if cfg.Engine == nil {
		cfg.Engine = reputation.Summation{}
	}
	if cfg.Detector == nil {
		// Light thresholds so small test streams trip detection quickly.
		th := core.Thresholds{TR: 1, TN: 5, Ta: 0.8, Tb: 0.5}
		cfg.Detector = core.NewOptimized(th)
		cfg.Thresholds = th
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// randomBatch fills dst with seeded background traffic plus a planted
// mutual flood between nodes 1 and 2. Background traffic never targets
// the planted pair: organic credit would push their reputations outside
// the Formula (2) collusion bounds and (correctly) suppress detection.
func randomBatch(r *rng.Rand, n, size int, dst []ingest.Rating) []ingest.Rating {
	dst = dst[:0]
	for k := 0; k < size; k++ {
		rater, target := r.Intn(n), r.Intn(n)
		for target == rater || target == 1 || target == 2 {
			target = (target + 1) % n
		}
		pol := int8(1)
		if r.Bool(0.3) {
			pol = -1
		}
		dst = append(dst, ingest.Rating{Rater: int32(rater), Target: int32(target), Polarity: pol})
	}
	dst = append(dst,
		ingest.Rating{Rater: 1, Target: 2, Polarity: 1},
		ingest.Rating{Rater: 2, Target: 1, Polarity: 1})
	return dst
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 10},
		{Nodes: -1, Engine: reputation.Summation{}},
		{Nodes: 10, Engine: reputation.Summation{}, IngestShards: -1},
		{Nodes: 10, Engine: reputation.Summation{}, WindowCycles: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestStoreEpochZero pins the pre-ingest state: a fresh store serves an
// empty epoch-0 snapshot immediately.
func TestStoreEpochZero(t *testing.T) {
	s := testStore(t, 8, Config{})
	sn := s.Acquire()
	defer sn.Release()
	if sn.Epoch() != 0 || sn.Ratings() != 0 || sn.Nodes() != 8 {
		t.Fatalf("epoch-0 snapshot: epoch=%d ratings=%d nodes=%d", sn.Epoch(), sn.Ratings(), sn.Nodes())
	}
	if len(sn.Pairs()) != 0 || sn.IsFlagged(0) {
		t.Fatal("epoch-0 snapshot carries detection state")
	}
}

func TestValidateBatch(t *testing.T) {
	bad := [][]ingest.Rating{
		{{Rater: -1, Target: 1, Polarity: 1}},
		{{Rater: 0, Target: 8, Polarity: 1}},
		{{Rater: 3, Target: 3, Polarity: 1}},
		{{Rater: 0, Target: 1, Polarity: 2}},
	}
	s := testStore(t, 8, Config{})
	for i, batch := range bad {
		if _, err := s.Apply(batch); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
	}
	// Rejected batches must not advance the epoch.
	sn := s.Acquire()
	defer sn.Release()
	if sn.Epoch() != 0 {
		t.Fatalf("rejected batches advanced epoch to %d", sn.Epoch())
	}
}

// TestStoreDetectsPlantedPair drives enough mutual-flood traffic through
// Apply for the optimized detector to flag the planted pair, and checks
// the snapshot exposes flag, first epoch and evidence consistently.
func TestStoreDetectsPlantedPair(t *testing.T) {
	s := testStore(t, 16, Config{})
	r := rng.New(7).Child("store")
	var batch []ingest.Rating
	for e := 0; e < 10; e++ {
		batch = randomBatch(r, 16, 40, batch)
		if _, err := s.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	sn := s.Acquire()
	defer sn.Release()
	if !sn.IsFlagged(1) || !sn.IsFlagged(2) {
		t.Fatal("planted pair (1,2) not flagged")
	}
	if !sn.HasPair(1, 2) || !sn.HasPair(2, 1) {
		t.Fatal("planted pair missing from evidence")
	}
	if sn.FirstFlagged(1) == 0 || sn.FirstFlagged(1) > sn.Epoch() {
		t.Fatalf("first-flagged epoch %d out of range (epoch %d)", sn.FirstFlagged(1), sn.Epoch())
	}
	if sn.Score(1) != 0 || sn.Score(2) != 0 {
		t.Fatal("flagged nodes keep nonzero scores")
	}
}

func TestStoreClose(t *testing.T) {
	s := testStore(t, 8, Config{})
	if _, err := s.Apply([]ingest.Rating{{Rater: 0, Target: 1, Polarity: 1}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Apply([]ingest.Rating{{Rater: 0, Target: 1, Polarity: 1}}); err != ErrClosed {
		t.Fatalf("Apply after Close: %v, want ErrClosed", err)
	}
	// The final snapshot stays acquirable after Close.
	sn := s.Acquire()
	defer sn.Release()
	if sn.Epoch() != 1 {
		t.Fatalf("post-Close snapshot epoch %d, want 1", sn.Epoch())
	}
}

// TestSnapshotRecycling pins the COW plane's memory story: with readers
// promptly releasing, the set of live snapshot pointers stabilizes at the
// pool size — the writer keeps refilling recycled storage instead of
// allocating fresh snapshots every epoch.
func TestSnapshotRecycling(t *testing.T) {
	s := testStore(t, 16, Config{SnapshotPool: 2})
	r := rng.New(11).Child("recycle")
	seen := make(map[*Snapshot]struct{})
	var batch []ingest.Rating
	// Warm-up: let the pool populate.
	for e := 0; e < 4; e++ {
		batch = randomBatch(r, 16, 30, batch)
		if _, err := s.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 40; e++ {
		batch = randomBatch(r, 16, 30, batch)
		if _, err := s.Apply(batch); err != nil {
			t.Fatal(err)
		}
		sn := s.Acquire()
		seen[sn] = struct{}{}
		sn.Release()
	}
	// Pool of 2 plus the published snapshot and at most one in flight.
	if len(seen) > 4 {
		t.Fatalf("%d distinct snapshots across 40 epochs, want <= 4 (recycling broken)", len(seen))
	}
	if s.mRecycled.Value() == 0 && s.cfg.Obs != nil {
		t.Fatal("no snapshots recycled")
	}
}

// TestAcquireNeverResurrects hammers the acquire/release/publish triangle
// under -race: readers must only ever pin snapshots whose storage is not
// being refilled, and every pinned snapshot must be internally consistent
// (scores sized to the population, epoch monotonically advancing per
// reader).
func TestAcquireNeverResurrects(t *testing.T) {
	const (
		nodes   = 24
		epochs  = 150
		readers = 4
	)
	s := testStore(t, nodes, Config{SnapshotPool: 2})
	var stop atomic.Bool
	var acquired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := int64(-1)
			for !stop.Load() {
				sn := s.Acquire()
				if sn.Epoch() < last {
					t.Errorf("epoch went backwards: %d after %d", sn.Epoch(), last)
					sn.Release()
					return
				}
				last = sn.Epoch()
				if len(sn.Scores()) != nodes || len(sn.Flagged()) != nodes {
					t.Errorf("torn snapshot at epoch %d", sn.Epoch())
					sn.Release()
					return
				}
				// Touch the ledger too: recycled arena storage must never
				// be visible while pinned.
				_ = sn.Ledger().TotalFor(int(sn.Epoch()) % nodes)
				acquired.Add(1)
				sn.Release()
			}
		}()
	}
	r := rng.New(13).Child("hammer")
	var batch []ingest.Rating
	for e := 0; e < epochs; e++ {
		batch = randomBatch(r, nodes, 25, batch)
		if _, err := s.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if acquired.Load() == 0 {
		t.Fatal("readers never acquired a snapshot")
	}
	sn := s.Acquire()
	defer sn.Release()
	if sn.Epoch() != epochs {
		t.Fatalf("final epoch %d, want %d", sn.Epoch(), epochs)
	}
}

// TestServiceOffAddsNoAllocs is the regression gate the ISSUE demands:
// with a store built but idle, the repo's detect/ingest hot paths must
// stay exactly as allocation-free as they are without any service in the
// process — the snapshot plane only ever costs on its own epoch
// transitions, never on foreign hot paths.
func TestServiceOffAddsNoAllocs(t *testing.T) {
	const n = 64
	l := reputation.NewLedger(n)
	r := rng.New(5).Child("noalloc")
	for k := 0; k < 4000; k++ {
		rater, target := r.Intn(n), r.Intn(n)
		if rater == target {
			target = (target + 1) % n
		}
		l.Record(rater, target, 1)
	}
	det := core.NewOptimized(core.DefaultThresholds())
	// Steady state: a few passes to let the detector's memo warm up.
	for k := 0; k < 3; k++ {
		det.DetectIncremental(l, l.DirtyTargets())
		l.ClearDirty()
	}

	s := testStore(t, 16, Config{}) // idle resident service in-process
	_ = s

	if allocs := testing.AllocsPerRun(20, func() {
		det.DetectIncremental(l, nil)
	}); allocs > 0 {
		t.Fatalf("steady-state DetectIncremental allocates %v objects/op with idle service, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		l.Record(3, 4, 1)
	}); allocs > 0 {
		t.Fatalf("warm-row Record allocates %v objects/op with idle service, want 0", allocs)
	}
}
